#include <gtest/gtest.h>

#include "clocksync/convex_hull.hpp"
#include "clocksync/projection.hpp"
#include "clocksync/sync_data.hpp"
#include "clocksync/sync_phase.hpp"
#include "sim/world.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace loki::clocksync {
namespace {

/// Generate synthetic sync samples between a reference clock (identity) and
/// a target clock C_i(t) = alpha + beta * t, with strictly positive random
/// delays. Ground truth known => the certain-bounds property is testable.
SyncData synthetic_samples(double alpha_ns, double beta, int n, Rng& rng,
                           double min_delay_ns = 20'000,
                           double jitter_ns = 120'000) {
  SyncData out;
  double t = 1e9;  // physical ns
  for (int i = 0; i < n; ++i) {
    // ref -> target
    const double d1 = min_delay_ns + rng.exponential(jitter_ns);
    out.push_back({"ref", "tgt", LocalTime{static_cast<std::int64_t>(t)},
                   LocalTime{static_cast<std::int64_t>(
                       alpha_ns + beta * (t + d1))}});
    t += 2e6;
    // target -> ref
    const double d2 = min_delay_ns + rng.exponential(jitter_ns);
    out.push_back({"tgt", "ref",
                   LocalTime{static_cast<std::int64_t>(alpha_ns + beta * t)},
                   LocalTime{static_cast<std::int64_t>(t + d2)}});
    t += 2e6;
  }
  // A second "phase" much later tightens the drift bounds, as in Loki.
  t += 3e9;
  for (int i = 0; i < n; ++i) {
    const double d1 = min_delay_ns + rng.exponential(jitter_ns);
    out.push_back({"ref", "tgt", LocalTime{static_cast<std::int64_t>(t)},
                   LocalTime{static_cast<std::int64_t>(
                       alpha_ns + beta * (t + d1))}});
    t += 2e6;
    const double d2 = min_delay_ns + rng.exponential(jitter_ns);
    out.push_back({"tgt", "ref",
                   LocalTime{static_cast<std::int64_t>(alpha_ns + beta * t)},
                   LocalTime{static_cast<std::int64_t>(t + d2)}});
    t += 2e6;
  }
  return out;
}

TEST(ConvexHull, IdentityForReference) {
  const ClockBounds b = identity_bounds();
  EXPECT_TRUE(b.valid);
  EXPECT_DOUBLE_EQ(b.alpha_lo, 0.0);
  EXPECT_DOUBLE_EQ(b.beta_hi, 1.0);
}

TEST(ConvexHull, NoSamplesInvalid) {
  EXPECT_FALSE(estimate_bounds({}, "ref", "tgt").valid);
}

// Property: the true (alpha, beta) ALWAYS lies within the computed bounds —
// the guarantee that distinguishes these bounds from confidence intervals
// (§2.5). Parameterized over seeds and clock parameters.
class ConvexHullProperty : public ::testing::TestWithParam<int> {};

TEST_P(ConvexHullProperty, TrueParametersAlwaysInsideBounds) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 3);
  const double alpha = rng.uniform_real(-5e9, 5e9);
  const double beta = 1.0 + rng.uniform_real(-100e-6, 100e-6);
  const SyncData samples = synthetic_samples(alpha, beta, 25, rng);

  const ClockBounds b = estimate_bounds(samples, "ref", "tgt");
  ASSERT_TRUE(b.valid);
  EXPECT_LE(b.alpha_lo, alpha);
  EXPECT_GE(b.alpha_hi, alpha);
  EXPECT_LE(b.beta_lo, beta);
  EXPECT_GE(b.beta_hi, beta);
  EXPECT_FALSE(b.pinned_beta);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvexHullProperty, ::testing::Range(0, 25));

TEST(ConvexHull, BoundsTightenWithMoreSamples) {
  Rng rng(42);
  const double alpha = 2.5e9, beta = 1.00004;
  Rng r1 = rng.split(1), r2 = rng.split(1);
  const ClockBounds few =
      estimate_bounds(synthetic_samples(alpha, beta, 5, r1), "ref", "tgt");
  const ClockBounds many =
      estimate_bounds(synthetic_samples(alpha, beta, 60, r2), "ref", "tgt");
  ASSERT_TRUE(few.valid && many.valid);
  EXPECT_LE(many.alpha_hi - many.alpha_lo, few.alpha_hi - few.alpha_lo);
  EXPECT_LE(many.beta_hi - many.beta_lo, few.beta_hi - few.beta_lo);
}

TEST(ConvexHull, BoundsWidenWithLargerDelays) {
  Rng r1(7), r2(7);
  const double alpha = 1e9, beta = 0.99996;
  const ClockBounds fast = estimate_bounds(
      synthetic_samples(alpha, beta, 30, r1, 20e3, 50e3), "ref", "tgt");
  const ClockBounds slow = estimate_bounds(
      synthetic_samples(alpha, beta, 30, r2, 20e3, 2000e3), "ref", "tgt");
  ASSERT_TRUE(fast.valid && slow.valid);
  EXPECT_LT(fast.alpha_hi - fast.alpha_lo, slow.alpha_hi - slow.alpha_lo);
}

TEST(ConvexHull, OneSidedSamplesArePinned) {
  // Only ref->tgt messages: beta/alpha cannot be bounded from below/above on
  // both sides; the sanity box takes over and the result says so.
  Rng rng(9);
  SyncData samples = synthetic_samples(0.0, 1.0, 20, rng);
  std::erase_if(samples, [](const SyncSample& s) { return s.from == "tgt"; });
  const ClockBounds b = estimate_bounds(samples, "ref", "tgt");
  ASSERT_TRUE(b.valid);
  EXPECT_TRUE(b.pinned_alpha || b.pinned_beta);
}

TEST(Projection, TrueTimeInsideProjectedBounds) {
  Rng rng(11);
  const double alpha = -3e9, beta = 1.00007;
  const SyncData samples = synthetic_samples(alpha, beta, 30, rng);
  const ClockBounds b = estimate_bounds(samples, "ref", "tgt");
  ASSERT_TRUE(b.valid);

  // An event at physical/reference time T reads alpha + beta*T locally.
  for (const double t_ref : {1.2e9, 3.7e9, 8.9e9}) {
    const LocalTime local{static_cast<std::int64_t>(alpha + beta * t_ref)};
    const TimeBounds tb = project_to_reference(local, b);
    EXPECT_LE(tb.lo, t_ref);
    EXPECT_GE(tb.hi, t_ref);
    EXPECT_LT(tb.width(), 1e9);  // and they are useful, not vacuous
  }
}

TEST(Projection, OrderingHelpers) {
  const TimeBounds a{10, 20};
  const TimeBounds b{30, 40};
  EXPECT_TRUE(a.strictly_before(b));
  EXPECT_FALSE(b.strictly_before(a));
  EXPECT_TRUE(a.contains(15));
  EXPECT_DOUBLE_EQ(a.mid(), 15.0);
  EXPECT_DOUBLE_EQ(a.width(), 10.0);
}

TEST(SyncData, TimestampsFileRoundTrip) {
  const SyncData samples = {{"a", "b", LocalTime{123}, LocalTime{456}},
                            {"b", "a", LocalTime{789}, LocalTime{1011}}};
  const SyncData rt = parse_timestamps(serialize_timestamps(samples), "rt");
  ASSERT_EQ(rt.size(), 2u);
  EXPECT_EQ(rt[0].from, "a");
  EXPECT_EQ(rt[1].recv.ns, 1011);
  EXPECT_THROW(parse_timestamps("a b c\n", "short"), loki::ParseError);
}

TEST(AlphaBeta, FileRoundTrip) {
  AlphaBetaFile file;
  file.reference = "ref";
  ClockBounds b;
  b.alpha_lo = -1234.5;
  b.alpha_hi = 987.25;
  b.beta_lo = 0.999999;
  b.beta_hi = 1.000001;
  b.valid = true;
  file.bounds.emplace("tgt", b);
  file.bounds.emplace("ref", identity_bounds());

  const AlphaBetaFile rt = parse_alphabeta(serialize_alphabeta(file), "rt");
  EXPECT_EQ(rt.reference, "ref");
  EXPECT_NEAR(rt.for_host("tgt").alpha_lo, -1234.5, 0.01);
  EXPECT_NEAR(rt.for_host("tgt").beta_hi, 1.000001, 1e-9);
  EXPECT_THROW(rt.for_host("nope"), loki::ConfigError);
}

TEST(SyncPhase, ProducesValidBoundsInsideSimulation) {
  // End to end inside the simulator: drifting clocks, scheduling noise, and
  // the bounds still certainly contain the truth.
  sim::WorldParams wp;
  wp.seed = 77;
  sim::World world(wp);
  Rng clock_rng(5);
  std::vector<sim::HostId> hosts;
  std::vector<sim::ClockParams> truth;
  for (const char* name : {"h0", "h1", "h2"}) {
    sim::HostParams hp;
    hp.name = name;
    hp.clock = sim::HostClock::random_params(clock_rng, milliseconds(4), 80.0, 1000);
    truth.push_back(hp.clock);
    hosts.push_back(world.add_host(hp));
  }

  SyncData samples;
  SyncPhaseParams sp;
  sp.messages_per_pair = 15;
  run_sync_phase(world, hosts, sp, samples);
  // Let drift accumulate between the phases, as between experiment start/end.
  world.run_until(world.now() + seconds(5));
  run_sync_phase(world, hosts, sp, samples);
  EXPECT_EQ(samples.size(), 2u * 15u * 6u);

  // h0 is the reference (identity). Check h1 and h2 bounds contain the true
  // relative parameters: C_i = a_i + b_i*t, C_0 = a_0 + b_0*t =>
  // C_i = (a_i - a_0*b_i/b_0) + (b_i/b_0) * C_0.
  for (int i : {1, 2}) {
    const ClockBounds b = estimate_bounds(samples, "h0", i == 1 ? "h1" : "h2");
    ASSERT_TRUE(b.valid);
    const double beta_true = truth[i].beta / truth[0].beta;
    const double alpha_true = static_cast<double>(truth[i].alpha.ns) -
                              static_cast<double>(truth[0].alpha.ns) * beta_true;
    EXPECT_LE(b.alpha_lo, alpha_true + truth[i].granularity_ns);
    EXPECT_GE(b.alpha_hi, alpha_true - truth[i].granularity_ns);
    EXPECT_LE(b.beta_lo, beta_true + 1e-6);
    EXPECT_GE(b.beta_hi, beta_true - 1e-6);
  }
}

}  // namespace
}  // namespace loki::clocksync
