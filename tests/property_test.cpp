// Parameterized property sweeps over seeds, applications and transport
// designs: the invariants that must hold regardless of configuration.
#include <gtest/gtest.h>

#include "analysis/pipeline.hpp"
#include "apps/election.hpp"
#include "apps/kvstore.hpp"
#include "apps/token_ring.hpp"
#include "measure/predicate_timeline.hpp"
#include "runtime/experiment.hpp"
#include "util/rng.hpp"

namespace loki {
namespace {

const std::vector<std::string> kHosts = {"hostA", "hostB", "hostC"};

runtime::ExperimentParams app_params(int app_kind, std::uint64_t seed) {
  switch (app_kind) {
    case 0: {
      apps::ElectionParams a;
      a.run_for = milliseconds(500);
      auto p = apps::election_experiment(
          seed, kHosts,
          {{"black", "hostA"}, {"yellow", "hostB"}, {"green", "hostC"}}, a);
      p.nodes[0].fault_spec =
          spec::parse_fault_spec("f (black:LEAD) always\n", "prop");
      return p;
    }
    case 1: {
      apps::KvStoreParams a;
      a.initial_primary = "kv1";
      a.run_for = milliseconds(500);
      auto p = apps::kvstore_experiment(
          seed, kHosts,
          {{"kv1", "hostA"}, {"kv2", "hostB"}, {"kv3", "hostC"}}, a);
      p.nodes[1].fault_spec =
          spec::parse_fault_spec("f ((kv1:REPLICATING) & (kv2:BACKUP)) once\n",
                                 "prop");
      return p;
    }
    default: {
      apps::TokenRingParams a;
      a.run_for = milliseconds(400);
      auto p = apps::token_ring_experiment(
          seed, kHosts, {{"n1", "hostA"}, {"n2", "hostB"}, {"n3", "hostC"}}, a);
      p.nodes[2].fault_spec =
          spec::parse_fault_spec("duplicate_token (n1:CRITICAL) once\n", "prop");
      return p;
    }
  }
}

class CrossAppProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CrossAppProperty, AnalysisInvariantsHold) {
  const auto [app_kind, seed] = GetParam();
  const auto params = app_params(app_kind, 9'000 + static_cast<std::uint64_t>(seed));
  const auto result = runtime::run_experiment(params);
  if (!result.completed) GTEST_SKIP() << "timed out";

  const auto a = analysis::analyze_experiment(result);

  // 1. Clock bounds of every host contain the true relative parameters.
  ASSERT_FALSE(result.true_clocks.empty());
  const auto& ref_clock = result.true_clocks.front();
  for (const auto& [host, bounds] : a.alphabeta.bounds) {
    ASSERT_TRUE(bounds.valid) << host;
    const auto& clock = result.true_clock_of(host);
    const double beta_true = clock.beta / ref_clock.beta;
    const double alpha_true = static_cast<double>(clock.alpha.ns) -
                              static_cast<double>(ref_clock.alpha.ns) * beta_true;
    const double slack = 2.0 * static_cast<double>(clock.granularity_ns);
    EXPECT_LE(bounds.alpha_lo, alpha_true + slack) << host;
    EXPECT_GE(bounds.alpha_hi, alpha_true - slack) << host;
    EXPECT_LE(bounds.beta_lo, beta_true + 1e-6) << host;
    EXPECT_GE(bounds.beta_hi, beta_true - 1e-6) << host;
  }

  // 2. Every projected event interval contains the event's true physical
  //    time (the reference host clock equals physical time up to its own
  //    alpha/beta, so compare against the reference-clock reading).
  //    Spot-check via the global timeline ordering instead: intervals of
  //    events from ONE machine on one host must be ordered by local time.
  for (const auto& tl : result.timelines) {
    const auto events = analysis::project_timeline(tl, a.alphabeta);
    for (std::size_t i = 1; i < events.size(); ++i) {
      if (events[i].host != events[i - 1].host) continue;
      EXPECT_GE(events[i].local.ns, events[i - 1].local.ns);
      EXPECT_GE(events[i].when.hi, events[i - 1].when.lo);
    }
  }

  // 3. Soundness: if the analysis accepted the experiment, every injection
  //    truly happened with its expression's own-machine terms... validated
  //    via the experiment's ground truth state sequences.
  if (a.accepted) {
    for (const auto& inj : result.truth.injections) {
      const auto& tl = result.timeline_of(inj.machine);
      const runtime::TimelineFaultEntry* entry = nullptr;
      for (const auto& f : tl.faults)
        if (f.name == inj.fault) entry = &f;
      ASSERT_NE(entry, nullptr);
      const auto expr = spec::parse_fault_expr(entry->expr_text, "prop", 0);
      const spec::StateView truth_view =
          [&](const std::string& machine) -> const std::string* {
        static thread_local std::string held;
        const auto* seq = result.truth.find_state_seq(machine);
        if (seq == nullptr) return nullptr;
        const std::string* current = nullptr;
        for (const auto& [t, s] : *seq) {
          if (t > inj.at) break;
          current = &s;
        }
        if (current == nullptr) return nullptr;
        held = *current;
        return &held;
      };
      EXPECT_TRUE(expr->eval(truth_view))
          << "accepted experiment but " << inj.fault << " on " << inj.machine
          << " was injected outside its true global state";
    }
  }

  // 4. Timelines parse back from their own file format losslessly.
  for (const auto& tl : result.timelines) {
    const auto rt = runtime::parse_local_timeline(
        runtime::serialize_local_timeline(tl), "prop");
    ASSERT_EQ(rt.records.size(), tl.records.size());
    for (std::size_t i = 0; i < tl.records.size(); ++i)
      EXPECT_EQ(rt.records[i].time.ns, tl.records[i].time.ns);
  }
}

std::string cross_app_name(const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  static const char* const names[] = {"election", "kvstore", "tokenring"};
  return std::string(names[std::get<0>(info.param)]) + "_seed" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AppsAndSeeds, CrossAppProperty,
    ::testing::Combine(::testing::Values(0, 1, 2), ::testing::Range(0, 6)),
    cross_app_name);

// --- predicate timeline algebra -------------------------------------------------

measure::PredicateTimeline random_timeline(Rng& rng) {
  std::vector<std::pair<double, double>> intervals;
  double t = 0;
  const int n = static_cast<int>(rng.uniform_int(0, 5));
  for (int i = 0; i < n; ++i) {
    t += rng.uniform_real(1, 20);
    const double lo = t;
    t += rng.uniform_real(1, 20);
    intervals.emplace_back(lo, t);
  }
  auto pt = measure::PredicateTimeline::from_intervals(intervals);
  const int k = static_cast<int>(rng.uniform_int(0, 4));
  std::vector<double> impulses;
  for (int i = 0; i < k; ++i) impulses.push_back(rng.uniform_real(0, 100));
  return pt | measure::PredicateTimeline::from_impulses(impulses);
}

class TimelineAlgebra : public ::testing::TestWithParam<int> {};

TEST_P(TimelineAlgebra, PointwiseSemanticsAndDeMorgan) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  const auto a = random_timeline(rng);
  const auto b = random_timeline(rng);
  const auto both = a & b;
  const auto either = a | b;
  const auto de_morgan_and = ~(~a | ~b);
  const auto de_morgan_or = ~(~a & ~b);

  // Check at step boundaries, override instants, and random points.
  std::vector<double> probes;
  for (const auto& [t, v] : a.steps()) probes.push_back(t);
  for (const auto& [t, v] : b.steps()) probes.push_back(t);
  for (const auto& [t, v] : a.overrides()) probes.push_back(t);
  for (const auto& [t, v] : b.overrides()) probes.push_back(t);
  for (int i = 0; i < 50; ++i) probes.push_back(rng.uniform_real(-10, 120));

  for (const double t : probes) {
    const bool va = a.value_at(t);
    const bool vb = b.value_at(t);
    EXPECT_EQ(both.value_at(t), va && vb) << t;
    EXPECT_EQ(either.value_at(t), va || vb) << t;
    EXPECT_EQ((~a).value_at(t), !va) << t;
    EXPECT_EQ(de_morgan_and.value_at(t), va && vb) << "De Morgan AND @ " << t;
    EXPECT_EQ(de_morgan_or.value_at(t), va || vb) << "De Morgan OR @ " << t;
  }

  // total_duration(T) + total_duration(F) == window length.
  const double win_t = a.total_duration(true, 0, 100);
  const double win_f = a.total_duration(false, 0, 100);
  EXPECT_NEAR(win_t + win_f, 100.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimelineAlgebra, ::testing::Range(0, 12));

// --- determinism across the whole pipeline --------------------------------------

class PipelineDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(PipelineDeterminism, IdenticalSeedIdenticalVerdicts) {
  const auto params =
      app_params(GetParam() % 3, 777 + static_cast<std::uint64_t>(GetParam()));
  const auto r1 = runtime::run_experiment(params);
  const auto r2 = runtime::run_experiment(params);
  const auto a1 = analysis::analyze_experiment(r1);
  const auto a2 = analysis::analyze_experiment(r2);
  EXPECT_EQ(a1.accepted, a2.accepted);
  ASSERT_EQ(a1.verification.verdicts.size(), a2.verification.verdicts.size());
  for (std::size_t i = 0; i < a1.verification.verdicts.size(); ++i) {
    EXPECT_EQ(a1.verification.verdicts[i].correct,
              a2.verification.verdicts[i].correct);
  }
  ASSERT_EQ(a1.timeline.events.size(), a2.timeline.events.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineDeterminism, ::testing::Range(0, 6));

}  // namespace
}  // namespace loki
