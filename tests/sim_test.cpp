#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "sim/clock.hpp"
#include "sim/event_queue.hpp"
#include "sim/load.hpp"
#include "sim/network.hpp"
#include "sim/world.hpp"
#include "util/error.hpp"

namespace loki::sim {
namespace {

TEST(EventQueue, FifoAtSameInstant) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(SimTime{100}, [&] { order.push_back(1); });
  q.schedule_at(SimTime{100}, [&] { order.push_back(2); });
  q.schedule_at(SimTime{50}, [&] { order.push_back(0); });
  q.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, RunUntilAdvancesClock) {
  EventQueue q;
  q.run_until(SimTime{1000});
  EXPECT_EQ(q.now().ns, 1000);
}

TEST(EventQueue, EventsMayScheduleEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(SimTime{10}, [&] {
    q.schedule_in(Duration{5}, [&] { ++fired; });
  });
  q.run_to_completion();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now().ns, 15);
}

TEST(EventQueue, PastSchedulingRejected) {
  EventQueue q;
  q.schedule_at(SimTime{10}, [] {});
  q.run_to_completion();
  EXPECT_THROW(q.schedule_at(SimTime{5}, [] {}), LogicError);
}

TEST(EventQueue, ActionSchedulingIntoOwnTimestampRunsInSeqOrder) {
  // The (time, seq) contract at one instant: an action that schedules into
  // its *own* timestamp runs after everything already queued there (it has
  // a later sequence number), never before.
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(SimTime{100}, [&] {
    order.push_back(1);
    q.schedule_at(SimTime{100}, [&] { order.push_back(3); });  // same instant
    q.schedule_in(Duration{0}, [&] { order.push_back(4); });   // now() == 100
  });
  q.schedule_at(SimTime{100}, [&] { order.push_back(2); });  // pre-queued
  q.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(q.now().ns, 100);
}

TEST(EventQueue, InterleavedScheduleAndRunKeepsDeterministicOrder) {
  // Mixed timestamps with ties, scheduled both before and during the run:
  // execution must sort by (time, seq) regardless of heap internals.
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(SimTime{30}, [&] { order.push_back(5); });
  q.schedule_at(SimTime{10}, [&] {
    order.push_back(1);
    q.schedule_at(SimTime{20}, [&] { order.push_back(3); });
    q.schedule_at(SimTime{30}, [&] { order.push_back(6); });
  });
  q.schedule_at(SimTime{20}, [&] { order.push_back(2); });
  q.run_until(SimTime{20});
  q.schedule_at(SimTime{25}, [&] { order.push_back(4); });
  q.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5, 6}));
}

TEST(EventQueue, SteadyStateLoopIsAllocationFree) {
  // A self-rescheduling chain with a capture within Task::kInlineSize: after
  // warm-up, neither the slab nor the Task heap-fallback counter may move.
  EventQueue q;
  struct Chain {
    EventQueue* q;
    std::uint64_t remaining;
    std::uint64_t ticks = 0;
    void step() {
      ++ticks;
      if (remaining-- > 0)
        q->schedule_in(Duration{10}, [this] { step(); });
    }
  };
  Chain chain{&q, 20000};
  q.schedule_at(SimTime{0}, [&] { chain.step(); });
  q.run_until(SimTime{100});  // warm-up

  const std::size_t slab_before = q.slab_capacity();
  const std::uint64_t heap_before = Task::heap_allocations();
  q.run_to_completion();
  EXPECT_EQ(q.slab_capacity(), slab_before) << "slab grew in steady state";
  EXPECT_EQ(Task::heap_allocations(), heap_before)
      << "a task capture overflowed the inline buffer";
  EXPECT_EQ(chain.ticks, 20001u);
}

TEST(EventQueue, OversizedCapturesStillRunViaHeapFallback) {
  EventQueue q;
  std::array<std::uint64_t, 16> big{};  // 128 bytes > kInlineSize
  big[15] = 42;
  std::uint64_t got = 0;
  const std::uint64_t heap_before = Task::heap_allocations();
  q.schedule_at(SimTime{1}, [big, &got] { got = big[15]; });
  EXPECT_EQ(Task::heap_allocations(), heap_before + 1);
  q.run_to_completion();
  EXPECT_EQ(got, 42u);
}

TEST(Clock, LinearModel) {
  HostClock clock({Duration{1000}, 2.0, 1});
  EXPECT_EQ(clock.read(SimTime{0}).ns, 1000);
  EXPECT_EQ(clock.read(SimTime{500}).ns, 2000);
}

TEST(Clock, Granularity) {
  HostClock clock({Duration{0}, 1.0, 1000});
  EXPECT_EQ(clock.read(SimTime{1234567}).ns, 1234000);
}

TEST(Clock, InverseRoundTrip) {
  HostClock clock({Duration{-500}, 1.0001, 1});
  const SimTime t{123456789};
  const SimTime back = clock.to_physical(clock.read(t));
  EXPECT_NEAR(static_cast<double>(back.ns), static_cast<double>(t.ns), 2.0);
}

TEST(Clock, RandomParamsWithinEnvelope) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const ClockParams p =
        HostClock::random_params(rng, milliseconds(10), 100.0, 1000);
    EXPECT_LE(std::abs(p.alpha.ns), milliseconds(10).ns);
    EXPECT_NEAR(p.beta, 1.0, 100e-6);
    EXPECT_EQ(p.granularity_ns, 1000);
  }
}

TEST(Network, IpcFasterThanTcp) {
  Network net(NetworkParams{}, Rng(1));
  const SimTime now{0};
  double ipc_total = 0, tcp_total = 0;
  for (int i = 0; i < 200; ++i) {
    ipc_total +=
        static_cast<double>((net.delivery_time(now, ProcessId{1}, ProcessId{2},
                                               ChannelClass::Ipc) -
                             now).ns);
    tcp_total +=
        static_cast<double>((net.delivery_time(now, ProcessId{3}, ProcessId{4},
                                               ChannelClass::Tcp) -
                             now).ns);
  }
  // The thesis quotes ~20us IPC vs ~150us TCP — nearly an order of magnitude.
  EXPECT_GT(tcp_total / ipc_total, 4.0);
}

TEST(Network, FifoPerLink) {
  Network net(NetworkParams{}, Rng(2));
  SimTime prev{0};
  for (int i = 0; i < 100; ++i) {
    const SimTime d = net.delivery_time(SimTime{i * 10}, ProcessId{1},
                                        ProcessId{2}, ChannelClass::Tcp);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

World make_world() {
  WorldParams wp;
  wp.seed = 99;
  return World(wp);
}

TEST(World, PostRunsWorkWithCpuCost) {
  World w = make_world();
  HostParams hp;
  hp.name = "h0";
  const HostId h = w.add_host(hp);
  const ProcessId p = w.spawn(h, "proc");
  SimTime done{};
  w.post(p, microseconds(100), [&] { done = w.now(); });
  w.run_to_completion();
  // Cost 100us + context switch (default 30us).
  EXPECT_GE(done.ns, microseconds(100).ns);
  EXPECT_LE(done.ns, microseconds(200).ns);
}

TEST(World, KillDropsPendingWorkAndDeliveries) {
  World w = make_world();
  HostParams hp;
  hp.name = "h0";
  const HostId h = w.add_host(hp);
  const ProcessId a = w.spawn(h, "a");
  const ProcessId b = w.spawn(h, "b");
  int executed = 0;
  w.send(a, b, Lan::Control, ChannelClass::Ipc, microseconds(5),
         [&] { ++executed; });
  w.kill(b);
  w.run_to_completion();
  EXPECT_EQ(executed, 0);
  EXPECT_EQ(w.dropped_deliveries(), 1u);
}

TEST(World, TimerCancelledByKill) {
  World w = make_world();
  HostParams hp;
  hp.name = "h0";
  const HostId h = w.add_host(hp);
  const ProcessId p = w.spawn(h, "p");
  int fired = 0;
  w.timer(p, milliseconds(5), microseconds(1), [&] { ++fired; });
  w.at(SimTime{1}, [&] { w.kill(p); });
  w.run_to_completion();
  EXPECT_EQ(fired, 0);
}

TEST(World, CrossHostMessageUsesLatency) {
  World w = make_world();
  HostParams hp;
  hp.name = "h0";
  const HostId h0 = w.add_host(hp);
  hp.name = "h1";
  const HostId h1 = w.add_host(hp);
  const ProcessId a = w.spawn(h0, "a");
  const ProcessId b = w.spawn(h1, "b");
  SimTime arrival{};
  w.send(a, b, Lan::Control, ChannelClass::Tcp, microseconds(1),
         [&] { arrival = w.now(); });
  w.run_to_completion();
  EXPECT_GE(arrival.ns, microseconds(150).ns);  // base TCP latency
}

TEST(World, SchedulerQuantumDelaysWakeupUnderLoad) {
  // A loaded host delays a newly-ready process by up to ~a quantum; an idle
  // host runs it immediately. This is the Fig 3.2/3.3 mechanism.
  for (const bool loaded : {false, true}) {
    WorldParams wp;
    wp.seed = 7;
    World w(wp);
    HostParams hp;
    hp.name = "h0";
    hp.sched.quantum = milliseconds(10);
    const HostId h = w.add_host(hp);
    if (loaded) add_cpu_load(w, h, LoadParams{1.0, microseconds(200)});
    const ProcessId p = w.spawn(h, "p");
    // Give the load a head start so the CPU is mid-quantum.
    SimTime handled{};
    w.at(SimTime{milliseconds(7).ns}, [&] {
      w.post(p, microseconds(10), [&] { handled = w.now(); });
    });
    w.run_until(SimTime{milliseconds(40).ns});
    const Duration wait = handled - SimTime{milliseconds(7).ns};
    if (loaded) {
      EXPECT_GT(wait.ns, milliseconds(1).ns) << "load should delay the wakeup";
      EXPECT_LT(wait.ns, milliseconds(25).ns);
    } else {
      EXPECT_LT(wait.ns, milliseconds(1).ns);
    }
  }
}

TEST(World, RoundRobinSharesCpu) {
  World w = make_world();
  HostParams hp;
  hp.name = "h0";
  hp.sched.quantum = milliseconds(5);
  const HostId h = w.add_host(hp);
  const ProcessId l1 = add_cpu_load(w, h, LoadParams{1.0, microseconds(100)});
  const ProcessId l2 = add_cpu_load(w, h, LoadParams{1.0, microseconds(100)});
  w.run_until(SimTime{milliseconds(200).ns});
  const Duration c1 = w.process(l1).cpu_used;
  const Duration c2 = w.process(l2).cpu_used;
  EXPECT_GT(c1.ns, 0);
  EXPECT_GT(c2.ns, 0);
  const double ratio = static_cast<double>(c1.ns) / static_cast<double>(c2.ns);
  EXPECT_NEAR(ratio, 1.0, 0.2);  // fair within 20%
  EXPECT_GT(w.scheduler(h).preemptions(), 10u);
}

TEST(World, DutyCycleLoadUsesFraction) {
  World w = make_world();
  HostParams hp;
  hp.name = "h0";
  const HostId h = w.add_host(hp);
  const ProcessId l = add_cpu_load(w, h, LoadParams{0.5, microseconds(200)});
  w.run_until(SimTime{milliseconds(500).ns});
  const double used = static_cast<double>(w.process(l).cpu_used.ns);
  EXPECT_NEAR(used / milliseconds(500).ns, 0.5, 0.12);
}

TEST(World, DeterministicAcrossRuns) {
  auto run_once = [] {
    WorldParams wp;
    wp.seed = 123;
    World w(wp);
    HostParams hp;
    hp.name = "h0";
    const HostId h = w.add_host(hp);
    hp.name = "h1";
    const HostId h2 = w.add_host(hp);
    const ProcessId a = w.spawn(h, "a");
    const ProcessId b = w.spawn(h2, "b");
    std::vector<std::int64_t> arrivals;
    for (int i = 0; i < 20; ++i) {
      w.at(SimTime{i * 1000}, [&w, a, b, &arrivals] {
        w.send(a, b, Lan::App, ChannelClass::Tcp, microseconds(5),
               [&] { arrivals.push_back(w.now().ns); });
      });
    }
    w.run_to_completion();
    return arrivals;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(World, HostLookup) {
  World w = make_world();
  HostParams hp;
  hp.name = "alpha";
  const HostId h = w.add_host(hp);
  EXPECT_EQ(w.host_by_name("alpha"), h);
  EXPECT_EQ(w.host_name(h), "alpha");
  EXPECT_THROW(w.host_by_name("nope"), ConfigError);
  hp.name = "alpha";
  EXPECT_THROW(w.add_host(hp), LogicError);
}

TEST(World, SteadyStateMessagingStaysWithinTaskInlineBudget) {
  // Two processes ping-ponging through send(): the kernel-side wrappers
  // (delivery, timers, scheduler bursts) must all fit Task's inline buffer,
  // so the Task heap-fallback counter stays flat across the steady state.
  World w = make_world();
  HostParams hp;
  hp.name = "h0";
  const HostId h0 = w.add_host(hp);
  hp.name = "h1";
  const HostId h1 = w.add_host(hp);
  const ProcessId a = w.spawn(h0, "a");
  const ProcessId b = w.spawn(h1, "b");

  struct PingPong {
    World* w;
    ProcessId a, b;
    int remaining;
    void fire(ProcessId from, ProcessId to) {
      if (remaining-- <= 0) return;
      w->send(from, to, Lan::App, ChannelClass::Tcp, microseconds(5),
              [this, from, to] { fire(to, from); });
    }
  };
  PingPong game{&w, a, b, 3000};
  w.post(a, microseconds(1), [&] { game.fire(a, b); });
  w.run_until(SimTime{milliseconds(20).ns});  // warm-up

  const std::uint64_t heap_before = Task::heap_allocations();
  const std::size_t slab_before = w.events().slab_capacity();
  w.run_to_completion();
  EXPECT_EQ(Task::heap_allocations(), heap_before);
  EXPECT_EQ(w.events().slab_capacity(), slab_before);
  EXPECT_LE(game.remaining, 0);  // the chain ran to exhaustion
}

TEST(World, EpochPreventsStaleTimerAfterKill) {
  World w = make_world();
  HostParams hp;
  hp.name = "h0";
  const HostId h = w.add_host(hp);
  const ProcessId p = w.spawn(h, "p");
  int fired = 0;
  w.post(p, microseconds(1), [&] {
    w.timer(p, milliseconds(10), microseconds(1), [&] { ++fired; });
  });
  w.at(SimTime{milliseconds(5).ns}, [&] { w.kill(p); });
  w.run_to_completion();
  EXPECT_EQ(fired, 0);
}

}  // namespace
}  // namespace loki::sim
