// Compile-once campaign invariants: a reused ExperimentContext must be
// byte-identical to fresh run_experiment calls — for shuffled seeds, across
// structure changes (which force a recompile), and through every runner
// backend (serial / thread pool / process workers / FakeTransport remote).
// Also covers the CompiledStudy compatibility check and the
// GroundTruth::in_state binary-search boundaries.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "apps/election.hpp"
#include "apps/registry.hpp"
#include "campaign/campaign.hpp"
#include "campaign/remote_runner.hpp"
#include "campaign/transport.hpp"
#include "runtime/compiled_study.hpp"
#include "runtime/experiment_context.hpp"
#include "runtime/serialize.hpp"

namespace loki {
namespace {

using runtime::ExperimentParams;
using runtime::ExperimentResult;

struct RegisterApps {
  RegisterApps() { apps::register_builtin_apps(); }
};
const RegisterApps kRegistered;

const std::vector<std::string> kHosts = {"hostA", "hostB", "hostC"};
const std::vector<std::pair<std::string, std::string>> kPlacement = {
    {"black", "hostA"}, {"yellow", "hostB"}, {"green", "hostC"}};

/// Election experiment with a live fault + restart — specs are re-parsed on
/// every call, so reuse must go through the deep spec-equality check, not
/// pointer identity.
ExperimentParams election_params(std::uint64_t seed) {
  apps::ElectionParams app;
  app.run_for = milliseconds(300);
  app.fault_activation_prob = 0.85;
  auto p = apps::election_experiment(seed, kHosts, kPlacement, app);
  p.nodes[0].fault_spec =
      spec::parse_fault_spec("bfault1 (black:LEAD) always\n", "t");
  p.nodes[0].restart.enabled = true;
  p.nodes[0].restart.delay = milliseconds(60);
  return p;
}

/// A structurally different study: two nodes on two hosts.
ExperimentParams small_params(std::uint64_t seed) {
  apps::ElectionParams app;
  app.run_for = milliseconds(200);
  return apps::election_experiment(seed, {"hostA", "hostB"},
                                   {{"black", "hostA"}, {"green", "hostB"}},
                                   app);
}

std::vector<std::uint8_t> bytes_of(const ExperimentResult& result) {
  return runtime::encode_experiment_result(result);
}

// --- GroundTruth::in_state ---------------------------------------------------

TEST(GroundTruth, InStateBinarySearchBoundaries) {
  runtime::GroundTruth truth;
  truth.state_seq_of("m") = {{SimTime{100}, "A"},
                             {SimTime{200}, "B"},
                             {SimTime{200}, "C"},  // same-instant re-entry
                             {SimTime{300}, "D"}};

  EXPECT_FALSE(truth.in_state("m", "A", SimTime{99}));   // before first entry
  EXPECT_TRUE(truth.in_state("m", "A", SimTime{100}));   // exact enter time
  EXPECT_TRUE(truth.in_state("m", "A", SimTime{199}));   // held until next
  // At a tie the *last* entry at that instant is in force (matches the
  // linear scan this replaced: it kept overwriting through equal times).
  EXPECT_TRUE(truth.in_state("m", "C", SimTime{200}));
  EXPECT_FALSE(truth.in_state("m", "B", SimTime{200}));
  EXPECT_TRUE(truth.in_state("m", "C", SimTime{299}));
  EXPECT_TRUE(truth.in_state("m", "D", SimTime{300}));
  EXPECT_TRUE(truth.in_state("m", "D", SimTime{100'000}));  // holds forever
  EXPECT_FALSE(truth.in_state("m", "A", SimTime{300}));
  EXPECT_FALSE(truth.in_state("other", "A", SimTime{200}));  // unknown machine
}

TEST(GroundTruth, InStateEmptySequence) {
  runtime::GroundTruth truth;
  truth.state_seq_of("m") = {};
  EXPECT_FALSE(truth.in_state("m", "A", SimTime{0}));
}

// --- context reuse vs fresh run_experiment -----------------------------------

TEST(ExperimentContext, ReusedContextMatchesFreshRunsShuffledSeeds) {
  // Shuffled and repeated seeds: reset must leave no residue whatsoever —
  // a repeated seed later in the sequence must reproduce its earlier bytes.
  const std::vector<std::uint64_t> seeds = {7, 3, 11, 3, 5, 1, 9, 7};
  runtime::ExperimentContext context;
  std::map<std::uint64_t, std::vector<std::uint8_t>> first_bytes;
  for (const std::uint64_t seed : seeds) {
    const ExperimentParams params = election_params(seed);
    const std::vector<std::uint8_t> reused = bytes_of(context.run(params));
    const std::vector<std::uint8_t> fresh =
        bytes_of(runtime::run_experiment(election_params(seed)));
    EXPECT_EQ(reused, fresh) << "seed " << seed;
    const auto [it, inserted] = first_bytes.emplace(seed, reused);
    if (!inserted) {
      EXPECT_EQ(it->second, reused) << "repeat of seed " << seed;
    }
  }
  EXPECT_EQ(context.runs(), seeds.size());
  EXPECT_EQ(context.recompiles(), 1u)
      << "equal specs must reuse the compiled study";
}

TEST(ExperimentContext, StructureChangeRecompilesAndStaysIdentical) {
  runtime::ExperimentContext context;
  const auto check = [&](const ExperimentParams& params) {
    EXPECT_EQ(bytes_of(context.run(params)),
              bytes_of(runtime::run_experiment(params)));
  };
  check(election_params(5));
  check(small_params(6));     // different node list -> recompile
  check(election_params(5));  // back again -> recompile, same bytes as run 1
  EXPECT_EQ(context.recompiles(), 3u);

  // Same nodes but a different fault expression is a structure change too.
  ExperimentParams tweaked = election_params(5);
  tweaked.nodes[0].fault_spec =
      spec::parse_fault_spec("bfault1 (black:FOLLOW) once\n", "t");
  check(tweaked);
  EXPECT_EQ(context.recompiles(), 4u);
}

TEST(ExperimentContext, SharedCompiledStudyAcrossContexts) {
  const ExperimentParams params = election_params(21);
  const auto compiled = runtime::CompiledStudy::compile(params);
  EXPECT_TRUE(compiled->compatible_with(election_params(99)));
  EXPECT_FALSE(compiled->compatible_with(small_params(99)));

  runtime::ExperimentContext a(compiled);
  runtime::ExperimentContext b(compiled);
  const auto want = bytes_of(runtime::run_experiment(params));
  EXPECT_EQ(bytes_of(a.run(params)), want);
  EXPECT_EQ(bytes_of(b.run(params)), want);
  EXPECT_EQ(a.recompiles(), 0u);
  EXPECT_EQ(b.recompiles(), 0u);
  EXPECT_EQ(a.compiled().get(), compiled.get());
}

// --- runner-level property: every backend == serial --------------------------

runtime::StudyParams property_study(int experiments) {
  runtime::StudyParams study;
  study.name = "context-property";
  study.experiments = experiments;
  study.make_params = [](int k) {
    return election_params(31'000 + static_cast<std::uint64_t>(k));
  };
  return study;
}

/// The full sink event sequence (results as encoded bytes) of one study
/// through one runner.
std::vector<std::vector<std::uint8_t>> run_collected(
    std::shared_ptr<campaign::Runner> runner, const runtime::StudyParams& study) {
  std::vector<std::vector<std::uint8_t>> results;
  auto sink = std::make_shared<campaign::CallbackSink>();
  sink->experiment([&](const campaign::StudyInfo&, int index,
                       const ExperimentResult& result) {
    EXPECT_EQ(index, static_cast<int>(results.size())) << "emit order";
    results.push_back(runtime::encode_experiment_result(result));
  });
  CampaignBuilder builder;
  builder.add(study).runner(std::move(runner)).sink(sink);
  builder.build().run();
  return results;
}

TEST(ExperimentContext, EveryRunnerBackendMatchesSerial) {
  const auto study = property_study(8);
  const auto serial = run_collected(campaign::parse_runner_spec("serial"), study);
  ASSERT_EQ(serial.size(), 8u);

  EXPECT_EQ(run_collected(campaign::parse_runner_spec("threads:4"), study),
            serial);
  EXPECT_EQ(run_collected(campaign::parse_runner_spec("procs:2"), study),
            serial);
  EXPECT_EQ(run_collected(
                std::make_shared<campaign::RemoteRunner>(
                    std::make_shared<campaign::FakeTransport>(2)),
                study),
            serial);
}

TEST(ExperimentContext, DeploymentPoolReusedInSteadyState) {
  // The deployment/daemon pool is the last per-experiment heap churn: built
  // on the first run of a study, reset in place for every later run. In
  // steady state (same structure) the build counter must stay flat while
  // runs() climbs — and the bytes must still match the fresh path, which
  // the identity tests above already pin down.
  runtime::ExperimentContext context;
  (void)context.run(election_params(1));
  const std::uint64_t after_first = context.deployment_builds();
  EXPECT_GT(after_first, 0u);
  for (std::uint64_t seed = 2; seed <= 8; ++seed)
    (void)context.run(election_params(seed));
  EXPECT_EQ(context.deployment_builds(), after_first)
      << "steady-state runs must reuse the pooled deployment objects";
  EXPECT_EQ(context.runs(), 8u);
  EXPECT_EQ(context.recompiles(), 1u);

  // A structure change recompiles, which drops the pool (the pooled objects
  // reference the old study's dictionary) and rebuilds on the next run.
  (void)context.run(small_params(9));
  EXPECT_GT(context.deployment_builds(), after_first);
  EXPECT_EQ(context.recompiles(), 2u);
}

TEST(ExperimentContext, SerialRunnerReusesOneCompileAcrossAStudy) {
  // Two studies back to back through one runner object: each run_study gets
  // a fresh context (different studies may differ structurally), and within
  // a study every experiment must agree with the one-shot path.
  campaign::SerialRunner runner;
  const auto study = property_study(3);
  std::vector<std::vector<std::uint8_t>> got;
  runner.run_study(study, [&](int, ExperimentResult&& r) {
    got.push_back(bytes_of(r));
  });
  for (int k = 0; k < 3; ++k)
    EXPECT_EQ(got[static_cast<std::size_t>(k)],
              bytes_of(runtime::run_experiment(study.make_params(k))));
}

}  // namespace
}  // namespace loki
