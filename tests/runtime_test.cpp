#include <gtest/gtest.h>

#include "runtime/dictionary.hpp"
#include "runtime/fault_parser.hpp"
#include "runtime/recorder.hpp"
#include "runtime/state_machine.hpp"
#include "runtime/timeline.hpp"
#include "spec/fault_spec.hpp"
#include "util/error.hpp"

namespace loki::runtime {
namespace {

spec::StateMachineSpec mini_spec(const std::string& name) {
  const char* text = R"(
global_state_list
  BEGIN
  A
  B
  CRASH
  EXIT
end_global_state_list
event_list
  start
  go
  back
  CRASH
end_event_list
state BEGIN
  start A
state A notify m2
  go B
  CRASH CRASH
state B notify
  back A
  CRASH CRASH
state CRASH notify m2
state EXIT
)";
  auto s = spec::parse_state_machine_spec(text, name + ".sm");
  s.set_name(name);
  return s;
}

StudyDictionary make_dict(const spec::StateMachineSpec& sm,
                          const spec::FaultSpec& faults) {
  return StudyDictionary::build({&sm}, {&faults});
}

TEST(Dictionary, IndexesAndReservedNames) {
  const auto sm = mini_spec("m1");
  const spec::FaultSpec faults =
      spec::parse_fault_spec("f1 (m1:B) once\n", "f");
  const StudyDictionary dict = make_dict(sm, faults);

  EXPECT_EQ(dict.machine_index("m1"), 0u);
  EXPECT_THROW(dict.machine_index("nope"), LogicError);
  EXPECT_LT(dict.state_index("A"), dict.states().size());
  // Reserved names are always present even if the spec omits them.
  EXPECT_NO_THROW(dict.state_index("CRASH"));
  EXPECT_NO_THROW(dict.event_index("m1", "default"));
  EXPECT_NO_THROW(dict.event_index("m1", "CRASH"));
  EXPECT_EQ(dict.faults_of("m1").size(), 1u);
  EXPECT_EQ(dict.fault_index("m1", "f1"), 0u);
}

TEST(Dictionary, NameIdNameRoundTripIdentity) {
  const auto sm1 = mini_spec("m1");
  const auto sm2 = mini_spec("m2");
  const spec::FaultSpec none;
  const StudyDictionary dict = StudyDictionary::build({&sm1, &sm2}, {&none, &none});

  for (const std::string& m : dict.machines())
    EXPECT_EQ(dict.machine_name(dict.machine_index(m)), m);
  for (const std::string& s : dict.states())
    EXPECT_EQ(dict.state_name(dict.state_index(s)), s);
  // Dense: ids cover [0, count) exactly.
  for (MachineId id = 0; id < dict.machine_count(); ++id)
    EXPECT_EQ(dict.machine_index(dict.machine_name(id)), id);
  for (StateId id = 0; id < dict.state_count(); ++id)
    EXPECT_EQ(dict.state_index(dict.state_name(id)), id);
}

TEST(Dictionary, StableOrderingAndTryLookups) {
  const auto sm1 = mini_spec("m1");
  const auto sm2 = mini_spec("m2");
  const spec::FaultSpec none;
  // Machine order follows the argument order; states are first-seen order.
  const StudyDictionary a = StudyDictionary::build({&sm1, &sm2}, {&none, &none});
  const StudyDictionary b = StudyDictionary::build({&sm1, &sm2}, {&none, &none});
  EXPECT_EQ(a.machines(), b.machines());
  EXPECT_EQ(a.states(), b.states());
  EXPECT_EQ(a.machines(), (std::vector<std::string>{"m1", "m2"}));

  EXPECT_EQ(a.try_machine_index("m2"), a.machine_index("m2"));
  EXPECT_EQ(a.try_machine_index("ghost"), kInvalidId);
  EXPECT_EQ(a.try_state_index("A"), a.state_index("A"));
  EXPECT_EQ(a.try_state_index("NO_SUCH_STATE"), kInvalidId);
}

TEST(Recorder, TimelineRoundTripThroughFileFormat) {
  const auto sm = mini_spec("m1");
  const spec::FaultSpec faults =
      spec::parse_fault_spec("f1 ((m1:B) & ~(m1:A)) always\n", "f");
  const StudyDictionary dict = make_dict(sm, faults);

  Recorder rec("m1", "hostA", dict);
  EXPECT_FALSE(rec.has_history());
  rec.record_state_change(dict.event_index("m1", "start"),
                          dict.state_index("A"), LocalTime{1000});
  rec.record_fault_injection(0, LocalTime{2000});
  rec.record_restart("hostB", LocalTime{3000});
  rec.record_state_change(dict.event_index("m1", "go"), dict.state_index("B"),
                          LocalTime{4000});
  EXPECT_TRUE(rec.has_history());
  rec.record_user_message("hello");
  EXPECT_EQ(rec.user_messages().size(), 1u);

  const std::string text = rec.serialize();
  const LocalTimeline tl = parse_local_timeline(text, "rt");
  EXPECT_EQ(tl.nickname, "m1");
  EXPECT_EQ(tl.initial_host, "hostA");
  ASSERT_EQ(tl.records.size(), 4u);
  EXPECT_EQ(tl.records[0].type, RecordType::StateChange);
  EXPECT_EQ(tl.state_name(tl.records[0].state_index), "A");
  EXPECT_EQ(tl.records[0].time.ns, 1000);
  EXPECT_EQ(tl.records[1].type, RecordType::FaultInjection);
  EXPECT_EQ(tl.fault_name(tl.records[1].fault_index), "f1");
  EXPECT_EQ(tl.records[2].type, RecordType::Restart);
  EXPECT_EQ(tl.records[2].host, "hostB");
  // Host tracking across the restart record.
  EXPECT_EQ(tl.host_at(0), "hostA");
  EXPECT_EQ(tl.host_at(3), "hostB");
  // The fault expression text survives the round trip.
  EXPECT_EQ(tl.faults[0].trigger, spec::Trigger::Always);
  EXPECT_NE(tl.faults[0].expr_text.find("m1:B"), std::string::npos);
}

TEST(Timeline, Large64BitTimesSurviveSplit) {
  const auto sm = mini_spec("m1");
  const spec::FaultSpec faults;
  const StudyDictionary dict = make_dict(sm, faults);
  Recorder rec("m1", "h", dict);
  const std::int64_t big = (123ll << 32) + 456;
  rec.record_state_change(0, 0, LocalTime{big});
  const LocalTimeline tl = parse_local_timeline(rec.serialize(), "rt");
  EXPECT_EQ(tl.records[0].time.ns, big);
}

TEST(Timeline, ParserRejectsGarbage) {
  EXPECT_THROW(parse_local_timeline("", "empty"), ParseError);
  EXPECT_THROW(parse_local_timeline("m1\nlocal_timeline\n9 1 2 3 4\n", "bad"),
               ParseError);
}

// --- fault parser ------------------------------------------------------------

/// Harness over the id-based parser API: owns the dictionary and a dense
/// view, with name-based setters for test readability.
struct ParserHarness {
  spec::StateMachineSpec sm = mini_spec("m1");
  spec::FaultSpec faults;
  StudyDictionary dict;
  FaultParser parser;
  std::vector<StateId> view;

  explicit ParserHarness(const std::string& fault_text)
      : faults(spec::parse_fault_spec(fault_text, "f")),
        dict(StudyDictionary::build({&sm}, {&faults})),
        parser(faults.entries, dict),
        view(dict.machine_count(), kNoState) {}

  void set(const std::string& machine, const std::string& state) {
    view[dict.machine_index(machine)] = dict.state_index(state);
  }
  std::vector<std::uint32_t> fire() { return parser.on_view_change(view); }
};

TEST(FaultParser, PositiveEdgeTriggering) {
  ParserHarness h("once_f (m1:B) once\nalways_f (m1:B) always\n");

  h.set("m1", "A");
  EXPECT_TRUE(h.fire().empty());

  h.set("m1", "B");
  auto fired = h.fire();
  EXPECT_EQ(fired.size(), 2u);  // both rise

  // Staying in B: no new edge.
  EXPECT_TRUE(h.fire().empty());

  // Leave and re-enter: only `always` fires again.
  h.set("m1", "A");
  EXPECT_TRUE(h.fire().empty());
  h.set("m1", "B");
  fired = h.fire();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(h.parser.entries()[fired[0]].name, "always_f");
}

TEST(FaultParser, InitiallyTrueNegationDoesNotFire) {
  // ~(m1:B) is true against the empty view; it must not fire until it goes
  // false and comes back (documented initialization rule).
  ParserHarness h("neg ~(m1:B) always\n");
  h.set("m1", "A");  // still ~B: no edge
  EXPECT_TRUE(h.fire().empty());
  h.set("m1", "B");  // now false
  EXPECT_TRUE(h.fire().empty());
  h.set("m1", "A");  // false -> true: fire
  EXPECT_EQ(h.fire().size(), 1u);
}

TEST(FaultParser, ResetRearmsOnceFaults) {
  ParserHarness h("f (m1:B) once\n");
  h.set("m1", "B");
  EXPECT_EQ(h.fire().size(), 1u);
  h.parser.reset();
  h.set("m1", "A");
  h.fire();
  h.set("m1", "B");
  EXPECT_EQ(h.fire().size(), 1u);
}

TEST(FaultParser, TermsOutsideTheStudyNeverFire) {
  // (ghost:B) names a machine that is not in the study dictionary — it
  // compiles to constant false, so the conjunction can never rise.
  ParserHarness h("f ((m1:B) & (ghost:B)) always\ng (m1:B) always\n");
  h.set("m1", "B");
  const auto fired = h.fire();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(h.parser.entries()[fired[0]].name, "g");
}

// --- state machine -----------------------------------------------------------

struct SmHarness {
  spec::StateMachineSpec sm_spec = mini_spec("m1");
  spec::StateMachineSpec peer_spec = mini_spec("m2");
  spec::FaultSpec faults;
  spec::FaultSpec peer_faults;
  StudyDictionary dict;
  std::shared_ptr<Recorder> recorder;
  std::vector<std::string> injected;
  std::vector<std::pair<std::string, std::vector<std::string>>> notified;
  LocalTime clock{1000};
  std::unique_ptr<StateMachine> sm;

  explicit SmHarness(const std::string& fault_text = "")
      : faults(fault_text.empty()
                   ? spec::FaultSpec{}
                   : spec::parse_fault_spec(fault_text, "f")),
        dict(StudyDictionary::build({&sm_spec, &peer_spec},
                                    {&faults, &peer_faults})),
        recorder(std::make_shared<Recorder>("m1", "hostA", dict)) {
    StateMachine::Hooks hooks;
    hooks.clock = [this] {
      clock = clock + Duration{10};
      return clock;
    };
    hooks.send_notifications = [this](StateId state,
                                      const std::vector<MachineId>& to) {
      std::vector<std::string> names;
      for (const MachineId m : to)
        names.push_back(m == kInvalidId ? "<invalid>" : dict.machine_name(m));
      notified.emplace_back(dict.state_name(state), std::move(names));
    };
    hooks.inject_fault = [this](const std::string& f) { injected.push_back(f); };
    sm = std::make_unique<StateMachine>(sm_spec, faults, dict, recorder,
                                        std::move(hooks));
  }

  MachineId mid(const std::string& name) const { return dict.machine_index(name); }
  StateId sid(const std::string& name) const { return dict.state_index(name); }
};

TEST(StateMachine, InitializationViaBeginTransition) {
  SmHarness h;
  EXPECT_FALSE(h.sm->initialized());
  EXPECT_EQ(h.sm->current_state(), "BEGIN");
  h.sm->notify_event("start");  // BEGIN -start-> A
  EXPECT_TRUE(h.sm->initialized());
  EXPECT_EQ(h.sm->current_state(), "A");
}

TEST(StateMachine, InitializationViaStateName) {
  SmHarness h;
  h.sm->notify_event("B");  // B is a state, not an event
  EXPECT_EQ(h.sm->current_state(), "B");
  // Recorded with the reserved `default` event index.
  const auto& rec = h.recorder->timeline().records;
  ASSERT_EQ(rec.size(), 1u);
  EXPECT_EQ(h.recorder->timeline().event_name(rec[0].event_index), "default");
}

TEST(StateMachine, InvalidFirstNotificationThrows) {
  SmHarness h;
  EXPECT_THROW(h.sm->notify_event("go"), LogicError);  // no BEGIN arc, not a state
}

TEST(StateMachine, TransitionsNotifyAndRecord) {
  SmHarness h;
  h.sm->notify_event("start");
  ASSERT_EQ(h.notified.size(), 1u);  // entering A notifies "m2"
  EXPECT_EQ(h.notified[0].first, "A");
  EXPECT_EQ(h.notified[0].second, (std::vector<std::string>{"m2"}));

  h.sm->notify_event("go");
  EXPECT_EQ(h.sm->current_state(), "B");
  // B's notify list is empty: no new notification.
  EXPECT_EQ(h.notified.size(), 1u);
  EXPECT_EQ(h.recorder->timeline().records.size(), 2u);
}

TEST(StateMachine, UnmodeledEventIgnoredAndCounted) {
  SmHarness h;
  h.sm->notify_event("start");
  h.sm->notify_event("back");  // no arc from A
  EXPECT_EQ(h.sm->current_state(), "A");
  EXPECT_EQ(h.sm->ignored_events(), 1u);
}

TEST(StateMachine, LocalFaultFiresOnOwnTransition) {
  SmHarness h("f1 (m1:B) once\n");
  h.sm->notify_event("start");
  EXPECT_TRUE(h.injected.empty());
  h.sm->notify_event("go");
  ASSERT_EQ(h.injected.size(), 1u);
  EXPECT_EQ(h.injected[0], "f1");
  // Injection recorded after the state change.
  const auto& rec = h.recorder->timeline().records;
  ASSERT_EQ(rec.size(), 3u);
  EXPECT_EQ(rec[2].type, RecordType::FaultInjection);
}

TEST(StateMachine, RemoteStateTriggersFault) {
  SmHarness h("f2 ((m1:A) & (m2:B)) once\n");
  h.sm->notify_event("start");
  EXPECT_TRUE(h.injected.empty());
  h.sm->on_remote_state(h.mid("m2"), h.sid("B"));
  ASSERT_EQ(h.injected.size(), 1u);
  EXPECT_EQ(h.sm->view().at("m2"), "B");
}

TEST(StateMachine, StateUpdatesDoNotOverrideOwnState) {
  SmHarness h;
  h.sm->notify_event("start");
  h.sm->apply_state_updates(
      {{h.mid("m1"), h.sid("B")}, {h.mid("m2"), h.sid("CRASH")}});
  EXPECT_EQ(h.sm->view().at("m1"), "A");  // own state authoritative
  EXPECT_EQ(h.sm->view().at("m2"), "CRASH");
}

TEST(StateMachine, DaemonCrashRecordUsesReservedIndices) {
  SmHarness h;
  h.sm->notify_event("start");
  h.sm->record_crash_detected_by_daemon(LocalTime{5555});
  const auto& tl = h.recorder->timeline();
  const auto& rec = tl.records.back();
  EXPECT_EQ(tl.state_name(rec.state_index), "CRASH");
  EXPECT_EQ(tl.event_name(rec.event_index), "CRASH");
  EXPECT_EQ(rec.time.ns, 5555);
}

}  // namespace
}  // namespace loki::runtime
