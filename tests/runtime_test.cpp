#include <gtest/gtest.h>

#include "runtime/dictionary.hpp"
#include "runtime/fault_parser.hpp"
#include "runtime/recorder.hpp"
#include "runtime/state_machine.hpp"
#include "runtime/timeline.hpp"
#include "spec/fault_spec.hpp"
#include "util/error.hpp"

namespace loki::runtime {
namespace {

spec::StateMachineSpec mini_spec(const std::string& name) {
  const char* text = R"(
global_state_list
  BEGIN
  A
  B
  CRASH
  EXIT
end_global_state_list
event_list
  start
  go
  back
  CRASH
end_event_list
state BEGIN
  start A
state A notify other
  go B
  CRASH CRASH
state B notify
  back A
  CRASH CRASH
state CRASH notify other
state EXIT
)";
  auto s = spec::parse_state_machine_spec(text, name + ".sm");
  s.set_name(name);
  return s;
}

StudyDictionary make_dict(const spec::StateMachineSpec& sm,
                          const spec::FaultSpec& faults) {
  return StudyDictionary::build({&sm}, {&faults});
}

TEST(Dictionary, IndexesAndReservedNames) {
  const auto sm = mini_spec("m1");
  const spec::FaultSpec faults =
      spec::parse_fault_spec("f1 (m1:B) once\n", "f");
  const StudyDictionary dict = make_dict(sm, faults);

  EXPECT_EQ(dict.machine_index("m1"), 0u);
  EXPECT_THROW(dict.machine_index("nope"), LogicError);
  EXPECT_LT(dict.state_index("A"), dict.states().size());
  // Reserved names are always present even if the spec omits them.
  EXPECT_NO_THROW(dict.state_index("CRASH"));
  EXPECT_NO_THROW(dict.event_index("m1", "default"));
  EXPECT_NO_THROW(dict.event_index("m1", "CRASH"));
  EXPECT_EQ(dict.faults_of("m1").size(), 1u);
  EXPECT_EQ(dict.fault_index("m1", "f1"), 0u);
}

TEST(Recorder, TimelineRoundTripThroughFileFormat) {
  const auto sm = mini_spec("m1");
  const spec::FaultSpec faults =
      spec::parse_fault_spec("f1 ((m1:B) & ~(m1:A)) always\n", "f");
  const StudyDictionary dict = make_dict(sm, faults);

  Recorder rec("m1", "hostA", dict);
  EXPECT_FALSE(rec.has_history());
  rec.record_state_change(dict.event_index("m1", "start"),
                          dict.state_index("A"), LocalTime{1000});
  rec.record_fault_injection(0, LocalTime{2000});
  rec.record_restart("hostB", LocalTime{3000});
  rec.record_state_change(dict.event_index("m1", "go"), dict.state_index("B"),
                          LocalTime{4000});
  EXPECT_TRUE(rec.has_history());
  rec.record_user_message("hello");
  EXPECT_EQ(rec.user_messages().size(), 1u);

  const std::string text = rec.serialize();
  const LocalTimeline tl = parse_local_timeline(text, "rt");
  EXPECT_EQ(tl.nickname, "m1");
  EXPECT_EQ(tl.initial_host, "hostA");
  ASSERT_EQ(tl.records.size(), 4u);
  EXPECT_EQ(tl.records[0].type, RecordType::StateChange);
  EXPECT_EQ(tl.state_name(tl.records[0].state_index), "A");
  EXPECT_EQ(tl.records[0].time.ns, 1000);
  EXPECT_EQ(tl.records[1].type, RecordType::FaultInjection);
  EXPECT_EQ(tl.fault_name(tl.records[1].fault_index), "f1");
  EXPECT_EQ(tl.records[2].type, RecordType::Restart);
  EXPECT_EQ(tl.records[2].host, "hostB");
  // Host tracking across the restart record.
  EXPECT_EQ(tl.host_at(0), "hostA");
  EXPECT_EQ(tl.host_at(3), "hostB");
  // The fault expression text survives the round trip.
  EXPECT_EQ(tl.faults[0].trigger, spec::Trigger::Always);
  EXPECT_NE(tl.faults[0].expr_text.find("m1:B"), std::string::npos);
}

TEST(Timeline, Large64BitTimesSurviveSplit) {
  const auto sm = mini_spec("m1");
  const spec::FaultSpec faults;
  const StudyDictionary dict = make_dict(sm, faults);
  Recorder rec("m1", "h", dict);
  const std::int64_t big = (123ll << 32) + 456;
  rec.record_state_change(0, 0, LocalTime{big});
  const LocalTimeline tl = parse_local_timeline(rec.serialize(), "rt");
  EXPECT_EQ(tl.records[0].time.ns, big);
}

TEST(Timeline, ParserRejectsGarbage) {
  EXPECT_THROW(parse_local_timeline("", "empty"), ParseError);
  EXPECT_THROW(parse_local_timeline("m1\nlocal_timeline\n9 1 2 3 4\n", "bad"),
               ParseError);
}

// --- fault parser ------------------------------------------------------------

spec::StateView view_of(const std::map<std::string, std::string>* m) {
  return [m](const std::string& machine) -> const std::string* {
    const auto it = m->find(machine);
    return it == m->end() ? nullptr : &it->second;
  };
}

TEST(FaultParser, PositiveEdgeTriggering) {
  const spec::FaultSpec spec = spec::parse_fault_spec(
      "once_f (m1:B) once\nalways_f (m1:B) always\n", "f");
  FaultParser parser(spec.entries);

  std::map<std::string, std::string> view;
  view["m1"] = "A";
  EXPECT_TRUE(parser.on_view_change(view_of(&view)).empty());

  view["m1"] = "B";
  auto fired = parser.on_view_change(view_of(&view));
  EXPECT_EQ(fired.size(), 2u);  // both rise

  // Staying in B: no new edge.
  EXPECT_TRUE(parser.on_view_change(view_of(&view)).empty());

  // Leave and re-enter: only `always` fires again.
  view["m1"] = "A";
  EXPECT_TRUE(parser.on_view_change(view_of(&view)).empty());
  view["m1"] = "B";
  fired = parser.on_view_change(view_of(&view));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(parser.entries()[fired[0]].name, "always_f");
}

TEST(FaultParser, InitiallyTrueNegationDoesNotFire) {
  // ~(m1:B) is true against the empty view; it must not fire until it goes
  // false and comes back (documented initialization rule).
  const spec::FaultSpec spec =
      spec::parse_fault_spec("neg ~(m1:B) always\n", "f");
  FaultParser parser(spec.entries);
  std::map<std::string, std::string> view;
  view["m1"] = "A";  // still ~B: no edge
  EXPECT_TRUE(parser.on_view_change(view_of(&view)).empty());
  view["m1"] = "B";  // now false
  EXPECT_TRUE(parser.on_view_change(view_of(&view)).empty());
  view["m1"] = "A";  // false -> true: fire
  EXPECT_EQ(parser.on_view_change(view_of(&view)).size(), 1u);
}

TEST(FaultParser, ResetRearmsOnceFaults) {
  const spec::FaultSpec spec = spec::parse_fault_spec("f (m1:B) once\n", "f");
  FaultParser parser(spec.entries);
  std::map<std::string, std::string> view{{"m1", "B"}};
  EXPECT_EQ(parser.on_view_change(view_of(&view)).size(), 1u);
  parser.reset();
  view["m1"] = "A";
  parser.on_view_change(view_of(&view));
  view["m1"] = "B";
  EXPECT_EQ(parser.on_view_change(view_of(&view)).size(), 1u);
}

// --- state machine -----------------------------------------------------------

struct SmHarness {
  spec::StateMachineSpec sm_spec = mini_spec("m1");
  spec::FaultSpec faults;
  StudyDictionary dict;
  std::shared_ptr<Recorder> recorder;
  std::vector<std::string> injected;
  std::vector<std::pair<std::string, std::vector<std::string>>> notified;
  LocalTime clock{1000};
  std::unique_ptr<StateMachine> sm;

  explicit SmHarness(const std::string& fault_text = "")
      : faults(fault_text.empty()
                   ? spec::FaultSpec{}
                   : spec::parse_fault_spec(fault_text, "f")),
        dict(StudyDictionary::build({&sm_spec}, {&faults})),
        recorder(std::make_shared<Recorder>("m1", "hostA", dict)) {
    StateMachine::Hooks hooks;
    hooks.clock = [this] {
      clock = clock + Duration{10};
      return clock;
    };
    hooks.send_notifications = [this](const std::string& state,
                                      const std::vector<std::string>& to) {
      notified.emplace_back(state, to);
    };
    hooks.inject_fault = [this](const std::string& f) { injected.push_back(f); };
    sm = std::make_unique<StateMachine>(sm_spec, faults, dict, recorder,
                                        std::move(hooks));
  }
};

TEST(StateMachine, InitializationViaBeginTransition) {
  SmHarness h;
  EXPECT_FALSE(h.sm->initialized());
  EXPECT_EQ(h.sm->current_state(), "BEGIN");
  h.sm->notify_event("start");  // BEGIN -start-> A
  EXPECT_TRUE(h.sm->initialized());
  EXPECT_EQ(h.sm->current_state(), "A");
}

TEST(StateMachine, InitializationViaStateName) {
  SmHarness h;
  h.sm->notify_event("B");  // B is a state, not an event
  EXPECT_EQ(h.sm->current_state(), "B");
  // Recorded with the reserved `default` event index.
  const auto& rec = h.recorder->timeline().records;
  ASSERT_EQ(rec.size(), 1u);
  EXPECT_EQ(h.recorder->timeline().event_name(rec[0].event_index), "default");
}

TEST(StateMachine, InvalidFirstNotificationThrows) {
  SmHarness h;
  EXPECT_THROW(h.sm->notify_event("go"), LogicError);  // no BEGIN arc, not a state
}

TEST(StateMachine, TransitionsNotifyAndRecord) {
  SmHarness h;
  h.sm->notify_event("start");
  ASSERT_EQ(h.notified.size(), 1u);  // entering A notifies "other"
  EXPECT_EQ(h.notified[0].first, "A");
  EXPECT_EQ(h.notified[0].second, (std::vector<std::string>{"other"}));

  h.sm->notify_event("go");
  EXPECT_EQ(h.sm->current_state(), "B");
  // B's notify list is empty: no new notification.
  EXPECT_EQ(h.notified.size(), 1u);
  EXPECT_EQ(h.recorder->timeline().records.size(), 2u);
}

TEST(StateMachine, UnmodeledEventIgnoredAndCounted) {
  SmHarness h;
  h.sm->notify_event("start");
  h.sm->notify_event("back");  // no arc from A
  EXPECT_EQ(h.sm->current_state(), "A");
  EXPECT_EQ(h.sm->ignored_events(), 1u);
}

TEST(StateMachine, LocalFaultFiresOnOwnTransition) {
  SmHarness h("f1 (m1:B) once\n");
  h.sm->notify_event("start");
  EXPECT_TRUE(h.injected.empty());
  h.sm->notify_event("go");
  ASSERT_EQ(h.injected.size(), 1u);
  EXPECT_EQ(h.injected[0], "f1");
  // Injection recorded after the state change.
  const auto& rec = h.recorder->timeline().records;
  ASSERT_EQ(rec.size(), 3u);
  EXPECT_EQ(rec[2].type, RecordType::FaultInjection);
}

TEST(StateMachine, RemoteStateTriggersFault) {
  SmHarness h("f2 ((m1:A) & (m2:LEAD)) once\n");
  h.sm->notify_event("start");
  EXPECT_TRUE(h.injected.empty());
  h.sm->on_remote_state("m2", "LEAD");
  ASSERT_EQ(h.injected.size(), 1u);
  EXPECT_EQ(h.sm->view().at("m2"), "LEAD");
}

TEST(StateMachine, StateUpdatesDoNotOverrideOwnState) {
  SmHarness h;
  h.sm->notify_event("start");
  h.sm->apply_state_updates({{"m1", "B"}, {"m2", "X"}});
  EXPECT_EQ(h.sm->view().at("m1"), "A");  // own state authoritative
  EXPECT_EQ(h.sm->view().at("m2"), "X");
}

TEST(StateMachine, DaemonCrashRecordUsesReservedIndices) {
  SmHarness h;
  h.sm->notify_event("start");
  h.sm->record_crash_detected_by_daemon(LocalTime{5555});
  const auto& tl = h.recorder->timeline();
  const auto& rec = tl.records.back();
  EXPECT_EQ(tl.state_name(rec.state_index), "CRASH");
  EXPECT_EQ(tl.event_name(rec.event_index), "CRASH");
  EXPECT_EQ(rec.time.ns, 5555);
}

}  // namespace
}  // namespace loki::runtime
