// Transport conformance: one parameterized suite run against every
// campaign::Transport backend (FakeTransport, SubprocessTransport in fork
// and exec mode, SshTransport through a local shim), driving the worker
// frame protocol by hand — handshake, lease round-trip with stride, large
// frames, abrupt close, double close — so a future backend plugs into
// ready-made coverage.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "apps/election.hpp"
#include "apps/registry.hpp"
#include "campaign/remote_runner.hpp"
#include "campaign/transport.hpp"
#include "runtime/serialize.hpp"
#include "util/error.hpp"
#include "util/text_file.hpp"

namespace loki {
namespace {

using campaign::RecvOutcome;
using runtime::WorkerFrame;

struct RegisterApps {
  RegisterApps() { apps::register_builtin_apps(); }
};
const RegisterApps kRegistered;

constexpr std::chrono::milliseconds kRecvTimeout{10'000};

runtime::StudyParams tiny_study(int experiments = 4) {
  runtime::StudyParams study;
  study.name = "conformance";
  study.experiments = experiments;
  study.make_params = [](int k) {
    apps::ElectionParams app;
    app.run_for = milliseconds(150);
    return apps::election_experiment(
        100 + static_cast<std::uint64_t>(k), {"hostA", "hostB"},
        {{"black", "hostA"}, {"yellow", "hostB"}}, app);
  };
  return study;
}

struct TransportFactory {
  std::string label;
  // Returns nullptr when the backend's prerequisites (the built lokimeasure
  // binary) are unavailable in this environment.
  std::function<std::shared_ptr<campaign::Transport>(int workers)> make;
};

std::string lokimeasure_bin() {
  const char* bin = std::getenv("LOKIMEASURE_BIN");
  return bin == nullptr ? std::string() : std::string(bin);
}

std::string shim_dir() {
  static const std::string dir = [] {
    const std::string d =
        testing::TempDir() + "loki-transport-" + std::to_string(::getpid());
    std::filesystem::remove_all(d);
    std::filesystem::create_directories(d);
    return d;
  }();
  return dir;
}

std::vector<TransportFactory> factories() {
  std::vector<TransportFactory> list;
  list.push_back({"fake", [](int workers) {
                    return std::make_shared<campaign::FakeTransport>(workers);
                  }});
  list.push_back({"subprocess_fork", [](int workers) {
                    return std::make_shared<campaign::SubprocessTransport>(
                        workers);
                  }});
  list.push_back(
      {"subprocess_exec",
       [](int workers) -> std::shared_ptr<campaign::Transport> {
         const std::string bin = lokimeasure_bin();
         if (bin.empty()) return nullptr;
         return std::make_shared<campaign::SubprocessTransport>(
             workers,
             std::vector<std::string>{bin, "--worker", "--serve"});
       }});
  list.push_back(
      {"ssh_shim", [](int workers) -> std::shared_ptr<campaign::Transport> {
         const std::string bin = lokimeasure_bin();
         if (bin.empty()) return nullptr;
         const std::string shim = shim_dir() + "/fake-ssh";
         if (!std::filesystem::exists(shim)) {
           write_file(shim,
                      "#!/bin/sh\n"
                      "shift\n"
                      "exec \"$@\"\n");
           if (::chmod(shim.c_str(), 0755) != 0) return nullptr;
         }
         std::vector<std::string> hosts;
         for (int w = 0; w < workers; ++w)
           hosts.push_back("host" + std::to_string(w));
         return std::make_shared<campaign::SshTransport>(
             std::move(hosts),
             std::vector<std::string>{bin, "--worker", "--serve"}, shim);
       }});
  return list;
}

class TransportConformance : public testing::TestWithParam<TransportFactory> {
 protected:
  /// Spawn worker 0 of a fresh transport. False (test marked skipped) when
  /// the backend's prerequisites are missing — callers must return early.
  [[nodiscard]] bool start(int workers = 1) {
    transport_ = GetParam().make(workers);
    if (!transport_) {
      mark_skipped();
      return false;
    }
    study_ = tiny_study();
    link_ = transport_->connect(0, study_);
    return true;
  }

  void mark_skipped() { GTEST_SKIP() << "LOKIMEASURE_BIN not set"; }

  void handshake() {
    link_->send(runtime::encode_hello_frame(
        link_->needs_study_bytes() ? &study_ : nullptr));
    const RecvOutcome out = link_->recv(kRecvTimeout);
    ASSERT_EQ(out.status, RecvOutcome::Status::Frame);
    const runtime::HelloAckFrame ack =
        runtime::decode_hello_ack_frame(out.frame);
    EXPECT_EQ(ack.protocol_version, runtime::kWorkerProtocolVersion);
  }

  std::vector<std::uint8_t> expect_frame() {
    RecvOutcome out = link_->recv(kRecvTimeout);
    EXPECT_EQ(out.status, RecvOutcome::Status::Frame);
    if (out.status != RecvOutcome::Status::Frame)
      throw std::runtime_error("expected a frame");
    return std::move(out.frame);
  }

  /// Read result-bearing frames (v2 workers emit ResultBatch) until `count`
  /// entries arrived, returned in arrival order.
  std::vector<runtime::ResultFrame> expect_results(std::size_t count) {
    std::vector<runtime::ResultFrame> entries;
    while (entries.size() < count) {
      const auto frame = expect_frame();
      EXPECT_EQ(runtime::worker_frame_type(frame), WorkerFrame::ResultBatch);
      auto batch = runtime::decode_result_batch_frame(frame);
      EXPECT_FALSE(batch.empty()) << "a flushed batch is never empty";
      for (auto& entry : batch) entries.push_back(std::move(entry));
    }
    EXPECT_EQ(entries.size(), count) << "batches must not overrun the lease";
    return entries;
  }

  std::shared_ptr<campaign::Transport> transport_;
  runtime::StudyParams study_;
  std::unique_ptr<campaign::WorkerLink> link_;
};

TEST_P(TransportConformance, HandshakeAcksProtocolVersion) {
  if (!start()) return;
  handshake();
  link_->send(runtime::encode_shutdown_frame());
  EXPECT_EQ(link_->recv(kRecvTimeout).status, RecvOutcome::Status::Eof);
}

TEST_P(TransportConformance, LeaseRoundTripInOrder) {
  if (!start()) return;
  handshake();
  link_->send(runtime::encode_lease_frame({/*id=*/7, 0, 2, 1}));
  const runtime::HeartbeatFrame opening =
      runtime::decode_heartbeat_frame(expect_frame());
  EXPECT_EQ(opening.lease_id, 7u);
  EXPECT_EQ(opening.stats.experiments_completed, 0u);  // fresh worker
  const std::vector<runtime::ResultFrame> results = expect_results(2);
  for (std::uint32_t k = 0; k < 2; ++k) {
    EXPECT_TRUE(results[k].ok);
    EXPECT_EQ(results[k].index, k);
    // The transport's worker must compute exactly what we compute here.
    EXPECT_EQ(runtime::encode_experiment_result(results[k].result),
              runtime::encode_experiment_result(runtime::run_experiment(
                  study_.make_params(static_cast<int>(k)))));
  }
  // Every lease closes with a stats-bearing heartbeat, then LeaseDone.
  const runtime::HeartbeatFrame closing =
      runtime::decode_heartbeat_frame(expect_frame());
  EXPECT_EQ(closing.lease_id, 7u);
  EXPECT_EQ(closing.stats.experiments_completed, 2u);
  EXPECT_GE(closing.stats.batches_flushed, 1u);
  EXPECT_EQ(runtime::decode_lease_done_frame(expect_frame()), 7u);
  link_->send(runtime::encode_shutdown_frame());
  EXPECT_EQ(link_->recv(kRecvTimeout).status, RecvOutcome::Status::Eof);
}

TEST_P(TransportConformance, StridedLeaseRunsInterleavedIndices) {
  if (!start()) return;
  handshake();
  link_->send(runtime::encode_lease_frame({/*id=*/9, 1, 4, 2}));
  EXPECT_EQ(runtime::decode_heartbeat_frame(expect_frame()).lease_id, 9u);
  const std::vector<runtime::ResultFrame> results = expect_results(2);
  std::size_t at = 0;
  for (const std::uint32_t k : {1u, 3u}) {
    EXPECT_TRUE(results[at].ok);
    EXPECT_EQ(results[at].index, k);
    ++at;
  }
  const runtime::HeartbeatFrame closing =
      runtime::decode_heartbeat_frame(expect_frame());
  EXPECT_EQ(closing.lease_id, 9u);
  EXPECT_EQ(closing.stats.experiments_completed, 2u);
  EXPECT_EQ(runtime::decode_lease_done_frame(expect_frame()), 9u);
}

TEST_P(TransportConformance, LargeFrameRoundTrips) {
  if (!start()) return;
  handshake();
  // ~5 MiB of patterned payload: far beyond a pipe buffer, so partial
  // reads/writes and length framing are genuinely exercised.
  std::vector<std::uint8_t> payload(5u << 20);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(i * 2654435761u >> 24);
  link_->send(runtime::encode_ping_frame(payload));
  EXPECT_EQ(runtime::decode_pong_frame(expect_frame()), payload);
}

TEST_P(TransportConformance, EmptyPingRoundTrips) {
  if (!start()) return;
  handshake();
  link_->send(runtime::encode_ping_frame({}));
  EXPECT_TRUE(runtime::decode_pong_frame(expect_frame()).empty());
}

TEST_P(TransportConformance, AbruptCloseSurfacesAsEofThenSendFails) {
  if (!start()) return;
  handshake();
  link_->kill();
  EXPECT_EQ(link_->recv(kRecvTimeout).status, RecvOutcome::Status::Eof);
  // With the worker gone, writes must start failing loudly (EPIPE), not
  // wedge. "Start": a SIGKILLed process's two pipe ends close one after
  // the other, so the first write racing the teardown may still land in
  // the dead pipe's buffer — RemoteRunner tolerates that via the EOF path.
  bool threw = false;
  for (int i = 0; i < 500 && !threw; ++i) {
    try {
      link_->send(runtime::encode_ping_frame({1, 2, 3}));
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    } catch (const std::runtime_error&) {
      threw = true;
    }
  }
  EXPECT_TRUE(threw) << "send kept succeeding against a dead worker";
}

TEST_P(TransportConformance, DoubleCloseIsIdempotent) {
  if (!start()) return;
  handshake();
  link_->kill();
  link_->kill();
  EXPECT_EQ(link_->recv(kRecvTimeout).status, RecvOutcome::Status::Eof);
  link_->kill();  // after Eof too
  link_.reset();  // destructor after kill must reap without incident
}

TEST_P(TransportConformance, CleanShutdownEndsStream) {
  if (!start()) return;
  handshake();
  link_->send(runtime::encode_shutdown_frame());
  EXPECT_EQ(link_->recv(kRecvTimeout).status, RecvOutcome::Status::Eof);
}

TEST_P(TransportConformance, RecvTimesOutWhileWorkerIdles) {
  if (!start()) return;
  handshake();
  // No lease outstanding: the worker is silent, and recv must report a
  // timeout (not block, not fabricate Eof).
  const auto before = std::chrono::steady_clock::now();
  EXPECT_EQ(link_->recv(std::chrono::milliseconds(100)).status,
            RecvOutcome::Status::Timeout);
  EXPECT_GE(std::chrono::steady_clock::now() - before,
            std::chrono::milliseconds(90));
}

TEST_P(TransportConformance, TwoWorkersAreIndependent) {
  if (!start(2)) return;
  auto link1 = transport_->connect(1, study_);
  handshake();
  link1->send(runtime::encode_hello_frame(
      link1->needs_study_bytes() ? &study_ : nullptr));
  {
    const RecvOutcome out = link1->recv(kRecvTimeout);
    ASSERT_EQ(out.status, RecvOutcome::Status::Frame);
    (void)runtime::decode_hello_ack_frame(out.frame);
  }
  // Killing worker 1 must not disturb worker 0's stream.
  link1->kill();
  EXPECT_EQ(link1->recv(kRecvTimeout).status, RecvOutcome::Status::Eof);
  link_->send(runtime::encode_ping_frame({42}));
  EXPECT_EQ(runtime::decode_pong_frame(expect_frame()),
            (std::vector<std::uint8_t>{42}));
}

TEST(FakeTransportJoinDiscipline, OwnerJoinsEveryWorkerThread) {
  // Regression for the PR-4 FakeWorker trap: the worker thread must be
  // joined by its owner via stop_and_join (reconnect, kill, transport
  // destruction), never torn down by its own lambda's last shared_ptr
  // release — a thread destroying its own FakeWorker can only detach,
  // leaving an unsynchronized thread behind (the pattern the TSan job
  // exists to catch). Every teardown ordering below must therefore leave
  // the self-detach escape hatch unused.
  const std::uint64_t before = campaign::detail::fake_worker_self_detaches();
  const runtime::StudyParams study = tiny_study();
  {
    campaign::FakeTransport transport(2);

    // Ordering 1: the link dies first, while the worker thread may still
    // be serving; the transport (owner) must join it on reconnect.
    auto link = transport.connect(0, study);
    link->send(runtime::encode_hello_frame(&study));
    link.reset();  // closes the worker's stdin mid-conversation
    link = transport.connect(0, study);  // joins the predecessor thread

    // Ordering 2: kill() ends the stream but the thread outlives the link;
    // again the owner joins at reconnect time.
    link->kill();
    EXPECT_EQ(link->recv(kRecvTimeout).status, RecvOutcome::Status::Eof);
    link.reset();
    link = transport.connect(0, study);

    // Ordering 3: a second worker is spun up and both links are released
    // before the transport goes away; ~FakeTransport joins both threads.
    auto other = transport.connect(1, study);
    other->send(runtime::encode_hello_frame(&study));
    link.reset();
    other.reset();
  }  // ~FakeTransport: owner-side join of every live worker thread
  EXPECT_EQ(campaign::detail::fake_worker_self_detaches(), before)
      << "a FakeWorker thread tore itself down via detach — worker threads "
         "must be joined by the owning FakeTransport (stop_and_join)";
}

INSTANTIATE_TEST_SUITE_P(AllBackends, TransportConformance,
                         testing::ValuesIn(factories()),
                         [](const testing::TestParamInfo<TransportFactory>& i) {
                           return i.param.label;
                         });

}  // namespace
}  // namespace loki
