// End-to-end tests: runtime phase + analysis phase + measure phase on the
// real applications, with the simulator's ground truth as the oracle.
#include <gtest/gtest.h>

#include "analysis/pipeline.hpp"
#include "apps/election.hpp"
#include "apps/kvstore.hpp"
#include "apps/token_ring.hpp"
#include "campaign/campaign.hpp"
#include "measure/campaign_measure.hpp"
#include "measure/study_measure.hpp"
#include "runtime/experiment.hpp"

namespace loki {
namespace {

using runtime::ExperimentParams;
using runtime::ExperimentResult;

const std::vector<std::string> kHosts = {"hostA", "hostB", "hostC"};
const std::vector<std::pair<std::string, std::string>> kPlacement = {
    {"black", "hostA"}, {"yellow", "hostB"}, {"green", "hostC"}};

ExperimentParams election_params(std::uint64_t seed,
                                 Duration run_for = milliseconds(600)) {
  apps::ElectionParams app;
  app.run_for = run_for;
  return apps::election_experiment(seed, kHosts, kPlacement, app);
}

TEST(ElectionE2E, CompletesAndElectsExactlyOneLeader) {
  const ExperimentResult r = runtime::run_experiment(election_params(1));
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.timed_out);
  int leaders = 0;
  for (const auto& seq : r.truth.state_seq) {
    for (const auto& [t, s] : seq)
      if (s == "LEAD") ++leaders;
  }
  EXPECT_EQ(leaders, 1) << "exactly one node should win the election";
  // All three produced local timelines with state changes.
  EXPECT_EQ(r.timelines.size(), 3u);
  for (const auto& tl : r.timelines) EXPECT_GE(tl.records.size(), 3u);
}

TEST(ElectionE2E, DeterministicForSameSeed) {
  const ExperimentResult a = runtime::run_experiment(election_params(7));
  const ExperimentResult b = runtime::run_experiment(election_params(7));
  ASSERT_EQ(a.timelines.size(), b.timelines.size());
  for (const auto& tl : a.timelines) {
    const auto& tl2 = b.timeline_of(tl.nickname);
    ASSERT_EQ(tl.records.size(), tl2.records.size());
    for (std::size_t i = 0; i < tl.records.size(); ++i)
      EXPECT_EQ(tl.records[i].time.ns, tl2.records[i].time.ns);
  }
  EXPECT_EQ(a.truth.injections.size(), b.truth.injections.size());
}

TEST(ElectionE2E, FaultOnLeaderFiresAndRecovers) {
  ExperimentParams params = election_params(11);
  params.nodes[0].fault_spec =
      spec::parse_fault_spec("bfault1 (black:LEAD) always\n", "t");
  params.nodes[0].restart.enabled = true;
  params.nodes[0].restart.delay = milliseconds(60);
  params.nodes[0].restart.max_restarts = 2;

  int injected = 0, crashed = 0, restarted = 0, survivors_reelected = 0;
  for (int seed = 0; seed < 12; ++seed) {
    params.seed = 3000 + static_cast<std::uint64_t>(seed);
    const ExperimentResult r = runtime::run_experiment(params);
    EXPECT_TRUE(r.completed);
    for (const auto& inj : r.truth.injections) {
      ++injected;
      EXPECT_EQ(inj.machine, "black");
      EXPECT_EQ(inj.fault, "bfault1");
      // Ground truth: at the injection instant black really was the leader.
      EXPECT_TRUE(r.truth.in_state("black", "LEAD", inj.at));
    }
    if (r.truth.crashed("black")) ++crashed;
    const auto& tl = r.timeline_of("black");
    for (const auto& rec : tl.records)
      if (rec.type == runtime::RecordType::Restart) ++restarted;
    // After black's crash some survivor must re-elect (reach LEAD).
    for (const auto& nick : {"yellow", "green"}) {
      const auto* seq = r.truth.find_state_seq(nick);
      if (seq == nullptr) continue;
      for (const auto& [t, s] : *seq)
        if (s == "LEAD") ++survivors_reelected;
    }
  }
  EXPECT_GT(injected, 0) << "black should lead (and be injected) sometimes";
  EXPECT_GT(crashed, 0);
  EXPECT_GT(restarted, 0) << "restart policy should have kicked in";
  EXPECT_GT(survivors_reelected, 0) << "survivors should re-elect";
}

TEST(ElectionE2E, RestartOnDifferentHostRecordsHostName) {
  ExperimentParams params = election_params(13, milliseconds(800));
  params.nodes[0].fault_spec =
      spec::parse_fault_spec("bfault1 (black:LEAD) always\n", "t");
  params.nodes[0].restart.enabled = true;
  params.nodes[0].restart.placement = runtime::RestartPolicy::Placement::NextHost;
  params.nodes[0].restart.delay = milliseconds(50);

  bool saw_cross_host_restart = false;
  for (int seed = 0; seed < 15 && !saw_cross_host_restart; ++seed) {
    params.seed = 500 + static_cast<std::uint64_t>(seed);
    const ExperimentResult r = runtime::run_experiment(params);
    const auto& tl = r.timeline_of("black");
    for (const auto& rec : tl.records) {
      if (rec.type == runtime::RecordType::Restart) {
        EXPECT_EQ(rec.host, "hostB");  // next host after hostA
        saw_cross_host_restart = true;
      }
    }
  }
  EXPECT_TRUE(saw_cross_host_restart);
}

TEST(ElectionE2E, SilentCrashDetectedByWatchdog) {
  ExperimentParams params = election_params(17);
  apps::ElectionParams app;
  app.run_for = milliseconds(600);
  app.crash_mode = runtime::CrashMode::Silent;
  for (auto& node : params.nodes)
    node.app_factory = [app] { return std::make_unique<apps::ElectionApp>(app); };
  params.nodes[0].fault_spec =
      spec::parse_fault_spec("bfault1 (black:LEAD) always\n", "t");

  bool saw_daemon_crash_record = false;
  for (int seed = 0; seed < 10 && !saw_daemon_crash_record; ++seed) {
    params.seed = 900 + static_cast<std::uint64_t>(seed);
    const ExperimentResult r = runtime::run_experiment(params);
    if (!r.truth.crashed("black")) continue;
    // The node died silently; only the local daemon can have written the
    // CRASH record (§3.5.2), stamped with the CRASH event index.
    const auto& tl = r.timeline_of("black");
    for (const auto& rec : tl.records) {
      if (rec.type == runtime::RecordType::StateChange &&
          tl.state_name(rec.state_index) == "CRASH") {
        saw_daemon_crash_record = true;
      }
    }
  }
  EXPECT_TRUE(saw_daemon_crash_record);
}

TEST(ElectionE2E, CrossMachineFaultChapter5Study4) {
  // gfault2: inject into green when black crashes while green is a
  // follower/elector — the flagship global-state-triggered injection.
  ExperimentParams params = election_params(23, milliseconds(800));
  params.nodes[0].fault_spec =
      spec::parse_fault_spec("bfault1 (black:LEAD) always\n", "t");
  auto& green = params.nodes[2];
  ASSERT_EQ(green.nickname, "green");
  green.fault_spec = spec::parse_fault_spec(
      "gfault2 ((black:CRASH) & ((green:FOLLOW) | (green:ELECT))) once\n", "t");

  int gfault2_injections = 0, checked = 0;
  for (int seed = 0; seed < 15; ++seed) {
    params.seed = 7000 + static_cast<std::uint64_t>(seed);
    const ExperimentResult r = runtime::run_experiment(params);
    for (const auto& inj : r.truth.injections) {
      if (inj.fault != "gfault2") continue;
      ++gfault2_injections;
      // Ground truth check of the global-state trigger: black really had
      // crashed by then (runtime saw CRASH via its partial view).
      EXPECT_TRUE(r.truth.in_state("black", "CRASH", inj.at));
      ++checked;
    }
  }
  EXPECT_GT(gfault2_injections, 0)
      << "the cross-machine fault should fire in some experiments";
  EXPECT_EQ(checked, gfault2_injections);
}

TEST(ElectionE2E, AnalysisAcceptsMostCleanExperiments) {
  runtime::StudyParams study;
  study.name = "s";
  study.experiments = 10;
  study.make_params = [](int k) {
    ExperimentParams p = election_params(4000 + static_cast<std::uint64_t>(k));
    p.nodes[0].fault_spec =
        spec::parse_fault_spec("bfault1 (black:LEAD) always\n", "t");
    return p;
  };
  const auto campaign = runtime::run_campaign({study});
  const auto analyses = analysis::analyze_study(campaign.studies[0]);
  int accepted = 0;
  for (const auto& a : analyses) accepted += a.accepted ? 1 : 0;
  // Same-machine triggers on an uncontended cluster: acceptance is high.
  EXPECT_GE(accepted, 8);
}

TEST(ElectionE2E, VerificationAgreesWithGroundTruth) {
  // Property over seeds: whenever the analysis ACCEPTS an experiment, every
  // injection was truly performed in the intended global state. (The
  // converse need not hold — the check is conservative.)
  for (int seed = 0; seed < 10; ++seed) {
    ExperimentParams params = election_params(6000 + static_cast<std::uint64_t>(seed));
    params.nodes[0].fault_spec =
        spec::parse_fault_spec("bfault1 (black:LEAD) always\n", "t");
    const ExperimentResult r = runtime::run_experiment(params);
    const auto a = analysis::analyze_experiment(r);
    if (!a.accepted) continue;
    for (const auto& inj : r.truth.injections)
      EXPECT_TRUE(r.truth.in_state("black", "LEAD", inj.at))
          << "accepted experiment with an untrue injection (seed " << seed << ")";
  }
}

TEST(ElectionE2E, TimeoutAbortsHungExperiment) {
  ExperimentParams params = election_params(31, seconds(30) /*never exits*/);
  params.central.experiment_timeout = milliseconds(400);
  params.hard_limit = seconds(5);
  const ExperimentResult r = runtime::run_experiment(params);
  EXPECT_TRUE(r.timed_out);
  EXPECT_FALSE(r.completed);
}

TEST(ElectionE2E, DynamicEntryJoinsMidExperiment) {
  ExperimentParams params = election_params(37, milliseconds(700));
  // green enters 200ms into the experiment instead of at t0.
  auto& green = params.nodes[2];
  green.initial_host.reset();
  green.enter_at = milliseconds(200);
  green.enter_host = "hostC";
  const ExperimentResult r = runtime::run_experiment(params);
  EXPECT_TRUE(r.completed);
  const auto& tl = r.timeline_of("green");
  EXPECT_FALSE(tl.records.empty());
  // green's first record must be strictly later than the others' first.
  const auto first_ms = [&](const std::string& nick) {
    return r.timeline_of(nick).records.front().time.ns;
  };
  EXPECT_GT(first_ms("green") - r.start_local_of("hostC").ns,
            milliseconds(150).ns);
}

TEST(ElectionE2E, AlternativeDesignsRunToCompletion) {
  for (const auto design :
       {runtime::TransportDesign::Centralized, runtime::TransportDesign::Direct}) {
    ExperimentParams params = election_params(41);
    params.design = design;
    const ExperimentResult r = runtime::run_experiment(params);
    EXPECT_TRUE(r.completed) << static_cast<int>(design);
    EXPECT_EQ(r.timelines.size(), 3u);
    int leads = 0;
    for (const auto& seq : r.truth.state_seq)
      for (const auto& [t, s] : seq)
        if (s == "LEAD") ++leads;
    EXPECT_EQ(leads, 1) << static_cast<int>(design);
  }
}

TEST(ElectionE2E, LoadedHostsStillComplete) {
  ExperimentParams params = election_params(43);
  for (auto& host : params.hosts) host.load_duty = 0.8;
  const ExperimentResult r = runtime::run_experiment(params);
  EXPECT_TRUE(r.completed);
}

// --- kv store -----------------------------------------------------------------

TEST(KvStoreE2E, ReplicatesAndPromotesAfterPrimaryCrash) {
  apps::KvStoreParams app;
  app.initial_primary = "kv1";
  app.run_for = milliseconds(700);
  auto params = apps::kvstore_experiment(
      51, kHosts, {{"kv1", "hostA"}, {"kv2", "hostB"}, {"kv3", "hostC"}}, app);
  // Kill the primary mid-replication based on global state.
  params.nodes[0].fault_spec = spec::parse_fault_spec(
      "pfault (kv1:REPLICATING) once\n", "t");

  bool promoted = false;
  for (int seed = 0; seed < 8 && !promoted; ++seed) {
    params.seed = 100 + static_cast<std::uint64_t>(seed);
    const ExperimentResult r = runtime::run_experiment(params);
    EXPECT_TRUE(r.completed);
    for (const auto& nick : {"kv2", "kv3"}) {
      const auto* seq = r.truth.find_state_seq(nick);
      if (seq == nullptr) continue;
      for (const auto& [t, s] : *seq)
        if (s == "PRIMARY") promoted = true;
    }
  }
  EXPECT_TRUE(promoted) << "a backup should take over after the primary crash";
}

// --- token ring -----------------------------------------------------------------

TEST(TokenRingE2E, MutualExclusionHoldsWithoutFaults) {
  apps::TokenRingParams app;
  auto params = apps::token_ring_experiment(
      61, kHosts, {{"n1", "hostA"}, {"n2", "hostB"}, {"n3", "hostC"}}, app);
  const ExperimentResult r = runtime::run_experiment(params);
  EXPECT_TRUE(r.completed);
  // Ground truth: never two machines in CRITICAL simultaneously.
  for (const auto& inj : r.truth.injections) (void)inj;
  std::vector<std::pair<SimTime, std::pair<std::string, bool>>> edges;
  for (std::size_t m = 0; m < r.truth.machines.size(); ++m) {
    const std::string& nick = r.truth.machines[m];
    const auto& seq = r.truth.state_seq[m];
    for (std::size_t i = 0; i < seq.size(); ++i) {
      if (seq[i].second == "CRITICAL") {
        edges.push_back({seq[i].first, {nick, true}});
        if (i + 1 < seq.size()) edges.push_back({seq[i + 1].first, {nick, false}});
      }
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  int depth = 0;
  for (const auto& [t, e] : edges) {
    depth += e.second ? 1 : -1;
    EXPECT_LE(depth, 1) << "mutual exclusion violated without any fault";
  }
}

TEST(TokenRingE2E, DuplicateTokenFaultViolatesMutualExclusion) {
  apps::TokenRingParams app;
  auto params = apps::token_ring_experiment(
      67, kHosts, {{"n1", "hostA"}, {"n2", "hostB"}, {"n3", "hostC"}}, app);
  // Forge a token at n2 whenever n1 is critical.
  params.nodes[1].fault_spec = spec::parse_fault_spec(
      "duplicate_token (n1:CRITICAL) once\n", "t");

  bool violated = false;
  for (int seed = 0; seed < 6 && !violated; ++seed) {
    params.seed = 300 + static_cast<std::uint64_t>(seed);
    const ExperimentResult r = runtime::run_experiment(params);
    // Use the MEASURE framework to detect the violation, as a user would.
    const auto a = analysis::analyze_experiment(r);
    measure::StudyMeasure m;
    m.add(measure::subset_default(),
          measure::parse_predicate("((n1, CRITICAL) & (n2, CRITICAL))"),
          measure::obs_total_duration(true, measure::TimeArg::start_exp(),
                                      measure::TimeArg::end_exp()));
    const auto v = m.apply(a);
    if (v.has_value() && *v > 0.0) violated = true;
  }
  EXPECT_TRUE(violated) << "the forged token should be measurable as a "
                           "mutual-exclusion violation";
}

// --- campaign / measure integration ----------------------------------------------

TEST(CampaignE2E, CoverageStudyProducesPlausibleEstimate) {
  // Study 1 of §5.8 in miniature: coverage of an error in black, driven
  // through the campaign facade — a parallel runner plus a streaming
  // MeasureSink instead of buffering and batch analysis.
  measure::StudyMeasure coverage;
  coverage.add(measure::subset_default(),
               measure::parse_predicate("(black, CRASH)"),
               measure::obs_total_duration(true, measure::TimeArg::start_exp(),
                                           measure::TimeArg::end_exp()));
  coverage.add(measure::subset_greater(0.0),
               measure::parse_predicate("(black, RESTART_SM)"),
               measure::obs_greater(
                   measure::obs_total_duration(true, measure::TimeArg::start_exp(),
                                               measure::TimeArg::end_exp()),
                   0.0));

  auto sink = std::make_shared<campaign::MeasureSink>();
  sink->measure("study1", coverage);
  CampaignBuilder()
      .sink(sink)
      .parallelism(4)
      .study("study1")
      .experiments(15)
      .generator([](int k) {
        ExperimentParams p = election_params(8000 + static_cast<std::uint64_t>(k),
                                             milliseconds(700));
        p.nodes[0].fault_spec =
            spec::parse_fault_spec("bfault1 (black:LEAD) always\n", "t");
        p.nodes[0].restart.enabled = true;
        p.nodes[0].restart.delay = milliseconds(60);
        return p;
      })
      .done()
      .build()
      .run();

  const auto values = *sink->values("study1");
  // Every value is 0 or 1 and with an always-on restart policy they are 1.
  for (const double v : values) EXPECT_TRUE(v == 0.0 || v == 1.0);
  if (!values.empty()) {
    const auto est = measure::simple_sampling_measure(sink->samples());
    EXPECT_GT(est.moments.mean, 0.5);
  }
}

}  // namespace
}  // namespace loki
