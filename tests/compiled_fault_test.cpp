// Property tests for the compiled fault-predicate path: the flat postfix
// CompiledFaultProgram must agree with the spec-layer tree walk
// (FaultExpr::eval) on randomized expressions and randomized state vectors,
// including terms that name machines/states outside the study dictionary.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "runtime/compiled_fault.hpp"
#include "runtime/dictionary.hpp"
#include "spec/fault_expr.hpp"
#include "spec/state_machine_spec.hpp"
#include "util/rng.hpp"

namespace loki::runtime {
namespace {

const std::vector<std::string> kStates = {"BEGIN", "LEAD",  "FOLLOW",
                                          "ELECT", "CRASH", "EXIT"};

/// Machines m0..m3 are in the study; ghost0/ghost1 appear in expressions
/// but not in the dictionary.
struct Fixture {
  std::vector<spec::StateMachineSpec> specs;
  spec::FaultSpec none;
  StudyDictionary dict;

  Fixture() : specs(make_specs()), dict(build()) {}

  static std::vector<spec::StateMachineSpec> make_specs() {
    std::vector<spec::StateMachineSpec> out;
    for (int i = 0; i < 4; ++i) {
      out.emplace_back("m" + std::to_string(i), kStates,
                       std::vector<std::string>{"go"},
                       std::vector<spec::StateDef>{});
    }
    return out;
  }
  StudyDictionary build() const {
    std::vector<const spec::StateMachineSpec*> sp;
    std::vector<const spec::FaultSpec*> fp;
    for (const auto& s : specs) {
      sp.push_back(&s);
      fp.push_back(&none);
    }
    return StudyDictionary::build(sp, fp);
  }
};

spec::FaultExprPtr random_expr(Rng& rng, int depth) {
  const double roll = rng.uniform_real(0.0, 1.0);
  if (depth <= 0 || roll < 0.4) {
    // Terms draw from in-study machines mostly, ghosts sometimes, and from
    // known states mostly, unknown states sometimes.
    const bool ghost = rng.uniform_real(0.0, 1.0) < 0.15;
    const std::string machine =
        ghost ? "ghost" + std::to_string(rng.uniform_int(0, 1))
              : "m" + std::to_string(rng.uniform_int(0, 3));
    const bool unknown_state = rng.uniform_real(0.0, 1.0) < 0.1;
    const std::string state =
        unknown_state ? "NO_SUCH_STATE"
                      : kStates[static_cast<std::size_t>(rng.uniform_int(
                            0, static_cast<int>(kStates.size()) - 1))];
    return spec::make_term(machine, state);
  }
  if (roll < 0.55) return spec::make_not(random_expr(rng, depth - 1));
  if (roll < 0.8)
    return spec::make_and(random_expr(rng, depth - 1), random_expr(rng, depth - 1));
  return spec::make_or(random_expr(rng, depth - 1), random_expr(rng, depth - 1));
}

class CompiledVsTreeWalk : public ::testing::TestWithParam<int> {};

TEST_P(CompiledVsTreeWalk, AgreeOnRandomizedExpressionsAndViews) {
  Fixture fx;
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6364136223846793005ull + 11);

  for (int trial = 0; trial < 60; ++trial) {
    const auto expr = random_expr(rng, 4);
    const auto prog = CompiledFaultProgram::compile(*expr, fx.dict);

    for (int v = 0; v < 20; ++v) {
      // Random dense view; some machines unknown.
      std::vector<StateId> view(fx.dict.machine_count(), kNoState);
      std::map<std::string, std::string> names;
      for (MachineId m = 0; m < view.size(); ++m) {
        if (rng.uniform_real(0.0, 1.0) < 0.3) continue;  // stays unknown
        const auto s = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(kStates.size()) - 1));
        view[m] = fx.dict.state_index(kStates[s]);
        names[fx.dict.machine_name(m)] = kStates[s];
      }
      const spec::StateView sv =
          [&](const std::string& machine) -> const std::string* {
        const auto it = names.find(machine);
        return it == names.end() ? nullptr : &it->second;
      };
      ASSERT_EQ(prog.eval(view), expr->eval(sv))
          << "divergence on " << expr->to_string() << " (trial " << trial
          << ", view " << v << ")";
    }

    // The empty view used for edge initialization must also agree.
    const spec::StateView empty = [](const std::string&) -> const std::string* {
      return nullptr;
    };
    ASSERT_EQ(prog.eval_empty(), expr->eval(empty))
        << "empty-view divergence on " << expr->to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompiledVsTreeWalk, ::testing::Range(0, 8));

TEST(CompiledFaultProgram, PostfixRoundTripOfParsedExpressions) {
  Fixture fx;
  // A handful of thesis-shaped expressions through parse -> compile.
  const char* exprs[] = {
      "((m0:CRASH) & ((m1:FOLLOW) | (m1:ELECT)))",
      "~(m2:LEAD)",
      "((m0:LEAD) & ~(m1:CRASH)) | ((m2:ELECT) & (m3:FOLLOW))",
      "(ghost0:LEAD) | (m0:LEAD)",
  };
  for (const char* text : exprs) {
    const auto expr = spec::parse_fault_expr(text, "t", 1);
    const auto prog = CompiledFaultProgram::compile(*expr, fx.dict);
    std::vector<StateId> view(fx.dict.machine_count(), kNoState);
    view[fx.dict.machine_index("m0")] = fx.dict.state_index("LEAD");
    std::map<std::string, std::string> names{{"m0", "LEAD"}};
    const spec::StateView sv =
        [&](const std::string& machine) -> const std::string* {
      const auto it = names.find(machine);
      return it == names.end() ? nullptr : &it->second;
    };
    EXPECT_EQ(prog.eval(view), expr->eval(sv)) << text;
  }
}

}  // namespace
}  // namespace loki::runtime
