// The campaign facade: builder validation at build() time, runner
// equivalence (thread pool == serial, byte for byte), sink invocation
// order, and the streaming measure path against the batch one.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/pipeline.hpp"
#include "apps/election.hpp"
#include "campaign/campaign.hpp"
#include "clocksync/sync_data.hpp"
#include "measure/study_measure.hpp"
#include "util/error.hpp"

namespace loki {
namespace {

using runtime::ExperimentParams;
using runtime::ExperimentResult;

const std::vector<std::string> kHosts = {"hostA", "hostB", "hostC"};
const std::vector<std::pair<std::string, std::string>> kPlacement = {
    {"black", "hostA"}, {"yellow", "hostB"}, {"green", "hostC"}};

ExperimentParams election_params(std::uint64_t seed,
                                 Duration run_for = milliseconds(500)) {
  apps::ElectionParams app;
  app.run_for = run_for;
  return apps::election_experiment(seed, kHosts, kPlacement, app);
}

/// The quickstart campaign in miniature: fault on the leader + restart.
runtime::StudyParams quickstart_study(const std::string& name, int experiments,
                                      std::uint64_t base_seed = 1000) {
  runtime::StudyParams study;
  study.name = name;
  study.experiments = experiments;
  study.make_params = [base_seed](int k) {
    auto p = election_params(base_seed + static_cast<std::uint64_t>(k));
    p.nodes[0].fault_spec =
        spec::parse_fault_spec("bfault1 (black:LEAD) always\n", "t");
    p.nodes[0].restart.enabled = true;
    p.nodes[0].restart.delay = milliseconds(60);
    p.nodes[0].restart.max_restarts = 3;
    return p;
  };
  return study;
}

void expect_config_error(CampaignBuilder& builder, const std::string& fragment) {
  try {
    builder.build();
    FAIL() << "expected ConfigError containing '" << fragment << "'";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << "actual message: " << e.what();
  }
}

// --- builder validation ------------------------------------------------------

TEST(CampaignValidation, DuplicateNicknameFailsAtBuild) {
  auto p = election_params(1);
  p.nodes[1].nickname = "black";
  p.nodes[1].sm_spec.set_name("black");
  CampaignBuilder b;
  b.study("s").experiments(1).base(p);
  expect_config_error(b, "duplicate node nickname 'black'");
}

TEST(CampaignValidation, SpecNameMismatchFailsAtBuild) {
  auto p = election_params(1);
  p.nodes[0].sm_spec.set_name("noir");
  CampaignBuilder b;
  b.study("s").experiments(1).base(p);
  expect_config_error(b, "must equal the nickname");
}

TEST(CampaignValidation, UnknownInitialHostFailsAtBuild) {
  auto p = election_params(1);
  p.nodes[0].initial_host = "hostZ";
  CampaignBuilder b;
  b.study("s").experiments(1).base(p);
  expect_config_error(b, "unknown initial host 'hostZ'");
}

TEST(CampaignValidation, UnknownEnterHostFailsAtBuild) {
  auto p = election_params(1);
  p.nodes[2].initial_host.reset();
  p.nodes[2].enter_at = milliseconds(100);
  p.nodes[2].enter_host = "hostZ";
  CampaignBuilder b;
  b.study("s").experiments(1).base(p);
  expect_config_error(b, "unknown enter host 'hostZ'");
}

TEST(CampaignValidation, NodeWithoutAnyStartFailsAtBuild) {
  auto p = election_params(1);
  p.nodes[2].initial_host.reset();
  CampaignBuilder b;
  b.study("s").experiments(1).base(p);
  expect_config_error(b, "neither initial_host nor enter_at");
}

TEST(CampaignValidation, UnknownFixedRestartHostFailsAtBuild) {
  auto p = election_params(1);
  p.nodes[0].restart.enabled = true;
  p.nodes[0].restart.placement = runtime::RestartPolicy::Placement::Fixed;
  p.nodes[0].restart.fixed_host = "hostZ";
  CampaignBuilder b;
  b.study("s").experiments(1).base(p);
  expect_config_error(b, "unknown fixed restart host 'hostZ'");
}

TEST(CampaignValidation, FaultReferencingUnknownMachineFailsAtBuild) {
  auto p = election_params(1);
  p.nodes[0].fault_spec =
      spec::parse_fault_spec("f (white:LEAD) once\n", "t");
  CampaignBuilder b;
  b.study("s").experiments(1).base(p);
  expect_config_error(b, "unknown machine 'white'");
}

TEST(CampaignValidation, HostCrashPlanUnknownHostFailsAtBuild) {
  auto p = election_params(1);
  p.host_crashes.push_back({"hostZ", milliseconds(100), milliseconds(100)});
  CampaignBuilder b;
  b.study("s").experiments(1).base(p);
  expect_config_error(b, "unknown host 'hostZ'");
}

TEST(CampaignValidation, FaultTargetingUnknownNodeFailsAtBuild) {
  CampaignBuilder b;
  b.study("s").experiments(1).base(election_params(1)).fault(
      "white", "f (black:LEAD) once\n");
  expect_config_error(b, "unknown node 'white'");
}

TEST(CampaignValidation, FaultSyntaxErrorSurfacesAtComposition) {
  CampaignBuilder b;
  EXPECT_THROW(b.study("s").fault("black", "not a fault spec"), ParseError);
}

TEST(CampaignValidation, DuplicateStudyNameFailsAtBuild) {
  CampaignBuilder b;
  b.study("s").experiments(1).base(election_params(1));
  b.study("s").experiments(1).base(election_params(2));
  expect_config_error(b, "duplicate study name 's'");
}

TEST(CampaignValidation, EmptyStudyFailsAtBuild) {
  CampaignBuilder b;
  b.study("s").experiments(1);
  expect_config_error(b, "no base params, generator, or nodes");
}

TEST(CampaignValidation, ErrorNamesTheStudy) {
  auto p = election_params(1);
  p.nodes[0].initial_host = "hostZ";
  CampaignBuilder b;
  b.study("who-am-i").experiments(1).base(p);
  expect_config_error(b, "study 'who-am-i'");
}

// --- legacy wrapper validation (StudyParams up front) ------------------------

TEST(RunCampaignWrapper, RejectsEmptyName) {
  runtime::StudyParams study;
  study.name = "";
  study.experiments = 1;
  study.make_params = [](int) { return election_params(1); };
  EXPECT_THROW(runtime::run_campaign({study}), ConfigError);
}

TEST(RunCampaignWrapper, RejectsNonPositiveExperiments) {
  runtime::StudyParams study = quickstart_study("s", 0);
  try {
    runtime::run_campaign({study});
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("study 's'"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("experiments"), std::string::npos);
  }
}

TEST(RunCampaignWrapper, RejectsNullGenerator) {
  runtime::StudyParams study;
  study.name = "nogen";
  study.experiments = 3;
  try {
    runtime::run_campaign({study});
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("nogen"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("make_params"), std::string::npos);
  }
}

TEST(RunCampaignWrapper, StillRunsValidStudies) {
  const auto campaign = runtime::run_campaign({quickstart_study("s", 2)});
  ASSERT_EQ(campaign.studies.size(), 1u);
  EXPECT_EQ(campaign.studies[0].experiments.size(), 2u);
  EXPECT_TRUE(campaign.studies[0].experiments[0].completed);
}

// --- runner equivalence ------------------------------------------------------

void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  // Timelines and sync samples byte-identical via their file serializations.
  ASSERT_EQ(a.timelines.size(), b.timelines.size());
  for (const auto& tl : a.timelines) {
    const auto* other = b.find_timeline(tl.nickname);
    ASSERT_NE(other, nullptr) << tl.nickname;
    EXPECT_EQ(runtime::serialize_local_timeline(tl),
              runtime::serialize_local_timeline(*other))
        << tl.nickname;
  }
  EXPECT_EQ(clocksync::serialize_timestamps(a.sync_samples),
            clocksync::serialize_timestamps(b.sync_samples));

  // Ground truth: state sequences and injection instants.
  EXPECT_EQ(a.truth.state_seq, b.truth.state_seq);
  ASSERT_EQ(a.truth.injections.size(), b.truth.injections.size());
  for (std::size_t i = 0; i < a.truth.injections.size(); ++i) {
    EXPECT_EQ(a.truth.injections[i].machine, b.truth.injections[i].machine);
    EXPECT_EQ(a.truth.injections[i].fault, b.truth.injections[i].fault);
    EXPECT_EQ(a.truth.injections[i].at, b.truth.injections[i].at);
  }
  EXPECT_EQ(a.truth.crashes, b.truth.crashes);

  EXPECT_EQ(a.start_phys, b.start_phys);
  EXPECT_EQ(a.end_phys, b.end_phys);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.timed_out, b.timed_out);
  EXPECT_EQ(a.control_messages, b.control_messages);
  EXPECT_EQ(a.app_messages, b.app_messages);
}

runtime::CampaignResult run_with(std::shared_ptr<campaign::Runner> runner,
                                 const runtime::StudyParams& study) {
  auto collect = std::make_shared<campaign::CollectSink>();
  CampaignBuilder builder;
  Campaign c = builder.add(study).runner(std::move(runner)).sink(collect).build();
  c.run();
  return collect->take();
}

TEST(Runners, ThreadPoolMatchesSerialByteForByte) {
  const auto study = quickstart_study("quickstart", 10);
  const auto serial = run_with(std::make_shared<campaign::SerialRunner>(), study);
  const auto pooled =
      run_with(std::make_shared<campaign::ThreadPoolRunner>(4), study);

  ASSERT_EQ(serial.studies.size(), 1u);
  ASSERT_EQ(pooled.studies.size(), 1u);
  ASSERT_EQ(serial.studies[0].experiments.size(), 10u);
  ASSERT_EQ(pooled.studies[0].experiments.size(), 10u);
  for (int k = 0; k < 10; ++k) {
    SCOPED_TRACE("experiment " + std::to_string(k));
    expect_identical(serial.studies[0].experiments[static_cast<std::size_t>(k)],
                     pooled.studies[0].experiments[static_cast<std::size_t>(k)]);
  }
}

TEST(Runners, MoreWorkersThanExperiments) {
  const auto study = quickstart_study("tiny", 2);
  const auto pooled =
      run_with(std::make_shared<campaign::ThreadPoolRunner>(8), study);
  ASSERT_EQ(pooled.studies[0].experiments.size(), 2u);
  EXPECT_TRUE(pooled.studies[0].experiments[0].completed);
}

TEST(Runners, ThreadPoolRejectsZeroWorkers) {
  EXPECT_THROW(campaign::ThreadPoolRunner(0), ConfigError);
}

TEST(Runners, MakeRunnerSelectsImplementation) {
  EXPECT_EQ(campaign::make_runner(1)->name(), "serial");
  EXPECT_EQ(campaign::make_runner(3)->name(), "thread-pool(3)");
  EXPECT_EQ(campaign::make_runner(3)->parallelism(), 3);
}

TEST(Runners, FailureEmitsSerialPrefixThenThrows) {
  // Experiment 3's generator throws (instantly, while 0-2 are still
  // running on other workers). SerialRunner semantics must hold: the
  // completed prefix 0..2 reaches the sinks in order, then the exception
  // propagates and nothing past index 3 is emitted.
  runtime::StudyParams study;
  study.name = "boom";
  study.experiments = 6;
  study.make_params = [](int k) {
    if (k == 3) throw std::runtime_error("generator exploded at 3");
    return election_params(static_cast<std::uint64_t>(k) + 1);
  };
  auto seen = std::make_shared<std::vector<int>>();
  auto sink = std::make_shared<campaign::CallbackSink>();
  sink->experiment([seen](const campaign::StudyInfo&, int k,
                          const ExperimentResult&) { seen->push_back(k); });
  auto runner = std::make_shared<campaign::ThreadPoolRunner>(4);
  CampaignBuilder builder;
  Campaign c = builder.add(study).runner(runner).sink(sink).build();
  EXPECT_THROW(c.run(), std::runtime_error);
  EXPECT_EQ(*seen, (std::vector<int>{0, 1, 2}));
}

TEST(Runners, MidStudyValidationErrorNamesExperiment) {
  runtime::StudyParams study;
  study.name = "latebad";
  study.experiments = 3;
  study.make_params = [](int k) {
    auto p = election_params(static_cast<std::uint64_t>(k) + 1);
    if (k == 2) p.nodes[0].initial_host = "hostZ";  // invalid only at k=2
    return p;
  };
  CampaignBuilder builder;
  Campaign c = builder.add(study).build();  // probe of k=0 passes
  try {
    c.run();
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("experiment 2"), std::string::npos)
        << e.what();
  }
}

// --- sink invocation order ---------------------------------------------------

TEST(Sinks, InvocationOrderIsSerialEvenWhenParallel) {
  auto events = std::make_shared<std::vector<std::string>>();
  auto sink = std::make_shared<campaign::CallbackSink>();
  sink->campaign_begin([events](int n) {
        events->push_back("campaign:" + std::to_string(n));
      })
      .study_begin([events](const campaign::StudyInfo& s) {
        events->push_back("begin:" + s.name);
      })
      .experiment([events](const campaign::StudyInfo& s, int k,
                           const ExperimentResult&) {
        events->push_back("exp:" + s.name + ":" + std::to_string(k));
      })
      .study_done([events](const campaign::StudyInfo& s) {
        events->push_back("done:" + s.name);
      })
      .campaign_done([events] { events->push_back("campaign-done"); });

  CampaignBuilder builder;
  builder.add(quickstart_study("s1", 3, 2000))
      .add(quickstart_study("s2", 2, 3000))
      .runner(std::make_shared<campaign::ThreadPoolRunner>(3))
      .sink(sink);
  builder.build().run();

  const std::vector<std::string> expected = {
      "campaign:2", "begin:s1", "exp:s1:0", "exp:s1:1", "exp:s1:2", "done:s1",
      "begin:s2",   "exp:s2:0", "exp:s2:1", "done:s2",  "campaign-done"};
  EXPECT_EQ(*events, expected);
}

// --- streaming sinks vs batch ------------------------------------------------

measure::StudyMeasure coverage_measure() {
  measure::StudyMeasure m;
  m.add(measure::subset_default(),
        measure::parse_predicate("(black, CRASH)"),
        measure::obs_total_duration(true, measure::TimeArg::start_exp(),
                                    measure::TimeArg::end_exp()));
  m.add(measure::subset_greater(0.0),
        measure::parse_predicate("(black, RESTART_SM)"),
        measure::obs_greater(
            measure::obs_total_duration(true, measure::TimeArg::start_exp(),
                                        measure::TimeArg::end_exp()),
            0.0));
  return m;
}

TEST(Sinks, MeasureSinkMatchesBatchPipeline) {
  const auto study = quickstart_study("cov", 8, 8000);

  // Batch: buffer everything, then analyze + measure.
  const auto campaign_result = runtime::run_campaign({study});
  const auto analyses = analysis::analyze_study(campaign_result.studies[0]);
  const auto batch_values = coverage_measure().apply_study(analyses);

  // Streaming: one pass through the MeasureSink.
  auto sink = std::make_shared<campaign::MeasureSink>();
  sink->measure("cov", coverage_measure());
  CampaignBuilder builder;
  builder.add(study).parallelism(4).sink(sink);
  builder.build().run();

  ASSERT_NE(sink->values("cov"), nullptr);
  EXPECT_EQ(*sink->values("cov"), batch_values);

  const auto* stats = sink->find("cov");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->total, 8);
  int accepted = 0;
  for (const auto& a : analyses) accepted += a.accepted ? 1 : 0;
  EXPECT_EQ(stats->accepted, accepted);

  const auto samples = sink->samples();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].study, "cov");
  EXPECT_EQ(samples[0].values, batch_values);
}

TEST(Sinks, AnalysisSinkStreamsAndRetains) {
  const auto study = quickstart_study("an", 4, 8100);
  auto sink = std::make_shared<campaign::AnalysisSink>();
  int streamed = 0;
  sink->on_analysis([&](const campaign::StudyInfo& s, int,
                        const analysis::ExperimentAnalysis&) {
    EXPECT_EQ(s.name, "an");
    ++streamed;
  });
  CampaignBuilder builder;
  builder.add(study).sink(sink);
  builder.build().run();

  EXPECT_EQ(streamed, 4);
  const auto* record = sink->find("an");
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->total, 4);
  EXPECT_EQ(record->analyses.size(), 4u);
  EXPECT_LE(record->accepted, record->total);
}

// --- fluent composition ------------------------------------------------------

TEST(Builder, ComposedStudyRunsAndInjects) {
  // Quickstart study built entirely through the fluent surface.
  auto sink = std::make_shared<campaign::CollectSink>();
  CampaignBuilder builder;
  Campaign c = builder.sink(sink)
                   .study("fluent")
                   .experiments(3)
                   .base(election_params(4000))
                   .fault("black", "bfault1 (black:LEAD) always\n")
                   .tweak([](ExperimentParams& p, int) {
                     p.nodes[0].restart.enabled = true;
                     p.nodes[0].restart.delay = milliseconds(60);
                   })
                   .done()
                   .build();
  c.run();

  const auto& experiments = sink->result().studies[0].experiments;
  ASSERT_EQ(experiments.size(), 3u);
  for (const auto& r : experiments) EXPECT_TRUE(r.completed);
  // base(seed) varies the seed per experiment: runs differ.
  EXPECT_NE(runtime::serialize_local_timeline(experiments[0].timeline_of("black")),
            runtime::serialize_local_timeline(experiments[1].timeline_of("black")));
}

TEST(Builder, SummaryCountsExperiments) {
  CampaignBuilder builder;
  builder.add(quickstart_study("s1", 3)).add(quickstart_study("s2", 2, 5000));
  const Campaign::Summary summary = builder.build().run();
  EXPECT_EQ(summary.studies, 2);
  EXPECT_EQ(summary.experiments, 5);
  EXPECT_EQ(summary.completed, 5);
  EXPECT_EQ(summary.timed_out, 0);
  EXPECT_GE(summary.wall_seconds, 0.0);
}

TEST(Builder, RunIsSingleShot) {
  CampaignBuilder builder;
  builder.add(quickstart_study("once", 1));
  Campaign c = builder.build();
  c.run();
  EXPECT_THROW(c.run(), LogicError);
}

TEST(Runners, SkewedDurationsKeepOrderAndBackpressure) {
  // Experiment 0 runs 3x longer than the rest: later experiments finish
  // first and must wait in the pool's bounded reorder window (workers=2 ->
  // window 4 < 12 experiments) without changing what sinks observe.
  runtime::StudyParams study;
  study.name = "skew";
  study.experiments = 12;
  study.make_params = [](int k) {
    return election_params(7000 + static_cast<std::uint64_t>(k),
                           k == 0 ? milliseconds(900) : milliseconds(300));
  };
  const auto serial = run_with(std::make_shared<campaign::SerialRunner>(), study);
  const auto pooled =
      run_with(std::make_shared<campaign::ThreadPoolRunner>(2), study);
  ASSERT_EQ(pooled.studies[0].experiments.size(), 12u);
  for (int k = 0; k < 12; ++k) {
    SCOPED_TRACE("experiment " + std::to_string(k));
    expect_identical(serial.studies[0].experiments[static_cast<std::size_t>(k)],
                     pooled.studies[0].experiments[static_cast<std::size_t>(k)]);
  }
}

TEST(RunSingle, ValidatesBeforeRunning) {
  auto p = election_params(1);
  p.nodes[0].initial_host = "hostZ";
  EXPECT_THROW(campaign::run_single(p, "single"), ConfigError);
  EXPECT_TRUE(campaign::run_single(election_params(1), "single").completed);
}

}  // namespace
}  // namespace loki
