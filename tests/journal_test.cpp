// Durable campaigns: a crashed journaled campaign resumes with a sink
// sequence byte-identical to an uninterrupted run and zero re-execution of
// journaled indices; the hardened ResultCache quarantines corrupt entries,
// GCs by generation under a byte/entry budget, and throws typed CacheError
// on store failure. The CLI suite SIGKILLs `lokimeasure --campaign` at
// several journal offsets and `cmp`s the resumed stdout against a clean run.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include "apps/election.hpp"
#include "campaign/cache.hpp"
#include "campaign/campaign.hpp"
#include "campaign/journal.hpp"
#include "runtime/serialize.hpp"
#include "util/error.hpp"

namespace loki {
namespace {

namespace fs = std::filesystem;

using runtime::ExperimentParams;
using runtime::ExperimentResult;

const std::vector<std::string> kHosts = {"hostA", "hostB", "hostC"};
const std::vector<std::pair<std::string, std::string>> kPlacement = {
    {"black", "hostA"}, {"yellow", "hostB"}, {"green", "hostC"}};

ExperimentParams election_params(std::uint64_t seed) {
  apps::ElectionParams app;
  app.run_for = milliseconds(300);
  app.fault_activation_prob = 0.85;
  return apps::election_experiment(seed, kHosts, kPlacement, app);
}

runtime::StudyParams fault_study(const std::string& name, int experiments,
                                 std::uint64_t base_seed = 3000) {
  runtime::StudyParams study;
  study.name = name;
  study.experiments = experiments;
  study.make_params = [base_seed](int k) {
    auto p = election_params(base_seed + static_cast<std::uint64_t>(k));
    p.nodes[0].fault_spec =
        spec::parse_fault_spec("bfault1 (black:LEAD) always\n", "t");
    p.nodes[0].restart.enabled = true;
    p.nodes[0].restart.delay = milliseconds(60);
    return p;
  };
  return study;
}

/// One observed sink event, rendered comparable.
struct Event {
  std::string kind;
  std::string study;
  int index{-1};
  std::vector<std::uint8_t> result_bytes;

  bool operator==(const Event&) const = default;
};

std::string temp_path(const std::string& tag) {
  const std::string path = testing::TempDir() + "loki-" + tag + "-" +
                           std::to_string(::getpid());
  // A previous ctest invocation may have left state here; these tests
  // assert cold-start stats and fresh journals, so start clean.
  fs::remove_all(path);
  return path;
}

/// A runner that must never be asked to run anything — proof that a resume
/// of a completed journal performs zero run_experiment calls.
class ForbiddenRunner final : public campaign::Runner {
 public:
  std::string name() const override { return "forbidden"; }
  int parallelism() const override { return 1; }
  void run_study(const runtime::StudyParams& study,
                 const campaign::EmitFn&) override {
    throw LogicError("ForbiddenRunner invoked for study '" + study.name + "'");
  }
};

/// SerialRunner that counts every experiment it actually executes — the
/// zero-re-execution proof is `executed()` summing to exactly one run per
/// index across a crashed attempt and its resume.
class CountingRunner final : public campaign::Runner {
 public:
  std::string name() const override { return "counting-serial"; }
  int parallelism() const override { return 1; }
  void run_study(const runtime::StudyParams& study,
                 const campaign::EmitFn& emit) override {
    campaign::SerialRunner serial;
    serial.run_study(study, [&](int k, ExperimentResult&& result) {
      ++executed_;
      emit(k, std::move(result));
    });
  }
  int executed() const { return executed_; }

 private:
  int executed_{0};
};

struct Recorded {
  std::vector<Event> events;
  Campaign::Summary summary;
};

std::shared_ptr<campaign::CallbackSink> recording_sink(
    std::vector<Event>& events) {
  auto sink = std::make_shared<campaign::CallbackSink>();
  sink->campaign_begin([&events](int n) {
    events.push_back({"campaign_begin", std::to_string(n), -1, {}});
  });
  sink->study_begin([&events](const campaign::StudyInfo& info) {
    events.push_back({"study_begin", info.name, -1, {}});
  });
  sink->experiment([&events](const campaign::StudyInfo& info, int index,
                             const ExperimentResult& result) {
    events.push_back({"experiment", info.name, index,
                      runtime::encode_experiment_result(result)});
  });
  sink->study_done([&events](const campaign::StudyInfo& info) {
    events.push_back({"study_done", info.name, -1, {}});
  });
  sink->campaign_done(
      [&events] { events.push_back({"campaign_done", "", -1, {}}); });
  return sink;
}

/// Run `study` journaled (fresh or resumed), recording the sink sequence.
Recorded run_journaled(std::shared_ptr<campaign::Runner> runner,
                       const runtime::StudyParams& study,
                       std::shared_ptr<campaign::ResultCache> cache,
                       const std::string& journal, bool resume,
                       int group = 1) {
  Recorded r;
  CampaignBuilder builder;
  builder.add(study)
      .runner(std::move(runner))
      .sink(recording_sink(r.events))
      .cache(std::move(cache))
      .journal_group(group);
  if (resume)
    builder.resume(journal);
  else
    builder.journal(journal);
  r.summary = builder.build().run();
  return r;
}

/// Run `study` journaled with a sink that throws when it observes
/// `crash_index` — the in-process stand-in for a coordinator crash (the
/// CLI suite below does it with a real SIGKILL). Returns the events
/// observed before the crash.
std::vector<Event> run_until_crash(std::shared_ptr<campaign::Runner> runner,
                                   const runtime::StudyParams& study,
                                   std::shared_ptr<campaign::ResultCache> cache,
                                   const std::string& journal, int crash_index,
                                   int group = 1) {
  std::vector<Event> events;
  auto recorder = recording_sink(events);
  auto crasher = std::make_shared<campaign::CallbackSink>();
  crasher->experiment([crash_index](const campaign::StudyInfo&, int index,
                                    const ExperimentResult&) {
    if (index == crash_index)
      throw std::runtime_error("injected coordinator crash");
  });
  CampaignBuilder builder;
  builder.add(study)
      .runner(std::move(runner))
      .sink(recorder)
      .sink(crasher)
      .cache(std::move(cache))
      .journal(journal)
      .journal_group(group);
  EXPECT_THROW(builder.build().run(), std::runtime_error);
  return events;
}

void expect_identical(const std::vector<Event>& got,
                      const std::vector<Event>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(got[i], want[i]) << "event " << i;
}

std::vector<Event> reference_events(const runtime::StudyParams& study) {
  Recorded r;
  CampaignBuilder builder;
  builder.add(study)
      .runner(std::make_shared<campaign::SerialRunner>())
      .sink(recording_sink(r.events));
  r.summary = builder.build().run();
  return r.events;
}

// --- crash-resume identity ---------------------------------------------------

TEST(JournalResume, CrashMidStudyResumesByteIdenticallyWithZeroReRuns) {
  const auto study = fault_study("durable", 8);
  const auto reference = reference_events(study);

  auto cache =
      std::make_shared<campaign::ResultCache>(temp_path("jr-crash-cache"));
  const std::string journal = temp_path("jr-crash-journal");

  // Crash while emitting index 4. With group-commit 1 every IndexDone is
  // durable before its emit, so the journaled prefix is exactly 0..4.
  auto first = std::make_shared<CountingRunner>();
  run_until_crash(first, study, cache, journal, /*crash_index=*/4);
  EXPECT_EQ(first->executed(), 5);

  const auto state = campaign::CampaignJournal::load(journal);
  ASSERT_TRUE(state.campaign_begun);
  ASSERT_EQ(state.progress.size(), 1u);
  EXPECT_EQ(state.progress[0].done_keys.size(), 5u);
  EXPECT_FALSE(state.progress[0].ended);
  EXPECT_FALSE(state.campaign_done);

  auto second = std::make_shared<CountingRunner>();
  const Recorded resumed =
      run_journaled(second, study, cache, journal, /*resume=*/true);
  expect_identical(resumed.events, reference);
  EXPECT_EQ(resumed.summary.replayed, 5);
  EXPECT_EQ(second->executed(), 3);  // only the tail ran
  // Zero re-execution: every index ran exactly once across both attempts.
  EXPECT_EQ(first->executed() + second->executed(), study.experiments);

  const auto final_state = campaign::CampaignJournal::load(journal);
  EXPECT_TRUE(final_state.campaign_done);
  ASSERT_EQ(final_state.progress.size(), 1u);
  EXPECT_TRUE(final_state.progress[0].ended);
  EXPECT_EQ(final_state.progress[0].done_keys.size(),
            static_cast<std::size_t>(study.experiments));
}

TEST(JournalResume, GroupCommitBufferIsFlushedOnAbort) {
  const auto study = fault_study("grouped", 6);
  auto cache =
      std::make_shared<campaign::ResultCache>(temp_path("jr-group-cache"));
  const std::string journal = temp_path("jr-group-journal");

  // Group of 8 > 6 experiments: no group boundary is ever reached, so the
  // journaled prefix exists only because the abort path flushes it.
  run_until_crash(std::make_shared<campaign::SerialRunner>(), study, cache,
                  journal, /*crash_index=*/3, /*group=*/8);
  const auto state = campaign::CampaignJournal::load(journal);
  ASSERT_EQ(state.progress.size(), 1u);
  EXPECT_EQ(state.progress[0].done_keys.size(), 4u);

  const Recorded resumed = run_journaled(std::make_shared<CountingRunner>(),
                                         study, cache, journal, true);
  expect_identical(resumed.events, reference_events(study));
  EXPECT_EQ(resumed.summary.replayed, 4);
}

TEST(JournalResume, CompletedJournalReplaysEverything) {
  const auto study = fault_study("complete", 5);
  auto cache =
      std::make_shared<campaign::ResultCache>(temp_path("jr-done-cache"));
  const std::string journal = temp_path("jr-done-journal");

  const Recorded full = run_journaled(std::make_shared<campaign::SerialRunner>(),
                                      study, cache, journal, false);
  EXPECT_EQ(full.summary.replayed, 0);

  // Resuming a finished campaign replays the whole sink sequence from the
  // journal+cache; the runner must never be consulted.
  const Recorded resumed = run_journaled(std::make_shared<ForbiddenRunner>(),
                                         study, cache, journal, true);
  expect_identical(resumed.events, full.events);
  EXPECT_EQ(resumed.summary.replayed, study.experiments);
  EXPECT_EQ(resumed.summary.cache_hits, 0);
}

TEST(JournalResume, TruncatedTailIsTreatedAsUnwritten) {
  const auto study = fault_study("torn", 8);
  auto cache =
      std::make_shared<campaign::ResultCache>(temp_path("jr-torn-cache"));
  const std::string journal = temp_path("jr-torn-journal");

  run_until_crash(std::make_shared<campaign::SerialRunner>(), study, cache,
                  journal, /*crash_index=*/4);

  // Tear the last IndexDone record — the on-disk shape of a SIGKILL landing
  // mid-append.
  fs::resize_file(journal, fs::file_size(journal) - 3);
  const auto state = campaign::CampaignJournal::load(journal);
  EXPECT_TRUE(state.truncated_tail);
  ASSERT_EQ(state.progress.size(), 1u);
  EXPECT_EQ(state.progress[0].done_keys.size(), 4u);

  // Index 4 fell out of the journal but its cache store was durable first
  // (the ordering contract), so the resume serves it as a plain hit.
  auto counting = std::make_shared<CountingRunner>();
  const Recorded resumed = run_journaled(counting, study, cache, journal, true);
  expect_identical(resumed.events, reference_events(study));
  EXPECT_EQ(resumed.summary.replayed, 4);
  EXPECT_EQ(resumed.summary.cache_hits, 1);
  EXPECT_EQ(counting->executed(), 3);
}

TEST(JournalResume, JournalKilledAtBirthIsAFreshStart) {
  const auto study = fault_study("newborn", 4);
  auto cache =
      std::make_shared<campaign::ResultCache>(temp_path("jr-birth-cache"));
  const std::string journal = temp_path("jr-birth-journal");
  { std::ofstream out(journal, std::ios::binary); }  // empty file

  const Recorded resumed = run_journaled(std::make_shared<CountingRunner>(),
                                         study, cache, journal, true);
  expect_identical(resumed.events, reference_events(study));
  EXPECT_EQ(resumed.summary.replayed, 0);
  EXPECT_TRUE(campaign::CampaignJournal::load(journal).campaign_done);
}

TEST(JournalResume, ForeignJournalIsRejected) {
  const auto study = fault_study("mine", 6);
  auto cache =
      std::make_shared<campaign::ResultCache>(temp_path("jr-foreign-cache"));
  const std::string journal = temp_path("jr-foreign-journal");
  run_until_crash(std::make_shared<campaign::SerialRunner>(), study, cache,
                  journal, /*crash_index=*/2);

  const auto resume_with = [&](const runtime::StudyParams& other) {
    return run_journaled(std::make_shared<campaign::SerialRunner>(), other,
                         cache, journal, true);
  };
  // Same name and count, different seeds: only the digest can tell.
  EXPECT_THROW(resume_with(fault_study("mine", 6, 4000)), ConfigError);
  EXPECT_THROW(resume_with(fault_study("mine", 9)), ConfigError);
  EXPECT_THROW(resume_with(fault_study("theirs", 6)), ConfigError);
  // The matching campaign still resumes after all those rejections.
  expect_identical(resume_with(study).events, reference_events(study));
}

TEST(JournalResume, GarbledJournalIsRejected) {
  const std::string journal = temp_path("jr-garbled-journal");
  { std::ofstream out(journal, std::ios::binary); out << std::string(64, 'x'); }
  EXPECT_THROW(campaign::CampaignJournal::load(journal), ConfigError);

  const auto study = fault_study("garbled", 3);
  auto cache =
      std::make_shared<campaign::ResultCache>(temp_path("jr-garbled-cache"));
  EXPECT_THROW(run_journaled(std::make_shared<campaign::SerialRunner>(), study,
                             cache, journal, true),
               ConfigError);
}

TEST(JournalResume, BuilderRejectsJournalMisconfiguration) {
  const auto study = fault_study("builder", 2);
  {
    // A journal without a cache has nothing to replay from.
    CampaignBuilder builder;
    builder.add(study)
        .runner(std::make_shared<campaign::SerialRunner>())
        .journal(temp_path("jr-nocache-journal"));
    EXPECT_THROW(builder.build(), ConfigError);
  }
  {
    CampaignBuilder builder;
    EXPECT_THROW(builder.journal(""), ConfigError);
    EXPECT_THROW(builder.journal_group(0), ConfigError);
  }
}

// --- hardened cache ----------------------------------------------------------

TEST(HardenedCache, CorruptEntryIsQuarantinedAndRefilled) {
  const std::string dir = temp_path("cache-quarantine");
  campaign::ResultCache cache(dir);
  const std::string key(64, 'a');
  cache.store(key, ExperimentResult{});
  ASSERT_TRUE(cache.lookup(key).has_value());

  const fs::path entry = fs::path(dir) / (key + ".result");
  { std::ofstream out(entry, std::ios::binary | std::ios::trunc); out << "rot"; }

  EXPECT_FALSE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.stats().corrupt, 1u);
  EXPECT_FALSE(fs::exists(entry));
  EXPECT_TRUE(fs::exists(fs::path(dir) / (key + ".corrupt")));

  // The quarantine freed the key: a fresh store repairs the entry.
  cache.store(key, ExperimentResult{});
  EXPECT_TRUE(cache.lookup(key).has_value());
}

TEST(HardenedCache, EntryBudgetEvictsOldestGenerationFirst) {
  const std::string k1(64, '1'), k2(64, '2'), k3(64, '3');
  campaign::CacheOptions options;
  options.max_entries = 2;
  campaign::ResultCache cache(temp_path("cache-entries"), options);
  cache.store(k1, ExperimentResult{});
  cache.store(k2, ExperimentResult{});
  cache.store(k3, ExperimentResult{});
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_FALSE(cache.contains(k1));
  EXPECT_TRUE(cache.contains(k2));
  EXPECT_TRUE(cache.contains(k3));
}

TEST(HardenedCache, ByteBudgetNeverEvictsTheEntryJustStored) {
  const std::string k1(64, '4'), k2(64, '5');
  campaign::CacheOptions options;
  options.max_bytes = 1;  // nothing fits, but the newest entry must survive
  campaign::ResultCache cache(temp_path("cache-bytes"), options);
  cache.store(k1, ExperimentResult{});
  cache.store(k2, ExperimentResult{});
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_FALSE(cache.contains(k1));
  EXPECT_TRUE(cache.contains(k2));
}

TEST(HardenedCache, GenerationOrderSurvivesReopen) {
  const std::string dir = temp_path("cache-reopen");
  const std::string k1(64, '6'), k2(64, '7'), k3(64, '8');
  {
    campaign::ResultCache cache(dir);
    cache.store(k1, ExperimentResult{});
    cache.store(k2, ExperimentResult{});
  }  // destructor persists the generation index
  campaign::CacheOptions options;
  options.max_entries = 2;
  campaign::ResultCache cache(dir, options);
  cache.store(k3, ExperimentResult{});
  EXPECT_FALSE(cache.contains(k1));  // oldest persisted generation lost
  EXPECT_TRUE(cache.contains(k2));
  EXPECT_TRUE(cache.contains(k3));
}

TEST(HardenedCache, MissingIndexIsRebuiltFromDisk) {
  const std::string dir = temp_path("cache-rebuild");
  const std::string key(64, '9');
  {
    campaign::ResultCache cache(dir);
    cache.store(key, ExperimentResult{});
    cache.flush_index();
  }
  fs::remove(fs::path(dir) / "cache.index");
  campaign::ResultCache cache(dir);
  EXPECT_TRUE(cache.contains(key));
  EXPECT_TRUE(cache.lookup(key).has_value());
}

TEST(HardenedCache, StoreFailureThrowsCacheError) {
  const std::string dir = temp_path("cache-dead");
  campaign::ResultCache cache(dir);
  fs::remove_all(dir);  // the disk "dies" under the open cache
  EXPECT_THROW(cache.store(std::string(64, 'b'), ExperimentResult{}),
               campaign::CacheError);
}

// --- CLI crash-resume (real SIGKILL) -----------------------------------------

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

pid_t spawn_cli(const std::string& bin, const std::vector<std::string>& args,
                const std::string& out_path, const std::string& err_path) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  const int out = ::open(out_path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  const int err = ::open(err_path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (out < 0 || err < 0) ::_exit(126);
  ::dup2(out, STDOUT_FILENO);
  ::dup2(err, STDERR_FILENO);
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(bin.c_str()));
  for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  ::execv(bin.c_str(), argv.data());
  ::_exit(127);
}

int wait_cli(pid_t pid) {
  int status = 0;
  ::waitpid(pid, &status, 0);
  return status;
}

/// Journaled-experiment count readable right now, torn tail and all;
/// 0 while the header is still forming.
std::size_t journaled_count(const std::string& journal) {
  try {
    const auto state = campaign::CampaignJournal::load(journal);
    return state.progress.empty() ? 0 : state.progress[0].done_keys.size();
  } catch (const std::exception&) {
    return 0;
  }
}

TEST(JournalCli, SigkilledCampaignResumesByteIdentically) {
  const char* bin = std::getenv("LOKIMEASURE_BIN");
  if (bin == nullptr)
    GTEST_SKIP() << "LOKIMEASURE_BIN not set (tools not built)";

  const std::string root = temp_path("cli-journal");
  fs::create_directories(root);
  const auto campaign_args = [](const std::string& cache,
                                const std::string& journal, bool resume) {
    // 600 experiments with per-record fsync: slow enough (~0.5 s) that the
    // kill below lands genuinely mid-run.
    std::vector<std::string> args = {
        "--campaign", "--experiments", "600",  "--seed",          "9000",
        "--cache",    cache,           "--journal-group", "1",
        resume ? "--resume" : "--journal", journal};
    return args;
  };

  // The uninterrupted reference run.
  const std::string base = root + "/base";
  ASSERT_EQ(wait_cli(spawn_cli(bin,
                               campaign_args(base + ".cache", base + ".journal",
                                             false),
                               base + ".out", base + ".err")),
            0);
  const std::string expected = read_file(base + ".out");
  ASSERT_FALSE(expected.empty());

  // SIGKILL at several journal offsets: just after the first IndexDone,
  // mid-stream, and deep into the run.
  for (const std::size_t target : {1u, 120u, 400u}) {
    SCOPED_TRACE("kill after " + std::to_string(target) + " journaled");
    const std::string tag = root + "/kill" + std::to_string(target);
    const std::string cache = tag + ".cache";
    const std::string journal = tag + ".journal";

    const pid_t pid = spawn_cli(bin, campaign_args(cache, journal, false),
                                tag + ".out", tag + ".err");
    bool exited = false;
    int status = 0;
    while (true) {
      if (::waitpid(pid, &status, WNOHANG) == pid) {
        exited = true;  // finished before we could kill: resume still valid
        break;
      }
      if (journaled_count(journal) >= target) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (!exited) {
      ASSERT_EQ(::kill(pid, SIGKILL), 0);
      status = wait_cli(pid);
      ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);
    }

    ASSERT_EQ(wait_cli(spawn_cli(bin, campaign_args(cache, journal, true),
                                 tag + ".resume.out", tag + ".resume.err")),
              0);
    // The whole point: the resumed stdout is byte-identical to a run that
    // was never killed.
    EXPECT_EQ(read_file(tag + ".resume.out"), expected);
    // And the journaled prefix really was replayed, not re-run.
    if (!exited) {
      EXPECT_NE(read_file(tag + ".resume.err").find("resume: replayed="),
                std::string::npos);
    }
  }
}

}  // namespace
}  // namespace loki
