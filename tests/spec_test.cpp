#include <gtest/gtest.h>

#include <map>

#include "spec/campaign_files.hpp"
#include "spec/fault_expr.hpp"
#include "spec/fault_spec.hpp"
#include "spec/reserved.hpp"
#include "spec/state_machine_spec.hpp"
#include "util/error.hpp"

namespace loki::spec {
namespace {

const char* kBlackSpec = R"(
global_state_list
  BEGIN
  INIT
  RESTART_SM
  ELECT
  FOLLOW
  LEAD
  CRASH
  EXIT
end_global_state_list
event_list
  START
  INIT_DONE
  RESTART
  RESTART_DONE
  LEADER
  FOLLOWER
  LEADER_CRASH
  CRASH
  ERROR
end_event_list
state INIT notify green yellow
  INIT_DONE ELECT
  ERROR EXIT
state RESTART_SM notify green, yellow
  RESTART_DONE FOLLOW
  ERROR EXIT
state ELECT notify
  FOLLOWER FOLLOW
  LEADER LEAD
  CRASH CRASH
  ERROR EXIT
state LEAD notify
  CRASH CRASH
  ERROR EXIT
state FOLLOW notify
  LEADER_CRASH ELECT
  CRASH CRASH
  ERROR EXIT
state CRASH notify green yellow
state EXIT notify
)";

TEST(StateMachineSpec, ParsesChapter5Example) {
  StateMachineSpec s = parse_state_machine_spec(kBlackSpec, "black.sm");
  s.set_name("black");
  EXPECT_EQ(s.states().size(), 8u);
  EXPECT_EQ(s.events().size(), 9u);
  EXPECT_TRUE(s.has_state("LEAD"));
  EXPECT_FALSE(s.has_state("NOPE"));
  EXPECT_TRUE(s.has_event("LEADER_CRASH"));

  EXPECT_EQ(s.transition("ELECT", "LEADER").value(), "LEAD");
  EXPECT_EQ(s.transition("FOLLOW", "LEADER_CRASH").value(), "ELECT");
  EXPECT_FALSE(s.transition("LEAD", "FOLLOWER").has_value());
  EXPECT_FALSE(s.transition("UNKNOWN", "LEADER").has_value());

  // Comma-separated notify lists are tolerated.
  EXPECT_EQ(s.notify_list("RESTART_SM"),
            (std::vector<std::string>{"green", "yellow"}));
  EXPECT_TRUE(s.notify_list("LEAD").empty());
}

TEST(StateMachineSpec, SerializeParseRoundTrip) {
  StateMachineSpec s = parse_state_machine_spec(kBlackSpec, "black.sm");
  const std::string text = serialize_state_machine_spec(s);
  StateMachineSpec s2 = parse_state_machine_spec(text, "rt.sm");
  EXPECT_EQ(s.states(), s2.states());
  EXPECT_EQ(s.events(), s2.events());
  EXPECT_EQ(s.state_defs().size(), s2.state_defs().size());
  for (const auto& def : s.state_defs()) {
    const StateDef* other = nullptr;
    for (const auto& d2 : s2.state_defs())
      if (d2.name == def.name) other = &d2;
    ASSERT_NE(other, nullptr) << def.name;
    EXPECT_EQ(def.notify, other->notify);
    EXPECT_EQ(def.transitions, other->transitions);
  }
}

TEST(StateMachineSpec, DefaultWildcardTransition) {
  const char* text = R"(
global_state_list
  A
  B
end_global_state_list
event_list
  go
end_event_list
state A
  default B
state B
)";
  StateMachineSpec s = parse_state_machine_spec(text, "wild.sm");
  EXPECT_EQ(s.transition("A", "anything").value(), "B");
  EXPECT_EQ(s.transition("A", "go").value(), "B");
}

TEST(StateMachineSpec, ExplicitArcBeatsDefault) {
  const char* text = R"(
global_state_list
  A
  B
  C
end_global_state_list
event_list
  go
end_event_list
state A
  go C
  default B
)";
  StateMachineSpec s = parse_state_machine_spec(text, "wild.sm");
  EXPECT_EQ(s.transition("A", "go").value(), "C");
  EXPECT_EQ(s.transition("A", "other").value(), "B");
}

TEST(StateMachineSpec, RejectsMalformedInput) {
  EXPECT_THROW(parse_state_machine_spec("state X\n", "x"), ParseError);
  EXPECT_THROW(parse_state_machine_spec(
                   "global_state_list\nA\nA\nend_global_state_list\n"
                   "event_list\ne\nend_event_list\n",
                   "dup"),
               ParseError);
  EXPECT_THROW(parse_state_machine_spec(
                   "global_state_list\nA\nend_global_state_list\n"
                   "event_list\ne\nend_event_list\n"
                   "state B\n",
                   "unknown-state"),
               ParseError);
  EXPECT_THROW(parse_state_machine_spec(
                   "global_state_list\nA\nB\nend_global_state_list\n"
                   "event_list\ne\nend_event_list\n"
                   "state A\n  nope B\n",
                   "unknown-event"),
               ParseError);
  EXPECT_THROW(parse_state_machine_spec(
                   "global_state_list\nA\nend_global_state_list\n"
                   "event_list\ne\nend_event_list\n"
                   "e A\n",
                   "transition-before-state"),
               ParseError);
}

TEST(Reserved, Names) {
  EXPECT_TRUE(is_reserved_state("BEGIN"));
  EXPECT_TRUE(is_reserved_state("CRASH"));
  EXPECT_TRUE(is_reserved_event("default"));
  EXPECT_TRUE(is_reserved_event("RESTART"));
  EXPECT_FALSE(is_reserved_event("LEADER"));
  EXPECT_FALSE(is_reserved_state("LEAD"));
}

// --- fault expressions -------------------------------------------------------

StateView view_of(const std::map<std::string, std::string>& m) {
  return [m](const std::string& machine) -> const std::string* {
    static thread_local std::string held;
    const auto it = m.find(machine);
    if (it == m.end()) return nullptr;
    held = it->second;
    return &held;
  };
}

TEST(FaultExpr, SingleTerm) {
  const auto e = parse_fault_expr("(black:LEAD)", "t", 1);
  EXPECT_TRUE(e->eval(view_of({{"black", "LEAD"}})));
  EXPECT_FALSE(e->eval(view_of({{"black", "FOLLOW"}})));
  EXPECT_FALSE(e->eval(view_of({})));  // unknown machine is never in a state
}

TEST(FaultExpr, ThesisExampleExpression) {
  // F1 ((SM1:ELECT) & (SM2:FOLLOW)) always  (§3.5.5)
  const auto e = parse_fault_expr("((SM1:ELECT) & (SM2:FOLLOW))", "t", 1);
  EXPECT_TRUE(e->eval(view_of({{"SM1", "ELECT"}, {"SM2", "FOLLOW"}})));
  EXPECT_FALSE(e->eval(view_of({{"SM1", "ELECT"}, {"SM2", "LEAD"}})));
  EXPECT_FALSE(e->eval(view_of({{"SM1", "ELECT"}})));
}

TEST(FaultExpr, Chapter5Gfault2) {
  const auto e = parse_fault_expr(
      "((black:CRASH) & ((green:FOLLOW) | (green:ELECT)))", "t", 1);
  EXPECT_TRUE(e->eval(view_of({{"black", "CRASH"}, {"green", "FOLLOW"}})));
  EXPECT_TRUE(e->eval(view_of({{"black", "CRASH"}, {"green", "ELECT"}})));
  EXPECT_FALSE(e->eval(view_of({{"black", "CRASH"}, {"green", "LEAD"}})));
  EXPECT_FALSE(e->eval(view_of({{"black", "LEAD"}, {"green", "FOLLOW"}})));
}

TEST(FaultExpr, NotAndPrecedence) {
  // AND binds tighter than OR.
  const auto e = parse_fault_expr("(a:X) | (b:Y) & (c:Z)", "t", 1);
  EXPECT_TRUE(e->eval(view_of({{"a", "X"}})));
  EXPECT_FALSE(e->eval(view_of({{"b", "Y"}})));
  EXPECT_TRUE(e->eval(view_of({{"b", "Y"}, {"c", "Z"}})));

  const auto n = parse_fault_expr("~(a:X)", "t", 1);
  EXPECT_FALSE(n->eval(view_of({{"a", "X"}})));
  EXPECT_TRUE(n->eval(view_of({{"a", "Y"}})));
  EXPECT_TRUE(n->eval(view_of({})));
}

TEST(FaultExpr, CollectTermsAndMachines) {
  const auto e = parse_fault_expr(
      "((black:CRASH) & ((green:FOLLOW) | (green:ELECT)))", "t", 1);
  const auto terms = expr_terms(*e);
  EXPECT_EQ(terms.size(), 3u);
  const auto machines = expr_machines(*e);
  EXPECT_EQ(machines, (std::set<std::string>{"black", "green"}));
}

TEST(FaultExpr, ToStringRoundTrip) {
  const auto e = parse_fault_expr("~((a:X) & (b:Y)) | (c:Z)", "t", 1);
  const auto e2 = parse_fault_expr(e->to_string(), "t", 1);
  for (const auto& view :
       std::vector<std::map<std::string, std::string>>{
           {}, {{"a", "X"}}, {{"a", "X"}, {"b", "Y"}}, {{"c", "Z"}},
           {{"a", "X"}, {"b", "Y"}, {"c", "Z"}}}) {
    EXPECT_EQ(e->eval(view_of(view)), e2->eval(view_of(view)));
  }
}

TEST(FaultExpr, RejectsMalformed) {
  EXPECT_THROW(parse_fault_expr("(black:)", "t", 1), ParseError);
  EXPECT_THROW(parse_fault_expr("(black LEAD)", "t", 1), ParseError);
  EXPECT_THROW(parse_fault_expr("(black:LEAD", "t", 1), ParseError);
  EXPECT_THROW(parse_fault_expr("(black:LEAD) &", "t", 1), ParseError);
  EXPECT_THROW(parse_fault_expr("", "t", 1), ParseError);
  EXPECT_THROW(parse_fault_expr("(black:LEAD) (green:X)", "t", 1), ParseError);
}

// --- fault specs -------------------------------------------------------------

TEST(FaultSpec, ParseChapter5Specs) {
  const FaultSpec spec = parse_fault_spec(
      "bfault1 (black:LEAD) always\n"
      "gfault2 ((black:CRASH) & ((green:FOLLOW) | (green:ELECT))) once\n",
      "faults");
  ASSERT_EQ(spec.entries.size(), 2u);
  EXPECT_EQ(spec.entries[0].name, "bfault1");
  EXPECT_EQ(spec.entries[0].trigger, Trigger::Always);
  EXPECT_EQ(spec.entries[1].trigger, Trigger::Once);
  EXPECT_EQ(spec.referenced_machines(),
            (std::set<std::string>{"black", "green"}));
  EXPECT_NE(spec.find("gfault2"), nullptr);
  EXPECT_EQ(spec.find("nope"), nullptr);
}

TEST(FaultSpec, RoundTrip) {
  const FaultSpec spec = parse_fault_spec(
      "f1 ((a:X) & (b:Y)) once\nf2 ~(c:Z) always\n", "faults");
  const FaultSpec spec2 = parse_fault_spec(serialize_fault_spec(spec), "rt");
  ASSERT_EQ(spec2.entries.size(), 2u);
  EXPECT_EQ(spec2.entries[0].name, "f1");
  EXPECT_EQ(spec2.entries[1].trigger, Trigger::Always);
}

TEST(FaultSpec, RejectsMalformed) {
  EXPECT_THROW(parse_fault_spec("f1 (a:X)\n", "missing-trigger"), ParseError);
  EXPECT_THROW(parse_fault_spec("f1 (a:X) sometimes\n", "bad-trigger"), ParseError);
  EXPECT_THROW(parse_fault_spec("f1 (a:X) once\nf1 (b:Y) once\n", "dup"),
               ParseError);
}

// --- campaign files ----------------------------------------------------------

TEST(CampaignFiles, NodeFile) {
  const NodeFile nodes =
      parse_node_file("black hostA\nyellow hostB\ngreen\n", "nodes");
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes[0].host.value(), "hostA");
  EXPECT_FALSE(nodes[2].host.has_value());
  EXPECT_EQ(parse_node_file(serialize_node_file(nodes), "rt").size(), 3u);
  EXPECT_THROW(parse_node_file("black a b c\n", "bad"), ParseError);
  EXPECT_THROW(parse_node_file("black\nblack\n", "dup"), ParseError);
}

TEST(CampaignFiles, DaemonStartupFile) {
  const auto entries =
      parse_daemon_startup_file("hostA 9000\nhostB 9001\n", "daemons");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[1].port, 9001);
  EXPECT_THROW(parse_daemon_startup_file("hostA 70000\n", "port"), ParseError);
  const auto rt = parse_daemon_contact_file(
      serialize_daemon_contact_file({{"hostA", 12, 34}}), "rt");
  EXPECT_EQ(rt[0].semaphore_id, 34);
}

TEST(CampaignFiles, MachinesFile) {
  const auto hosts = parse_machines_file("a\nb\nc\n", "machines");
  EXPECT_EQ(hosts, (MachinesFile{"a", "b", "c"}));
  EXPECT_THROW(parse_machines_file("a b\n", "two"), ParseError);
}

TEST(CampaignFiles, StudyFile) {
  const StudyFile study = parse_study_file(
      "black\nnodes.txt\nblack.sm\nblack.faults\n/bin/app\n--id black\n",
      "study");
  EXPECT_EQ(study.nickname, "black");
  EXPECT_EQ(study.arguments, "--id black");
  const StudyFile rt = parse_study_file(serialize_study_file(study), "rt");
  EXPECT_EQ(rt.executable_path, "/bin/app");
  // Arguments line is optional (5-line form).
  const StudyFile no_args =
      parse_study_file("b\nn\ns\nf\nexe\n", "study5");
  EXPECT_TRUE(no_args.arguments.empty());
  EXPECT_THROW(parse_study_file("a\nb\n", "short"), ParseError);
}

}  // namespace
}  // namespace loki::spec
