// The fleet-telemetry arithmetic (runtime/worker_stats.* +
// campaign::FleetTelemetry): histogram bucketing and quantiles, EWMA
// seeding and blending, order-independent snapshot merges — and the
// end-to-end ledger: per-worker counters reported over protocol-v3
// heartbeats must sum exactly to the campaign totals, requeues and losses
// must attribute to the workers that caused them, and Campaign::Summary
// must stay a correct *delta* when one runner is shared across campaigns.
// Also smokes StatusSink's non-tty rendering against a live fleet.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apps/election.hpp"
#include "apps/registry.hpp"
#include "campaign/campaign.hpp"
#include "campaign/remote_runner.hpp"
#include "campaign/sink.hpp"
#include "campaign/transport.hpp"
#include "runtime/worker_stats.hpp"
#include "util/text_file.hpp"

namespace loki {
namespace {

using runtime::LatencyHistogram;
using runtime::WorkerStatsSnapshot;
using runtime::merge_snapshots;

struct RegisterApps {
  RegisterApps() { apps::register_builtin_apps(); }
};
const RegisterApps kRegistered;

runtime::StudyParams fault_study(const std::string& name, int experiments,
                                 std::uint64_t base_seed = 61'000) {
  runtime::StudyParams study;
  study.name = name;
  study.experiments = experiments;
  study.make_params = [base_seed](int k) {
    apps::ElectionParams app;
    app.run_for = milliseconds(300);
    app.fault_activation_prob = 0.85;
    auto p = apps::election_experiment(
        base_seed + static_cast<std::uint64_t>(k),
        {"hostA", "hostB", "hostC"},
        {{"black", "hostA"}, {"yellow", "hostB"}, {"green", "hostC"}}, app);
    p.nodes[0].fault_spec =
        spec::parse_fault_spec("bfault1 (black:LEAD) always\n", "t");
    p.nodes[0].restart.enabled = true;
    p.nodes[0].restart.delay = milliseconds(60);
    return p;
  };
  return study;
}

campaign::RemoteOptions test_options(int lease_size = 2) {
  campaign::RemoteOptions options;
  options.lease_size = lease_size;
  options.hang_timeout = std::chrono::milliseconds(5'000);
  options.shutdown_grace = std::chrono::milliseconds(500);
  return options;
}

// --- histogram arithmetic ----------------------------------------------------

TEST(LatencyHistogram, BucketBoundariesAreLogTwo) {
  EXPECT_EQ(LatencyHistogram::bucket_of(0), 0);
  EXPECT_EQ(LatencyHistogram::bucket_of(1), 0);
  EXPECT_EQ(LatencyHistogram::bucket_of(2), 1);
  EXPECT_EQ(LatencyHistogram::bucket_of(3), 1);
  EXPECT_EQ(LatencyHistogram::bucket_of(4), 2);
  EXPECT_EQ(LatencyHistogram::bucket_of(1023), 9);
  EXPECT_EQ(LatencyHistogram::bucket_of(1024), 10);
  // Everything past the top boundary lands in the final bucket.
  EXPECT_EQ(LatencyHistogram::bucket_of(std::uint64_t{1} << 40),
            LatencyHistogram::kBuckets - 1);
  EXPECT_EQ(LatencyHistogram::bucket_of(~std::uint64_t{0}),
            LatencyHistogram::kBuckets - 1);
}

TEST(LatencyHistogram, QuantilesReportBucketMidpoints) {
  LatencyHistogram h;
  EXPECT_EQ(h.quantile_us(0.5), 0.0);  // empty
  // 90 fast samples in bucket 3, 10 slow ones in bucket 10.
  for (int i = 0; i < 90; ++i) h.record(10);
  for (int i = 0; i < 10; ++i) h.record(1'500);
  EXPECT_EQ(h.total_count(), 100u);
  EXPECT_DOUBLE_EQ(h.quantile_us(0.5), LatencyHistogram::bucket_mid_us(3));
  EXPECT_DOUBLE_EQ(h.quantile_us(0.9), LatencyHistogram::bucket_mid_us(3));
  EXPECT_DOUBLE_EQ(h.quantile_us(0.95), LatencyHistogram::bucket_mid_us(10));
  EXPECT_DOUBLE_EQ(h.quantile_us(1.0), LatencyHistogram::bucket_mid_us(10));
  // The midpoint is geometric: inside the bucket, above its lower bound.
  EXPECT_GT(LatencyHistogram::bucket_mid_us(3), 8.0);
  EXPECT_LT(LatencyHistogram::bucket_mid_us(3), 16.0);
}

TEST(LatencyHistogram, MergeIsBucketwiseSum) {
  LatencyHistogram a, b;
  a.record(5);
  a.record(700);
  b.record(6);
  b.record(1'000'000);
  LatencyHistogram ab = a;
  ab.merge(b);
  LatencyHistogram ba = b;
  ba.merge(a);
  EXPECT_EQ(ab, ba);
  EXPECT_EQ(ab.total_count(), 4u);
}

// --- EWMA and snapshot merges ------------------------------------------------

TEST(WorkerStats, FirstSampleSeedsTheEwmaExactly) {
  WorkerStatsSnapshot s;
  s.record_experiment_us(1'000);
  EXPECT_DOUBLE_EQ(s.ewma_latency_us, 1'000.0);
  EXPECT_EQ(s.experiments_completed, 1u);
  s.record_experiment_us(2'000);
  EXPECT_DOUBLE_EQ(s.ewma_latency_us,
                   runtime::kEwmaAlpha * 2'000.0 +
                       (1.0 - runtime::kEwmaAlpha) * 1'000.0);
  EXPECT_EQ(s.experiments_completed, 2u);
  EXPECT_EQ(s.histogram.total_count(), 2u);
}

TEST(WorkerStats, MergeIsCountWeightedAndOrderIndependent) {
  WorkerStatsSnapshot a, b, c;
  for (int i = 0; i < 4; ++i) a.record_experiment_us(100);
  a.bytes_encoded = 40;
  a.batches_flushed = 2;
  for (int i = 0; i < 12; ++i) b.record_experiment_us(900);
  b.bytes_encoded = 120;
  b.batches_flushed = 5;
  c.record_experiment_us(50'000);
  c.bytes_encoded = 7;
  c.batches_flushed = 1;

  const WorkerStatsSnapshot ab_c = merge_snapshots(merge_snapshots(a, b), c);
  const WorkerStatsSnapshot a_bc = merge_snapshots(a, merge_snapshots(b, c));
  const WorkerStatsSnapshot cba = merge_snapshots(c, merge_snapshots(b, a));
  EXPECT_EQ(ab_c.experiments_completed, 17u);
  EXPECT_EQ(ab_c.bytes_encoded, 167u);
  EXPECT_EQ(ab_c.batches_flushed, 8u);
  EXPECT_EQ(ab_c.histogram.total_count(), 17u);
  EXPECT_NEAR(ab_c.ewma_latency_us, a_bc.ewma_latency_us, 1e-9);
  EXPECT_NEAR(ab_c.ewma_latency_us, cba.ewma_latency_us, 1e-9);
  EXPECT_EQ(ab_c.histogram, a_bc.histogram);
  EXPECT_EQ(ab_c.histogram, cba.histogram);

  // The count-weighted EWMA is the weighted mean of the inputs.
  const double expected =
      (4.0 * a.ewma_latency_us + 12.0 * b.ewma_latency_us +
       1.0 * c.ewma_latency_us) /
      17.0;
  EXPECT_NEAR(ab_c.ewma_latency_us, expected, 1e-9);

  // Merging with an empty snapshot is the identity.
  EXPECT_EQ(merge_snapshots(a, WorkerStatsSnapshot{}), a);
  EXPECT_EQ(merge_snapshots(WorkerStatsSnapshot{}, a), a);
}

// --- fleet ledger over a live campaign ---------------------------------------

TEST(FleetTelemetry, CleanCampaignCountersSumToTheCampaignTotal) {
  const int n = 9;
  auto transport = std::make_shared<campaign::FakeTransport>(3);
  auto runner =
      std::make_shared<campaign::RemoteRunner>(transport, test_options());
  CampaignBuilder builder;
  builder.add(fault_study("telemetry-clean", n)).runner(runner);
  builder.build().run();

  const campaign::FleetTelemetry fleet = runner->telemetry();
  ASSERT_EQ(fleet.workers.size(), 3u);
  std::uint64_t completed = 0;
  for (const campaign::WorkerTelemetry& w : fleet.workers) {
    // Each worker's own ledger is internally consistent: the histogram
    // holds one sample per completed experiment.
    EXPECT_EQ(w.latest.histogram.total_count(), w.latest.experiments_completed);
    EXPECT_FALSE(w.lost);
    EXPECT_FALSE(w.busy);
    EXPECT_EQ(w.requeues, 0);
    EXPECT_FALSE(w.describe.empty());
    EXPECT_FALSE(w.recent.empty());
    completed += w.latest.experiments_completed;
  }
  // The final pre-LeaseDone heartbeat makes the fleet ledger exact: every
  // experiment is accounted to exactly one worker.
  EXPECT_EQ(completed, static_cast<std::uint64_t>(n));

  const WorkerStatsSnapshot merged = fleet.fleet_snapshot();
  EXPECT_EQ(merged.experiments_completed, static_cast<std::uint64_t>(n));
  EXPECT_EQ(merged.histogram.total_count(), static_cast<std::uint64_t>(n));
  EXPECT_GT(merged.bytes_encoded, 0u);
  EXPECT_GE(merged.batches_flushed, static_cast<std::uint64_t>(n) / 2);
  EXPECT_GT(merged.ewma_latency_us, 0.0);
  EXPECT_EQ(fleet.requeues, 0);
  EXPECT_EQ(fleet.requeued_indices, 0);
  EXPECT_EQ(fleet.workers_lost, 0);
}

TEST(FleetTelemetry, FaultsAttributeToTheWorkersThatCausedThem) {
  auto transport = std::make_shared<campaign::FakeTransport>(2);
  transport->kill_after_results(0, 2);
  auto runner =
      std::make_shared<campaign::RemoteRunner>(transport, test_options(3));
  CampaignBuilder builder;
  builder.add(fault_study("telemetry-faulty", 9)).runner(runner);
  builder.build().run();

  const campaign::FleetTelemetry fleet = runner->telemetry();
  ASSERT_EQ(fleet.workers.size(), 2u);
  int attributed_requeues = 0;
  int lost_flags = 0;
  for (const campaign::WorkerTelemetry& w : fleet.workers) {
    attributed_requeues += w.requeues;
    lost_flags += w.lost ? 1 : 0;
  }
  // Single-study runner: the per-worker attribution and the cumulative
  // campaign counters are views of the same events.
  EXPECT_EQ(attributed_requeues, fleet.requeues);
  EXPECT_EQ(lost_flags, fleet.workers_lost);
  EXPECT_GE(fleet.workers_lost, 1);
  EXPECT_GE(fleet.requeued_indices, fleet.requeues);
  EXPECT_TRUE(fleet.workers[0].lost);
  EXPECT_GE(fleet.workers[0].requeues, 1);
}

TEST(FleetTelemetry, SummaryIsADeltaWhenTheRunnerIsShared) {
  auto transport = std::make_shared<campaign::FakeTransport>(2);
  auto runner =
      std::make_shared<campaign::RemoteRunner>(transport, test_options(3));

  // Campaign 1 loses worker 0 mid-lease: its summary shows the damage.
  transport->kill_after_results(0, 2);
  CampaignBuilder first;
  first.add(fault_study("shared-faulty", 9));
  first.runner(runner);
  const Campaign::Summary summary1 = first.build().run();
  EXPECT_GE(summary1.requeue_events, 1);
  EXPECT_GE(summary1.requeued_indices, 1);
  EXPECT_GE(summary1.workers_lost, 1);

  // Campaign 2 on the SAME runner with the fault disabled: the runner's
  // cumulative telemetry still carries campaign 1's losses, but the new
  // summary must be the delta — all zeros.
  transport->kill_after_results(0, -1);
  CampaignBuilder second;
  second.add(fault_study("shared-clean", 9, 62'000));
  second.runner(runner);
  const Campaign::Summary summary2 = second.build().run();
  EXPECT_EQ(summary2.requeue_events, 0);
  EXPECT_EQ(summary2.requeued_indices, 0);
  EXPECT_EQ(summary2.workers_lost, 0);

  const campaign::FleetTelemetry fleet = runner->telemetry();
  EXPECT_EQ(fleet.requeues, summary1.requeue_events);
  EXPECT_EQ(fleet.requeued_indices, summary1.requeued_indices);
  EXPECT_EQ(fleet.workers_lost, summary1.workers_lost);
}

// --- StatusSink --------------------------------------------------------------

TEST(StatusSinkView, RendersPerWorkerAndFleetLinesToAFile) {
  const std::string path =
      testing::TempDir() + "loki-status-" + std::to_string(::getpid()) + ".txt";
  std::FILE* out = std::fopen(path.c_str(), "w");
  ASSERT_NE(out, nullptr);

  auto transport = std::make_shared<campaign::FakeTransport>(2);
  auto runner =
      std::make_shared<campaign::RemoteRunner>(transport, test_options());
  CampaignBuilder builder;
  builder.add(fault_study("status-smoke", 8))
      .runner(runner)
      .sink(std::make_shared<campaign::StatusSink>(runner, out));
  builder.build().run();
  std::fclose(out);

  const std::string view = read_file(path);
  EXPECT_NE(view.find("fleet (final):"), std::string::npos) << view;
  EXPECT_NE(view.find("w0 "), std::string::npos) << view;
  EXPECT_NE(view.find("w1 "), std::string::npos) << view;
  EXPECT_NE(view.find("p95"), std::string::npos) << view;
  EXPECT_NE(view.find("lost 0"), std::string::npos) << view;
  std::remove(path.c_str());
}

TEST(StatusSinkView, RunnersWithoutFleetTelemetryGetANote) {
  const std::string path = testing::TempDir() + "loki-status-serial-" +
                           std::to_string(::getpid()) + ".txt";
  std::FILE* out = std::fopen(path.c_str(), "w");
  ASSERT_NE(out, nullptr);

  auto runner = std::make_shared<campaign::SerialRunner>();
  CampaignBuilder builder;
  builder.add(fault_study("status-serial", 2))
      .runner(runner)
      .sink(std::make_shared<campaign::StatusSink>(runner, out));
  builder.build().run();
  std::fclose(out);

  const std::string view = read_file(path);
  EXPECT_NE(view.find("no per-worker telemetry"), std::string::npos) << view;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace loki
