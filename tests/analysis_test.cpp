#include <gtest/gtest.h>

#include "analysis/global_timeline.hpp"
#include "analysis/pipeline.hpp"
#include "analysis/verification.hpp"
#include "runtime/timeline.hpp"

namespace loki::analysis {
namespace {

/// A hand-built two-machine scenario on two hosts with known clock bounds:
/// hostA is the reference (identity); hostB has alpha in [-w, +w], beta = 1.
clocksync::AlphaBetaFile two_host_ab(double width_ns) {
  clocksync::AlphaBetaFile ab;
  ab.reference = "hostA";
  ab.bounds.emplace("hostA", clocksync::identity_bounds());
  clocksync::ClockBounds b;
  b.alpha_lo = -width_ns / 2;
  b.alpha_hi = width_ns / 2;
  b.beta_lo = 1.0;
  b.beta_hi = 1.0;
  b.valid = true;
  ab.bounds.emplace("hostB", b);
  return ab;
}

/// Timeline builder helper.
struct TlBuilder {
  runtime::LocalTimeline tl;

  TlBuilder(const std::string& nick, const std::string& host,
            std::vector<std::string> states, std::vector<std::string> events,
            std::vector<runtime::TimelineFaultEntry> faults = {}) {
    tl.nickname = nick;
    tl.initial_host = host;
    tl.machines = {"m1", "m2"};
    tl.states = std::move(states);
    tl.events = std::move(events);
    tl.faults = std::move(faults);
  }

  TlBuilder& change(std::uint32_t event, std::uint32_t state, std::int64_t t) {
    runtime::TimelineRecord r;
    r.type = runtime::RecordType::StateChange;
    r.event_index = event;
    r.state_index = state;
    r.time = LocalTime{t};
    tl.records.push_back(r);
    return *this;
  }

  TlBuilder& inject(std::uint32_t fault, std::int64_t t) {
    runtime::TimelineRecord r;
    r.type = runtime::RecordType::FaultInjection;
    r.fault_index = fault;
    r.time = LocalTime{t};
    tl.records.push_back(r);
    return *this;
  }

  TlBuilder& restart(const std::string& host, std::int64_t t) {
    runtime::TimelineRecord r;
    r.type = runtime::RecordType::Restart;
    r.host = host;
    r.time = LocalTime{t};
    tl.records.push_back(r);
    return *this;
  }
};

TEST(GlobalTimeline, ProjectsAndSortsEvents) {
  const auto ab = two_host_ab(10'000);  // +-5us
  TlBuilder m1("m1", "hostA", {"S", "T"}, {"e"});
  m1.change(0, 0, 1'000'000).change(0, 1, 3'000'000);
  TlBuilder m2("m2", "hostB", {"S", "T"}, {"e"});
  m2.change(0, 0, 2'000'000);

  const GlobalTimeline gt = build_global_timeline({&m1.tl, &m2.tl}, ab);
  ASSERT_EQ(gt.events.size(), 3u);
  EXPECT_EQ(gt.reference, "hostA");
  // Sorted by midpoint: 1ms (m1), 2ms (m2), 3ms (m1).
  EXPECT_EQ(gt.events[0].machine, "m1");
  EXPECT_EQ(gt.events[1].machine, "m2");
  EXPECT_EQ(gt.events[2].machine, "m1");
  // hostA events are exact; hostB carries the alpha uncertainty.
  EXPECT_DOUBLE_EQ(gt.events[0].when.width(), 0.0);
  EXPECT_NEAR(gt.events[1].when.width(), 10'000.0, 1.0);
  EXPECT_EQ(gt.of_machine("m1").size(), 2u);
}

TEST(GlobalTimeline, RestartSwitchesHostClock) {
  auto ab = two_host_ab(10'000);
  TlBuilder m1("m1", "hostA", {"S", "CRASH"}, {"e", "CRASH"});
  m1.change(0, 0, 1'000'000)
      .restart("hostB", 5'000'000)
      .change(0, 0, 6'000'000);
  const auto events = project_timeline(m1.tl, ab);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].host, "hostA");
  EXPECT_DOUBLE_EQ(events[0].when.width(), 0.0);
  EXPECT_EQ(events[2].host, "hostB");
  EXPECT_NEAR(events[2].when.width(), 10'000.0, 1.0);
}

TEST(GlobalTimeline, SerializeContainsEvents) {
  const auto ab = two_host_ab(0.0);
  TlBuilder m1("m1", "hostA", {"S"}, {"e"},
               {{"f1", "(m1:S)", spec::Trigger::Once}});
  m1.change(0, 0, 1'000'000).inject(0, 1'500'000);
  const GlobalTimeline gt = build_global_timeline({&m1.tl}, ab);
  const std::string text = serialize_global_timeline(gt);
  EXPECT_NE(text.find("STATE_CHANGE"), std::string::npos);
  EXPECT_NE(text.find("FAULT_INJECTION f1"), std::string::npos);
}

// --- verification ------------------------------------------------------------

runtime::TimelineFaultEntry fault_entry(const std::string& name,
                                        const std::string& expr,
                                        spec::Trigger trig = spec::Trigger::Once) {
  return {name, expr, trig};
}

TEST(Verification, SameClockInjectionIsExact) {
  // Injection 1us after the state entry on the SAME clock must be accepted
  // even when the projection bounds are much wider than 1us.
  const auto ab = two_host_ab(1'000'000);  // 1ms wide hostB bounds
  TlBuilder m1("m1", "hostB", {"S", "T"}, {"e"},
               {fault_entry("f1", "(m1:S)")});
  m1.change(0, 0, 1'000'000).inject(0, 1'001'000).change(0, 1, 9'000'000);
  const auto v = verify_experiment({&m1.tl}, ab);
  ASSERT_EQ(v.verdicts.size(), 1u);
  EXPECT_TRUE(v.verdicts[0].correct) << v.verdicts[0].reason;
  EXPECT_TRUE(v.accepted);
}

TEST(Verification, SameClockInjectionOutsideStateRejected) {
  const auto ab = two_host_ab(1'000'000);
  TlBuilder m1("m1", "hostB", {"S", "T"}, {"e"},
               {fault_entry("f1", "(m1:S)", spec::Trigger::Always)});
  m1.change(0, 0, 1'000'000).change(0, 1, 2'000'000).inject(0, 2'500'000);
  const auto v = verify_experiment({&m1.tl}, ab);
  ASSERT_EQ(v.verdicts.size(), 1u);
  EXPECT_FALSE(v.verdicts[0].correct);
  EXPECT_FALSE(v.accepted);
}

TEST(Verification, CrossClockCertainlyInsideAccepted) {
  // m2 (hostB) is in state S from 1ms to 50ms (bounds width 10us); the
  // injection in m1 at 20ms is certainly inside.
  const auto ab = two_host_ab(10'000);
  TlBuilder m1("m1", "hostA", {"S", "T"}, {"e"},
               {fault_entry("f1", "(m2:S)", spec::Trigger::Always)});
  m1.change(0, 1, 500'000).inject(0, 20'000'000);
  TlBuilder m2("m2", "hostB", {"S", "T"}, {"e"});
  m2.change(0, 0, 1'000'000).change(0, 1, 50'000'000);
  const auto v = verify_experiment({&m1.tl, &m2.tl}, ab);
  ASSERT_EQ(v.verdicts.size(), 1u);
  EXPECT_TRUE(v.verdicts[0].correct) << v.verdicts[0].reason;
}

TEST(Verification, CrossClockBoundaryOverlapConservativelyRejected) {
  // Injection at 1.002ms, m2 entered S at 1.000ms on hostB with +-5us
  // bounds: the containment rule cannot certify it -> rejected, even though
  // the true ordering may have been fine (the thesis' conservatism).
  const auto ab = two_host_ab(10'000);
  TlBuilder m1("m1", "hostA", {"S", "T"}, {"e"},
               {fault_entry("f1", "(m2:S)", spec::Trigger::Always)});
  m1.change(0, 1, 500'000).inject(0, 1'002'000);
  TlBuilder m2("m2", "hostB", {"S", "T"}, {"e"});
  m2.change(0, 0, 1'000'000).change(0, 1, 50'000'000);
  const auto v = verify_experiment({&m1.tl, &m2.tl}, ab);
  ASSERT_EQ(v.verdicts.size(), 1u);
  EXPECT_FALSE(v.verdicts[0].correct);
  EXPECT_NE(v.verdicts[0].reason.find("not certainly true"), std::string::npos);
}

TEST(Verification, CompoundExpressionAllTermsChecked) {
  const auto ab = two_host_ab(10'000);
  TlBuilder m1("m1", "hostA", {"S", "T", "CRASH"}, {"e"},
               {fault_entry("f1", "((m1:T) & (m2:S))", spec::Trigger::Always)});
  m1.change(0, 0, 500'000).change(0, 1, 10'000'000).inject(0, 20'000'000);
  TlBuilder m2("m2", "hostB", {"S", "T", "CRASH"}, {"e"});
  m2.change(0, 0, 1'000'000).change(0, 1, 50'000'000);
  const auto v = verify_experiment({&m1.tl, &m2.tl}, ab);
  EXPECT_TRUE(v.verdicts[0].correct) << v.verdicts[0].reason;

  // Negated term: ~(m2:S) while m2 IS in S -> certainly false.
  TlBuilder m1b("m1", "hostA", {"S", "T", "CRASH"}, {"e"},
                {fault_entry("f2", "((m1:T) & ~(m2:S))", spec::Trigger::Always)});
  m1b.change(0, 0, 500'000).change(0, 1, 10'000'000).inject(0, 20'000'000);
  const auto v2 = verify_experiment({&m1b.tl, &m2.tl}, ab);
  EXPECT_FALSE(v2.verdicts[0].correct);
  EXPECT_NE(v2.verdicts[0].reason.find("certainly false"), std::string::npos);
}

TEST(Verification, TerminalStateExtendsToExperimentEnd) {
  // m2 crashes into CRASH and never leaves; an injection long after must
  // still see (m2:CRASH) as certainly true.
  const auto ab = two_host_ab(10'000);
  TlBuilder m1("m1", "hostA", {"S", "CRASH"}, {"e"},
               {fault_entry("f1", "(m2:CRASH)", spec::Trigger::Always)});
  m1.change(0, 0, 500'000).inject(0, 90'000'000);
  TlBuilder m2("m2", "hostB", {"S", "CRASH"}, {"e", "CRASH"});
  m2.change(0, 0, 1'000'000).change(1, 1, 30'000'000);
  const auto v = verify_experiment({&m1.tl, &m2.tl}, ab);
  EXPECT_TRUE(v.verdicts[0].correct) << v.verdicts[0].reason;
}

TEST(Verification, MissedOnceFaultRejectsExperiment) {
  // (m2:S) certainly became true but f1 never fired.
  const auto ab = two_host_ab(10'000);
  TlBuilder m1("m1", "hostA", {"S", "T"}, {"e"}, {fault_entry("f1", "(m2:S)")});
  m1.change(0, 1, 500'000);
  TlBuilder m2("m2", "hostB", {"S", "T"}, {"e"});
  m2.change(0, 0, 1'000'000).change(0, 1, 50'000'000);
  const auto v = verify_experiment({&m1.tl, &m2.tl}, ab);
  EXPECT_TRUE(v.verdicts.empty());
  ASSERT_EQ(v.missed.size(), 1u);
  EXPECT_EQ(v.missed[0].fault, "f1");
  EXPECT_FALSE(v.accepted);

  // Non-strict mode keeps the experiment.
  VerificationOptions lax;
  lax.strict_missed_once = false;
  EXPECT_TRUE(verify_experiment({&m1.tl, &m2.tl}, ab, lax).accepted);
}

TEST(Verification, RestartedMachineOccupanciesSplitAcrossHosts) {
  const auto ab = two_host_ab(10'000);
  // m2 runs on hostB, crashes, restarts on hostA, reaches S again. The
  // injection while the SECOND S occupancy holds must be certified via the
  // hostA segment.
  TlBuilder m1("m1", "hostA", {"S", "T", "CRASH"}, {"e"},
               {fault_entry("f1", "(m2:S)", spec::Trigger::Always)});
  m1.change(0, 1, 500'000).inject(0, 80'000'000);
  TlBuilder m2("m2", "hostB", {"S", "T", "CRASH"}, {"e", "CRASH"});
  m2.change(0, 0, 1'000'000)
      .change(1, 2, 30'000'000)    // CRASH at 30ms
      .restart("hostA", 60'000'000)
      .change(0, 0, 61'000'000);   // S again, stamped by hostA now
  const auto v = verify_experiment({&m1.tl, &m2.tl}, ab);
  ASSERT_EQ(v.verdicts.size(), 1u);
  EXPECT_TRUE(v.verdicts[0].correct) << v.verdicts[0].reason;
}

TEST(Verification, VerdictSerialization) {
  VerificationResult v;
  v.verdicts.push_back({"m1", "f1", 0, true, ""});
  v.verdicts.push_back({"m1", "f2", 1, false, "late"});
  v.missed.push_back({"m2", "f3"});
  const std::string text = serialize_verdicts(v);
  EXPECT_NE(text.find("m1 f1 0 correct"), std::string::npos);
  EXPECT_NE(text.find("m1 f2 1 incorrect # late"), std::string::npos);
  EXPECT_NE(text.find("missed m2 f3"), std::string::npos);
}

}  // namespace
}  // namespace loki::analysis
