// Runner fault injection: RemoteRunner must survive workers that are
// SIGKILLed, hang, close their stream, corrupt frames, or drop results
// mid-campaign — completing the campaign with results and a sink event
// sequence byte-identical to SerialRunner, every experiment emitted exactly
// once, and the recovery visible in Campaign::Summary (requeue_events /
// requeued_indices / workers_lost). Also covers the liveness cadence:
// heartbeats flow *during* a lease, so a slow-but-healthy worker is never
// mistaken for a hung one, while a worker whose heartbeats stop (and whose
// batches never flush) is still killed within hang_timeout. Also covers the `remote:`/`procs:` runner specs, hostfile
// parsing, SshTransport argv construction (plus an end-to-end run through a
// local ssh shim), and the `lokimeasure --worker` stride CLI.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "apps/election.hpp"
#include "apps/registry.hpp"
#include "campaign/campaign.hpp"
#include "campaign/process_runner.hpp"
#include "campaign/remote_runner.hpp"
#include "campaign/transport.hpp"
#include "runtime/serialize.hpp"
#include "util/codec.hpp"
#include "util/error.hpp"
#include "util/pipe_io.hpp"
#include "util/text_file.hpp"

namespace loki {
namespace {

using runtime::ExperimentParams;
using runtime::ExperimentResult;

struct RegisterApps {
  RegisterApps() { apps::register_builtin_apps(); }
};
const RegisterApps kRegistered;

const std::vector<std::string> kHosts = {"hostA", "hostB", "hostC"};
const std::vector<std::pair<std::string, std::string>> kPlacement = {
    {"black", "hostA"}, {"yellow", "hostB"}, {"green", "hostC"}};

ExperimentParams election_params(std::uint64_t seed) {
  apps::ElectionParams app;
  app.run_for = milliseconds(300);
  app.fault_activation_prob = 0.85;
  return apps::election_experiment(seed, kHosts, kPlacement, app);
}

runtime::StudyParams fault_study(const std::string& name, int experiments,
                                 std::uint64_t base_seed = 21'000) {
  runtime::StudyParams study;
  study.name = name;
  study.experiments = experiments;
  study.make_params = [base_seed](int k) {
    auto p = election_params(base_seed + static_cast<std::uint64_t>(k));
    p.nodes[0].fault_spec =
        spec::parse_fault_spec("bfault1 (black:LEAD) always\n", "t");
    p.nodes[0].restart.enabled = true;
    p.nodes[0].restart.delay = milliseconds(60);
    return p;
  };
  return study;
}

/// A study whose per-experiment wall time is as large as the simulator
/// allows (a long horizon plus a crash/restart loop keeps the event queue
/// busy), for tests that need a *lease* to outlast a short hang_timeout.
runtime::StudyParams slow_study(const std::string& name, int experiments,
                                std::uint64_t base_seed = 47'000) {
  runtime::StudyParams study;
  study.name = name;
  study.experiments = experiments;
  study.make_params = [base_seed](int k) {
    apps::ElectionParams app;
    app.run_for = milliseconds(30'000);
    app.fault_activation_prob = 0.85;
    auto p = apps::election_experiment(
        base_seed + static_cast<std::uint64_t>(k), kHosts, kPlacement, app);
    p.nodes[0].fault_spec =
        spec::parse_fault_spec("bfault1 (black:LEAD) always\n", "t");
    p.nodes[0].restart.enabled = true;
    p.nodes[0].restart.delay = milliseconds(60);
    return p;
  };
  return study;
}

/// One observed sink event, rendered comparable.
struct Event {
  std::string kind;
  std::string study;
  int index{-1};
  std::vector<std::uint8_t> result_bytes;

  bool operator==(const Event&) const = default;
};

struct CampaignRun {
  std::vector<Event> events;
  Campaign::Summary summary;
};

/// Run `study` through `runner` via the full Campaign, recording the exact
/// sink event sequence (results as encoded bytes) and the summary.
CampaignRun run_recorded(std::shared_ptr<campaign::Runner> runner,
                         const runtime::StudyParams& study) {
  CampaignRun run;
  auto sink = std::make_shared<campaign::CallbackSink>();
  sink->campaign_begin([&](int n) {
    run.events.push_back({"campaign_begin", std::to_string(n), -1, {}});
  });
  sink->study_begin([&](const campaign::StudyInfo& info) {
    run.events.push_back({"study_begin", info.name, -1, {}});
  });
  sink->experiment([&](const campaign::StudyInfo& info, int index,
                       const ExperimentResult& result) {
    run.events.push_back({"experiment", info.name, index,
                          runtime::encode_experiment_result(result)});
  });
  sink->study_done([&](const campaign::StudyInfo& info) {
    run.events.push_back({"study_done", info.name, -1, {}});
  });
  sink->campaign_done(
      [&] { run.events.push_back({"campaign_done", "", -1, {}}); });

  CampaignBuilder builder;
  builder.add(study).runner(std::move(runner)).sink(sink);
  run.summary = builder.build().run();
  return run;
}

void expect_identical_events(const std::vector<Event>& expected,
                             const std::vector<Event>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(expected[i], actual[i]) << "event " << i;
}

/// Every index emitted exactly once, in order.
void expect_exactly_once(const std::vector<Event>& events, int experiments) {
  std::map<int, int> seen;
  for (const Event& e : events)
    if (e.kind == "experiment") ++seen[e.index];
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(experiments));
  for (const auto& [index, count] : seen)
    EXPECT_EQ(count, 1) << "experiment " << index;
}

std::string temp_dir(const std::string& tag) {
  const std::string dir = testing::TempDir() + "loki-remote-" + tag + "-" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Options tuned for tests: tiny leases (more scheduling edges) and a hang
/// timeout far above one experiment's runtime but small enough to keep
/// hang-detection tests quick.
campaign::RemoteOptions test_options(int lease_size = 2) {
  campaign::RemoteOptions options;
  options.lease_size = lease_size;
  options.hang_timeout = std::chrono::milliseconds(5'000);
  options.shutdown_grace = std::chrono::milliseconds(500);
  return options;
}

// --- byte-identity with SerialRunner ----------------------------------------

TEST(RemoteRunner, FakeTransportIdenticalToSerial) {
  const auto study = fault_study("fake-identity", 9);
  const auto serial =
      run_recorded(std::make_shared<campaign::SerialRunner>(), study);
  auto transport = std::make_shared<campaign::FakeTransport>(3);
  const auto remote = run_recorded(
      std::make_shared<campaign::RemoteRunner>(transport, test_options()),
      study);
  expect_identical_events(serial.events, remote.events);
  EXPECT_EQ(remote.summary.requeue_events, 0);
  EXPECT_EQ(remote.summary.requeued_indices, 0);
  EXPECT_EQ(remote.summary.workers_lost, 0);
}

// The acceptance check: a SubprocessTransport campaign over >= 2 real
// worker processes is byte-identical to SerialRunner, sink order included.
TEST(RemoteRunner, SubprocessIdenticalToSerial) {
  const auto study = fault_study("subprocess-identity", 9);
  const auto serial =
      run_recorded(std::make_shared<campaign::SerialRunner>(), study);
  const auto remote = run_recorded(
      std::make_shared<campaign::RemoteRunner>(
          std::make_shared<campaign::SubprocessTransport>(2), test_options()),
      study);
  expect_identical_events(serial.events, remote.events);
}

TEST(RemoteRunner, SingleIndexLeasesIdenticalToSerial) {
  const auto study = fault_study("lease1-identity", 7);
  const auto serial =
      run_recorded(std::make_shared<campaign::SerialRunner>(), study);
  const auto remote = run_recorded(
      std::make_shared<campaign::RemoteRunner>(
          std::make_shared<campaign::FakeTransport>(2), test_options(1)),
      study);
  expect_identical_events(serial.events, remote.events);
}

TEST(RemoteRunner, MoreWorkersThanLeases) {
  const auto study = fault_study("overprovisioned", 2);
  const auto serial =
      run_recorded(std::make_shared<campaign::SerialRunner>(), study);
  const auto remote = run_recorded(
      std::make_shared<campaign::RemoteRunner>(
          std::make_shared<campaign::FakeTransport>(8), test_options()),
      study);
  expect_identical_events(serial.events, remote.events);
}

TEST(RemoteRunner, TwoStudiesReconnectWorkers) {
  auto transport = std::make_shared<campaign::FakeTransport>(2);
  auto runner =
      std::make_shared<campaign::RemoteRunner>(transport, test_options());
  auto collect = std::make_shared<campaign::CollectSink>();
  CampaignBuilder builder;
  builder.add(fault_study("first", 4, 31'000))
      .add(fault_study("second", 4, 32'000))
      .runner(runner)
      .sink(collect);
  builder.build().run();
  const runtime::CampaignResult got = collect->take();
  const runtime::CampaignResult want = runtime::run_campaign(
      {fault_study("first", 4, 31'000), fault_study("second", 4, 32'000)});
  ASSERT_EQ(got.studies.size(), want.studies.size());
  for (std::size_t s = 0; s < got.studies.size(); ++s) {
    ASSERT_EQ(got.studies[s].experiments.size(),
              want.studies[s].experiments.size());
    for (std::size_t k = 0; k < got.studies[s].experiments.size(); ++k)
      EXPECT_EQ(
          runtime::encode_experiment_result(got.studies[s].experiments[k]),
          runtime::encode_experiment_result(want.studies[s].experiments[k]));
  }
}

// --- fault injection: the runner under its own medicine ----------------------

TEST(RemoteRunnerFaults, FakeWorkerKilledMidCampaign) {
  const auto study = fault_study("fake-kill", 9);
  const auto serial =
      run_recorded(std::make_shared<campaign::SerialRunner>(), study);

  auto transport = std::make_shared<campaign::FakeTransport>(2);
  // 3-index leases, killed after 2 results: the fault always lands
  // mid-lease, so at least one index is left outstanding to requeue.
  transport->kill_after_results(0, 2);
  const auto remote = run_recorded(
      std::make_shared<campaign::RemoteRunner>(transport, test_options(3)),
      study);
  expect_identical_events(serial.events, remote.events);
  expect_exactly_once(remote.events, study.experiments);
  EXPECT_GE(remote.summary.requeue_events, 1);
  // Each event salvages at least one index; the kill lands mid-lease, so
  // the event/index split is visible (indices >= events).
  EXPECT_GE(remote.summary.requeued_indices, remote.summary.requeue_events);
  EXPECT_GE(remote.summary.workers_lost, 1);
}

TEST(RemoteRunnerFaults, SubprocessWorkerSigkilledMidCampaign) {
  // A decorator transport that SIGKILLs the victim's real process when the
  // nth result-bearing frame (Result or ResultBatch) arrives — and swallows
  // that frame, as if the worker died mid-send. With batching a whole lease
  // can share one frame, so delivering it first would leave nothing
  // outstanding to requeue.
  class ChaosLink final : public campaign::WorkerLink {
   public:
    ChaosLink(std::unique_ptr<campaign::WorkerLink> inner, int kill_after)
        : inner_(std::move(inner)), kill_after_(kill_after) {}
    void send(const std::vector<std::uint8_t>& frame) override {
      inner_->send(frame);
    }
    campaign::RecvOutcome recv(std::chrono::milliseconds timeout) override {
      campaign::RecvOutcome out = inner_->recv(timeout);
      const auto carries_results = [](const campaign::RecvOutcome& o) {
        return o.status == campaign::RecvOutcome::Status::Frame &&
               !o.frame.empty() &&
               (o.frame[0] ==
                    static_cast<std::uint8_t>(runtime::WorkerFrame::Result) ||
                o.frame[0] == static_cast<std::uint8_t>(
                                  runtime::WorkerFrame::ResultBatch));
      };
      if (carries_results(out) && ++seen_ == kill_after_) {
        inner_->kill();
        out = inner_->recv(timeout);  // the killed worker's frame is lost
      }
      return out;
    }
    void kill() override { inner_->kill(); }
    std::string describe() const override { return inner_->describe(); }
    bool needs_study_bytes() const override {
      return inner_->needs_study_bytes();
    }

   private:
    std::unique_ptr<campaign::WorkerLink> inner_;
    int kill_after_;
    int seen_{0};
  };
  class ChaosTransport final : public campaign::Transport {
   public:
    ChaosTransport(std::shared_ptr<campaign::Transport> inner, int victim,
                   int kill_after)
        : inner_(std::move(inner)), victim_(victim), kill_after_(kill_after) {}
    std::string name() const override { return "chaos(" + inner_->name() + ")"; }
    int worker_count() const override { return inner_->worker_count(); }
    std::unique_ptr<campaign::WorkerLink> connect(
        int index, const runtime::StudyParams& study) override {
      auto link = inner_->connect(index, study);
      if (index != victim_) return link;
      return std::make_unique<ChaosLink>(std::move(link), kill_after_);
    }

   private:
    std::shared_ptr<campaign::Transport> inner_;
    int victim_;
    int kill_after_;
  };

  const auto study = fault_study("subprocess-kill", 10);
  const auto serial =
      run_recorded(std::make_shared<campaign::SerialRunner>(), study);

  auto transport = std::make_shared<ChaosTransport>(
      std::make_shared<campaign::SubprocessTransport>(2), /*victim=*/0,
      /*kill_after=*/1);
  const auto remote = run_recorded(
      std::make_shared<campaign::RemoteRunner>(transport, test_options()),
      study);
  expect_identical_events(serial.events, remote.events);
  expect_exactly_once(remote.events, study.experiments);
  EXPECT_GE(remote.summary.requeue_events, 1);
  EXPECT_GE(remote.summary.workers_lost, 1);
}

TEST(RemoteRunnerFaults, HungWorkerIsTimedOutAndRequeued) {
  const auto study = fault_study("fake-hang", 8);
  const auto serial =
      run_recorded(std::make_shared<campaign::SerialRunner>(), study);

  // Three workers: even if CPU starvation on a loaded machine makes a
  // *healthy* worker cross the hang threshold too (a spurious but
  // legitimate kill+requeue), a survivor remains and the campaign still
  // completes identically. The timeout itself stays well above any
  // plausible single-experiment latency.
  auto transport = std::make_shared<campaign::FakeTransport>(3);
  transport->hang_after_results(0, 1);  // goes silent, no EOF
  campaign::RemoteOptions options = test_options();
  options.hang_timeout = std::chrono::milliseconds(2'000);
  const auto remote = run_recorded(
      std::make_shared<campaign::RemoteRunner>(transport, options), study);
  expect_identical_events(serial.events, remote.events);
  expect_exactly_once(remote.events, study.experiments);
  EXPECT_GE(remote.summary.requeue_events, 1);
  EXPECT_GE(remote.summary.workers_lost, 1);
}

TEST(RemoteRunnerFaults, WedgeBetweenLastResultAndLeaseDoneIsStillHung) {
  // The nastiest hang: the worker delivers every Result of its lease, then
  // freezes before LeaseDone. Nothing is outstanding to requeue, but the
  // worker is not idle either — it must still be declared hung and killed,
  // or it would silently shrink the fleet (and hang a 1-worker campaign).
  const auto study = fault_study("fake-wedge", 8);
  const auto serial =
      run_recorded(std::make_shared<campaign::SerialRunner>(), study);

  auto transport = std::make_shared<campaign::FakeTransport>(1);
  // lease_size 2 => worker 0's first lease is exactly 2 indices; hanging
  // after 2 results withholds precisely the LeaseDone frame.
  transport->hang_after_results(0, 2);
  campaign::RemoteOptions options = test_options();
  options.hang_timeout = std::chrono::milliseconds(1'000);
  auto runner = std::make_shared<campaign::RemoteRunner>(transport, options);

  // A single worker that is lost cannot finish the study — the campaign
  // must fail loudly (all workers lost), not hang. With >1 workers the
  // same detection instead keeps the fleet at full strength.
  std::vector<int> emitted;
  EXPECT_THROW(runner->run_study(
                   study, [&](int k, ExperimentResult&&) { emitted.push_back(k); }),
               std::runtime_error);
  EXPECT_EQ(emitted, (std::vector<int>{0, 1}));
  EXPECT_EQ(runner->telemetry().workers_lost, 1);

  // With survivors, the same wedge is harmless: the rest of the fleet
  // finishes first (the wedged worker's results all arrived, so nothing
  // needs requeueing) and teardown reaps it — identity intact either way.
  auto transport2 = std::make_shared<campaign::FakeTransport>(3);
  transport2->hang_after_results(0, 2);
  const auto remote = run_recorded(
      std::make_shared<campaign::RemoteRunner>(transport2, options), study);
  expect_identical_events(serial.events, remote.events);
  expect_exactly_once(remote.events, study.experiments);
}

TEST(RemoteRunnerFaults, StreamEofMidLeaseIsRequeued) {
  const auto study = fault_study("fake-eof", 8);
  const auto serial =
      run_recorded(std::make_shared<campaign::SerialRunner>(), study);

  auto transport = std::make_shared<campaign::FakeTransport>(2);
  transport->eof_after_results(0, 1);
  const auto remote = run_recorded(
      std::make_shared<campaign::RemoteRunner>(transport, test_options()),
      study);
  expect_identical_events(serial.events, remote.events);
  expect_exactly_once(remote.events, study.experiments);
  EXPECT_GE(remote.summary.requeue_events, 1);
}

TEST(RemoteRunnerFaults, CorruptResultFrameKillsWorkerNotCampaign) {
  const auto study = fault_study("fake-corrupt", 8);
  const auto serial =
      run_recorded(std::make_shared<campaign::SerialRunner>(), study);

  auto transport = std::make_shared<campaign::FakeTransport>(2);
  transport->corrupt_batch(0, 1);
  const auto remote = run_recorded(
      std::make_shared<campaign::RemoteRunner>(transport, test_options()),
      study);
  expect_identical_events(serial.events, remote.events);
  expect_exactly_once(remote.events, study.experiments);
  EXPECT_GE(remote.summary.workers_lost, 1);
}

TEST(RemoteRunnerFaults, DroppedResultIsRequeuedWithoutLosingTheWorker) {
  const auto study = fault_study("fake-drop", 8);
  const auto serial =
      run_recorded(std::make_shared<campaign::SerialRunner>(), study);

  auto transport = std::make_shared<campaign::FakeTransport>(2);
  transport->drop_batch(0, 2);
  const auto remote = run_recorded(
      std::make_shared<campaign::RemoteRunner>(transport, test_options()),
      study);
  expect_identical_events(serial.events, remote.events);
  expect_exactly_once(remote.events, study.experiments);
  EXPECT_GE(remote.summary.requeue_events, 1);
  EXPECT_EQ(remote.summary.workers_lost, 0);
}

TEST(RemoteRunnerFaults, DelayedResultIsJustSlow) {
  const auto study = fault_study("fake-delay", 6);
  const auto serial =
      run_recorded(std::make_shared<campaign::SerialRunner>(), study);

  auto transport = std::make_shared<campaign::FakeTransport>(2);
  transport->delay_batch(0, 1, std::chrono::milliseconds(50));
  const auto remote = run_recorded(
      std::make_shared<campaign::RemoteRunner>(transport, test_options()),
      study);
  expect_identical_events(serial.events, remote.events);
  EXPECT_EQ(remote.summary.requeue_events, 0);
  EXPECT_EQ(remote.summary.workers_lost, 0);
}

// --- liveness cadence --------------------------------------------------------
// The regression at the heart of this protocol revision: serve_worker used
// to write nothing between a lease's start and its first batch flush, so a
// slow-but-healthy worker grinding through a long lease went silent past
// hang_timeout and was killed. Heartbeats now flow on a wall-clock cadence
// *inside* the lease. Both tests build the silent-lease geometry directly:
// one lease spans many experiments and the batch bound is large enough
// that no ResultBatch flushes early — without heartbeats the coordinator
// would hear nothing for the whole lease. hang_timeout is calibrated from
// the measured serial wall time, so the lease provably outlasts it.

TEST(RemoteRunnerLiveness, SlowLeaseHealthyWorkerOutlivesHangTimeout) {
  const auto study = slow_study("slow-healthy", 320);
  const auto serial_t0 = std::chrono::steady_clock::now();
  const auto serial =
      run_recorded(std::make_shared<campaign::SerialRunner>(), study);
  const auto serial_wall =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - serial_t0);

  // A single worker: if the coordinator ever mistakes it for hung, the
  // campaign dies with "all workers lost" — this test fails loudly rather
  // than quietly recovering through a survivor.
  auto transport = std::make_shared<campaign::FakeTransport>(1);
  transport->set_batch_soft_bytes(8u << 20);  // one flush, at lease end
  campaign::RemoteOptions options;
  options.lease_size = study.experiments;  // the whole study in one lease
  options.autotune_lease = false;
  options.shutdown_grace = std::chrono::milliseconds(500);
  // The lease's wall time tracks the serial run (same machine, same
  // experiments), so a timeout of a quarter of it is comfortably inside
  // the lease, and the heartbeat interval sits far below the timeout. The
  // floor keeps scheduler noise from starving a genuinely healthy beat.
  options.hang_timeout = std::max(std::chrono::milliseconds(150),
                                  std::chrono::milliseconds(serial_wall / 4));
  options.heartbeat_interval =
      std::max(std::chrono::milliseconds(10), options.hang_timeout / 8);
  const auto remote = run_recorded(
      std::make_shared<campaign::RemoteRunner>(transport, options), study);
  expect_identical_events(serial.events, remote.events);
  EXPECT_EQ(remote.summary.workers_lost, 0);
  EXPECT_EQ(remote.summary.requeue_events, 0);
  EXPECT_EQ(remote.summary.requeued_indices, 0);
}

TEST(RemoteRunnerLiveness, HeartbeatStarvedWorkerIsStillKilledWithinTimeout) {
  // The dual guarantee: the cadence must not *hide* genuinely hung
  // workers. Worker 0 computes happily but its heartbeats all vanish in
  // transit, and its batch never flushes early — from the coordinator's
  // chair it is indistinguishable from a wedge, and must be killed within
  // hang_timeout and its whole lease requeued to the survivor.
  const auto study = slow_study("heartbeat-starved", 320);
  const auto serial_t0 = std::chrono::steady_clock::now();
  const auto serial =
      run_recorded(std::make_shared<campaign::SerialRunner>(), study);
  const auto serial_wall =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - serial_t0);

  auto transport = std::make_shared<campaign::FakeTransport>(2);
  transport->set_batch_soft_bytes(8u << 20);
  transport->drop_heartbeats_after(0, 0);  // no heartbeat ever arrives
  campaign::RemoteOptions options;
  options.lease_size = study.experiments / 2;  // one lease per worker
  options.autotune_lease = false;
  options.shutdown_grace = std::chrono::milliseconds(500);
  // Each worker's lease is about half the serial wall; an eighth of the
  // serial wall leaves the silent worker several timeouts short of its
  // lease end while the healthy one beats every hang_timeout / 8.
  options.hang_timeout = std::max(std::chrono::milliseconds(150),
                                  std::chrono::milliseconds(serial_wall / 8));
  options.heartbeat_interval =
      std::max(std::chrono::milliseconds(10), options.hang_timeout / 8);
  const auto remote = run_recorded(
      std::make_shared<campaign::RemoteRunner>(transport, options), study);
  expect_identical_events(serial.events, remote.events);
  expect_exactly_once(remote.events, study.experiments);
  EXPECT_GE(remote.summary.workers_lost, 1);
  EXPECT_GE(remote.summary.requeue_events, 1);
  EXPECT_GE(remote.summary.requeued_indices, 1);
}

// --- multi-result batch faults ----------------------------------------------
// With a large soft bound every lease travels as ONE ResultBatch frame, so
// these scripts damage several results at once. All-or-nothing decoding must
// requeue the whole batch — byte-identity and exactly-once still hold.

TEST(RemoteRunnerBatchFaults, MultiResultBatchesIdenticalToSerial) {
  const auto study = fault_study("batch-identity", 9);
  const auto serial =
      run_recorded(std::make_shared<campaign::SerialRunner>(), study);
  auto transport = std::make_shared<campaign::FakeTransport>(2);
  transport->set_batch_soft_bytes(8u << 20);  // a whole lease per frame
  const auto remote = run_recorded(
      std::make_shared<campaign::RemoteRunner>(transport, test_options(3)),
      study);
  expect_identical_events(serial.events, remote.events);
  expect_exactly_once(remote.events, study.experiments);
  EXPECT_EQ(remote.summary.requeue_events, 0);
  EXPECT_EQ(remote.summary.workers_lost, 0);
}

TEST(RemoteRunnerBatchFaults, CorruptBatchRequeuesWholeBatch) {
  const auto study = fault_study("batch-corrupt", 9);
  const auto serial =
      run_recorded(std::make_shared<campaign::SerialRunner>(), study);
  auto transport = std::make_shared<campaign::FakeTransport>(2);
  transport->set_batch_soft_bytes(8u << 20);
  transport->corrupt_batch(0, 1);  // first batch: 3 results, all damaged
  const auto remote = run_recorded(
      std::make_shared<campaign::RemoteRunner>(transport, test_options(3)),
      study);
  expect_identical_events(serial.events, remote.events);
  expect_exactly_once(remote.events, study.experiments);
  EXPECT_GE(remote.summary.workers_lost, 1);
  EXPECT_GE(remote.summary.requeue_events, 1) << "the damaged lease was requeued";
}

TEST(RemoteRunnerBatchFaults, TruncatedBatchRequeuesWholeBatch) {
  const auto study = fault_study("batch-truncate", 9);
  const auto serial =
      run_recorded(std::make_shared<campaign::SerialRunner>(), study);
  auto transport = std::make_shared<campaign::FakeTransport>(2);
  transport->set_batch_soft_bytes(8u << 20);
  transport->truncate_batch(0, 1);  // tail cut mid-entry
  const auto remote = run_recorded(
      std::make_shared<campaign::RemoteRunner>(transport, test_options(3)),
      study);
  expect_identical_events(serial.events, remote.events);
  expect_exactly_once(remote.events, study.experiments);
  EXPECT_GE(remote.summary.workers_lost, 1);
  EXPECT_GE(remote.summary.requeue_events, 1);
}

TEST(RemoteRunnerBatchFaults, DroppedBatchIsRequeuedWithoutLosingTheWorker) {
  const auto study = fault_study("batch-drop", 9);
  const auto serial =
      run_recorded(std::make_shared<campaign::SerialRunner>(), study);
  auto transport = std::make_shared<campaign::FakeTransport>(2);
  transport->set_batch_soft_bytes(8u << 20);
  // Worker 0's FIRST lease batch vanishes (its heartbeats and LeaseDone
  // still arrive) — deterministic, unlike a later batch, which depends on
  // the lease-scheduling race between the two workers.
  transport->drop_batch(0, 1);
  const auto remote = run_recorded(
      std::make_shared<campaign::RemoteRunner>(transport, test_options(3)),
      study);
  expect_identical_events(serial.events, remote.events);
  expect_exactly_once(remote.events, study.experiments);
  EXPECT_GE(remote.summary.requeue_events, 1);
  // One drop of a whole-lease batch loses several indices in one event.
  EXPECT_GE(remote.summary.requeued_indices, 2);
  EXPECT_EQ(remote.summary.workers_lost, 0);
}

TEST(RemoteRunnerBatchFaults, TruncatedSingleResultBatchStaysIdentical) {
  // The per-result shape (soft bound 1) under the new truncate fault: one
  // entry per frame, tail cut — same whole-batch requeue contract.
  const auto study = fault_study("batch-truncate-1", 8);
  const auto serial =
      run_recorded(std::make_shared<campaign::SerialRunner>(), study);
  auto transport = std::make_shared<campaign::FakeTransport>(2);
  transport->truncate_batch(0, 1);
  const auto remote = run_recorded(
      std::make_shared<campaign::RemoteRunner>(transport, test_options()),
      study);
  expect_identical_events(serial.events, remote.events);
  expect_exactly_once(remote.events, study.experiments);
  EXPECT_GE(remote.summary.workers_lost, 1);
}

TEST(RemoteRunnerFaults, AllWorkersLostThrows) {
  const auto study = fault_study("fake-apocalypse", 8);
  auto transport = std::make_shared<campaign::FakeTransport>(2);
  transport->kill_after_results(0, 1);
  transport->kill_after_results(1, 1);

  std::vector<int> emitted;
  campaign::RemoteRunner runner(transport, test_options());
  try {
    runner.run_study(study, [&](int k, ExperimentResult&&) {
      emitted.push_back(k);
    });
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("all 2 workers lost"),
              std::string::npos)
        << e.what();
  }
  // Whatever prefix was emitted arrived in order, each index at most once.
  for (std::size_t i = 0; i < emitted.size(); ++i)
    EXPECT_EQ(emitted[i], static_cast<int>(i));
  EXPECT_EQ(runner.telemetry().workers_lost, 2);
}

// --- transport reconnect ------------------------------------------------------

/// Backoff tuned for tests: quick first retry, quick growth cap.
campaign::RemoteOptions reconnect_options(int attempts, int lease_size = 3) {
  campaign::RemoteOptions options = test_options(lease_size);
  options.reconnect_attempts = attempts;
  options.reconnect_backoff = std::chrono::milliseconds(20);
  options.reconnect_backoff_max = std::chrono::milliseconds(200);
  return options;
}

// A worker dies mid-lease, the link flaps (two refused reopens), then the
// replacement rejoins, re-handshakes, and pulls leases again — campaign
// byte-identical to serial, reconnect visible in the telemetry.
TEST(RemoteRunnerReconnect, FlappingWorkerRejoins) {
  const auto study = fault_study("fake-flap", 12);
  const auto serial =
      run_recorded(std::make_shared<campaign::SerialRunner>(), study);

  auto transport = std::make_shared<campaign::FakeTransport>(2);
  // Both original processes die before the study can complete (2 + 4 < 12
  // results), so finishing at all REQUIRES at least one successful rejoin —
  // the reconnect assertion below cannot race the survivor finishing first.
  transport->kill_after_results(0, 2);
  transport->kill_after_results(1, 4);
  transport->refuse_reconnects(0, 2);  // and worker 0's link flaps first
  const auto remote = run_recorded(
      std::make_shared<campaign::RemoteRunner>(transport,
                                               reconnect_options(5)),
      study);
  expect_identical_events(serial.events, remote.events);
  expect_exactly_once(remote.events, study.experiments);
  EXPECT_GE(remote.summary.workers_lost, 1);
  EXPECT_GE(remote.summary.reconnects, 1);
}

// Every reopen refused: the campaign degrades to the surviving worker and
// still completes byte-identically, with zero successful reconnects.
TEST(RemoteRunnerReconnect, RefuseAllDegradesToSurvivors) {
  const auto study = fault_study("fake-refused", 10);
  const auto serial =
      run_recorded(std::make_shared<campaign::SerialRunner>(), study);

  auto transport = std::make_shared<campaign::FakeTransport>(2);
  transport->kill_after_results(0, 2);
  transport->refuse_reconnects(0, 1'000'000);  // more than any budget
  const auto remote = run_recorded(
      std::make_shared<campaign::RemoteRunner>(transport,
                                               reconnect_options(3)),
      study);
  expect_identical_events(serial.events, remote.events);
  EXPECT_GE(remote.summary.workers_lost, 1);
  EXPECT_EQ(remote.summary.reconnects, 0);
}

// Sole worker lost and every reopen refused: once the attempt budget runs
// dry the fleet really is gone, and the campaign aborts like it always did.
TEST(RemoteRunnerReconnect, SingleWorkerRefuseAllThrows) {
  const auto study = fault_study("fake-lonely-flap", 8);
  auto transport = std::make_shared<campaign::FakeTransport>(1);
  transport->kill_after_results(0, 1);
  transport->refuse_reconnects(0, 1'000'000);
  campaign::RemoteRunner runner(transport, reconnect_options(2));
  try {
    runner.run_study(study, [](int, ExperimentResult&&) {});
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("all 1 workers lost"),
              std::string::npos)
        << e.what();
  }
}

// Sole worker lost, reopen refused twice, then accepted: the campaign
// *stalls* through the flap instead of aborting, then completes
// byte-identically — the zero-survivors reconnect path.
TEST(RemoteRunnerReconnect, SoleWorkerFlapRecovers) {
  const auto study = fault_study("fake-lonely-rejoin", 6);
  const auto serial =
      run_recorded(std::make_shared<campaign::SerialRunner>(), study);

  auto transport = std::make_shared<campaign::FakeTransport>(1);
  transport->kill_after_results(0, 2);
  transport->refuse_reconnects(0, 2);
  const auto remote = run_recorded(
      std::make_shared<campaign::RemoteRunner>(transport,
                                               reconnect_options(5)),
      study);
  expect_identical_events(serial.events, remote.events);
  EXPECT_GE(remote.summary.reconnects, 1);
}

TEST(RemoteRunnerReconnect, RejectsBadReconnectOptions) {
  campaign::RemoteOptions negative;
  negative.reconnect_attempts = -1;
  EXPECT_THROW(campaign::RemoteRunner(
                   std::make_shared<campaign::FakeTransport>(1), negative),
               ConfigError);
  campaign::RemoteOptions zero_backoff;
  zero_backoff.reconnect_attempts = 3;
  zero_backoff.reconnect_backoff = std::chrono::milliseconds(0);
  EXPECT_THROW(campaign::RemoteRunner(
                   std::make_shared<campaign::FakeTransport>(1), zero_backoff),
               ConfigError);
  campaign::RemoteOptions shrinking;
  shrinking.reconnect_attempts = 3;
  shrinking.reconnect_multiplier = 0.5;
  EXPECT_THROW(campaign::RemoteRunner(
                   std::make_shared<campaign::FakeTransport>(1), shrinking),
               ConfigError);
  campaign::RemoteOptions inverted_cap;
  inverted_cap.reconnect_attempts = 3;
  inverted_cap.reconnect_backoff = std::chrono::milliseconds(500);
  inverted_cap.reconnect_backoff_max = std::chrono::milliseconds(100);
  EXPECT_THROW(campaign::RemoteRunner(
                   std::make_shared<campaign::FakeTransport>(1), inverted_cap),
               ConfigError);
}

// --- failure-prefix semantics across the wire --------------------------------

TEST(RemoteRunnerFaults, ExperimentFailurePrefixMatchesSerial) {
  // Index 3 fails *validation* (duplicate nickname) inside the worker —
  // generation must survive encode_study_params for wire transports.
  runtime::StudyParams study = fault_study("failing", 6, 41'000);
  auto inner = study.make_params;
  study.make_params = [inner](int k) {
    auto p = inner(k);
    if (k == 3) p.nodes.push_back(p.nodes[0]);
    return p;
  };

  const auto run_one = [&](std::shared_ptr<campaign::Runner> runner) {
    std::vector<int> emitted;
    std::string error;
    try {
      runner->run_study(study, [&](int k, ExperimentResult&&) {
        emitted.push_back(k);
      });
    } catch (const ConfigError& e) {
      error = e.what();
    }
    return std::pair(emitted, error);
  };

  const auto [serial_emitted, serial_error] =
      run_one(std::make_shared<campaign::SerialRunner>());
  const auto [remote_emitted, remote_error] =
      run_one(std::make_shared<campaign::RemoteRunner>(
          std::make_shared<campaign::FakeTransport>(2), test_options(1)));

  EXPECT_EQ(serial_emitted, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(remote_emitted, serial_emitted);
  ASSERT_FALSE(serial_error.empty());
  ASSERT_FALSE(remote_error.empty());
  EXPECT_NE(remote_error.find("experiment 3"), std::string::npos)
      << remote_error;
}

TEST(RemoteRunnerFaults, GeneratorThrowInForkedWorkerIsRehydrated) {
  // fork()-mode workers inherit the closure, so even generator failures
  // happen worker-side and must come back as the original ConfigError.
  runtime::StudyParams study = fault_study("genfail", 6, 42'000);
  auto inner = study.make_params;
  study.make_params = [inner](int k) {
    if (k == 3) throw ConfigError("generator exploded at " + std::to_string(k));
    return inner(k);
  };

  std::vector<int> emitted;
  std::string error;
  campaign::RemoteRunner runner(
      std::make_shared<campaign::SubprocessTransport>(2), test_options(1));
  try {
    runner.run_study(study, [&](int k, ExperimentResult&&) {
      emitted.push_back(k);
    });
  } catch (const ConfigError& e) {
    error = e.what();
  }
  EXPECT_EQ(emitted, (std::vector<int>{0, 1, 2}));
  EXPECT_NE(error.find("generator exploded at 3"), std::string::npos) << error;
}

// --- lease autotuning --------------------------------------------------------

TEST(RemoteRunnerAutotune, GrowsLeasesForFastExperimentsAndStaysIdentical) {
  const auto study = fault_study("autotune-grow", 24);
  const auto serial =
      run_recorded(std::make_shared<campaign::SerialRunner>(), study);

  campaign::RemoteOptions options = test_options(1);  // start at span 1
  options.autotune_lease = true;
  options.lease_target = std::chrono::milliseconds(250);
  options.max_lease_size = 8;
  auto runner = std::make_shared<campaign::RemoteRunner>(
      std::make_shared<campaign::FakeTransport>(2), options);
  const auto remote = run_recorded(runner, study);

  // Lease geometry must never reach the results: byte-identical to serial,
  // exactly-once, in order.
  expect_identical_events(serial.events, remote.events);
  expect_exactly_once(remote.events, study.experiments);

  // Millisecond experiments against a 250ms target: the multiplicative
  // rule has to have grown the span, and the bound has to have held.
  const campaign::RunnerTelemetry telemetry = runner->telemetry();
  EXPECT_GT(telemetry.final_lease_size, 1);
  EXPECT_LE(telemetry.final_lease_size, options.max_lease_size);
}

TEST(RemoteRunnerAutotune, DisabledKeepsTheConfiguredSpan) {
  const auto study = fault_study("autotune-off", 6);
  campaign::RemoteOptions options = test_options(2);
  options.autotune_lease = false;
  auto runner = std::make_shared<campaign::RemoteRunner>(
      std::make_shared<campaign::FakeTransport>(2), options);
  run_recorded(runner, study);
  EXPECT_EQ(runner->telemetry().final_lease_size, 2);
}

TEST(RemoteRunnerAutotune, SurvivesWorkerLossMidCampaign) {
  const auto study = fault_study("autotune-faults", 20);
  const auto serial =
      run_recorded(std::make_shared<campaign::SerialRunner>(), study);

  // Two workers so the faulty one cannot be starved of leases; it dies at
  // its very first delivered result, mid-lease or not.
  auto transport = std::make_shared<campaign::FakeTransport>(2);
  transport->kill_after_results(1, 1);
  campaign::RemoteOptions options = test_options(1);
  options.max_lease_size = 8;
  auto runner = std::make_shared<campaign::RemoteRunner>(transport, options);
  const auto remote = run_recorded(runner, study);

  expect_identical_events(serial.events, remote.events);
  expect_exactly_once(remote.events, study.experiments);
  EXPECT_GE(remote.summary.workers_lost, 1);
  EXPECT_GE(runner->telemetry().final_lease_size, 1);
  EXPECT_LE(runner->telemetry().final_lease_size, options.max_lease_size);
}

// --- options and construction ------------------------------------------------

TEST(RemoteRunnerConfig, RejectsBadConstruction) {
  EXPECT_THROW(campaign::RemoteRunner(nullptr), ConfigError);
  campaign::RemoteOptions bad_lease;
  bad_lease.lease_size = 0;
  EXPECT_THROW(campaign::RemoteRunner(
                   std::make_shared<campaign::FakeTransport>(1), bad_lease),
               ConfigError);
  EXPECT_THROW(campaign::FakeTransport(0), ConfigError);
  EXPECT_THROW(campaign::SubprocessTransport(0), ConfigError);
  EXPECT_THROW(campaign::SubprocessTransport(2, {}), ConfigError);
  campaign::RemoteOptions bad_max;
  bad_max.max_lease_size = 0;
  EXPECT_THROW(campaign::RemoteRunner(
                   std::make_shared<campaign::FakeTransport>(1), bad_max),
               ConfigError);
  campaign::RemoteOptions bad_target;
  bad_target.lease_target = std::chrono::milliseconds(0);
  EXPECT_THROW(campaign::RemoteRunner(
                   std::make_shared<campaign::FakeTransport>(1), bad_target),
               ConfigError);
}

// --- runner specs, hostfiles, ssh argv ---------------------------------------

TEST(RemoteSpec, HostfileParsing) {
  const std::string text =
      "# fleet\n"
      "db1.example\n"
      "\n"
      "db2.example   # trailing comment\n";
  const auto hosts = campaign::parse_hostfile(text, "hosts.txt");
  EXPECT_EQ(hosts, (std::vector<std::string>{"db1.example", "db2.example"}));
  EXPECT_THROW(campaign::parse_hostfile("", "empty.txt"), ConfigError);
  EXPECT_THROW(campaign::parse_hostfile("one two\n", "bad.txt"), ConfigError);
}

TEST(RemoteSpec, RemoteRunnerSpecReadsHostfile) {
  const std::string dir = temp_dir("hostfile");
  const std::string path = dir + "/hosts";
  write_file(path, "# two workers\nalpha\nbeta\n");
  const auto runner = campaign::parse_runner_spec("remote:" + path);
  EXPECT_EQ(runner->name(), "remote(ssh:2)");
  EXPECT_EQ(runner->parallelism(), 2);
}

TEST(RemoteSpec, SshWorkerArgv) {
  campaign::SshTransport transport({"db1", "db2"});
  EXPECT_EQ(transport.worker_argv(1),
            (std::vector<std::string>{"ssh", "db2", "lokimeasure", "--worker",
                                      "--serve"}));
}

// --- end-to-end through the real CLI (needs the built lokimeasure) -----------

std::string lokimeasure_bin() {
  const char* bin = std::getenv("LOKIMEASURE_BIN");
  return bin == nullptr ? std::string() : std::string(bin);
}

TEST(SshTransportEndToEnd, IdenticalToSerialThroughSshShim) {
  const std::string bin = lokimeasure_bin();
  if (bin.empty()) GTEST_SKIP() << "LOKIMEASURE_BIN not set";

  // A local stand-in for ssh: drop the host argument, run the remote
  // command on this machine. Exercises SshTransport's real spawn path.
  const std::string dir = temp_dir("sshshim");
  const std::string shim = dir + "/fake-ssh";
  write_file(shim,
             "#!/bin/sh\n"
             "# fake ssh: ignore the host, exec the command locally\n"
             "shift\n"
             "exec \"$@\"\n");
  ASSERT_EQ(::chmod(shim.c_str(), 0755), 0);

  const auto study = fault_study("ssh-identity", 6, 51'000);
  const auto serial =
      run_recorded(std::make_shared<campaign::SerialRunner>(), study);
  auto transport = std::make_shared<campaign::SshTransport>(
      std::vector<std::string>{"hostA", "hostB"},
      std::vector<std::string>{bin, "--worker", "--serve"}, shim);
  const auto remote = run_recorded(
      std::make_shared<campaign::RemoteRunner>(transport, test_options()),
      study);
  expect_identical_events(serial.events, remote.events);
}

// --- `lokimeasure --worker` stride CLI ---------------------------------------

int run_command(const std::string& command) {
  const int status = std::system(command.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(WorkerStrideCli, InterleavedShardMatchesDirectExecution) {
  const std::string bin = lokimeasure_bin();
  if (bin.empty()) GTEST_SKIP() << "LOKIMEASURE_BIN not set";

  const std::string dir = temp_dir("stride");
  const auto study = fault_study("stride", 6, 61'000);
  const std::vector<std::uint8_t> bytes = runtime::encode_study_params(study);
  write_file(dir + "/study.bin",
             std::string_view(reinterpret_cast<const char*>(bytes.data()),
                              bytes.size()));

  ASSERT_EQ(run_command("'" + bin + "' --worker '" + dir +
                        "/study.bin' 1 6 2 > '" + dir + "/frames.bin' 2>'" +
                        dir + "/err.txt'"),
            0);

  // Stride 2 from 1: indices 1, 3, 5 — byte-identical to running them here.
  // The shard emits ResultBatch frames; flatten them in arrival order.
  const int fd = ::open((dir + "/frames.bin").c_str(), O_RDONLY);
  ASSERT_GE(fd, 0);
  std::vector<runtime::ResultFrame> entries;
  while (const auto frame = util::read_frame(fd)) {
    ASSERT_EQ(runtime::worker_frame_type(*frame),
              runtime::WorkerFrame::ResultBatch);
    for (auto& entry : runtime::decode_result_batch_frame(*frame))
      entries.push_back(std::move(entry));
  }
  ::close(fd);
  ASSERT_EQ(entries.size(), 3u);
  std::size_t at = 0;
  for (const int k : {1, 3, 5}) {
    EXPECT_TRUE(entries[at].ok) << "status ok";
    EXPECT_EQ(entries[at].index, static_cast<std::uint32_t>(k));
    EXPECT_EQ(runtime::encode_experiment_result(entries[at].result),
              runtime::encode_experiment_result(
                  runtime::run_experiment(study.make_params(k))));
    ++at;
  }
}

TEST(WorkerStrideCli, RejectsNonPositiveStride) {
  const std::string bin = lokimeasure_bin();
  if (bin.empty()) GTEST_SKIP() << "LOKIMEASURE_BIN not set";

  const std::string dir = temp_dir("stride-bad");
  const auto study = fault_study("stride-bad", 3, 62'000);
  const std::vector<std::uint8_t> bytes = runtime::encode_study_params(study);
  write_file(dir + "/study.bin",
             std::string_view(reinterpret_cast<const char*>(bytes.data()),
                              bytes.size()));
  EXPECT_NE(run_command("'" + bin + "' --worker '" + dir +
                        "/study.bin' 0 3 0 > /dev/null 2>&1"),
            0);
}

}  // namespace
}  // namespace loki
