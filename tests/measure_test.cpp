#include <gtest/gtest.h>

#include <cmath>

#include "measure/campaign_measure.hpp"
#include "measure/observation.hpp"
#include "measure/predicate.hpp"
#include "measure/predicate_timeline.hpp"
#include "measure/statistics.hpp"
#include "measure/study_measure.hpp"
#include "measure/worked_example.hpp"
#include "util/error.hpp"

namespace loki::measure {
namespace {

// --- predicate timelines -----------------------------------------------------

TEST(PredicateTimeline, IntervalsAndValueAt) {
  const auto pt = PredicateTimeline::from_intervals({{10, 20}, {30, 40}});
  EXPECT_FALSE(pt.value_at(5));
  EXPECT_TRUE(pt.value_at(10));
  EXPECT_TRUE(pt.value_at(15));
  EXPECT_FALSE(pt.value_at(20));  // [lo, hi)
  EXPECT_TRUE(pt.value_at(35));
  EXPECT_FALSE(pt.value_at(45));
}

TEST(PredicateTimeline, OverlappingIntervalsMerge) {
  const auto pt = PredicateTimeline::from_intervals({{10, 30}, {20, 40}});
  EXPECT_TRUE(pt.value_at(25));
  // One continuous true period: exactly one up and one down.
  EXPECT_EQ(pt.transitions(Edge::Up, Kind::Step, 0, 100).size(), 1u);
  EXPECT_EQ(pt.transitions(Edge::Down, Kind::Step, 0, 100).size(), 1u);
}

TEST(PredicateTimeline, ImpulsesAreMomentary) {
  const auto pt = PredicateTimeline::from_impulses({15, 25});
  EXPECT_TRUE(pt.value_at(15));
  EXPECT_FALSE(pt.value_at(15.001));
  EXPECT_FALSE(pt.base_at(15));
  EXPECT_DOUBLE_EQ(pt.total_duration(true, 0, 100), 0.0);
}

TEST(PredicateTimeline, AndOrNot) {
  const auto a = PredicateTimeline::from_intervals({{10, 30}});
  const auto b = PredicateTimeline::from_intervals({{20, 40}});
  const auto both = a & b;
  EXPECT_FALSE(both.value_at(15));
  EXPECT_TRUE(both.value_at(25));
  EXPECT_FALSE(both.value_at(35));
  const auto either = a | b;
  EXPECT_TRUE(either.value_at(15));
  EXPECT_TRUE(either.value_at(35));
  EXPECT_FALSE(either.value_at(45));
  const auto neither = ~either;
  EXPECT_TRUE(neither.value_at(45));
  EXPECT_FALSE(neither.value_at(15));
  EXPECT_TRUE(neither.initial());
}

TEST(PredicateTimeline, ImpulseOnTrueBaseStillCountsAsOccurrence) {
  const auto steps = PredicateTimeline::from_intervals({{10, 30}});
  const auto imp = PredicateTimeline::from_impulses({20, 50});
  const auto combined = steps | imp;
  // Both occurrence markers survive the OR (Fig 4.2 calibration): the one
  // at 20 coincides with a true base yet still counts as an impulse event.
  EXPECT_EQ(combined.overrides().size(), 2u);
  EXPECT_EQ(combined.transitions(Edge::Up, Kind::Impulse, 0, 100).size(), 2u);
  // The value function itself is unchanged by the marker at 20.
  EXPECT_TRUE(combined.value_at(20));
  EXPECT_TRUE(combined.value_at(21));
}

TEST(PredicateTimeline, NotTurnsImpulseIntoAntiImpulse) {
  const auto imp = PredicateTimeline::from_impulses({20});
  const auto neg = ~imp;
  EXPECT_TRUE(neg.value_at(10));
  EXPECT_FALSE(neg.value_at(20));  // momentarily false
  EXPECT_TRUE(neg.value_at(21));
}

TEST(PredicateTimeline, TotalDuration) {
  const auto pt = PredicateTimeline::from_intervals({{10, 20}, {30, 40}});
  EXPECT_DOUBLE_EQ(pt.total_duration(true, 0, 100), 20.0);
  EXPECT_DOUBLE_EQ(pt.total_duration(false, 0, 100), 80.0);
  EXPECT_DOUBLE_EQ(pt.total_duration(true, 15, 35), 10.0);
}

TEST(PredicateTimeline, TransitionFiltering) {
  auto pt = PredicateTimeline::from_intervals({{10, 20}});
  pt = pt | PredicateTimeline::from_impulses({5});
  EXPECT_EQ(pt.transitions(Edge::Up, Kind::Step, 0, 100).size(), 1u);
  EXPECT_EQ(pt.transitions(Edge::Up, Kind::Impulse, 0, 100).size(), 1u);
  EXPECT_EQ(pt.transitions(Edge::Up, Kind::Both, 0, 100).size(), 2u);
  EXPECT_EQ(pt.transitions(Edge::Both, Kind::Both, 0, 100).size(), 4u);
  // Window clipping.
  EXPECT_TRUE(pt.transitions(Edge::Up, Kind::Step, 50, 100).empty());
}

// --- the Fig 4.2 worked example ------------------------------------------------

class Fig42 : public ::testing::Test {
 protected:
  analysis::GlobalTimeline timeline = fig42_timeline();
  EvalContext ctx = fig42_context(timeline);

  PredicateTimeline eval(int i) {
    return fig42_predicate(i)->evaluate(ctx);
  }
};

TEST_F(Fig42, PredicateTimelineShapes) {
  const auto p1 = eval(0);
  // True [18.9, 20] and [34.2, 35.6] and [38.9, 40] (ms -> ns).
  EXPECT_TRUE(p1.value_at(19.0e6));
  EXPECT_FALSE(p1.value_at(25.0e6));
  EXPECT_TRUE(p1.value_at(35.0e6));
  EXPECT_TRUE(p1.value_at(39.5e6));
  EXPECT_FALSE(p1.value_at(41.0e6));

  const auto p2 = eval(1);
  EXPECT_TRUE(p2.value_at(22.3e6));
  EXPECT_TRUE(p2.value_at(26.3e6));
  EXPECT_FALSE(p2.value_at(24.0e6));

  const auto p3 = eval(2);
  EXPECT_TRUE(p3.value_at(11.2e6));   // impulse
  EXPECT_TRUE(p3.value_at(25.0e6));   // State6 window
  EXPECT_FALSE(p3.value_at(28.0e6));  // between State6 stays
  EXPECT_TRUE(p3.value_at(35.0e6));
}

TEST_F(Fig42, CountMatchesThesis) {
  const auto count = obs_count(Edge::Up, Kind::Both, TimeArg::literal(10),
                               TimeArg::literal(35));
  EXPECT_DOUBLE_EQ(count(eval(0), ctx), 2.0);
  EXPECT_DOUBLE_EQ(count(eval(1), ctx), 2.0);
  EXPECT_DOUBLE_EQ(count(eval(2), ctx), 5.0);
}

TEST_F(Fig42, DurationMatchesThesis) {
  const auto duration =
      obs_duration(true, 2, TimeArg::literal(10), TimeArg::literal(40));
  EXPECT_NEAR(duration(eval(0), ctx), 1.4, 1e-9);
  EXPECT_NEAR(duration(eval(1), ctx), 0.0, 1e-9);
  EXPECT_NEAR(duration(eval(2), ctx), 7.0, 1e-9);
}

TEST_F(Fig42, InstantMatchesThesis) {
  const auto instant = obs_instant(Edge::Up, Kind::Impulse, 2,
                                   TimeArg::literal(0), TimeArg::literal(50));
  EXPECT_NEAR(instant(eval(0), ctx), 0.0, 1e-9);   // no second impulse
  EXPECT_NEAR(instant(eval(1), ctx), 26.3, 1e-9);
  EXPECT_NEAR(instant(eval(2), ctx), 21.2, 1e-9);
}

TEST_F(Fig42, OutcomeAndTotalDuration) {
  EXPECT_DOUBLE_EQ(obs_outcome(TimeArg::literal(19))(eval(0), ctx), 1.0);
  EXPECT_DOUBLE_EQ(obs_outcome(TimeArg::literal(25))(eval(0), ctx), 0.0);
  // P1 total true time in [0,50]: (20-18.9) + (35.6-34.2) + (40-38.9) = 3.6.
  const auto total = obs_total_duration(true, TimeArg::start_exp(),
                                        TimeArg::end_exp());
  EXPECT_NEAR(total(eval(0), ctx), 3.6, 1e-9);
}

// --- predicate parsing ---------------------------------------------------------

TEST(PredicateParse, TupleForms) {
  EXPECT_NO_THROW(parse_predicate("(m, S)"));
  EXPECT_NO_THROW(parse_predicate("(m, S, 10 < t < 20)"));
  EXPECT_NO_THROW(parse_predicate("(m, S, E)"));
  EXPECT_NO_THROW(parse_predicate("(m, S, E, 10 < t < 20)"));
  EXPECT_NO_THROW(parse_predicate("~(m, S) & ((a, B) | (c, D))"));
  EXPECT_THROW(parse_predicate("(m)"), ParseError);
  EXPECT_THROW(parse_predicate("(m, S"), ParseError);
  EXPECT_THROW(parse_predicate("(m, S, E)("), ParseError);
  // Event tuples need bounded windows.
  EXPECT_THROW(parse_predicate("(m, S, E, 10 < t)"), ParseError);
}

TEST(PredicateParse, HalfOpenWindows) {
  analysis::GlobalTimeline t = fig42_timeline();
  EvalContext ctx = fig42_context(t);
  // t < 20 keeps only State1 before 20ms.
  const auto p = parse_predicate("(StateMachine1, State1, t < 20)");
  const auto pt = p->evaluate(ctx);
  EXPECT_TRUE(pt.value_at(19.0e6));
  EXPECT_FALSE(pt.value_at(21.0e6));
  const auto p2 = parse_predicate("(StateMachine1, State1, 19 < t)");
  const auto pt2 = p2->evaluate(ctx);
  EXPECT_FALSE(pt2.value_at(18.95e6));
  EXPECT_TRUE(pt2.value_at(30.0e6));  // State1 holds to end
}

// --- statistics -----------------------------------------------------------------

TEST(Statistics, MomentsOfKnownSample) {
  // {1, 2, 3, 4}: mean 2.5, mu2 1.25, mu3 0, mu4 2.5625.
  const MomentSummary m = summarize({1, 2, 3, 4});
  EXPECT_EQ(m.n, 4u);
  EXPECT_DOUBLE_EQ(m.mean, 2.5);
  EXPECT_DOUBLE_EQ(m.mu2, 1.25);
  EXPECT_NEAR(m.mu3, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.mu4, 2.5625);
  EXPECT_NEAR(m.beta1, 0.0, 1e-12);
  EXPECT_NEAR(m.beta2, 2.5625 / (1.25 * 1.25), 1e-12);
}

TEST(Statistics, SkewedSampleHasPositiveMu3) {
  const MomentSummary m = summarize({0, 0, 0, 0, 10});
  EXPECT_GT(m.mu3, 0.0);
  EXPECT_GT(m.gamma1(), 0.0);
}

TEST(Statistics, InverseNormalCdf) {
  EXPECT_NEAR(inverse_normal_cdf(0.5), 0.0, 1e-8);
  EXPECT_NEAR(inverse_normal_cdf(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(inverse_normal_cdf(0.025), -1.959964, 1e-5);
  EXPECT_NEAR(inverse_normal_cdf(0.99), 2.326348, 1e-5);
  EXPECT_THROW(inverse_normal_cdf(0.0), LogicError);
}

TEST(Statistics, CornishFisherReducesToNormalForGaussianMoments) {
  MomentSummary m;
  m.n = 1000;
  m.mean = 10.0;
  m.mu2 = 4.0;  // sd 2
  m.mu3 = 0.0;
  m.mu4 = 3.0 * 16.0;  // kurtosis exactly 3
  m.beta1 = 0.0;
  m.beta2 = 3.0;
  EXPECT_NEAR(percentile(m, 0.975), 10.0 + 1.959964 * 2.0, 1e-3);
  EXPECT_NEAR(percentile(m, 0.5), 10.0, 1e-9);
}

TEST(Statistics, SkewShiftsUpperPercentile) {
  MomentSummary sym;
  sym.mean = 0;
  sym.mu2 = 1;
  sym.mu4 = 3;
  sym.beta2 = 3;
  MomentSummary skewed = sym;
  skewed.mu3 = 0.5;  // gamma1 = 0.5
  EXPECT_GT(percentile(skewed, 0.975), percentile(sym, 0.975));
  EXPECT_GT(percentile(skewed, 0.025), percentile(sym, 0.025));
}

TEST(Statistics, EmpiricalPercentile) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(empirical_percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(empirical_percentile(v, 0.25), 2.0);
  EXPECT_THROW(empirical_percentile({}, 0.5), LogicError);
}

// --- campaign measures -----------------------------------------------------------

TEST(CampaignMeasure, SimpleSamplingPoolsStudies) {
  const std::vector<StudySample> studies = {{"s1", {1, 1, 1}}, {"s2", {0, 0, 0}}};
  const CampaignEstimate e = simple_sampling_measure(studies);
  EXPECT_EQ(e.moments.n, 6u);
  EXPECT_DOUBLE_EQ(e.moments.mean, 0.5);
}

TEST(CampaignMeasure, StratifiedWeightedMatchesClosedForm) {
  // Coverage combination c = (wb*cb + wg*cg + wy*cy) / (wb+wg+wy)  (§5.8).
  const std::vector<StudySample> studies = {
      {"black", {1, 1, 1, 1, 0}},   // cb = 0.8
      {"green", {1, 1, 0, 0}},      // cg = 0.5
      {"yellow", {1, 1, 1, 0}},     // cy = 0.75
  };
  const std::vector<double> w = {3, 2, 1};
  const CampaignEstimate e = stratified_weighted_measure(studies, w);
  const double expected = (3 * 0.8 + 2 * 0.5 + 1 * 0.75) / 6.0;
  EXPECT_NEAR(e.moments.mean, expected, 1e-12);
  // Central moments are the weighted sums of per-study central moments.
  const double mu2 = (3 * summarize(studies[0].values).mu2 +
                      2 * summarize(studies[1].values).mu2 +
                      1 * summarize(studies[2].values).mu2) /
                     6.0;
  EXPECT_NEAR(e.moments.mu2, mu2, 1e-12);
}

TEST(CampaignMeasure, StratifiedWeightedValidation) {
  EXPECT_THROW(stratified_weighted_measure({{"a", {1}}}, {1, 2}), LogicError);
  EXPECT_THROW(stratified_weighted_measure({{"a", {1}}}, {0}), LogicError);
  EXPECT_THROW(stratified_weighted_measure({{"a", {1}}}, {-1}), LogicError);
}

TEST(CampaignMeasure, StratifiedUserAppliesCombiner) {
  const std::vector<StudySample> studies = {{"s1", {2, 4}}, {"s2", {10}}};
  const double v = stratified_user_measure(
      studies, [](const std::vector<double>& means) {
        return means[0] * means[1];  // arbitrary non-linear combination
      });
  EXPECT_DOUBLE_EQ(v, 3.0 * 10.0);
}

// --- study measures ---------------------------------------------------------------

TEST(StudyMeasure, SubsetSelectionHelpers) {
  EXPECT_TRUE(subset_default()(0.0));
  EXPECT_TRUE(subset_greater(1.0)(2.0));
  EXPECT_FALSE(subset_greater(1.0)(1.0));
  EXPECT_TRUE(subset_between(2, 10)(2.0));
  EXPECT_FALSE(subset_between(2, 10)(11.0));
}

TEST(StudyMeasure, TripleSequenceFiltersAndChains) {
  // Against the Fig 4.2 timeline: first triple measures SM1-State1 total
  // time; second triple only runs when that exceeds 1 ms.
  analysis::ExperimentAnalysis exp;
  exp.timeline = fig42_timeline();
  exp.start_ref = 0;
  exp.end_ref = 50e6;
  exp.accepted = true;

  StudyMeasure m;
  m.add(subset_default(), parse_predicate("(StateMachine1, State1)"),
        obs_total_duration(true, TimeArg::start_exp(), TimeArg::end_exp()));
  m.add(subset_greater(1.0), parse_predicate("(StateMachine2, State2)"),
        obs_count(Edge::Up, Kind::Both, TimeArg::start_exp(), TimeArg::end_exp()));

  const auto value = m.apply(exp);
  ASSERT_TRUE(value.has_value());
  EXPECT_DOUBLE_EQ(*value, 2.0);  // SM2 enters State2 twice

  // With an impossible filter the experiment is dropped.
  StudyMeasure strict;
  strict.add(subset_default(), parse_predicate("(StateMachine1, State1)"),
             obs_total_duration(true, TimeArg::start_exp(), TimeArg::end_exp()));
  strict.add(subset_greater(1e9), parse_predicate("(StateMachine2, State2)"),
             obs_outcome(TimeArg::literal(35)));
  EXPECT_FALSE(strict.apply(exp).has_value());

  // Rejected experiments never contribute.
  analysis::ExperimentAnalysis rejected = exp;
  rejected.accepted = false;
  EXPECT_TRUE(m.apply_study({rejected}).empty());
  EXPECT_EQ(m.apply_study({exp, rejected}).size(), 1u);
}

}  // namespace
}  // namespace loki::measure
