#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/text_file.hpp"
#include "util/time.hpp"

namespace loki {
namespace {

TEST(Time, SplitJoinRoundTrip) {
  const std::int64_t cases[] = {0,
                                1,
                                -1,
                                1'000'000'007,
                                (std::int64_t{1} << 40) + 12345,
                                std::numeric_limits<std::int64_t>::max(),
                                std::numeric_limits<std::int64_t>::min()};
  for (const std::int64_t v : cases) {
    EXPECT_EQ(join_time(split_time(v)), v) << v;
  }
}

TEST(Time, SplitMatchesThesisLayout) {
  // <Time.Hi> is the upper 32 bits, <Time.Lo> the lower 32 (§3.5.6).
  const SplitTime s = split_time((5ll << 32) | 7ll);
  EXPECT_EQ(s.hi, 5u);
  EXPECT_EQ(s.lo, 7u);
}

TEST(Time, DurationArithmetic) {
  EXPECT_EQ((milliseconds(3) + microseconds(500)).ns, 3'500'000);
  EXPECT_EQ((seconds(1) - milliseconds(1)).ns, 999'000'000);
  EXPECT_EQ((milliseconds(2) * 5).ns, 10'000'000);
  EXPECT_DOUBLE_EQ(milliseconds(1500).seconds(), 1.5);
  EXPECT_EQ(millis_f(1.5).ns, 1'500'000);
  EXPECT_EQ(micros_f(2.25).ns, 2'250);
}

TEST(Time, SimTimeOrdering) {
  const SimTime a{100};
  const SimTime b = a + milliseconds(1);
  EXPECT_LT(a, b);
  EXPECT_EQ((b - a).ns, 1'000'000);
}

TEST(Time, FormatDurationUnits) {
  EXPECT_EQ(format_duration(nanoseconds(12)), "12ns");
  EXPECT_EQ(format_duration(microseconds(12)), "12.000us");
  EXPECT_EQ(format_duration(milliseconds(12)), "12.000ms");
  EXPECT_EQ(format_duration(seconds(2)), "2.000s");
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, SplitIsStableAndIndependent) {
  Rng root(7);
  Rng c1 = root.split("alpha");
  Rng c2 = root.split("alpha");
  Rng c3 = root.split("beta");
  EXPECT_EQ(c1.next_u64(), c2.next_u64());
  EXPECT_EQ(Rng(7).split("alpha").next_u64(), Rng(7).split("alpha").next_u64());
  EXPECT_NE(c1.next_u64(), c3.next_u64());
}

TEST(Rng, UniformIntBoundsAndCoverage) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(sq / n - mean * mean), 2.0, 0.1);
}

TEST(Rng, BernoulliRate) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
}

TEST(Strings, SplitWs) {
  const auto v = split_ws("  a \t b  c ");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[2], "c");
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Strings, SplitChar) {
  const auto v = split_char("a,,b", ',');
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[1], "");
}

TEST(Strings, ParseNumbers) {
  EXPECT_EQ(parse_i64("-42").value(), -42);
  EXPECT_FALSE(parse_i64("4x").has_value());
  EXPECT_FALSE(parse_i64("").has_value());
  EXPECT_EQ(parse_u32("7").value(), 7u);
  EXPECT_FALSE(parse_u32("-1").has_value());
  EXPECT_DOUBLE_EQ(parse_f64("2.5").value(), 2.5);
}

TEST(Strings, Identifier) {
  EXPECT_TRUE(is_identifier("black"));
  EXPECT_TRUE(is_identifier("SM_1.a-b"));
  EXPECT_FALSE(is_identifier("1abc"));
  EXPECT_FALSE(is_identifier(""));
  EXPECT_FALSE(is_identifier("a b"));
}

TEST(TextFile, LogicalLinesStripCommentsAndBlanks) {
  const auto lines = logical_lines("a\n\n# comment\n  b # trailing\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].number, 1);
  EXPECT_EQ(lines[0].text, "a");
  EXPECT_EQ(lines[1].number, 4);
  EXPECT_EQ(lines[1].text, "b");
}

TEST(TextFile, ReadMissingFileThrows) {
  EXPECT_THROW(read_file("/nonexistent/loki/file"), ConfigError);
}

TEST(TextFile, WriteReadRoundTrip) {
  const std::string path = testing::TempDir() + "/loki_rt.txt";
  write_file(path, "hello\nworld\n");
  EXPECT_EQ(read_file(path), "hello\nworld\n");
}

TEST(Error, RequireThrowsLogicError) {
  EXPECT_THROW([] { LOKI_REQUIRE(false, "boom"); }(), LogicError);
  EXPECT_NO_THROW([] { LOKI_REQUIRE(true, "fine"); }());
}

TEST(Error, ParseErrorCarriesContext) {
  try {
    throw ParseError("spec.txt", 12, "bad token");
  } catch (const ParseError& e) {
    EXPECT_EQ(e.file(), "spec.txt");
    EXPECT_EQ(e.line(), 12);
    EXPECT_NE(std::string(e.what()).find("spec.txt:12"), std::string::npos);
  }
}

}  // namespace
}  // namespace loki
