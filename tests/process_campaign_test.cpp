// Process-sharded execution and the result cache: ProcessPoolRunner must be
// indistinguishable from SerialRunner (byte-identical results, identical
// sink event sequence, identical failure prefix), `run_worker_range` speaks
// the shard frame protocol, and a warm ResultCache serves a repeated study
// with zero run_experiment calls.
#include <gtest/gtest.h>

#include <cstdio>
#include <fcntl.h>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "apps/election.hpp"
#include "campaign/cache.hpp"
#include "campaign/campaign.hpp"
#include "campaign/process_runner.hpp"
#include "runtime/serialize.hpp"
#include "util/codec.hpp"
#include "util/error.hpp"
#include "util/pipe_io.hpp"

namespace loki {
namespace {

using runtime::ExperimentParams;
using runtime::ExperimentResult;

const std::vector<std::string> kHosts = {"hostA", "hostB", "hostC"};
const std::vector<std::pair<std::string, std::string>> kPlacement = {
    {"black", "hostA"}, {"yellow", "hostB"}, {"green", "hostC"}};

ExperimentParams election_params(std::uint64_t seed) {
  apps::ElectionParams app;
  app.run_for = milliseconds(300);
  app.fault_activation_prob = 0.85;
  return apps::election_experiment(seed, kHosts, kPlacement, app);
}

runtime::StudyParams fault_study(const std::string& name, int experiments,
                                 std::uint64_t base_seed = 3000) {
  runtime::StudyParams study;
  study.name = name;
  study.experiments = experiments;
  study.make_params = [base_seed](int k) {
    auto p = election_params(base_seed + static_cast<std::uint64_t>(k));
    p.nodes[0].fault_spec =
        spec::parse_fault_spec("bfault1 (black:LEAD) always\n", "t");
    p.nodes[0].restart.enabled = true;
    p.nodes[0].restart.delay = milliseconds(60);
    return p;
  };
  return study;
}

/// One observed sink event, rendered comparable.
struct Event {
  std::string kind;
  std::string study;
  int index{-1};
  std::vector<std::uint8_t> result_bytes;

  bool operator==(const Event&) const = default;
};

/// Run `study` through `runner` via the full Campaign, recording the exact
/// sink event sequence (results as encoded bytes).
std::vector<Event> record_events(std::shared_ptr<campaign::Runner> runner,
                                 const runtime::StudyParams& study,
                                 std::shared_ptr<campaign::ResultCache> cache =
                                     nullptr) {
  std::vector<Event> events;
  auto sink = std::make_shared<campaign::CallbackSink>();
  sink->campaign_begin([&](int n) {
    events.push_back({"campaign_begin", std::to_string(n), -1, {}});
  });
  sink->study_begin([&](const campaign::StudyInfo& info) {
    events.push_back({"study_begin", info.name, -1, {}});
  });
  sink->experiment([&](const campaign::StudyInfo& info, int index,
                       const ExperimentResult& result) {
    events.push_back({"experiment", info.name, index,
                      runtime::encode_experiment_result(result)});
  });
  sink->study_done([&](const campaign::StudyInfo& info) {
    events.push_back({"study_done", info.name, -1, {}});
  });
  sink->campaign_done(
      [&] { events.push_back({"campaign_done", "", -1, {}}); });

  CampaignBuilder builder;
  builder.add(study).runner(std::move(runner)).sink(sink);
  if (cache) builder.cache(std::move(cache));
  builder.build().run();
  return events;
}

std::string temp_dir(const std::string& tag) {
  const std::string dir = testing::TempDir() + "loki-" + tag + "-" +
                          std::to_string(::getpid());
  // A previous ctest invocation may have left a warm cache here; these
  // tests assert cold-start stats, so start clean.
  std::filesystem::remove_all(dir);
  return dir;
}

/// A runner that must never be asked to run anything — proof that a warm
/// cache performs zero run_experiment calls.
class ForbiddenRunner final : public campaign::Runner {
 public:
  std::string name() const override { return "forbidden"; }
  int parallelism() const override { return 1; }
  void run_study(const runtime::StudyParams& study,
                 const campaign::EmitFn&) override {
    throw LogicError("ForbiddenRunner invoked for study '" + study.name + "'");
  }
};

// --- serial <-> process identity --------------------------------------------

TEST(ProcessRunner, ByteIdenticalToSerialIncludingSinkSequence) {
  const auto study = fault_study("identity", 7);
  const auto serial =
      record_events(std::make_shared<campaign::SerialRunner>(), study);
  const auto sharded =
      record_events(std::make_shared<campaign::ProcessPoolRunner>(3), study);
  ASSERT_EQ(serial.size(), sharded.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(serial[i], sharded[i]) << "event " << i;
}

TEST(ProcessRunner, MoreWorkersThanExperiments) {
  const auto study = fault_study("overprovisioned", 2);
  const auto serial =
      record_events(std::make_shared<campaign::SerialRunner>(), study);
  const auto sharded =
      record_events(std::make_shared<campaign::ProcessPoolRunner>(8), study);
  EXPECT_EQ(serial, sharded);
}

TEST(ProcessRunner, RejectsNonPositiveWorkers) {
  EXPECT_THROW(campaign::ProcessPoolRunner(0), ConfigError);
}

// --- failure-prefix semantics ------------------------------------------------

/// A study whose generator throws ConfigError at `fail_at`.
runtime::StudyParams failing_study(int experiments, int fail_at) {
  runtime::StudyParams study = fault_study("failing", experiments, 4000);
  auto inner = study.make_params;
  study.make_params = [inner, fail_at](int k) {
    if (k == fail_at)
      throw ConfigError("generator exploded at " + std::to_string(k));
    return inner(k);
  };
  return study;
}

TEST(ProcessRunner, FailurePrefixMatchesSerial) {
  const int fail_at = 3;
  const auto study = failing_study(6, fail_at);

  const auto run_one = [&](std::shared_ptr<campaign::Runner> runner) {
    std::vector<int> emitted;
    std::string error;
    try {
      runner->run_study(study, [&](int k, ExperimentResult&&) {
        emitted.push_back(k);
      });
    } catch (const ConfigError& e) {
      error = e.what();
    }
    return std::pair(emitted, error);
  };

  const auto [serial_emitted, serial_error] =
      run_one(std::make_shared<campaign::SerialRunner>());
  const auto [proc_emitted, proc_error] =
      run_one(std::make_shared<campaign::ProcessPoolRunner>(2));

  EXPECT_EQ(serial_emitted, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(proc_emitted, serial_emitted);
  ASSERT_FALSE(serial_error.empty());
  ASSERT_FALSE(proc_error.empty());
  // The remote ConfigError is rehydrated with the original message.
  EXPECT_NE(proc_error.find("generator exploded at 3"), std::string::npos)
      << proc_error;
}

// --- the shard frame protocol ------------------------------------------------

TEST(WorkerRange, FramesDecodeToSerialResults) {
  const auto study = fault_study("worker", 3, 5000);

  // Write the shard's frames into a temp file (a pipe would need a reader
  // thread once results exceed its buffer).
  const std::string path = temp_dir("frames") + ".bin";
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_RDWR, 0600);
  ASSERT_GE(fd, 0);
  campaign::run_worker_range(study, 0, 3, 1, fd);
  ASSERT_EQ(::lseek(fd, 0, SEEK_SET), 0);

  // The shard emits ResultBatch frames; entries across all batches cover
  // the range in order.
  std::vector<runtime::ResultFrame> entries;
  while (const auto frame = util::read_frame(fd)) {
    EXPECT_EQ(runtime::worker_frame_type(*frame),
              runtime::WorkerFrame::ResultBatch);
    auto batch = runtime::decode_result_batch_frame(*frame);
    EXPECT_FALSE(batch.empty()) << "a flushed batch is never empty";
    for (auto& entry : batch) entries.push_back(std::move(entry));
  }
  ASSERT_EQ(entries.size(), 3u);
  for (int k = 0; k < 3; ++k) {
    EXPECT_TRUE(entries[k].ok) << "status ok";
    EXPECT_EQ(entries[k].index, static_cast<std::uint32_t>(k));
    const ExperimentResult direct =
        runtime::run_experiment(study.make_params(k));
    EXPECT_EQ(runtime::encode_experiment_result(entries[k].result),
              runtime::encode_experiment_result(direct));
  }
  ::close(fd);
  std::remove(path.c_str());
}

// --- the result cache --------------------------------------------------------

TEST(ResultCacheTest, WarmRerunPerformsZeroRuns) {
  const auto study = fault_study("cached", 5, 6000);
  const std::string dir = temp_dir("cache-warm");

  auto cache = std::make_shared<campaign::ResultCache>(dir);
  const auto cold = record_events(std::make_shared<campaign::SerialRunner>(),
                                  study, cache);
  EXPECT_EQ(cache->stats().stores, 5u);
  EXPECT_EQ(cache->stats().hits, 0u);

  // Second, identical study: the runner must never be invoked, and the
  // sink event sequence must be byte-identical to the cold run.
  auto cache2 = std::make_shared<campaign::ResultCache>(dir);
  const auto warm =
      record_events(std::make_shared<ForbiddenRunner>(), study, cache2);
  EXPECT_EQ(cache2->stats().hits, 5u);
  EXPECT_EQ(cache2->stats().misses, 0u);
  EXPECT_EQ(cold, warm);
}

TEST(ResultCacheTest, PartialWarmRunsOnlyMissesAndInterleavesInOrder) {
  const std::string dir = temp_dir("cache-partial");

  // Warm indices 0..2 (a prefix study with the same seeds).
  auto cache = std::make_shared<campaign::ResultCache>(dir);
  record_events(std::make_shared<campaign::SerialRunner>(),
                fault_study("grow", 3, 7000), cache);

  // Extend to 7 experiments: 3 hits + 4 fresh, emitted 0..6 in order and
  // byte-identical to an uncached serial run.
  const auto study = fault_study("grow", 7, 7000);
  auto cache2 = std::make_shared<campaign::ResultCache>(dir);
  const auto mixed = record_events(std::make_shared<campaign::SerialRunner>(),
                                   study, cache2);
  EXPECT_EQ(cache2->stats().hits, 3u);
  EXPECT_EQ(cache2->stats().stores, 4u);

  const auto uncached =
      record_events(std::make_shared<campaign::SerialRunner>(), study);
  EXPECT_EQ(mixed, uncached);

  // And a third run is now fully warm.
  auto cache3 = std::make_shared<campaign::ResultCache>(dir);
  const auto warm = record_events(std::make_shared<ForbiddenRunner>(), study,
                                  cache3);
  EXPECT_EQ(cache3->stats().hits, 7u);
  EXPECT_EQ(warm, uncached);
}

TEST(ResultCacheTest, ProcessRunnerMissesFillTheCacheIdentically) {
  const std::string dir_proc = temp_dir("cache-proc");
  const std::string dir_serial = temp_dir("cache-serial");
  const auto study = fault_study("xrunner", 4, 8000);

  auto cache_proc = std::make_shared<campaign::ResultCache>(dir_proc);
  const auto via_procs = record_events(
      std::make_shared<campaign::ProcessPoolRunner>(2), study, cache_proc);
  auto cache_serial = std::make_shared<campaign::ResultCache>(dir_serial);
  const auto via_serial = record_events(
      std::make_shared<campaign::SerialRunner>(), study, cache_serial);
  EXPECT_EQ(via_procs, via_serial);

  // Caches warmed by different runners serve each other's studies.
  auto reuse = std::make_shared<campaign::ResultCache>(dir_proc);
  const auto warm =
      record_events(std::make_shared<ForbiddenRunner>(), study, reuse);
  EXPECT_EQ(warm, via_serial);
}

TEST(ResultCacheTest, SinkFailureDuringCachedEmitDoesNotDoubleEmit) {
  const std::string dir = temp_dir("cache-sink-throw");

  // Warm indices 0..2, then run 5 experiments with a sink that explodes on
  // cached index 1 (delivered while interleaving ahead of fresh index 3).
  auto warmup = std::make_shared<campaign::ResultCache>(dir);
  record_events(std::make_shared<campaign::SerialRunner>(),
                fault_study("boom", 3, 11'000), warmup);

  const auto study = fault_study("boom", 5, 11'000);
  std::vector<int> emitted;
  auto sink = std::make_shared<campaign::CallbackSink>();
  sink->experiment([&](const campaign::StudyInfo&, int index,
                       const ExperimentResult&) {
    emitted.push_back(index);
    if (index == 1) throw std::runtime_error("sink exploded");
  });
  CampaignBuilder builder;
  builder.add(study)
      .runner(std::make_shared<campaign::SerialRunner>())
      .cache(std::make_shared<campaign::ResultCache>(dir))
      .sink(sink);
  Campaign campaign = builder.build();
  EXPECT_THROW(campaign.run(), std::runtime_error);
  // Exactly-once even on failure: index 1 was attempted once and is never
  // re-delivered (with a moved-from result) by the failure-prefix flush.
  EXPECT_EQ(emitted, (std::vector<int>{0, 1}));
}

TEST(ResultCacheTest, CorruptEntryIsAMissNotAnError) {
  const std::string dir = temp_dir("cache-corrupt");
  campaign::ResultCache cache(dir);
  const auto params = fault_study("c", 1, 9000).make_params(0);
  const std::string key = runtime::experiment_cache_key(params);

  cache.store(key, ExperimentResult{});
  ASSERT_TRUE(cache.lookup(key).has_value());

  // Truncate the stored file; the next lookup must degrade to a miss.
  {
    std::FILE* f = std::fopen((dir + "/" + key + ".result").c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("LOKI", f);  // valid magic, nothing else
    std::fclose(f);
  }
  EXPECT_FALSE(cache.lookup(key).has_value());
  EXPECT_THROW(cache.lookup("not-a-key"), ConfigError);
}

TEST(CacheSinkTest, WarmsACacheFromAPlainCampaign) {
  const std::string dir = temp_dir("cache-sink");
  const auto study = fault_study("sinky", 3, 10'000);

  auto cache = std::make_shared<campaign::ResultCache>(dir);
  auto sink = std::make_shared<campaign::CacheSink>(cache);
  sink->study(study);
  CampaignBuilder builder;
  builder.add(study).sink(sink);
  builder.build().run();
  EXPECT_EQ(cache->stats().stores, 3u);

  // The warmed cache then serves the same study without any runs.
  auto reuse = std::make_shared<campaign::ResultCache>(dir);
  const auto warm =
      record_events(std::make_shared<ForbiddenRunner>(), study, reuse);
  EXPECT_EQ(reuse->stats().hits, 3u);
  const auto uncached =
      record_events(std::make_shared<campaign::SerialRunner>(), study);
  EXPECT_EQ(warm, uncached);
}

// --- runner spec grammar -----------------------------------------------------

TEST(RunnerSpec, ParsesEveryBackend) {
  EXPECT_EQ(campaign::parse_runner_spec("serial")->name(), "serial");
  EXPECT_EQ(campaign::parse_runner_spec("threads:3")->name(), "thread-pool(3)");
  // procs:N is the crash-tolerant dynamic work queue over local worker
  // processes; the static round-robin sharder stays reachable by name.
  EXPECT_EQ(campaign::parse_runner_spec("procs:5")->name(),
            "remote(subprocess:5)");
  EXPECT_EQ(campaign::parse_runner_spec("procs:5")->parallelism(), 5);
  EXPECT_EQ(campaign::parse_runner_spec("static-procs:5")->name(),
            "process-pool(5)");
  EXPECT_EQ(campaign::parse_runner_spec("static-procs:5")->parallelism(), 5);
  // Legacy bare integers keep working.
  EXPECT_EQ(campaign::parse_runner_spec("1")->name(), "serial");
  EXPECT_EQ(campaign::parse_runner_spec("4")->name(), "thread-pool(4)");
}

TEST(RunnerSpec, RejectsMalformedSpecs) {
  for (const char* bad :
       {"", "serial:2", "threads:", "threads:0", "procs:-1", "procs:x",
        "static-procs:", "static-procs:0", "remote:", "fibers:2", "2.5"})
    EXPECT_THROW(campaign::parse_runner_spec(bad), ConfigError) << bad;
  // remote: with a missing hostfile fails with the path in the message.
  EXPECT_THROW(campaign::parse_runner_spec("remote:/no/such/hostfile"),
               ConfigError);
}

}  // namespace
}  // namespace loki
