// lint-fixture-path: src/runtime/dirty_runtime_example.cpp
// Golden fixture for the src/runtime clock rule: telemetry-flavoured code
// that reads a clock inside the deterministic runtime layer must be
// flagged — latencies are measured in the campaign layer and passed into
// runtime/worker_stats.hpp as plain values. Never compiled or shipped.
#include <chrono>
#include <cstdint>

struct RuntimeStats {
  std::uint64_t experiments_completed{0};

  void record_now() {
    auto t = std::chrono::steady_clock::now();  // wall-clock (line 13)
    (void)t;
    ++experiments_completed;
  }

  // An allow with a reason suppresses the rule, same as everywhere else.
  long allowed() {
    // loki-lint: allow(wall-clock, fixture proves the escape hatch works)
    return std::chrono::steady_clock::now().time_since_epoch().count();
  }
};
