// lint-fixture-path: src/campaign/clean_example.cpp
// Golden fixture: none of these may fire. Pins the precision half of the
// lint — comments/strings are stripped, allows with reasons suppress, and
// safe idioms (sorted drain, dense-id keys, value-position pointers) pass.
#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

struct Node {};

struct CleanExample {
  // Pointers in VALUE position are fine; only keys order a container.
  std::unordered_map<int, Node*> by_id;
  std::map<std::string, std::unique_ptr<Node>> by_name;
  std::unordered_map<std::string, int> hosts;

  // Lookup-only use of an unordered container never iterates it.
  int lookup(const std::string& h) const { return hosts.at(h); }

  // The deterministic drain idiom: copy keys, sort, then walk.
  std::vector<int> ordered_ids() const {
    std::vector<int> ids;
    ids.reserve(by_id.size());
    // loki-lint: allow(unordered-iter, keys copied then sorted below)
    for (const auto& [id, node] : by_id) {
      (void)node;
      ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end());
    return ids;
  }

  // Mentions of rand(), getenv("X"), system_clock or mt19937 inside
  // comments and string literals must never fire.
  std::string doc() const {
    return "never call rand() or getenv(\"SEED\") here; see mt19937 note";
  }

  // Campaign-layer (host-side) code may read the environment and the
  // clock: the wall-clock and env rules scope to src/sim + src/runtime.
  const char* shard_hint() const { return getenv("LOKI_SHARD"); }
};

// Iterating a std::map (ordered) is fine anywhere.
inline int sum(const std::map<int, int>& m) {
  int total = 0;
  for (const auto& [k, v] : m) total += k + v;
  return total;
}
