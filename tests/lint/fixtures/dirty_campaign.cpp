// lint-fixture-path: src/campaign/dirty_campaign_example.cpp
// Golden fixture for the raw-write rule: campaign-layer code touching
// durable files without the atomic-publish helpers. Not compiled — the
// lint self-test scans it and compares against tests/lint/expected.txt.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

void bad_persist(const std::string& path) {
  std::ofstream out(path);  // torn file if the coordinator dies mid-write
  out << "index-v1";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fclose(f);
  std::filesystem::rename(path + ".tmp", path);  // rename without fsync
}

void fine_read(const std::string& path) {
  std::ifstream in(path);  // reads are outside the durability contract
  std::string line;
  std::getline(in, line);
}

void justified(const std::string& path) {
  // loki-lint: allow(raw-write, debug dump only; never read back or resumed)
  std::ofstream dump(path + ".debug");
}
