// lint-fixture-path: src/sim/dirty_example.cpp
// Golden fixture: every rule must fire exactly where expected.txt says.
// This file never compiles or ships — it exists to pin loki_lint behavior.
#include <chrono>
#include <cstdlib>
#include <map>
#include <random>
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct Node {};
struct Result {};

struct DirtyExample {
  std::unordered_map<int, Result> results;
  std::unordered_set<int> pending;
  std::map<Node*, int> by_node;          // pointer-key (line 18)
  std::unordered_map<const Node*, int> seen;  // pointer-key (line 19)

  void emit_all() {
    for (const auto& [id, r] : results) {  // unordered-iter (line 22)
      (void)id;
      (void)r;
    }
    for (auto it = pending.begin(); it != pending.end(); ++it) {  // (line 26)
      (void)*it;
    }
  }

  long stamp() {
    auto wall = std::chrono::system_clock::now();  // wall-clock (line 32)
    auto mono = std::chrono::steady_clock::now();  // wall-clock (line 33)
    (void)mono;
    return wall.time_since_epoch().count();
  }

  int host_config() {
    const char* level = getenv("LOKI_LEVEL");  // env-read (line 39)
    return level ? 1 : 0;
  }

  int roll() {
    std::mt19937 gen(42);               // raw-random (line 44)
    std::random_device rd;              // raw-random (line 45)
    (void)rd;
    return rand() + static_cast<int>(gen());  // raw-random (line 47)
  }

  // loki-lint: allow(unordered-iter)
  void reasonless() {}  // the reasonless allow above is itself a finding
};
