// Tests for the §6 / §3.6.4 future-work extensions: probe templates for
// common fault types, and host crash & reboot.
#include <gtest/gtest.h>

#include <memory>

#include "analysis/pipeline.hpp"
#include "apps/election.hpp"
#include "runtime/experiment.hpp"
#include "runtime/probe_templates.hpp"

namespace loki {
namespace {

using runtime::ExperimentParams;
using runtime::ExperimentResult;

const std::vector<std::string> kHosts = {"hostA", "hostB", "hostC"};
const std::vector<std::pair<std::string, std::string>> kPlacement = {
    {"black", "hostA"}, {"yellow", "hostB"}, {"green", "hostC"}};

/// Election app variant whose probe delegates to a template registry.
class TemplatedElectionApp final : public runtime::Application {
 public:
  TemplatedElectionApp(apps::ElectionParams params,
                       std::shared_ptr<runtime::ProbeTemplateRegistry> registry)
      : inner_(params), registry_(std::move(registry)) {}

  void on_start(runtime::NodeContext& ctx) override { inner_.on_start(ctx); }
  void on_message(runtime::NodeContext& ctx, const std::any& m) override {
    inner_.on_message(ctx, m);
  }
  void on_inject_fault(runtime::NodeContext& ctx, const std::string& f) override {
    registry_->inject(ctx, f);
  }

 private:
  apps::ElectionApp inner_;
  std::shared_ptr<runtime::ProbeTemplateRegistry> registry_;
};

ExperimentParams templated_params(std::uint64_t seed,
                                  runtime::ProbeTemplate tmpl) {
  apps::ElectionParams app;
  app.run_for = milliseconds(600);
  auto params = apps::election_experiment(seed, kHosts, kPlacement, app);
  auto registry = std::make_shared<runtime::ProbeTemplateRegistry>();
  registry->set_default(std::move(tmpl));
  for (auto& node : params.nodes) {
    node.app_factory = [app, registry] {
      return std::make_unique<TemplatedElectionApp>(app, registry);
    };
  }
  params.nodes[0].fault_spec =
      spec::parse_fault_spec("f (black:LEAD) always\n", "ext");
  return params;
}

bool black_crashed(const ExperimentResult& r) {
  return r.truth.crashed("black");
}

bool saw_message(const ExperimentResult& r, const std::string& needle) {
  const auto* messages = r.find_user_messages("black");
  if (messages == nullptr) return false;
  for (const auto& m : *messages)
    if (m.find(needle) != std::string::npos) return true;
  return false;
}

TEST(ProbeTemplates, CrashFaultCrashesAfterDormancy) {
  int crashed = 0, injected = 0;
  for (int seed = 0; seed < 8; ++seed) {
    const auto r = runtime::run_experiment(templated_params(
        100 + static_cast<std::uint64_t>(seed), runtime::crash_fault()));
    if (!r.truth.injections.empty()) ++injected;
    if (black_crashed(r)) ++crashed;
  }
  EXPECT_GT(injected, 0);
  EXPECT_EQ(crashed, injected);  // activation_prob = 1
}

TEST(ProbeTemplates, MemoryFaultSometimesDormant) {
  runtime::MemoryFaultParams mf;
  mf.manifest_prob = 0.5;
  int injected = 0, crashed = 0;
  for (int seed = 0; seed < 30; ++seed) {
    const auto r = runtime::run_experiment(templated_params(
        300 + static_cast<std::uint64_t>(seed), runtime::memory_fault(mf)));
    if (!r.truth.injections.empty()) ++injected;
    if (black_crashed(r)) ++crashed;
  }
  EXPECT_GT(injected, 4);
  EXPECT_GT(crashed, 0);
  EXPECT_LT(crashed, injected);  // some corruptions were never read
}

TEST(ProbeTemplates, MemoryFaultCrashIsDaemonRecorded) {
  // Memory faults die by unhandled signal: the daemon (not the node) must
  // have written the CRASH record.
  runtime::MemoryFaultParams mf;
  mf.manifest_prob = 1.0;
  for (int seed = 0; seed < 10; ++seed) {
    const auto r = runtime::run_experiment(templated_params(
        500 + static_cast<std::uint64_t>(seed), runtime::memory_fault(mf)));
    if (!black_crashed(r)) continue;
    const auto& tl = r.timeline_of("black");
    bool has_crash_record = false;
    for (const auto& rec : tl.records) {
      if (rec.type == runtime::RecordType::StateChange &&
          tl.state_name(rec.state_index) == "CRASH")
        has_crash_record = true;
    }
    EXPECT_TRUE(has_crash_record);
    return;  // one crashing experiment suffices
  }
  GTEST_SKIP() << "no crash observed in the seed range";
}

TEST(ProbeTemplates, CpuFaultCanRecover) {
  runtime::CpuFaultParams cf;
  cf.fatal_prob = 0.0;  // always recovers
  cf.burn = milliseconds(30);
  int injected = 0;
  for (int seed = 0; seed < 15; ++seed) {
    const auto r = runtime::run_experiment(templated_params(
        700 + static_cast<std::uint64_t>(seed), runtime::cpu_fault(cf)));
    if (r.truth.injections.empty()) continue;
    ++injected;
    EXPECT_FALSE(black_crashed(r));
    EXPECT_TRUE(saw_message(r, "recovered"));
  }
  EXPECT_GT(injected, 0);
}

/// Minimal NodeContext stub for registry dispatch tests.
class StubContext final : public runtime::NodeContext {
 public:
  const std::string& nickname() const override { return name_; }
  const std::string& host_name() const override { return host_; }
  bool restarted() const override { return false; }
  Rng& rng() override { return rng_; }
  LocalTime local_clock() const override { return LocalTime{0}; }
  void notify_event(const std::string&) override {}
  void record_message(std::string m) override { messages.push_back(std::move(m)); }
  void app_send(const std::string&, std::any, Duration) override {}
  void app_timer(Duration, std::function<void(runtime::NodeContext&)>,
                 Duration) override {}
  void do_work(Duration, std::function<void(runtime::NodeContext&)>) override {}
  void exit_app() override {}
  void crash_app(runtime::CrashMode) override {}
  std::vector<std::string> peer_nicknames() const override { return {}; }

  std::vector<std::string> messages;

 private:
  std::string name_ = "stub";
  std::string host_ = "stub-host";
  Rng rng_{1};
};

TEST(ProbeTemplates, RegistryDispatchAndFallback) {
  runtime::ProbeTemplateRegistry registry;
  int specific = 0, fallback = 0;
  registry.set("known", [&](runtime::NodeContext&, const std::string&) {
    ++specific;
  });
  registry.set_default([&](runtime::NodeContext&, const std::string&) {
    ++fallback;
  });
  EXPECT_TRUE(registry.has("known"));
  EXPECT_FALSE(registry.has("other"));
  StubContext ctx;
  registry.inject(ctx, "known");
  registry.inject(ctx, "other");
  EXPECT_EQ(specific, 1);
  EXPECT_EQ(fallback, 1);
}

TEST(ProbeTemplates, NoTemplateRecordsWarning) {
  runtime::ProbeTemplateRegistry registry;
  StubContext ctx;
  registry.inject(ctx, "mystery");
  ASSERT_EQ(ctx.messages.size(), 1u);
  EXPECT_NE(ctx.messages[0].find("no probe template"), std::string::npos);
}

// --- host crash & reboot (§3.6.4) ---------------------------------------------

TEST(HostCrash, ExperimentSurvivesHostCrashAndReboot) {
  apps::ElectionParams app;
  app.run_for = milliseconds(700);
  auto params = apps::election_experiment(900, kHosts, kPlacement, app);
  params.host_crashes.push_back(
      runtime::HostCrashPlan{"hostC", milliseconds(200), milliseconds(150)});

  const auto r = runtime::run_experiment(params);
  EXPECT_TRUE(r.completed) << "survivors should finish despite the host crash";
  EXPECT_FALSE(r.timed_out);
  // green lived on hostC: its records stop at/before the crash.
  const auto& tl = r.timeline_of("green");
  EXPECT_FALSE(tl.records.empty());
  // black and yellow ran to completion and kept recording afterwards.
  for (const auto* nick : {"black", "yellow"}) {
    const auto& other = r.timeline_of(nick);
    EXPECT_GE(other.records.size(), 3u) << nick;
  }
}

TEST(HostCrash, SurvivorsReElectAfterLeaderHostDies) {
  // Force black (hostA) to lead... we cannot force it, so crash whichever
  // host and check the system still elects exactly one live leader stream.
  apps::ElectionParams app;
  app.run_for = milliseconds(900);
  auto params = apps::election_experiment(901, kHosts, kPlacement, app);
  params.host_crashes.push_back(
      runtime::HostCrashPlan{"hostA", milliseconds(250), milliseconds(200)});
  const auto r = runtime::run_experiment(params);
  EXPECT_TRUE(r.completed);
  // If black led and died with its host, a survivor must have re-elected.
  const bool black_led = [&] {
    const auto* seq = r.truth.find_state_seq("black");
    if (seq == nullptr) return false;
    for (const auto& [t, s] : *seq)
      if (s == "LEAD") return true;
    return false;
  }();
  if (black_led) {
    int survivor_leads = 0;
    for (const auto* nick : {"yellow", "green"}) {
      const auto* seq = r.truth.find_state_seq(nick);
      if (seq == nullptr) continue;
      for (const auto& [t, s] : *seq)
        if (s == "LEAD") ++survivor_leads;
    }
    EXPECT_GE(survivor_leads, 1);
  }
}

TEST(HostCrash, AnalysisStillRunsOnTruncatedTimelines) {
  apps::ElectionParams app;
  app.run_for = milliseconds(700);
  auto params = apps::election_experiment(903, kHosts, kPlacement, app);
  params.nodes[0].fault_spec =
      spec::parse_fault_spec("f (black:LEAD) always\n", "ext");
  params.host_crashes.push_back(
      runtime::HostCrashPlan{"hostB", milliseconds(300), milliseconds(150)});
  const auto r = runtime::run_experiment(params);
  EXPECT_TRUE(r.completed);
  // Sync phases bracket the experiment regardless of the mid-run crash, so
  // the analysis phase can still project every surviving record.
  EXPECT_NO_THROW({
    const auto a = analysis::analyze_experiment(r);
    (void)a;
  });
}

}  // namespace
}  // namespace loki
