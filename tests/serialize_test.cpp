// The versioned wire format (runtime/serialize.*): round-trip fidelity for
// ExperimentParams / ExperimentResult / StudyParams — including NaN/inf
// statistics, empty timelines and long strings — plus envelope hygiene:
// version-mismatch rejection, bad magic, truncated frames, trailing bytes.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "apps/election.hpp"
#include "apps/registry.hpp"
#include "campaign/campaign.hpp"
#include "runtime/serialize.hpp"
#include "util/codec.hpp"
#include "util/digest.hpp"
#include "util/error.hpp"

namespace loki {
namespace {

using codec::DecodeError;
using runtime::ExperimentParams;
using runtime::ExperimentResult;

const std::vector<std::string> kHosts = {"hostA", "hostB", "hostC"};
const std::vector<std::pair<std::string, std::string>> kPlacement = {
    {"black", "hostA"}, {"yellow", "hostB"}, {"green", "hostC"}};

struct RegisterApps {
  RegisterApps() { apps::register_builtin_apps(); }
};
const RegisterApps kRegistered;

ExperimentParams sample_params(std::uint64_t seed = 7) {
  apps::ElectionParams app;
  app.run_for = milliseconds(300);
  app.fault_activation_prob = 0.85;
  auto p = apps::election_experiment(seed, kHosts, kPlacement, app);
  p.nodes[0].fault_spec =
      spec::parse_fault_spec("bfault1 (black:LEAD) always\n", "t");
  p.nodes[0].restart.enabled = true;
  p.nodes[0].restart.placement = runtime::RestartPolicy::Placement::Fixed;
  p.nodes[0].restart.fixed_host = "hostB";
  p.nodes[1].enter_at = milliseconds(40);
  p.nodes[1].enter_host = "hostB";
  p.nodes[1].initial_host.reset();
  p.hosts[0].clock = sim::ClockParams{microseconds(250), 1.00004, 500};
  p.hosts[1].load_duty = 0.35;
  p.host_crashes.push_back({"hostC", milliseconds(120), milliseconds(90)});
  p.design = runtime::TransportDesign::Centralized;
  p.sync.messages_per_pair = 7;
  p.max_drift_ppm = 55.5;
  return p;
}

// --- ExperimentParams --------------------------------------------------------

TEST(WireParams, EncodeDecodeEncodeIsIdentity) {
  const ExperimentParams p = sample_params();
  const auto bytes = runtime::encode_experiment_params(p);
  const ExperimentParams decoded = runtime::decode_experiment_params(bytes);
  EXPECT_EQ(bytes, runtime::encode_experiment_params(decoded));
}

TEST(WireParams, DecodedParamsRebuildAWorkingAppFactory) {
  const auto bytes = runtime::encode_experiment_params(sample_params());
  const ExperimentParams decoded = runtime::decode_experiment_params(bytes);
  ASSERT_EQ(decoded.nodes.size(), 3u);
  EXPECT_EQ(decoded.nodes[0].app_name, "election");
  ASSERT_TRUE(static_cast<bool>(decoded.nodes[0].app_factory));
  EXPECT_NE(decoded.nodes[0].app_factory(), nullptr);
  EXPECT_EQ(decoded.nodes[1].enter_at, milliseconds(40));
  EXPECT_EQ(decoded.hosts[0].clock->granularity_ns, 500);
  EXPECT_EQ(decoded.design, runtime::TransportDesign::Centralized);
}

TEST(WireParams, MissingAppNameIsRejectedAtEncode) {
  ExperimentParams p = sample_params();
  p.nodes[2].app_name.clear();
  EXPECT_THROW(runtime::encode_experiment_params(p), ConfigError);
}

TEST(WireParams, UnregisteredAppNameIsRejectedAtDecode) {
  ExperimentParams p = sample_params();
  p.nodes[0].app_name = "no-such-app";
  const auto bytes = runtime::encode_experiment_params(p);
  EXPECT_THROW(runtime::decode_experiment_params(bytes), ConfigError);
}

TEST(WireParams, CacheKeyIsStableAndSeedSensitive) {
  const std::string a1 = runtime::experiment_cache_key(sample_params(7));
  const std::string a2 = runtime::experiment_cache_key(sample_params(7));
  const std::string b = runtime::experiment_cache_key(sample_params(8));
  EXPECT_EQ(a1.size(), 64u);
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
}

// --- ExperimentResult --------------------------------------------------------

ExperimentResult synthetic_result() {
  ExperimentResult r;
  runtime::LocalTimeline empty_tl;  // a node that recorded nothing
  empty_tl.nickname = "mute";
  empty_tl.initial_host = "hostA";
  r.timelines["mute"] = empty_tl;

  runtime::LocalTimeline tl;
  tl.nickname = "black";
  tl.initial_host = "hostA";
  tl.machines = {"black", "green"};
  tl.states = {"BEGIN", "LEAD"};
  tl.events = {"START"};
  tl.faults.push_back({"bfault1", "(black:LEAD)", spec::Trigger::Always});
  tl.records.push_back({runtime::RecordType::StateChange, 0, 1, 0, "",
                        LocalTime{123456789}});
  tl.records.push_back({runtime::RecordType::Restart, 0, 0, 0, "hostB",
                        LocalTime{-42}});  // negative local clock reading
  r.timelines["black"] = tl;

  r.user_messages["black"] = {"injected bfault1", std::string(100'000, 'x')};
  r.user_messages["empty"] = {};
  r.sync_samples.push_back({"hostA", "hostB", LocalTime{1}, LocalTime{2}});
  r.start_local["hostA"] = LocalTime{10};
  r.end_local["hostA"] = LocalTime{20};
  r.truth.state_seq["black"] = {{SimTime{0}, "BEGIN"}, {SimTime{5}, "LEAD"}};
  r.truth.injections.push_back({"black", "bfault1", SimTime{77}});
  r.truth.crashes["black"] = {SimTime{99}};
  // NaN/inf statistics must survive bit-exactly.
  r.true_clocks["hostA"] =
      sim::ClockParams{Duration{0}, std::numeric_limits<double>::quiet_NaN(), 1};
  r.true_clocks["hostB"] =
      sim::ClockParams{Duration{0}, std::numeric_limits<double>::infinity(), 1};
  r.true_clocks["hostC"] =
      sim::ClockParams{Duration{0}, -std::numeric_limits<double>::infinity(), 1};
  r.start_phys = SimTime{1000};
  r.end_phys = SimTime{2000};
  r.completed = true;
  r.dropped_notifications = 3;
  r.control_messages = 17;
  r.app_messages = 23;
  return r;
}

TEST(WireResult, SyntheticRoundTripIsByteIdentical) {
  const ExperimentResult r = synthetic_result();
  const auto bytes = runtime::encode_experiment_result(r);
  const ExperimentResult decoded = runtime::decode_experiment_result(bytes);
  EXPECT_EQ(bytes, runtime::encode_experiment_result(decoded));
  // NaN payloads round-trip bit-exactly even though NaN != NaN.
  EXPECT_EQ(std::bit_cast<std::uint64_t>(decoded.true_clocks.at("hostA").beta),
            std::bit_cast<std::uint64_t>(r.true_clocks.at("hostA").beta));
  EXPECT_EQ(decoded.true_clocks.at("hostB").beta,
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(decoded.user_messages.at("black")[1].size(), 100'000u);
  EXPECT_TRUE(decoded.timelines.at("mute").records.empty());
}

TEST(WireResult, EmptyResultRoundTrips) {
  const ExperimentResult r{};
  const auto bytes = runtime::encode_experiment_result(r);
  const ExperimentResult decoded = runtime::decode_experiment_result(bytes);
  EXPECT_EQ(bytes, runtime::encode_experiment_result(decoded));
  EXPECT_FALSE(decoded.completed);
}

TEST(WireResult, RealExperimentRoundTrips) {
  const ExperimentResult r = campaign::run_single(sample_params(11));
  const auto bytes = runtime::encode_experiment_result(r);
  const ExperimentResult decoded = runtime::decode_experiment_result(bytes);
  EXPECT_EQ(bytes, runtime::encode_experiment_result(decoded));
  EXPECT_EQ(decoded.timelines.size(), r.timelines.size());
  EXPECT_EQ(decoded.sync_samples.size(), r.sync_samples.size());
}

// --- StudyParams -------------------------------------------------------------

TEST(WireStudy, MaterializedRoundTripReplaysEveryIndex) {
  runtime::StudyParams study;
  study.name = "wire-study";
  study.experiments = 3;
  study.make_params = [](int k) {
    return sample_params(100 + static_cast<std::uint64_t>(k));
  };

  const auto bytes = runtime::encode_study_params(study);
  const runtime::StudyParams decoded = runtime::decode_study_params(bytes);
  EXPECT_EQ(decoded.name, "wire-study");
  EXPECT_EQ(decoded.experiments, 3);
  for (int k = 0; k < 3; ++k)
    EXPECT_EQ(runtime::encode_experiment_params(decoded.make_params(k)),
              runtime::encode_experiment_params(study.make_params(k)));
  EXPECT_THROW(decoded.make_params(3), ConfigError);
  EXPECT_THROW(decoded.make_params(-1), ConfigError);
}

// --- envelope hygiene --------------------------------------------------------

TEST(WireEnvelope, VersionMismatchIsRejected) {
  auto bytes = runtime::encode_experiment_result(synthetic_result());
  bytes[4] ^= 0xff;  // u16 version lives right after the 4-byte magic
  try {
    runtime::decode_experiment_result(bytes);
    FAIL() << "expected DecodeError";
  } catch (const DecodeError& e) {
    EXPECT_NE(std::string(e.what()).find("version mismatch"), std::string::npos)
        << e.what();
  }
}

TEST(WireEnvelope, BadMagicIsRejected) {
  auto bytes = runtime::encode_experiment_result(synthetic_result());
  bytes[0] = 'X';
  EXPECT_THROW(runtime::decode_experiment_result(bytes), DecodeError);
}

TEST(WireEnvelope, WrongKindIsRejected) {
  const auto bytes = runtime::encode_experiment_result(synthetic_result());
  EXPECT_THROW(runtime::decode_experiment_params(bytes), DecodeError);
}

TEST(WireEnvelope, EveryTruncationIsRejectedNotMisread) {
  const auto full = runtime::encode_experiment_result(synthetic_result());
  // Chop at a spread of prefix lengths (every length would be O(n^2) over
  // a ~100KB message); each must throw DecodeError, never crash or return.
  for (std::size_t len = 0; len < full.size();
       len += 1 + full.size() / 257) {
    const std::vector<std::uint8_t> cut(full.begin(),
                                        full.begin() +
                                            static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(runtime::decode_experiment_result(cut), DecodeError)
        << "prefix length " << len;
  }
}

TEST(WireEnvelope, TrailingGarbageIsRejected) {
  auto bytes = runtime::encode_experiment_result(ExperimentResult{});
  bytes.push_back(0);
  EXPECT_THROW(runtime::decode_experiment_result(bytes), DecodeError);
}

// --- app args + digest -------------------------------------------------------

TEST(AppArgs, ElectionRoundTrips) {
  apps::ElectionParams p;
  p.election_window = milliseconds(12);
  p.fault_activation_prob = 0.3125;
  p.crash_mode = runtime::CrashMode::Silent;
  const apps::ElectionParams q =
      apps::parse_election_args(apps::encode_election_args(p));
  EXPECT_EQ(q.election_window, p.election_window);
  EXPECT_EQ(q.fault_activation_prob, p.fault_activation_prob);
  EXPECT_EQ(q.crash_mode, p.crash_mode);
  EXPECT_EQ(apps::encode_election_args(q), apps::encode_election_args(p));
}

TEST(AppArgs, UnknownAndMissingKeysAreRejected) {
  apps::ElectionParams p;
  EXPECT_THROW(
      apps::parse_election_args(apps::encode_election_args(p) + " bogus=1"),
      ConfigError);
  EXPECT_THROW(apps::parse_election_args("window=1"), ConfigError);
}

TEST(Digest, Sha256KnownVectors) {
  EXPECT_EQ(util::sha256_hex(nullptr, 0),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  const std::string abc = "abc";
  EXPECT_EQ(util::sha256_hex(abc.data(), abc.size()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  // Multi-block (> 64 bytes) input.
  const std::string long_input(1000, 'a');
  EXPECT_EQ(util::sha256_hex(long_input.data(), long_input.size()),
            "41edece42d63e8d9bf515a9ba6932e1c20cbc9f5a5d134645adb5db1b9737ea3");
}

}  // namespace
}  // namespace loki
