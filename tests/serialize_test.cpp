// The versioned wire format (runtime/serialize.*): round-trip fidelity for
// ExperimentParams / ExperimentResult / StudyParams — including NaN/inf
// statistics, empty timelines and long strings — plus envelope hygiene:
// version-mismatch rejection, bad magic, truncated frames, trailing bytes.
// Also the worker frame protocol codecs (Hello/Lease/Result/...) and
// util/pipe_io framing under corruption: truncated, bit-flipped, and
// oversized length prefixes must surface as typed DecodeErrors, never a
// hang, a crash, or a giant allocation.
#include <gtest/gtest.h>

#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fcntl.h>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "apps/election.hpp"
#include "apps/registry.hpp"
#include "campaign/campaign.hpp"
#include "runtime/serialize.hpp"
#include "runtime/worker_stats.hpp"
#include "util/codec.hpp"
#include "util/digest.hpp"
#include "util/error.hpp"
#include "util/pipe_io.hpp"

namespace loki {
namespace {

using codec::DecodeError;
using runtime::ExperimentParams;
using runtime::ExperimentResult;

const std::vector<std::string> kHosts = {"hostA", "hostB", "hostC"};
const std::vector<std::pair<std::string, std::string>> kPlacement = {
    {"black", "hostA"}, {"yellow", "hostB"}, {"green", "hostC"}};

struct RegisterApps {
  RegisterApps() { apps::register_builtin_apps(); }
};
const RegisterApps kRegistered;

ExperimentParams sample_params(std::uint64_t seed = 7) {
  apps::ElectionParams app;
  app.run_for = milliseconds(300);
  app.fault_activation_prob = 0.85;
  auto p = apps::election_experiment(seed, kHosts, kPlacement, app);
  p.nodes[0].fault_spec =
      spec::parse_fault_spec("bfault1 (black:LEAD) always\n", "t");
  p.nodes[0].restart.enabled = true;
  p.nodes[0].restart.placement = runtime::RestartPolicy::Placement::Fixed;
  p.nodes[0].restart.fixed_host = "hostB";
  p.nodes[1].enter_at = milliseconds(40);
  p.nodes[1].enter_host = "hostB";
  p.nodes[1].initial_host.reset();
  p.hosts[0].clock = sim::ClockParams{microseconds(250), 1.00004, 500};
  p.hosts[1].load_duty = 0.35;
  p.host_crashes.push_back({"hostC", milliseconds(120), milliseconds(90)});
  p.design = runtime::TransportDesign::Centralized;
  p.sync.messages_per_pair = 7;
  p.max_drift_ppm = 55.5;
  return p;
}

// --- ExperimentParams --------------------------------------------------------

TEST(WireParams, EncodeDecodeEncodeIsIdentity) {
  const ExperimentParams p = sample_params();
  const auto bytes = runtime::encode_experiment_params(p);
  const ExperimentParams decoded = runtime::decode_experiment_params(bytes);
  EXPECT_EQ(bytes, runtime::encode_experiment_params(decoded));
}

TEST(WireParams, DecodedParamsRebuildAWorkingAppFactory) {
  const auto bytes = runtime::encode_experiment_params(sample_params());
  const ExperimentParams decoded = runtime::decode_experiment_params(bytes);
  ASSERT_EQ(decoded.nodes.size(), 3u);
  EXPECT_EQ(decoded.nodes[0].app_name, "election");
  ASSERT_TRUE(static_cast<bool>(decoded.nodes[0].app_factory));
  EXPECT_NE(decoded.nodes[0].app_factory(), nullptr);
  EXPECT_EQ(decoded.nodes[1].enter_at, milliseconds(40));
  EXPECT_EQ(decoded.hosts[0].clock->granularity_ns, 500);
  EXPECT_EQ(decoded.design, runtime::TransportDesign::Centralized);
}

TEST(WireParams, MissingAppNameIsRejectedAtEncode) {
  ExperimentParams p = sample_params();
  p.nodes[2].app_name.clear();
  EXPECT_THROW(runtime::encode_experiment_params(p), ConfigError);
}

TEST(WireParams, UnregisteredAppNameIsRejectedAtDecode) {
  ExperimentParams p = sample_params();
  p.nodes[0].app_name = "no-such-app";
  const auto bytes = runtime::encode_experiment_params(p);
  EXPECT_THROW(runtime::decode_experiment_params(bytes), ConfigError);
}

TEST(WireParams, CacheKeyIsStableAndSeedSensitive) {
  const std::string a1 = runtime::experiment_cache_key(sample_params(7));
  const std::string a2 = runtime::experiment_cache_key(sample_params(7));
  const std::string b = runtime::experiment_cache_key(sample_params(8));
  EXPECT_EQ(a1.size(), 64u);
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
}

// --- ExperimentResult --------------------------------------------------------

ExperimentResult synthetic_result() {
  ExperimentResult r;
  runtime::LocalTimeline empty_tl;  // a node that recorded nothing
  empty_tl.nickname = "mute";
  empty_tl.initial_host = "hostA";
  r.timelines.push_back(empty_tl);
  r.user_messages.emplace_back();  // "mute" printed nothing

  runtime::LocalTimeline tl;
  tl.nickname = "black";
  tl.initial_host = "hostA";
  tl.machines = {"black", "green"};
  tl.states = {"BEGIN", "LEAD"};
  tl.events = {"START"};
  tl.faults.push_back({"bfault1", "(black:LEAD)", spec::Trigger::Always});
  tl.records.push_back({runtime::RecordType::StateChange, 0, 1, 0, "",
                        LocalTime{123456789}});
  tl.records.push_back({runtime::RecordType::Restart, 0, 0, 0, "hostB",
                        LocalTime{-42}});  // negative local clock reading
  r.timelines.push_back(tl);
  r.user_messages.push_back({"injected bfault1", std::string(100'000, 'x')});

  r.sync_samples.push_back({"hostA", "hostB", LocalTime{1}, LocalTime{2}});
  const std::size_t a = r.add_host("hostA");
  const std::size_t b = r.add_host("hostB");
  const std::size_t c = r.add_host("hostC");
  r.start_local[a] = LocalTime{10};
  r.end_local[a] = LocalTime{20};
  r.truth.state_seq_of("black") = {{SimTime{0}, "BEGIN"}, {SimTime{5}, "LEAD"}};
  r.truth.injections.push_back({"black", "bfault1", SimTime{77}});
  r.truth.crashes_of("black") = {SimTime{99}};
  // NaN/inf statistics must survive bit-exactly.
  r.true_clocks[a] =
      sim::ClockParams{Duration{0}, std::numeric_limits<double>::quiet_NaN(), 1};
  r.true_clocks[b] =
      sim::ClockParams{Duration{0}, std::numeric_limits<double>::infinity(), 1};
  r.true_clocks[c] =
      sim::ClockParams{Duration{0}, -std::numeric_limits<double>::infinity(), 1};
  r.start_phys = SimTime{1000};
  r.end_phys = SimTime{2000};
  r.completed = true;
  r.dropped_notifications = 3;
  r.control_messages = 17;
  r.app_messages = 23;
  return r;
}

TEST(WireResult, SyntheticRoundTripIsByteIdentical) {
  const ExperimentResult r = synthetic_result();
  const auto bytes = runtime::encode_experiment_result(r);
  const ExperimentResult decoded = runtime::decode_experiment_result(bytes);
  EXPECT_EQ(bytes, runtime::encode_experiment_result(decoded));
  // NaN payloads round-trip bit-exactly even though NaN != NaN.
  EXPECT_EQ(std::bit_cast<std::uint64_t>(decoded.true_clock_of("hostA").beta),
            std::bit_cast<std::uint64_t>(r.true_clock_of("hostA").beta));
  EXPECT_EQ(decoded.true_clock_of("hostB").beta,
            std::numeric_limits<double>::infinity());
  ASSERT_NE(decoded.find_user_messages("black"), nullptr);
  EXPECT_EQ(decoded.find_user_messages("black")->at(1).size(), 100'000u);
  EXPECT_TRUE(decoded.timeline_of("mute").records.empty());
  EXPECT_EQ(decoded.find_user_messages("mute"), nullptr) << "empty slot";
  EXPECT_EQ(decoded.hosts, r.hosts) << "host table order is preserved";
}

TEST(WireResult, EmptyResultRoundTrips) {
  const ExperimentResult r{};
  const auto bytes = runtime::encode_experiment_result(r);
  const ExperimentResult decoded = runtime::decode_experiment_result(bytes);
  EXPECT_EQ(bytes, runtime::encode_experiment_result(decoded));
  EXPECT_FALSE(decoded.completed);
}

TEST(WireResult, RealExperimentRoundTrips) {
  const ExperimentResult r = campaign::run_single(sample_params(11));
  const auto bytes = runtime::encode_experiment_result(r);
  const ExperimentResult decoded = runtime::decode_experiment_result(bytes);
  EXPECT_EQ(bytes, runtime::encode_experiment_result(decoded));
  EXPECT_EQ(decoded.timelines.size(), r.timelines.size());
  EXPECT_EQ(decoded.sync_samples.size(), r.sync_samples.size());
}

// --- golden wire fixtures ----------------------------------------------------
// Checked-in v2 byte streams (tests/data/). Any encoder change that alters
// the bytes fails here; the fix is to bump kWireVersion AND regenerate with
//   LOKI_REGEN_WIRE_FIXTURES=1 ./serialize_test
// (never to silently accept drifted bytes under the same version).

std::string fixture_path(const std::string& name) {
  return std::string(LOKI_TEST_DATA_DIR) + "/" + name;
}

std::vector<std::uint8_t> read_fixture(const std::string& name) {
  std::FILE* f = std::fopen(fixture_path(name).c_str(), "rb");
  if (f == nullptr) return {};
  std::vector<std::uint8_t> bytes;
  int c;
  while ((c = std::fgetc(f)) != EOF) bytes.push_back(static_cast<std::uint8_t>(c));
  std::fclose(f);
  return bytes;
}

void write_fixture(const std::string& name, const std::vector<std::uint8_t>& bytes) {
  std::FILE* f = std::fopen(fixture_path(name).c_str(), "wb");
  ASSERT_NE(f, nullptr) << fixture_path(name);
  if (!bytes.empty()) std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
}

/// Compare current bytes against the checked-in fixture, or rewrite the
/// fixture when LOKI_REGEN_WIRE_FIXTURES is set.
void check_golden(const std::string& name, const std::vector<std::uint8_t>& bytes) {
  if (std::getenv("LOKI_REGEN_WIRE_FIXTURES") != nullptr) {
    write_fixture(name, bytes);
    return;
  }
  const std::vector<std::uint8_t> golden = read_fixture(name);
  ASSERT_FALSE(golden.empty())
      << "missing fixture " << fixture_path(name)
      << "; regenerate with LOKI_REGEN_WIRE_FIXTURES=1";
  ASSERT_EQ(bytes.size(), golden.size())
      << name << ": encoded size drifted without a kWireVersion bump";
  EXPECT_EQ(bytes, golden)
      << name << ": wire bytes drifted without a kWireVersion bump";
}

TEST(WireGolden, ResultEnvelopeMatchesCheckedInBytes) {
  const auto bytes = runtime::encode_experiment_result(synthetic_result());
  check_golden("result_v2.bin", bytes);
  // The fixture must also still decode and re-encode identically.
  const auto golden = std::getenv("LOKI_REGEN_WIRE_FIXTURES") != nullptr
                          ? bytes
                          : read_fixture("result_v2.bin");
  const ExperimentResult decoded = runtime::decode_experiment_result(golden);
  EXPECT_EQ(runtime::encode_experiment_result(decoded), golden);
}

TEST(WireGolden, ResultBatchFrameMatchesCheckedInBytes) {
  std::vector<std::uint8_t> batch;
  runtime::begin_result_batch(batch);
  runtime::append_result_ok_entry(batch, 4, synthetic_result());
  runtime::append_result_ok_entry(batch, 6, ExperimentResult{});
  runtime::append_result_error_entry(batch, 8, runtime::WireErrorCategory::Config,
                                     "bad host 'zeppelin'");
  check_golden("result_batch_v2.bin", batch);
  const auto golden = std::getenv("LOKI_REGEN_WIRE_FIXTURES") != nullptr
                          ? batch
                          : read_fixture("result_batch_v2.bin");
  const auto entries = runtime::decode_result_batch_frame(golden);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_TRUE(entries[0].ok);
  EXPECT_EQ(entries[0].index, 4u);
  EXPECT_FALSE(entries[2].ok);
  EXPECT_EQ(entries[2].message, "bad host 'zeppelin'");
}

TEST(WireGolden, ParamsEnvelopeMatchesCheckedInBytes) {
  check_golden("params_v2.bin",
               runtime::encode_experiment_params(sample_params()));
}

// --- StudyParams -------------------------------------------------------------

TEST(WireStudy, MaterializedRoundTripReplaysEveryIndex) {
  runtime::StudyParams study;
  study.name = "wire-study";
  study.experiments = 3;
  study.make_params = [](int k) {
    return sample_params(100 + static_cast<std::uint64_t>(k));
  };

  const auto bytes = runtime::encode_study_params(study);
  const runtime::StudyParams decoded = runtime::decode_study_params(bytes);
  EXPECT_EQ(decoded.name, "wire-study");
  EXPECT_EQ(decoded.experiments, 3);
  for (int k = 0; k < 3; ++k)
    EXPECT_EQ(runtime::encode_experiment_params(decoded.make_params(k)),
              runtime::encode_experiment_params(study.make_params(k)));
  EXPECT_THROW(decoded.make_params(3), ConfigError);
  EXPECT_THROW(decoded.make_params(-1), ConfigError);
}

// --- envelope hygiene --------------------------------------------------------

TEST(WireEnvelope, VersionMismatchIsRejected) {
  auto bytes = runtime::encode_experiment_result(synthetic_result());
  bytes[4] ^= 0xff;  // u16 version lives right after the 4-byte magic
  try {
    runtime::decode_experiment_result(bytes);
    FAIL() << "expected DecodeError";
  } catch (const DecodeError& e) {
    EXPECT_NE(std::string(e.what()).find("version mismatch"), std::string::npos)
        << e.what();
  }
}

TEST(WireEnvelope, BadMagicIsRejected) {
  auto bytes = runtime::encode_experiment_result(synthetic_result());
  bytes[0] = 'X';
  EXPECT_THROW(runtime::decode_experiment_result(bytes), DecodeError);
}

TEST(WireEnvelope, WrongKindIsRejected) {
  const auto bytes = runtime::encode_experiment_result(synthetic_result());
  EXPECT_THROW(runtime::decode_experiment_params(bytes), DecodeError);
}

TEST(WireEnvelope, EveryTruncationIsRejectedNotMisread) {
  const auto full = runtime::encode_experiment_result(synthetic_result());
  // Chop at a spread of prefix lengths (every length would be O(n^2) over
  // a ~100KB message); each must throw DecodeError, never crash or return.
  for (std::size_t len = 0; len < full.size();
       len += 1 + full.size() / 257) {
    const std::vector<std::uint8_t> cut(full.begin(),
                                        full.begin() +
                                            static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(runtime::decode_experiment_result(cut), DecodeError)
        << "prefix length " << len;
  }
}

TEST(WireEnvelope, TrailingGarbageIsRejected) {
  auto bytes = runtime::encode_experiment_result(ExperimentResult{});
  bytes.push_back(0);
  EXPECT_THROW(runtime::decode_experiment_result(bytes), DecodeError);
}

// --- app args + digest -------------------------------------------------------

TEST(AppArgs, ElectionRoundTrips) {
  apps::ElectionParams p;
  p.election_window = milliseconds(12);
  p.fault_activation_prob = 0.3125;
  p.crash_mode = runtime::CrashMode::Silent;
  const apps::ElectionParams q =
      apps::parse_election_args(apps::encode_election_args(p));
  EXPECT_EQ(q.election_window, p.election_window);
  EXPECT_EQ(q.fault_activation_prob, p.fault_activation_prob);
  EXPECT_EQ(q.crash_mode, p.crash_mode);
  EXPECT_EQ(apps::encode_election_args(q), apps::encode_election_args(p));
}

TEST(AppArgs, UnknownAndMissingKeysAreRejected) {
  apps::ElectionParams p;
  EXPECT_THROW(
      apps::parse_election_args(apps::encode_election_args(p) + " bogus=1"),
      ConfigError);
  EXPECT_THROW(apps::parse_election_args("window=1"), ConfigError);
}

// --- worker frame protocol ---------------------------------------------------

TEST(WorkerFrames, HelloCarriesOrOmitsTheStudy) {
  runtime::StudyParams study;
  study.name = "framed";
  study.experiments = 2;
  study.make_params = [](int k) {
    return sample_params(300 + static_cast<std::uint64_t>(k));
  };

  const auto with = runtime::encode_hello_frame(&study);
  EXPECT_EQ(runtime::worker_frame_type(with), runtime::WorkerFrame::Hello);
  const runtime::HelloFrame hello = runtime::decode_hello_frame(with);
  EXPECT_EQ(hello.protocol_version, runtime::kWorkerProtocolVersion);
  EXPECT_EQ(hello.heartbeat_interval_ms, 0u);  // 0 = worker-side default
  ASSERT_TRUE(hello.study.has_value());
  EXPECT_EQ(hello.study->name, "framed");
  EXPECT_EQ(hello.study->experiments, 2);
  for (int k = 0; k < 2; ++k)
    EXPECT_EQ(runtime::encode_experiment_params(hello.study->make_params(k)),
              runtime::encode_experiment_params(study.make_params(k)));

  const auto without = runtime::encode_hello_frame(nullptr);
  EXPECT_FALSE(runtime::decode_hello_frame(without).study.has_value());

  // The coordinator's heartbeat cadence rides inside the Hello.
  const auto paced = runtime::encode_hello_frame(nullptr, 1250);
  EXPECT_EQ(runtime::decode_hello_frame(paced).heartbeat_interval_ms, 1250u);
}

TEST(WorkerFrames, HeartbeatCarriesWorkerStats) {
  runtime::WorkerStatsSnapshot stats;
  stats.record_experiment_us(180.0);
  stats.record_experiment_us(2'500.0);
  stats.record_experiment_us(900'000.0);
  stats.bytes_encoded = 123'456;
  stats.batches_flushed = 7;

  const auto frame = runtime::encode_heartbeat_frame(42, stats);
  EXPECT_EQ(runtime::worker_frame_type(frame), runtime::WorkerFrame::Heartbeat);
  const runtime::HeartbeatFrame back = runtime::decode_heartbeat_frame(frame);
  EXPECT_EQ(back.lease_id, 42u);
  EXPECT_EQ(back.stats, stats);
  EXPECT_EQ(back.stats.experiments_completed, 3u);
  EXPECT_EQ(back.stats.histogram.total_count(), 3u);
}

TEST(WorkerFrames, ScalarFramesRoundTrip) {
  const auto ack = runtime::encode_hello_ack_frame(4242);
  const runtime::HelloAckFrame decoded = runtime::decode_hello_ack_frame(ack);
  EXPECT_EQ(decoded.protocol_version, runtime::kWorkerProtocolVersion);
  EXPECT_EQ(decoded.worker_pid, 4242u);

  const runtime::LeaseFrame lease{7, 10, 20, 3};
  const runtime::LeaseFrame back =
      runtime::decode_lease_frame(runtime::encode_lease_frame(lease));
  EXPECT_EQ(back.id, 7u);
  EXPECT_EQ(back.lo, 10u);
  EXPECT_EQ(back.hi, 20u);
  EXPECT_EQ(back.step, 3u);

  const runtime::HeartbeatFrame bare =
      runtime::decode_heartbeat_frame(runtime::encode_heartbeat_frame(9));
  EXPECT_EQ(bare.lease_id, 9u);
  EXPECT_EQ(bare.stats, runtime::WorkerStatsSnapshot{});
  EXPECT_EQ(
      runtime::decode_lease_done_frame(runtime::encode_lease_done_frame(11)),
      11u);
  EXPECT_EQ(runtime::worker_frame_type(runtime::encode_shutdown_frame()),
            runtime::WorkerFrame::Shutdown);

  const std::vector<std::uint8_t> payload = {1, 2, 3, 250};
  EXPECT_EQ(runtime::decode_ping_frame(runtime::encode_ping_frame(payload)),
            payload);
  EXPECT_EQ(runtime::decode_pong_frame(runtime::encode_pong_frame(payload)),
            payload);
}

TEST(WorkerFrames, ResultFramesRoundTripBothArms) {
  const auto ok =
      runtime::encode_result_ok_frame(5, campaign::run_single(sample_params(13)));
  const runtime::ResultFrame decoded_ok = runtime::decode_result_frame(ok);
  EXPECT_TRUE(decoded_ok.ok);
  EXPECT_EQ(decoded_ok.index, 5u);
  EXPECT_EQ(runtime::encode_result_ok_frame(5, decoded_ok.result), ok);

  const auto err = runtime::encode_result_error_frame(
      8, runtime::WireErrorCategory::Config, "bad host 'zeppelin'");
  const runtime::ResultFrame decoded_err = runtime::decode_result_frame(err);
  EXPECT_FALSE(decoded_err.ok);
  EXPECT_EQ(decoded_err.index, 8u);
  EXPECT_EQ(decoded_err.category, runtime::WireErrorCategory::Config);
  EXPECT_EQ(decoded_err.message, "bad host 'zeppelin'");
}

TEST(WorkerFrames, ZeroCopyResultFrameMatchesAllocatingFlavour) {
  const ExperimentResult r = synthetic_result();
  const auto fresh = runtime::encode_result_ok_frame(5, r);
  std::vector<std::uint8_t> reused = {0xde, 0xad};  // stale bytes get cleared
  runtime::encode_result_ok_frame(5, r, reused);
  EXPECT_EQ(reused, fresh);
  // Re-encoding into the same buffer reuses its capacity: no reallocation
  // once the buffer has seen its largest frame.
  const std::size_t cap = reused.capacity();
  runtime::encode_result_ok_frame(5, r, reused);
  EXPECT_EQ(reused, fresh);
  EXPECT_EQ(reused.capacity(), cap);
}

TEST(WorkerFrames, ResultBatchRoundTripsMixedEntries) {
  std::vector<std::uint8_t> batch;
  runtime::begin_result_batch(batch);
  EXPECT_TRUE(runtime::result_batch_empty(batch));
  EXPECT_EQ(runtime::worker_frame_type(batch), runtime::WorkerFrame::ResultBatch);
  EXPECT_EQ(runtime::result_batch_entry_count(batch), 0u);

  const ExperimentResult r = synthetic_result();
  runtime::append_result_ok_entry(batch, 3, r);
  runtime::append_result_ok_entry(batch, 4, ExperimentResult{});
  runtime::append_result_error_entry(batch, 5, runtime::WireErrorCategory::Logic,
                                     "boom");
  EXPECT_FALSE(runtime::result_batch_empty(batch));
  EXPECT_EQ(runtime::result_batch_entry_count(batch), 3u);

  const std::vector<runtime::ResultFrame> entries =
      runtime::decode_result_batch_frame(batch);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_TRUE(entries[0].ok);
  EXPECT_EQ(entries[0].index, 3u);
  EXPECT_EQ(runtime::encode_experiment_result(entries[0].result),
            runtime::encode_experiment_result(r));
  EXPECT_TRUE(entries[1].ok);
  EXPECT_EQ(entries[1].index, 4u);
  EXPECT_FALSE(entries[1].result.completed);
  EXPECT_FALSE(entries[2].ok);
  EXPECT_EQ(entries[2].index, 5u);
  EXPECT_EQ(entries[2].category, runtime::WireErrorCategory::Logic);
  EXPECT_EQ(entries[2].message, "boom");
}

TEST(WorkerFrames, InternedBatchDecodeMatchesPlainDecode) {
  // Results from one study share their timeline headers, so the interner
  // must hit on every timeline after the first result — and interning must
  // be invisible in the decoded bytes.
  std::vector<std::uint8_t> batch;
  runtime::begin_result_batch(batch);
  std::vector<ExperimentResult> sources;
  for (std::uint32_t k = 0; k < 4; ++k) {
    sources.push_back(campaign::run_single(sample_params(13 + k)));
    runtime::append_result_ok_entry(batch, k, sources.back());
  }

  runtime::ResultInterner interner;
  const std::vector<runtime::ResultFrame> interned =
      runtime::decode_result_batch_frame(batch, &interner);
  const std::vector<runtime::ResultFrame> plain =
      runtime::decode_result_batch_frame(batch);
  ASSERT_EQ(interned.size(), plain.size());
  for (std::size_t k = 0; k < interned.size(); ++k)
    EXPECT_EQ(runtime::encode_experiment_result(interned[k].result),
              runtime::encode_experiment_result(plain[k].result))
        << "entry " << k;

  const std::size_t timelines = sources.front().timelines.size();
  ASSERT_GT(timelines, 0u);
  EXPECT_EQ(interner.header_misses(), timelines);
  EXPECT_EQ(interner.header_hits(), (sources.size() - 1) * timelines);

  // nullptr interner must behave exactly like the plain overload.
  const std::vector<runtime::ResultFrame> null_interned =
      runtime::decode_result_batch_frame(batch, nullptr);
  ASSERT_EQ(null_interned.size(), plain.size());
  for (std::size_t k = 0; k < plain.size(); ++k)
    EXPECT_EQ(runtime::encode_experiment_result(null_interned[k].result),
              runtime::encode_experiment_result(plain[k].result));
}

TEST(WorkerFrames, BeginResultBatchReusesTheBuffer) {
  std::vector<std::uint8_t> batch;
  runtime::begin_result_batch(batch);
  runtime::append_result_ok_entry(batch, 0, synthetic_result());
  const std::size_t cap = batch.capacity();
  runtime::begin_result_batch(batch);
  EXPECT_TRUE(runtime::result_batch_empty(batch));
  EXPECT_EQ(batch.capacity(), cap) << "reset must keep the allocation";
}

TEST(WorkerFrames, MalformedBatchYieldsNoPartialResults) {
  // All-or-nothing decoding is what makes whole-batch requeue safe: a batch
  // whose SECOND entry is damaged must not leak its intact first entry.
  std::vector<std::uint8_t> batch;
  runtime::begin_result_batch(batch);
  runtime::append_result_ok_entry(batch, 0, ExperimentResult{});
  const std::size_t first_end = batch.size();
  runtime::append_result_ok_entry(batch, 1, ExperimentResult{});

  auto corrupt = batch;
  corrupt[first_end] = 0xff;  // second entry's status byte
  EXPECT_THROW(runtime::decode_result_batch_frame(corrupt), DecodeError);
  EXPECT_THROW(runtime::result_batch_entry_count(corrupt), DecodeError);

  auto truncated = batch;
  truncated.resize(truncated.size() - 3);
  EXPECT_THROW(runtime::decode_result_batch_frame(truncated), DecodeError);
  EXPECT_THROW(runtime::result_batch_entry_count(truncated), DecodeError);

  // A Result frame is not a ResultBatch frame.
  const auto single = runtime::encode_result_ok_frame(0, ExperimentResult{});
  EXPECT_THROW(runtime::decode_result_batch_frame(single), DecodeError);
}

TEST(WorkerFrames, ErrorClassificationSurvivesTheWire) {
  EXPECT_EQ(runtime::classify_error(ConfigError("x")),
            runtime::WireErrorCategory::Config);
  EXPECT_EQ(runtime::classify_error(LogicError("x")),
            runtime::WireErrorCategory::Logic);
  EXPECT_EQ(runtime::classify_error(std::runtime_error("x")),
            runtime::WireErrorCategory::Runtime);
  EXPECT_THROW(
      runtime::rethrow_wire_error(runtime::WireErrorCategory::Config, "m"),
      ConfigError);
  EXPECT_THROW(
      runtime::rethrow_wire_error(runtime::WireErrorCategory::Logic, "m"),
      LogicError);
  EXPECT_THROW(
      runtime::rethrow_wire_error(runtime::WireErrorCategory::Runtime, "m"),
      std::runtime_error);
}

TEST(WorkerFrames, MalformedFramesAreRejected) {
  EXPECT_THROW(runtime::worker_frame_type({}), DecodeError);
  EXPECT_THROW(runtime::worker_frame_type({0}), DecodeError);
  EXPECT_THROW(runtime::worker_frame_type({0x7f}), DecodeError);
  // A frame of the wrong type for the decoder at hand.
  EXPECT_THROW(runtime::decode_lease_frame(runtime::encode_heartbeat_frame(1)),
               DecodeError);
  // Truncations of structured frames.
  auto lease = runtime::encode_lease_frame({1, 0, 4, 1});
  lease.resize(lease.size() - 3);
  EXPECT_THROW(runtime::decode_lease_frame(lease), DecodeError);
  auto ok = runtime::encode_result_ok_frame(0, ExperimentResult{});
  ok.resize(ok.size() - 1);
  EXPECT_THROW(runtime::decode_result_frame(ok), DecodeError);
  // Trailing garbage.
  auto heartbeat = runtime::encode_heartbeat_frame(2);
  heartbeat.push_back(0);
  EXPECT_THROW(runtime::decode_heartbeat_frame(heartbeat), DecodeError);
  // A zero lease stride can never round (every index would repeat forever).
  runtime::LeaseFrame zero_step{1, 0, 4, 0};
  EXPECT_THROW(runtime::decode_lease_frame(
                   runtime::encode_lease_frame(zero_step)),
               DecodeError);
}

// --- util/pipe_io framing under corruption -----------------------------------

/// Write raw bytes to a temp file and return a read fd positioned at 0.
/// File-backed (not a pipe) so a decoding bug can only fail, never block.
class RawStream {
 public:
  explicit RawStream(const std::vector<std::uint8_t>& bytes) {
    path_ = testing::TempDir() + "loki-pipeio-" + std::to_string(::getpid()) +
            "-" + std::to_string(counter_++);
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    if (f == nullptr) throw std::runtime_error("RawStream: fopen");
    if (!bytes.empty()) std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    fd_ = ::open(path_.c_str(), O_RDONLY);
  }
  ~RawStream() {
    if (fd_ >= 0) ::close(fd_);
    std::remove(path_.c_str());
  }
  int fd() const { return fd_; }

 private:
  static inline int counter_ = 0;
  std::string path_;
  int fd_{-1};
};

std::vector<std::uint8_t> frame_bytes(const std::vector<std::uint8_t>& payload) {
  // Reuse write_frame itself to produce a well-formed frame on disk.
  const std::string path = testing::TempDir() + "loki-pipeio-mk-" +
                           std::to_string(::getpid());
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0600);
  EXPECT_GE(fd, 0);
  util::write_frame(fd, payload);
  ::close(fd);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::vector<std::uint8_t> bytes;
  int c;
  while ((c = std::fgetc(f)) != EOF) bytes.push_back(static_cast<std::uint8_t>(c));
  std::fclose(f);
  std::remove(path.c_str());
  return bytes;
}

TEST(PipeIoCorruption, WellFormedFrameRoundTrips) {
  const std::vector<std::uint8_t> payload = {9, 8, 7, 6, 5};
  RawStream stream(frame_bytes(payload));
  EXPECT_EQ(util::read_frame(stream.fd()), payload);
  EXPECT_FALSE(util::read_frame(stream.fd()).has_value()) << "clean EOF";
}

TEST(PipeIoCorruption, EmptyPayloadFrameIsValid) {
  RawStream stream(frame_bytes({}));
  const auto frame = util::read_frame(stream.fd());
  ASSERT_TRUE(frame.has_value());
  EXPECT_TRUE(frame->empty());
}

TEST(PipeIoCorruption, TruncatedHeaderIsRejected) {
  for (std::size_t keep : {1u, 2u, 3u}) {
    auto bytes = frame_bytes({1, 2, 3});
    bytes.resize(keep);
    RawStream stream(bytes);
    EXPECT_THROW(util::read_frame(stream.fd()), codec::DecodeError)
        << "header bytes kept: " << keep;
  }
}

TEST(PipeIoCorruption, TruncatedPayloadIsRejected) {
  auto bytes = frame_bytes(std::vector<std::uint8_t>(100, 0xab));
  bytes.resize(bytes.size() - 40);
  RawStream stream(bytes);
  EXPECT_THROW(util::read_frame(stream.fd()), codec::DecodeError);
}

TEST(PipeIoCorruption, BitFlippedLengthIsRejectedNotMisread) {
  // Flipping a high bit of the length prefix turns a 4-byte payload into a
  // claimed ~64MB one; the stream ends long before that, so the reader must
  // reject it instead of blocking or fabricating data.
  auto bytes = frame_bytes({1, 2, 3, 4});
  bytes[3] ^= 0x04;  // length prefix is little-endian bytes [0,4)
  RawStream stream(bytes);
  EXPECT_THROW(util::read_frame(stream.fd()), codec::DecodeError);
}

TEST(PipeIoCorruption, OversizedLengthIsRejectedBeforeAllocating) {
  // Length prefix far beyond kMaxFrameBytes: must throw immediately (no
  // 3GB reserve attempt).
  std::vector<std::uint8_t> bytes = {0xff, 0xff, 0xff, 0xff, 0x00};
  RawStream stream(bytes);
  try {
    util::read_frame(stream.fd());
    FAIL() << "expected DecodeError";
  } catch (const codec::DecodeError& e) {
    EXPECT_NE(std::string(e.what()).find("exceeds limit"), std::string::npos)
        << e.what();
  }
}

TEST(PipeIoCorruption, MidFrameStallIsDetectedNotBlocked) {
  // A peer that freezes after a partial frame (here: header promises 10
  // bytes, only 2 arrive, no EOF) must surface as a typed error within the
  // stall timeout — this is what hung-worker detection rides on.
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::uint8_t partial[] = {10, 0, 0, 0, 0xaa, 0xbb};
  ASSERT_EQ(::write(fds[1], partial, sizeof partial),
            static_cast<ssize_t>(sizeof partial));
  const auto before = std::chrono::steady_clock::now();
  try {
    util::read_frame_deadline(fds[0], std::chrono::milliseconds(150));
    FAIL() << "expected DecodeError";
  } catch (const codec::DecodeError& e) {
    EXPECT_NE(std::string(e.what()).find("stalled"), std::string::npos)
        << e.what();
  }
  EXPECT_GE(std::chrono::steady_clock::now() - before,
            std::chrono::milliseconds(140));
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(PipeIoCorruption, SlowButSteadyFrameIsNotAStall) {
  // The stall deadline slides on progress: a frame trickling in slower
  // than the timeout in total — but never silent that long at once — must
  // still be read whole.
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5, 6};
  const std::vector<std::uint8_t> bytes = frame_bytes(payload);
  std::thread dribbler([&] {
    for (const std::uint8_t b : bytes) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      ASSERT_EQ(::write(fds[1], &b, 1), 1);
    }
    ::close(fds[1]);
  });
  const auto frame = util::read_frame_deadline(fds[0],
                                               std::chrono::milliseconds(120));
  dribbler.join();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(*frame, payload);
  ::close(fds[0]);
}

TEST(PipeIoCorruption, GarbageBetweenFramesIsRejected) {
  auto good = frame_bytes({5, 5, 5});
  std::vector<std::uint8_t> bytes = good;
  bytes.push_back(0x4c);  // one stray byte, then EOF
  RawStream stream(bytes);
  EXPECT_EQ(util::read_frame(stream.fd()), (std::vector<std::uint8_t>{5, 5, 5}));
  EXPECT_THROW(util::read_frame(stream.fd()), codec::DecodeError);
}

// --- campaign journal records -------------------------------------------------

/// A representative journal: header + one of every record type.
std::vector<std::uint8_t> sample_journal() {
  std::vector<std::uint8_t> bytes = runtime::encode_journal_header();
  runtime::JournalEntry begin;
  begin.type = runtime::JournalRecord::CampaignBegin;
  begin.runner_spec = "remote(fake:2)";
  begin.seed = 9000;
  begin.studies = 1;
  runtime::encode_journal_record(begin, bytes);
  runtime::JournalEntry study;
  study.type = runtime::JournalRecord::StudyBegin;
  study.study = 0;
  study.study_name = "demo-coverage";
  study.study_digest = std::string(64, 'a');
  study.experiments = 2;
  runtime::encode_journal_record(study, bytes);
  runtime::JournalEntry done;
  done.type = runtime::JournalRecord::IndexDone;
  done.study = 0;
  done.index = 0;
  done.result_key = std::string(64, 'b');
  runtime::encode_journal_record(done, bytes);
  runtime::JournalEntry end;
  end.type = runtime::JournalRecord::StudyEnd;
  end.study = 0;
  runtime::encode_journal_record(end, bytes);
  runtime::JournalEntry fin;
  fin.type = runtime::JournalRecord::CampaignEnd;
  runtime::encode_journal_record(fin, bytes);
  return bytes;
}

TEST(JournalRecords, RoundTripsEveryRecordType) {
  const std::vector<std::uint8_t> bytes = sample_journal();
  std::size_t offset = runtime::decode_journal_header(bytes.data(), bytes.size());
  std::vector<runtime::JournalEntry> entries;
  while (offset < bytes.size()) {
    std::size_t consumed = 0;
    entries.push_back(runtime::decode_journal_record(
        bytes.data() + offset, bytes.size() - offset, consumed));
    offset += consumed;
  }
  ASSERT_EQ(entries.size(), 5u);
  EXPECT_EQ(entries[0].type, runtime::JournalRecord::CampaignBegin);
  EXPECT_EQ(entries[0].runner_spec, "remote(fake:2)");
  EXPECT_EQ(entries[0].seed, 9000u);
  EXPECT_EQ(entries[0].studies, 1u);
  EXPECT_EQ(entries[1].type, runtime::JournalRecord::StudyBegin);
  EXPECT_EQ(entries[1].study_name, "demo-coverage");
  EXPECT_EQ(entries[1].study_digest, std::string(64, 'a'));
  EXPECT_EQ(entries[1].experiments, 2u);
  EXPECT_EQ(entries[2].type, runtime::JournalRecord::IndexDone);
  EXPECT_EQ(entries[2].index, 0u);
  EXPECT_EQ(entries[2].result_key, std::string(64, 'b'));
  EXPECT_EQ(entries[3].type, runtime::JournalRecord::StudyEnd);
  EXPECT_EQ(entries[4].type, runtime::JournalRecord::CampaignEnd);
}

TEST(JournalRecords, BadHeaderIsRejected) {
  std::vector<std::uint8_t> bytes = runtime::encode_journal_header();
  bytes[0] ^= 0xff;  // magic
  EXPECT_THROW(runtime::decode_journal_header(bytes.data(), bytes.size()),
               codec::DecodeError);
  std::vector<std::uint8_t> versioned = runtime::encode_journal_header();
  versioned[4] ^= 0xff;  // version word
  EXPECT_THROW(
      runtime::decode_journal_header(versioned.data(), versioned.size()),
      codec::DecodeError);
  EXPECT_THROW(runtime::decode_journal_header(bytes.data(), 3),
               codec::DecodeError);
}

// A SIGKILL mid-append leaves a torn tail: every truncation point of the
// final record must decode as "no record here" (DecodeError), never as a
// different record or a crash.
TEST(JournalRecords, EveryTruncationOfTheTailIsRejected) {
  const std::vector<std::uint8_t> bytes = sample_journal();
  const std::size_t header = runtime::decode_journal_header(bytes.data(),
                                                            bytes.size());
  // Find the last record's start by walking the full journal.
  std::size_t offset = header;
  std::size_t last_start = header;
  while (offset < bytes.size()) {
    std::size_t consumed = 0;
    last_start = offset;
    runtime::decode_journal_record(bytes.data() + offset,
                                   bytes.size() - offset, consumed);
    offset += consumed;
  }
  for (std::size_t cut = last_start + 1; cut < bytes.size(); ++cut) {
    std::size_t consumed = 0;
    EXPECT_THROW(runtime::decode_journal_record(bytes.data() + last_start,
                                                cut - last_start, consumed),
                 codec::DecodeError)
        << "cut at " << cut;
  }
}

// Any single bit flip inside a record must fail its checksum (or its
// structural decode) — bit rot cannot silently alter the replay.
TEST(JournalRecords, BitFlipsAreDetected) {
  runtime::JournalEntry done;
  done.type = runtime::JournalRecord::IndexDone;
  done.study = 3;
  done.index = 17;
  done.result_key = std::string(64, 'c');
  std::vector<std::uint8_t> record;
  runtime::encode_journal_record(done, record);
  for (std::size_t byte = 0; byte < record.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> flipped = record;
      flipped[byte] ^= static_cast<std::uint8_t>(1u << bit);
      std::size_t consumed = 0;
      bool rejected = false;
      try {
        const runtime::JournalEntry decoded = runtime::decode_journal_record(
            flipped.data(), flipped.size(), consumed);
        // A flip in the length field can make the record claim more bytes
        // than exist (DecodeError above) — it can never round-trip to a
        // *different* accepted record.
        EXPECT_EQ(decoded.study, done.study);
        EXPECT_EQ(decoded.index, done.index);
        EXPECT_EQ(decoded.result_key, done.result_key);
        ADD_FAILURE() << "flip byte " << byte << " bit " << bit
                      << " silently accepted";
      } catch (const codec::DecodeError&) {
        rejected = true;
      }
      EXPECT_TRUE(rejected) << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(Digest, Sha256KnownVectors) {
  EXPECT_EQ(util::sha256_hex(nullptr, 0),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  const std::string abc = "abc";
  EXPECT_EQ(util::sha256_hex(abc.data(), abc.size()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  // Multi-block (> 64 bytes) input.
  const std::string long_input(1000, 'a');
  EXPECT_EQ(util::sha256_hex(long_input.data(), long_input.size()),
            "41edece42d63e8d9bf515a9ba6932e1c20cbc9f5a5d134645adb5db1b9737ea3");
}

}  // namespace
}  // namespace loki
