#!/usr/bin/env python3
"""loki_lint: static determinism lint for the byte-identity invariant.

Everything the campaign layer promises (serial == threads == procs == remote
byte-identity, exactly-once replay, content-addressed caching) rests on
run_experiment being a pure function of its params. This lint flags the
code patterns that historically break that purity *before* they ship,
instead of waiting for an identity CI job to sample them:

  unordered-iter   iterating an unordered_{map,set,...}: iteration order is
                   hash-seed/pointer dependent, so any loop that feeds
                   emitted, serialized, or ordered output is a hazard
  pointer-key      std::{map,set} (or unordered) keyed on a pointer:
                   ordering/iteration follows allocation addresses
  wall-clock       system_clock / time() / gettimeofday / clock_gettime in
                   src/sim + src/runtime (steady_clock too inside src/sim:
                   the simulator owns ALL time there); results must depend
                   on simulated clocks only
  env-read         getenv/setenv in src/sim + src/runtime: results must not
                   depend on the environment of the host that ran them
  raw-random       rand()/random()/drand48/std::random_device/std::mt19937
                   outside util/rng: all randomness flows through the
                   seeded util::Rng streams or replay breaks
  raw-write        ofstream/fopen/rename inside src/campaign: the crash-
                   safety story (journal replay, cache store ordering)
                   rests on durable files being published temp + fsync +
                   atomic rename via util::atomic_write_file or
                   util::rename_path; anything else can tear on SIGKILL
  bad-allow        a loki-lint allow() with no written reason

Suppressing a finding requires a written justification, on the same line or
the line directly above:

    // loki-lint: allow(unordered-iter, order sorted three lines below)

Usage:
    tools/loki_lint.py [PATHS...]     scan (default: src tools)
    tools/loki_lint.py --self-test    run the golden-fixture suite
    tools/loki_lint.py --list-rules   print the rule table

Exit status: 0 clean, 1 findings (or self-test mismatch), 2 usage error.
No dependencies beyond the standard library; works on a bare checkout.
"""

import argparse
import os
import re
import sys

CXX_EXTENSIONS = (".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h")

# Paths (relative, '/'-normalized) a rule is scoped to. None = everywhere.
SIM_RUNTIME = ("src/sim", "src/runtime")

ALLOW_RE = re.compile(
    r"loki-lint:\s*allow\(\s*([a-z-]+)\s*(?:,\s*([^)]*?)\s*)?\)")

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:multi)?(?:map|set)\s*<")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(")

WALL_CLOCK_PATTERNS = [
    (re.compile(r"\bsystem_clock\b"), "std::chrono::system_clock"),
    (re.compile(r"\bgettimeofday\b"), "gettimeofday"),
    (re.compile(r"\bclock_gettime\b"), "clock_gettime"),
    (re.compile(r"\blocaltime(?:_r)?\b"), "localtime"),
    (re.compile(r"\bgmtime(?:_r)?\b"), "gmtime"),
    (re.compile(r"(?<![\w.:])time\s*\(\s*(?:NULL|nullptr|0|&)"), "time()"),
]
STEADY_CLOCK_RE = re.compile(r"\bsteady_clock\b")

ENV_PATTERNS = [
    (re.compile(r"\b(?:secure_)?getenv\s*\("), "getenv"),
    (re.compile(r"\b(?:un)?setenv\s*\("), "setenv"),
]

RANDOM_PATTERNS = [
    (re.compile(r"(?<![\w.])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"(?<![\w.])random\s*\("), "random()"),
    (re.compile(r"\b[ds]rand48\s*\("), "drand48"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bmt19937(?:_64)?\b"), "std::mt19937"),
    (re.compile(r"\bminstd_rand0?\b"), "std::minstd_rand"),
]

# Writes that can leave a torn or unsynced file behind a crash. Scoped to
# src/campaign, where the durability contract lives: every durable file
# (cache entries, cache.index, anything renamed into place) must go through
# util::atomic_write_file / util::rename_path. The journal's append-only fd
# writer (::open/::write/::fsync in journal.cpp) is deliberately not matched:
# append-only + checksummed records IS its torn-write story.
RAW_WRITE_PATTERNS = [
    (re.compile(r"\bofstream\b"), "std::ofstream"),
    (re.compile(r"\bfopen\s*\("), "fopen"),
    (re.compile(r"\brename\s*\("), "rename"),
]

RULES = {
    "unordered-iter":
        "iteration over an unordered container (hash order is not stable)",
    "pointer-key":
        "container keyed on a pointer (address order is not stable)",
    "wall-clock":
        "wall-clock read inside the deterministic core (src/sim, src/runtime)",
    "env-read":
        "environment read inside the deterministic core (src/sim, src/runtime)",
    "raw-random":
        "randomness not drawn from the seeded util::Rng streams",
    "raw-write":
        "non-atomic file write/rename inside src/campaign (torn on crash)",
    "bad-allow":
        "loki-lint allow() without a written reason",
}


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def render(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_code(lines):
    """Return lines with string/char literals and comments blanked out
    (lengths preserved, so column math stays valid). The allow() markers are
    collected from the raw text before this runs."""
    out = []
    in_block = False
    for raw in lines:
        buf = []
        i = 0
        n = len(raw)
        while i < n:
            c = raw[i]
            if in_block:
                if raw.startswith("*/", i):
                    in_block = False
                    buf.append("  ")
                    i += 2
                else:
                    buf.append(" ")
                    i += 1
            elif raw.startswith("//", i):
                buf.append(" " * (n - i))
                break
            elif raw.startswith("/*", i):
                in_block = True
                buf.append("  ")
                i += 2
            elif c in "\"'":
                quote = c
                buf.append(" ")
                i += 1
                while i < n:
                    if raw[i] == "\\" and i + 1 < n:
                        buf.append("  ")
                        i += 2
                    elif raw[i] == quote:
                        buf.append(" ")
                        i += 1
                        break
                    else:
                        buf.append(" ")
                        i += 1
            else:
                buf.append(c)
                i += 1
        out.append("".join(buf))
    return out


def template_argument_span(text, open_angle):
    """Given text and the index of a '<', return (inner, end_index) of the
    matching '>' at the same nesting depth, or (None, None) if unbalanced
    within this text."""
    depth = 0
    for i in range(open_angle, len(text)):
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return text[open_angle + 1:i], i
    return None, None


def first_template_argument(inner):
    """The key type of a map/set instantiation: `inner` up to the first
    comma at angle/paren depth zero."""
    depth = 0
    for i, c in enumerate(inner):
        if c in "<(":
            depth += 1
        elif c in ">)":
            depth -= 1
        elif c == "," and depth == 0:
            return inner[:i]
    return inner


def collect_allows(lines):
    """allow() markers by the line they shield (their own and the next).
    Returns ({line: {rule: reason}}, [Finding for reasonless allows])."""
    allows = {}
    bad = []
    for lineno, raw in enumerate(lines, start=1):
        for m in ALLOW_RE.finditer(raw):
            rule, reason = m.group(1), (m.group(2) or "").strip()
            if not reason:
                bad.append((lineno, rule))
                continue
            for covered in (lineno, lineno + 1):
                allows.setdefault(covered, {})[rule] = reason
    return allows, bad


def declared_unordered_names(code_lines):
    """Identifier names declared with an unordered container type anywhere
    in this file (member, local, alias target). Heuristic: the identifier
    following the closed template instantiation."""
    names = set()
    text = "\n".join(code_lines)
    for m in UNORDERED_DECL_RE.finditer(text):
        open_angle = text.index("<", m.start())
        _, end = template_argument_span(text, open_angle)
        if end is None:
            continue
        after = text[end + 1:end + 200]
        decl = re.match(r"\s*&?\s*([A-Za-z_]\w*)\s*(?:[;={(,)]|\[)", after)
        if decl:
            names.add(decl.group(1))
    return names


def scan_file(path, rel):
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            raw_lines = f.read().splitlines()
    except OSError as e:
        return [Finding(rel, 0, "io", f"cannot read: {e}")]

    allows, reasonless = collect_allows(raw_lines)
    code = strip_code(raw_lines)
    findings = [
        Finding(rel, lineno, "bad-allow",
                f"allow({rule}) needs a reason: "
                f"// loki-lint: allow({rule}, <why this is safe>)")
        for lineno, rule in reasonless
    ]

    def report(lineno, rule, message):
        if rule in allows.get(lineno, {}):
            return
        findings.append(Finding(rel, lineno, rule, message))

    in_core = rel.startswith(SIM_RUNTIME)
    in_sim = rel.startswith("src/sim")
    in_runtime = rel.startswith("src/runtime")
    in_rng = rel.startswith("src/util/rng")
    in_campaign = rel.startswith("src/campaign")

    unordered_names = declared_unordered_names(code)

    for lineno, line in enumerate(code, start=1):
        # --- unordered-iter --------------------------------------------------
        for m in RANGE_FOR_RE.finditer(line):
            inner, _ = template_argument_span(
                line.replace("(", "<", 1)[m.start():], m.end() - m.start() - 1)
            # Fall back to the rest of the line when the for-header spans
            # lines; the identifier test below keeps this precise enough.
            header = inner if inner is not None else line[m.end():]
            if ":" not in header:
                continue
            range_expr = header.split(":", 1)[1]
            for name in unordered_names:
                if re.search(rf"\b{re.escape(name)}\b", range_expr):
                    report(lineno, "unordered-iter",
                           f"range-for over unordered container '{name}': "
                           "hash iteration order can differ between runs/"
                           "builds; copy-and-sort, or iterate a dense-id "
                           "vector instead")
        for name in unordered_names:
            if re.search(rf"\b{re.escape(name)}\s*\.\s*(?:c?begin|c?end)\s*\(",
                         line):
                report(lineno, "unordered-iter",
                       f"iterator walk over unordered container '{name}': "
                       "hash iteration order can differ between runs/builds")

        # --- pointer-key -----------------------------------------------------
        for m in re.finditer(r"\b(?:unordered_)?(?:multi)?(map|set)\s*<",
                             line):
            open_angle = line.index("<", m.start())
            inner, _ = template_argument_span(line, open_angle)
            if inner is None:
                continue
            key = first_template_argument(inner).strip()
            if key.endswith("*") or re.search(r"\*\s*(?:const)?\s*$", key):
                report(lineno, "pointer-key",
                       f"{m.group(0)}...> keyed on pointer type '{key}': "
                       "ordering follows allocation addresses; key on a "
                       "dense id or name instead")

        # --- wall-clock / env-read (deterministic core only) ----------------
        if in_core:
            for pattern, what in WALL_CLOCK_PATTERNS:
                if pattern.search(line):
                    report(lineno, "wall-clock",
                           f"{what} inside the deterministic core: results "
                           "must depend only on sim::World clocks")
            for pattern, what in ENV_PATTERNS:
                if pattern.search(line):
                    report(lineno, "env-read",
                           f"{what} inside the deterministic core: results "
                           "must not depend on the host environment")
        if in_sim and STEADY_CLOCK_RE.search(line):
            report(lineno, "wall-clock",
                   "steady_clock inside src/sim: the simulator owns all "
                   "time; use sim::World::now()")
        if in_runtime and STEADY_CLOCK_RE.search(line):
            report(lineno, "wall-clock",
                   "steady_clock inside src/runtime: runtime code is "
                   "replayed deterministically; measure latencies in the "
                   "campaign layer and pass them in as values "
                   "(runtime/worker_stats.hpp)")

        # --- raw-write (durable campaign state only) -------------------------
        if in_campaign:
            for pattern, what in RAW_WRITE_PATTERNS:
                if pattern.search(line):
                    report(lineno, "raw-write",
                           f"{what} inside src/campaign: durable state must "
                           "be published via util::atomic_write_file / "
                           "util::rename_path (temp file, fsync, atomic "
                           "rename) so a mid-write crash cannot tear it")

        # --- raw-random ------------------------------------------------------
        if not in_rng:
            for pattern, what in RANDOM_PATTERNS:
                if pattern.search(line):
                    report(lineno, "raw-random",
                           f"{what}: draw from a seeded util::Rng stream "
                           "(world.stream(...)) so replay stays exact")

    return findings


def iter_sources(paths):
    for top in paths:
        if os.path.isfile(top):
            yield top
            continue
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames.sort()
            # The lint's own fixtures are intentionally dirty.
            dirnames[:] = [d for d in dirnames if d != "fixtures"]
            for name in sorted(filenames):
                if name.endswith(CXX_EXTENSIONS):
                    yield os.path.join(dirpath, name)


def scan(paths, root):
    findings = []
    for path in iter_sources(paths):
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        findings.extend(scan_file(path, rel))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def self_test(root):
    """Golden-fixture suite: scan tests/lint/fixtures and compare the
    rendered findings to tests/lint/expected.txt line for line."""
    fixture_dir = os.path.join(root, "tests", "lint", "fixtures")
    expected_path = os.path.join(root, "tests", "lint", "expected.txt")
    if not os.path.isdir(fixture_dir):
        print(f"loki_lint: no fixture dir at {fixture_dir}", file=sys.stderr)
        return 2
    findings = []
    for path in sorted(os.listdir(fixture_dir)):
        if not path.endswith(CXX_EXTENSIONS):
            continue
        full = os.path.join(fixture_dir, path)
        # Fixtures emulate tree paths via their first line:
        #   // lint-fixture-path: src/sim/example.cpp
        with open(full, encoding="utf-8") as f:
            first = f.readline()
        m = re.match(r"//\s*lint-fixture-path:\s*(\S+)", first)
        rel = m.group(1) if m else path
        for finding in scan_file(full, rel):
            findings.append(finding.render())
    findings.sort()
    try:
        with open(expected_path, encoding="utf-8") as f:
            expected = sorted(line.rstrip("\n") for line in f
                              if line.strip() and not line.startswith("#"))
    except OSError as e:
        print(f"loki_lint: cannot read {expected_path}: {e}", file=sys.stderr)
        return 2
    if findings == expected:
        print(f"loki_lint self-test: OK ({len(findings)} golden findings)")
        return 0
    print("loki_lint self-test: MISMATCH", file=sys.stderr)
    for line in sorted(set(expected) - set(findings)):
        print(f"  missing : {line}", file=sys.stderr)
    for line in sorted(set(findings) - set(expected)):
        print(f"  extra   : {line}", file=sys.stderr)
    return 1


def main():
    ap = argparse.ArgumentParser(
        description="static determinism lint (byte-identity hazards)")
    ap.add_argument("paths", nargs="*", default=None,
                    help="files or directories to scan (default: src tools)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the golden-fixture suite and exit")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args()

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

    if args.list_rules:
        for rule, what in sorted(RULES.items()):
            print(f"  {rule:<15} {what}")
        return 0
    if args.self_test:
        return self_test(root)

    paths = args.paths or [os.path.join(root, "src"),
                           os.path.join(root, "tools")]
    for p in paths:
        if not os.path.exists(p):
            print(f"loki_lint: no such path: {p}", file=sys.stderr)
            return 2
    findings = scan(paths, root)
    for f in findings:
        print(f.render())
    if findings:
        print(f"loki_lint: {len(findings)} finding(s). Suppress only with "
              "// loki-lint: allow(<rule>, <reason>).", file=sys.stderr)
        return 1
    print("loki_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
