#!/usr/bin/env python3
"""Compare two google-benchmark JSON outputs and print a delta table.

Usage:
    tools/bench_compare.py BASELINE.json CURRENT.json [--threshold PCT]

Prints one line per benchmark present in CURRENT: the baseline time, the
current time, and the relative delta (negative = faster). Benchmarks missing
from the baseline are listed as NEW. Exits 0 always by default — the table
is informational (CI keeps the JSON as an artifact and shows the trend);
pass --fail-above PCT to turn regressions beyond PCT percent into exit 1.
With --hot REGEX only the named hot benchmarks gate the exit status: the
perf CI job fails on a hot-path regression while everything else stays a
report-only comment in the table (marked "(hot)").
"""

import argparse
import json
import re
import sys


class MalformedBenchmarkJson(Exception):
    """Raised with a one-line, path-prefixed description of what's wrong."""


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except FileNotFoundError:
        return None
    except OSError as e:
        raise MalformedBenchmarkJson(f"{path}: cannot read: {e.strerror}")
    except json.JSONDecodeError as e:
        raise MalformedBenchmarkJson(f"{path}: not valid JSON ({e})")
    if not isinstance(doc, dict) or not isinstance(doc.get("benchmarks"), list):
        raise MalformedBenchmarkJson(
            f"{path}: not google-benchmark output (no 'benchmarks' array; "
            "run the bench binary with --benchmark_out_format=json)")
    out = {}
    for b in doc["benchmarks"]:
        if b.get("run_type") == "aggregate":
            continue
        try:
            out[b["name"]] = (float(b["real_time"]), b.get("time_unit", "ns"))
        except (KeyError, TypeError, ValueError):
            raise MalformedBenchmarkJson(
                f"{path}: benchmark entry missing a usable name/real_time: "
                f"{b!r:.120}")
    return out


UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def to_ns(value, unit):
    return value * UNIT_NS.get(unit, 1.0)


def fmt(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.3g} {unit}"
    return f"{ns:.3g} ns"


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--fail-above", type=float, default=None, metavar="PCT",
                    help="exit 1 if any benchmark regressed by more than PCT%%")
    ap.add_argument("--hot", default=None, metavar="REGEX",
                    help="only benchmarks matching REGEX count toward "
                         "--fail-above; the rest are report-only")
    args = ap.parse_args()
    hot = re.compile(args.hot) if args.hot else None

    try:
        current = load(args.current)
        if current is None:
            print(f"bench_compare: cannot read {args.current}",
                  file=sys.stderr)
            return 1
        baseline = load(args.baseline)
    except MalformedBenchmarkJson as e:
        print(f"bench_compare: {e}", file=sys.stderr)
        return 1
    if baseline is None:
        print(f"bench_compare: no baseline at {args.baseline} — first run?")
        for name, (t, unit) in sorted(current.items()):
            print(f"  NEW       {fmt(to_ns(t, unit)):>12}  {name}")
        return 0

    worst = 0.0
    width = max((len(n) for n in current), default=0)
    print(f"bench_compare: {args.baseline} -> {args.current}")
    print(f"  {'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  delta")
    for name, (t, unit) in sorted(current.items()):
        cur_ns = to_ns(t, unit)
        if name not in baseline:
            print(f"  {name:<{width}}  {'—':>12}  {fmt(cur_ns):>12}  NEW")
            continue
        base_ns = to_ns(*baseline[name])
        delta = (cur_ns - base_ns) / base_ns * 100.0 if base_ns > 0 else 0.0
        gated = hot is None or hot.search(name) is not None
        if gated:
            worst = max(worst, delta)
        sign = "+" if delta >= 0 else ""
        tag = "  (hot)" if hot is not None and gated else ""
        print(f"  {name:<{width}}  {fmt(base_ns):>12}  {fmt(cur_ns):>12}  "
              f"{sign}{delta:.1f}%{tag}")
    for name in sorted(set(baseline) - set(current)):
        print(f"  {name:<{width}}  {fmt(to_ns(*baseline[name])):>12}  "
              f"{'—':>12}  REMOVED")

    if args.fail_above is not None and worst > args.fail_above:
        scope = f" among hot benchmarks ({args.hot})" if args.hot else ""
        print(f"bench_compare: worst regression {worst:.1f}%{scope} exceeds "
              f"--fail-above {args.fail_above}%", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
