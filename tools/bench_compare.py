#!/usr/bin/env python3
"""Compare two google-benchmark JSON outputs and print a delta table.

Usage:
    tools/bench_compare.py BASELINE.json CURRENT.json [--threshold PCT]

Prints one line per benchmark present in CURRENT: the baseline time, the
current time, and the relative delta (negative = faster). Benchmarks missing
from the baseline are listed as NEW. Exits 0 always by default — the table
is informational (CI keeps the JSON as an artifact and shows the trend);
pass --fail-above PCT to turn regressions beyond PCT percent into exit 1.
With --hot REGEX only the named hot benchmarks gate the exit status: the
perf CI job fails on a hot-path regression while everything else stays a
report-only comment in the table (marked "(hot)"). Every '|'-alternative of
the hot pattern must match at least one benchmark in CURRENT — a hot gate
that silently matches nothing (renamed benchmark, binary that failed to
run) is exit 1, not a green check.

`tools/bench_compare.py --self-test` runs the built-in unit tests and
exits nonzero on failure; the perf CI job runs it before trusting the gate.
"""

import argparse
import json
import re
import sys


class MalformedBenchmarkJson(Exception):
    """Raised with a one-line, path-prefixed description of what's wrong."""


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except FileNotFoundError:
        return None
    except OSError as e:
        raise MalformedBenchmarkJson(f"{path}: cannot read: {e.strerror}")
    except json.JSONDecodeError as e:
        raise MalformedBenchmarkJson(f"{path}: not valid JSON ({e})")
    if not isinstance(doc, dict) or not isinstance(doc.get("benchmarks"), list):
        raise MalformedBenchmarkJson(
            f"{path}: not google-benchmark output (no 'benchmarks' array; "
            "run the bench binary with --benchmark_out_format=json)")
    out = {}
    for b in doc["benchmarks"]:
        if b.get("run_type") == "aggregate":
            continue
        try:
            out[b["name"]] = (float(b["real_time"]), b.get("time_unit", "ns"))
        except (KeyError, TypeError, ValueError):
            raise MalformedBenchmarkJson(
                f"{path}: benchmark entry missing a usable name/real_time: "
                f"{b!r:.120}")
    return out


UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def to_ns(value, unit):
    return value * UNIT_NS.get(unit, 1.0)


def fmt(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.3g} {unit}"
    return f"{ns:.3g} ns"


def unmatched_hot_alternatives(pattern, names):
    """The '|'-alternatives of `pattern` that match no name in `names`.

    Splitting is top-level only: a '|' inside parentheses or brackets (or
    escaped) stays part of its alternative.
    """
    alternatives, depth, current = [], 0, ""
    i = 0
    while i < len(pattern):
        ch = pattern[i]
        if ch == "\\" and i + 1 < len(pattern):
            current += pattern[i:i + 2]
            i += 2
            continue
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth = max(0, depth - 1)
        elif ch == "|" and depth == 0:
            alternatives.append(current)
            current = ""
            i += 1
            continue
        current += ch
        i += 1
    alternatives.append(current)
    unmatched = []
    for alt in alternatives:
        alt_re = re.compile(alt)
        if not any(alt_re.search(name) for name in names):
            unmatched.append(alt)
    return unmatched


def main(argv=None):
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--fail-above", type=float, default=None, metavar="PCT",
                    help="exit 1 if any benchmark regressed by more than PCT%%")
    ap.add_argument("--hot", default=None, metavar="REGEX",
                    help="only benchmarks matching REGEX count toward "
                         "--fail-above; the rest are report-only. Exit 1 "
                         "when any '|'-alternative matches nothing")
    args = ap.parse_args(argv)
    hot = re.compile(args.hot) if args.hot else None

    try:
        current = load(args.current)
        if current is None:
            print(f"bench_compare: cannot read {args.current}",
                  file=sys.stderr)
            return 1
        baseline = load(args.baseline)
    except MalformedBenchmarkJson as e:
        print(f"bench_compare: {e}", file=sys.stderr)
        return 1
    if args.hot:
        missing = unmatched_hot_alternatives(args.hot, current)
        if missing:
            for alt in missing:
                print(f"bench_compare: hot pattern '{alt}' matched no "
                      f"benchmark in {args.current} — renamed benchmark or "
                      "a bench binary that never ran?", file=sys.stderr)
            return 1
    if baseline is None:
        print(f"bench_compare: no baseline at {args.baseline} — first run?")
        for name, (t, unit) in sorted(current.items()):
            print(f"  NEW       {fmt(to_ns(t, unit)):>12}  {name}")
        return 0

    worst = 0.0
    width = max((len(n) for n in current), default=0)
    print(f"bench_compare: {args.baseline} -> {args.current}")
    print(f"  {'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  delta")
    for name, (t, unit) in sorted(current.items()):
        cur_ns = to_ns(t, unit)
        if name not in baseline:
            print(f"  {name:<{width}}  {'—':>12}  {fmt(cur_ns):>12}  NEW")
            continue
        base_ns = to_ns(*baseline[name])
        delta = (cur_ns - base_ns) / base_ns * 100.0 if base_ns > 0 else 0.0
        gated = hot is None or hot.search(name) is not None
        if gated:
            worst = max(worst, delta)
        sign = "+" if delta >= 0 else ""
        tag = "  (hot)" if hot is not None and gated else ""
        print(f"  {name:<{width}}  {fmt(base_ns):>12}  {fmt(cur_ns):>12}  "
              f"{sign}{delta:.1f}%{tag}")
    for name in sorted(set(baseline) - set(current)):
        print(f"  {name:<{width}}  {fmt(to_ns(*baseline[name])):>12}  "
              f"{'—':>12}  REMOVED")

    if args.fail_above is not None and worst > args.fail_above:
        scope = f" among hot benchmarks ({args.hot})" if args.hot else ""
        print(f"bench_compare: worst regression {worst:.1f}%{scope} exceeds "
              f"--fail-above {args.fail_above}%", file=sys.stderr)
        return 1
    return 0


def self_test():
    """Unit tests for the compare/gate logic; exit 0 iff all pass."""
    import contextlib
    import io
    import os
    import tempfile

    def doc(**times_ns):
        return {"benchmarks": [
            {"name": n, "real_time": t, "time_unit": "ns"}
            for n, t in times_ns.items()]}

    failures = []

    def check(label, expected_exit, argv_tail, base=None, cur=None,
              raw_cur=None, want_stderr=None):
        with tempfile.TemporaryDirectory() as d:
            base_path = os.path.join(d, "base.json")
            cur_path = os.path.join(d, "cur.json")
            if base is not None:
                with open(base_path, "w") as f:
                    json.dump(base, f)
            with open(cur_path, "w") as f:
                if raw_cur is not None:
                    f.write(raw_cur)
                else:
                    json.dump(cur, f)
            out, err = io.StringIO(), io.StringIO()
            with contextlib.redirect_stdout(out), \
                    contextlib.redirect_stderr(err):
                code = main([base_path, cur_path] + argv_tail)
            if code != expected_exit:
                failures.append(f"{label}: exit {code}, expected "
                                f"{expected_exit}\n{out.getvalue()}"
                                f"{err.getvalue()}")
            elif want_stderr and want_stderr not in err.getvalue():
                failures.append(f"{label}: stderr missing {want_stderr!r}:\n"
                                f"{err.getvalue()}")

    steady = doc(BM_WorkerLoop=100.0, BM_Other=50.0)
    regressed_hot = doc(BM_WorkerLoop=200.0, BM_Other=50.0)
    regressed_cold = doc(BM_WorkerLoop=100.0, BM_Other=500.0)

    check("identical passes", 0, ["--fail-above", "10", "--hot",
          "BM_WorkerLoop"], base=steady, cur=steady)
    check("hot regression fails", 1, ["--fail-above", "10", "--hot",
          "BM_WorkerLoop"], base=steady, cur=regressed_hot)
    check("cold regression is report-only", 0, ["--fail-above", "10",
          "--hot", "BM_WorkerLoop"], base=steady, cur=regressed_cold)
    check("zero-match hot fails naming the pattern", 1,
          ["--fail-above", "10", "--hot", "BM_Vanished"],
          base=steady, cur=steady, want_stderr="BM_Vanished")
    check("one dead alternative of many fails", 1,
          ["--fail-above", "10", "--hot", "BM_WorkerLoop|BM_Vanished"],
          base=steady, cur=steady, want_stderr="BM_Vanished")
    check("all alternatives alive passes", 0,
          ["--fail-above", "10", "--hot", "BM_WorkerLoop|BM_Other"],
          base=steady, cur=steady)
    check("grouped alternation is one alternative", 0,
          ["--fail-above", "10", "--hot", "BM_(WorkerLoop|Other)"],
          base=steady, cur=steady)
    check("zero-match hot fails even without a baseline", 1,
          ["--hot", "BM_Vanished"], base=None, cur=steady,
          want_stderr="BM_Vanished")
    check("missing baseline is a first run", 0, [], base=None, cur=steady)
    check("malformed current fails", 1, [], base=steady,
          raw_cur="not json", want_stderr="not valid JSON")

    split_cases = [
        ("a|b", ["a", "b"]),
        ("a(b|c)d", ["a(b|c)d"]),
        ("a[|]b", ["a[|]b"]),
        (r"a\|b", [r"a\|b"]),
        ("x|y(z|w)|v", ["x", "y(z|w)", "v"]),
    ]
    for pattern, want in split_cases:
        got_unmatched = unmatched_hot_alternatives(pattern, [])
        if got_unmatched != want:
            failures.append(f"split of {pattern!r}: {got_unmatched} != {want}")

    if failures:
        print("bench_compare --self-test FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"bench_compare --self-test: "
          f"{len(split_cases) + 10} checks passed")
    return 0


if __name__ == "__main__":
    if "--self-test" in sys.argv[1:]:
        sys.exit(self_test())
    sys.exit(main())
