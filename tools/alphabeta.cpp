// alphabeta — compute convex-hull clock bounds from a timestamps file (§5.7):
//
//   alphabeta <TimestampsFile> <MachinesFile> <AlphabetaFile> [<MHzFile>]
//
// The reference machine is the first entry of the machines file. The
// optional MHz file records the reference clock rate (fixed 1000 here: the
// simulated clocks are nanosecond-based).
#include <cstdio>

#include "clocksync/projection.hpp"
#include "spec/campaign_files.hpp"
#include "util/text_file.hpp"

int main(int argc, char** argv) {
  using namespace loki;
  if (argc < 4 || argc > 5) {
    std::fprintf(stderr,
                 "usage: alphabeta <TimestampsFile> <MachinesFile> "
                 "<AlphabetaFile> [<MHzFile>]\n");
    return 2;
  }
  try {
    const auto samples =
        clocksync::parse_timestamps(read_file(argv[1]), argv[1]);
    const auto machines = spec::parse_machines_file(read_file(argv[2]), argv[2]);
    if (machines.empty()) {
      std::fprintf(stderr, "alphabeta: machines file is empty\n");
      return 1;
    }
    const auto ab =
        clocksync::compute_alphabeta(samples, machines, machines.front());
    for (const auto& [host, bounds] : ab.bounds) {
      if (!bounds.valid) {
        std::fprintf(stderr,
                     "alphabeta: no valid bounds for host %s (missing or "
                     "inconsistent samples)\n",
                     host.c_str());
        return 1;
      }
    }
    write_file(argv[3], clocksync::serialize_alphabeta(ab));
    if (argc == 5) write_file(argv[4], "1000\n");
    std::printf("alphabeta: %zu machines, reference %s -> %s\n",
                ab.bounds.size(), ab.reference.c_str(), argv[3]);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "alphabeta: %s\n", e.what());
    return 1;
  }
}
