// makeglobal — build the global timeline from local timelines and check
// fault-injection correctness (§5.7):
//
//   makeglobal <AlphabetaFile> <GlobalTimelineFile> <LocalTimelineFile>...
//
// Writes the global timeline and, per local timeline, a
// <LocalTimelineFile>.verdicts fault-injection-results file. Exit status 0
// iff every injection was correct and no once-fault was missed.
#include <cstdio>
#include <vector>

#include "analysis/global_timeline.hpp"
#include "analysis/pipeline.hpp"
#include "analysis/verification.hpp"
#include "util/text_file.hpp"

int main(int argc, char** argv) {
  using namespace loki;
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: makeglobal <AlphabetaFile> <GlobalTimelineFile> "
                 "<LocalTimelineFile>...\n");
    return 2;
  }
  try {
    const auto ab = clocksync::parse_alphabeta(read_file(argv[1]), argv[1]);

    std::vector<runtime::LocalTimeline> timelines;
    for (int i = 3; i < argc; ++i)
      timelines.push_back(runtime::parse_local_timeline(read_file(argv[i]), argv[i]));
    std::vector<const runtime::LocalTimeline*> ptrs;
    for (const auto& tl : timelines) ptrs.push_back(&tl);

    const auto global = analysis::build_global_timeline(ptrs, ab);
    write_file(argv[2], analysis::serialize_global_timeline(global));

    const auto verification = analysis::verify_experiment(ptrs, ab);
    for (int i = 3; i < argc; ++i) {
      // Per-machine slice of the verdicts.
      analysis::VerificationResult slice;
      const std::string nick = timelines[static_cast<std::size_t>(i - 3)].nickname;
      for (const auto& v : verification.verdicts)
        if (v.machine == nick) slice.verdicts.push_back(v);
      for (const auto& m : verification.missed)
        if (m.machine == nick) slice.missed.push_back(m);
      write_file(std::string(argv[i]) + ".verdicts",
                 analysis::serialize_verdicts(slice));
    }

    std::printf("makeglobal: %zu events, %zu injections, experiment %s\n",
                global.events.size(), verification.verdicts.size(),
                verification.accepted ? "SUCCESSFUL" : "DISCARDED");
    return verification.accepted ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "makeglobal: %s\n", e.what());
    return 1;
  }
}
