// lokimeasure — evaluate a predicate over an experiment's timelines (§4.3):
//
//   lokimeasure <AlphabetaFile> <predicate> <start_ms> <end_ms>
//               <LocalTimelineFile>...
//
// Prints total_duration(T), count(U,B) and outcome at the window midpoint
// for the given predicate, e.g.
//   lokimeasure ab.txt '(black, CRASH)' 0 700 exp0.*.timeline
//
// The files are assembled into the same analysis::ExperimentAnalysis the
// campaign facade streams to its MeasureSink, and each quantity is computed
// through a StudyMeasure — the hand-run-by-files path and the in-process
// campaign path share one measure implementation.
#include <cstdio>
#include <utility>
#include <vector>

#include "analysis/global_timeline.hpp"
#include "measure/observation.hpp"
#include "measure/predicate.hpp"
#include "measure/study_measure.hpp"
#include "util/strings.hpp"
#include "util/text_file.hpp"

int main(int argc, char** argv) {
  using namespace loki;
  if (argc < 6) {
    std::fprintf(stderr,
                 "usage: lokimeasure <AlphabetaFile> <predicate> <start_ms> "
                 "<end_ms> <LocalTimelineFile>...\n");
    return 2;
  }
  try {
    const auto ab = clocksync::parse_alphabeta(read_file(argv[1]), argv[1]);
    const auto pred = measure::parse_predicate(argv[2]);
    const auto start_ms = parse_f64(argv[3]);
    const auto end_ms = parse_f64(argv[4]);
    if (!start_ms || !end_ms || *end_ms <= *start_ms) {
      std::fprintf(stderr, "lokimeasure: bad window\n");
      return 2;
    }

    std::vector<runtime::LocalTimeline> timelines;
    for (int i = 5; i < argc; ++i)
      timelines.push_back(runtime::parse_local_timeline(read_file(argv[i]), argv[i]));
    std::vector<const runtime::LocalTimeline*> ptrs;
    for (const auto& tl : timelines) ptrs.push_back(&tl);

    // The analysis shape the measure phase consumes, reconstructed from the
    // on-disk artifacts instead of a live ExperimentResult.
    analysis::ExperimentAnalysis analysis;
    analysis.alphabeta = ab;
    analysis.timeline = analysis::build_global_timeline(ptrs, ab);
    analysis.start_ref = *start_ms * 1e6;
    analysis.end_ref = *end_ms * 1e6;
    analysis.accepted = true;

    const auto evaluate = [&](measure::ObservationFunction obs) {
      measure::StudyMeasure m;
      m.add(measure::subset_default(), pred, std::move(obs));
      return *m.apply(analysis);
    };

    std::printf("predicate: %s\n", pred->to_string().c_str());
    std::printf("total_duration(T) = %.3f ms\n",
                evaluate(measure::obs_total_duration(
                    true, measure::TimeArg::start_exp(),
                    measure::TimeArg::end_exp())));
    std::printf("count(U, B)       = %.0f\n",
                evaluate(measure::obs_count(
                    measure::Edge::Up, measure::Kind::Both,
                    measure::TimeArg::start_exp(),
                    measure::TimeArg::end_exp())));
    std::printf("outcome(mid)      = %.0f\n",
                evaluate(measure::obs_outcome(
                    measure::TimeArg::literal((*end_ms - *start_ms) / 2.0))));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lokimeasure: %s\n", e.what());
    return 1;
  }
}
