// lokimeasure — the measure-phase CLI, four modes:
//
// 1. Evaluate a predicate over on-disk timeline artifacts (§4.3):
//      lokimeasure <AlphabetaFile> <predicate> <start_ms> <end_ms>
//                  <LocalTimelineFile>...
//
// 2. Run the built-in demo campaign (a Chapter-5-style election coverage
//    study) through the campaign facade and print a deterministic analysis
//    report (stdout carries only seed-determined values; cache/runner
//    diagnostics go to stderr so re-runs are byte-comparable):
//      lokimeasure --campaign [--runner serial|threads:N|procs:N]
//                  [--cache DIR] [--experiments N] [--seed S]
//
// 3. Emit the same demo study in the versioned wire format:
//      lokimeasure --emit-study <out.bin> [--experiments N] [--seed S]
//
// 4. Shard worker, two flavours:
//    a. Fixed range: decode an encoded StudyParams, run indices lo, lo+step,
//       ... (< hi), and stream encoded results as length-prefixed frames to
//       stdout — the exec'd counterpart of ProcessPoolRunner's forked
//       shards:
//         lokimeasure --worker <study.bin> <lo> <hi> [step]
//    b. Serve mode: speak the full worker frame protocol (Hello/Lease/
//       Result/..., runtime/serialize.hpp) on stdin/stdout — what
//       RemoteRunner's SubprocessTransport and SshTransport exec. The study
//       normally arrives inside the Hello frame; an optional study file is
//       the fallback for pre-shipped studies:
//         lokimeasure --worker --serve [study.bin]
#include <cstdio>
#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include "analysis/global_timeline.hpp"
#include "apps/election.hpp"
#include "apps/registry.hpp"
#include "campaign/cache.hpp"
#include "campaign/campaign.hpp"
#include "campaign/process_runner.hpp"
#include "campaign/remote_runner.hpp"
#include "campaign/transport.hpp"
#include "measure/observation.hpp"
#include "measure/predicate.hpp"
#include "measure/study_measure.hpp"
#include "runtime/serialize.hpp"
#include "util/strings.hpp"
#include "util/text_file.hpp"

namespace {

using namespace loki;

constexpr const char* kUsage =
    "usage: lokimeasure <AlphabetaFile> <predicate> <start_ms> <end_ms> "
    "<LocalTimelineFile>...\n"
    "       lokimeasure --campaign "
    "[--runner serial|threads:N|procs:N|static-procs:N|remote:HOSTFILE] "
    "[--cache DIR] [--cache-max-bytes B] [--cache-max-entries N]\n"
    "                   [--journal FILE | --resume FILE] [--journal-group N] "
    "[--experiments N] [--seed S] [--status]\n"
    "       lokimeasure --emit-study <out.bin> [--experiments N] [--seed S]\n"
    "       lokimeasure --worker <study.bin> <lo> <hi> [step]\n"
    "       lokimeasure --worker --serve [study.bin]\n";

/// Options shared by the modes that build the demo study.
struct DemoOptions {
  int experiments{12};
  std::uint64_t seed{9000};
};

std::string flag_value(const std::vector<std::string>& args, std::size_t& i,
                       const char* flag) {
  if (++i >= args.size())
    throw ConfigError(std::string(flag) + " needs a value");
  return args[i];
}

/// stoi/stoull with the flag name in the error instead of a bare "stoi".
template <typename Fn>
auto numeric(const char* flag, const std::string& value, Fn convert) {
  try {
    return convert(value);
  } catch (const std::exception&) {
    throw ConfigError(std::string(flag) + " needs a number, got '" + value +
                      "'");
  }
}

int int_arg(const char* flag, const std::string& value) {
  return numeric(flag, value, [](const std::string& v) { return std::stoi(v); });
}

std::uint64_t u64_arg(const char* flag, const std::string& value) {
  return numeric(flag, value,
                 [](const std::string& v) { return std::stoull(v); });
}

/// Consume a demo-study option at args[i] (--experiments | --seed);
/// false when args[i] is something else.
bool parse_demo_option(const std::vector<std::string>& args, std::size_t& i,
                       DemoOptions& opts) {
  if (args[i] == "--experiments") {
    opts.experiments =
        int_arg("--experiments", flag_value(args, i, "--experiments"));
    return true;
  }
  if (args[i] == "--seed") {
    opts.seed = u64_arg("--seed", flag_value(args, i, "--seed"));
    return true;
  }
  return false;
}

/// The demo campaign: black's leader fault with restarts, the §5.8
/// coverage measure. Deterministic in (seed, experiments).
runtime::StudyParams demo_study(std::uint64_t seed, int experiments) {
  runtime::StudyParams study;
  study.name = "demo-coverage";
  study.experiments = experiments;
  study.make_params = [seed](int k) {
    apps::ElectionParams app;
    app.run_for = milliseconds(700);
    app.fault_activation_prob = 0.85;
    auto p = apps::election_experiment(
        seed + static_cast<std::uint64_t>(k),
        {"hostA", "hostB", "hostC"},
        {{"black", "hostA"}, {"yellow", "hostB"}, {"green", "hostC"}}, app);
    for (auto& node : p.nodes) {
      if (node.nickname != "black") continue;
      node.fault_spec =
          spec::parse_fault_spec("bfault1 (black:LEAD) always\n", "demo");
      node.restart.enabled = true;
      node.restart.delay = milliseconds(60);
      node.restart.max_restarts = 2;
    }
    return p;
  };
  return study;
}

measure::StudyMeasure demo_measure() {
  measure::StudyMeasure m;
  m.add(measure::subset_default(), measure::parse_predicate("(black, CRASH)"),
        measure::obs_total_duration(true, measure::TimeArg::start_exp(),
                                    measure::TimeArg::end_exp()));
  m.add(measure::subset_greater(0.0),
        measure::parse_predicate("(black, RESTART_SM)"),
        measure::obs_greater(
            measure::obs_total_duration(true, measure::TimeArg::start_exp(),
                                        measure::TimeArg::end_exp()),
            0.0));
  return m;
}

int run_campaign_mode(const std::vector<std::string>& args) {
  std::string runner_spec = "serial";
  std::string cache_dir;
  std::string journal_path;
  bool resume = false;
  int journal_group = 32;
  campaign::CacheOptions cache_options;
  bool status = false;
  DemoOptions opts;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (parse_demo_option(args, i, opts)) continue;
    if (args[i] == "--runner")
      runner_spec = flag_value(args, i, "--runner");
    else if (args[i] == "--cache")
      cache_dir = flag_value(args, i, "--cache");
    else if (args[i] == "--cache-max-bytes")
      cache_options.max_bytes = u64_arg(
          "--cache-max-bytes", flag_value(args, i, "--cache-max-bytes"));
    else if (args[i] == "--cache-max-entries")
      cache_options.max_entries = u64_arg(
          "--cache-max-entries", flag_value(args, i, "--cache-max-entries"));
    else if (args[i] == "--journal") {
      journal_path = flag_value(args, i, "--journal");
      resume = false;
    } else if (args[i] == "--resume") {
      journal_path = flag_value(args, i, "--resume");
      resume = true;
    } else if (args[i] == "--journal-group")
      journal_group = int_arg("--journal-group",
                              flag_value(args, i, "--journal-group"));
    else if (args[i] == "--status")
      status = true;
    else
      throw ConfigError("unknown --campaign option: " + args[i]);
  }
  if (!journal_path.empty() && cache_dir.empty())
    throw ConfigError(
        "--journal/--resume requires --cache DIR: resume replays journaled "
        "indices from the cache");

  apps::register_builtin_apps();
  const runtime::StudyParams study = demo_study(opts.seed, opts.experiments);

  auto sink = std::make_shared<campaign::MeasureSink>();
  sink->measure(study.name, demo_measure());
  sink->on_analysis([](const campaign::StudyInfo&, int index,
                       const analysis::ExperimentAnalysis& analysis) {
    std::printf("experiment %2d: accepted=%d events=%zu\n", index,
                analysis.accepted ? 1 : 0, analysis.timeline.events.size());
  });

  std::shared_ptr<campaign::Runner> runner =
      campaign::parse_runner_spec(runner_spec);
  CampaignBuilder builder;
  builder.add(study).runner(runner).sink(sink);
  // The live fleet view is stderr-only, like every nondeterministic
  // diagnostic: stdout stays byte-comparable across runs.
  if (status)
    builder.sink(std::make_shared<campaign::StatusSink>(runner, stderr));
  std::shared_ptr<campaign::ResultCache> cache;
  if (!cache_dir.empty()) {
    cache = std::make_shared<campaign::ResultCache>(cache_dir, cache_options);
    builder.cache(cache);
  }
  if (!journal_path.empty()) {
    if (resume)
      builder.resume(journal_path);
    else
      builder.journal(journal_path, opts.seed);
    builder.journal_group(journal_group);
  }
  const Campaign::Summary summary = builder.build().run();

  const auto* stats = sink->find(study.name);
  const auto* values = sink->values(study.name);
  std::printf("study %s: experiments=%d accepted=%d crashed=%zu\n",
              study.name.c_str(), stats->total, stats->accepted,
              values ? values->size() : 0);
  double coverage = 0.0;
  if (values && !values->empty()) {
    for (const double v : *values) coverage += v;
    coverage /= static_cast<double>(values->size());
  }
  std::printf("coverage=%.6f\n", coverage);

  // Diagnostics that legitimately differ between identical runs (timing,
  // cache temperature) go to stderr only.
  std::fprintf(stderr, "runner: %s, wall %.2fs\n", runner_spec.c_str(),
               summary.wall_seconds);
  if (cache)
    std::fprintf(
        stderr,
        "cache: hits=%llu misses=%llu stores=%llu corrupt=%llu "
        "evictions=%llu\n",
        static_cast<unsigned long long>(cache->stats().hits),
        static_cast<unsigned long long>(cache->stats().misses),
        static_cast<unsigned long long>(cache->stats().stores),
        static_cast<unsigned long long>(cache->stats().corrupt),
        static_cast<unsigned long long>(cache->stats().evictions));
  std::fprintf(stderr, "cache_hits=%d of %d\n", summary.cache_hits,
               summary.experiments);
  if (summary.replayed > 0)
    std::fprintf(stderr, "resume: replayed=%d of %d\n", summary.replayed,
                 summary.experiments);
  if (summary.requeue_events > 0 || summary.workers_lost > 0 ||
      summary.reconnects > 0)
    std::fprintf(stderr,
                 "fault recovery: requeue_events=%d requeued_indices=%d "
                 "workers_lost=%d reconnects=%d\n",
                 summary.requeue_events, summary.requeued_indices,
                 summary.workers_lost, summary.reconnects);
  return 0;
}

int run_emit_study_mode(const std::vector<std::string>& args) {
  if (args.empty()) throw ConfigError("--emit-study needs an output path");
  const std::string out_path = args[0];
  DemoOptions opts;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (parse_demo_option(args, i, opts)) continue;
    throw ConfigError("unknown --emit-study option: " + args[i]);
  }
  const std::vector<std::uint8_t> bytes =
      runtime::encode_study_params(demo_study(opts.seed, opts.experiments));
  write_file(out_path,
             std::string_view(reinterpret_cast<const char*>(bytes.data()),
                              bytes.size()));
  std::fprintf(stderr, "wrote %zu bytes (%d experiments) to %s\n",
               bytes.size(), opts.experiments, out_path.c_str());
  return 0;
}

runtime::StudyParams load_study_file(const std::string& path) {
  const std::string content = read_file(path);
  const std::vector<std::uint8_t> bytes(content.begin(), content.end());
  return runtime::decode_study_params(bytes);
}

int run_worker_mode(const std::vector<std::string>& args) {
  apps::register_builtin_apps();

  if (!args.empty() && args[0] == "--serve") {
    if (args.size() > 2)
      throw ConfigError("--worker --serve takes at most one study file");
    std::optional<runtime::StudyParams> fallback;
    if (args.size() == 2) fallback = load_study_file(args[1]);
    campaign::FdFrameChannel channel(STDIN_FILENO, STDOUT_FILENO);
    // stdout carries frames only; everything diagnostic goes to stderr.
    campaign::serve_worker(channel, fallback ? &*fallback : nullptr);
    return 0;
  }

  if (args.size() < 3 || args.size() > 4)
    throw ConfigError("--worker needs <study.bin> <lo> <hi> [step]");
  const runtime::StudyParams study = load_study_file(args[0]);
  const int lo = int_arg("--worker <lo>", args[1]);
  const int hi = int_arg("--worker <hi>", args[2]);
  const int step = args.size() == 4 ? int_arg("--worker <step>", args[3]) : 1;
  if (lo < 0 || hi > study.experiments || lo > hi)
    throw ConfigError("--worker range [" + args[1] + ", " + args[2] +
                      ") outside study of " +
                      std::to_string(study.experiments) + " experiments");
  if (step < 1)
    throw ConfigError("--worker stride must be >= 1, got " + args[3]);
  campaign::run_worker_range(study, lo, hi, step, STDOUT_FILENO);
  return 0;
}

int run_measure_mode(int argc, char** argv) {
  if (argc < 6) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  const auto ab = clocksync::parse_alphabeta(read_file(argv[1]), argv[1]);
  const auto pred = measure::parse_predicate(argv[2]);
  const auto start_ms = parse_f64(argv[3]);
  const auto end_ms = parse_f64(argv[4]);
  if (!start_ms || !end_ms || *end_ms <= *start_ms) {
    std::fprintf(stderr, "lokimeasure: bad window\n");
    return 2;
  }

  std::vector<runtime::LocalTimeline> timelines;
  for (int i = 5; i < argc; ++i)
    timelines.push_back(runtime::parse_local_timeline(read_file(argv[i]), argv[i]));
  std::vector<const runtime::LocalTimeline*> ptrs;
  for (const auto& tl : timelines) ptrs.push_back(&tl);

  // The analysis shape the measure phase consumes, reconstructed from the
  // on-disk artifacts instead of a live ExperimentResult.
  analysis::ExperimentAnalysis analysis;
  analysis.alphabeta = ab;
  analysis.timeline = analysis::build_global_timeline(ptrs, ab);
  analysis.start_ref = *start_ms * 1e6;
  analysis.end_ref = *end_ms * 1e6;
  analysis.accepted = true;

  const auto evaluate = [&](measure::ObservationFunction obs) {
    measure::StudyMeasure m;
    m.add(measure::subset_default(), pred, std::move(obs));
    return *m.apply(analysis);
  };

  std::printf("predicate: %s\n", pred->to_string().c_str());
  std::printf("total_duration(T) = %.3f ms\n",
              evaluate(measure::obs_total_duration(
                  true, measure::TimeArg::start_exp(),
                  measure::TimeArg::end_exp())));
  std::printf("count(U, B)       = %.0f\n",
              evaluate(measure::obs_count(
                  measure::Edge::Up, measure::Kind::Both,
                  measure::TimeArg::start_exp(),
                  measure::TimeArg::end_exp())));
  std::printf("outcome(mid)      = %.0f\n",
              evaluate(measure::obs_outcome(
                  measure::TimeArg::literal((*end_ms - *start_ms) / 2.0))));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  try {
    const std::string mode = argv[1];
    std::vector<std::string> rest;
    for (int i = 2; i < argc; ++i) rest.emplace_back(argv[i]);
    if (mode == "--campaign") return run_campaign_mode(rest);
    if (mode == "--emit-study") return run_emit_study_mode(rest);
    if (mode == "--worker") return run_worker_mode(rest);
    return run_measure_mode(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lokimeasure: %s\n", e.what());
    return 1;
  }
}
