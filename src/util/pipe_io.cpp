#include "util/pipe_io.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

#include <poll.h>
#include <unistd.h>

#include "util/codec.hpp"

namespace loki::util {

namespace {

[[noreturn]] void throw_errno(const char* op) {
  throw std::runtime_error(std::string("pipe_io: ") + op + ": " +
                           std::strerror(errno));
}

/// Read exactly `len` bytes. Returns the number actually read, which is
/// only < len when EOF arrived first.
std::size_t read_upto(int fd, void* data, std::size_t len) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::read(fd, p + got, len - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("read");
    }
    if (n == 0) break;  // EOF
    got += static_cast<std::size_t>(n);
  }
  return got;
}

}  // namespace

void write_exact(int fd, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t written = 0;
  while (written < len) {
    const ssize_t n = ::write(fd, p + written, len - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("write");
    }
    written += static_cast<std::size_t>(n);
  }
}

void write_frame(int fd, const std::vector<std::uint8_t>& payload) {
  if (payload.size() > kMaxFrameBytes)
    throw std::runtime_error("pipe_io: frame exceeds kMaxFrameBytes");
  std::uint8_t header[4];
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i)
    header[i] = static_cast<std::uint8_t>(len >> (8 * i));
  write_exact(fd, header, 4);
  if (!payload.empty()) write_exact(fd, payload.data(), payload.size());
}

std::optional<std::vector<std::uint8_t>> read_frame(int fd) {
  std::uint8_t header[4];
  const std::size_t got = read_upto(fd, header, 4);
  if (got == 0) return std::nullopt;
  if (got < 4)
    throw codec::DecodeError("pipe_io: stream ended inside a frame header");
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i)
    len |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  if (len > kMaxFrameBytes)
    throw codec::DecodeError("pipe_io: frame length " + std::to_string(len) +
                             " exceeds limit (corrupt stream?)");
  std::vector<std::uint8_t> payload(len);
  if (read_upto(fd, payload.data(), len) < len)
    throw codec::DecodeError("pipe_io: stream ended inside a frame payload");
  return payload;
}

namespace {

bool wait_readable_until(int fd, std::chrono::steady_clock::time_point deadline) {
  for (;;) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    const int wait_ms = left.count() <= 0 ? 0 : static_cast<int>(left.count());
    struct pollfd pfd{fd, POLLIN, 0};
    const int n = ::poll(&pfd, 1, wait_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    if (n > 0) return true;  // readable, EOF, or error — a read will resolve it
    if (std::chrono::steady_clock::now() >= deadline) return false;
  }
}

/// read_upto, but every read first waits for readability with a sliding
/// per-progress deadline: a stall is `stall_timeout` with no bytes at all,
/// so a large frame that keeps trickling is never misdiagnosed. Returns
/// bytes read (< len only on EOF); throws DecodeError on a stall.
std::size_t read_upto_stall(int fd, void* data, std::size_t len,
                            std::chrono::milliseconds stall_timeout) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < len) {
    if (!wait_readable_until(fd,
                             std::chrono::steady_clock::now() + stall_timeout))
      throw codec::DecodeError(
          "pipe_io: stream stalled mid-frame (peer frozen?)");
    const ssize_t n = ::read(fd, p + got, len - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("read");
    }
    if (n == 0) break;  // EOF
    got += static_cast<std::size_t>(n);
  }
  return got;
}

}  // namespace

bool wait_readable(int fd, std::chrono::milliseconds timeout) {
  return wait_readable_until(fd, std::chrono::steady_clock::now() + timeout);
}

std::optional<std::vector<std::uint8_t>> read_frame_deadline(
    int fd, std::chrono::milliseconds stall_timeout) {
  std::uint8_t header[4];
  const std::size_t got = read_upto_stall(fd, header, 4, stall_timeout);
  if (got == 0) return std::nullopt;
  if (got < 4)
    throw codec::DecodeError("pipe_io: stream ended inside a frame header");
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i)
    len |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  if (len > kMaxFrameBytes)
    throw codec::DecodeError("pipe_io: frame length " + std::to_string(len) +
                             " exceeds limit (corrupt stream?)");
  std::vector<std::uint8_t> payload(len);
  if (read_upto_stall(fd, payload.data(), len, stall_timeout) < len)
    throw codec::DecodeError("pipe_io: stream ended inside a frame payload");
  return payload;
}

}  // namespace loki::util
