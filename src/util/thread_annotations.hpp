// Clang Thread Safety Analysis annotations (no-ops elsewhere).
//
// These macros let a class *declare* its mutex discipline — which fields a
// mutex guards, which methods require or acquire it — so `clang
// -Wthread-safety` proves at compile time what the identity tests can only
// sample at run time: that no thread touches guarded state outside its
// lock. The strict-warnings (clang) CI job builds with
// -Wthread-safety -Werror, turning a forgotten lock_guard into a build
// break instead of a once-a-month flaky byte-identity failure.
//
// Usage pattern (see campaign/transport.cpp's FakeWorker for a real one):
//
//   struct Queue {
//     util::Mutex mu;                     // annotated wrapper (util/mutex.hpp);
//     std::deque<Frame> frames LOKI_GUARDED_BY(mu);  // libstdc++'s std::mutex
//     void push(Frame f) {                           // carries no attributes
//       util::MutexLock lock(mu);
//       frames.push_back(std::move(f));   // without the lock: build error
//     }
//   };
//
// Only annotate what the analysis can check: fields guarded by a mutex
// member of the same object, and methods whose callers hold (or must not
// hold) that mutex. State handed off between threads by other protocols
// (thread start/join, queue ownership transfer) stays unannotated with a
// comment explaining the protocol — a false GUARDED_BY is worse than none.
//
// The macro set follows the canonical Clang documentation names with a
// LOKI_ prefix so they can never collide with a platform header.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define LOKI_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define LOKI_THREAD_ANNOTATION_(x)  // no-op on GCC/MSVC
#endif

/// The annotated type is a lock (util::Mutex is the one in this tree;
/// libstdc++'s std::mutex carries no such attribute, which is why the
/// wrapper exists).
#define LOKI_CAPABILITY(x) LOKI_THREAD_ANNOTATION_(capability(x))

/// RAII type that acquires a capability for its scope (util::MutexLock).
#define LOKI_SCOPED_CAPABILITY LOKI_THREAD_ANNOTATION_(scoped_lockable)

/// Field access requires holding `x`.
#define LOKI_GUARDED_BY(x) LOKI_THREAD_ANNOTATION_(guarded_by(x))

/// Pointee access requires holding `x` (the pointer itself is free).
#define LOKI_PT_GUARDED_BY(x) LOKI_THREAD_ANNOTATION_(pt_guarded_by(x))

/// The function must be called with `...` held.
#define LOKI_REQUIRES(...) \
  LOKI_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// The function must be called with `...` NOT held (it will lock them).
#define LOKI_EXCLUDES(...) LOKI_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// The function acquires `...` and returns holding them.
#define LOKI_ACQUIRE(...) \
  LOKI_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// The function releases `...` (entered holding them).
#define LOKI_RELEASE(...) \
  LOKI_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `result`.
#define LOKI_TRY_ACQUIRE(result, ...) \
  LOKI_THREAD_ANNOTATION_(try_acquire_capability(result, __VA_ARGS__))

/// Escape hatch: the function's locking cannot be expressed to the
/// analysis (e.g. lock ownership handed across a condition-variable wait).
/// Every use must carry a comment saying why.
#define LOKI_NO_THREAD_SAFETY_ANALYSIS \
  LOKI_THREAD_ANNOTATION_(no_thread_safety_analysis)
