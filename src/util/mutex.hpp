// Annotated mutex primitives for Clang Thread Safety Analysis.
//
// libstdc++'s std::mutex carries no capability attributes, so
// `-Wthread-safety` cannot check code that locks one — GUARDED_BY(mu)
// would even warn that `mu` is not a capability. These thin wrappers give
// the analysis what it needs (util/thread_annotations.hpp) at zero runtime
// cost for Mutex/MutexLock, and let every mutex-owning class in the tree
// state its discipline:
//
//   struct Shared {
//     util::Mutex mu;
//     std::deque<Item> queue LOKI_GUARDED_BY(mu);
//   };
//   ...
//   util::MutexLock lock(shared.mu);   // scoped acquire, analysis-visible
//   shared.queue.push_back(item);      // OK; without the lock: build error
//
// CondVar is std::condition_variable_any waiting on the Mutex itself, so a
// wait site keeps the annotated type end to end. The _any variant costs one
// extra internal mutex per wait — irrelevant on these paths, which wake at
// frame/experiment granularity, not per event.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace loki::util {

/// std::mutex with capability annotations. BasicLockable, so it also
/// serves directly as the lock argument of CondVar's waits.
class LOKI_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() LOKI_ACQUIRE() { mu_.lock(); }
  void unlock() LOKI_RELEASE() { mu_.unlock(); }
  bool try_lock() LOKI_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Scoped lock over Mutex (std::lock_guard with the scoped-capability
/// attribute, plus explicit unlock()/lock() for windows where a wait or a
/// sleep must not hold the mutex).
class LOKI_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) LOKI_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }
  ~MutexLock() LOKI_RELEASE() {
    if (held_) mu_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() LOKI_RELEASE() {
    mu_.unlock();
    held_ = false;
  }
  void lock() LOKI_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

/// Condition variable waiting directly on util::Mutex. Waits release and
/// re-acquire the mutex internally; to the analysis the caller simply keeps
/// holding it, which is also the caller-visible contract.
///
/// Deliberately no predicate overloads: a predicate lambda would run inside
/// std::condition_variable_any where the analysis cannot see the lock, so
/// its guarded reads would each need their own lambda annotation. The
/// explicit loop keeps every guarded access in the annotated scope:
///
///   util::MutexLock lock(mu);
///   while (queue.empty()) cv.wait(mu);
class CondVar {
 public:
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(Mutex& mu) LOKI_REQUIRES(mu) { cv_.wait(mu); }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      LOKI_REQUIRES(mu) {
    return cv_.wait_until(mu, deadline);
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace loki::util
