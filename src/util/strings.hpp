// Small string helpers used by the specification-file parsers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace loki {

/// Strip leading/trailing whitespace.
std::string_view trim(std::string_view s);

/// Split on any run of whitespace; no empty tokens.
std::vector<std::string> split_ws(std::string_view s);

/// Split on a single character delimiter; keeps empty fields.
std::vector<std::string> split_char(std::string_view s, char delim);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Parse helpers returning nullopt on malformed input (never throw).
std::optional<std::int64_t> parse_i64(std::string_view s);
std::optional<std::uint32_t> parse_u32(std::string_view s);
std::optional<double> parse_f64(std::string_view s);

/// Join with a separator, e.g. join({"a","b"}, ", ") == "a, b".
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Uppercase copy (ASCII); used for case-insensitive keywords.
std::string to_upper(std::string_view s);

/// A valid Loki identifier: [A-Za-z_][A-Za-z0-9_.-]*  (state machine
/// nicknames, state names, event names, fault names).
bool is_identifier(std::string_view s);

}  // namespace loki
