// Line-oriented text file reading shared by all the spec parsers.
//
// Every Loki input format (§3.5, §5.6) is line-based: '#' starts a comment,
// blank lines are ignored, and parsers consume logical lines with their
// 1-based source line numbers so ParseError can point at the offender.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace loki {

struct TextLine {
  int number{0};      // 1-based line number in the source
  std::string text;   // trimmed, comment-stripped, non-empty
};

/// Split `content` into logical lines (trimmed, '#' comments removed,
/// blanks dropped) keeping original line numbers.
std::vector<TextLine> logical_lines(std::string_view content);

/// Read a whole file; throws ConfigError if it cannot be opened.
std::string read_file(const std::string& path);

/// Write a whole file; throws ConfigError on failure.
void write_file(const std::string& path, std::string_view content);

}  // namespace loki
