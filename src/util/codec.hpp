// Little-endian binary codec underpinning the wire format (runtime/
// serialize.*) and the framed pipe protocol (util/pipe_io.*).
//
// Writer appends fixed-width little-endian scalars and length-prefixed
// strings to a byte buffer; Reader consumes them and throws DecodeError on
// any truncation or overrun, so a short or corrupted frame can never be
// silently misread as valid data. Floating-point values travel as their
// IEEE-754 bit patterns (std::bit_cast), which round-trips NaN payloads and
// infinities exactly.
#pragma once

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace loki::codec {

/// Malformed wire data: truncation, bad magic, unsupported version,
/// out-of-range enum values. Deliberately distinct from ParseError (user
/// spec files) and ConfigError (experiment configuration).
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { unsigned_le(v, 2); }
  void u32(std::uint32_t v) { unsigned_le(v, 4); }
  void u64(std::uint64_t v) { unsigned_le(v, 8); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view s) {
    u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void bytes(const std::uint8_t* data, std::size_t n) {
    buf_.insert(buf_.end(), data, data + n);
  }

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  void unsigned_le(std::uint64_t v, int width) {
    for (int i = 0; i < width; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  explicit Reader(const std::vector<std::uint8_t>& buf)
      : Reader(buf.data(), buf.size()) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(unsigned_le(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(unsigned_le(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(unsigned_le(4)); }
  std::uint64_t u64() { return unsigned_le(8); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) throw DecodeError("codec: boolean byte out of range");
    return v == 1;
  }
  std::string str() {
    const std::uint64_t n = u64();
    require(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }
  /// Every decoder's final check: trailing garbage is as suspect as
  /// truncation.
  void expect_done() const {
    if (!done())
      throw DecodeError("codec: " + std::to_string(remaining()) +
                        " unconsumed trailing bytes");
  }

 private:
  void require(std::uint64_t n) const {
    if (n > size_ - pos_)
      throw DecodeError("codec: truncated input (need " + std::to_string(n) +
                        " bytes, have " + std::to_string(size_ - pos_) + ")");
  }
  std::uint64_t unsigned_le(int width) {
    require(static_cast<std::uint64_t>(width));
    std::uint64_t v = 0;
    for (int i = 0; i < width; ++i)
      v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    pos_ += static_cast<std::size_t>(width);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_{0};
};

}  // namespace loki::codec
