// Little-endian binary codec underpinning the wire format (runtime/
// serialize.*) and the framed pipe protocol (util/pipe_io.*).
//
// Writer appends fixed-width little-endian scalars and length-prefixed
// strings to a byte buffer; Reader consumes them and throws DecodeError on
// any truncation or overrun, so a short or corrupted frame can never be
// silently misread as valid data. Floating-point values travel as their
// IEEE-754 bit patterns (std::bit_cast), which round-trips NaN payloads and
// infinities exactly.
#pragma once

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace loki::codec {

/// Malformed wire data: truncation, bad magic, unsupported version,
/// out-of-range enum values. Deliberately distinct from ParseError (user
/// spec files) and ConfigError (experiment configuration).
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Writer {
 public:
  /// Owning mode: appends into an internal buffer, retrieved via take().
  Writer() = default;
  /// External-storage mode: appends to `out`, which the caller owns and
  /// which must outlive the Writer. This is the zero-copy framing path —
  /// a frame is encoded straight into a reusable buffer instead of being
  /// built in a temporary vector and copied over. take() is meaningless
  /// here; the caller already holds the bytes.
  explicit Writer(std::vector<std::uint8_t>& out) : ext_(&out) {}

  void u8(std::uint8_t v) { buf().push_back(v); }
  void u16(std::uint16_t v) { unsigned_le(v, 2); }
  void u32(std::uint32_t v) { unsigned_le(v, 4); }
  void u64(std::uint64_t v) { unsigned_le(v, 8); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view s) {
    u64(s.size());
    buf().insert(buf().end(), s.begin(), s.end());
  }
  void bytes(const std::uint8_t* data, std::size_t n) {
    buf().insert(buf().end(), data, data + n);
  }

  /// Current append position — pair with patch_u64 for length prefixes
  /// whose value is only known after the payload is written.
  std::size_t size() const { return buf().size(); }
  /// Overwrite 8 bytes at `pos` (a slot previously written with u64).
  void patch_u64(std::size_t pos, std::uint64_t v) {
    std::vector<std::uint8_t>& b = buf();
    for (int i = 0; i < 8; ++i)
      b[pos + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(v >> (8 * i));
  }

  const std::vector<std::uint8_t>& data() const { return buf(); }
  std::vector<std::uint8_t> take() { return std::move(buf()); }

 private:
  std::vector<std::uint8_t>& buf() { return ext_ != nullptr ? *ext_ : own_; }
  const std::vector<std::uint8_t>& buf() const {
    return ext_ != nullptr ? *ext_ : own_;
  }
  void unsigned_le(std::uint64_t v, int width) {
    // One bulk insert instead of per-byte push_back: the capacity check
    // happens once per scalar, not once per byte — measurable on the
    // result-plane hot path (BM_ResultBatchRoundTrip).
    std::uint8_t le[8];
    for (int i = 0; i < width; ++i)
      le[i] = static_cast<std::uint8_t>(v >> (8 * i));
    std::vector<std::uint8_t>& b = buf();
    b.insert(b.end(), le, le + width);
  }

  std::vector<std::uint8_t> own_;
  std::vector<std::uint8_t>* ext_{nullptr};
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  explicit Reader(const std::vector<std::uint8_t>& buf)
      : Reader(buf.data(), buf.size()) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(unsigned_le(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(unsigned_le(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(unsigned_le(4)); }
  std::uint64_t u64() { return unsigned_le(8); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) throw DecodeError("codec: boolean byte out of range");
    return v == 1;
  }
  std::string str() {
    const std::uint64_t n = u64();
    require(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  /// Advance past `n` bytes without interpreting them — for length-prefixed
  /// blobs handed to a nested decoder. Throws DecodeError on truncation.
  void skip(std::uint64_t n) {
    require(n);
    pos_ += static_cast<std::size_t>(n);
  }
  /// Bytes consumed so far — the offset of the next unread byte.
  std::size_t position() const { return pos_; }
  /// The underlying buffer (offset 0, not the cursor) — lets a caller key
  /// a memo table on the raw byte span between two positions (the decode
  /// interner in runtime/serialize.*).
  const std::uint8_t* data() const { return data_; }

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }
  /// Every decoder's final check: trailing garbage is as suspect as
  /// truncation.
  void expect_done() const {
    if (!done())
      throw DecodeError("codec: " + std::to_string(remaining()) +
                        " unconsumed trailing bytes");
  }

 private:
  void require(std::uint64_t n) const {
    if (n > size_ - pos_)
      throw DecodeError("codec: truncated input (need " + std::to_string(n) +
                        " bytes, have " + std::to_string(size_ - pos_) + ")");
  }
  std::uint64_t unsigned_le(int width) {
    require(static_cast<std::uint64_t>(width));
    const std::uint8_t* p = data_ + pos_;
    std::uint64_t v = 0;
    for (int i = 0; i < width; ++i)
      v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    pos_ += static_cast<std::size_t>(width);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_{0};
};

}  // namespace loki::codec
