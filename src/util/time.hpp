// Time types shared by the whole library.
//
// Two distinct notions of time exist in Loki (thesis §2.5):
//  - physical time `t`: the true, unobservable global time. In this repo the
//    discrete-event simulator owns physical time, so it *is* observable to
//    the harness (which is what lets tests validate the clock-sync bounds).
//  - local clock time `C_i(t) = alpha_i + beta_i * t`: what machine i's
//    hardware clock reads. Local timelines are recorded in local clock time
//    and only converted to a common (reference) timeline offline.
//
// Both are carried as signed 64-bit nanosecond counts. Distinct strong types
// prevent accidentally mixing the two domains.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace loki {

/// Duration in nanoseconds. Used for both physical and local clock spans.
struct Duration {
  std::int64_t ns{0};

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return {ns + o.ns}; }
  constexpr Duration operator-(Duration o) const { return {ns - o.ns}; }
  constexpr Duration operator-() const { return {-ns}; }
  constexpr Duration operator*(std::int64_t k) const { return {ns * k}; }
  constexpr Duration operator/(std::int64_t k) const { return {ns / k}; }
  constexpr Duration& operator+=(Duration o) {
    ns += o.ns;
    return *this;
  }
  constexpr Duration& operator-=(Duration o) {
    ns -= o.ns;
    return *this;
  }

  constexpr double seconds() const { return static_cast<double>(ns) / 1e9; }
  constexpr double millis() const { return static_cast<double>(ns) / 1e6; }
  constexpr double micros() const { return static_cast<double>(ns) / 1e3; }
};

constexpr Duration nanoseconds(std::int64_t v) { return {v}; }
constexpr Duration microseconds(std::int64_t v) { return {v * 1000}; }
constexpr Duration milliseconds(std::int64_t v) { return {v * 1'000'000}; }
constexpr Duration seconds(std::int64_t v) { return {v * 1'000'000'000}; }
/// Duration from a floating-point count of milliseconds (rounded to ns).
Duration millis_f(double ms);
/// Duration from a floating-point count of microseconds (rounded to ns).
Duration micros_f(double us);

/// A point on the simulator's physical timeline.
struct SimTime {
  std::int64_t ns{0};

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(Duration d) const { return {ns + d.ns}; }
  constexpr SimTime operator-(Duration d) const { return {ns - d.ns}; }
  constexpr Duration operator-(SimTime o) const { return {ns - o.ns}; }
  constexpr SimTime& operator+=(Duration d) {
    ns += d.ns;
    return *this;
  }

  static constexpr SimTime zero() { return {0}; }
  static constexpr SimTime max() {
    return {std::numeric_limits<std::int64_t>::max()};
  }
};

/// A point on one machine's local clock. Only comparable with times read
/// from the same clock; cross-machine comparison requires the offline
/// conversion of §2.5.
struct LocalTime {
  std::int64_t ns{0};

  constexpr auto operator<=>(const LocalTime&) const = default;

  constexpr LocalTime operator+(Duration d) const { return {ns + d.ns}; }
  constexpr Duration operator-(LocalTime o) const { return {ns - o.ns}; }
};

/// The local-timeline file format (§3.5.6) stores 64-bit times as two
/// 32-bit halves (<Time.Hi> <Time.Lo>). These helpers implement that split.
struct SplitTime {
  std::uint32_t hi{0};
  std::uint32_t lo{0};
};

SplitTime split_time(std::int64_t ns);
std::int64_t join_time(SplitTime s);

/// Render a duration with an adaptive unit, e.g. "12.5ms"; for logs/benches.
std::string format_duration(Duration d);

}  // namespace loki
