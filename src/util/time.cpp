#include "util/time.hpp"

#include <cmath>
#include <cstdio>

namespace loki {

Duration millis_f(double ms) {
  return {static_cast<std::int64_t>(std::llround(ms * 1e6))};
}

Duration micros_f(double us) {
  return {static_cast<std::int64_t>(std::llround(us * 1e3))};
}

SplitTime split_time(std::int64_t ns) {
  const auto u = static_cast<std::uint64_t>(ns);
  return {static_cast<std::uint32_t>(u >> 32),
          static_cast<std::uint32_t>(u & 0xffffffffu)};
}

std::int64_t join_time(SplitTime s) {
  const std::uint64_t u =
      (static_cast<std::uint64_t>(s.hi) << 32) | static_cast<std::uint64_t>(s.lo);
  return static_cast<std::int64_t>(u);
}

std::string format_duration(Duration d) {
  char buf[64];
  const double ns = static_cast<double>(d.ns);
  if (std::llabs(d.ns) >= 1'000'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fs", ns / 1e9);
  } else if (std::llabs(d.ns) >= 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fms", ns / 1e6);
  } else if (std::llabs(d.ns) >= 1'000) {
    std::snprintf(buf, sizeof buf, "%.3fus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%ldns", static_cast<long>(d.ns));
  }
  return buf;
}

}  // namespace loki
