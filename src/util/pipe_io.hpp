// Framed I/O over POSIX file descriptors — the transport between a campaign
// parent and its shard worker processes (campaign/process_runner.*,
// `lokimeasure --worker`).
//
// A frame is a 4-byte little-endian payload length followed by the payload
// bytes. Reads and writes retry on EINTR and loop over partial transfers;
// a frame truncated by a dying peer surfaces as codec::DecodeError, a clean
// close between frames as std::nullopt.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

namespace loki::util {

/// Upper bound on a single frame (1 GiB). A length prefix beyond this is
/// treated as stream corruption rather than an allocation request.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 30;

/// Write all of `data`, retrying partial writes. Throws std::runtime_error
/// on I/O errors (including EPIPE when the reader is gone).
void write_exact(int fd, const void* data, std::size_t len);

/// Write one length-prefixed frame.
void write_frame(int fd, const std::vector<std::uint8_t>& payload);

/// Read one frame. Returns std::nullopt on a clean EOF before any byte of
/// the frame; throws codec::DecodeError if the stream ends mid-frame and
/// std::runtime_error on I/O errors.
std::optional<std::vector<std::uint8_t>> read_frame(int fd);

/// Wait until `fd` is readable (data or EOF/hangup). Returns false on
/// timeout. Retries EINTR against a fixed deadline so a signal storm cannot
/// extend the wait. Throws std::runtime_error on poll errors. The liveness
/// probe behind hung-worker detection: a worker that stops producing frames
/// turns into a timeout here, not a blocked read.
bool wait_readable(int fd, std::chrono::milliseconds timeout);

/// read_frame with stall detection *inside* the frame: every read is
/// preceded by a readability wait, so a peer that freezes after writing
/// only part of a frame (partial header, partial payload) surfaces as
/// codec::DecodeError once no byte has arrived for `stall_timeout` —
/// instead of blocking forever. The deadline slides on progress, so a big
/// frame that keeps trickling is never misdiagnosed. Same contract
/// otherwise: std::nullopt on clean EOF before the frame, DecodeError on
/// truncation/corruption, std::runtime_error on I/O errors. The
/// hung-worker path of campaign::RemoteRunner depends on this: plain
/// read_frame only times out at frame boundaries.
std::optional<std::vector<std::uint8_t>> read_frame_deadline(
    int fd, std::chrono::milliseconds stall_timeout);

}  // namespace loki::util
