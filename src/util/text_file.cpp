#include "util/text_file.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace loki {

std::vector<TextLine> logical_lines(std::string_view content) {
  std::vector<TextLine> out;
  int number = 0;
  std::size_t pos = 0;
  while (pos <= content.size()) {
    const std::size_t nl = content.find('\n', pos);
    std::string_view raw =
        nl == std::string_view::npos ? content.substr(pos) : content.substr(pos, nl - pos);
    ++number;
    const std::size_t hash = raw.find('#');
    if (hash != std::string_view::npos) raw = raw.substr(0, hash);
    const std::string_view trimmed = trim(raw);
    if (!trimmed.empty()) out.push_back({number, std::string(trimmed)});
    if (nl == std::string_view::npos) break;
    pos = nl + 1;
  }
  return out;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ConfigError("cannot open file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw ConfigError("cannot write file: " + path);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) throw ConfigError("short write to file: " + path);
}

}  // namespace loki
