// SHA-256, for content-addressing cached experiment results.
//
// The cache key of an experiment is the SHA-256 of its encoded
// ExperimentParams (runtime/serialize.*), so the key changes whenever any
// behaviour-affecting parameter — or the wire format version itself —
// changes. A cryptographic digest keeps accidental collisions out of the
// picture even across campaigns of millions of experiments.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace loki::util {

class Sha256 {
 public:
  Sha256();

  void update(const void* data, std::size_t len);
  /// Finalize and return the 32-byte digest. The object must not be updated
  /// afterwards.
  std::array<std::uint8_t, 32> finish();

 private:
  void compress(const std::uint8_t block[64]);

  std::array<std::uint32_t, 8> state_;
  std::uint64_t total_len_{0};
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_{0};
};

/// One-shot digest, rendered as 64 lowercase hex characters.
std::string sha256_hex(const std::vector<std::uint8_t>& bytes);
std::string sha256_hex(const void* data, std::size_t len);

}  // namespace loki::util
