#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace loki {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

Rng Rng::split(std::uint64_t salt) const {
  // Mix the current state with the salt through splitmix64 to derive a
  // decorrelated child seed without advancing this stream.
  std::uint64_t x = s_[0] ^ rotl(s_[2], 17) ^ (salt * 0xda942042e4dd58b5ull);
  return Rng(splitmix64(x));
}

Rng Rng::split(std::string_view name) const { return split(fnv1a(name)); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~0ull - ~0ull % range;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::normal(double mean, double stddev) {
  double u1 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  const double u2 = next_double();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * z;
}

}  // namespace loki
