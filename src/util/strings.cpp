#include "util/strings.hpp"

#include <cctype>
#include <charconv>

namespace loki {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t j = i;
    while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j]))) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::vector<std::string> split_char(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::optional<std::int64_t> parse_i64(std::string_view s) {
  s = trim(s);
  std::int64_t v{};
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<std::uint32_t> parse_u32(std::string_view s) {
  s = trim(s);
  std::uint32_t v{};
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<double> parse_f64(std::string_view s) {
  s = trim(s);
  double v{};
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool is_identifier(std::string_view s) {
  if (s.empty()) return false;
  const auto head = static_cast<unsigned char>(s[0]);
  if (!(std::isalpha(head) || s[0] == '_')) return false;
  for (const char c : s.substr(1)) {
    const auto u = static_cast<unsigned char>(c);
    if (!(std::isalnum(u) || c == '_' || c == '.' || c == '-')) return false;
  }
  return true;
}

}  // namespace loki
