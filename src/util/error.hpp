// Error handling policy for the library.
//
// Specification-file parsing and analysis-phase inputs come from the user,
// so malformed input is reported via ParseError with file/line context.
// Internal invariant violations use LOKI_REQUIRE, which throws LogicError —
// these indicate bugs, and tests assert on them directly.
#pragma once

#include <stdexcept>
#include <string>

namespace loki {

class ParseError : public std::runtime_error {
 public:
  ParseError(std::string file, int line, const std::string& message)
      : std::runtime_error(file + ":" + std::to_string(line) + ": " + message),
        file_(std::move(file)),
        line_(line) {}

  const std::string& file() const { return file_; }
  int line() const { return line_; }

 private:
  std::string file_;
  int line_;
};

class LogicError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Runtime-phase configuration errors (unknown host, duplicate nickname...).
class ConfigError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

#define LOKI_REQUIRE(cond, msg)                                   \
  do {                                                            \
    if (!(cond)) throw ::loki::LogicError(std::string("LOKI_REQUIRE failed: ") + (msg)); \
  } while (0)

}  // namespace loki
