// Deterministic, splittable random number generation.
//
// Every stochastic element of the substrate (network jitter, scheduler
// tie-breaking, application random numbers, fault workloads) draws from an
// Rng seeded from the experiment seed, so a campaign is reproducible
// bit-for-bit from (seed, configuration). std::mt19937_64 is avoided because
// its stream is huge to seed properly; xoshiro256** with a splitmix64 seeder
// is small, fast, and well understood.
#pragma once

#include <cmath>
#include <cstdint>
#include <string_view>

namespace loki {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Derive an independent child stream; `salt` distinguishes siblings.
  /// Used to give each host/process/channel its own stream so that adding a
  /// consumer never perturbs another consumer's draws.
  Rng split(std::uint64_t salt) const;
  Rng split(std::string_view name) const;

  // The draw primitives are inline: network jitter and scheduler decisions
  // draw once per simulated message/work item.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }
  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);
  /// Exponential with the given mean (> 0).
  double exponential(double mean) {
    double u = next_double();
    while (u <= 0.0) u = next_double();
    return -mean * std::log(u);
  }
  /// Standard normal via Box-Muller (no cached spare: keeps state minimal).
  double normal(double mean, double stddev);
  /// Bernoulli with probability p of true.
  bool bernoulli(double p) { return next_double() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace loki
