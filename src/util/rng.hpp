// Deterministic, splittable random number generation.
//
// Every stochastic element of the substrate (network jitter, scheduler
// tie-breaking, application random numbers, fault workloads) draws from an
// Rng seeded from the experiment seed, so a campaign is reproducible
// bit-for-bit from (seed, configuration). std::mt19937_64 is avoided because
// its stream is huge to seed properly; xoshiro256** with a splitmix64 seeder
// is small, fast, and well understood.
#pragma once

#include <cstdint>
#include <string_view>

namespace loki {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Derive an independent child stream; `salt` distinguishes siblings.
  /// Used to give each host/process/channel its own stream so that adding a
  /// consumer never perturbs another consumer's draws.
  Rng split(std::uint64_t salt) const;
  Rng split(std::string_view name) const;

  std::uint64_t next_u64();
  /// Uniform in [0, 1).
  double next_double();
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);
  /// Exponential with the given mean (> 0).
  double exponential(double mean);
  /// Standard normal via Box-Muller (no cached spare: keeps state minimal).
  double normal(double mean, double stddev);
  /// Bernoulli with probability p of true.
  bool bernoulli(double p);

 private:
  std::uint64_t s_[4];
};

}  // namespace loki
