#include "util/atomic_file.hpp"

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace loki::util {

namespace {

[[noreturn]] void fail(const std::string& step,
                       const std::filesystem::path& path, int err) {
  throw WriteError("atomic write: " + step + " '" + path.string() +
                       "' failed: " + std::strerror(err),
                   err);
}

/// Process-wide serial so concurrent writers (threads or CacheSink vs the
/// probe loop) never share a temp name; the pid disambiguates across
/// processes writing into one shared directory.
std::atomic<std::uint64_t> temp_serial{0};

}  // namespace

void atomic_write_file(const std::filesystem::path& path, const void* data,
                       std::size_t size) {
  const std::filesystem::path tmp =
      path.parent_path() /
      (path.filename().string() + ".tmp." + std::to_string(::getpid()) + "." +
       std::to_string(temp_serial.fetch_add(1)));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("open", tmp, errno);

  const auto cleanup = [&] {
    ::close(fd);
    ::unlink(tmp.c_str());
  };

  const std::uint8_t* p = static_cast<const std::uint8_t*>(data);
  std::size_t remaining = size;
  while (remaining > 0) {
    const ssize_t n = ::write(fd, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      cleanup();
      fail("write", tmp, err);
    }
    if (n == 0) {  // a 0-byte write on a regular file is a short-write bug
      cleanup();
      fail("write (short)", tmp, EIO);
    }
    p += n;
    remaining -= static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    cleanup();
    fail("fsync", tmp, err);
  }
  if (::close(fd) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    fail("close", tmp, err);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    fail("rename", path, err);
  }
}

void rename_path(const std::filesystem::path& from,
                 const std::filesystem::path& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) fail("rename", to, errno);
}

}  // namespace loki::util
