// Durable, atomic file publication — the blessed write path for anything
// that must survive a crash (campaign/cache.hpp entries, the campaign
// journal's sibling files, ...).
//
// atomic_write_file() follows the classic crash-safe recipe:
//
//   1. write the bytes to a unique temp name next to the destination,
//   2. fsync the temp file (the data is on stable storage),
//   3. rename() it over the destination (the publish is atomic).
//
// A reader therefore observes either the old content or the complete new
// content — never a torn file — and a crash between any two steps leaves at
// worst a stray temp file. Failures (ENOSPC, EIO, a short write, a missing
// directory) surface as WriteError carrying the errno, so callers can
// distinguish "the disk is full" from "the bytes were bad".
//
// loki_lint.py enforces that code under src/campaign/ publishes files only
// through these helpers: a bare std::ofstream or std::filesystem::rename
// there is exactly the fsync-free torn-write bug this header exists to
// prevent.
#pragma once

#include <cstddef>
#include <filesystem>
#include <stdexcept>
#include <string>

namespace loki::util {

/// A durable-write step failed (open, write, fsync, close, or rename).
/// `error()` is the errno of the failing step (0 when unavailable).
class WriteError : public std::runtime_error {
 public:
  WriteError(const std::string& message, int err)
      : std::runtime_error(message), errno_(err) {}
  int error() const { return errno_; }

 private:
  int errno_;
};

/// Durably publish `size` bytes at `path`: unique temp, write, fsync,
/// atomic rename. Throws WriteError; on failure the temp file is removed
/// and `path` is untouched.
void atomic_write_file(const std::filesystem::path& path, const void* data,
                       std::size_t size);

/// Atomic rename without the durability step — for moving an existing file
/// aside (e.g. quarantining a corrupt cache entry), where the bytes are
/// already on disk and only the name changes. Throws WriteError.
void rename_path(const std::filesystem::path& from,
                 const std::filesystem::path& to);

}  // namespace loki::util
