// Global timeline construction (§2.5, makeglobal of §5.7).
//
// Every record of every local timeline is projected onto the reference
// machine's clock using the convex-hull (alpha, beta) bounds, yielding a
// per-event interval [C_r(T)-, C_r(T)+] that certainly contains the true
// reference time. Events keep their originating host and original local
// stamp: two events stamped by the SAME clock can be ordered exactly by
// their local times, which the correctness check exploits (projection
// bounds are only needed across clocks).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "clocksync/projection.hpp"
#include "runtime/timeline.hpp"

namespace loki::analysis {

enum class EventKind : std::uint8_t { StateChange, FaultInjection, Restart };

struct GlobalEvent {
  std::string machine;
  EventKind kind{EventKind::StateChange};
  std::string state;  // StateChange: state entered
  std::string event;  // StateChange: triggering event
  std::string fault;  // FaultInjection
  std::string host;   // host whose clock stamped the record
  LocalTime local{};  // original local stamp
  clocksync::TimeBounds when;  // on the reference clock

  double mid() const { return when.mid(); }
};

struct GlobalTimeline {
  std::string reference;
  std::vector<GlobalEvent> events;  // sorted by interval midpoint

  /// Events of one machine, in timeline order.
  std::vector<const GlobalEvent*> of_machine(const std::string& machine) const;
};

/// Build the global timeline for one experiment from its local timelines
/// and the alphabeta file. Throws ConfigError if a needed host has no valid
/// clock bounds.
GlobalTimeline build_global_timeline(
    const std::vector<const runtime::LocalTimeline*>& timelines,
    const clocksync::AlphaBetaFile& alphabeta);

/// Serialize for the analysis output file: one event per line,
///   <machine> <kind> <name...> <host> <local_ns> <lo_ns> <hi_ns>
std::string serialize_global_timeline(const GlobalTimeline& t);

}  // namespace loki::analysis
