// The complete analysis phase for one experiment (§2.5, §5.7):
// timestamps -> alphabeta -> global timeline -> correctness verdicts ->
// accept/discard, plus the experiment window on the reference clock needed
// by the measure phase's START_EXP / END_EXP macros.
#pragma once

#include <string>
#include <vector>

#include "analysis/global_timeline.hpp"
#include "analysis/verification.hpp"
#include "runtime/experiment.hpp"

namespace loki::analysis {

struct AnalysisOptions {
  /// Reference machine; empty selects the first host of the experiment
  /// (the thesis picks the fastest machine — a policy choice that only
  /// affects numerics, not validity).
  std::string reference;
  VerificationOptions verification{};
};

struct ExperimentAnalysis {
  clocksync::AlphaBetaFile alphabeta;
  GlobalTimeline timeline;
  VerificationResult verification;
  /// Experiment window on the reference clock (ns).
  double start_ref{0.0};
  double end_ref{0.0};
  /// verification.accepted && the run completed without timing out.
  bool accepted{false};
};

ExperimentAnalysis analyze_experiment(const runtime::ExperimentResult& result,
                                      const AnalysisOptions& options = {});

/// Analyze every experiment of a study; convenience for the measure phase.
std::vector<ExperimentAnalysis> analyze_study(
    const runtime::StudyResult& study, const AnalysisOptions& options = {});

/// The fault-injection results file of §5.7: one verdict per line,
///   <machine> <fault> <injection_index> <correct|incorrect> [<reason>]
/// followed by `missed <machine> <fault>` lines.
std::string serialize_verdicts(const VerificationResult& v);

}  // namespace loki::analysis
