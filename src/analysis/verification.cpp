#include "analysis/verification.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>

#include "util/error.hpp"

namespace loki::analysis {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One machine's stay in one state, with exact (local) and projected
/// (reference) coordinates. exit_* are +inf / absent when the machine held
/// the state to the end of the experiment.
struct Occupancy {
  std::string state;
  std::string entry_host;
  LocalTime entry_local{};
  clocksync::TimeBounds entry;
  bool has_exit{false};
  std::string exit_host;
  LocalTime exit_local{};
  clocksync::TimeBounds exit{kInf, kInf};
};

/// The (interval-valued) instant of one injection.
struct InjectionSite {
  std::string machine;
  std::string fault;
  std::string host;
  LocalTime local{};
  clocksync::TimeBounds when;
};

/// Evaluate a term (machine:state) over the injection interval.
Tri eval_term(const std::map<std::string, std::vector<Occupancy>>& occupancies,
              const std::string& machine, const std::string& state,
              const InjectionSite& site) {
  const auto it = occupancies.find(machine);
  if (it == occupancies.end()) return Tri::False;  // machine never reported

  bool any_possible = false;
  for (const Occupancy& occ : it->second) {
    if (occ.state != state) continue;

    // Same-clock fast path: exact ordering by local time.
    const bool entry_same = occ.entry_host == site.host;
    const bool exit_same = !occ.has_exit || occ.exit_host == site.host;
    if (entry_same && exit_same) {
      const bool inside = occ.entry_local <= site.local &&
                          (!occ.has_exit || site.local < occ.exit_local);
      if (inside) return Tri::True;
      continue;  // exactly outside: cannot overlap
    }

    // Cross-clock: thesis containment rule on projected bounds.
    const double exit_lo = occ.has_exit ? occ.exit.lo : kInf;
    const double exit_hi = occ.has_exit ? occ.exit.hi : kInf;
    const bool certain =
        occ.entry.hi <= site.when.lo && site.when.hi <= exit_lo;
    if (certain) return Tri::True;
    const bool possible = occ.entry.lo <= site.when.hi && site.when.lo <= exit_hi;
    if (possible) any_possible = true;
  }
  return any_possible ? Tri::Unknown : Tri::False;
}

/// Tri-valued expression evaluation by structural recursion over the term
/// list is not possible through the FaultExpr interface (it is Boolean).
/// Instead we flatten the expression to postfix once, pre-evaluate every
/// distinct term to True/False/Unknown over the injection bounds, and
/// enumerate the (at most 2^u for u Unknown terms, capped) assignments —
/// expr is monotone in term values only if negation-free, so with NOT
/// present the two-pass optimistic/pessimistic trick would be unsound.
/// Multiple states of the same machine are naturally exclusive in real
/// views, but an assignment may propose impossible combinations — that
/// only widens Unknown, keeping the check conservative.
Tri eval_expr(const spec::FaultExpr& expr,
              const std::map<std::string, std::vector<Occupancy>>& occupancies,
              const InjectionSite& site) {
  const auto postfix = spec::expr_postfix(expr);

  // Deduplicate (machine,state) pairs, pre-evaluate each, and resolve every
  // postfix Term to its slot in the deduplicated list.
  std::vector<std::pair<std::string, std::string>> uniq;
  std::vector<Tri> values;
  std::vector<std::size_t> term_slot(postfix.size(), 0);
  for (std::size_t p = 0; p < postfix.size(); ++p) {
    if (postfix[p].kind != spec::PostfixOp::Kind::Term) continue;
    const std::pair<std::string, std::string> t{postfix[p].machine,
                                                postfix[p].state};
    const auto it = std::find(uniq.begin(), uniq.end(), t);
    if (it != uniq.end()) {
      term_slot[p] = static_cast<std::size_t>(it - uniq.begin());
      continue;
    }
    term_slot[p] = uniq.size();
    uniq.push_back(t);
    values.push_back(eval_term(occupancies, t.first, t.second, site));
  }

  std::vector<std::size_t> unknown_idx;
  for (std::size_t i = 0; i < values.size(); ++i)
    if (values[i] == Tri::Unknown) unknown_idx.push_back(i);

  // With many unknowns, give up early: Unknown (conservatively incorrect).
  if (unknown_idx.size() > 16) return Tri::Unknown;

  std::vector<char> assignment(values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    assignment[i] = values[i] == Tri::True;
  std::vector<char> stack(postfix.size());

  bool seen_true = false;
  bool seen_false = false;
  const std::size_t combos = std::size_t{1} << unknown_idx.size();
  for (std::size_t mask = 0; mask < combos; ++mask) {
    for (std::size_t b = 0; b < unknown_idx.size(); ++b)
      assignment[unknown_idx[b]] = (mask >> b) & 1;

    char* sp = stack.data();
    for (std::size_t p = 0; p < postfix.size(); ++p) {
      switch (postfix[p].kind) {
        case spec::PostfixOp::Kind::Term:
          *sp++ = assignment[term_slot[p]];
          break;
        case spec::PostfixOp::Kind::And:
          --sp;
          sp[-1] = sp[-1] & sp[0];
          break;
        case spec::PostfixOp::Kind::Or:
          --sp;
          sp[-1] = sp[-1] | sp[0];
          break;
        case spec::PostfixOp::Kind::Not:
          sp[-1] = static_cast<char>(!sp[-1]);
          break;
      }
    }
    if (sp[-1] != 0)
      seen_true = true;
    else
      seen_false = true;
    if (seen_true && seen_false) return Tri::Unknown;
  }
  if (seen_true && !seen_false) return Tri::True;
  if (seen_false && !seen_true) return Tri::False;
  return Tri::Unknown;
}

}  // namespace

std::vector<GlobalEvent> project_timeline(const runtime::LocalTimeline& tl,
                                          const clocksync::AlphaBetaFile& ab) {
  std::string host = tl.initial_host;
  std::vector<GlobalEvent> out;
  for (const runtime::TimelineRecord& r : tl.records) {
    if (r.type == runtime::RecordType::Restart) host = r.host;
    const clocksync::ClockBounds& bounds = ab.for_host(host);
    if (!bounds.valid) throw ConfigError("no valid clock bounds for host " + host);
    GlobalEvent e;
    e.machine = tl.nickname;
    e.host = host;
    e.local = r.time;
    e.when = clocksync::project_to_reference(r.time, bounds);
    switch (r.type) {
      case runtime::RecordType::StateChange:
        e.kind = EventKind::StateChange;
        e.state = tl.state_name(r.state_index);
        e.event = tl.event_name(r.event_index);
        break;
      case runtime::RecordType::FaultInjection:
        e.kind = EventKind::FaultInjection;
        e.fault = tl.fault_name(r.fault_index);
        break;
      case runtime::RecordType::Restart:
        e.kind = EventKind::Restart;
        break;
    }
    out.push_back(std::move(e));
  }
  return out;
}

VerificationResult verify_experiment(
    const std::vector<const runtime::LocalTimeline*>& timelines,
    const clocksync::AlphaBetaFile& alphabeta,
    const VerificationOptions& options) {
  VerificationResult result;

  // Build occupancies and injection sites per machine, in record order.
  std::map<std::string, std::vector<Occupancy>> occupancies;
  std::vector<InjectionSite> sites;
  std::map<std::string, const runtime::LocalTimeline*> by_machine;

  for (const runtime::LocalTimeline* tl : timelines) {
    by_machine[tl->nickname] = tl;
    const auto events = project_timeline(*tl, alphabeta);
    auto& occ_list = occupancies[tl->nickname];
    for (const GlobalEvent& e : events) {
      switch (e.kind) {
        case EventKind::StateChange: {
          if (!occ_list.empty() && !occ_list.back().has_exit) {
            occ_list.back().has_exit = true;
            occ_list.back().exit_host = e.host;
            occ_list.back().exit_local = e.local;
            occ_list.back().exit = e.when;
          }
          Occupancy occ;
          occ.state = e.state;
          occ.entry_host = e.host;
          occ.entry_local = e.local;
          occ.entry = e.when;
          occ_list.push_back(std::move(occ));
          break;
        }
        case EventKind::FaultInjection: {
          sites.push_back(
              InjectionSite{e.machine, e.fault, e.host, e.local, e.when});
          break;
        }
        case EventKind::Restart:
          // State between restart and the first notification is BEGIN; the
          // previous occupancy (normally CRASH) ends here.
          if (!occ_list.empty() && !occ_list.back().has_exit) {
            occ_list.back().has_exit = true;
            occ_list.back().exit_host = e.host;
            occ_list.back().exit_local = e.local;
            occ_list.back().exit = e.when;
          }
          break;
      }
    }
  }

  // Check each injection against its fault expression.
  std::map<std::pair<std::string, std::string>, std::size_t> injection_counts;
  for (const InjectionSite& site : sites) {
    const runtime::LocalTimeline* tl = by_machine.at(site.machine);
    const runtime::TimelineFaultEntry* entry = nullptr;
    for (const auto& f : tl->faults)
      if (f.name == site.fault) entry = &f;
    LOKI_REQUIRE(entry != nullptr, "injection for unknown fault " + site.fault);

    const spec::FaultExprPtr expr =
        spec::parse_fault_expr(entry->expr_text, "fault_list", 0);

    InjectionVerdict verdict;
    verdict.machine = site.machine;
    verdict.fault = site.fault;
    verdict.injection_index = injection_counts[{site.machine, site.fault}]++;

    const Tri value = eval_expr(*expr, occupancies, site);
    verdict.correct = value == Tri::True;
    if (value == Tri::Unknown)
      verdict.reason = "expression not certainly true over the injection bounds";
    else if (value == Tri::False)
      verdict.reason = "expression certainly false at the injection";
    result.verdicts.push_back(std::move(verdict));
    if (value != Tri::True) result.all_injections_correct = false;
  }

  // Missed `once` faults: the expression certainly became true at some
  // sampled instant, yet no injection was recorded.
  if (options.strict_missed_once) {
    for (const runtime::LocalTimeline* tl : timelines) {
      for (const auto& f : tl->faults) {
        if (f.trigger != spec::Trigger::Once) continue;
        if (injection_counts.contains({tl->nickname, f.name})) continue;
        const spec::FaultExprPtr expr =
            spec::parse_fault_expr(f.expr_text, "fault_list", 0);
        // Sample at every machine's state-entry instant (the only times the
        // global state changes).
        bool certainly_true = false;
        for (const auto& [machine, occs] : occupancies) {
          for (const Occupancy& occ : occs) {
            InjectionSite probe;
            probe.machine = tl->nickname;
            probe.host = occ.entry_host;
            probe.local = occ.entry_local;
            probe.when = occ.entry;
            if (eval_expr(*expr, occupancies, probe) == Tri::True) {
              certainly_true = true;
              break;
            }
          }
          if (certainly_true) break;
        }
        if (certainly_true)
          result.missed.push_back(MissedFault{tl->nickname, f.name});
      }
    }
  }

  result.accepted = result.all_injections_correct && result.missed.empty();
  return result;
}

}  // namespace loki::analysis
