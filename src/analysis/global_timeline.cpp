#include "analysis/global_timeline.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace loki::analysis {

std::vector<const GlobalEvent*> GlobalTimeline::of_machine(
    const std::string& machine) const {
  std::vector<const GlobalEvent*> out;
  for (const GlobalEvent& e : events)
    if (e.machine == machine) out.push_back(&e);
  return out;
}

GlobalTimeline build_global_timeline(
    const std::vector<const runtime::LocalTimeline*>& timelines,
    const clocksync::AlphaBetaFile& alphabeta) {
  GlobalTimeline out;
  out.reference = alphabeta.reference;

  for (const runtime::LocalTimeline* tl : timelines) {
    std::string host = tl->initial_host;
    for (std::size_t i = 0; i < tl->records.size(); ++i) {
      const runtime::TimelineRecord& r = tl->records[i];
      if (r.type == runtime::RecordType::Restart) host = r.host;

      const clocksync::ClockBounds& bounds = alphabeta.for_host(host);
      if (!bounds.valid)
        throw ConfigError("no valid clock bounds for host " + host);

      GlobalEvent e;
      e.machine = tl->nickname;
      e.host = host;
      e.local = r.time;
      e.when = clocksync::project_to_reference(r.time, bounds);
      switch (r.type) {
        case runtime::RecordType::StateChange:
          e.kind = EventKind::StateChange;
          e.state = tl->state_name(r.state_index);
          e.event = tl->event_name(r.event_index);
          break;
        case runtime::RecordType::FaultInjection:
          e.kind = EventKind::FaultInjection;
          e.fault = tl->fault_name(r.fault_index);
          break;
        case runtime::RecordType::Restart:
          e.kind = EventKind::Restart;
          break;
      }
      out.events.push_back(std::move(e));
    }
  }

  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const GlobalEvent& a, const GlobalEvent& b) {
                     return a.mid() < b.mid();
                   });
  return out;
}

std::string serialize_global_timeline(const GlobalTimeline& t) {
  std::string out = "reference " + t.reference + "\n";
  char buf[128];
  for (const GlobalEvent& e : t.events) {
    out += e.machine;
    switch (e.kind) {
      case EventKind::StateChange:
        out += " STATE_CHANGE " + e.event + " " + e.state;
        break;
      case EventKind::FaultInjection:
        out += " FAULT_INJECTION " + e.fault;
        break;
      case EventKind::Restart:
        out += " RESTART -";
        break;
    }
    std::snprintf(buf, sizeof buf, " %s %lld %.3f %.3f\n", e.host.c_str(),
                  static_cast<long long>(e.local.ns), e.when.lo, e.when.hi);
    out += buf;
  }
  return out;
}

}  // namespace loki::analysis
