// Post-runtime fault-injection correctness check (§2.5).
//
// For each recorded injection, the fault's Boolean expression must have
// *certainly* held for the whole injection interval:
//
//   a term (m:S) is certainly true iff some occupancy of S by m contains
//   the injection with certainty — upper bound of state entry <= lower
//   bound of injection AND upper bound of injection <= lower bound of
//   state exit (the thesis' containment rule);
//   it is certainly false iff no occupancy can overlap the injection;
//   otherwise it is unknown.
//
// Terms combine with Kleene three-valued AND/OR/NOT; the injection is
// correct only when the whole expression is certainly true — exactly the
// thesis' conservatism ("even if both criteria are not met, it may be that
// the fault was injected correctly, but Loki conservatively assumes not").
//
// Refinement the bounds rule alone would miss: events stamped by the SAME
// host clock order exactly by local time (monotone map to true time), so
// same-clock comparisons are resolved exactly instead of via projection
// bounds. Without this, an injection performed microseconds after its own
// machine's state entry would almost always be rejected, since projection
// intervals are wider than a local handler latency.
//
// An experiment is accepted only if every recorded injection is correct and
// (optionally) no `once` fault whose expression certainly became true
// failed to fire at all.
#pragma once

#include <string>
#include <vector>

#include "analysis/global_timeline.hpp"
#include "spec/fault_spec.hpp"

namespace loki::analysis {

enum class Tri : int { False = 0, Unknown = 1, True = 2 };

struct InjectionVerdict {
  std::string machine;
  std::string fault;
  std::size_t injection_index{0};  // nth injection of this fault (0-based)
  bool correct{false};
  std::string reason;  // human-readable explanation when incorrect
};

struct MissedFault {
  std::string machine;
  std::string fault;
};

struct VerificationOptions {
  /// Reject experiments where a `once` fault never fired although its
  /// expression certainly became true (a missed injection — the failure
  /// mode Figs 3.2/3.3 measure).
  bool strict_missed_once{true};
};

struct VerificationResult {
  std::vector<InjectionVerdict> verdicts;
  std::vector<MissedFault> missed;
  bool all_injections_correct{true};
  /// all_injections_correct && missed is empty (when strict).
  bool accepted{true};
};

VerificationResult verify_experiment(
    const std::vector<const runtime::LocalTimeline*>& timelines,
    const clocksync::AlphaBetaFile& alphabeta,
    const VerificationOptions& options = {});

/// Project one timeline's records in record order (no cross-machine sort).
std::vector<GlobalEvent> project_timeline(const runtime::LocalTimeline& tl,
                                          const clocksync::AlphaBetaFile& ab);

}  // namespace loki::analysis
