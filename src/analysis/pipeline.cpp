#include "analysis/pipeline.hpp"

#include "util/error.hpp"

namespace loki::analysis {

ExperimentAnalysis analyze_experiment(const runtime::ExperimentResult& result,
                                      const AnalysisOptions& options) {
  ExperimentAnalysis out;

  // Host order is the result's host table (params.hosts order).
  const std::vector<std::string>& hosts = result.hosts;
  LOKI_REQUIRE(!hosts.empty(), "experiment result has no hosts");
  const std::string reference =
      options.reference.empty() ? hosts.front() : options.reference;

  out.alphabeta =
      clocksync::compute_alphabeta(result.sync_samples, hosts, reference);

  std::vector<const runtime::LocalTimeline*> timelines;
  timelines.reserve(result.timelines.size());
  for (const runtime::LocalTimeline& tl : result.timelines)
    timelines.push_back(&tl);

  out.timeline = build_global_timeline(timelines, out.alphabeta);
  out.verification =
      verify_experiment(timelines, out.alphabeta, options.verification);

  // The reference machine's own readings ARE the global timeline's axis.
  out.start_ref = static_cast<double>(result.start_local_of(reference).ns);
  out.end_ref = static_cast<double>(result.end_local_of(reference).ns);

  out.accepted = out.verification.accepted && result.completed;
  return out;
}

std::vector<ExperimentAnalysis> analyze_study(const runtime::StudyResult& study,
                                              const AnalysisOptions& options) {
  std::vector<ExperimentAnalysis> out;
  out.reserve(study.experiments.size());
  for (const auto& exp : study.experiments)
    out.push_back(analyze_experiment(exp, options));
  return out;
}

std::string serialize_verdicts(const VerificationResult& v) {
  // Size the buffer once and append in place: the operator+ chains this
  // used to build allocated one temporary string per fragment per verdict.
  std::size_t bytes = 0;
  for (const InjectionVerdict& verdict : v.verdicts)
    bytes += verdict.machine.size() + verdict.fault.size() +
             verdict.reason.size() + 32;
  for (const MissedFault& m : v.missed)
    bytes += m.machine.size() + m.fault.size() + 16;

  std::string out;
  out.reserve(bytes);
  for (const InjectionVerdict& verdict : v.verdicts) {
    out.append(verdict.machine);
    out.push_back(' ');
    out.append(verdict.fault);
    out.push_back(' ');
    out.append(std::to_string(verdict.injection_index));
    out.append(verdict.correct ? " correct" : " incorrect");
    if (!verdict.reason.empty()) {
      out.append(" # ");
      out.append(verdict.reason);
    }
    out.push_back('\n');
  }
  for (const MissedFault& m : v.missed) {
    out.append("missed ");
    out.append(m.machine);
    out.push_back(' ');
    out.append(m.fault);
    out.push_back('\n');
  }
  return out;
}

}  // namespace loki::analysis
