// Synthetic competing load.
//
// The thesis' performance experiments ran the test application alongside
// normal host activity; the injection-accuracy curves only make sense when
// the CPU is contended (otherwise a woken process runs immediately). This
// helper spawns a CPU-bound process that keeps a host's run queue non-empty
// with a configurable duty cycle, in small chunks so preemption boundaries
// stay fine-grained relative to the quantum.
#pragma once

#include "sim/world.hpp"

namespace loki::sim {

struct LoadParams {
  /// Fraction of CPU demanded, in (0, 1].
  double duty{1.0};
  /// Size of each CPU burst the load requests.
  Duration chunk{microseconds(200)};
};

/// Spawn a load process on `host`; it starts consuming CPU immediately and
/// runs forever (until killed or the experiment ends).
ProcessId add_cpu_load(World& world, HostId host, const LoadParams& params = {});

}  // namespace loki::sim
