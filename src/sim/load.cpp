#include "sim/load.hpp"

#include <memory>

#include "util/error.hpp"

namespace loki::sim {
namespace {

struct LoadState {
  LoadParams params;
  Rng rng;
};

void pump(World& world, ProcessId pid, std::shared_ptr<LoadState> st) {
  // Draw each burst length around the nominal chunk so quantum boundaries
  // decorrelate from the load's period — real background work is not
  // metronomic, and the injection-accuracy experiments need the resulting
  // scheduling-phase randomness.
  const auto chunk = Duration{static_cast<std::int64_t>(
      static_cast<double>(st->params.chunk.ns) *
      st->rng.uniform_real(0.5, 1.5))};
  world.post(pid, chunk, [&world, pid, st, chunk] {
    if (st->params.duty >= 1.0) {
      pump(world, pid, st);
      return;
    }
    const double idle_ratio = (1.0 - st->params.duty) / st->params.duty;
    const auto gap = Duration{static_cast<std::int64_t>(
        static_cast<double>(chunk.ns) * idle_ratio)};
    world.timer(pid, gap, Duration{0},
                [&world, pid, st] { pump(world, pid, st); });
  });
}

}  // namespace

ProcessId add_cpu_load(World& world, HostId host, const LoadParams& params) {
  LOKI_REQUIRE(params.duty > 0.0 && params.duty <= 1.0, "load duty in (0,1]");
  LOKI_REQUIRE(params.chunk.ns > 0, "load chunk must be positive");
  const ProcessId pid = world.spawn(host, "load@" + world.host_name(host));
  auto st = std::make_shared<LoadState>(
      LoadState{params, world.stream("load-" + std::to_string(pid.value))});
  pump(world, pid, st);
  return pid;
}

}  // namespace loki::sim
