// Per-host hardware clock model.
//
// Thesis Eqn. (2.1): C_j(t) ~ alpha_ij + beta_ij * C_i(t). Each simulated
// host clock is linear in physical time, C(t) = alpha + beta * t, quantized
// to a configurable granularity — the same linear-drift assumption the
// offline synchronization of §2.5 relies on. Because the substrate knows the
// true (alpha, beta), tests can assert the convex-hull bounds always contain
// them, something the real testbed could never check.
#pragma once

#include <cstdint>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace loki::sim {

struct ClockParams {
  /// Offset at physical time zero.
  Duration alpha{Duration{0}};
  /// Drift rate: local seconds per physical second. Commodity crystal
  /// oscillators are within ~100 ppm, i.e. beta in [0.9999, 1.0001].
  double beta{1.0};
  /// Reading granularity (e.g. 1 for a TSC-backed read, 1000 for a
  /// microsecond clock). Readings are floored to a multiple of this.
  std::int64_t granularity_ns{1};
};

class HostClock {
 public:
  explicit HostClock(ClockParams params) : params_(params) {}

  /// Local clock reading at physical time `t`. Inline — every timeline
  /// record and sync stamp reads the clock.
  LocalTime read(SimTime t) const {
    const double raw = static_cast<double>(params_.alpha.ns) +
                       params_.beta * static_cast<double>(t.ns);
    auto ticks = static_cast<std::int64_t>(__builtin_floor(raw));
    const std::int64_t g = params_.granularity_ns;
    if (g > 1) {
      // Floor to a granularity multiple with one division; a negative
      // remainder needs one correction. The default microsecond
      // granularity takes a dedicated branch so the compiler strength-
      // reduces the division to a multiply.
      std::int64_t rem = g == 1000 ? ticks % 1000 : ticks % g;
      if (rem < 0) rem += g;
      ticks -= rem;
    }
    return LocalTime{ticks};
  }

  /// Physical time at which this clock reads `local` (inverse of read(),
  /// ignoring granularity). Used by the substrate only, never by the
  /// runtime under test.
  SimTime to_physical(LocalTime local) const;

  const ClockParams& params() const { return params_; }

  /// Draw plausible clock parameters: offset up to +-`max_offset`, drift
  /// within +-`max_drift_ppm` parts per million.
  static ClockParams random_params(Rng& rng, Duration max_offset,
                                   double max_drift_ppm,
                                   std::int64_t granularity_ns = 1);

 private:
  ClockParams params_;
};

}  // namespace loki::sim
