#include "sim/world.hpp"

#include "util/error.hpp"

namespace loki::sim {

World::World(WorldParams params)
    : params_(params),
      rng_(params.seed),
      app_lan_(params.app_lan, rng_.split("app-lan")),
      control_lan_(params.control_lan, rng_.split("control-lan")) {}

void World::reset(WorldParams params) {
  params_ = params;
  // Mirror the constructor exactly: the LAN streams are splits of the
  // freshly-seeded root rng, so a reset World draws the same jitter
  // sequence a new World would.
  rng_ = Rng(params.seed);
  app_lan_.reset(params.app_lan, rng_.split("app-lan"));
  control_lan_.reset(params.control_lan, rng_.split("control-lan"));
  events_.reset();
  // Recycle processes and schedulers instead of destroying them: their
  // mailbox rings and run queues keep the previous experiments' high-water
  // storage. recycle() drops any leftover work items (their tasks die
  // here, exactly as ~Process would have destroyed them).
  for (auto& p : processes_) {
    p->recycle();
    process_pool_.push_back(std::move(p));
  }
  processes_.clear();
  for (HostEntry& host : hosts_) sched_pool_.push_back(std::move(host.sched));
  hosts_.clear();
  host_names_.clear();
  // clear() keeps the slot vector's capacity; the tasks inside were already
  // reclaimed (stash/deliver recycle eagerly) or die with their slots here.
  inflight_.clear();
  inflight_free_ = kNoSlot;
  dropped_deliveries_ = 0;
}

HostId World::add_host(const HostParams& params) {
  LOKI_REQUIRE(!host_names_.contains(params.name), "duplicate host name");
  const HostId id{static_cast<std::int32_t>(hosts_.size())};
  std::unique_ptr<CpuScheduler> sched;
  if (!sched_pool_.empty()) {
    sched = std::move(sched_pool_.back());
    sched_pool_.pop_back();
    sched->reset(params.sched, rng_.split("sched-" + params.name));
  } else {
    sched = std::make_unique<CpuScheduler>(events_, params.sched,
                                           rng_.split("sched-" + params.name));
  }
  hosts_.push_back(
      HostEntry{params.name, HostClock(params.clock), std::move(sched)});
  host_names_.emplace(params.name, id);
  return id;
}

HostId World::host_by_name(const std::string& name) const {
  const auto it = host_names_.find(name);
  if (it == host_names_.end()) throw ConfigError("unknown host: " + name);
  return it->second;
}

ProcessId World::spawn(HostId host, std::string name) {
  LOKI_REQUIRE(host.valid() && host.value < static_cast<std::int32_t>(hosts_.size()),
               "spawn on unknown host");
  const ProcessId id{static_cast<std::int32_t>(processes_.size())};
  std::unique_ptr<Process> p;
  if (!process_pool_.empty()) {
    p = std::move(process_pool_.back());
    process_pool_.pop_back();
  } else {
    p = std::make_unique<Process>();
  }
  p->id = id;
  p->name = std::move(name);
  p->host = host;
  processes_.push_back(std::move(p));
  return id;
}

void World::kill(ProcessId pid) {
  Process* p = proc_ptr(pid);
  if (p == nullptr || p->state == ProcState::Dead) return;
  const bool was_scheduled = p->state != ProcState::Blocked;
  p->state = ProcState::Dead;
  ++p->epoch;
  p->mailbox.clear();
  if (was_scheduled) {
    scheduler(p->host).on_killed(p);
  }
}

bool World::alive(ProcessId pid) const {
  const Process* p = proc_ptr(pid);
  return p != nullptr && p->alive();
}

HostId World::host_of(ProcessId pid) const {
  const Process* p = proc_ptr(pid);
  LOKI_REQUIRE(p != nullptr, "host_of: unknown process");
  return p->host;
}

const Process& World::process(ProcessId pid) const {
  const Process* p = proc_ptr(pid);
  LOKI_REQUIRE(p != nullptr, "process: unknown id");
  return *p;
}

Process& World::process_mutable(ProcessId pid) {
  Process* p = proc_ptr(pid);
  LOKI_REQUIRE(p != nullptr, "process_mutable: unknown id");
  return *p;
}

std::vector<ProcessId> World::processes_on(HostId host) const {
  std::vector<ProcessId> out;
  for (const auto& p : processes_) {
    if (p->host == host && p->alive()) out.push_back(p->id);
  }
  return out;
}

void World::crash_host(HostId host) {
  for (const ProcessId pid : processes_on(host)) kill(pid);
}

Task World::unstash(std::uint32_t slot) {
  Task t = std::move(inflight_[slot].task);
  inflight_[slot].next_free = inflight_free_;
  inflight_free_ = slot;
  return t;
}

void World::deliver_slot(ProcessId pid, Duration cost, std::uint32_t slot) {
  InflightSlot& in = inflight_[slot];
  Process* p = proc_ptr(pid);
  if (p == nullptr || !p->alive()) {
    ++dropped_deliveries_;
    in.task.reset();
  } else {
    p->mailbox.emplace_back(cost, std::move(in.task), now());
    if (p->state == ProcState::Blocked) scheduler(p->host).make_ready(p);
  }
  in.next_free = inflight_free_;
  inflight_free_ = slot;
}

void World::timer(ProcessId pid, Duration delay, Duration handler_cost,
                  Task fn) {
  Process* p = proc_ptr(pid);
  LOKI_REQUIRE(p != nullptr, "timer: unknown process");
  const std::uint32_t epoch = p->epoch;
  const std::uint32_t slot = stash(std::move(fn));
  events_.schedule_in(delay, [this, pid, epoch, handler_cost, slot] {
    Process* q = proc_ptr(pid);
    if (q == nullptr || !q->alive() || q->epoch != epoch) {
      unstash(slot).reset();  // cancelled; still reclaim the slot
      return;
    }
    deliver_slot(pid, handler_cost, slot);
  });
}

LocalTime World::clock_read_of(ProcessId pid) const {
  return clock_read(host_of(pid));
}

const HostClock& World::clock(HostId host) const {
  LOKI_REQUIRE(host.valid() && host.value < static_cast<std::int32_t>(hosts_.size()),
               "clock: bad host");
  return hosts_[static_cast<std::size_t>(host.value)].clock;
}

}  // namespace loki::sim
