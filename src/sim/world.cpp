#include "sim/world.hpp"

#include "util/error.hpp"

namespace loki::sim {

World::World(WorldParams params)
    : params_(params),
      rng_(params.seed),
      app_lan_(params.app_lan, rng_.split("app-lan")),
      control_lan_(params.control_lan, rng_.split("control-lan")) {}

HostId World::add_host(const HostParams& params) {
  LOKI_REQUIRE(!host_names_.contains(params.name), "duplicate host name");
  const HostId id{static_cast<std::int32_t>(hosts_.size())};
  hosts_.push_back(HostEntry{
      params.name, HostClock(params.clock),
      std::make_unique<CpuScheduler>(events_, params.sched,
                                     rng_.split("sched-" + params.name))});
  host_names_.emplace(params.name, id);
  return id;
}

HostId World::host_by_name(const std::string& name) const {
  const auto it = host_names_.find(name);
  if (it == host_names_.end()) throw ConfigError("unknown host: " + name);
  return it->second;
}

const std::string& World::host_name(HostId host) const {
  LOKI_REQUIRE(host.valid() && host.value < static_cast<std::int32_t>(hosts_.size()),
               "bad host id");
  return hosts_[static_cast<std::size_t>(host.value)].name;
}

ProcessId World::spawn(HostId host, std::string name) {
  LOKI_REQUIRE(host.valid() && host.value < static_cast<std::int32_t>(hosts_.size()),
               "spawn on unknown host");
  const ProcessId id{static_cast<std::int32_t>(processes_.size())};
  auto p = std::make_unique<Process>();
  p->id = id;
  p->name = std::move(name);
  p->host = host;
  processes_.push_back(std::move(p));
  return id;
}

void World::kill(ProcessId pid) {
  Process* p = proc_ptr(pid);
  if (p == nullptr || p->state == ProcState::Dead) return;
  const bool was_scheduled = p->state != ProcState::Blocked;
  p->state = ProcState::Dead;
  ++p->epoch;
  p->mailbox.clear();
  if (was_scheduled) {
    scheduler(p->host).on_killed(p);
  }
}

bool World::alive(ProcessId pid) const {
  const Process* p = proc_ptr(pid);
  return p != nullptr && p->alive();
}

HostId World::host_of(ProcessId pid) const {
  const Process* p = proc_ptr(pid);
  LOKI_REQUIRE(p != nullptr, "host_of: unknown process");
  return p->host;
}

const Process& World::process(ProcessId pid) const {
  const Process* p = proc_ptr(pid);
  LOKI_REQUIRE(p != nullptr, "process: unknown id");
  return *p;
}

Process& World::process_mutable(ProcessId pid) {
  Process* p = proc_ptr(pid);
  LOKI_REQUIRE(p != nullptr, "process_mutable: unknown id");
  return *p;
}

std::vector<ProcessId> World::processes_on(HostId host) const {
  std::vector<ProcessId> out;
  for (const auto& p : processes_) {
    if (p->host == host && p->alive()) out.push_back(p->id);
  }
  return out;
}

void World::crash_host(HostId host) {
  for (const ProcessId pid : processes_on(host)) kill(pid);
}

bool World::post(ProcessId pid, Duration cpu_cost, Task fn) {
  Process* p = proc_ptr(pid);
  if (p == nullptr || !p->alive()) {
    ++dropped_deliveries_;
    return false;
  }
  enqueue_item(p, cpu_cost, std::move(fn));
  return true;
}

std::uint32_t World::stash(Task t) {
  std::uint32_t slot;
  if (inflight_free_ != kNoSlot) {
    slot = inflight_free_;
    inflight_free_ = inflight_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(inflight_.size());
    inflight_.emplace_back();
  }
  inflight_[slot].task = std::move(t);
  return slot;
}

Task World::unstash(std::uint32_t slot) {
  Task t = std::move(inflight_[slot].task);
  inflight_[slot].next_free = inflight_free_;
  inflight_free_ = slot;
  return t;
}

void World::deliver_slot(ProcessId pid, Duration cost, std::uint32_t slot) {
  InflightSlot& in = inflight_[slot];
  Process* p = proc_ptr(pid);
  if (p == nullptr || !p->alive()) {
    ++dropped_deliveries_;
    in.task.reset();
  } else {
    p->mailbox.push_back(WorkItem{cost, std::move(in.task), now()});
    if (p->state == ProcState::Blocked) scheduler(p->host).make_ready(p);
  }
  in.next_free = inflight_free_;
  inflight_free_ = slot;
}

void World::send(ProcessId from, ProcessId to, Lan which, ChannelClass cls,
                 Duration handler_cost, Task fn) {
  const SimTime delivery = lan(which).delivery_time(now(), from, to, cls);
  const std::uint32_t slot = stash(std::move(fn));
  events_.schedule_at(delivery, [this, to, handler_cost, slot] {
    deliver_slot(to, handler_cost, slot);
  });
}

void World::timer(ProcessId pid, Duration delay, Duration handler_cost,
                  Task fn) {
  Process* p = proc_ptr(pid);
  LOKI_REQUIRE(p != nullptr, "timer: unknown process");
  const std::uint32_t epoch = p->epoch;
  const std::uint32_t slot = stash(std::move(fn));
  events_.schedule_in(delay, [this, pid, epoch, handler_cost, slot] {
    Process* q = proc_ptr(pid);
    if (q == nullptr || !q->alive() || q->epoch != epoch) {
      unstash(slot).reset();  // cancelled; still reclaim the slot
      return;
    }
    deliver_slot(pid, handler_cost, slot);
  });
}

void World::at(SimTime when, Task fn) {
  events_.schedule_at(when, std::move(fn));
}

LocalTime World::clock_read(HostId host) const {
  LOKI_REQUIRE(host.valid() && host.value < static_cast<std::int32_t>(hosts_.size()),
               "clock_read: bad host");
  return hosts_[static_cast<std::size_t>(host.value)].clock.read(now());
}

LocalTime World::clock_read_of(ProcessId pid) const {
  return clock_read(host_of(pid));
}

const HostClock& World::clock(HostId host) const {
  LOKI_REQUIRE(host.valid() && host.value < static_cast<std::int32_t>(hosts_.size()),
               "clock: bad host");
  return hosts_[static_cast<std::size_t>(host.value)].clock;
}

CpuScheduler& World::scheduler(HostId host) {
  LOKI_REQUIRE(host.valid() && host.value < static_cast<std::int32_t>(hosts_.size()),
               "scheduler: bad host");
  return *hosts_[static_cast<std::size_t>(host.value)].sched;
}

Process* World::proc_ptr(ProcessId pid) {
  if (!pid.valid() || pid.value >= static_cast<std::int32_t>(processes_.size()))
    return nullptr;
  return processes_[static_cast<std::size_t>(pid.value)].get();
}

const Process* World::proc_ptr(ProcessId pid) const {
  if (!pid.valid() || pid.value >= static_cast<std::int32_t>(processes_.size()))
    return nullptr;
  return processes_[static_cast<std::size_t>(pid.value)].get();
}

void World::enqueue_item(Process* p, Duration cost, Task fn) {
  p->mailbox.push_back(WorkItem{cost, std::move(fn), now()});
  if (p->state == ProcState::Blocked) {
    scheduler(p->host).make_ready(p);
  }
}

}  // namespace loki::sim
