// The World: one simulated deployment (hosts + processes + LANs + clocks).
//
// The Loki runtime layer (src/runtime) is written against this facade and
// nothing else, mirroring the thesis' separation between the
// system-independent runtime and the OS services it consumes. A World is
// built per experiment, run, then discarded — experiments are hermetic and
// reproducible from (seed, params).
//
// Two LANs are modelled (§2.4 allows Loki notifications to use a LAN
// separate from the application's): Lan::App and Lan::Control.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/clock.hpp"
#include "sim/event_queue.hpp"
#include "util/error.hpp"
#include "sim/ids.hpp"
#include "sim/network.hpp"
#include "sim/process.hpp"
#include "sim/scheduler.hpp"
#include "sim/task.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace loki::sim {

enum class Lan : std::uint8_t { App, Control };

struct HostParams {
  std::string name;
  ClockParams clock{};
  SchedParams sched{};
};

struct WorldParams {
  std::uint64_t seed{1};
  NetworkParams app_lan{};
  NetworkParams control_lan{};
};

class World {
 public:
  explicit World(WorldParams params = {});

  /// Rebuild this World as if freshly constructed from `params`, reusing
  /// the heavy allocations (event-queue slab, network link tables, in-
  /// flight task slots). Hosts and processes are dropped; pending events
  /// are destroyed unexecuted; all counters and rng streams restart from
  /// the seed. Observationally identical to constructing a new World —
  /// this is what lets an ExperimentContext run thousands of experiments
  /// without reallocating the simulation backbone.
  void reset(WorldParams params);

  // --- topology -----------------------------------------------------------
  HostId add_host(const HostParams& params);
  HostId host_by_name(const std::string& name) const;
  const std::string& host_name(HostId host) const {
    LOKI_REQUIRE(host.valid() && host.value < static_cast<std::int32_t>(hosts_.size()),
                 "bad host id");
    return hosts_[static_cast<std::size_t>(host.value)].name;
  }
  std::size_t host_count() const { return hosts_.size(); }

  /// Create a process on `host`, initially blocked with an empty mailbox.
  ProcessId spawn(HostId host, std::string name);

  /// Kill a process: state becomes Dead, pending work is dropped, in-flight
  /// timers and deliveries addressed to it are discarded on arrival.
  void kill(ProcessId pid);

  bool alive(ProcessId pid) const;
  HostId host_of(ProcessId pid) const;
  const Process& process(ProcessId pid) const;
  Process& process_mutable(ProcessId pid);

  /// All live processes currently on `host` (host crash support, §3.6.4).
  std::vector<ProcessId> processes_on(HostId host) const;
  /// Kill every process on the host (power failure).
  void crash_host(HostId host);

  // --- execution ----------------------------------------------------------
  /// Post a work item to a process on the same host (function call or local
  /// queue; no network transit). Returns false (dropping the item) if the
  /// process is dead. Inline — once per locally-queued work item.
  bool post(ProcessId pid, Duration cpu_cost, Task fn) {
    Process* p = proc_ptr(pid);
    if (p == nullptr || !p->alive()) {
      ++dropped_deliveries_;
      return false;
    }
    enqueue_item(p, cpu_cost, std::move(fn));
    return true;
  }

  /// Deliver a work item to `to` after LAN transit. Returns immediately;
  /// the item is dropped (counted) if `to` is dead on arrival. Inline —
  /// once per simulated message.
  void send(ProcessId from, ProcessId to, Lan which, ChannelClass cls,
            Duration handler_cost, Task fn) {
    const SimTime delivery = lan(which).delivery_time(now(), from, to, cls);
    const std::uint32_t slot = stash(std::move(fn));
    events_.schedule_at(delivery, [this, to, handler_cost, slot] {
      deliver_slot(to, handler_cost, slot);
    });
  }

  /// Fire `fn` as a work item on `pid` after `delay`. The timer is cancelled
  /// implicitly if the process dies first.
  void timer(ProcessId pid, Duration delay, Duration handler_cost, Task fn);

  /// Raw kernel event not tied to any process/CPU (harness bookkeeping).
  void at(SimTime when, Task fn) { events_.schedule_at(when, std::move(fn)); }

  std::uint64_t run_until(SimTime limit) { return events_.run_until(limit); }
  std::uint64_t run_to_completion() { return events_.run_to_completion(); }

  // --- clocks -------------------------------------------------------------
  SimTime now() const { return events_.now(); }
  LocalTime clock_read(HostId host) const {
    LOKI_REQUIRE(host.valid() && host.value < static_cast<std::int32_t>(hosts_.size()),
                 "clock_read: bad host");
    return hosts_[static_cast<std::size_t>(host.value)].clock.read(now());
  }
  LocalTime clock_read_of(ProcessId pid) const;
  const HostClock& clock(HostId host) const;

  // --- introspection ------------------------------------------------------
  EventQueue& events() { return events_; }
  CpuScheduler& scheduler(HostId host) {
    LOKI_REQUIRE(host.valid() && host.value < static_cast<std::int32_t>(hosts_.size()),
                 "scheduler: bad host");
    return *hosts_[static_cast<std::size_t>(host.value)].sched;
  }
  Network& lan(Lan lan) {
    return lan == Lan::App ? app_lan_ : control_lan_;
  }
  std::uint64_t dropped_deliveries() const { return dropped_deliveries_; }
  Rng& rng() { return rng_; }
  /// Derive a named child RNG stream (stable across unrelated changes).
  Rng stream(std::string_view name) const { return rng_.split(name); }

 private:
  struct HostEntry {
    std::string name;
    HostClock clock;
    std::unique_ptr<CpuScheduler> sched;
  };

  Process* proc_ptr(ProcessId pid) {
    if (!pid.valid() || pid.value >= static_cast<std::int32_t>(processes_.size()))
      return nullptr;
    return processes_[static_cast<std::size_t>(pid.value)].get();
  }
  const Process* proc_ptr(ProcessId pid) const {
    if (!pid.valid() || pid.value >= static_cast<std::int32_t>(processes_.size()))
      return nullptr;
    return processes_[static_cast<std::size_t>(pid.value)].get();
  }
  void enqueue_item(Process* p, Duration cost, Task fn) {
    p->mailbox.emplace_back(cost, std::move(fn), now());
    if (p->state == ProcState::Blocked) {
      scheduler(p->host).make_ready(p);
    }
  }

  // In-flight task stash: send()/timer() park the user task in a recycled
  // slot so the scheduled wrapper captures only {this, pid, cost, slot} and
  // stays within Task's inline budget (a Task nested inside another capture
  // would always overflow it).
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  struct InflightSlot {
    Task task;
    std::uint32_t next_free{kNoSlot};
  };
  std::uint32_t stash(Task t) {
    std::uint32_t slot;
    if (inflight_free_ != kNoSlot) {
      slot = inflight_free_;
      inflight_free_ = inflight_[slot].next_free;
    } else {
      slot = static_cast<std::uint32_t>(inflight_.size());
      inflight_.emplace_back();
    }
    inflight_[slot].task = std::move(t);
    return slot;
  }
  Task unstash(std::uint32_t slot);
  /// Deliver a stashed task straight into `pid`'s mailbox (one task move
  /// instead of unstash -> post -> enqueue).
  void deliver_slot(ProcessId pid, Duration cost, std::uint32_t slot);

  WorldParams params_;
  EventQueue events_;
  Rng rng_;
  Network app_lan_;
  Network control_lan_;
  std::vector<HostEntry> hosts_;
  std::unordered_map<std::string, HostId> host_names_;
  std::vector<std::unique_ptr<Process>> processes_;
  /// Recycled Process/CpuScheduler objects from previous experiments of
  /// this World (reset() refills them): spawn/add_host reuse the objects —
  /// and their mailbox/run-queue storage — instead of allocating.
  std::vector<std::unique_ptr<Process>> process_pool_;
  std::vector<std::unique_ptr<CpuScheduler>> sched_pool_;
  std::vector<InflightSlot> inflight_;
  std::uint32_t inflight_free_{kNoSlot};
  std::uint64_t dropped_deliveries_{0};
};

}  // namespace loki::sim
