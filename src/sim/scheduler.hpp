// Single-core round-robin CPU scheduler with a fixed timeslice.
//
// This is the component that produces the headline effect of the thesis'
// performance analysis (Figs 3.2/3.3): the time from a notification's
// arrival at a host to the moment the destination process actually handles
// it is dominated by quantum-sized scheduling delays, not by wire latency.
//
// Model:
//  - processes with non-empty mailboxes are READY and queue FIFO;
//  - a dispatch charges a context-switch cost, then the process consumes
//    work items back to back;
//  - preemption happens at work-item boundaries once the quantum is spent
//    (items are short relative to the quantum, so this granularity error is
//    small and biased the same way for every design being compared);
//  - a process with an empty mailbox blocks and releases the CPU.
#pragma once

#include <cstdint>
#include <deque>

#include "sim/event_queue.hpp"
#include "sim/process.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace loki::sim {

struct SchedParams {
  /// Round-robin quantum ("Linux timeslice" in the thesis: 10ms or 1ms).
  Duration quantum{milliseconds(10)};
  /// Cost of switching the CPU to a different process.
  Duration ctx_switch{microseconds(30)};
  /// Probability that a just-woken (I/O-blocked) process preempts the
  /// current runner at its next burst boundary instead of waiting for the
  /// quantum to expire. Models the Linux 2.2 counter/goodness dynamic
  /// priority: interactive processes usually — not always — beat CPU hogs
  /// on wakeup. 0 = strict round robin, 1 = always-preempting wakeups.
  double wake_preempt_prob{0.5};
};

class CpuScheduler {
 public:
  CpuScheduler(EventQueue& events, SchedParams params, Rng rng)
      : events_(events), params_(params), rng_(rng) {}

  /// Return to just-constructed state for new (params, rng), keeping the
  /// run-queue storage. Only valid over the same EventQueue (World::reset
  /// pools schedulers within one World).
  void reset(SchedParams params, Rng rng) {
    params_ = params;
    rng_ = rng;
    run_queue_.clear();
    running_ = nullptr;
    quantum_left_ = Duration{0};
    wake_preempt_pending_ = false;
    context_switches_ = 0;
    preemptions_ = 0;
    busy_time_ = Duration{0};
  }

  /// A blocked process gained work: queue it for the CPU. Inline — this
  /// runs once per delivered work item.
  void make_ready(Process* p) {
    LOKI_REQUIRE(p->state == ProcState::Blocked, "make_ready on non-blocked process");
    p->state = ProcState::Ready;
    if (running_ != nullptr && rng_.bernoulli(params_.wake_preempt_prob)) {
      // Wakeup preemption: the woken process outranks the current runner
      // (Linux 2.2 goodness); it jumps the queue and the runner yields at
      // its current burst boundary.
      run_queue_.push_front(p);
      wake_preempt_pending_ = true;
    } else {
      run_queue_.push_back(p);
    }
    maybe_dispatch();
  }

  /// Remove any scheduling claim a killed process holds. Run-queue entries
  /// are skipped lazily; a victim on the CPU frees it when its current burst
  /// completes (the kernel reclaims mid-burst time at the next tick).
  void on_killed(Process* p);

  const SchedParams& params() const { return params_; }
  std::uint64_t context_switches() const { return context_switches_; }
  std::uint64_t preemptions() const { return preemptions_; }
  Duration busy_time() const { return busy_time_; }

 private:
  void maybe_dispatch() {
    // Dispatch inline: the running_ guard makes this safe against re-entry
    // (a burst that wakes a same-host process defers to its own finish
    // path), and an idle CPU picks up work at the same simulated instant a
    // deferred zero-delay event would have — without paying for a kernel
    // event per wakeup.
    if (running_ != nullptr) return;
    if (run_queue_.empty()) return;
    dispatch();
  }
  void dispatch();
  void begin_item(Duration overhead);
  void finish_burst(Process* p, std::uint32_t epoch, Duration cost);

  EventQueue& events_;
  SchedParams params_;
  Rng rng_;
  std::deque<Process*> run_queue_;
  Process* running_{nullptr};
  Duration quantum_left_{Duration{0}};
  bool wake_preempt_pending_{false};

  std::uint64_t context_switches_{0};
  std::uint64_t preemptions_{0};
  Duration busy_time_{Duration{0}};
};

}  // namespace loki::sim
