#include "sim/network.hpp"

namespace loki::sim {

void Network::grow() {
  std::vector<LinkSlot> old = std::move(links_);
  links_.assign(old.size() * 2, LinkSlot{});
  for (const LinkSlot& s : old) {
    if (s.key == kEmptyKey) continue;
    find_slot(s.key) = s;
  }
}

void Network::reset(NetworkParams params, Rng rng) {
  params_ = params;
  rng_ = rng;
  messages_sent_ = 0;
  used_links_ = 0;
  std::fill(links_.begin(), links_.end(), LinkSlot{});
}

}  // namespace loki::sim
