#include "sim/network.hpp"

#include <algorithm>

namespace loki::sim {

SimTime Network::delivery_time(SimTime now, ProcessId from, ProcessId to,
                               ChannelClass cls) {
  const LatencyParams& lat =
      cls == ChannelClass::Ipc ? params_.ipc : params_.tcp;
  const auto jitter = Duration{static_cast<std::int64_t>(
      rng_.exponential(static_cast<double>(lat.jitter_mean.ns)))};
  SimTime delivery = now + lat.base + jitter;

  const auto key = std::make_tuple(from.value, to.value,
                                   static_cast<std::uint8_t>(cls));
  auto [it, inserted] = fifo_horizon_.try_emplace(key, delivery);
  if (!inserted) {
    // FIFO: never deliver before (or at the same instant as) the previous
    // message on this link.
    delivery = std::max(delivery, it->second + nanoseconds(1));
    it->second = delivery;
  }
  ++messages_sent_;
  return delivery;
}

}  // namespace loki::sim
