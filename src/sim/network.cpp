#include "sim/network.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace loki::sim {
namespace {

/// Deterministic 64-bit mix (splitmix64 finalizer) — spreads the packed
/// link key over the table independently of machine layout.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

Network::LinkSlot& Network::find_slot(std::uint64_t key) {
  const std::size_t mask = links_.size() - 1;
  std::size_t i = static_cast<std::size_t>(mix(key)) & mask;
  while (links_[i].key != key && links_[i].key != kEmptyKey) {
    i = (i + 1) & mask;
  }
  return links_[i];
}

void Network::grow() {
  std::vector<LinkSlot> old = std::move(links_);
  links_.assign(old.size() * 2, LinkSlot{});
  for (const LinkSlot& s : old) {
    if (s.key == kEmptyKey) continue;
    find_slot(s.key) = s;
  }
}

SimTime Network::delivery_time(SimTime now, ProcessId from, ProcessId to,
                               ChannelClass cls) {
  // pack_key's injectivity (and the all-ones empty sentinel) depends on
  // non-negative ids; fail fast instead of silently losing FIFO ordering.
  LOKI_REQUIRE(from.valid() && to.valid(), "delivery between invalid processes");
  const LatencyParams& lat =
      cls == ChannelClass::Ipc ? params_.ipc : params_.tcp;
  const auto jitter = Duration{static_cast<std::int64_t>(
      rng_.exponential(static_cast<double>(lat.jitter_mean.ns)))};
  SimTime delivery = now + lat.base + jitter;

  LinkSlot* slot = &find_slot(pack_key(from, to, cls));
  if (slot->key == kEmptyKey) {
    if ((used_links_ + 1) * 4 > links_.size() * 3) {  // load factor 3/4
      grow();
      slot = &find_slot(pack_key(from, to, cls));
    }
    ++used_links_;
    slot->key = pack_key(from, to, cls);
    slot->horizon_ns = delivery.ns;
  } else {
    // FIFO: never deliver before (or at the same instant as) the previous
    // message on this link.
    delivery = std::max(delivery, SimTime{slot->horizon_ns} + nanoseconds(1));
    slot->horizon_ns = delivery.ns;
  }
  ++messages_sent_;
  return delivery;
}

}  // namespace loki::sim
