// Strong identifier types for the simulation substrate.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

namespace loki::sim {

struct HostId {
  std::int32_t value{-1};
  constexpr auto operator<=>(const HostId&) const = default;
  constexpr bool valid() const { return value >= 0; }
};

struct ProcessId {
  std::int32_t value{-1};
  constexpr auto operator<=>(const ProcessId&) const = default;
  constexpr bool valid() const { return value >= 0; }
};

}  // namespace loki::sim

template <>
struct std::hash<loki::sim::HostId> {
  std::size_t operator()(loki::sim::HostId id) const noexcept {
    return std::hash<std::int32_t>{}(id.value);
  }
};

template <>
struct std::hash<loki::sim::ProcessId> {
  std::size_t operator()(loki::sim::ProcessId id) const noexcept {
    return std::hash<std::int32_t>{}(id.value);
  }
};
