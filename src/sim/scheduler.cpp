#include "sim/scheduler.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace loki::sim {

void CpuScheduler::on_killed(Process* p) {
  // Lazy removal: dispatch() skips dead entries; finish_burst() detects a
  // dead running process via the epoch check. Nothing to do eagerly except
  // kick the dispatcher in case the CPU is idle and the queue still has
  // live work behind the corpse.
  (void)p;
  maybe_dispatch();
}

void CpuScheduler::dispatch() {
  if (running_ != nullptr) return;
  while (!run_queue_.empty()) {
    Process* p = run_queue_.front();
    run_queue_.pop_front();
    if (p->state != ProcState::Ready) continue;  // died while queued
    if (p->mailbox.empty()) {
      // Work was consumed by a kill+restart cycle; block it again.
      p->state = ProcState::Blocked;
      continue;
    }
    running_ = p;
    p->state = ProcState::Running;
    quantum_left_ = params_.quantum;
    ++context_switches_;
    begin_item(params_.ctx_switch);
    return;
  }
  // Run queue drained: CPU goes idle.
}

void CpuScheduler::begin_item(Duration overhead) {
  Process* p = running_;
  LOKI_REQUIRE(p != nullptr && !p->mailbox.empty(), "begin_item without work");
  const WorkItem& item = p->mailbox.front();
  const Duration cost =
      Duration{std::max<std::int64_t>(item.cost.ns, 1)} + overhead;

  const Duration wait = events_.now() - item.enqueued;
  p->total_sched_wait += wait;
  p->max_sched_wait = std::max(p->max_sched_wait, wait);

  const std::uint32_t epoch = p->epoch;
  events_.schedule_in(cost,
                      [this, p, epoch, cost] { finish_burst(p, epoch, cost); });
}

void CpuScheduler::finish_burst(Process* p, std::uint32_t epoch, Duration cost) {
  busy_time_ += cost;
  if (running_ != p || p->epoch != epoch || p->state != ProcState::Running) {
    // The process was killed while on the CPU; reclaim it now.
    if (running_ == p) running_ = nullptr;
    maybe_dispatch();
    return;
  }

  WorkItem item = std::move(p->mailbox.front());
  p->mailbox.pop_front();
  quantum_left_ -= cost;
  p->cpu_used += cost;
  ++p->items_run;

  // May post work, send messages, kill processes (even this one); combined
  // invoke+destroy keeps the burst path at one indirect call.
  item.fn.run_once();

  if (p->state != ProcState::Running) {
    // The closure killed this process.
    running_ = nullptr;
    maybe_dispatch();
    return;
  }
  if (p->mailbox.empty()) {
    p->state = ProcState::Blocked;
    running_ = nullptr;
    maybe_dispatch();
    return;
  }
  if (quantum_left_.ns <= 0 || wake_preempt_pending_) {
    const bool contended = std::any_of(
        run_queue_.begin(), run_queue_.end(),
        [](const Process* q) { return q->state == ProcState::Ready; });
    wake_preempt_pending_ = false;
    if (contended) {
      ++preemptions_;
      p->state = ProcState::Ready;
      run_queue_.push_back(p);
      running_ = nullptr;
      maybe_dispatch();
      return;
    }
    quantum_left_ = params_.quantum;  // sole runner: quantum refreshed free
  }
  begin_item(Duration{0});
}

}  // namespace loki::sim
