// Message latency models for the two transport classes Loki uses (§3.4.2):
//  - Ipc: same-host shared-memory segment + semaphore, ~20us in 2000-era
//    Linux per the thesis;
//  - Tcp: cross-host TCP/IP on a LAN, ~150us.
//
// Each (source process, destination process, channel class) link is FIFO —
// delivery times are clamped to be non-decreasing, matching TCP stream and
// shared-memory queue semantics. Latency = base + jitter, with exponential
// jitter approximating the long right tail of kernel network stacks.
//
// The thesis allows a separate LAN for Loki notifications (§2.4): the World
// therefore owns two independent Network instances, `app_lan` and
// `control_lan`, so contention on one never delays the other.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/ids.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace loki::sim {

enum class ChannelClass : std::uint8_t { Ipc, Tcp };

struct LatencyParams {
  Duration base{microseconds(20)};
  Duration jitter_mean{microseconds(5)};
};

struct NetworkParams {
  LatencyParams ipc{microseconds(20), microseconds(4)};
  LatencyParams tcp{microseconds(150), microseconds(30)};
};

class Network {
 public:
  Network(NetworkParams params, Rng rng) : params_(params), rng_(rng) {}

  /// Latency for one message and advancement of the FIFO horizon of the
  /// (from, to, cls) link. `now` is the send time; returns delivery time.
  /// Inline — once per simulated message.
  SimTime delivery_time(SimTime now, ProcessId from, ProcessId to,
                        ChannelClass cls) {
    // pack_key's injectivity (and the all-ones empty sentinel) depends on
    // non-negative ids; fail fast instead of silently losing FIFO ordering.
    LOKI_REQUIRE(from.valid() && to.valid(),
                 "delivery between invalid processes");
    const LatencyParams& lat =
        cls == ChannelClass::Ipc ? params_.ipc : params_.tcp;
    const auto jitter = Duration{static_cast<std::int64_t>(
        rng_.exponential(static_cast<double>(lat.jitter_mean.ns)))};
    SimTime delivery = now + lat.base + jitter;

    LinkSlot* slot = &find_slot(pack_key(from, to, cls));
    if (slot->key == kEmptyKey) {
      if ((used_links_ + 1) * 4 > links_.size() * 3) {  // load factor 3/4
        grow();
        slot = &find_slot(pack_key(from, to, cls));
      }
      ++used_links_;
      slot->key = pack_key(from, to, cls);
      slot->horizon_ns = delivery.ns;
    } else {
      // FIFO: never deliver before (or at the same instant as) the previous
      // message on this link.
      delivery = std::max(delivery, SimTime{slot->horizon_ns} + nanoseconds(1));
      slot->horizon_ns = delivery.ns;
    }
    ++messages_sent_;
    return delivery;
  }

  /// Forget every FIFO horizon and counter and re-seed the jitter stream,
  /// keeping the (grown) link table's storage. Latency draws depend only on
  /// the rng and the per-link horizons — never on table geometry — so a
  /// reset network is observationally identical to a fresh one.
  void reset(NetworkParams params, Rng rng);

  const NetworkParams& params() const { return params_; }

  std::uint64_t messages_sent() const { return messages_sent_; }

 private:
  // The FIFO horizon table is probed once per message send, so it is an
  // open-addressing hash map over packed (from, to, cls) keys instead of a
  // node-based std::map: one cache line per probe, no allocation per link.
  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

  struct LinkSlot {
    std::uint64_t key{kEmptyKey};
    std::int64_t horizon_ns{0};
  };

  /// Pack (from, to, cls) into one 64-bit key. Process ids are non-negative
  /// 31-bit values and cls is one bit, so the packing is injective and can
  /// never produce the all-ones empty sentinel.
  static std::uint64_t pack_key(ProcessId from, ProcessId to, ChannelClass cls) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from.value))
            << 33) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(to.value))
            << 1) |
           static_cast<std::uint64_t>(cls);
  }

  /// Deterministic 64-bit mix (splitmix64 finalizer) — spreads the packed
  /// link key over the table independently of machine layout.
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }
  LinkSlot& find_slot(std::uint64_t key) {
    const std::size_t mask = links_.size() - 1;
    std::size_t i = static_cast<std::size_t>(mix(key)) & mask;
    while (links_[i].key != key && links_[i].key != kEmptyKey) {
      i = (i + 1) & mask;
    }
    return links_[i];
  }
  void grow();

  NetworkParams params_;
  Rng rng_;
  std::uint64_t messages_sent_{0};
  std::vector<LinkSlot> links_{std::vector<LinkSlot>(64)};
  std::size_t used_links_{0};
};

}  // namespace loki::sim
