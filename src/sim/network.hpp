// Message latency models for the two transport classes Loki uses (§3.4.2):
//  - Ipc: same-host shared-memory segment + semaphore, ~20us in 2000-era
//    Linux per the thesis;
//  - Tcp: cross-host TCP/IP on a LAN, ~150us.
//
// Each (source process, destination process, channel class) link is FIFO —
// delivery times are clamped to be non-decreasing, matching TCP stream and
// shared-memory queue semantics. Latency = base + jitter, with exponential
// jitter approximating the long right tail of kernel network stacks.
//
// The thesis allows a separate LAN for Loki notifications (§2.4): the World
// therefore owns two independent Network instances, `app_lan` and
// `control_lan`, so contention on one never delays the other.
#pragma once

#include <cstdint>
#include <map>
#include <tuple>

#include "sim/ids.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace loki::sim {

enum class ChannelClass : std::uint8_t { Ipc, Tcp };

struct LatencyParams {
  Duration base{microseconds(20)};
  Duration jitter_mean{microseconds(5)};
};

struct NetworkParams {
  LatencyParams ipc{microseconds(20), microseconds(4)};
  LatencyParams tcp{microseconds(150), microseconds(30)};
};

class Network {
 public:
  Network(NetworkParams params, Rng rng) : params_(params), rng_(rng) {}

  /// Latency for one message and advancement of the FIFO horizon of the
  /// (from, to, cls) link. `now` is the send time; returns delivery time.
  SimTime delivery_time(SimTime now, ProcessId from, ProcessId to,
                        ChannelClass cls);

  const NetworkParams& params() const { return params_; }

  std::uint64_t messages_sent() const { return messages_sent_; }

 private:
  NetworkParams params_;
  Rng rng_;
  std::uint64_t messages_sent_{0};
  std::map<std::tuple<std::int32_t, std::int32_t, std::uint8_t>, SimTime>
      fifo_horizon_;
};

}  // namespace loki::sim
