// Message latency models for the two transport classes Loki uses (§3.4.2):
//  - Ipc: same-host shared-memory segment + semaphore, ~20us in 2000-era
//    Linux per the thesis;
//  - Tcp: cross-host TCP/IP on a LAN, ~150us.
//
// Each (source process, destination process, channel class) link is FIFO —
// delivery times are clamped to be non-decreasing, matching TCP stream and
// shared-memory queue semantics. Latency = base + jitter, with exponential
// jitter approximating the long right tail of kernel network stacks.
//
// The thesis allows a separate LAN for Loki notifications (§2.4): the World
// therefore owns two independent Network instances, `app_lan` and
// `control_lan`, so contention on one never delays the other.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/ids.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace loki::sim {

enum class ChannelClass : std::uint8_t { Ipc, Tcp };

struct LatencyParams {
  Duration base{microseconds(20)};
  Duration jitter_mean{microseconds(5)};
};

struct NetworkParams {
  LatencyParams ipc{microseconds(20), microseconds(4)};
  LatencyParams tcp{microseconds(150), microseconds(30)};
};

class Network {
 public:
  Network(NetworkParams params, Rng rng) : params_(params), rng_(rng) {}

  /// Latency for one message and advancement of the FIFO horizon of the
  /// (from, to, cls) link. `now` is the send time; returns delivery time.
  SimTime delivery_time(SimTime now, ProcessId from, ProcessId to,
                        ChannelClass cls);

  const NetworkParams& params() const { return params_; }

  std::uint64_t messages_sent() const { return messages_sent_; }

 private:
  // The FIFO horizon table is probed once per message send, so it is an
  // open-addressing hash map over packed (from, to, cls) keys instead of a
  // node-based std::map: one cache line per probe, no allocation per link.
  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

  struct LinkSlot {
    std::uint64_t key{kEmptyKey};
    std::int64_t horizon_ns{0};
  };

  /// Pack (from, to, cls) into one 64-bit key. Process ids are non-negative
  /// 31-bit values and cls is one bit, so the packing is injective and can
  /// never produce the all-ones empty sentinel.
  static std::uint64_t pack_key(ProcessId from, ProcessId to, ChannelClass cls) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from.value))
            << 33) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(to.value))
            << 1) |
           static_cast<std::uint64_t>(cls);
  }

  LinkSlot& find_slot(std::uint64_t key);
  void grow();

  NetworkParams params_;
  Rng rng_;
  std::uint64_t messages_sent_{0};
  std::vector<LinkSlot> links_{std::vector<LinkSlot>(64)};
  std::size_t used_links_{0};
};

}  // namespace loki::sim
