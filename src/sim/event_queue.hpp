// Discrete-event simulation kernel.
//
// A single priority queue of (time, sequence, closure). Sequence numbers
// break ties so that execution order is a pure function of the schedule
// calls — the substrate is deterministic by construction.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/time.hpp"

namespace loki::sim {

class EventQueue {
 public:
  using Action = std::function<void()>;

  SimTime now() const { return now_; }

  /// Schedule `action` at absolute time `at` (must be >= now()).
  void schedule_at(SimTime at, Action action);

  /// Schedule `action` `delay` from now (delay >= 0).
  void schedule_in(Duration delay, Action action);

  /// Run events until the queue is empty or `limit` is passed. Events at
  /// exactly `limit` still run. Returns the number of events executed.
  std::uint64_t run_until(SimTime limit);

  /// Run until the queue drains completely.
  std::uint64_t run_to_completion();

  bool empty() const { return queue_.empty(); }
  std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimTime now_{SimTime::zero()};
  std::uint64_t next_seq_{0};
  std::uint64_t executed_{0};
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace loki::sim
