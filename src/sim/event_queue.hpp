// Discrete-event simulation kernel.
//
// An intrusive 4-ary min-heap of (time, sequence) keys over a slab of
// small-buffer-optimized Task slots. Sequence numbers break ties so that
// execution order is a pure function of the schedule calls — the substrate
// is deterministic by construction.
//
// The heap sifts 24-byte POD keys only; the tasks themselves never move
// after insertion. Slots are recycled through a free list, so the
// steady-state loop (events scheduling further events) performs no heap
// allocation at all: the slab stops growing once it covers the high-water
// mark of simultaneously-pending events, and captures within
// Task::kInlineSize live inline in their slot.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/task.hpp"
#include "util/time.hpp"

namespace loki::sim {

class EventQueue {
 public:
  using Action = Task;

  SimTime now() const { return now_; }

  /// Schedule `action` at absolute time `at` (must be >= now()). Actions
  /// scheduled at the same instant run in schedule order (seq order), even
  /// when an action schedules into its own timestamp.
  void schedule_at(SimTime at, Task action);

  /// Schedule `action` `delay` from now (delay >= 0).
  void schedule_in(Duration delay, Task action);

  /// Run events until the queue is empty or `limit` is passed. Events at
  /// exactly `limit` still run. Returns the number of events executed.
  std::uint64_t run_until(SimTime limit);

  /// Run until the queue drains completely.
  std::uint64_t run_to_completion();

  bool empty() const { return heap_.empty() && due_.empty(); }
  std::uint64_t executed() const { return executed_; }

  /// Number of task slots ever created (high-water mark of pending events).
  /// Flat across a steady-state window == no per-event slab growth.
  std::size_t slab_capacity() const { return slab_.size(); }

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  /// Slab slots live in a deque: stable addresses let run_until() execute a
  /// task in place (one combined invoke+destroy dispatch) while the action
  /// schedules new events — which may grow the slab — behind its back.
  struct Slot {
    Task task;
    std::uint32_t next_free{kNoSlot};
  };
  /// Heap entry: ordering key + slab index. POD, cheap to sift.
  struct Key {
    std::int64_t at;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  static bool before(const Key& a, const Key& b) {
    return a.at != b.at ? a.at < b.at : a.seq < b.seq;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  SimTime now_{SimTime::zero()};
  std::uint64_t next_seq_{0};
  std::uint64_t executed_{0};
  std::deque<Slot> slab_;
  std::uint32_t free_head_{kNoSlot};
  std::vector<Key> heap_;
  /// Fast lane for events scheduled at exactly now(): zero-delay dispatches
  /// are ~a third of all kernel traffic and never need the heap. Ordering
  /// stays correct because any heap entry with at == now() was necessarily
  /// scheduled earlier (smaller seq) than every entry in this FIFO, and the
  /// FIFO itself preserves seq order.
  std::deque<std::uint32_t> due_;
};

}  // namespace loki::sim
