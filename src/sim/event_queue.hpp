// Discrete-event simulation kernel.
//
// An intrusive 4-ary min-heap of (time, sequence) keys over a slab of
// small-buffer-optimized Task slots. Sequence numbers break ties so that
// execution order is a pure function of the schedule calls — the substrate
// is deterministic by construction.
//
// The heap sifts 16-byte POD keys only; the tasks themselves never move
// after insertion. Slots are recycled through a free list, so the
// steady-state loop (events scheduling further events) performs no heap
// allocation at all: the slab stops growing once it covers the high-water
// mark of simultaneously-pending events, and captures within
// Task::kInlineSize live inline in their slot.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/task.hpp"
#include "util/error.hpp"
#include "util/time.hpp"

namespace loki::sim {

class EventQueue {
 public:
  using Action = Task;

  SimTime now() const { return now_; }

  /// Schedule `action` at absolute time `at` (must be >= now()). Actions
  /// scheduled at the same instant run in schedule order (seq order), even
  /// when an action schedules into its own timestamp. Inline: this runs
  /// once per kernel event and inlining lets callers fuse the Task
  /// construction with the slab store.
  void schedule_at(SimTime at, Task action) {
    LOKI_REQUIRE(at >= now_, "cannot schedule an event in the past");
    std::uint32_t slot;
    if (free_head_ != kNoSlot) {
      slot = free_head_;
      free_head_ = slab_[slot].next_free;
    } else {
      slot = static_cast<std::uint32_t>(slab_.size());
      slab_.emplace_back();
    }
    slab_[slot].task = std::move(action);
    if (at == now_) {
      // Fast lane (see below): runs after every already-queued event at
      // this instant, in schedule order — exactly the (time, seq) contract.
      ++next_seq_;
      due_.push_back(slot);
      return;
    }
    LOKI_REQUIRE(slot < (1u << kSlotBits), "event slab exceeded 2^20 slots");
    const Key k{at.ns, (next_seq_++ << kSlotBits) | slot};
    if (!has_next_) {
      next_ = k;
      has_next_ = true;
    } else if (before(k, next_)) {
      heap_push(next_);
      next_ = k;
    } else {
      heap_push(k);
    }
  }

  /// Schedule `action` `delay` from now (delay >= 0).
  void schedule_in(Duration delay, Task action) {
    LOKI_REQUIRE(delay.ns >= 0, "negative delay");
    schedule_at(now_ + delay, std::move(action));
  }

  /// Run events until the queue is empty or `limit` is passed. Events at
  /// exactly `limit` still run. Returns the number of events executed.
  std::uint64_t run_until(SimTime limit);

  /// Run until the queue drains completely.
  std::uint64_t run_to_completion();

  /// Return to the just-constructed state (now == 0, seq == 0, nothing
  /// pending) while keeping the slab: pending tasks are destroyed, every
  /// slot is re-threaded onto the free list, and the heap/FIFO storage
  /// keeps its capacity. Execution order is a pure function of (time, seq),
  /// never of slot indices, so a reset queue behaves identically to a fresh
  /// one — minus the slab regrowth. The backbone of ExperimentContext reuse.
  void reset();

  bool empty() const { return !has_next_ && heap_.empty() && due_.empty(); }
  std::uint64_t executed() const { return executed_; }

  /// Number of task slots ever created (high-water mark of pending events).
  /// Flat across a steady-state window == no per-event slab growth.
  std::size_t slab_capacity() const { return slab_.size(); }

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  /// Slab slots live in a deque: stable addresses let run_until() execute a
  /// task in place (one combined invoke+destroy dispatch) while the action
  /// schedules new events — which may grow the slab — behind its back.
  struct Slot {
    Task task;
    std::uint32_t next_free{kNoSlot};
  };
  /// Heap entry: ordering key + slab index packed into 16 bytes (sifting
  /// moves two words instead of three). The sequence number occupies the
  /// high bits, so comparing seq_slot compares seq — the slot bits can
  /// never decide an ordering because sequence numbers are unique.
  static constexpr unsigned kSlotBits = 20;  // up to ~1M pending events
  struct Key {
    std::int64_t at;
    std::uint64_t seq_slot;  // (seq << kSlotBits) | slot
  };
  static bool before(const Key& a, const Key& b) {
    return a.at != b.at ? a.at < b.at : a.seq_slot < b.seq_slot;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void heap_push(const Key& k);
  /// Consume next_ and refill it from the heap root (if any).
  std::uint32_t take_next();

  SimTime now_{SimTime::zero()};
  std::uint64_t next_seq_{0};
  std::uint64_t executed_{0};
  std::deque<Slot> slab_;
  std::uint32_t free_head_{kNoSlot};
  std::vector<Key> heap_;
  /// Min-event cache: the smallest future (non-due_) key lives here, not in
  /// heap_. The dominant kernel pattern — an event schedules its successor,
  /// which is the next thing to run (burst completions, chained timers) —
  /// then never touches the heap at all: schedule fills next_, pop drains
  /// it, zero sifts. The heap only sees keys displaced by a smaller
  /// arrival, and ordering stays the pure (time, seq) function because
  /// next_ is by construction the minimum of all heap-side keys.
  Key next_{};
  bool has_next_{false};
  /// Fast lane for events scheduled at exactly now(): zero-delay dispatches
  /// are ~a third of all kernel traffic and never need the heap. Ordering
  /// stays correct because any heap entry with at == now() was necessarily
  /// scheduled earlier (smaller seq) than every entry in this FIFO, and the
  /// FIFO itself preserves seq order.
  std::deque<std::uint32_t> due_;
};

}  // namespace loki::sim
