// Simulated OS processes.
//
// A process is a passive mailbox of work items executed by its host's CPU
// scheduler. Application and Loki-runtime code runs inside work-item
// closures; a closure may post more work, send messages, set timers, spawn
// or kill processes. This models the real Loki deployment where the runtime
// is linked into the application process (§3.5.7) and all latencies come
// from the kernel: scheduling delay, context switches, and message transit.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "sim/ids.hpp"
#include "util/time.hpp"

namespace loki::sim {

enum class ProcState : std::uint8_t {
  Blocked,  // empty mailbox, waiting for work
  Ready,    // has work, queued for the CPU
  Running,  // currently on the CPU
  Dead,     // exited or crashed
};

struct WorkItem {
  Duration cost{Duration{0}};      // CPU time the item consumes
  std::function<void()> fn;        // effects, applied when the burst ends
  SimTime enqueued{SimTime::zero()};
};

struct Process {
  ProcessId id;
  std::string name;
  HostId host;
  ProcState state{ProcState::Blocked};
  /// Incarnation counter; bumped on kill so in-flight timers, deliveries and
  /// CPU-burst completions addressed to a previous life are discarded.
  std::uint32_t epoch{0};
  std::deque<WorkItem> mailbox;

  // --- statistics (read by benches/tests) ---
  Duration cpu_used{Duration{0}};
  std::uint64_t items_run{0};
  Duration total_sched_wait{Duration{0}};  // enqueue -> burst start
  Duration max_sched_wait{Duration{0}};

  bool alive() const { return state != ProcState::Dead; }
};

}  // namespace loki::sim
