// Simulated OS processes.
//
// A process is a passive mailbox of work items executed by its host's CPU
// scheduler. Application and Loki-runtime code runs inside work-item
// closures; a closure may post more work, send messages, set timers, spawn
// or kill processes. This models the real Loki deployment where the runtime
// is linked into the application process (§3.5.7) and all latencies come
// from the kernel: scheduling delay, context switches, and message transit.
#pragma once

#include <cstdint>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "sim/ids.hpp"
#include "sim/task.hpp"
#include "util/time.hpp"

namespace loki::sim {

enum class ProcState : std::uint8_t {
  Blocked,  // empty mailbox, waiting for work
  Ready,    // has work, queued for the CPU
  Running,  // currently on the CPU
  Dead,     // exited or crashed
};

struct WorkItem {
  Duration cost{Duration{0}};      // CPU time the item consumes
  Task fn;                         // effects, applied when the burst ends
  SimTime enqueued{SimTime::zero()};
};

/// FIFO of pending work items, as a power-of-two ring: a deque allocates
/// and frees a block every handful of 72-byte items, which showed up as
/// steady-state churn in the event loop. The ring's storage is reused
/// forever once it covers the process' high-water mark.
class Mailbox {
 public:
  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }
  WorkItem& front() { return buf_[head_]; }

  void push_back(WorkItem&& item) {
    if (count_ == buf_.size()) grow();
    buf_[(head_ + count_) & mask_] = std::move(item);
    ++count_;
  }
  /// Write the fields straight into the ring slot — one task move instead
  /// of temporary-WorkItem + move-assign (the delivery hot path).
  void emplace_back(Duration cost, Task&& fn, SimTime enqueued) {
    if (count_ == buf_.size()) grow();
    WorkItem& slot = buf_[(head_ + count_) & mask_];
    slot.cost = cost;
    slot.fn = std::move(fn);
    slot.enqueued = enqueued;
    ++count_;
  }
  void pop_front() {
    buf_[head_].fn.reset();
    head_ = (head_ + 1) & mask_;
    --count_;
  }
  void clear() {
    while (count_ != 0) pop_front();
  }

 private:
  void grow() {
    const std::size_t cap = buf_.empty() ? 8 : buf_.size() * 2;
    std::vector<WorkItem> next(cap);
    for (std::size_t i = 0; i < count_; ++i)
      next[i] = std::move(buf_[(head_ + i) & mask_]);
    buf_ = std::move(next);
    head_ = 0;
    mask_ = cap - 1;
  }

  std::vector<WorkItem> buf_;
  std::size_t head_{0};
  std::size_t count_{0};
  std::size_t mask_{0};
};

struct Process {
  ProcessId id;
  std::string name;
  HostId host;
  ProcState state{ProcState::Blocked};
  /// Incarnation counter; bumped on kill so in-flight timers, deliveries and
  /// CPU-burst completions addressed to a previous life are discarded.
  std::uint32_t epoch{0};
  Mailbox mailbox;

  // --- statistics (read by benches/tests) ---
  Duration cpu_used{Duration{0}};
  std::uint64_t items_run{0};
  Duration total_sched_wait{Duration{0}};  // enqueue -> burst start
  Duration max_sched_wait{Duration{0}};

  bool alive() const { return state != ProcState::Dead; }

  /// Return to just-spawned state, keeping the mailbox ring's storage.
  /// World::reset pools process objects across experiments so the rings'
  /// high-water allocations are paid once per context, not per experiment.
  void recycle() {
    state = ProcState::Blocked;
    epoch = 0;
    mailbox.clear();
    cpu_used = Duration{0};
    items_run = 0;
    total_sched_wait = Duration{0};
    max_sched_wait = Duration{0};
  }
};

}  // namespace loki::sim
