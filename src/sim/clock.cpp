#include "sim/clock.hpp"

#include <cmath>

namespace loki::sim {

SimTime HostClock::to_physical(LocalTime local) const {
  const double t = (static_cast<double>(local.ns) -
                    static_cast<double>(params_.alpha.ns)) /
                   params_.beta;
  return SimTime{static_cast<std::int64_t>(std::llround(t))};
}

ClockParams HostClock::random_params(Rng& rng, Duration max_offset,
                                     double max_drift_ppm,
                                     std::int64_t granularity_ns) {
  ClockParams p;
  p.alpha = Duration{rng.uniform_int(-max_offset.ns, max_offset.ns)};
  p.beta = 1.0 + rng.uniform_real(-max_drift_ppm, max_drift_ppm) * 1e-6;
  p.granularity_ns = granularity_ns;
  return p;
}

}  // namespace loki::sim
