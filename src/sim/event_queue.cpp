#include "sim/event_queue.hpp"

#include "util/error.hpp"

namespace loki::sim {

void EventQueue::schedule_at(SimTime at, Action action) {
  LOKI_REQUIRE(at >= now_, "cannot schedule an event in the past");
  queue_.push(Entry{at, next_seq_++, std::move(action)});
}

void EventQueue::schedule_in(Duration delay, Action action) {
  LOKI_REQUIRE(delay.ns >= 0, "negative delay");
  schedule_at(now_ + delay, std::move(action));
}

std::uint64_t EventQueue::run_until(SimTime limit) {
  std::uint64_t count = 0;
  while (!queue_.empty() && queue_.top().at <= limit) {
    // Copy out before pop: the action may schedule more events.
    Entry entry{queue_.top().at, queue_.top().seq, std::move(const_cast<Entry&>(queue_.top()).action)};
    queue_.pop();
    now_ = entry.at;
    entry.action();
    ++count;
    ++executed_;
  }
  // Advance the clock to the limit (time passes even with no events), except
  // for the run-to-completion sentinel where now() stays at the last event.
  if (limit != SimTime::max() && now_ < limit) now_ = limit;
  return count;
}

std::uint64_t EventQueue::run_to_completion() {
  return run_until(SimTime::max());
}

}  // namespace loki::sim
