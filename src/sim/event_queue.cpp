#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace loki::sim {

void EventQueue::heap_push(const Key& k) {
  heap_.push_back(k);
  sift_up(heap_.size() - 1);
}

std::uint32_t EventQueue::take_next() {
  const auto slot =
      static_cast<std::uint32_t>(next_.seq_slot & ((1u << kSlotBits) - 1));
  if (heap_.empty()) {
    has_next_ = false;
  } else {
    next_ = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }
  return slot;
}

void EventQueue::sift_up(std::size_t i) {
  Key k = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(k, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = k;
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  Key k = heap_[i];
  for (;;) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    const std::size_t last_child = std::min(first_child + 4, n);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], k)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = k;
}

std::uint64_t EventQueue::run_until(SimTime limit) {
  std::uint64_t count = 0;
  for (;;) {
    std::uint32_t slot;
    if (due_.empty()) {
      // Hot path: no same-instant fast-lane entries, the next event is the
      // cached minimum.
      if (!has_next_ || next_.at > limit.ns) break;
      now_ = SimTime{next_.at};
      slot = take_next();
    } else if (now_ <= limit) {
      // A non-due entry at this same instant predates everything in the
      // fast lane (smaller seq), so it goes first. next_ is the minimum of
      // all heap-side keys, so checking it alone suffices.
      if (has_next_ && next_.at == now_.ns) {
        slot = take_next();
      } else {
        slot = due_.front();
        due_.pop_front();
      }
    } else {
      break;
    }

    // Run the action in place (slot addresses are stable — the slab is a
    // deque) and recycle the slot afterwards. The single combined
    // invoke+destroy dispatch is the pop path's only indirect call.
    slab_[slot].task.run_once();
    slab_[slot].next_free = free_head_;
    free_head_ = slot;
    ++count;
    ++executed_;
  }
  // Advance the clock to the limit (time passes even with no events), except
  // for the run-to-completion sentinel where now() stays at the last event.
  if (limit != SimTime::max() && now_ < limit) now_ = limit;
  return count;
}

std::uint64_t EventQueue::run_to_completion() {
  return run_until(SimTime::max());
}

void EventQueue::reset() {
  // Experiments stop at done_ without draining, so live tasks (watchdog
  // timers, in-flight deliveries) may still occupy slots: destroy them all,
  // free and occupied alike (resetting an empty Task is a no-op).
  for (Slot& slot : slab_) slot.task.reset();
  heap_.clear();
  due_.clear();
  has_next_ = false;
  free_head_ = kNoSlot;
  for (std::size_t i = slab_.size(); i-- > 0;) {
    slab_[i].next_free = free_head_;
    free_head_ = static_cast<std::uint32_t>(i);
  }
  now_ = SimTime::zero();
  next_seq_ = 0;
  executed_ = 0;
}

}  // namespace loki::sim
