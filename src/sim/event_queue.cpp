#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace loki::sim {

void EventQueue::schedule_at(SimTime at, Task action) {
  LOKI_REQUIRE(at >= now_, "cannot schedule an event in the past");
  std::uint32_t slot;
  if (free_head_ != kNoSlot) {
    slot = free_head_;
    free_head_ = slab_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.emplace_back();
  }
  slab_[slot].task = std::move(action);
  if (at == now_) {
    // Fast lane (see header): runs after every already-queued event at this
    // instant, in schedule order — exactly the (time, seq) contract.
    ++next_seq_;
    due_.push_back(slot);
    return;
  }
  heap_.push_back(Key{at.ns, next_seq_++, slot});
  sift_up(heap_.size() - 1);
}

void EventQueue::schedule_in(Duration delay, Task action) {
  LOKI_REQUIRE(delay.ns >= 0, "negative delay");
  schedule_at(now_ + delay, std::move(action));
}

void EventQueue::sift_up(std::size_t i) {
  Key k = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(k, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = k;
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  Key k = heap_[i];
  for (;;) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    const std::size_t last_child = std::min(first_child + 4, n);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], k)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = k;
}

std::uint64_t EventQueue::run_until(SimTime limit) {
  std::uint64_t count = 0;
  for (;;) {
    std::uint32_t slot;
    if (!due_.empty() && now_ <= limit) {
      // A heap entry at this same instant predates everything in the fast
      // lane (smaller seq), so it goes first.
      if (!heap_.empty() && heap_.front().at == now_.ns) {
        slot = heap_.front().slot;
        heap_.front() = heap_.back();
        heap_.pop_back();
        if (!heap_.empty()) sift_down(0);
      } else {
        slot = due_.front();
        due_.pop_front();
      }
    } else if (!heap_.empty() && heap_.front().at <= limit.ns) {
      const Key top = heap_.front();
      heap_.front() = heap_.back();
      heap_.pop_back();
      if (!heap_.empty()) sift_down(0);
      now_ = SimTime{top.at};
      slot = top.slot;
    } else {
      break;
    }

    // Run the action in place (slot addresses are stable — the slab is a
    // deque) and recycle the slot afterwards. The single combined
    // invoke+destroy dispatch is the pop path's only indirect call.
    slab_[slot].task.run_once();
    slab_[slot].next_free = free_head_;
    free_head_ = slot;
    ++count;
    ++executed_;
  }
  // Advance the clock to the limit (time passes even with no events), except
  // for the run-to-completion sentinel where now() stays at the last event.
  if (limit != SimTime::max() && now_ < limit) now_ = limit;
  return count;
}

std::uint64_t EventQueue::run_to_completion() {
  return run_until(SimTime::max());
}

}  // namespace loki::sim
