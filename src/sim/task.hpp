// A move-only callable with small-buffer optimization — the currency of the
// event kernel.
//
// std::function heap-allocates any capture larger than two pointers, which
// made every scheduled event a malloc/free pair. Task inlines captures up to
// kInlineSize bytes (48: enough for every closure the runtime itself builds)
// and falls back to the heap only beyond that. The fallback is counted so
// tests can assert the steady-state event loop stays allocation-free.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace loki::sim {

class Task {
 public:
  /// Captures up to this many bytes are stored inline (no heap allocation).
  static constexpr std::size_t kInlineSize = 48;

  Task() noexcept = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, Task> &&
                                        std::is_invocable_r_v<void, D&>>>
  Task(F&& f) {  // NOLINT(google-explicit-constructor): callable adapter
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      vt_ = &kInlineVTable<D>;
      trivial_ = trivially_relocatable<D>();
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      vt_ = &kHeapVTable<D>;
      heap_allocs_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  Task(Task&& other) noexcept { move_from(other); }
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { reset(); }

  explicit operator bool() const noexcept { return vt_ != nullptr; }

  /// Invoke and destroy in one virtual dispatch — the event-loop fast path
  /// (a separate invoke + destroy would be two indirect calls). Leaves the
  /// task empty. This is deliberately the only invocation API: tasks are
  /// one-shot by construction, so there is no plain operator() to call on
  /// an empty/moved-from task by accident.
  void run_once() {
    const VTable* vt = vt_;
    vt_ = nullptr;
    vt->run(buf_);
  }

  void reset() noexcept {
    if (vt_ != nullptr) {
      if (!trivial_) vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  /// Cumulative count of captures that exceeded kInlineSize and hit the
  /// heap. Process-wide; tests snapshot it around a steady-state window.
  static std::uint64_t heap_allocations() {
    return heap_allocs_.load(std::memory_order_relaxed);
  }

 private:
  struct VTable {
    /// Invoke, then destroy (single-dispatch pop path).
    void (*run)(void* buf);
    /// Move-construct into `dst` from `src`, then destroy `src`.
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void* buf) noexcept;
  };

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  /// Captures of PODs and raw pointers — the bulk of what the kernel
  /// schedules — move by plain memcpy and destroy by doing nothing. The
  /// flag turns the per-move relocate dispatch (tasks relocate several
  /// times per event: into the slab, through the in-flight stash, into and
  /// out of mailboxes) into a fixed-size copy, and lets reset() skip the
  /// destroy dispatch entirely.
  template <typename D>
  static constexpr bool trivially_relocatable() {
    return std::is_trivially_copyable_v<D> &&
           std::is_trivially_destructible_v<D>;
  }

  template <typename D>
  static constexpr VTable kInlineVTable{
      [](void* buf) {
        D* f = std::launder(reinterpret_cast<D*>(buf));
        // Scope guard, not a trailing dtor call: the callable must be
        // destroyed even when it throws (unwinding out of run_until).
        struct Guard {
          D* f;
          ~Guard() { f->~D(); }
        } guard{f};
        (*f)();
      },
      [](void* src, void* dst) noexcept {
        D* s = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* buf) noexcept { std::launder(reinterpret_cast<D*>(buf))->~D(); },
  };

  template <typename D>
  static constexpr VTable kHeapVTable{
      [](void* buf) {
        D* f = *std::launder(reinterpret_cast<D**>(buf));
        struct Guard {
          D* f;
          ~Guard() { delete f; }
        } guard{f};
        (*f)();
      },
      [](void* src, void* dst) noexcept {
        ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
      },
      [](void* buf) noexcept { delete *std::launder(reinterpret_cast<D**>(buf)); },
  };

  void move_from(Task& other) noexcept {
    vt_ = other.vt_;
    trivial_ = other.trivial_;
    if (vt_ != nullptr) {
      if (trivial_) {
        // Whole-buffer copy: branch-free size, no indirect call. Only the
        // capture bytes are meaningful; copying the tail is harmless.
        __builtin_memcpy(buf_, other.buf_, kInlineSize);
      } else {
        vt_->relocate(other.buf_, buf_);
      }
      other.vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const VTable* vt_{nullptr};
  bool trivial_{false};

  static inline std::atomic<std::uint64_t> heap_allocs_{0};
};

}  // namespace loki::sim
