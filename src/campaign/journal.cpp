#include "campaign/journal.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "runtime/serialize.hpp"
#include "util/codec.hpp"
#include "util/digest.hpp"
#include "util/error.hpp"

namespace loki::campaign {

namespace {

int open_journal(const std::filesystem::path& path, int flags) {
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0)
    throw ConfigError("campaign journal: cannot open '" + path.string() +
                      "': " + std::strerror(errno));
  return fd;
}

/// Whole-file read for load(). The journal is small — a few dozen bytes per
/// experiment — and parsed once per resume.
std::vector<std::uint8_t> read_all(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw ConfigError("campaign journal: cannot read '" + path.string() + "'");
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof())
    throw ConfigError("campaign journal: read of '" + path.string() +
                      "' failed");
  return bytes;
}

[[noreturn]] void malformed(const std::filesystem::path& path,
                            const std::string& what) {
  throw ConfigError("campaign journal '" + path.string() +
                    "': " + what +
                    " — this is not a torn tail but a malformed journal; "
                    "refusing to resume from it");
}

}  // namespace

// --- writer ------------------------------------------------------------------

CampaignJournal::CampaignJournal(int fd, std::filesystem::path path,
                                 Options options)
    : fd_(fd), path_(std::move(path)), options_(options) {
  if (options_.group_records < 1)
    throw ConfigError("campaign journal: group_records must be >= 1, got " +
                      std::to_string(options_.group_records));
}

CampaignJournal CampaignJournal::create(const std::filesystem::path& path,
                                        Options options) {
  CampaignJournal journal(
      open_journal(path, O_WRONLY | O_CREAT | O_TRUNC), path, options);
  // The header goes down durably before any record: a journal file either
  // identifies itself or is empty (the "killed at birth" case load()
  // treats as nothing-journaled).
  journal.append(runtime::encode_journal_header(), /*durable=*/true);
  return journal;
}

CampaignJournal CampaignJournal::append_to(const std::filesystem::path& path,
                                           Options options) {
  if (!std::filesystem::exists(path))
    throw ConfigError("campaign journal: cannot resume, '" + path.string() +
                      "' does not exist");
  return CampaignJournal(open_journal(path, O_WRONLY | O_APPEND), path,
                         options);
}

CampaignJournal::CampaignJournal(CampaignJournal&& other) noexcept
    : fd_(other.fd_),
      path_(std::move(other.path_)),
      options_(other.options_),
      pending_(std::move(other.pending_)),
      pending_records_(other.pending_records_) {
  other.fd_ = -1;
  other.pending_records_ = 0;
}

CampaignJournal::~CampaignJournal() {
  if (fd_ < 0) return;
  try {
    flush();
  } catch (...) {
    // Destructor flush is best-effort; the abort path already flushed.
  }
  ::close(fd_);
}

void CampaignJournal::append(const std::vector<std::uint8_t>& bytes,
                             bool durable) {
  pending_.insert(pending_.end(), bytes.begin(), bytes.end());
  if (durable) flush();
}

void CampaignJournal::flush() {
  if (pending_.empty()) return;
  const std::uint8_t* p = pending_.data();
  std::size_t remaining = pending_.size();
  while (remaining > 0) {
    const ssize_t n = ::write(fd_, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("campaign journal: write to '" +
                               path_.string() +
                               "' failed: " + std::strerror(errno));
    }
    p += n;
    remaining -= static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0)
    throw std::runtime_error("campaign journal: fsync of '" + path_.string() +
                             "' failed: " + std::strerror(errno));
  pending_.clear();
  pending_records_ = 0;
}

void CampaignJournal::campaign_begin(const std::string& runner_spec,
                                     std::uint64_t seed,
                                     std::uint32_t studies) {
  runtime::JournalEntry e;
  e.type = runtime::JournalRecord::CampaignBegin;
  e.runner_spec = runner_spec;
  e.seed = seed;
  e.studies = studies;
  std::vector<std::uint8_t> bytes;
  runtime::encode_journal_record(e, bytes);
  append(bytes, /*durable=*/true);
}

void CampaignJournal::study_begin(std::uint32_t study, const std::string& name,
                                  const std::string& digest,
                                  std::uint32_t experiments) {
  runtime::JournalEntry e;
  e.type = runtime::JournalRecord::StudyBegin;
  e.study = study;
  e.study_name = name;
  e.study_digest = digest;
  e.experiments = experiments;
  std::vector<std::uint8_t> bytes;
  runtime::encode_journal_record(e, bytes);
  append(bytes, /*durable=*/true);
}

void CampaignJournal::index_done(std::uint32_t study, std::uint32_t index,
                                 const std::string& result_key) {
  runtime::JournalEntry e;
  e.type = runtime::JournalRecord::IndexDone;
  e.study = study;
  e.index = index;
  e.result_key = result_key;
  runtime::encode_journal_record(e, pending_);
  if (++pending_records_ >= options_.group_records) flush();
}

void CampaignJournal::study_end(std::uint32_t study) {
  runtime::JournalEntry e;
  e.type = runtime::JournalRecord::StudyEnd;
  e.study = study;
  std::vector<std::uint8_t> bytes;
  runtime::encode_journal_record(e, bytes);
  append(bytes, /*durable=*/true);
}

void CampaignJournal::campaign_end() {
  runtime::JournalEntry e;
  e.type = runtime::JournalRecord::CampaignEnd;
  std::vector<std::uint8_t> bytes;
  runtime::encode_journal_record(e, bytes);
  append(bytes, /*durable=*/true);
}

// --- reader ------------------------------------------------------------------

JournalState CampaignJournal::load(const std::filesystem::path& path) {
  const std::vector<std::uint8_t> bytes = read_all(path);
  JournalState state;

  std::size_t pos = 0;
  try {
    pos = runtime::decode_journal_header(bytes.data(), bytes.size());
  } catch (const codec::DecodeError& e) {
    // A file shorter than the 6-byte header is the killed-at-birth crash
    // shape: nothing was journaled. Anything longer with a bad header is
    // some other file — refuse loudly.
    if (bytes.size() < runtime::encode_journal_header().size()) {
      state.truncated_tail = !bytes.empty();
      return state;
    }
    throw ConfigError("campaign journal '" + path.string() +
                      "': " + e.what());
  }

  bool begun = false;
  while (pos < bytes.size()) {
    runtime::JournalEntry entry;
    std::size_t consumed = 0;
    try {
      entry = runtime::decode_journal_record(bytes.data() + pos,
                                             bytes.size() - pos, consumed);
    } catch (const codec::DecodeError&) {
      // The torn tail of a mid-append crash: everything from here on is
      // unwritten. (A flipped bit mid-file also lands here and discards the
      // suffix — the conservative reading, since later records' meaning
      // depends on the damaged one.)
      state.truncated_tail = true;
      break;
    }
    pos += consumed;

    switch (entry.type) {
      case runtime::JournalRecord::CampaignBegin:
        if (begun) malformed(path, "second CampaignBegin");
        begun = true;
        state.campaign_begun = true;
        state.runner_spec = entry.runner_spec;
        state.seed = entry.seed;
        state.studies = entry.studies;
        break;
      case runtime::JournalRecord::StudyBegin: {
        if (!begun) malformed(path, "StudyBegin before CampaignBegin");
        if (entry.study != state.progress.size())
          malformed(path, "StudyBegin ordinal " + std::to_string(entry.study) +
                              " out of order");
        JournalState::StudyProgress p;
        p.name = entry.study_name;
        p.digest = entry.study_digest;
        p.experiments = entry.experiments;
        state.progress.push_back(std::move(p));
        break;
      }
      case runtime::JournalRecord::IndexDone: {
        if (state.progress.empty() ||
            entry.study != state.progress.size() - 1)
          malformed(path, "IndexDone outside its study");
        JournalState::StudyProgress& p = state.progress.back();
        if (p.ended) malformed(path, "IndexDone after StudyEnd");
        // The coordinator journals in emit order, so indices are contiguous
        // from 0; anything else means the file was edited or interleaved.
        if (entry.index != p.done_keys.size())
          malformed(path, "IndexDone index " + std::to_string(entry.index) +
                              " breaks the contiguous emit order (expected " +
                              std::to_string(p.done_keys.size()) + ")");
        if (entry.index >= p.experiments)
          malformed(path, "IndexDone index past the study's experiment count");
        p.done_keys.push_back(entry.result_key);
        break;
      }
      case runtime::JournalRecord::StudyEnd: {
        if (state.progress.empty() ||
            entry.study != state.progress.size() - 1)
          malformed(path, "StudyEnd outside its study");
        JournalState::StudyProgress& p = state.progress.back();
        if (p.ended) malformed(path, "double StudyEnd");
        if (p.done_keys.size() != p.experiments)
          malformed(path, "StudyEnd with " +
                              std::to_string(p.done_keys.size()) + " of " +
                              std::to_string(p.experiments) +
                              " indices journaled");
        p.ended = true;
        break;
      }
      case runtime::JournalRecord::CampaignEnd:
        if (!begun) malformed(path, "CampaignEnd before CampaignBegin");
        if (state.progress.size() != state.studies ||
            (!state.progress.empty() && !state.progress.back().ended))
          malformed(path, "CampaignEnd before every study ended");
        if (pos != bytes.size())
          malformed(path, "records after CampaignEnd");
        state.campaign_done = true;
        break;
    }
  }
  return state;
}

// --- study digest ------------------------------------------------------------

std::string study_digest(const runtime::StudyParams& study) {
  const std::string ingredients =
      study.name + "\n" + std::to_string(study.experiments) + "\n" +
      (study.experiments > 0
           ? runtime::experiment_cache_key(study.make_params(0))
           : std::string("empty"));
  return util::sha256_hex(ingredients.data(), ingredients.size());
}

}  // namespace loki::campaign
