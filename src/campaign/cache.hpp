// Content-addressed experiment result cache.
//
// An experiment is fully determined by its ExperimentParams (run_experiment
// is deterministic in the seed, which the params carry), so its result can
// be cached under the SHA-256 of the encoded params — the cache key of
// runtime/serialize.hpp. The wire version is part of the encoding, so a
// format bump changes every key and stale entries are simply never found.
//
// Two ways in:
//   * CampaignBuilder::cache(...) — the cache-first path: Campaign looks
//     every experiment up before running, executes only the misses through
//     the runner, stores them, and emits hits and fresh results interleaved
//     in index order. Sinks observe a sequence byte-identical to an
//     uncached serial run; a fully warm cache performs zero
//     run_experiment calls.
//   * CacheSink — a plain ResultSink that writes every result of its
//     registered studies into the cache, for warming a cache from a
//     campaign that does not read from it.
//
// Storage is one file per key (`<key>.result`, the encoded result),
// written to a temp name and renamed, so concurrent writers — including
// campaigns sharded across hosts onto one shared directory — are safe:
// rename is atomic and any winner's bytes are correct for the key.
// Unreadable or undecodable entries count as misses at probe/lookup time.
// One caveat for the cache-first path: hit/miss classification happens at
// study start, so an entry deleted or corrupted *between* that probe and
// its emit turn fails the study loudly (a deterministic re-run repairs
// it) — don't prune a shared cache directory mid-campaign.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>

#include "campaign/sink.hpp"
#include "runtime/experiment.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace loki::campaign {

class ResultCache {
 public:
  /// Opens (creating if needed) the cache directory.
  explicit ResultCache(std::filesystem::path dir);

  /// Cheap existence probe (no read or decode). Records a miss when
  /// absent; present keys are counted by the lookup() that serves them —
  /// the cache-first campaign pairs one probe per experiment with one
  /// lookup per served hit, so Stats reflect what actually happened.
  bool contains(const std::string& key);

  /// nullopt when absent or undecodable. Counts a hit or a miss.
  std::optional<runtime::ExperimentResult> lookup(const std::string& key);

  /// Store (or overwrite) the result for `key`. Atomic via rename.
  void store(const std::string& key, const runtime::ExperimentResult& result);

  struct Stats {
    std::uint64_t hits{0};
    std::uint64_t misses{0};
    std::uint64_t stores{0};
  };
  /// A snapshot, by value: one cache may be shared by a parallel runner's
  /// CacheSink and the campaign's cache-first probe loop, so counters are
  /// mutated concurrently and a reference would be a data race to read.
  Stats stats() const LOKI_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return stats_;
  }
  const std::filesystem::path& dir() const { return dir_; }

 private:
  std::filesystem::path path_of(const std::string& key) const;

  std::filesystem::path dir_;
  /// Guards the counters only. Filesystem state needs no lock: writes
  /// publish via atomic rename, and readers treat torn files as misses.
  mutable util::Mutex mu_;
  Stats stats_ LOKI_GUARDED_BY(mu_);
  std::uint64_t temp_counter_ LOKI_GUARDED_BY(mu_){0};
};

/// Streams every result of its registered studies into a ResultCache.
/// Studies are matched by name; results of unregistered studies pass
/// through uncached (register every study you want captured).
class CacheSink final : public ResultSink {
 public:
  explicit CacheSink(std::shared_ptr<ResultCache> cache);

  /// Register a study whose results should be cached. The StudyParams'
  /// make_params is re-invoked per index to derive the key, so it must be
  /// deterministic (the standard campaign contract) and its nodes need wire
  /// identities (NodeConfig::app_name). The sink keeps its own copy of the
  /// generator and calls it during on_experiment — concurrently with a
  /// parallel runner's generator calls — so a generator registered here
  /// must not share mutable state by reference with the running study.
  CacheSink& study(runtime::StudyParams study);

  void on_experiment(const StudyInfo& study, int index,
                     const runtime::ExperimentResult& result) override;

 private:
  std::shared_ptr<ResultCache> cache_;
  std::map<std::string, runtime::StudyParams> studies_;
};

}  // namespace loki::campaign
