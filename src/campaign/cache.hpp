// Content-addressed experiment result cache.
//
// An experiment is fully determined by its ExperimentParams (run_experiment
// is deterministic in the seed, which the params carry), so its result can
// be cached under the SHA-256 of the encoded params — the cache key of
// runtime/serialize.hpp. The wire version is part of the encoding, so a
// format bump changes every key and stale entries are simply never found.
//
// Two ways in:
//   * CampaignBuilder::cache(...) — the cache-first path: Campaign looks
//     every experiment up before running, executes only the misses through
//     the runner, stores them, and emits hits and fresh results interleaved
//     in index order. Sinks observe a sequence byte-identical to an
//     uncached serial run; a fully warm cache performs zero
//     run_experiment calls.
//   * CacheSink — a plain ResultSink that writes every result of its
//     registered studies into the cache, for warming a cache from a
//     campaign that does not read from it.
//
// Storage is one file per key (`<key>.result`, the encoded result),
// published durably — written to a temp name, fsync'd, then renamed
// (util/atomic_file.hpp) — so concurrent writers, including campaigns
// sharded across hosts onto one shared directory, are safe AND a crash
// right after store() returns can never leave a torn or lost entry: the
// campaign journal (campaign/journal.hpp) depends on that ordering.
// Store failures (ENOSPC, a dead disk) throw CacheError, a distinct type,
// so campaigns can tell "the store is failing" from a config mistake.
//
// A file that exists but no longer decodes is *quarantined* at lookup —
// renamed to `<key>.corrupt` and counted in Stats::corrupt — instead of
// being silently treated as a miss forever: the entry re-runs once (the
// store() after the miss publishes a fresh file), and a rotting store is
// visible in the stats instead of quietly recomputing every campaign.
//
// Eviction/GC: the cache keeps a generation-stamped index (one monotonic
// counter, bumped per touch; persisted periodically to `cache.index` via
// the same atomic-write path). When CacheOptions bounds the store by bytes
// or entry count, store() evicts lowest-generation entries first until the
// budget holds. The index file is an accounting accelerator, not a source
// of truth — a stale or missing index is rebuilt by scanning the directory,
// and correctness always rests on the entry files themselves.
//
// One caveat for the cache-first path: hit/miss classification happens at
// study start, so an entry deleted, corrupted, or evicted *between* that
// probe and its emit turn fails the study loudly (a deterministic re-run
// repairs it) — don't prune a shared cache directory mid-campaign, and
// size GC'd caches generously enough to hold the campaign in flight.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "campaign/sink.hpp"
#include "runtime/experiment.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace loki::campaign {

/// A cache store/GC step failed at the filesystem layer (ENOSPC, EIO,
/// a vanished directory). Distinct from ConfigError: the configuration is
/// fine, the storage is not.
class CacheError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Store budget; 0 means unbounded (the default — historical behaviour).
struct CacheOptions {
  /// Evict until the sum of entry file sizes fits under this many bytes.
  std::uint64_t max_bytes{0};
  /// Evict until at most this many entries remain.
  std::uint64_t max_entries{0};
};

class ResultCache {
 public:
  /// Opens (creating if needed) the cache directory and loads (or rebuilds
  /// by directory scan) the generation index.
  explicit ResultCache(std::filesystem::path dir, CacheOptions options = {});
  /// Persists the index (best-effort).
  ~ResultCache();

  /// Cheap existence probe (no read or decode). Records a miss when
  /// absent; present keys are counted by the lookup() that serves them —
  /// the cache-first campaign pairs one probe per experiment with one
  /// lookup per served hit, so Stats reflect what actually happened.
  bool contains(const std::string& key);

  /// nullopt when absent or undecodable. Counts a hit or a miss; an
  /// undecodable entry is quarantined to `<key>.corrupt` and counted in
  /// Stats::corrupt (see the header comment).
  std::optional<runtime::ExperimentResult> lookup(const std::string& key);

  /// Durably store (or overwrite) the result for `key`: temp file, fsync,
  /// atomic rename. Throws CacheError when the bytes cannot be made
  /// durable (ENOSPC, short write, ...). Triggers GC when the store
  /// exceeds the configured budget.
  void store(const std::string& key, const runtime::ExperimentResult& result);

  struct Stats {
    std::uint64_t hits{0};
    std::uint64_t misses{0};
    std::uint64_t stores{0};
    /// Entries found undecodable and quarantined at lookup.
    std::uint64_t corrupt{0};
    /// Entries evicted by the GC budget.
    std::uint64_t evictions{0};
  };
  /// A snapshot, by value: one cache may be shared by a parallel runner's
  /// CacheSink and the campaign's cache-first probe loop, so counters are
  /// mutated concurrently and a reference would be a data race to read.
  Stats stats() const LOKI_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return stats_;
  }
  const std::filesystem::path& dir() const { return dir_; }

  /// Persist the generation index to `cache.index` now (atomic write).
  /// Also runs periodically from store() and at destruction; a crash
  /// in between merely costs a directory rescan on next open.
  void flush_index() LOKI_EXCLUDES(mu_);

 private:
  struct Entry {
    std::uint64_t bytes{0};
    std::uint64_t generation{0};
  };

  std::filesystem::path path_of(const std::string& key) const;
  void load_index() LOKI_REQUIRES(mu_);
  void rebuild_index_from_disk() LOKI_REQUIRES(mu_);
  void persist_index() LOKI_REQUIRES(mu_);
  void touch(const std::string& key, std::uint64_t bytes) LOKI_REQUIRES(mu_);
  void gc() LOKI_REQUIRES(mu_);

  std::filesystem::path dir_;
  CacheOptions options_;
  /// Guards counters and the index. Filesystem state needs no lock: writes
  /// publish via fsync + atomic rename, and readers treat torn files as
  /// misses (quarantining them).
  mutable util::Mutex mu_;
  Stats stats_ LOKI_GUARDED_BY(mu_);
  std::map<std::string, Entry> index_ LOKI_GUARDED_BY(mu_);
  std::uint64_t total_bytes_ LOKI_GUARDED_BY(mu_){0};
  std::uint64_t generation_ LOKI_GUARDED_BY(mu_){0};
  std::uint64_t stores_since_persist_ LOKI_GUARDED_BY(mu_){0};
};

/// Streams every result of its registered studies into a ResultCache.
/// Studies are matched by name; results of unregistered studies pass
/// through uncached (register every study you want captured).
class CacheSink final : public ResultSink {
 public:
  explicit CacheSink(std::shared_ptr<ResultCache> cache);

  /// Register a study whose results should be cached. The StudyParams'
  /// make_params is re-invoked per index to derive the key, so it must be
  /// deterministic (the standard campaign contract) and its nodes need wire
  /// identities (NodeConfig::app_name). The sink keeps its own copy of the
  /// generator and calls it during on_experiment — concurrently with a
  /// parallel runner's generator calls — so a generator registered here
  /// must not share mutable state by reference with the running study.
  CacheSink& study(runtime::StudyParams study);

  void on_experiment(const StudyInfo& study, int index,
                     const runtime::ExperimentResult& result) override;

 private:
  std::shared_ptr<ResultCache> cache_;
  std::map<std::string, runtime::StudyParams> studies_;
};

}  // namespace loki::campaign
