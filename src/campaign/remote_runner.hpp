// Crash-tolerant multi-worker campaign execution over a pluggable
// Transport (campaign/transport.hpp).
//
// RemoteRunner replaces static round-robin sharding with dynamic work-queue
// sharding: the study's indices are split into small leases, idle workers
// pull the next lease, and the parent reassembles results into the serial
// emit order. Because run_experiment is deterministic in its params, a
// lease that is re-run after a worker died produces byte-identical results,
// so crash recovery never perturbs the campaign's output — the
// serial == threads == procs == remote identity invariant survives faults.
//
// Failure handling, per worker:
//   * stream EOF (crash, SIGKILL, ssh drop) -> outstanding lease indices
//     are requeued to the survivors;
//   * silence past Options::hang_timeout    -> the worker is killed and its
//     lease requeued (heartbeat + result frames are the liveness signal);
//   * a corrupt frame                       -> ditto (the stream cannot be
//     resynchronized after a framing error);
//   * a LeaseDone with unaccounted indices  -> the missing indices are
//     requeued, the worker stays in rotation.
// Requeue/lost counts surface through Runner::telemetry() and
// Campaign::Summary. With Options::reconnect_attempts > 0, a lost worker's
// slot is reopened through the transport (exponential backoff with jitter);
// a rejoined worker re-handshakes and pulls leases again. When the last
// worker dies with work remaining and no reconnect is pending, the runner
// throws std::runtime_error.
//
// Contract (matching SerialRunner / ThreadPoolRunner / ProcessPoolRunner):
//   * emit(k, result) exactly once per index, in increasing k, on the
//     calling thread;
//   * failure-prefix semantics: if experiment k itself fails (generator,
//     validation, run), the completed prefix 0..k-1 is emitted, then k's
//     exception is rehydrated by wire category and rethrown; no index past
//     k is emitted. Worker *loss* is not an experiment failure — it is
//     recovered by requeueing.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "campaign/runner.hpp"
#include "campaign/transport.hpp"

namespace loki::campaign {

struct RemoteOptions {
  /// Indices per lease — the *initial* span when autotuning is on, the
  /// fixed span otherwise. Small leases spread load and shrink the requeue
  /// blast radius; large leases amortize frame round-trips.
  int lease_size{2};
  /// Adapt the lease span to observed per-experiment latency: after each
  /// completed lease the span doubles while a lease finishes in under half
  /// of lease_target, and halves when one overruns it twofold — a bounded
  /// multiplicative rule ([1, max_lease_size]) that converges within a few
  /// leases. Fast experiments stop paying a frame round-trip every other
  /// experiment; slow ones keep the requeue blast radius small. Byte-
  /// identity is unaffected (lease geometry never reaches the results).
  bool autotune_lease{true};
  std::chrono::milliseconds lease_target{250};
  int max_lease_size{64};
  /// A worker silent for longer than this while holding a lease (or during
  /// the handshake) is declared hung, killed, and its lease requeued. Must
  /// comfortably exceed the slowest single experiment.
  std::chrono::milliseconds hang_timeout{30'000};
  /// How often a busy worker must emit a Heartbeat frame (between
  /// experiments and between batch flushes), shipped to workers in the
  /// Hello frame. 0 (the default) resolves to hang_timeout / 4, so a
  /// healthy worker always has several heartbeat opportunities per timeout
  /// window — a slow-but-alive worker grinding through a long autotuned
  /// lease is never mistaken for a hung one.
  std::chrono::milliseconds heartbeat_interval{0};
  /// How long to wait for workers to exit after Shutdown before killing
  /// them at teardown.
  std::chrono::milliseconds shutdown_grace{2'000};
  /// Reconnect policy: after a worker link is lost (EOF, hang-kill, corrupt
  /// stream), try Transport::reopen up to this many times before writing
  /// the slot off. 0 (the default) disables reconnection — a lost worker
  /// stays lost, the pre-reconnect behaviour. The budget is per loss: a
  /// worker that rejoins and dies again gets a fresh set of attempts.
  /// Requeued indices are NOT held back for the reconnect — survivors keep
  /// draining the queue, and the rejoined worker simply pulls the next
  /// lease; with no survivors the campaign stalls (rather than aborting)
  /// until an attempt succeeds or the budget runs out.
  int reconnect_attempts{0};
  /// Delay before the first reopen attempt; doubles (reconnect_multiplier)
  /// after each failure up to reconnect_backoff_max. Each wait is jittered
  /// to 75%..125% so a fleet lost to one network blip does not retry in
  /// lockstep (util::Rng seeded with reconnect_jitter_seed: deterministic
  /// in the options, byte-identity of campaign output is unaffected either
  /// way — reconnect timing never reaches the results).
  std::chrono::milliseconds reconnect_backoff{100};
  double reconnect_multiplier{2.0};
  std::chrono::milliseconds reconnect_backoff_max{5'000};
  std::uint64_t reconnect_jitter_seed{0};
};

class RemoteRunner final : public Runner {
 public:
  explicit RemoteRunner(std::shared_ptr<Transport> transport,
                        RemoteOptions options = {});

  std::string name() const override;
  int parallelism() const override;
  void run_study(const runtime::StudyParams& study, const EmitFn& emit) override;
  RunnerTelemetry telemetry() const override { return telemetry_; }

 private:
  std::shared_ptr<Transport> transport_;
  RemoteOptions options_;
  RunnerTelemetry telemetry_;
};

/// Worker-side knobs for serve_worker.
struct ServeOptions {
  /// Flush the accumulated ResultBatch frame once it reaches this many
  /// bytes. The bound is soft: the entry that crosses it still joins the
  /// batch, then the batch is sent. 1 yields one result per batch (the
  /// fault-injection harness uses this to keep per-result scripts exact);
  /// a lease always flushes whatever remains before LeaseDone.
  std::size_t batch_soft_bytes{64 * 1024};
  /// Fallback heartbeat cadence when the parent's Hello carries no interval
  /// (heartbeat_interval_ms == 0, e.g. a v3 parent keeping the field at its
  /// default or a hand-built handshake). A Hello-supplied interval always
  /// wins.
  std::chrono::milliseconds heartbeat_interval{7'500};
};

/// Worker-side protocol loop, shared by every backend: handshake on Hello
/// (adopting the framed study, or `inherited_study` for fork()ed children),
/// then serve Lease/Ping frames until Shutdown or EOF. A lease's results
/// accumulate into ResultBatch frames in a buffer reused across leases
/// (bounded by ServeOptions::batch_soft_bytes, flushed at lease end).
/// While a lease runs, the loop emits a Heartbeat frame — carrying this
/// worker's cumulative WorkerStatsSnapshot — whenever the resolved
/// heartbeat interval elapses without any other write, plus one at lease
/// start and one right before LeaseDone, so a slow-but-healthy worker is
/// never silent for longer than the interval.
/// Experiment failures travel back as error batch entries (ending the lease
/// early); a protocol violation throws — the caller turns that into a
/// nonzero exit.
void serve_worker(FrameChannel& channel,
                  const runtime::StudyParams* inherited_study,
                  const ServeOptions& options = {});

}  // namespace loki::campaign
