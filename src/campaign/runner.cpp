#include "campaign/runner.hpp"

#include <atomic>
#include <map>
#include <string_view>
#include <thread>
#include <vector>

#include "campaign/process_runner.hpp"
#include "campaign/remote_runner.hpp"
#include "campaign/transport.hpp"
#include "campaign/validate.hpp"
#include "runtime/experiment_context.hpp"
#include "util/error.hpp"
#include "util/mutex.hpp"
#include "util/text_file.hpp"
#include "util/thread_annotations.hpp"

namespace loki::campaign {

namespace {

runtime::ExperimentParams checked_params(const runtime::StudyParams& study,
                                         int index) {
  runtime::ExperimentParams params = study.make_params(index);
  validate_experiment_params(params, experiment_context(study, index));
  return params;
}

/// Compile the study-invariant machinery from experiment 0, for runners
/// that share one CompiledStudy across worker contexts. Generators are
/// deterministic per index (the standard campaign contract; build() probes
/// index 0 the same way), so the extra make_params(0) call is safe. A
/// failure here is exactly the failure experiment 0 would have produced —
/// same exception, same empty emitted prefix.
std::shared_ptr<const runtime::CompiledStudy> compile_study_front(
    const runtime::StudyParams& study) {
  return runtime::CompiledStudy::compile(checked_params(study, 0));
}

/// Everything ThreadPoolRunner's workers and drain loop share. The mutex
/// discipline is declared so clang -Wthread-safety can prove it: `mu`
/// guards claim/complete/drain state, `gen_mu` only serializes user
/// parameter generators (which may share hidden state across indices).
struct PoolShared {
  explicit PoolShared(int n) : fail_min(n) {}

  util::Mutex gen_mu;  // serializes make_params; never held with `mu`
  util::Mutex mu;
  util::CondVar cv;
  std::map<int, runtime::ExperimentResult> ready LOKI_GUARDED_BY(mu);
  std::exception_ptr failure LOKI_GUARDED_BY(mu);
  int fail_min LOKI_GUARDED_BY(mu);    // lowest index that threw
  int next LOKI_GUARDED_BY(mu){0};     // next index to claim
  int emitted LOKI_GUARDED_BY(mu){0};  // indices already handed to emit
  /// Not guarded: a latch raced only in the safe direction. Workers that
  /// miss a newly-set abort claim at most one extra experiment.
  std::atomic<bool> abort{false};
};

}  // namespace

Runner::~Runner() = default;

void SerialRunner::run_study(const runtime::StudyParams& study,
                             const EmitFn& emit) {
  // One context for the whole study: experiment 0 compiles the study, every
  // later index reuses the compiled tables and the world's slabs.
  runtime::ExperimentContext context;
  for (int k = 0; k < study.experiments; ++k)
    emit(k, context.run(checked_params(study, k)));
}

ThreadPoolRunner::ThreadPoolRunner(int workers) : workers_(workers) {
  if (workers < 1)
    throw ConfigError("ThreadPoolRunner: workers must be >= 1, got " +
                      std::to_string(workers));
}

std::string ThreadPoolRunner::name() const {
  return "thread-pool(" + std::to_string(workers_) + ")";
}

void ThreadPoolRunner::run_study(const runtime::StudyParams& study,
                                 const EmitFn& emit) {
  const int n = study.experiments;
  if (n <= 0) return;

  // Compile once on the calling thread; every worker context borrows the
  // same immutable CompiledStudy (its tables are shared read-only).
  const std::shared_ptr<const runtime::CompiledStudy> compiled =
      compile_study_front(study);

  PoolShared s(n);
  // Backpressure: at most `window` experiments past the drain cursor may be
  // claimed, so `ready` stays O(workers) even when one early experiment is
  // slow — the streaming-sink memory guarantee survives skewed runtimes.
  const int window = 2 * workers_;

  auto worker = [&] {
    // One resettable context per worker thread, alive for the whole study.
    runtime::ExperimentContext context(compiled);
    for (;;) {
      int k;
      {
        util::MutexLock lock(s.mu);
        while (!(s.abort.load(std::memory_order_relaxed) ||
                 s.failure != nullptr || s.next >= n ||
                 s.next - s.emitted < window))
          s.cv.wait(s.mu);
        if (s.abort.load(std::memory_order_relaxed) || s.failure != nullptr ||
            s.next >= n)
          return;
        k = s.next++;
      }
      try {
        runtime::ExperimentParams params;
        {
          util::MutexLock lock(s.gen_mu);
          params = study.make_params(k);
        }
        validate_experiment_params(params, experiment_context(study, k));
        runtime::ExperimentResult result = context.run(params);
        {
          util::MutexLock lock(s.mu);
          s.ready.emplace(k, std::move(result));
        }
      } catch (...) {
        {
          util::MutexLock lock(s.mu);
          if (k < s.fail_min) {
            s.fail_min = k;
            s.failure = std::current_exception();
          }
        }
        s.abort.store(true, std::memory_order_relaxed);
      }
      s.cv.notify_all();
    }
  };

  std::vector<std::thread> pool;
  const int spawn = workers_ < n ? workers_ : n;
  pool.reserve(static_cast<std::size_t>(spawn));
  for (int i = 0; i < spawn; ++i) pool.emplace_back(worker);

  // Drain completions in index order on the calling thread, so sinks see
  // exactly the sequence SerialRunner would produce — including on failure:
  // every index below the first failing one was claimed earlier and will
  // either complete (emitted here) or lower fail_min itself, so waiting on
  // `ready[k] || k >= fail_min` emits the same prefix serial would before
  // rethrowing the first failure.
  try {
    util::MutexLock lock(s.mu);
    for (int k = 0; k < n; ++k) {
      while (!(s.ready.contains(k) || k >= s.fail_min)) s.cv.wait(s.mu);
      if (k >= s.fail_min) break;
      auto node = s.ready.extract(k);
      lock.unlock();
      emit(k, std::move(node.mapped()));
      lock.lock();
      ++s.emitted;
      s.cv.notify_all();  // open the claim window
    }
  } catch (...) {
    s.abort.store(true, std::memory_order_relaxed);
    s.cv.notify_all();
    for (std::thread& t : pool) t.join();
    throw;
  }

  for (std::thread& t : pool) t.join();
  {
    // Workers are joined: sole owner now, but the analysis still wants the
    // lock for the guarded reads (and it documents the rethrow contract).
    util::MutexLock lock(s.mu);
    if (s.failure) std::rethrow_exception(s.failure);
  }
}

std::shared_ptr<Runner> make_runner(int parallelism) {
  if (parallelism <= 1) return std::make_shared<SerialRunner>();
  return std::make_shared<ThreadPoolRunner>(parallelism);
}

std::shared_ptr<Runner> parse_runner_spec(const std::string& spec) {
  const auto bad = [&spec]() -> ConfigError {
    return ConfigError(
        "bad runner spec '" + spec +
        "' (expected serial | threads:N | procs:N | static-procs:N | "
        "remote:HOSTFILE)");
  };
  const auto workers_of = [&](std::string_view text) {
    int workers = 0;
    for (const char c : text) {
      if (c < '0' || c > '9' || workers > 10'000'000) throw bad();
      workers = workers * 10 + (c - '0');
    }
    if (text.empty() || workers < 1) throw bad();
    return workers;
  };

  if (spec == "serial") return std::make_shared<SerialRunner>();
  const std::string_view view(spec);
  if (view.starts_with("threads:"))
    return std::make_shared<ThreadPoolRunner>(workers_of(view.substr(8)));
  if (view.starts_with("procs:"))
    // Dynamic work-queue sharding over local worker processes; crash-
    // tolerant, byte-identical to serial (campaign/remote_runner.hpp).
    return std::make_shared<RemoteRunner>(
        std::make_shared<SubprocessTransport>(workers_of(view.substr(6))));
  if (view.starts_with("static-procs:"))
    // PR 2's fixed round-robin shards — kept as the static reference.
    return std::make_shared<ProcessPoolRunner>(workers_of(view.substr(13)));
  if (view.starts_with("remote:")) {
    const std::string path(view.substr(7));
    if (path.empty()) throw bad();
    return std::make_shared<RemoteRunner>(std::make_shared<SshTransport>(
        parse_hostfile(read_file(path), path)));
  }
  // Bare integer: the historical `[workers]` CLI argument.
  return make_runner(workers_of(view));
}

}  // namespace loki::campaign
