#include "campaign/process_runner.hpp"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "campaign/validate.hpp"
#include "runtime/experiment_context.hpp"
#include "runtime/serialize.hpp"
#include "util/codec.hpp"
#include "util/error.hpp"
#include "util/pipe_io.hpp"

namespace loki::campaign {

namespace {

// Shards speak genuine ResultBatch frames (runtime/serialize.hpp) — the
// same batch layout the worker protocol uses — so the result plane has one
// framing everywhere. Each shard accumulates its stride's results and
// flushes when the batch crosses this soft byte bound (or on error/end).
constexpr std::size_t kBatchSoftBytes = 64 * 1024;

/// Child-side pipes and pids with guaranteed reaping on unwind.
struct ShardPool {
  std::vector<int> read_fds;   // parent end, -1 once closed
  std::vector<pid_t> pids;

  ~ShardPool() {
    close_all();
    // Abnormal unwind: make sure no shard outlives the study. On the
    // normal path the children have already exited and kill() is a no-op
    // on a reaped pid (pids are cleared by reap()).
    for (const pid_t pid : pids) ::kill(pid, SIGKILL);
    for (const pid_t pid : pids) {
      int status = 0;
      while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {}
    }
  }

  void close_fd(std::size_t w) {
    if (read_fds[w] >= 0) {
      ::close(read_fds[w]);
      read_fds[w] = -1;
    }
  }
  void close_all() {
    for (std::size_t w = 0; w < read_fds.size(); ++w) close_fd(w);
  }

  /// Normal-path reap: every child must have exited cleanly. All children
  /// are waited on before any failure is reported — no zombies on throw.
  void reap() {
    std::vector<pid_t> pending = std::move(pids);
    pids.clear();
    std::string failure;
    for (const pid_t pid : pending) {
      int status = 0;
      while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {}
      if ((!WIFEXITED(status) || WEXITSTATUS(status) != 0) && failure.empty())
        failure =
            "process runner: shard pid " + std::to_string(pid) +
            (WIFSIGNALED(status)
                 ? " killed by signal " + std::to_string(WTERMSIG(status))
                 : " exited with status " +
                       std::to_string(WIFEXITED(status) ? WEXITSTATUS(status)
                                                        : -1));
    }
    if (!failure.empty()) throw std::runtime_error(failure);
  }
};

}  // namespace

void run_worker_range(const runtime::StudyParams& study, int lo, int hi,
                      int step, int out_fd) {
  if (step < 1) throw ConfigError("run_worker_range: step must be >= 1");
  // The shard compiles its study once and reuses the context for every
  // index of its stride. One batch buffer for the whole shard: results are
  // encoded straight into it, and it stops reallocating once it has grown
  // to the largest flush.
  runtime::ExperimentContext context;
  std::vector<std::uint8_t> batch;
  runtime::begin_result_batch(batch);
  for (int k = lo; k < hi; k += step) {
    try {
      runtime::ExperimentParams params = study.make_params(k);
      validate_experiment_params(params, experiment_context(study, k));
      const runtime::ExperimentResult result = context.run(params);
      runtime::append_result_ok_entry(batch, static_cast<std::uint32_t>(k),
                                      result);
    } catch (const std::exception& e) {
      runtime::append_result_error_entry(batch, static_cast<std::uint32_t>(k),
                                         runtime::classify_error(e), e.what());
      util::write_frame(out_fd, batch);
      return;  // first failure ends the shard — serial prefix semantics
    }
    if (batch.size() >= kBatchSoftBytes) {
      util::write_frame(out_fd, batch);
      runtime::begin_result_batch(batch);
    }
  }
  if (!runtime::result_batch_empty(batch)) util::write_frame(out_fd, batch);
}

ProcessPoolRunner::ProcessPoolRunner(int workers) : workers_(workers) {
  if (workers < 1)
    throw ConfigError("ProcessPoolRunner: workers must be >= 1, got " +
                      std::to_string(workers));
}

std::string ProcessPoolRunner::name() const {
  return "process-pool(" + std::to_string(workers_) + ")";
}

void ProcessPoolRunner::run_study(const runtime::StudyParams& study,
                                  const EmitFn& emit) {
  const int n = study.experiments;
  if (n <= 0) return;
  const int pool_size = workers_ < n ? workers_ : n;

  ShardPool pool;
  pool.read_fds.assign(static_cast<std::size_t>(pool_size), -1);
  std::vector<int> write_fds(static_cast<std::size_t>(pool_size), -1);

  for (int w = 0; w < pool_size; ++w) {
    int fds[2];
    if (::pipe(fds) != 0)
      throw std::runtime_error(std::string("process runner: pipe: ") +
                               std::strerror(errno));
    pool.read_fds[static_cast<std::size_t>(w)] = fds[0];
    write_fds[static_cast<std::size_t>(w)] = fds[1];
  }

  for (int w = 0; w < pool_size; ++w) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      const int err = errno;
      for (const int fd : write_fds)
        if (fd >= 0) ::close(fd);
      throw std::runtime_error(std::string("process runner: fork: ") +
                               std::strerror(err));
    }
    if (pid == 0) {
      // Shard w. Drop every pipe end except our own write end, so EOF on a
      // sibling's pipe means that sibling (and only it) is gone.
      ::signal(SIGPIPE, SIG_IGN);  // parent death -> EPIPE exception instead
      for (int v = 0; v < pool_size; ++v) {
        ::close(pool.read_fds[static_cast<std::size_t>(v)]);
        if (v != w) ::close(write_fds[static_cast<std::size_t>(v)]);
      }
      int exit_code = 0;
      try {
        run_worker_range(study, w, n, pool_size,
                         write_fds[static_cast<std::size_t>(w)]);
      } catch (...) {
        exit_code = 1;  // pipe I/O failure; the parent sees truncation
      }
      ::close(write_fds[static_cast<std::size_t>(w)]);
      // _exit, not exit: the child shares the parent's stdio buffers and
      // must not flush them a second time (nor run atexit handlers).
      ::_exit(exit_code);
    }
    pool.pids.push_back(pid);
  }
  for (int& fd : write_fds) {
    ::close(fd);
    fd = -1;
  }

  // Drain results in global index order: index k comes from shard k mod P,
  // and each shard writes its own indices in increasing order. Batches are
  // decoded whole into per-shard queues; the merge loop refills a shard's
  // queue by reading its next frame only when k's turn arrives, so memory
  // stays bounded by P batches plus the reorder-free merge.
  std::vector<std::deque<runtime::ResultFrame>> pending(
      static_cast<std::size_t>(pool_size));
  // One interner for the whole study: shards share the study's timeline
  // headers, so the decode hot path pays the dictionary-string allocations
  // once per distinct header instead of once per result.
  runtime::ResultInterner interner;
  for (int k = 0; k < n; ++k) {
    const auto w = static_cast<std::size_t>(k % pool_size);
    while (pending[w].empty()) {
      std::optional<std::vector<std::uint8_t>> frame;
      try {
        frame = util::read_frame(pool.read_fds[w]);
      } catch (const codec::DecodeError& e) {
        throw std::runtime_error(
            "process runner: " + experiment_context(study, k) +
            ": shard died mid-frame (" + e.what() + ")");
      }
      if (!frame.has_value())
        throw std::runtime_error(
            "process runner: " + experiment_context(study, k) +
            ": shard exited before delivering its result");
      std::vector<runtime::ResultFrame> entries;
      try {
        entries = runtime::decode_result_batch_frame(*frame, &interner);
      } catch (const codec::DecodeError& e) {
        throw std::runtime_error(
            "process runner: " + experiment_context(study, k) +
            ": shard sent a malformed result batch (" + e.what() + ")");
      }
      for (runtime::ResultFrame& entry : entries)
        pending[w].push_back(std::move(entry));
    }

    runtime::ResultFrame entry = std::move(pending[w].front());
    pending[w].pop_front();
    if (entry.index != static_cast<std::uint32_t>(k))
      throw std::runtime_error("process runner: shard protocol error: expected "
                               "index " + std::to_string(k) + ", got " +
                               std::to_string(entry.index));
    if (!entry.ok) {
      // The prefix 0..k-1 has been emitted; destroying `pool` kills the
      // surviving shards.
      runtime::rethrow_wire_error(entry.category, entry.message);
    }
    emit(k, std::move(entry.result));
  }

  pool.close_all();
  pool.reap();
}

}  // namespace loki::campaign
