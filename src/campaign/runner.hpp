// Pluggable experiment execution for the campaign facade.
//
// A Runner executes the experiments of one study and hands each result to
// an emit callback. The contract every implementation must honour:
//
//   * emit(k, result) is called exactly once per experiment index k,
//   * in increasing k order,
//   * on the thread that called run_study.
//
// Because run_experiment is deterministic in params.seed and every
// experiment builds its own World, experiments are embarrassingly parallel:
// ThreadPoolRunner produces byte-identical results (and an identical sink
// event sequence) to SerialRunner for the same studies.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "runtime/experiment.hpp"
#include "runtime/worker_stats.hpp"

namespace loki::campaign {

/// Receives experiment `index`'s result; see the ordering contract above.
using EmitFn = std::function<void(int index, runtime::ExperimentResult&&)>;

/// One heartbeat's worth of one worker's stats, as seen by the coordinator.
/// The arrival timestamp is coordinator-side (steady clock), so last-seen
/// ages and throughput windows need no cross-host clock agreement.
struct WorkerSnapshotSample {
  std::chrono::steady_clock::time_point arrived{};
  runtime::WorkerStatsSnapshot stats;
};

/// Per-worker telemetry slot inside FleetTelemetry: the latest cumulative
/// snapshot, a short ring buffer of recent snapshots (time-series for
/// throughput windows and the --status view), and this worker's share of
/// the fault-recovery counters.
struct WorkerTelemetry {
  /// Transport description (e.g. "fake:0", "fork:12345", "ssh host").
  std::string describe;
  /// Most recent snapshot received; supersedes the ring's older entries.
  runtime::WorkerStatsSnapshot latest;
  /// Recent snapshots, oldest first, capped at kSnapshotRing entries.
  std::vector<WorkerSnapshotSample> recent;
  /// Coordinator-side arrival time of the last frame (any type) from this
  /// worker — the liveness signal the --status view renders as an age.
  std::chrono::steady_clock::time_point last_seen{};
  /// Current lease span assigned to this worker (autotuned).
  int lease_size{0};
  /// Requeue events attributed to this worker's leases.
  int requeues{0};
  /// Times this worker's link was reopened after a loss (reconnect policy,
  /// campaign/remote_runner.hpp).
  int reconnects{0};
  /// True once the coordinator declared this worker lost. Cleared again by
  /// a successful reconnect.
  bool lost{false};
  /// True while the worker holds an active lease.
  bool busy{false};

  static constexpr std::size_t kSnapshotRing = 32;
};

/// Fleet-wide telemetry for runners that execute work on fallible backends
/// (campaign/remote_runner.hpp). The cumulative counters (requeues,
/// requeued_indices, workers_lost) survive across run_study calls — the
/// Campaign::Summary delta depends on that — while `workers` describes the
/// most recent (or in-flight) study's fleet.
struct FleetTelemetry {
  /// Lease requeue events after a lost, hung, or lossy worker.
  int requeues{0};
  /// Experiment indices sent back to the queue across those events (one
  /// event covering 5 unfinished indices counts 1 requeue, 5 indices).
  int requeued_indices{0};
  /// Worker links that died mid-study (crash, hang-kill, corrupt stream).
  /// A reconnected worker still counts here — the link really was lost.
  int workers_lost{0};
  /// Worker links reopened after a loss (Transport::reopen succeeded and
  /// the replacement completed its handshake).
  int reconnects{0};
  /// Lease span in effect when the last study finished — where the
  /// autotuner (campaign/remote_runner.hpp) converged from observed
  /// per-experiment latency. 0 for runners without leases.
  int final_lease_size{0};
  /// Per-worker slots for the current/most recent study, indexed by the
  /// transport's worker order. Reset at each run_study start.
  std::vector<WorkerTelemetry> workers;

  /// Campaign-wide aggregate of every worker's latest snapshot (merged
  /// histograms, completed-count-weighted EWMA).
  runtime::WorkerStatsSnapshot fleet_snapshot() const {
    runtime::WorkerStatsSnapshot merged;
    for (const WorkerTelemetry& w : workers)
      merged = runtime::merge_snapshots(merged, w.latest);
    return merged;
  }
};

/// Pre-fleet name for the counter subset; kept as an alias so existing
/// call sites (and the Campaign::Summary delta) read unchanged.
using RunnerTelemetry = FleetTelemetry;

class Runner {
 public:
  virtual ~Runner();

  virtual std::string name() const = 0;
  /// Number of experiments this runner executes concurrently.
  virtual int parallelism() const = 0;

  /// Execute experiments 0..study.experiments-1. Generated params are
  /// validated (ConfigError names the study and index) before running.
  virtual void run_study(const runtime::StudyParams& study,
                         const EmitFn& emit) = 0;

  /// Fault-recovery counters, cumulative across run_study calls. Runners
  /// on infallible backends keep the zero default.
  virtual RunnerTelemetry telemetry() const { return {}; }
};

/// Runs experiments one after another on the calling thread — the reference
/// implementation the parallel runners are held to.
class SerialRunner final : public Runner {
 public:
  std::string name() const override { return "serial"; }
  int parallelism() const override { return 1; }
  void run_study(const runtime::StudyParams& study, const EmitFn& emit) override;
};

/// Fans experiments out across a fixed pool of worker threads, then
/// re-orders completions so emit still observes the serial sequence. The
/// reorder buffer is bounded (O(workers)), so streaming sinks keep their
/// memory guarantee even when early experiments run long.
///
/// study.make_params is invoked under a lock: generators may capture shared
/// state by reference and are only required to be deterministic per index,
/// not thread-safe. run_experiment itself runs unlocked on the workers.
///
/// Failure semantics match SerialRunner: if experiment k throws (generator,
/// validation, or run), the completed prefix 0..k-1 is still emitted in
/// order, then k's exception is rethrown; no index past the first failing
/// one is emitted.
class ThreadPoolRunner final : public Runner {
 public:
  /// Throws ConfigError when workers < 1.
  explicit ThreadPoolRunner(int workers);

  std::string name() const override;
  int parallelism() const override { return workers_; }
  void run_study(const runtime::StudyParams& study, const EmitFn& emit) override;

 private:
  int workers_;
};

/// Convenience: 1 worker selects SerialRunner, more select ThreadPoolRunner.
std::shared_ptr<Runner> make_runner(int parallelism);

/// One runner-selection grammar for every CLI surface (lokimeasure,
/// examples, benches):
///
///   "serial"         SerialRunner
///   "threads:N"      ThreadPoolRunner(N)
///   "procs:N"        RemoteRunner over SubprocessTransport(N) — N local
///                    worker processes pulling leases from a dynamic work
///                    queue (campaign/remote_runner.hpp)
///   "static-procs:N" ProcessPoolRunner(N) — PR 2's static round-robin
///                    sharding (campaign/process_runner.hpp)
///   "remote:FILE"    RemoteRunner over SshTransport, one worker per
///                    hostfile line ('#' comments, blanks ignored)
///   "N"              make_runner(N) — the legacy bare-integer spelling
///
/// Throws ConfigError on anything else (including N < 1).
std::shared_ptr<Runner> parse_runner_spec(const std::string& spec);

}  // namespace loki::campaign
