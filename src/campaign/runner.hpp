// Pluggable experiment execution for the campaign facade.
//
// A Runner executes the experiments of one study and hands each result to
// an emit callback. The contract every implementation must honour:
//
//   * emit(k, result) is called exactly once per experiment index k,
//   * in increasing k order,
//   * on the thread that called run_study.
//
// Because run_experiment is deterministic in params.seed and every
// experiment builds its own World, experiments are embarrassingly parallel:
// ThreadPoolRunner produces byte-identical results (and an identical sink
// event sequence) to SerialRunner for the same studies.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "runtime/experiment.hpp"

namespace loki::campaign {

/// Receives experiment `index`'s result; see the ordering contract above.
using EmitFn = std::function<void(int index, runtime::ExperimentResult&&)>;

/// Cumulative fault-recovery counters for runners that execute work on
/// fallible backends (campaign/remote_runner.hpp). Counts only recoverable
/// infrastructure events — experiment failures throw instead.
struct RunnerTelemetry {
  /// Lease requeue events after a lost, hung, or lossy worker.
  int requeues{0};
  /// Worker links that died mid-study (crash, hang-kill, corrupt stream).
  int workers_lost{0};
  /// Lease span in effect when the last study finished — where the
  /// autotuner (campaign/remote_runner.hpp) converged from observed
  /// per-experiment latency. 0 for runners without leases.
  int final_lease_size{0};
};

class Runner {
 public:
  virtual ~Runner();

  virtual std::string name() const = 0;
  /// Number of experiments this runner executes concurrently.
  virtual int parallelism() const = 0;

  /// Execute experiments 0..study.experiments-1. Generated params are
  /// validated (ConfigError names the study and index) before running.
  virtual void run_study(const runtime::StudyParams& study,
                         const EmitFn& emit) = 0;

  /// Fault-recovery counters, cumulative across run_study calls. Runners
  /// on infallible backends keep the zero default.
  virtual RunnerTelemetry telemetry() const { return {}; }
};

/// Runs experiments one after another on the calling thread — the reference
/// implementation the parallel runners are held to.
class SerialRunner final : public Runner {
 public:
  std::string name() const override { return "serial"; }
  int parallelism() const override { return 1; }
  void run_study(const runtime::StudyParams& study, const EmitFn& emit) override;
};

/// Fans experiments out across a fixed pool of worker threads, then
/// re-orders completions so emit still observes the serial sequence. The
/// reorder buffer is bounded (O(workers)), so streaming sinks keep their
/// memory guarantee even when early experiments run long.
///
/// study.make_params is invoked under a lock: generators may capture shared
/// state by reference and are only required to be deterministic per index,
/// not thread-safe. run_experiment itself runs unlocked on the workers.
///
/// Failure semantics match SerialRunner: if experiment k throws (generator,
/// validation, or run), the completed prefix 0..k-1 is still emitted in
/// order, then k's exception is rethrown; no index past the first failing
/// one is emitted.
class ThreadPoolRunner final : public Runner {
 public:
  /// Throws ConfigError when workers < 1.
  explicit ThreadPoolRunner(int workers);

  std::string name() const override;
  int parallelism() const override { return workers_; }
  void run_study(const runtime::StudyParams& study, const EmitFn& emit) override;

 private:
  int workers_;
};

/// Convenience: 1 worker selects SerialRunner, more select ThreadPoolRunner.
std::shared_ptr<Runner> make_runner(int parallelism);

/// One runner-selection grammar for every CLI surface (lokimeasure,
/// examples, benches):
///
///   "serial"         SerialRunner
///   "threads:N"      ThreadPoolRunner(N)
///   "procs:N"        RemoteRunner over SubprocessTransport(N) — N local
///                    worker processes pulling leases from a dynamic work
///                    queue (campaign/remote_runner.hpp)
///   "static-procs:N" ProcessPoolRunner(N) — PR 2's static round-robin
///                    sharding (campaign/process_runner.hpp)
///   "remote:FILE"    RemoteRunner over SshTransport, one worker per
///                    hostfile line ('#' comments, blanks ignored)
///   "N"              make_runner(N) — the legacy bare-integer spelling
///
/// Throws ConfigError on anything else (including N < 1).
std::shared_ptr<Runner> parse_runner_spec(const std::string& spec);

}  // namespace loki::campaign
