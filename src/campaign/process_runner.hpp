// Process-sharded campaign execution.
//
// ProcessPoolRunner forks `workers` shard processes per study. Shard w runs
// experiment indices w, w+P, w+2P, ... (round-robin), encoding each
// ExperimentResult with the versioned wire format (runtime/serialize.hpp)
// and streaming it back over a private pipe as length-prefixed frames
// (util/pipe_io.hpp). The parent reads index k from shard k mod P, so
// frames arrive exactly in index order and emit observes the serial
// sequence with O(1) buffered results; pipe capacity provides natural
// backpressure on shards that run ahead.
//
// fork() (no exec) means arbitrary make_params closures and app factories
// work unchanged — the child inherits them. The exec'd flavour of the same
// protocol is `lokimeasure --worker`, which reconstructs the study from an
// encoded StudyParams file instead.
//
// Contract (matching SerialRunner / ThreadPoolRunner):
//   * emit(k, result) exactly once per index, in increasing k, on the
//     calling thread;
//   * failure-prefix semantics: if experiment k fails (generator,
//     validation, run) or its shard dies mid-study, the completed prefix
//     0..k-1 is emitted first, then an exception is thrown and no index
//     past k is emitted. Exceptions crossing the process boundary are
//     rehydrated by category (ConfigError / LogicError / runtime_error)
//     with the original message.
#pragma once

#include <string>

#include "campaign/runner.hpp"

namespace loki::campaign {

class ProcessPoolRunner final : public Runner {
 public:
  /// Throws ConfigError when workers < 1.
  explicit ProcessPoolRunner(int workers);

  std::string name() const override;
  int parallelism() const override { return workers_; }
  void run_study(const runtime::StudyParams& study, const EmitFn& emit) override;

 private:
  int workers_;
};

/// Shard body, shared by the forked children and `lokimeasure --worker`:
/// run experiment indices lo, lo+step, lo+2*step, ... (< hi) of `study`,
/// writing one frame per experiment to `out_fd`. A failing experiment
/// produces an error frame and ends the range (later indices of this shard
/// are not run — they are past the first failure by construction). Never
/// throws for per-experiment failures; propagates only I/O errors on
/// `out_fd` itself.
void run_worker_range(const runtime::StudyParams& study, int lo, int hi,
                      int step, int out_fd);

}  // namespace loki::campaign
