#include "campaign/cache.hpp"

#include <fstream>
#include <utility>
#include <vector>

#include "runtime/serialize.hpp"
#include "util/codec.hpp"
#include "util/error.hpp"

#include <unistd.h>

namespace loki::campaign {

namespace {

bool is_hex_key(const std::string& key) {
  if (key.size() != 64) return false;
  for (const char c : key)
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  return true;
}

}  // namespace

ResultCache::ResultCache(std::filesystem::path dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec)
    throw ConfigError("ResultCache: cannot create directory '" +
                      dir_.string() + "': " + ec.message());
}

std::filesystem::path ResultCache::path_of(const std::string& key) const {
  if (!is_hex_key(key))
    throw ConfigError("ResultCache: malformed key '" + key +
                      "' (expected 64 hex chars)");
  return dir_ / (key + ".result");
}

bool ResultCache::contains(const std::string& key) {
  std::error_code ec;
  const bool present = std::filesystem::exists(path_of(key), ec) && !ec;
  if (!present) {
    util::MutexLock lock(mu_);
    ++stats_.misses;
  }
  return present;
}

std::optional<runtime::ExperimentResult> ResultCache::lookup(
    const std::string& key) {
  const auto miss = [this] {
    util::MutexLock lock(mu_);
    ++stats_.misses;
  };
  const std::filesystem::path path = path_of(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    miss();
    return std::nullopt;
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    miss();
    return std::nullopt;
  }
  try {
    runtime::ExperimentResult result = runtime::decode_experiment_result(bytes);
    {
      util::MutexLock lock(mu_);
      ++stats_.hits;
    }
    return result;
  } catch (const codec::DecodeError&) {
    // Torn or foreign-version file: a miss, not an error — the store()
    // after the re-run overwrites it atomically.
    miss();
    return std::nullopt;
  }
}

void ResultCache::store(const std::string& key,
                        const runtime::ExperimentResult& result) {
  const std::filesystem::path path = path_of(key);
  const std::vector<std::uint8_t> bytes =
      runtime::encode_experiment_result(result);
  // Unique temp name per process and store: concurrent writers of the same
  // key never collide mid-write, and rename() makes the publish atomic.
  std::uint64_t serial = 0;
  {
    util::MutexLock lock(mu_);
    serial = temp_counter_++;
  }
  const std::filesystem::path tmp =
      dir_ / (key + ".tmp." + std::to_string(::getpid()) + "." +
              std::to_string(serial));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      throw ConfigError("ResultCache: cannot write '" + tmp.string() + "'");
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out.good())
      throw ConfigError("ResultCache: short write to '" + tmp.string() + "'");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw ConfigError("ResultCache: cannot publish '" + path.string() + "'");
  }
  util::MutexLock lock(mu_);
  ++stats_.stores;
}

CacheSink::CacheSink(std::shared_ptr<ResultCache> cache)
    : cache_(std::move(cache)) {
  if (!cache_) throw ConfigError("CacheSink: null cache");
}

CacheSink& CacheSink::study(runtime::StudyParams study) {
  if (study.name.empty() || !study.make_params)
    throw ConfigError("CacheSink: study needs a name and make_params");
  const std::string name = study.name;
  studies_.insert_or_assign(name, std::move(study));
  return *this;
}

void CacheSink::on_experiment(const StudyInfo& study, int index,
                              const runtime::ExperimentResult& result) {
  const auto it = studies_.find(study.name);
  if (it == studies_.end()) return;
  cache_->store(
      runtime::experiment_cache_key(it->second.make_params(index)), result);
}

}  // namespace loki::campaign
