#include "campaign/cache.hpp"

#include <algorithm>
#include <fstream>
#include <utility>
#include <vector>

#include "runtime/serialize.hpp"
#include "util/atomic_file.hpp"
#include "util/codec.hpp"
#include "util/error.hpp"

namespace loki::campaign {

namespace {

constexpr const char* kIndexFile = "cache.index";
constexpr char kIndexMagic[4] = {'L', 'O', 'K', 'C'};
constexpr std::uint16_t kIndexVersion = 1;
/// Stores between periodic index persists. The index is an accounting
/// accelerator only — losing the tail costs a directory rescan, not data.
constexpr std::uint64_t kPersistEvery = 256;

bool is_hex_key(const std::string& key) {
  if (key.size() != 64) return false;
  for (const char c : key)
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  return true;
}

}  // namespace

ResultCache::ResultCache(std::filesystem::path dir, CacheOptions options)
    : dir_(std::move(dir)), options_(options) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec)
    throw ConfigError("ResultCache: cannot create directory '" +
                      dir_.string() + "': " + ec.message());
  util::MutexLock lock(mu_);
  load_index();
}

ResultCache::~ResultCache() {
  try {
    flush_index();
  } catch (...) {
    // Best-effort: a failed index persist only costs a rescan next open.
  }
}

std::filesystem::path ResultCache::path_of(const std::string& key) const {
  if (!is_hex_key(key))
    throw ConfigError("ResultCache: malformed key '" + key +
                      "' (expected 64 hex chars)");
  return dir_ / (key + ".result");
}

// --- generation index --------------------------------------------------------

void ResultCache::load_index() {
  index_.clear();
  total_bytes_ = 0;
  std::ifstream in(dir_ / kIndexFile, std::ios::binary);
  if (in) {
    std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                    std::istreambuf_iterator<char>());
    try {
      codec::Reader r(bytes);
      for (const char c : kIndexMagic)
        if (r.u8() != static_cast<std::uint8_t>(c))
          throw codec::DecodeError("bad index magic");
      if (r.u16() != kIndexVersion)
        throw codec::DecodeError("unknown index version");
      std::uint64_t max_gen = r.u64();
      const std::uint64_t count = r.u64();
      std::map<std::string, Entry> loaded;
      std::uint64_t total = 0;
      for (std::uint64_t i = 0; i < count; ++i) {
        const std::string key = r.str();
        Entry entry;
        entry.bytes = r.u64();
        entry.generation = r.u64();
        if (!is_hex_key(key)) throw codec::DecodeError("bad index key");
        // The file, not the index, is the truth: an entry deleted behind
        // the index's back (a shared dir, a manual prune) is dropped here.
        std::error_code ec;
        if (!std::filesystem::exists(path_of(key), ec) || ec) continue;
        total += entry.bytes;
        max_gen = std::max(max_gen, entry.generation);
        loaded.insert_or_assign(key, entry);
      }
      r.expect_done();
      index_ = std::move(loaded);
      total_bytes_ = total;
      // Everything this open touches outranks everything a previous open
      // did, whatever order the counters interleaved on disk.
      generation_ = max_gen + 1;
      return;
    } catch (const codec::DecodeError&) {
      // Torn or foreign index (e.g. a crash before the first persist):
      // fall through to the rescan.
    }
  }
  rebuild_index_from_disk();
}

void ResultCache::rebuild_index_from_disk() {
  index_.clear();
  total_bytes_ = 0;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir_, ec);
  if (ec) return;  // unreadable dir: surface later, at the first store
  for (const auto& dirent : it) {
    const std::filesystem::path& p = dirent.path();
    if (p.extension() != ".result") continue;
    const std::string key = p.stem().string();
    if (!is_hex_key(key)) continue;
    std::error_code size_ec;
    const std::uintmax_t bytes = std::filesystem::file_size(p, size_ec);
    if (size_ec) continue;
    Entry entry;
    entry.bytes = static_cast<std::uint64_t>(bytes);
    entry.generation = 0;  // pre-history: evicted first, refreshed on touch
    total_bytes_ += entry.bytes;
    index_.insert_or_assign(key, entry);
  }
  generation_ = 1;
}

void ResultCache::persist_index() {
  codec::Writer w;
  for (const char c : kIndexMagic) w.u8(static_cast<std::uint8_t>(c));
  w.u16(kIndexVersion);
  w.u64(generation_);
  w.u64(index_.size());
  for (const auto& [key, entry] : index_) {
    w.str(key);
    w.u64(entry.bytes);
    w.u64(entry.generation);
  }
  const std::vector<std::uint8_t> bytes = w.take();
  util::atomic_write_file(dir_ / kIndexFile, bytes.data(), bytes.size());
  stores_since_persist_ = 0;
}

void ResultCache::flush_index() {
  util::MutexLock lock(mu_);
  persist_index();
}

void ResultCache::touch(const std::string& key, std::uint64_t bytes) {
  auto [it, inserted] = index_.try_emplace(key);
  if (!inserted) total_bytes_ -= it->second.bytes;
  it->second.bytes = bytes;
  it->second.generation = ++generation_;
  total_bytes_ += bytes;
}

void ResultCache::gc() {
  const auto over_budget = [&] {
    return (options_.max_entries > 0 && index_.size() > options_.max_entries) ||
           (options_.max_bytes > 0 && total_bytes_ > options_.max_bytes);
  };
  while (over_budget()) {
    // Lowest generation goes first; the newest entry (generation_) is the
    // one the caller just stored or served and is never evicted — a budget
    // of one entry must not eat the result the campaign is about to emit.
    auto victim = index_.end();
    for (auto it = index_.begin(); it != index_.end(); ++it)
      if (it->second.generation != generation_ &&
          (victim == index_.end() ||
           it->second.generation < victim->second.generation))
        victim = it;
    if (victim == index_.end()) return;  // only the just-touched entry left
    std::error_code ec;
    std::filesystem::remove(path_of(victim->first), ec);
    // A failed remove (EACCES on a shared dir?) still drops the entry from
    // the accounting: the next open's rescan re-adopts whatever survived.
    total_bytes_ -= victim->second.bytes;
    index_.erase(victim);
    ++stats_.evictions;
  }
}

// --- the cache proper --------------------------------------------------------

bool ResultCache::contains(const std::string& key) {
  std::error_code ec;
  const bool present = std::filesystem::exists(path_of(key), ec) && !ec;
  if (!present) {
    util::MutexLock lock(mu_);
    ++stats_.misses;
  }
  return present;
}

std::optional<runtime::ExperimentResult> ResultCache::lookup(
    const std::string& key) {
  const auto miss = [this] {
    util::MutexLock lock(mu_);
    ++stats_.misses;
  };
  const std::filesystem::path path = path_of(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    miss();
    return std::nullopt;
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    miss();
    return std::nullopt;
  }
  try {
    runtime::ExperimentResult result = runtime::decode_experiment_result(bytes);
    {
      util::MutexLock lock(mu_);
      ++stats_.hits;
      touch(key, static_cast<std::uint64_t>(bytes.size()));
    }
    return result;
  } catch (const codec::DecodeError&) {
    // Torn or foreign-version file. Not a plain miss: quarantine it so the
    // re-run's store() publishes fresh bytes instead of racing the damaged
    // file, and so Stats make a rotting store visible. The quarantined copy
    // keeps the evidence for a post-mortem.
    try {
      util::rename_path(path, dir_ / (key + ".corrupt"));
    } catch (const util::WriteError&) {
      // The entry vanished between read and rename — already gone.
    }
    util::MutexLock lock(mu_);
    ++stats_.corrupt;
    ++stats_.misses;
    auto it = index_.find(key);
    if (it != index_.end()) {
      total_bytes_ -= it->second.bytes;
      index_.erase(it);
    }
    return std::nullopt;
  }
}

void ResultCache::store(const std::string& key,
                        const runtime::ExperimentResult& result) {
  const std::filesystem::path path = path_of(key);
  const std::vector<std::uint8_t> bytes =
      runtime::encode_experiment_result(result);
  // Durable publish: temp, write, fsync, atomic rename. Concurrent writers
  // of the same key never collide (unique temp names) and any winner's
  // bytes are correct for the key. The fsync is what lets the campaign
  // journal treat a journaled index as replayable: IndexDone is only
  // written after this returns, so a journaled key always has durable
  // bytes behind it.
  try {
    util::atomic_write_file(path, bytes.data(), bytes.size());
  } catch (const util::WriteError& e) {
    throw CacheError("ResultCache: store of key " + key +
                     " failed: " + e.what());
  }
  util::MutexLock lock(mu_);
  ++stats_.stores;
  touch(key, static_cast<std::uint64_t>(bytes.size()));
  gc();
  if (++stores_since_persist_ >= kPersistEvery) {
    try {
      persist_index();
    } catch (const util::WriteError& e) {
      throw CacheError(std::string("ResultCache: index persist failed: ") +
                       e.what());
    }
  }
}

CacheSink::CacheSink(std::shared_ptr<ResultCache> cache)
    : cache_(std::move(cache)) {
  if (!cache_) throw ConfigError("CacheSink: null cache");
}

CacheSink& CacheSink::study(runtime::StudyParams study) {
  if (study.name.empty() || !study.make_params)
    throw ConfigError("CacheSink: study needs a name and make_params");
  const std::string name = study.name;
  studies_.insert_or_assign(name, std::move(study));
  return *this;
}

void CacheSink::on_experiment(const StudyInfo& study, int index,
                              const runtime::ExperimentResult& result) {
  const auto it = studies_.find(study.name);
  if (it == studies_.end()) return;
  cache_->store(
      runtime::experiment_cache_key(it->second.make_params(index)), result);
}

}  // namespace loki::campaign
