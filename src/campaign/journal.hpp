// Write-ahead campaign journal: the coordinator's crash-safety log.
//
// A journaled campaign records, before every sink emit, that experiment k of
// study s completed with result key K (runtime/serialize.hpp journal
// records). Combined with the ResultCache's durability ordering —
//
//   cache.store(key, result)   (fsync + atomic rename: durable)
//   journal IndexDone{s, k, key}
//   emit(k, result)            (sinks observe it)
//
// — a crash at ANY point leaves the journal a contiguous prefix of the emit
// order whose every entry has a durable cache file. Campaign::run's resume
// path replays that prefix straight from the cache (no re-execution, no
// re-validation) and runs only the tail; because tail indices that completed
// before the crash are still cache hits, the resumed sink sequence is
// byte-identical to an uninterrupted run and no journaled index ever
// re-executes.
//
// Group commit: IndexDone records buffer and are written+fsync'd every
// `Options::group_records` records (and at every study/campaign boundary,
// flush(), or destruction), so the serial hot path pays one fsync per group
// instead of per experiment — the CI perf gate on campaign_study1/serial
// stays green. Buffered records lost in a crash only shrink the journaled
// prefix; the affected indices are re-served from the cache as ordinary
// tail hits.
//
// The journal is append-only and versioned (runtime::kJournalVersion); a
// torn tail record — the signature of a mid-write crash — is detected by
// its checksum and treated as unwritten. load() parses and structurally
// validates the readable prefix; digest validation against the resumed
// campaign's studies happens in Campaign::run, which knows the studies.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "runtime/experiment.hpp"

namespace loki::campaign {

/// Everything a resume needs from an existing journal: per-study progress
/// (the contiguous journaled prefix of each study's emit order) plus the
/// campaign-level identity the writer recorded.
struct JournalState {
  std::string runner_spec;
  std::uint64_t seed{0};
  std::uint32_t studies{0};
  /// False when the file holds no (complete) CampaignBegin — a coordinator
  /// killed at birth. Resume treats such a journal as a fresh start.
  bool campaign_begun{false};
  bool campaign_done{false};
  /// True when the file ended in a torn/corrupt record (discarded) — the
  /// expected shape of a SIGKILL mid-append, surfaced for diagnostics.
  bool truncated_tail{false};

  struct StudyProgress {
    std::string name;
    std::string digest;
    std::uint32_t experiments{0};
    /// Result keys of the journaled prefix, in emit order: entry k is
    /// experiment k's cache key. Always contiguous from 0 (validated).
    std::vector<std::string> done_keys;
    bool ended{false};
  };
  /// One entry per StudyBegin seen, in campaign order.
  std::vector<StudyProgress> progress;
};

class CampaignJournal {
 public:
  struct Options {
    /// IndexDone records per group commit. 1 = fsync every record (the
    /// crash-resume tests use this to place kill points exactly).
    // (No default member initializer: these Options are a default argument
    // inside the enclosing class, where an NSDMI is not yet usable.)
    int group_records;
    Options() : group_records(32) {}
    explicit Options(int group) : group_records(group) {}
  };

  /// Start a fresh journal at `path` (truncating any previous file) and
  /// write the header. Throws ConfigError when the file cannot be created.
  static CampaignJournal create(const std::filesystem::path& path,
                                Options options = Options());

  /// Open an existing journal for appending (the resume case). The caller
  /// is expected to have load()ed and validated it first.
  static CampaignJournal append_to(const std::filesystem::path& path,
                                   Options options = Options());

  /// Parse the readable prefix of the journal at `path`. Structural
  /// validation only: header, record order, contiguous per-study indices.
  /// Throws ConfigError on a missing/garbled file or an order violation; a
  /// torn tail is tolerated (truncated_tail).
  static JournalState load(const std::filesystem::path& path);

  CampaignJournal(CampaignJournal&& other) noexcept;
  CampaignJournal& operator=(CampaignJournal&&) = delete;
  CampaignJournal(const CampaignJournal&) = delete;
  CampaignJournal& operator=(const CampaignJournal&) = delete;
  /// Flushes buffered records (best-effort) and closes the fd.
  ~CampaignJournal();

  void campaign_begin(const std::string& runner_spec, std::uint64_t seed,
                      std::uint32_t studies);
  void study_begin(std::uint32_t study, const std::string& name,
                   const std::string& digest, std::uint32_t experiments);
  /// Buffered (group commit); see the header comment for the safety story.
  void index_done(std::uint32_t study, std::uint32_t index,
                  const std::string& result_key);
  void study_end(std::uint32_t study);
  void campaign_end();

  /// Write and fsync everything buffered. Called automatically by every
  /// non-IndexDone record, at group boundaries, and at destruction.
  void flush();

  const std::filesystem::path& path() const { return path_; }

 private:
  CampaignJournal(int fd, std::filesystem::path path, Options options);
  void append(const std::vector<std::uint8_t>& bytes, bool durable);

  int fd_{-1};
  std::filesystem::path path_;
  Options options_;
  std::vector<std::uint8_t> pending_;
  int pending_records_{0};
};

/// Content digest binding a study's identity for resume validation: sha256
/// over the study name, the experiment count, and experiment 0's cache key
/// (which already hashes the full encoded params, wire version included).
/// O(1) in the study size — resuming a million-experiment campaign must not
/// re-encode a million param sets just to check it is the same campaign.
std::string study_digest(const runtime::StudyParams& study);

}  // namespace loki::campaign
