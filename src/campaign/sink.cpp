#include "campaign/sink.hpp"

#include <cstddef>

#include <unistd.h>

#include "util/error.hpp"

namespace loki::campaign {

ResultSink::~ResultSink() = default;
void ResultSink::on_campaign_begin(int) {}
void ResultSink::on_study_begin(const StudyInfo&) {}
void ResultSink::on_experiment(const StudyInfo&, int,
                               const runtime::ExperimentResult&) {}
void ResultSink::on_study_done(const StudyInfo&) {}
void ResultSink::on_campaign_done() {}

// --- CollectSink -------------------------------------------------------------

void CollectSink::on_study_begin(const StudyInfo& study) {
  result_.studies.push_back(runtime::StudyResult{study.name, {}});
}

void CollectSink::on_experiment(const StudyInfo&, int,
                                const runtime::ExperimentResult& result) {
  LOKI_REQUIRE(!result_.studies.empty(), "experiment before study begin");
  result_.studies.back().experiments.push_back(result);
}

// --- AnalysisSink ------------------------------------------------------------

AnalysisSink::AnalysisSink(analysis::AnalysisOptions options)
    : options_(std::move(options)) {}

AnalysisSink& AnalysisSink::keep_analyses(bool keep) {
  keep_ = keep;
  return *this;
}

AnalysisSink& AnalysisSink::on_analysis(Callback callback) {
  LOKI_REQUIRE(callback != nullptr, "null analysis callback");
  callbacks_.push_back(std::move(callback));
  return *this;
}

const AnalysisSink::StudyAnalyses* AnalysisSink::find(
    const std::string& study) const {
  for (const StudyAnalyses& s : studies_)
    if (s.study == study) return &s;
  return nullptr;
}

void AnalysisSink::on_study_begin(const StudyInfo& study) {
  studies_.push_back(StudyAnalyses{study.name, 0, 0, {}});
}

void AnalysisSink::on_experiment(const StudyInfo& study, int index,
                                 const runtime::ExperimentResult& result) {
  LOKI_REQUIRE(!studies_.empty(), "experiment before study begin");
  analysis::ExperimentAnalysis a = analysis::analyze_experiment(result, options_);
  StudyAnalyses& record = studies_.back();
  ++record.total;
  if (a.accepted) ++record.accepted;
  for (const Callback& cb : callbacks_) cb(study, index, a);
  if (keep_) record.analyses.push_back(std::move(a));
}

// --- MeasureSink -------------------------------------------------------------

MeasureSink::MeasureSink(analysis::AnalysisOptions options)
    : AnalysisSink(std::move(options)) {
  keep_analyses(false);
  on_analysis([this](const StudyInfo& study, int,
                     const analysis::ExperimentAnalysis& a) {
    const measure::StudyMeasure* m = nullptr;
    const auto it = measures_.find(study.name);
    if (it != measures_.end()) {
      m = &it->second;
    } else if (fallback_.has_value()) {
      m = &*fallback_;
    }
    if (m == nullptr) return;
    auto [slot, inserted] = values_.try_emplace(study.name);
    if (inserted) order_.push_back(study.name);
    if (!a.accepted) return;  // analysis discarded the experiment (§2.5)
    const std::optional<double> value = m->apply(a);
    if (value.has_value()) slot->second.push_back(*value);
  });
}

MeasureSink& MeasureSink::measure(const std::string& study,
                                  measure::StudyMeasure m) {
  measures_[study] = std::move(m);
  return *this;
}

MeasureSink& MeasureSink::measure_all(measure::StudyMeasure m) {
  fallback_ = std::move(m);
  return *this;
}

const std::vector<double>* MeasureSink::values(const std::string& study) const {
  const auto it = values_.find(study);
  return it == values_.end() ? nullptr : &it->second;
}

std::vector<measure::StudySample> MeasureSink::samples() const {
  std::vector<measure::StudySample> out;
  out.reserve(order_.size());
  for (const std::string& study : order_)
    out.push_back(measure::StudySample{study, values_.at(study)});
  return out;
}

// --- ProgressSink ------------------------------------------------------------

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

ProgressSink::ProgressSink(std::FILE* out, int every)
    : out_(out), every_(every) {}

void ProgressSink::on_campaign_begin(int studies) {
  total_studies_ = studies;
  campaign_start_ = std::chrono::steady_clock::now();
}

void ProgressSink::on_study_begin(const StudyInfo& study) {
  completed_ = 0;
  timed_out_ = 0;
  study_start_ = std::chrono::steady_clock::now();
  std::fprintf(out_, "[%d/%d] study '%s': %d experiments\n", study.index + 1,
               total_studies_, study.name.c_str(), study.experiments);
  std::fflush(out_);
}

void ProgressSink::on_experiment(const StudyInfo& study, int index,
                                 const runtime::ExperimentResult& result) {
  if (result.completed) ++completed_;
  if (result.timed_out) ++timed_out_;
  if (every_ > 0 && (index + 1) % every_ == 0 && index + 1 < study.experiments) {
    std::fprintf(out_, "  %s: %d/%d\n", study.name.c_str(), index + 1,
                 study.experiments);
    std::fflush(out_);
  }
}

void ProgressSink::on_study_done(const StudyInfo& study) {
  std::fprintf(out_, "  %s: done in %.2f s (%d completed, %d timed out)\n",
               study.name.c_str(), seconds_since(study_start_), completed_,
               timed_out_);
  std::fflush(out_);
}

void ProgressSink::on_campaign_done() {
  std::fprintf(out_, "campaign done in %.2f s\n",
               seconds_since(campaign_start_));
  std::fflush(out_);
}

// --- StatusSink --------------------------------------------------------------

namespace {

/// Human-scale latency: µs below 1 ms, ms below 1 s, seconds above.
std::string format_us(double us) {
  char buf[32];
  if (us >= 1e6)
    std::snprintf(buf, sizeof buf, "%.1fs", us / 1e6);
  else if (us >= 1e3)
    std::snprintf(buf, sizeof buf, "%.1fms", us / 1e3);
  else
    std::snprintf(buf, sizeof buf, "%.0fus", us);
  return buf;
}

}  // namespace

StatusSink::StatusSink(std::shared_ptr<Runner> runner, std::FILE* out,
                       std::chrono::milliseconds refresh)
    : runner_(std::move(runner)), out_(out), refresh_(refresh) {
  LOKI_REQUIRE(runner_ != nullptr, "StatusSink: null runner");
  LOKI_REQUIRE(out_ != nullptr, "StatusSink: null output stream");
  tty_ = ::isatty(::fileno(out_)) == 1;
}

void StatusSink::on_experiment(const StudyInfo&, int,
                               const runtime::ExperimentResult&) {
  if (rendered_ && std::chrono::steady_clock::now() - last_render_ < refresh_)
    return;
  render(false);
}

void StatusSink::on_campaign_done() { render(true); }

void StatusSink::render(bool final_view) {
  const auto now = std::chrono::steady_clock::now();
  const RunnerTelemetry fleet = runner_->telemetry();
  if (tty_ && lines_up_ > 0) std::fprintf(out_, "\x1b[%dA", lines_up_);
  int lines = 0;
  const auto line = [&](const char* fmt, auto... args) {
    if (tty_) std::fputs("\x1b[2K", out_);  // clear the stale frame's tail
    std::fprintf(out_, fmt, args...);
    std::fputc('\n', out_);
    ++lines;
  };

  if (fleet.workers.empty()) {
    line("status: runner '%s' reports no per-worker telemetry",
         runner_->name().c_str());
  } else {
    for (std::size_t w = 0; w < fleet.workers.size(); ++w) {
      const WorkerTelemetry& wt = fleet.workers[w];
      // Throughput over the snapshot ring's window: completed delta over
      // arrival-time delta, all coordinator-side clocks.
      double rate = 0.0;
      if (wt.recent.size() >= 2) {
        const WorkerSnapshotSample& first = wt.recent.front();
        const WorkerSnapshotSample& last = wt.recent.back();
        const double window =
            std::chrono::duration<double>(last.arrived - first.arrived).count();
        if (window > 0.0)
          rate = static_cast<double>(last.stats.experiments_completed -
                                     first.stats.experiments_completed) /
                 window;
      }
      const runtime::LatencyHistogram& h = wt.latest.histogram;
      const char* state = wt.lost ? "lost" : (wt.busy ? "busy" : "idle");
      line("  w%zu %-16s %4s  %6llu done %7.1f/s  p50 %s p95 %s p99 %s  "
           "lease %d  requeues %d  reconnects %d  seen %.1fs ago",
           w, wt.describe.empty() ? "(unconnected)" : wt.describe.c_str(),
           state,
           static_cast<unsigned long long>(wt.latest.experiments_completed),
           rate, format_us(h.quantile_us(0.50)).c_str(),
           format_us(h.quantile_us(0.95)).c_str(),
           format_us(h.quantile_us(0.99)).c_str(), wt.lease_size, wt.requeues,
           wt.reconnects,
           std::chrono::duration<double>(now - wt.last_seen).count());
    }
  }
  const runtime::WorkerStatsSnapshot merged = fleet.fleet_snapshot();
  line("fleet%s: %llu done  p50 %s p95 %s p99 %s  requeues %d (%d indices)  "
       "lost %d  reconnects %d  lease %d",
       final_view ? " (final)" : "",
       static_cast<unsigned long long>(merged.experiments_completed),
       format_us(merged.histogram.quantile_us(0.50)).c_str(),
       format_us(merged.histogram.quantile_us(0.95)).c_str(),
       format_us(merged.histogram.quantile_us(0.99)).c_str(), fleet.requeues,
       fleet.requeued_indices, fleet.workers_lost, fleet.reconnects,
       fleet.final_lease_size);
  std::fflush(out_);
  lines_up_ = lines;
  last_render_ = now;
  rendered_ = true;
}

// --- CallbackSink ------------------------------------------------------------

CallbackSink& CallbackSink::experiment(ExperimentFn fn) {
  experiment_ = std::move(fn);
  return *this;
}

CallbackSink& CallbackSink::study_begin(StudyFn fn) {
  study_begin_ = std::move(fn);
  return *this;
}

CallbackSink& CallbackSink::study_done(StudyFn fn) {
  study_done_ = std::move(fn);
  return *this;
}

CallbackSink& CallbackSink::campaign_begin(CampaignBeginFn fn) {
  campaign_begin_ = std::move(fn);
  return *this;
}

CallbackSink& CallbackSink::campaign_done(CampaignDoneFn fn) {
  campaign_done_ = std::move(fn);
  return *this;
}

void CallbackSink::on_campaign_begin(int studies) {
  if (campaign_begin_) campaign_begin_(studies);
}

void CallbackSink::on_study_begin(const StudyInfo& study) {
  if (study_begin_) study_begin_(study);
}

void CallbackSink::on_experiment(const StudyInfo& study, int index,
                                 const runtime::ExperimentResult& result) {
  if (experiment_) experiment_(study, index, result);
}

void CallbackSink::on_study_done(const StudyInfo& study) {
  if (study_done_) study_done_(study);
}

void CallbackSink::on_campaign_done() {
  if (campaign_done_) campaign_done_();
}

}  // namespace loki::campaign
