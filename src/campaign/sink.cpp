#include "campaign/sink.hpp"

#include "util/error.hpp"

namespace loki::campaign {

ResultSink::~ResultSink() = default;
void ResultSink::on_campaign_begin(int) {}
void ResultSink::on_study_begin(const StudyInfo&) {}
void ResultSink::on_experiment(const StudyInfo&, int,
                               const runtime::ExperimentResult&) {}
void ResultSink::on_study_done(const StudyInfo&) {}
void ResultSink::on_campaign_done() {}

// --- CollectSink -------------------------------------------------------------

void CollectSink::on_study_begin(const StudyInfo& study) {
  result_.studies.push_back(runtime::StudyResult{study.name, {}});
}

void CollectSink::on_experiment(const StudyInfo&, int,
                                const runtime::ExperimentResult& result) {
  LOKI_REQUIRE(!result_.studies.empty(), "experiment before study begin");
  result_.studies.back().experiments.push_back(result);
}

// --- AnalysisSink ------------------------------------------------------------

AnalysisSink::AnalysisSink(analysis::AnalysisOptions options)
    : options_(std::move(options)) {}

AnalysisSink& AnalysisSink::keep_analyses(bool keep) {
  keep_ = keep;
  return *this;
}

AnalysisSink& AnalysisSink::on_analysis(Callback callback) {
  LOKI_REQUIRE(callback != nullptr, "null analysis callback");
  callbacks_.push_back(std::move(callback));
  return *this;
}

const AnalysisSink::StudyAnalyses* AnalysisSink::find(
    const std::string& study) const {
  for (const StudyAnalyses& s : studies_)
    if (s.study == study) return &s;
  return nullptr;
}

void AnalysisSink::on_study_begin(const StudyInfo& study) {
  studies_.push_back(StudyAnalyses{study.name, 0, 0, {}});
}

void AnalysisSink::on_experiment(const StudyInfo& study, int index,
                                 const runtime::ExperimentResult& result) {
  LOKI_REQUIRE(!studies_.empty(), "experiment before study begin");
  analysis::ExperimentAnalysis a = analysis::analyze_experiment(result, options_);
  StudyAnalyses& record = studies_.back();
  ++record.total;
  if (a.accepted) ++record.accepted;
  for (const Callback& cb : callbacks_) cb(study, index, a);
  if (keep_) record.analyses.push_back(std::move(a));
}

// --- MeasureSink -------------------------------------------------------------

MeasureSink::MeasureSink(analysis::AnalysisOptions options)
    : AnalysisSink(std::move(options)) {
  keep_analyses(false);
  on_analysis([this](const StudyInfo& study, int,
                     const analysis::ExperimentAnalysis& a) {
    const measure::StudyMeasure* m = nullptr;
    const auto it = measures_.find(study.name);
    if (it != measures_.end()) {
      m = &it->second;
    } else if (fallback_.has_value()) {
      m = &*fallback_;
    }
    if (m == nullptr) return;
    auto [slot, inserted] = values_.try_emplace(study.name);
    if (inserted) order_.push_back(study.name);
    if (!a.accepted) return;  // analysis discarded the experiment (§2.5)
    const std::optional<double> value = m->apply(a);
    if (value.has_value()) slot->second.push_back(*value);
  });
}

MeasureSink& MeasureSink::measure(const std::string& study,
                                  measure::StudyMeasure m) {
  measures_[study] = std::move(m);
  return *this;
}

MeasureSink& MeasureSink::measure_all(measure::StudyMeasure m) {
  fallback_ = std::move(m);
  return *this;
}

const std::vector<double>* MeasureSink::values(const std::string& study) const {
  const auto it = values_.find(study);
  return it == values_.end() ? nullptr : &it->second;
}

std::vector<measure::StudySample> MeasureSink::samples() const {
  std::vector<measure::StudySample> out;
  out.reserve(order_.size());
  for (const std::string& study : order_)
    out.push_back(measure::StudySample{study, values_.at(study)});
  return out;
}

// --- ProgressSink ------------------------------------------------------------

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

ProgressSink::ProgressSink(std::FILE* out, int every)
    : out_(out), every_(every) {}

void ProgressSink::on_campaign_begin(int studies) {
  total_studies_ = studies;
  campaign_start_ = std::chrono::steady_clock::now();
}

void ProgressSink::on_study_begin(const StudyInfo& study) {
  completed_ = 0;
  timed_out_ = 0;
  study_start_ = std::chrono::steady_clock::now();
  std::fprintf(out_, "[%d/%d] study '%s': %d experiments\n", study.index + 1,
               total_studies_, study.name.c_str(), study.experiments);
  std::fflush(out_);
}

void ProgressSink::on_experiment(const StudyInfo& study, int index,
                                 const runtime::ExperimentResult& result) {
  if (result.completed) ++completed_;
  if (result.timed_out) ++timed_out_;
  if (every_ > 0 && (index + 1) % every_ == 0 && index + 1 < study.experiments) {
    std::fprintf(out_, "  %s: %d/%d\n", study.name.c_str(), index + 1,
                 study.experiments);
    std::fflush(out_);
  }
}

void ProgressSink::on_study_done(const StudyInfo& study) {
  std::fprintf(out_, "  %s: done in %.2f s (%d completed, %d timed out)\n",
               study.name.c_str(), seconds_since(study_start_), completed_,
               timed_out_);
  std::fflush(out_);
}

void ProgressSink::on_campaign_done() {
  std::fprintf(out_, "campaign done in %.2f s\n",
               seconds_since(campaign_start_));
  std::fflush(out_);
}

// --- CallbackSink ------------------------------------------------------------

CallbackSink& CallbackSink::experiment(ExperimentFn fn) {
  experiment_ = std::move(fn);
  return *this;
}

CallbackSink& CallbackSink::study_begin(StudyFn fn) {
  study_begin_ = std::move(fn);
  return *this;
}

CallbackSink& CallbackSink::study_done(StudyFn fn) {
  study_done_ = std::move(fn);
  return *this;
}

CallbackSink& CallbackSink::campaign_begin(CampaignBeginFn fn) {
  campaign_begin_ = std::move(fn);
  return *this;
}

CallbackSink& CallbackSink::campaign_done(CampaignDoneFn fn) {
  campaign_done_ = std::move(fn);
  return *this;
}

void CallbackSink::on_campaign_begin(int studies) {
  if (campaign_begin_) campaign_begin_(studies);
}

void CallbackSink::on_study_begin(const StudyInfo& study) {
  if (study_begin_) study_begin_(study);
}

void CallbackSink::on_experiment(const StudyInfo& study, int index,
                                 const runtime::ExperimentResult& result) {
  if (experiment_) experiment_(study, index, result);
}

void CallbackSink::on_study_done(const StudyInfo& study) {
  if (study_done_) study_done_(study);
}

void CallbackSink::on_campaign_done() {
  if (campaign_done_) campaign_done_();
}

}  // namespace loki::campaign
