// Streaming result observers for the campaign facade.
//
// A ResultSink receives each ExperimentResult as it completes (in study
// order, experiment-index order — the Runner contract) so downstream
// phases run incrementally instead of accumulating every result in memory:
//
//   CollectSink   — the legacy shape: buffers a full CampaignResult.
//   AnalysisSink  — streams results through the analysis phase (§2.5).
//   MeasureSink   — AnalysisSink that also applies a StudyMeasure (§4.3.4),
//                   keeping only the final observation values.
//   ProgressSink  — human-readable progress lines.
//   StatusSink    — live per-worker fleet view over Runner::telemetry().
//   CallbackSink  — ad-hoc lambdas, for tests and custom pipelines.
#pragma once

#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/pipeline.hpp"
#include "campaign/runner.hpp"
#include "measure/campaign_measure.hpp"
#include "measure/study_measure.hpp"
#include "runtime/experiment.hpp"

namespace loki::campaign {

struct StudyInfo {
  std::string name;
  int index{0};        // position within the campaign
  int experiments{0};  // planned experiment count
};

class ResultSink {
 public:
  virtual ~ResultSink();

  virtual void on_campaign_begin(int studies);
  virtual void on_study_begin(const StudyInfo& study);
  virtual void on_experiment(const StudyInfo& study, int index,
                             const runtime::ExperimentResult& result);
  virtual void on_study_done(const StudyInfo& study);
  virtual void on_campaign_done();
};

/// Buffers everything into a runtime::CampaignResult — what the legacy
/// run_campaign returned. Memory grows with the campaign; prefer the
/// streaming sinks for large sweeps.
class CollectSink final : public ResultSink {
 public:
  void on_study_begin(const StudyInfo& study) override;
  void on_experiment(const StudyInfo& study, int index,
                     const runtime::ExperimentResult& result) override;

  const runtime::CampaignResult& result() const { return result_; }
  runtime::CampaignResult take() { return std::move(result_); }

 private:
  runtime::CampaignResult result_;
};

/// Runs analyze_experiment on each result as it arrives and tracks per-study
/// accept counts. Analyses are retained by default (keep_analyses(false)
/// streams them to callbacks only).
class AnalysisSink : public ResultSink {
 public:
  using Callback = std::function<void(const StudyInfo& study, int index,
                                      const analysis::ExperimentAnalysis&)>;

  explicit AnalysisSink(analysis::AnalysisOptions options = {});

  AnalysisSink& keep_analyses(bool keep);
  AnalysisSink& on_analysis(Callback callback);

  struct StudyAnalyses {
    std::string study;
    int total{0};
    int accepted{0};
    std::vector<analysis::ExperimentAnalysis> analyses;  // empty when !keep
  };

  const std::vector<StudyAnalyses>& studies() const { return studies_; }
  const StudyAnalyses* find(const std::string& study) const;

  void on_study_begin(const StudyInfo& study) override;
  void on_experiment(const StudyInfo& study, int index,
                     const runtime::ExperimentResult& result) override;

 private:
  analysis::AnalysisOptions options_;
  bool keep_{true};
  std::vector<Callback> callbacks_;
  std::vector<StudyAnalyses> studies_;
};

/// Streams the measure phase: analyzes each result once, applies the
/// study's StudyMeasure to accepted experiments, and accumulates only the
/// final observation function values (§4.3.4). Neither results nor analyses
/// are retained.
class MeasureSink final : public AnalysisSink {
 public:
  explicit MeasureSink(analysis::AnalysisOptions options = {});

  /// Measure for one specific study.
  MeasureSink& measure(const std::string& study, measure::StudyMeasure m);
  /// Fallback measure for studies without a specific one.
  MeasureSink& measure_all(measure::StudyMeasure m);

  /// Final observation values of one study (nullptr before it ran or when
  /// no measure covers it).
  const std::vector<double>* values(const std::string& study) const;
  /// One StudySample per measured study, in campaign order — the input the
  /// campaign-level estimators (§4.4) take.
  std::vector<measure::StudySample> samples() const;

 private:
  std::map<std::string, measure::StudyMeasure> measures_;
  std::optional<measure::StudyMeasure> fallback_;
  std::vector<std::string> order_;
  std::map<std::string, std::vector<double>> values_;
};

/// Prints progress lines to `out`. `every` > 0 additionally reports every
/// `every` finished experiments within a study.
class ProgressSink final : public ResultSink {
 public:
  explicit ProgressSink(std::FILE* out = stdout, int every = 0);

  void on_campaign_begin(int studies) override;
  void on_study_begin(const StudyInfo& study) override;
  void on_experiment(const StudyInfo& study, int index,
                     const runtime::ExperimentResult& result) override;
  void on_study_done(const StudyInfo& study) override;
  void on_campaign_done() override;

 private:
  std::FILE* out_;
  int every_;
  int total_studies_{0};
  int completed_{0};
  int timed_out_{0};
  std::chrono::steady_clock::time_point campaign_start_{};
  std::chrono::steady_clock::time_point study_start_{};
};

/// Live fleet view over a fallible runner's FleetTelemetry: one line per
/// worker — throughput over the snapshot ring, p50/p95/p99 from the latency
/// histogram, lease span, last-seen age — plus a fleet summary line with
/// the merged histogram and the fault-recovery counters.
///
/// Refreshes are rate-limited (default 250 ms) and driven by experiment
/// arrivals; on_campaign_done always renders one final view, so a CI log
/// can grep the end state without racing the limiter. When `out` is a tty
/// the view redraws in place (ANSI cursor-up); otherwise each refresh
/// appends a plain block. Runners without fleet telemetry (serial, threads)
/// render a single note instead.
class StatusSink final : public ResultSink {
 public:
  explicit StatusSink(
      std::shared_ptr<Runner> runner, std::FILE* out = stderr,
      std::chrono::milliseconds refresh = std::chrono::milliseconds(250));

  void on_experiment(const StudyInfo& study, int index,
                     const runtime::ExperimentResult& result) override;
  void on_campaign_done() override;

 private:
  void render(bool final_view);

  std::shared_ptr<Runner> runner_;
  std::FILE* out_;
  std::chrono::milliseconds refresh_;
  std::chrono::steady_clock::time_point last_render_{};
  bool rendered_{false};   // limiter state: first render fires immediately
  int lines_up_{0};        // lines to rewind on a tty redraw
  bool tty_{false};
};

/// Adapts plain lambdas to the sink interface.
class CallbackSink final : public ResultSink {
 public:
  using ExperimentFn = std::function<void(const StudyInfo&, int,
                                          const runtime::ExperimentResult&)>;
  using StudyFn = std::function<void(const StudyInfo&)>;
  using CampaignBeginFn = std::function<void(int)>;
  using CampaignDoneFn = std::function<void()>;

  CallbackSink& experiment(ExperimentFn fn);
  CallbackSink& study_begin(StudyFn fn);
  CallbackSink& study_done(StudyFn fn);
  CallbackSink& campaign_begin(CampaignBeginFn fn);
  CallbackSink& campaign_done(CampaignDoneFn fn);

  void on_campaign_begin(int studies) override;
  void on_study_begin(const StudyInfo& study) override;
  void on_experiment(const StudyInfo& study, int index,
                     const runtime::ExperimentResult& result) override;
  void on_study_done(const StudyInfo& study) override;
  void on_campaign_done() override;

 private:
  ExperimentFn experiment_;
  StudyFn study_begin_;
  StudyFn study_done_;
  CampaignBeginFn campaign_begin_;
  CampaignDoneFn campaign_done_;
};

}  // namespace loki::campaign
