// The unified campaign facade (§2.2): one object that owns the paper's
// whole pipeline — runtime phase, offline clock synchronization, analysis,
// measure — over a set of studies, with pluggable execution (Runner) and
// streaming observers (ResultSink).
//
//   auto measure = std::make_shared<campaign::MeasureSink>();
//   measure->measure("coverage", coverage_measure());
//
//   Campaign c = CampaignBuilder()
//                    .sink(measure)
//                    .parallelism(4)
//                    .study("coverage")
//                    .experiments(20)
//                    .generator(make_params)
//                    .done()
//                    .build();   // ConfigError here, not mid-run
//   c.run();
//
// build() validates everything up front: study shells (name, count,
// generator) and experiment 0 of every study (duplicate nicknames,
// spec-name mismatches, unknown hosts, ...). Runners re-validate each
// generated ExperimentParams so per-index generator bugs surface with the
// study name and index attached.
//
// The legacy entry points stay as thin wrappers: runtime::run_campaign is
// CampaignBuilder + SerialRunner + CollectSink, and run_single is
// validate-then-run_experiment.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "campaign/sink.hpp"
#include "campaign/validate.hpp"
#include "runtime/experiment.hpp"
#include "spec/fault_spec.hpp"

namespace loki::campaign {

class CampaignBuilder;
class ResultCache;

/// A validated, runnable campaign. Built by CampaignBuilder::build().
class Campaign {
 public:
  struct Summary {
    int studies{0};
    int experiments{0};
    int completed{0};
    int timed_out{0};
    /// Experiments served from the ResultCache instead of being run.
    int cache_hits{0};
    /// Experiments replayed from the campaign journal on resume: emitted
    /// straight from the cache by journaled key, without probing, running,
    /// or re-validating. Zero on a non-resumed run.
    int replayed{0};
    /// Worker links reconnected after a loss (RemoteRunner with reconnect
    /// enabled). Zero elsewhere.
    int reconnects{0};
    /// Fault recovery on fallible runners (RemoteRunner): lease requeue
    /// events, the experiment indices those events sent back to the queue
    /// (one event salvaging 5 indices counts 1 event, 5 indices), and
    /// worker links lost during this campaign. Zero elsewhere.
    int requeue_events{0};
    int requeued_indices{0};
    int workers_lost{0};
    double wall_seconds{0.0};
  };

  /// Execute every study in order through the runner, streaming results to
  /// the sinks. Single-shot: the attached sinks have accumulated a full
  /// campaign afterwards, so a second run() throws LogicError — build a
  /// fresh Campaign (and sinks) to run again.
  Summary run();

  const std::vector<runtime::StudyParams>& studies() const { return studies_; }
  const Runner& runner() const { return *runner_; }

 private:
  friend class CampaignBuilder;
  Campaign() = default;

  std::vector<runtime::StudyParams> studies_;
  std::shared_ptr<Runner> runner_;
  std::shared_ptr<ResultCache> cache_;
  std::vector<std::shared_ptr<ResultSink>> sinks_;
  std::filesystem::path journal_path_;  // empty => no journal
  bool resume_{false};
  int journal_group_{32};
  std::uint64_t journal_seed_{0};
  bool ran_{false};
};

/// Fluent composition of one study; obtained from CampaignBuilder::study().
class StudyBuilder {
 public:
  StudyBuilder& experiments(int n);

  /// Fixed base parameters; experiment k runs with seed base.seed + k.
  StudyBuilder& base(runtime::ExperimentParams params);
  /// Full per-experiment generator (controls its own seeds). Composed
  /// hosts/nodes/faults/tweaks still apply on top of its output.
  StudyBuilder& generator(std::function<runtime::ExperimentParams(int)> gen);

  StudyBuilder& host(runtime::HostConfig host);
  StudyBuilder& host(const std::string& name);
  StudyBuilder& node(runtime::NodeConfig node);
  /// Parse `fault_spec_text` (§3.5.5) now — ParseError at composition time —
  /// and attach it to the named node.
  StudyBuilder& fault(const std::string& nickname,
                      const std::string& fault_spec_text);
  /// Arbitrary per-experiment adjustment, applied last.
  StudyBuilder& tweak(std::function<void(runtime::ExperimentParams&, int)> fn);

  /// Return to the campaign builder for chaining.
  CampaignBuilder& done() { return *parent_; }

 private:
  friend class CampaignBuilder;
  StudyBuilder(CampaignBuilder* parent, std::string name);

  /// Lower to the runtime-layer study shape. Throws ConfigError on
  /// structural mistakes (e.g. a fault naming an unknown node).
  runtime::StudyParams to_study() const;

  CampaignBuilder* parent_;
  std::string name_;
  int experiments_{10};
  std::optional<runtime::ExperimentParams> base_;
  std::function<runtime::ExperimentParams(int)> generator_;
  std::vector<runtime::HostConfig> hosts_;
  std::vector<runtime::NodeConfig> nodes_;
  std::vector<std::pair<std::string, spec::FaultSpec>> faults_;
  std::vector<std::function<void(runtime::ExperimentParams&, int)>> tweaks_;
};

class CampaignBuilder {
 public:
  CampaignBuilder() = default;
  // Non-copyable/movable: StudyBuilders hand out references tied to this
  // object (their done() points back here), so a copy would alias mutable
  // study state and a move would dangle those references.
  CampaignBuilder(const CampaignBuilder&) = delete;
  CampaignBuilder& operator=(const CampaignBuilder&) = delete;

  /// Begin composing a new study.
  StudyBuilder& study(const std::string& name);
  /// Add a pre-built runtime-layer study.
  CampaignBuilder& add(runtime::StudyParams study);

  /// Execution strategy; default SerialRunner.
  CampaignBuilder& runner(std::shared_ptr<Runner> runner);
  /// Sugar for runner(make_runner(workers)).
  CampaignBuilder& parallelism(int workers);

  /// Attach a streaming observer (any number).
  CampaignBuilder& sink(std::shared_ptr<ResultSink> sink);

  /// Cache-first execution (campaign/cache.hpp): every experiment is looked
  /// up by its content key before running; only misses go through the
  /// runner, and fresh results are stored. Requires every node to carry a
  /// wire identity (NodeConfig::app_name) — checked at build() time.
  CampaignBuilder& cache(std::shared_ptr<ResultCache> cache);
  /// Sugar for cache(make_shared<ResultCache>(dir)).
  CampaignBuilder& cache_dir(const std::string& dir);

  /// Crash-safe coordination (campaign/journal.hpp): write-ahead journal
  /// every emitted index to `path` (truncating any previous journal), so a
  /// killed coordinator can resume() instead of starting over. Requires a
  /// cache — the journal's replay guarantee rests on the cache's durable
  /// store ordering — checked at build(). `seed` is recorded in the
  /// CampaignBegin record for operators (not validated on resume; the
  /// study digests carry the real identity).
  CampaignBuilder& journal(const std::string& path, std::uint64_t seed = 0);
  /// Resume from the journal at `path`: validate each journaled study's
  /// digest against this campaign, replay the journaled prefix from the
  /// cache (zero re-execution), run only the tail, and keep appending to
  /// the same journal. A journal whose campaign already completed replays
  /// everything; one killed before CampaignBegin behaves like journal().
  CampaignBuilder& resume(const std::string& path);
  /// IndexDone records per journal group commit (default 32); 1 fsyncs
  /// every record — what the crash-resume tests use for exact kill points.
  CampaignBuilder& journal_group(int records);

  /// Validate every study — shell, uniqueness, and experiment 0's full
  /// configuration — and produce a runnable Campaign. Throws ConfigError.
  Campaign build() const;

 private:
  struct Entry {
    std::optional<runtime::StudyParams> prebuilt;
    std::shared_ptr<StudyBuilder> builder;
  };

  std::vector<Entry> entries_;
  std::shared_ptr<Runner> runner_;
  std::shared_ptr<ResultCache> cache_;
  std::vector<std::shared_ptr<ResultSink>> sinks_;
  std::filesystem::path journal_path_;
  bool resume_{false};
  int journal_group_{32};
  std::uint64_t journal_seed_{0};
};

/// Validate `params` (ConfigError on mistakes), then run one experiment.
runtime::ExperimentResult run_single(const runtime::ExperimentParams& params,
                                     const std::string& context = "experiment");

}  // namespace loki::campaign

namespace loki {
using campaign::Campaign;
using campaign::CampaignBuilder;
}  // namespace loki
