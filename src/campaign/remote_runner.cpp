#include "campaign/remote_runner.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <unistd.h>

#include "campaign/validate.hpp"
#include "runtime/experiment_context.hpp"
#include "runtime/serialize.hpp"
#include "util/codec.hpp"
#include "util/error.hpp"
#include "util/mutex.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"

namespace loki::campaign {

namespace {

using runtime::WorkerFrame;

constexpr int kNoFailure = std::numeric_limits<int>::max();

/// What a reader thread observed on its link. Eof and Corrupt are terminal:
/// the reader pushes one and exits. `epoch` is the link generation the
/// reader was spawned for — a reconnect bumps the worker's epoch, so late
/// events from the replaced link's reader are recognized as stale instead
/// of being charged against the fresh link.
struct Event {
  enum class Kind { Frame, Eof, Timeout, Corrupt };
  int worker{-1};
  Kind kind{Kind::Eof};
  int epoch{0};
  std::vector<std::uint8_t> frame;
  std::string detail;
};

class EventQueue {
 public:
  void push(Event e) LOKI_EXCLUDES(mu_) {
    {
      util::MutexLock lock(mu_);
      events_.push_back(std::move(e));
    }
    cv_.notify_all();
  }

  Event pop() LOKI_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    while (events_.empty()) cv_.wait(mu_);
    Event e = std::move(events_.front());
    events_.pop_front();
    return e;
  }

  std::optional<Event> pop_until(std::chrono::steady_clock::time_point deadline)
      LOKI_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    while (events_.empty()) {
      if (cv_.wait_until(mu_, deadline) == std::cv_status::timeout &&
          events_.empty())
        return std::nullopt;
    }
    Event e = std::move(events_.front());
    events_.pop_front();
    return e;
  }

 private:
  util::Mutex mu_;
  util::CondVar cv_;
  std::deque<Event> events_ LOKI_GUARDED_BY(mu_);
};

/// A contiguous index range [lo, hi) awaiting a worker.
struct Chunk {
  int lo{0};
  int hi{0};
};

/// One lost worker awaiting its next reopen attempt (exponential backoff
/// with jitter). Lives on the engine's scheduling thread only.
struct PendingReconnect {
  int worker{0};
  int attempts_left{0};
  std::chrono::milliseconds delay{0};
  std::chrono::steady_clock::time_point next_try;
};

struct WorkerState {
  std::unique_ptr<WorkerLink> link;
  std::thread reader;
  bool alive{false};       // link usable (spawned, not lost)
  bool handshaken{false};  // HelloAck received
  bool idle{false};        // handshaken and not holding a lease
  /// Link generation: bumped by every reconnect; events stamped with an
  /// older epoch belong to a replaced link and are ignored (except for
  /// reader-exit accounting).
  int epoch{0};
  /// Set while a reopened link's HelloAck is pending, so the ack site can
  /// count the reconnect as complete.
  bool rejoining{false};
  std::uint32_t lease_id{0};
  std::set<int> outstanding;    // leased indices without a Result yet
  /// Autotuner inputs: when the current lease went out and how many
  /// indices it spans.
  std::chrono::steady_clock::time_point lease_sent;
  int lease_span{0};
  /// Worker-reported EWMA per-experiment latency from the latest Heartbeat
  /// (µs; 0 until the first heartbeat carries stats). The autotuner prefers
  /// this over whole-lease projection: it reflects only experiment time,
  /// not queueing or transit, and is fresh even mid-lease.
  double ewma_latency_us{0.0};
};

/// One run_study execution: a single-threaded event loop over per-worker
/// reader threads. All state below is touched only by the calling thread;
/// readers communicate exclusively through the EventQueue.
class Engine {
 public:
  Engine(Transport& transport, const RemoteOptions& options,
         const runtime::StudyParams& study, const EmitFn& emit,
         RunnerTelemetry& telemetry)
      : transport_(transport),
        options_(options),
        study_(study),
        emit_(emit),
        telemetry_(telemetry),
        n_(study.experiments),
        lease_now_(options.autotune_lease
                       ? std::min(options.lease_size, options.max_lease_size)
                       : options.lease_size),
        reconnect_rng_(options.reconnect_jitter_seed) {}

  void run() {
    if (n_ <= 0) return;
    // One contiguous range; assign() slices leases of the current span off
    // its head, so the autotuner can retarget the span between leases.
    queue_.push_back({0, n_});
    // lease_now_ (not options_.lease_size) so an oversized configured span
    // clamped by the autotuner still spawns every useful worker.
    const int spawn = std::min(transport_.worker_count(),
                               (n_ + lease_now_ - 1) / lease_now_);
    // Fresh per-worker telemetry slots for this study; the cumulative
    // counters (requeues, requeued_indices, workers_lost) carry over so
    // Campaign::Summary's before/after delta stays meaningful.
    telemetry_.workers.assign(static_cast<std::size_t>(spawn),
                              WorkerTelemetry{});

    struct TeardownGuard {
      Engine& engine;
      bool armed{true};
      ~TeardownGuard() {
        if (armed) engine.teardown();
      }
    } guard{*this};

    workers_.resize(static_cast<std::size_t>(spawn));
    for (int w = 0; w < spawn; ++w) connect_worker(w);
    if (live_count() == 0)
      throw std::runtime_error("remote runner: study '" + study_.name +
                               "': no workers could be started over " +
                               transport_.name());
    for (int w = 0; w < spawn; ++w) {
      WorkerState& ws = workers_[static_cast<std::size_t>(w)];
      if (!ws.alive) continue;
      ++readers_started_;
      ws.reader = std::thread([this, w, link = ws.link.get(),
                               epoch = ws.epoch] {
        reader_loop(w, link, epoch);
      });
    }

    while (!done()) {
      attempt_due_reconnects();
      drain();
      assign();
      // Losing the whole fleet is fatal only once no reconnect is pending:
      // with attempts left, the campaign stalls (the queue holds everything
      // requeued) and resumes the moment one reopen succeeds.
      if (!done() && live_count() == 0 && reconnects_pending_.empty())
        throw std::runtime_error(
            "remote runner: study '" + study_.name + "': all " +
            std::to_string(spawn) + " workers lost with " +
            std::to_string(unfinished()) + " experiments unfinished (" +
            std::to_string(telemetry_.requeues) + " requeues)");
      if (done()) break;
      // With a reconnect scheduled, wake at its deadline even if no worker
      // ever produces another event (the zero-survivors stall).
      std::optional<Event> event =
          reconnects_pending_.empty()
              ? std::optional<Event>(events_.pop())
              : events_.pop_until(earliest_reconnect());
      if (event.has_value()) handle(*event);
    }

    guard.armed = false;
    teardown();
    telemetry_.final_lease_size = lease_now_;
    if (fail_min_ != kNoFailure)
      runtime::rethrow_wire_error(fail_category_, fail_message_);
  }

 private:
  // --- spawning --------------------------------------------------------------

  void connect_worker(int w) {
    WorkerState& ws = workers_[static_cast<std::size_t>(w)];
    WorkerTelemetry& wt = telemetry_.workers[static_cast<std::size_t>(w)];
    try {
      ws.link = transport_.connect(w, study_);
    } catch (const std::exception&) {
      ++telemetry_.workers_lost;
      wt.lost = true;
      return;
    }
    wt.describe = ws.link->describe();
    wt.last_seen = std::chrono::steady_clock::now();
    // A study that cannot be encoded for a transport that needs it on the
    // wire is a configuration error, not a lost worker — let it propagate.
    const std::vector<std::uint8_t>& hello = ws.link->needs_study_bytes()
                                                 ? hello_with_study()
                                                 : hello_inherited();
    try {
      ws.link->send(hello);
      ws.alive = true;
    } catch (const std::exception&) {
      ++telemetry_.workers_lost;
      wt.lost = true;
      ws.link->kill();
    }
  }

  /// Heartbeat cadence shipped to workers in the Hello frame: the
  /// configured interval, or hang_timeout / 4 when unset — several
  /// heartbeat opportunities per timeout window.
  std::uint32_t heartbeat_interval_ms() const {
    const std::chrono::milliseconds interval =
        options_.heartbeat_interval.count() > 0 ? options_.heartbeat_interval
                                                : options_.hang_timeout / 4;
    return static_cast<std::uint32_t>(std::max<std::int64_t>(
        1, static_cast<std::int64_t>(interval.count())));
  }

  const std::vector<std::uint8_t>& hello_with_study() {
    if (hello_with_study_.empty())
      hello_with_study_ =
          runtime::encode_hello_frame(&study_, heartbeat_interval_ms());
    return hello_with_study_;
  }

  const std::vector<std::uint8_t>& hello_inherited() {
    if (hello_inherited_.empty())
      hello_inherited_ =
          runtime::encode_hello_frame(nullptr, heartbeat_interval_ms());
    return hello_inherited_;
  }

  // --- reader threads --------------------------------------------------------

  void reader_loop(int w, WorkerLink* link, int epoch) {
    for (;;) {
      RecvOutcome out;
      try {
        out = link->recv(options_.hang_timeout);
      } catch (const codec::DecodeError& e) {
        events_.push({w, Event::Kind::Corrupt, epoch, {}, e.what()});
        return;
      } catch (const std::exception& e) {
        events_.push({w, Event::Kind::Eof, epoch, {}, e.what()});
        return;
      }
      switch (out.status) {
        case RecvOutcome::Status::Frame:
          events_.push({w, Event::Kind::Frame, epoch, std::move(out.frame), {}});
          break;
        case RecvOutcome::Status::Timeout:
          events_.push({w, Event::Kind::Timeout, epoch, {}, {}});
          break;
        case RecvOutcome::Status::Eof:
          events_.push({w, Event::Kind::Eof, epoch, {}, {}});
          return;
      }
    }
  }

  // --- event handling --------------------------------------------------------

  void handle(const Event& event) {
    if (event.epoch !=
        workers_[static_cast<std::size_t>(event.worker)].epoch) {
      // A replaced link's reader speaking after the reconnect took the
      // slot. Its terminal event still closes out the reader accounting;
      // everything else is noise from a link already given up on.
      if (event.kind == Event::Kind::Eof ||
          event.kind == Event::Kind::Corrupt)
        ++readers_finished_;
      return;
    }
    switch (event.kind) {
      case Event::Kind::Frame:
        on_frame(event.worker, event.frame);
        break;
      case Event::Kind::Eof:
        ++readers_finished_;
        lose_worker(event.worker, "stream closed" +
                                      (event.detail.empty()
                                           ? std::string()
                                           : " (" + event.detail + ")"));
        break;
      case Event::Kind::Corrupt:
        ++readers_finished_;
        lose_worker(event.worker, "corrupt stream: " + event.detail);
        break;
      case Event::Kind::Timeout:
        on_timeout(event.worker);
        break;
    }
  }

  void on_frame(int w, const std::vector<std::uint8_t>& frame) {
    WorkerState& ws = workers_[static_cast<std::size_t>(w)];
    if (!ws.alive) return;  // a straggler frame from a worker we gave up on
    // Any frame is a liveness signal; the --status view renders this as a
    // last-seen age.
    telemetry_.workers[static_cast<std::size_t>(w)].last_seen =
        std::chrono::steady_clock::now();
    try {
      switch (runtime::worker_frame_type(frame)) {
        case WorkerFrame::HelloAck: {
          const runtime::HelloAckFrame ack =
              runtime::decode_hello_ack_frame(frame);
          if (ack.protocol_version != runtime::kWorkerProtocolVersion)
            throw std::runtime_error(
                "remote runner: " + ws.link->describe() +
                " speaks worker protocol v" +
                std::to_string(ack.protocol_version) + ", this build v" +
                std::to_string(runtime::kWorkerProtocolVersion) +
                " — refusing to mix");
          ws.handshaken = true;
          ws.idle = true;
          if (ws.rejoining) {
            // The reconnect is complete only now — a reopened link whose
            // worker never acks is just another loss, not a reconnect.
            ws.rejoining = false;
            ++telemetry_.reconnects;
            WorkerTelemetry& wt =
                telemetry_.workers[static_cast<std::size_t>(w)];
            ++wt.reconnects;
            wt.lost = false;
          }
          break;
        }
        case WorkerFrame::Heartbeat:
          // Liveness came from the arrival itself; the payload is the
          // worker's cumulative stats snapshot.
          on_heartbeat(w, runtime::decode_heartbeat_frame(frame));
          break;
        case WorkerFrame::Pong:
          break;
        case WorkerFrame::Result:
          on_result(ws, runtime::decode_result_frame(frame, &interner_));
          break;
        case WorkerFrame::ResultBatch: {
          // All-or-nothing: decode_result_batch_frame throws on any
          // malformed entry before a single result escapes, so a corrupt
          // batch ends up in the catch below and the whole lease requeues.
          std::vector<runtime::ResultFrame> entries =
              runtime::decode_result_batch_frame(frame, &interner_);
          for (runtime::ResultFrame& entry : entries)
            on_result(ws, std::move(entry));
          break;
        }
        case WorkerFrame::LeaseDone:
          on_lease_done(w, runtime::decode_lease_done_frame(frame));
          break;
        default:
          // Hello/Lease/Ping/Shutdown never flow worker -> parent.
          throw codec::DecodeError("unexpected parent-bound frame type");
      }
    } catch (const codec::DecodeError& e) {
      lose_worker(w, std::string("protocol violation: ") + e.what());
    }
  }

  void on_result(WorkerState& ws, runtime::ResultFrame&& result) {
    const int index = static_cast<int>(result.index);
    if (index < 0 || index >= n_)
      throw codec::DecodeError("result index " + std::to_string(index) +
                               " outside study");
    ws.outstanding.erase(index);
    if (!result.ok) {
      if (index < fail_min_) {
        fail_min_ = index;
        fail_category_ = result.category;
        fail_message_ = result.message;
      }
      return;
    }
    // Exactly-once emission: a requeued lease can reproduce an index that
    // already arrived from the original worker before it died.
    if (index < next_emit_ || buffer_.contains(index)) return;
    buffer_.emplace(index, std::move(result.result));
  }

  /// Fold one heartbeat's stats into this worker's telemetry slot: latest
  /// snapshot, ring-buffered time series, and the autotuner's EWMA input.
  void on_heartbeat(int w, const runtime::HeartbeatFrame& heartbeat) {
    WorkerTelemetry& wt = telemetry_.workers[static_cast<std::size_t>(w)];
    wt.latest = heartbeat.stats;
    wt.recent.push_back(
        {std::chrono::steady_clock::now(), heartbeat.stats});
    if (wt.recent.size() > WorkerTelemetry::kSnapshotRing)
      wt.recent.erase(wt.recent.begin());
    workers_[static_cast<std::size_t>(w)].ewma_latency_us =
        heartbeat.stats.ewma_latency_us;
  }

  void on_lease_done(int w, std::uint32_t lease_id) {
    WorkerState& ws = workers_[static_cast<std::size_t>(w)];
    if (lease_id != ws.lease_id) return;  // stale echo of a requeued lease
    if (!ws.outstanding.empty()) {
      // A lease that errored legitimately skips its tail (all past the
      // failing index). Anything else missing was lost in transit: requeue
      // it and keep the worker — the stream itself is still framed.
      note_requeue(w, requeue_salvageable(ws));
      ws.outstanding.clear();
    } else {
      autotune(ws);  // clean completion: usable latency sample
    }
    ws.idle = true;
    telemetry_.workers[static_cast<std::size_t>(w)].busy = false;
  }

  /// Record one requeue event salvaging `salvaged` indices, attributed to
  /// worker `w`. No-op when nothing was salvageable (e.g. every missing
  /// index sits past a known failure).
  void note_requeue(int w, int salvaged) {
    if (salvaged <= 0) return;
    ++telemetry_.requeues;
    telemetry_.requeued_indices += salvaged;
    ++telemetry_.workers[static_cast<std::size_t>(w)].requeues;
  }

  /// Multiplicative lease-span adaptation from observed per-experiment
  /// latency: project how long the *current* span would take at this
  /// worker's measured rate, then double while the projection undershoots
  /// half the target and halve when it overshoots it twofold. Bounded to
  /// [1, max_lease_size]; leases already in flight are unaffected, and
  /// results are byte-identical for every span (the safety argument for
  /// tuning at all).
  ///
  /// The rate comes from the worker's self-reported EWMA latency (v3
  /// heartbeats) when available: it measures pure experiment time and
  /// smooths over outliers, where the old whole-lease projection folded
  /// frame transit and coordinator queueing into the estimate and could
  /// see one slow lease as a persistently slow worker. Workers that have
  /// not yet reported stats fall back to the whole-lease projection.
  void autotune(const WorkerState& ws) {
    if (!options_.autotune_lease || ws.lease_span <= 0) return;
    std::chrono::nanoseconds projected{};
    if (ws.ewma_latency_us > 0.0) {
      projected = std::chrono::nanoseconds(static_cast<std::int64_t>(
          ws.ewma_latency_us * 1000.0 * static_cast<double>(lease_now_)));
    } else {
      const auto elapsed = std::chrono::steady_clock::now() - ws.lease_sent;
      projected = std::chrono::duration_cast<std::chrono::nanoseconds>(
          elapsed * lease_now_ / ws.lease_span);
    }
    if (projected * 2 < options_.lease_target)
      lease_now_ = std::min(lease_now_ * 2, options_.max_lease_size);
    else if (projected > options_.lease_target * 2)
      lease_now_ = std::max(lease_now_ / 2, 1);
  }

  void on_timeout(int w) {
    WorkerState& ws = workers_[static_cast<std::size_t>(w)];
    if (!ws.alive) return;
    // Only an idle worker may legitimately sit silent. Keying on idleness
    // (not on outstanding results) also catches a worker that wedges in
    // the gap after its lease's last Result but before LeaseDone — it has
    // nothing left to requeue, yet it must still be killed, or it would
    // stay "busy" forever and silently shrink the fleet (or hang a
    // single-worker campaign outright).
    if (!ws.handshaken || !ws.idle)
      lose_worker(w, "no frame within " +
                         std::to_string(options_.hang_timeout.count()) +
                         "ms — presumed hung");
  }

  void lose_worker(int w, const std::string& reason) {
    WorkerState& ws = workers_[static_cast<std::size_t>(w)];
    if (!ws.alive) return;
    ws.alive = false;
    ws.idle = false;
    ++telemetry_.workers_lost;
    WorkerTelemetry& wt = telemetry_.workers[static_cast<std::size_t>(w)];
    wt.lost = true;
    wt.busy = false;
    // Diagnostics go to stderr (the campaign-output convention): a lost
    // worker must leave a cause and an identity, not just a counter.
    std::fprintf(stderr, "remote runner: study '%s': lost %s: %s\n",
                 study_.name.c_str(), ws.link->describe().c_str(),
                 reason.c_str());
    ws.link->kill();  // the reader unblocks with Eof and exits
    if (!ws.outstanding.empty()) {
      note_requeue(w, requeue_salvageable(ws));
      ws.outstanding.clear();
    }
    // Requeue first, then (maybe) schedule the reopen: survivors start on
    // the salvaged indices immediately; the slot rejoins whenever the
    // backoff schedule lands a successful reopen.
    if (options_.reconnect_attempts > 0) schedule_reconnect(w);
  }

  // --- reconnect -------------------------------------------------------------

  /// 75%..125% of `delay`, so a fleet lost to one blip does not hammer the
  /// transport in lockstep. Deterministic in reconnect_jitter_seed.
  std::chrono::milliseconds jittered(std::chrono::milliseconds delay) {
    const double factor = 0.75 + 0.5 * reconnect_rng_.next_double();
    return std::chrono::milliseconds(std::max<std::int64_t>(
        1, static_cast<std::int64_t>(static_cast<double>(delay.count()) *
                                     factor)));
  }

  void schedule_reconnect(int w) {
    PendingReconnect pending;
    pending.worker = w;
    pending.attempts_left = options_.reconnect_attempts;
    pending.delay = options_.reconnect_backoff;
    pending.next_try = std::chrono::steady_clock::now() + jittered(pending.delay);
    reconnects_pending_.push_back(pending);
  }

  std::chrono::steady_clock::time_point earliest_reconnect() const {
    auto earliest = reconnects_pending_.front().next_try;
    for (const PendingReconnect& pending : reconnects_pending_)
      earliest = std::min(earliest, pending.next_try);
    return earliest;
  }

  void attempt_due_reconnects() {
    const auto now = std::chrono::steady_clock::now();
    for (auto it = reconnects_pending_.begin();
         it != reconnects_pending_.end();) {
      if (it->next_try > now) {
        ++it;
        continue;
      }
      if (try_reconnect(it->worker)) {
        it = reconnects_pending_.erase(it);
        continue;
      }
      if (--it->attempts_left <= 0) {
        std::fprintf(stderr,
                     "remote runner: study '%s': giving up on worker %d "
                     "after %d reconnect attempts\n",
                     study_.name.c_str(), it->worker,
                     options_.reconnect_attempts);
        it = reconnects_pending_.erase(it);
        continue;
      }
      it->delay = std::min(
          std::chrono::milliseconds(static_cast<std::int64_t>(
              static_cast<double>(it->delay.count()) *
              options_.reconnect_multiplier)),
          options_.reconnect_backoff_max);
      it->next_try = now + jittered(it->delay);
      ++it;
    }
  }

  /// One reopen attempt for worker `w`'s slot. On success the slot holds a
  /// fresh link with a fresh reader (new epoch) and a pending handshake;
  /// on failure the slot is left dead for the caller's backoff loop.
  bool try_reconnect(int w) {
    WorkerState& ws = workers_[static_cast<std::size_t>(w)];
    // The old reader exited promptly after lose_worker's kill(); join it so
    // the replacement can take the slot.
    if (ws.reader.joinable()) ws.reader.join();
    std::unique_ptr<WorkerLink> link;
    try {
      link = transport_.reopen(w, study_);
    } catch (const std::exception&) {
      return false;  // refused: the caller backs off and retries
    }
    ws.link = std::move(link);
    try {
      ws.link->send(ws.link->needs_study_bytes() ? hello_with_study()
                                                 : hello_inherited());
    } catch (const std::exception&) {
      ws.link->kill();
      return false;
    }
    ws.alive = true;
    ws.handshaken = false;
    ws.idle = false;
    ws.rejoining = true;
    ws.outstanding.clear();
    ws.lease_id = 0;
    ws.ewma_latency_us = 0.0;
    ++ws.epoch;
    WorkerTelemetry& wt = telemetry_.workers[static_cast<std::size_t>(w)];
    wt.describe = ws.link->describe();
    wt.last_seen = std::chrono::steady_clock::now();
    std::fprintf(stderr, "remote runner: study '%s': reconnected %s\n",
                 study_.name.c_str(), ws.link->describe().c_str());
    ++readers_started_;
    ws.reader = std::thread([this, w, link = ws.link.get(),
                             epoch = ws.epoch] {
      reader_loop(w, link, epoch);
    });
    return true;
  }

  /// Requeue this worker's outstanding indices that the campaign still
  /// needs (below any known failure), as contiguous runs at the front of
  /// the queue. Returns how many indices were salvaged.
  int requeue_salvageable(WorkerState& ws) {
    std::vector<int> needed;
    for (const int k : ws.outstanding)
      if (k < fail_min_) needed.push_back(k);
    if (needed.empty()) return 0;
    std::vector<Chunk> runs;
    for (const int k : needed) {
      if (!runs.empty() && runs.back().hi == k) ++runs.back().hi;
      else runs.push_back({k, k + 1});
    }
    // Sorted insertion keeps the queue ordered by lo at all times, so the
    // head is the globally lowest pending index. assign() only examines
    // the head; if requeues merely pushed to the front, a later loss's
    // higher-index chunks could bury an earlier loss's low chunk behind an
    // out-of-window head and deadlock the campaign.
    for (const Chunk& run : runs) {
      const auto pos = std::lower_bound(
          queue_.begin(), queue_.end(), run,
          [](const Chunk& a, const Chunk& b) { return a.lo < b.lo; });
      queue_.insert(pos, run);
    }
    return static_cast<int>(needed.size());
  }

  // --- scheduling ------------------------------------------------------------

  int live_count() const {
    int live = 0;
    for (const WorkerState& ws : workers_) live += ws.alive ? 1 : 0;
    return live;
  }

  int unfinished() const {
    const int stop = fail_min_ == kNoFailure ? n_ : fail_min_;
    int have = 0;
    for (const auto& entry : buffer_) have += entry.first < stop ? 1 : 0;
    return stop - next_emit_ - have;
  }

  bool done() const {
    // A failure aborts as soon as the serial prefix is emitted — workers
    // still mid-lease are torn down, not awaited.
    if (fail_min_ != kNoFailure) return next_emit_ >= fail_min_;
    if (next_emit_ < n_) return false;
    // Every result is in; now wait for each live worker's trailing
    // Heartbeat + LeaseDone so the telemetry ledger is exact at study end
    // (per-worker experiments_completed sums to the study total). A worker
    // wedged before its LeaseDone is still bounded by the hang timeout —
    // the loop keeps handling Timeout events until the fleet is idle.
    for (const WorkerState& ws : workers_)
      if (ws.alive && !ws.idle) return false;
    return true;
  }

  void drain() {
    const int stop = fail_min_ == kNoFailure ? n_ : fail_min_;
    while (next_emit_ < stop) {
      auto it = buffer_.find(next_emit_);
      if (it == buffer_.end()) break;
      auto node = buffer_.extract(it);
      const int k = next_emit_++;
      emit_(k, std::move(node.mapped()));
    }
  }

  void assign() {
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      WorkerState& ws = workers_[w];
      if (!ws.alive || !ws.idle) continue;
      // Drop work at/past a known failure before looking at the head.
      while (!queue_.empty() && queue_.front().lo >= fail_min_)
        queue_.pop_front();
      if (queue_.empty()) return;
      // Backpressure: never lease further than `window` past the drain
      // cursor, so the reorder buffer stays O(workers * lease span) even
      // when one early lease is slow. A stale out-of-window head cannot
      // stall the campaign: once the busy workers drain, next_emit has
      // caught up to the lowest pending index, which is the head.
      const int window = std::max(2 * live_count() * lease_now_, lease_now_);
      if (queue_.front().lo >= next_emit_ + window) continue;
      // Slice one lease of the current span off the head chunk. The slice
      // is validated before the queue is touched, so an empty slice can
      // never silently drop indices from the queue.
      Chunk& head = queue_.front();
      const Chunk chunk{head.lo,
                        std::min({head.hi, head.lo + lease_now_,
                                  fail_min_ == kNoFailure ? n_ : fail_min_})};
      if (chunk.hi <= chunk.lo) return;  // unreachable: head.lo < fail_min_
      if (chunk.hi >= head.hi)
        queue_.pop_front();
      else
        head.lo = chunk.hi;
      ws.lease_id = ++lease_seq_;
      for (int k = chunk.lo; k < chunk.hi; ++k) ws.outstanding.insert(k);
      try {
        ws.link->send(runtime::encode_lease_frame(
            {ws.lease_id, static_cast<std::uint32_t>(chunk.lo),
             static_cast<std::uint32_t>(chunk.hi), 1}));
        ws.idle = false;
        ws.lease_sent = std::chrono::steady_clock::now();
        ws.lease_span = chunk.hi - chunk.lo;
        WorkerTelemetry& wt = telemetry_.workers[w];
        wt.lease_size = ws.lease_span;
        wt.busy = true;
      } catch (const std::exception& e) {
        lose_worker(static_cast<int>(w),
                    std::string("lease send failed: ") + e.what());
      }
    }
  }

  // --- teardown --------------------------------------------------------------

  void teardown() noexcept {
    if (torn_down_) return;
    torn_down_ = true;
    try {
      const std::vector<std::uint8_t> shutdown = runtime::encode_shutdown_frame();
      for (WorkerState& ws : workers_) {
        if (!ws.alive || !ws.link) continue;
        try {
          ws.link->send(shutdown);
        } catch (const std::exception&) {
        }
      }
      // Grace period for clean exits, then hard-stop the stragglers. Every
      // reader terminates with one Eof/Corrupt event; kill() guarantees a
      // blocked recv resolves to Eof promptly.
      const auto deadline =
          std::chrono::steady_clock::now() + options_.shutdown_grace;
      while (readers_finished_ < readers_started_) {
        std::optional<Event> event = events_.pop_until(deadline);
        if (!event.has_value()) break;
        if (event->kind == Event::Kind::Eof ||
            event->kind == Event::Kind::Corrupt)
          ++readers_finished_;
      }
      for (WorkerState& ws : workers_)
        if (ws.link) ws.link->kill();
      while (readers_finished_ < readers_started_) {
        const Event event = events_.pop();
        if (event.kind == Event::Kind::Eof ||
            event.kind == Event::Kind::Corrupt)
          ++readers_finished_;
      }
      for (WorkerState& ws : workers_)
        if (ws.reader.joinable()) ws.reader.join();
      workers_.clear();  // link destructors reap subprocess children
    } catch (...) {
      // Teardown must never mask the in-flight exception.
    }
  }

  Transport& transport_;
  const RemoteOptions& options_;
  const runtime::StudyParams& study_;
  const EmitFn& emit_;
  RunnerTelemetry& telemetry_;
  const int n_;
  /// Current lease span — fixed at options.lease_size, or adapted by
  /// autotune() between leases.
  int lease_now_;

  EventQueue events_;
  std::vector<WorkerState> workers_;
  std::deque<Chunk> queue_;
  std::map<int, runtime::ExperimentResult> buffer_;
  std::vector<std::uint8_t> hello_with_study_;
  std::vector<std::uint8_t> hello_inherited_;
  /// Memoizes decoded timeline headers across this study's results: most
  /// experiments share machine/state/event dictionaries, so the decode hot
  /// path pays the string allocations once per distinct header.
  runtime::ResultInterner interner_;
  /// Lost workers awaiting reopen attempts; engine thread only.
  std::vector<PendingReconnect> reconnects_pending_;
  Rng reconnect_rng_{0};
  std::uint32_t lease_seq_{0};
  int next_emit_{0};
  int fail_min_{kNoFailure};
  runtime::WireErrorCategory fail_category_{runtime::WireErrorCategory::Runtime};
  std::string fail_message_;
  int readers_started_{0};
  int readers_finished_{0};
  bool torn_down_{false};
};

}  // namespace

// --- RemoteRunner ------------------------------------------------------------

RemoteRunner::RemoteRunner(std::shared_ptr<Transport> transport,
                           RemoteOptions options)
    : transport_(std::move(transport)), options_(options) {
  if (!transport_) throw ConfigError("RemoteRunner: null transport");
  if (options_.lease_size < 1)
    throw ConfigError("RemoteRunner: lease_size must be >= 1, got " +
                      std::to_string(options_.lease_size));
  if (options_.hang_timeout.count() <= 0)
    throw ConfigError("RemoteRunner: hang_timeout must be positive");
  if (options_.autotune_lease) {
    if (options_.max_lease_size < 1)
      throw ConfigError("RemoteRunner: max_lease_size must be >= 1, got " +
                        std::to_string(options_.max_lease_size));
    if (options_.lease_target.count() <= 0)
      throw ConfigError("RemoteRunner: lease_target must be positive");
  }
  if (options_.reconnect_attempts < 0)
    throw ConfigError("RemoteRunner: reconnect_attempts must be >= 0, got " +
                      std::to_string(options_.reconnect_attempts));
  if (options_.reconnect_attempts > 0) {
    if (options_.reconnect_backoff.count() <= 0)
      throw ConfigError("RemoteRunner: reconnect_backoff must be positive");
    if (options_.reconnect_multiplier < 1.0)
      throw ConfigError("RemoteRunner: reconnect_multiplier must be >= 1");
    if (options_.reconnect_backoff_max < options_.reconnect_backoff)
      throw ConfigError(
          "RemoteRunner: reconnect_backoff_max must be >= reconnect_backoff");
  }
}

std::string RemoteRunner::name() const {
  return "remote(" + transport_->name() + ")";
}

int RemoteRunner::parallelism() const { return transport_->worker_count(); }

void RemoteRunner::run_study(const runtime::StudyParams& study,
                             const EmitFn& emit) {
  Engine engine(*transport_, options_, study, emit, telemetry_);
  engine.run();
}

// --- serve_worker ------------------------------------------------------------

void serve_worker(FrameChannel& channel,
                  const runtime::StudyParams* inherited_study,
                  const ServeOptions& options) {
  std::optional<std::vector<std::uint8_t>> first = channel.read();
  if (!first.has_value()) return;  // parent vanished before the handshake
  if (runtime::worker_frame_type(*first) != WorkerFrame::Hello)
    throw std::runtime_error("serve_worker: expected Hello, got frame type " +
                             std::to_string(static_cast<int>((*first)[0])));
  runtime::HelloFrame hello = runtime::decode_hello_frame(*first);
  if (hello.protocol_version != runtime::kWorkerProtocolVersion)
    throw std::runtime_error(
        "serve_worker: parent speaks worker protocol v" +
        std::to_string(hello.protocol_version) + ", this build v" +
        std::to_string(runtime::kWorkerProtocolVersion));
  const runtime::StudyParams* study =
      hello.study.has_value() ? &*hello.study : inherited_study;
  channel.write(runtime::encode_hello_ack_frame(
      static_cast<std::uint64_t>(::getpid())));

  // The worker's study is fixed at Hello time, so one resettable context
  // serves every lease: the first experiment compiles the study, all later
  // ones (across all leases) reuse the compiled tables and the world slabs.
  runtime::ExperimentContext context;
  // One batch buffer for the whole serve loop: results are encoded straight
  // into it (no per-result temporary), and once it has grown to the largest
  // flush it never reallocates again.
  std::vector<std::uint8_t> batch;

  // Liveness cadence: every write resets the silence clock; between
  // experiments and between batch flushes, a Heartbeat goes out whenever
  // `interval` has elapsed without one. The old behaviour — one heartbeat
  // at lease start only — let a worker grinding through a slow, autotuned
  // lease sit silent past the parent's hang_timeout and get killed while
  // healthy. The Hello-supplied interval (hang_timeout / 4 by default)
  // wins over the local ServeOptions fallback.
  using Clock = std::chrono::steady_clock;
  const std::chrono::milliseconds interval =
      hello.heartbeat_interval_ms > 0
          ? std::chrono::milliseconds(hello.heartbeat_interval_ms)
          : options.heartbeat_interval;
  Clock::time_point last_write = Clock::now();
  const auto write = [&](const std::vector<std::uint8_t>& bytes) {
    channel.write(bytes);
    last_write = Clock::now();
  };
  // Cumulative stats for this worker process, carried by every heartbeat.
  runtime::WorkerStatsSnapshot stats;

  for (;;) {
    std::optional<std::vector<std::uint8_t>> frame = channel.read();
    if (!frame.has_value()) return;  // parent gone: exit quietly
    switch (runtime::worker_frame_type(*frame)) {
      case WorkerFrame::Lease: {
        const runtime::LeaseFrame lease = runtime::decode_lease_frame(*frame);
        write(runtime::encode_heartbeat_frame(lease.id, stats));
        runtime::begin_result_batch(batch);
        for (std::uint32_t k = lease.lo; k < lease.hi; k += lease.step) {
          const int index = static_cast<int>(k);
          bool failed = false;
          const Clock::time_point started = Clock::now();
          const std::size_t batch_before = batch.size();
          try {
            if (study == nullptr)
              throw ConfigError(
                  "serve_worker: no study — the Hello frame carried none and "
                  "none was inherited");
            runtime::ExperimentParams params = study->make_params(index);
            validate_experiment_params(params,
                                       experiment_context(*study, index));
            const runtime::ExperimentResult result = context.run(params);
            runtime::append_result_ok_entry(batch, k, result);
          } catch (const std::exception& e) {
            runtime::append_result_error_entry(
                batch, k, runtime::classify_error(e), e.what());
            failed = true;
          }
          const Clock::time_point finished = Clock::now();
          stats.bytes_encoded += batch.size() - batch_before;
          if (!failed)
            stats.record_experiment_us(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    finished - started)
                    .count()));
          if (batch.size() >= options.batch_soft_bytes || failed) {
            write(batch);
            ++stats.batches_flushed;
            runtime::begin_result_batch(batch);
          }
          if (failed) break;  // serial prefix semantics: nothing past failure
          if (finished - last_write >= interval)
            write(runtime::encode_heartbeat_frame(lease.id, stats));
        }
        if (!runtime::result_batch_empty(batch)) {
          write(batch);
          ++stats.batches_flushed;
        }
        // Final heartbeat so the parent's telemetry (and the autotuner's
        // EWMA input) is current at every lease boundary.
        write(runtime::encode_heartbeat_frame(lease.id, stats));
        write(runtime::encode_lease_done_frame(lease.id));
        break;
      }
      case WorkerFrame::Ping:
        channel.write(
            runtime::encode_pong_frame(runtime::decode_ping_frame(*frame)));
        break;
      case WorkerFrame::Shutdown:
        return;
      default:
        throw std::runtime_error("serve_worker: unexpected worker-bound frame");
    }
  }
}

}  // namespace loki::campaign
