#include "campaign/validate.hpp"

#include <set>
#include <string>

#include "util/error.hpp"

namespace loki::campaign {

namespace {

[[noreturn]] void fail(const std::string& context, const std::string& message) {
  throw ConfigError(context + ": " + message);
}

}  // namespace

void validate_experiment_params(const runtime::ExperimentParams& params,
                                const std::string& context) {
  if (params.hosts.empty()) fail(context, "no hosts configured");

  std::set<std::string> hosts;
  for (const runtime::HostConfig& hc : params.hosts) {
    if (hc.name.empty()) fail(context, "host with empty name");
    if (!hosts.insert(hc.name).second)
      fail(context, "duplicate host name '" + hc.name + "'");
    if (hc.load_duty < 0.0 || hc.load_duty > 1.0)
      fail(context, "host '" + hc.name + "': load_duty must be in [0,1], got " +
                        std::to_string(hc.load_duty));
  }

  if (params.nodes.empty()) fail(context, "no nodes configured");

  std::set<std::string> nicknames;
  for (const runtime::NodeConfig& nc : params.nodes) {
    if (nc.nickname.empty()) fail(context, "node with empty nickname");
    if (!nicknames.insert(nc.nickname).second)
      fail(context, "duplicate node nickname '" + nc.nickname + "'");
    if (nc.sm_spec.name() != nc.nickname)
      fail(context, "node '" + nc.nickname +
                        "': state machine spec is named '" + nc.sm_spec.name() +
                        "' (must equal the nickname)");
    if (nc.initial_host.has_value() && !hosts.contains(*nc.initial_host))
      fail(context, "node '" + nc.nickname + "': unknown initial host '" +
                        *nc.initial_host + "'");
    if (nc.initial_host.has_value() && nc.enter_at.has_value())
      fail(context, "node '" + nc.nickname +
                        "': both initial_host and enter_at set (a node either "
                        "starts at t0 or enters dynamically)");
    if (!nc.initial_host.has_value() && !nc.enter_at.has_value())
      fail(context, "node '" + nc.nickname +
                        "': neither initial_host nor enter_at set (the node "
                        "would never start)");
    if (nc.enter_at.has_value()) {
      if (nc.enter_host.empty())
        fail(context, "node '" + nc.nickname + "': enter_at set but no enter_host");
      if (!hosts.contains(nc.enter_host))
        fail(context, "node '" + nc.nickname + "': unknown enter host '" +
                          nc.enter_host + "'");
    }
    if (nc.restart.enabled) {
      if (nc.restart.max_restarts < 0)
        fail(context, "node '" + nc.nickname + "': max_restarts must be >= 0");
      if (nc.restart.placement == runtime::RestartPolicy::Placement::Fixed &&
          !hosts.contains(nc.restart.fixed_host))
        fail(context, "node '" + nc.nickname + "': unknown fixed restart host '" +
                          nc.restart.fixed_host + "'");
    }
  }

  // Fault expressions may watch other machines' global state; every machine
  // they name must exist in this experiment or its parser can never fire.
  for (const runtime::NodeConfig& nc : params.nodes) {
    for (const std::string& machine : nc.fault_spec.referenced_machines()) {
      if (!nicknames.contains(machine))
        fail(context, "node '" + nc.nickname +
                          "': fault expression references unknown machine '" +
                          machine + "'");
    }
  }

  for (const runtime::HostCrashPlan& plan : params.host_crashes) {
    if (!hosts.contains(plan.host))
      fail(context, "host crash plan names unknown host '" + plan.host + "'");
  }
}

void validate_study_params(const runtime::StudyParams& study) {
  if (study.name.empty()) throw ConfigError("study with empty name");
  const std::string context = "study '" + study.name + "'";
  if (study.experiments <= 0)
    fail(context, "experiments must be positive, got " +
                      std::to_string(study.experiments));
  if (!study.make_params) fail(context, "make_params is null");
}

std::string experiment_context(const runtime::StudyParams& study, int index) {
  return "study '" + study.name + "' experiment " + std::to_string(index);
}

}  // namespace loki::campaign
