// Pluggable byte transports between a campaign parent and its workers.
//
// A Transport spawns (or attaches to) workers and hands back one WorkerLink
// per worker: a full-duplex, frame-oriented channel. Transports move bytes
// only — the worker *protocol* (Hello/Lease/Result/..., see
// runtime/serialize.hpp and campaign/remote_runner.hpp) is layered on top
// by RemoteRunner on the parent side and serve_worker on the worker side,
// so every backend shares one protocol implementation and one conformance
// test suite.
//
// Backends:
//   SubprocessTransport   fork() (inherits the study closure — no wire
//                         identity needed) or fork()+exec() of a worker
//                         command such as `lokimeasure --worker --serve`,
//                         framed over pipes (util/pipe_io.hpp).
//   SshTransport          exec's `ssh <host> <worker command>` per host —
//                         the same frame protocol over an ssh stdio tunnel.
//   FakeTransport         in-process worker threads over in-memory frame
//                         queues, with scripted fault injection (kill,
//                         hang, EOF, corrupt, truncate, drop, delay) so
//                         runner crash-tolerance is testable
//                         deterministically.
//
// Threading contract: send() and recv() may be called concurrently from
// different threads (RemoteRunner sends leases from its main thread while a
// reader thread blocks in recv), but each direction has a single caller.
// kill() may be called from any thread and must promptly unblock a pending
// recv() with Eof. Links must not outlive their Transport.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "runtime/experiment.hpp"

namespace loki::campaign {

struct RecvOutcome {
  enum class Status {
    Frame,    // one whole frame arrived
    Eof,      // the worker closed its stream (exit, crash, kill)
    Timeout,  // no frame within the deadline — the hung-worker signal
  };
  Status status{Status::Eof};
  std::vector<std::uint8_t> frame;  // Status::Frame only
};

/// One worker's duplex frame channel, parent side.
class WorkerLink {
 public:
  virtual ~WorkerLink();

  /// Ship one frame to the worker. Throws std::runtime_error when the
  /// worker is gone (EPIPE et al.).
  virtual void send(const std::vector<std::uint8_t>& frame) = 0;

  /// Wait up to `timeout` for the next frame. Throws codec::DecodeError
  /// when the stream is corrupt (bad length prefix, mid-frame EOF).
  virtual RecvOutcome recv(std::chrono::milliseconds timeout) = 0;

  /// Idempotent hard-stop (SIGKILL or equivalent). A blocked recv() returns
  /// Eof promptly afterwards; buffered-but-undelivered frames may be lost.
  virtual void kill() = 0;

  /// Human-readable identity for error messages ("pid 4242", "host db3").
  virtual std::string describe() const = 0;

  /// True when the worker needs the study inside the Hello frame (exec'd
  /// and remote workers). fork()-based workers inherit it in memory, which
  /// keeps arbitrary closures working without a wire identity.
  virtual bool needs_study_bytes() const { return true; }
};

class Transport {
 public:
  virtual ~Transport();

  virtual std::string name() const = 0;
  virtual int worker_count() const = 0;

  /// Spawn/attach worker `index` (0-based, < worker_count()) for `study`.
  /// fork()-based transports capture the study in the child; the caller
  /// still performs the Hello handshake over the returned link. Throws on
  /// spawn failure (the caller decides whether losing one worker is fatal).
  virtual std::unique_ptr<WorkerLink> connect(
      int index, const runtime::StudyParams& study) = 0;

  /// Re-establish worker `index`'s link after a loss: a fresh spawn of the
  /// same worker slot (new process, new handshake). The default simply
  /// connect()s again — right for subprocess and ssh backends, where the
  /// old process is gone and a respawn IS the reconnect. Throws on failure;
  /// the caller (RemoteRunner's reconnect policy) retries with backoff.
  virtual std::unique_ptr<WorkerLink> reopen(
      int index, const runtime::StudyParams& study) {
    return connect(index, study);
  }
};

/// Worker-side view of the same duplex channel — what serve_worker speaks,
/// so the protocol loop runs identically in an exec'd process (fds), a
/// forked child (fds), and a FakeTransport thread (queues).
class FrameChannel {
 public:
  virtual ~FrameChannel();
  /// Next frame from the parent; std::nullopt once the parent is gone.
  virtual std::optional<std::vector<std::uint8_t>> read() = 0;
  virtual void write(const std::vector<std::uint8_t>& frame) = 0;
};

/// FrameChannel over a pair of file descriptors (not owned).
class FdFrameChannel final : public FrameChannel {
 public:
  FdFrameChannel(int in_fd, int out_fd) : in_fd_(in_fd), out_fd_(out_fd) {}
  std::optional<std::vector<std::uint8_t>> read() override;
  void write(const std::vector<std::uint8_t>& frame) override;

 private:
  int in_fd_;
  int out_fd_;
};

/// Single-threaded FrameChannel over in-memory queues: preload the
/// parent->worker frames with push(), drive serve_worker inline on the
/// calling thread, then inspect written(). No locking — this is the
/// benchmark/unit-test harness for the worker protocol loop (BM_WorkerLoop
/// measures serve_worker's steady-state floor through it); FakeTransport
/// has its own threaded channel for cross-thread fault injection.
class QueueFrameChannel final : public FrameChannel {
 public:
  /// Enqueue one parent->worker frame; read() consumes them in order and
  /// reports end-of-stream once the queue is drained.
  void push(std::vector<std::uint8_t> frame) {
    inbox_.push_back(std::move(frame));
  }

  std::optional<std::vector<std::uint8_t>> read() override {
    if (inbox_.empty()) return std::nullopt;
    std::vector<std::uint8_t> frame = std::move(inbox_.front());
    inbox_.pop_front();
    return frame;
  }

  void write(const std::vector<std::uint8_t>& frame) override {
    written_.push_back(frame);
  }

  /// Every worker->parent frame, in write order.
  const std::vector<std::vector<std::uint8_t>>& written() const {
    return written_;
  }
  /// Drop both queues (benchmark iterations reuse one channel).
  void reset() {
    inbox_.clear();
    written_.clear();
  }

 private:
  std::deque<std::vector<std::uint8_t>> inbox_;
  std::vector<std::vector<std::uint8_t>> written_;
};

namespace detail {
struct FdRegistry;  // open parent-side fds, closed inside fork()ed children
struct FakeWorker;

/// Scripted fault plan for one FakeTransport worker. The *_after thresholds
/// count delivered result *entries* (experiments); the *_nth counters are
/// 1-based over result-bearing *frames* (ResultBatch or legacy Result) as
/// the parent receives them. -1 disables a fault.
struct FakeFaults {
  int kill_after{-1};
  int eof_after{-1};
  int hang_after{-1};
  int corrupt_nth{-1};
  int truncate_nth{-1};
  int drop_nth{-1};
  int delay_nth{-1};
  std::chrono::milliseconds delay{0};
  /// Heartbeat transit faults: after `drop_heartbeats_after` heartbeat
  /// frames were delivered (0 = none ever arrive), later ones vanish;
  /// heartbeat_delay stalls each delivered heartbeat in transit. -1/0
  /// disable. Result frames are unaffected — these script a worker whose
  /// liveness signal (not its work) is lost.
  int drop_heartbeats_after{-1};
  std::chrono::milliseconds heartbeat_delay{0};
};

/// Process-wide count of FakeWorker threads that had to detach because
/// their own teardown ran the join (the thread held the last reference to
/// its own worker). The join discipline — owners join via stop_and_join,
/// a serving thread never destroys its own FakeWorker — keeps this at 0;
/// the regression test in transport_test.cpp pins that down.
std::uint64_t fake_worker_self_detaches();
}  // namespace detail

class SubprocessTransport final : public Transport {
 public:
  /// fork() mode: each worker is a forked child running serve_worker on the
  /// inherited study — arbitrary make_params closures work unchanged.
  explicit SubprocessTransport(int workers);

  /// fork()+exec() mode: each worker runs `argv` (e.g. {"lokimeasure",
  /// "--worker", "--serve"}) with the frame stream on stdin/stdout. The
  /// study crosses inside the Hello frame, so it needs a wire identity.
  SubprocessTransport(int workers, std::vector<std::string> argv);

  std::string name() const override;
  int worker_count() const override { return workers_; }
  std::unique_ptr<WorkerLink> connect(int index,
                                      const runtime::StudyParams& study) override;

 private:
  int workers_;
  std::vector<std::string> argv_;  // empty => fork() mode
  std::shared_ptr<detail::FdRegistry> registry_;
};

/// Parse a hostfile: one host per line, '#' comments and blanks ignored.
/// Throws ConfigError when empty or when a host contains whitespace.
std::vector<std::string> parse_hostfile(const std::string& text,
                                        const std::string& origin);

class SshTransport final : public Transport {
 public:
  /// One worker per hostfile line (list a host twice for two workers).
  /// `ssh_binary` is overridable so tests can substitute a local shim.
  explicit SshTransport(
      std::vector<std::string> hosts,
      std::vector<std::string> remote_command = {"lokimeasure", "--worker",
                                                 "--serve"},
      std::string ssh_binary = "ssh");

  std::string name() const override;
  int worker_count() const override { return static_cast<int>(hosts_.size()); }
  std::unique_ptr<WorkerLink> connect(int index,
                                      const runtime::StudyParams& study) override;

  /// The exec argv for worker `index` — exposed for tests.
  std::vector<std::string> worker_argv(int index) const;

 private:
  std::vector<std::string> hosts_;
  std::vector<std::string> remote_command_;
  std::string ssh_binary_;
  std::shared_ptr<detail::FdRegistry> registry_;
};

/// In-process transport for tests: each worker is a thread speaking the
/// worker protocol over in-memory frame queues (including the Hello-framed
/// study, so wire encode/decode is exercised end to end). Faults are
/// scripted per worker before the campaign runs. The *_after_results
/// thresholds count result entries as the parent receives them; the
/// Nth-batch faults count result-bearing frames (1-based). Workers default
/// to one result per batch (batch_soft_bytes = 1), so entry counts and
/// frame counts coincide unless a test raises the batch bound via
/// set_batch_soft_bytes to exercise multi-result batches.
class FakeTransport final : public Transport {
 public:
  explicit FakeTransport(int workers);
  ~FakeTransport() override;

  std::string name() const override;
  int worker_count() const override { return workers_; }
  std::unique_ptr<WorkerLink> connect(int index,
                                      const runtime::StudyParams& study) override;
  /// Honours the refuse_reconnects script, then respawns the worker with a
  /// CLEAN fault slot: the scripted fault described the process that died,
  /// and its replacement is a fresh one — which is also what keeps flap
  /// tests deterministic (the replacement cannot re-trip the same fault).
  std::unique_ptr<WorkerLink> reopen(int index,
                                     const runtime::StudyParams& study) override;

  /// Worker-side ResultBatch flush bound for subsequently connected
  /// workers. Default 1: every result flushes its own batch.
  void set_batch_soft_bytes(std::size_t bytes) { batch_soft_bytes_ = bytes; }

  /// Script a flapping link: the next `n` reopen() calls for `worker` throw
  /// (connection refused), later ones succeed — "refuse twice, then
  /// accept" exercises the runner's backoff without any real sockets.
  void refuse_reconnects(int worker, int n);

  /// SIGKILL equivalent: after `n` results were delivered, the stream ends
  /// (Eof) and the worker thread is torn down; queued frames are lost.
  void kill_after_results(int worker, int n);
  /// Clean mid-lease close: the stream reports Eof after `n` results while
  /// the worker may still be running.
  void eof_after_results(int worker, int n);
  /// The worker goes silent after `n` results: no frames, no Eof — the
  /// parent must detect it via recv timeouts.
  void hang_after_results(int worker, int n);
  /// The `nth` result-bearing frame (1-based) arrives corrupted: its first
  /// status byte is clobbered to an out-of-range value, which the batch
  /// decoder must reject with a typed error before any entry escapes.
  void corrupt_batch(int worker, int nth);
  /// The `nth` result-bearing frame (1-based) arrives truncated (its tail
  /// cut mid-payload) — a framing-layer short read the decoder must reject.
  void truncate_batch(int worker, int nth);
  /// The `nth` result-bearing frame (1-based) vanishes in transit.
  void drop_batch(int worker, int nth);
  /// The `nth` result-bearing frame (1-based) is delayed by `by`.
  void delay_batch(int worker, int nth, std::chrono::milliseconds by);
  /// Heartbeats past the first `n` vanish in transit (0 = all of them);
  /// result frames still flow. With a large batch bound this makes a busy,
  /// healthy worker look silent — the hung-worker drill.
  void drop_heartbeats_after(int worker, int n);
  /// Every delivered heartbeat is stalled by `by` in transit.
  void delay_heartbeats(int worker, std::chrono::milliseconds by);

 private:
  detail::FakeFaults& fault_slot(int worker);

  int workers_;
  std::size_t batch_soft_bytes_{1};
  std::vector<detail::FakeFaults> faults_;
  std::vector<int> refuse_;
  std::vector<std::shared_ptr<detail::FakeWorker>> live_;
};

}  // namespace loki::campaign
