// Early validation for the campaign facade (§2.2): configuration mistakes
// (duplicate nicknames, spec-name mismatches, unknown hosts, malformed
// studies) surface as ConfigError when the campaign is *built*, not after a
// few hundred experiments have already run.
#pragma once

#include <string>

#include "runtime/experiment.hpp"
#include "util/error.hpp"  // ConfigError — what every check here throws

namespace loki::campaign {

/// Check one experiment's configuration. Throws ConfigError describing the
/// first violation; `context` (e.g. "study 'black' experiment 3") prefixes
/// the message so campaign-level errors name their origin.
void validate_experiment_params(const runtime::ExperimentParams& params,
                                const std::string& context);

/// Check the study shell itself: non-empty name, experiments > 0, non-null
/// make_params. Throws ConfigError naming the study.
void validate_study_params(const runtime::StudyParams& study);

/// The standard error-context prefix for one experiment of a study, e.g.
/// "study 'black' experiment 3" — shared by every runner and the cache.
std::string experiment_context(const runtime::StudyParams& study, int index);

}  // namespace loki::campaign
