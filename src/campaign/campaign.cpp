#include "campaign/campaign.hpp"

#include <chrono>
#include <optional>
#include <set>
#include <utility>

#include "campaign/cache.hpp"
#include "campaign/journal.hpp"
#include "runtime/serialize.hpp"
#include "util/error.hpp"

namespace loki::campaign {

namespace {

/// The miss sub-study reports errors with *its* compact indices; append the
/// original coordinates so a maintainer can reproduce the right experiment.
/// Worded as "first unemitted" because a runner-infrastructure failure
/// (fork exhaustion, a dead pipe) also lands here without any experiment
/// of its own. Preserves the type for the campaign's exception families.
[[noreturn]] void rethrow_with_original_index(
    const runtime::StudyParams& study, int original_index) {
  const auto annotate = [&](const char* what) {
    return std::string(what) + " [cache-first: first unemitted miss was " +
           experiment_context(study, original_index) + "]";
  };
  try {
    throw;
  } catch (const ConfigError& e) {
    throw ConfigError(annotate(e.what()));
  } catch (const LogicError& e) {
    throw LogicError(annotate(e.what()));
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(annotate(e.what()));
  }
  // Anything else propagates unannotated via the rethrow above.
}

/// Cache-first execution of one study: serve hits, run misses as a compact
/// sub-study through the real runner, and interleave both streams so emit
/// observes exactly the serial sequence — including the failure-prefix
/// semantics: if (sub-)experiment k fails, every completed index below k
/// (cached or fresh) is emitted before the exception propagates.
///
/// Memory stays O(1) results: only the 64-char keys and the miss list are
/// materialized up front; each hit is generated, validated, read, and
/// emitted lazily at its turn (generators are deterministic per index, the
/// standard campaign contract).
///
/// `start` skips indices below it entirely (no probe, no validation) — the
/// resume path replays those from the journal before calling in here. When
/// `journal` is set, every index is journaled (IndexDone, write-ahead of
/// its emit); for fresh results this sits *after* the durable cache store,
/// the ordering the whole resume guarantee rests on.
void run_study_cache_first(Runner& runner, ResultCache& cache,
                           const runtime::StudyParams& study,
                           const EmitFn& emit, int& cache_hits, int start,
                           CampaignJournal* journal, std::uint32_t ordinal) {
  const int n = study.experiments;
  if (n <= 0 || start >= n) return;
  std::vector<std::string> keys(static_cast<std::size_t>(n));
  std::vector<int> missing;
  for (int k = start; k < n; ++k) {
    // One generator call per index, all on this thread — emit_cached_below
    // runs inside the runner's emit callback, where another make_params
    // call would race the runner's own (gen_mu-serialized) generator use.
    runtime::ExperimentParams params = study.make_params(k);
    keys[static_cast<std::size_t>(k)] = runtime::experiment_cache_key(params);
    if (cache.contains(keys[static_cast<std::size_t>(k)])) {
      // Hits skip run_experiment, not validation; a config mistake on a
      // cached index surfaces here, before anything runs, rather than at
      // its serial emit position.
      validate_experiment_params(params, experiment_context(study, k));
    } else {
      missing.push_back(k);  // the runner validates misses itself
    }
  }

  // Write-ahead emit: the journal learns about an index before any sink
  // does, so a crash mid-emit resumes by re-emitting it from the cache.
  const auto journal_and_emit = [&](int k, runtime::ExperimentResult&& result) {
    if (journal != nullptr)
      journal->index_done(ordinal, static_cast<std::uint32_t>(k),
                          keys[static_cast<std::size_t>(k)]);
    emit(k, std::move(result));
  };

  int next_emit = start;
  const auto emit_cached_below = [&](int bound) {
    while (next_emit < bound) {
      // Advance first: if the read or a sink throws here, the index counts
      // as delivered and is never re-emitted by a later flush.
      const int k = next_emit++;
      std::optional<runtime::ExperimentResult> result =
          cache.lookup(keys[static_cast<std::size_t>(k)]);
      if (!result.has_value())
        throw std::runtime_error(
            "ResultCache: entry for " + experiment_context(study, k) +
            " disappeared or went undecodable mid-study (key " +
            keys[static_cast<std::size_t>(k)] +
            "); a concurrent eviction? re-run the campaign");
      ++cache_hits;
      journal_and_emit(k, std::move(*result));
    }
  };

  if (!missing.empty()) {
    runtime::StudyParams sub;
    sub.name = study.name;
    sub.experiments = static_cast<int>(missing.size());
    sub.make_params = [&study, &missing](int j) {
      return study.make_params(missing[static_cast<std::size_t>(j)]);
    };
    int fresh_done = 0;
    bool interleave_failed = false;
    try {
      runner.run_study(sub, [&](int j, runtime::ExperimentResult&& result) {
        const int k = missing[static_cast<std::size_t>(j)];
        try {
          emit_cached_below(k);
          // Ordering contract: durable store (fsync + rename inside), then
          // the journal record, then the sinks. See campaign/journal.hpp.
          cache.store(keys[static_cast<std::size_t>(k)], result);
          journal_and_emit(k, std::move(result));
        } catch (...) {
          interleave_failed = true;
          throw;
        }
        next_emit = k + 1;
        ++fresh_done;
      });
    } catch (...) {
      // A failure of our own interleave (a sink or a cached index) already
      // delivered the serial prefix; propagate it untouched. A runner
      // failure is sub-index fresh_done (the runner contract): cached
      // entries below the failing original index complete the serial
      // prefix, then the error is annotated with its original coordinates.
      if (interleave_failed) throw;
      if (fresh_done < static_cast<int>(missing.size())) {
        const int failing = missing[static_cast<std::size_t>(fresh_done)];
        emit_cached_below(failing);
        rethrow_with_original_index(study, failing);
      }
      throw;
    }
  }
  emit_cached_below(n);
}

/// Check one journaled study against the campaign it is being resumed into.
/// Name, experiment count, and content digest must all agree — a journal
/// from a different campaign (or the same campaign with edited studies)
/// must fail loudly, not silently replay the wrong results.
void validate_resumed_study(const JournalState::StudyProgress& journaled,
                            const runtime::StudyParams& study,
                            std::size_t ordinal) {
  const auto mismatch = [&](const std::string& what, const std::string& want,
                            const std::string& got) {
    throw ConfigError("campaign resume: journaled study " +
                      std::to_string(ordinal) + " " + what + " mismatch: journal has " +
                      got + ", campaign has " + want +
                      " — this journal belongs to a different campaign");
  };
  if (journaled.name != study.name)
    mismatch("name", "'" + study.name + "'", "'" + journaled.name + "'");
  if (journaled.experiments !=
      static_cast<std::uint32_t>(study.experiments))
    mismatch("experiment count", std::to_string(study.experiments),
             std::to_string(journaled.experiments));
  const std::string digest = study_digest(study);
  if (journaled.digest != digest)
    mismatch("digest", digest, journaled.digest);
}

}  // namespace

// --- Campaign ----------------------------------------------------------------

Campaign::Summary Campaign::run() {
  if (ran_)
    throw LogicError(
        "Campaign::run() may only be called once: the sinks have already "
        "accumulated a full campaign; build a fresh Campaign to run again");
  ran_ = true;
  const auto start = std::chrono::steady_clock::now();
  Summary summary;
  summary.studies = static_cast<int>(studies_.size());
  // Telemetry is cumulative on the runner (which may be shared across
  // campaigns); report this campaign's delta.
  const RunnerTelemetry telemetry_before = runner_->telemetry();

  // Journal/resume setup. A resume first loads and validates the existing
  // journal: the campaign must have the same number of studies and each
  // journaled study must match by name, count, and digest. A journal killed
  // before its CampaignBegin made it to disk carries no identity to check —
  // it is recreated as a fresh journal.
  JournalState state;
  std::optional<CampaignJournal> journal;
  if (!journal_path_.empty()) {
    const CampaignJournal::Options jopts(journal_group_);
    bool fresh = !resume_;
    if (resume_) {
      state = CampaignJournal::load(journal_path_);
      if (!state.campaign_begun) {
        fresh = true;  // killed at birth: nothing usable, start over
        state = JournalState{};
      } else {
        if (state.studies != studies_.size())
          throw ConfigError(
              "campaign resume: journal records " +
              std::to_string(state.studies) + " studies, campaign has " +
              std::to_string(studies_.size()) +
              " — this journal belongs to a different campaign");
        for (std::size_t i = 0; i < state.progress.size(); ++i)
          validate_resumed_study(state.progress[i], studies_[i], i);
      }
    }
    if (fresh) {
      journal.emplace(CampaignJournal::create(journal_path_, jopts));
      journal->campaign_begin(runner_->name(), journal_seed_,
                              static_cast<std::uint32_t>(studies_.size()));
    } else {
      journal.emplace(CampaignJournal::append_to(journal_path_, jopts));
    }
  }
  CampaignJournal* const jptr = journal ? &*journal : nullptr;

  for (const auto& sink : sinks_) sink->on_campaign_begin(summary.studies);

  try {
    for (std::size_t i = 0; i < studies_.size(); ++i) {
      const runtime::StudyParams& study = studies_[i];
      const StudyInfo info{study.name, static_cast<int>(i), study.experiments};
      for (const auto& sink : sinks_) sink->on_study_begin(info);
      const EmitFn deliver = [&](int k, runtime::ExperimentResult&& result) {
        ++summary.experiments;
        if (result.completed) ++summary.completed;
        if (result.timed_out) ++summary.timed_out;
        for (const auto& sink : sinks_) sink->on_experiment(info, k, result);
      };
      const JournalState::StudyProgress* journaled =
          i < state.progress.size() ? &state.progress[i] : nullptr;
      if (jptr != nullptr && journaled == nullptr)
        jptr->study_begin(static_cast<std::uint32_t>(i), study.name,
                          study_digest(study),
                          static_cast<std::uint32_t>(study.experiments));
      int replay_from = 0;
      if (journaled != nullptr) {
        // Replay the journaled prefix straight from the cache by journaled
        // key: no probing, no re-validation, no re-journaling — these
        // records are already durable. The entries MUST exist: IndexDone is
        // only ever written after the durable store, so a miss here means
        // the cache was pruned behind the journal's back.
        replay_from = static_cast<int>(journaled->done_keys.size());
        for (int k = 0; k < replay_from; ++k) {
          std::optional<runtime::ExperimentResult> result = cache_->lookup(
              journaled->done_keys[static_cast<std::size_t>(k)]);
          if (!result.has_value())
            throw std::runtime_error(
                "campaign resume: journaled " + experiment_context(study, k) +
                " is missing from the cache (key " +
                journaled->done_keys[static_cast<std::size_t>(k)] +
                "); journal and cache have diverged — delete the journal to "
                "start over");
          ++summary.replayed;
          deliver(k, std::move(*result));
        }
      }
      if (cache_)
        run_study_cache_first(*runner_, *cache_, study, deliver,
                              summary.cache_hits, replay_from, jptr,
                              static_cast<std::uint32_t>(i));
      else
        runner_->run_study(study, deliver);
      if (jptr != nullptr && !(journaled != nullptr && journaled->ended))
        jptr->study_end(static_cast<std::uint32_t>(i));
      for (const auto& sink : sinks_) sink->on_study_done(info);
    }
  } catch (...) {
    // An aborting campaign (a throwing sink, a lost fleet, a full disk)
    // still flushes its buffered IndexDone records: the maximal journaled
    // prefix is exactly what makes the subsequent resume cheap.
    if (jptr != nullptr) {
      try {
        jptr->flush();
      } catch (...) {
        // The original exception is the story; a failing flush only costs
        // resume some cache hits.
      }
    }
    throw;
  }

  if (jptr != nullptr && !state.campaign_done) jptr->campaign_end();
  for (const auto& sink : sinks_) sink->on_campaign_done();
  const RunnerTelemetry telemetry_after = runner_->telemetry();
  summary.requeue_events =
      telemetry_after.requeues - telemetry_before.requeues;
  summary.requeued_indices =
      telemetry_after.requeued_indices - telemetry_before.requeued_indices;
  summary.workers_lost =
      telemetry_after.workers_lost - telemetry_before.workers_lost;
  summary.reconnects =
      telemetry_after.reconnects - telemetry_before.reconnects;
  summary.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return summary;
}

// --- StudyBuilder ------------------------------------------------------------

StudyBuilder::StudyBuilder(CampaignBuilder* parent, std::string name)
    : parent_(parent), name_(std::move(name)) {}

StudyBuilder& StudyBuilder::experiments(int n) {
  experiments_ = n;
  return *this;
}

StudyBuilder& StudyBuilder::base(runtime::ExperimentParams params) {
  base_ = std::move(params);
  return *this;
}

StudyBuilder& StudyBuilder::generator(
    std::function<runtime::ExperimentParams(int)> gen) {
  generator_ = std::move(gen);
  return *this;
}

StudyBuilder& StudyBuilder::host(runtime::HostConfig host) {
  hosts_.push_back(std::move(host));
  return *this;
}

StudyBuilder& StudyBuilder::host(const std::string& name) {
  runtime::HostConfig hc;
  hc.name = name;
  return host(std::move(hc));
}

StudyBuilder& StudyBuilder::node(runtime::NodeConfig node) {
  nodes_.push_back(std::move(node));
  return *this;
}

StudyBuilder& StudyBuilder::fault(const std::string& nickname,
                                  const std::string& fault_spec_text) {
  // Parse immediately: a syntax error points at the composition site.
  faults_.emplace_back(
      nickname, spec::parse_fault_spec(fault_spec_text, "study '" + name_ + "'"));
  return *this;
}

StudyBuilder& StudyBuilder::tweak(
    std::function<void(runtime::ExperimentParams&, int)> fn) {
  if (!fn) throw ConfigError("study '" + name_ + "': null tweak");
  tweaks_.push_back(std::move(fn));
  return *this;
}

runtime::StudyParams StudyBuilder::to_study() const {
  if (!generator_ && !base_ && nodes_.empty())
    throw ConfigError("study '" + name_ +
                      "': no base params, generator, or nodes composed");

  runtime::StudyParams study;
  study.name = name_;
  study.experiments = experiments_;
  study.make_params = [name = name_, base = base_, gen = generator_,
                       hosts = hosts_, nodes = nodes_, faults = faults_,
                       tweaks = tweaks_](int k) {
    runtime::ExperimentParams p;
    if (gen) {
      p = gen(k);
    } else if (base.has_value()) {
      p = *base;
      p.seed = base->seed + static_cast<std::uint64_t>(k);
    } else {
      p.seed = 1 + static_cast<std::uint64_t>(k);
    }
    for (const runtime::HostConfig& h : hosts) p.hosts.push_back(h);
    for (const runtime::NodeConfig& n : nodes) p.nodes.push_back(n);
    for (const auto& [nickname, fault_spec] : faults) {
      bool found = false;
      for (runtime::NodeConfig& n : p.nodes) {
        if (n.nickname == nickname) {
          n.fault_spec = fault_spec;
          found = true;
          break;
        }
      }
      if (!found)
        throw ConfigError("study '" + name + "': fault spec targets unknown node '" +
                          nickname + "'");
    }
    for (const auto& tweak : tweaks) tweak(p, k);
    return p;
  };
  return study;
}

// --- CampaignBuilder ---------------------------------------------------------

StudyBuilder& CampaignBuilder::study(const std::string& name) {
  Entry entry;
  entry.builder = std::shared_ptr<StudyBuilder>(new StudyBuilder(this, name));
  entries_.push_back(std::move(entry));
  return *entries_.back().builder;
}

CampaignBuilder& CampaignBuilder::add(runtime::StudyParams study) {
  Entry entry;
  entry.prebuilt = std::move(study);
  entries_.push_back(std::move(entry));
  return *this;
}

CampaignBuilder& CampaignBuilder::runner(std::shared_ptr<Runner> runner) {
  if (!runner) throw ConfigError("null runner");
  runner_ = std::move(runner);
  return *this;
}

CampaignBuilder& CampaignBuilder::parallelism(int workers) {
  return runner(make_runner(workers));
}

CampaignBuilder& CampaignBuilder::sink(std::shared_ptr<ResultSink> sink) {
  if (!sink) throw ConfigError("null sink");
  sinks_.push_back(std::move(sink));
  return *this;
}

CampaignBuilder& CampaignBuilder::cache(std::shared_ptr<ResultCache> cache) {
  if (!cache) throw ConfigError("null cache");
  cache_ = std::move(cache);
  return *this;
}

CampaignBuilder& CampaignBuilder::cache_dir(const std::string& dir) {
  return cache(std::make_shared<ResultCache>(dir));
}

CampaignBuilder& CampaignBuilder::journal(const std::string& path,
                                          std::uint64_t seed) {
  if (path.empty()) throw ConfigError("journal: empty path");
  journal_path_ = path;
  journal_seed_ = seed;
  resume_ = false;
  return *this;
}

CampaignBuilder& CampaignBuilder::resume(const std::string& path) {
  if (path.empty()) throw ConfigError("resume: empty journal path");
  journal_path_ = path;
  resume_ = true;
  return *this;
}

CampaignBuilder& CampaignBuilder::journal_group(int records) {
  if (records < 1)
    throw ConfigError("journal_group: need at least 1 record per commit, got " +
                      std::to_string(records));
  journal_group_ = records;
  return *this;
}

Campaign CampaignBuilder::build() const {
  Campaign campaign;
  std::set<std::string> names;
  for (const Entry& entry : entries_) {
    runtime::StudyParams study =
        entry.prebuilt.has_value() ? *entry.prebuilt : entry.builder->to_study();
    validate_study_params(study);
    if (!names.insert(study.name).second)
      throw ConfigError("duplicate study name '" + study.name + "'");
    // Probe experiment 0 so composition mistakes (duplicate nicknames,
    // unknown hosts, spec-name mismatches...) fail at build time.
    validate_experiment_params(study.make_params(0),
                               "study '" + study.name + "'");
    // With a cache attached every experiment must be encodable for its
    // content key; probe that too, so a node without a wire identity
    // (app_name) fails here and not mid-campaign.
    if (cache_) runtime::experiment_cache_key(study.make_params(0));
    campaign.studies_.push_back(std::move(study));
  }
  // The journal's whole replay guarantee rests on the cache's durable store
  // ordering: no cache, no journal.
  if (!journal_path_.empty() && !cache_)
    throw ConfigError(
        "a journaled campaign requires a result cache (cache_dir/cache): "
        "resume replays journaled indices from the cache");
  campaign.runner_ = runner_ ? runner_ : std::make_shared<SerialRunner>();
  campaign.cache_ = cache_;
  campaign.sinks_ = sinks_;
  campaign.journal_path_ = journal_path_;
  campaign.resume_ = resume_;
  campaign.journal_group_ = journal_group_;
  campaign.journal_seed_ = journal_seed_;
  return campaign;
}

// --- legacy wrappers ---------------------------------------------------------

runtime::ExperimentResult run_single(const runtime::ExperimentParams& params,
                                     const std::string& context) {
  validate_experiment_params(params, context);
  return runtime::run_experiment(params);
}

}  // namespace loki::campaign

namespace loki::runtime {

// The legacy double-loop, now a thin wrapper over the facade: validation up
// front (ConfigError instead of a mid-campaign crash), serial execution,
// everything buffered.
CampaignResult run_campaign(const std::vector<StudyParams>& studies) {
  auto collect = std::make_shared<campaign::CollectSink>();
  campaign::CampaignBuilder builder;
  for (const StudyParams& study : studies) builder.add(study);
  builder.sink(collect);
  builder.build().run();
  return collect->take();
}

}  // namespace loki::runtime
