#include "campaign/campaign.hpp"

#include <chrono>
#include <set>
#include <utility>

#include "util/error.hpp"

namespace loki::campaign {

// --- Campaign ----------------------------------------------------------------

Campaign::Summary Campaign::run() {
  if (ran_)
    throw LogicError(
        "Campaign::run() may only be called once: the sinks have already "
        "accumulated a full campaign; build a fresh Campaign to run again");
  ran_ = true;
  const auto start = std::chrono::steady_clock::now();
  Summary summary;
  summary.studies = static_cast<int>(studies_.size());

  for (const auto& sink : sinks_) sink->on_campaign_begin(summary.studies);

  for (std::size_t i = 0; i < studies_.size(); ++i) {
    const runtime::StudyParams& study = studies_[i];
    const StudyInfo info{study.name, static_cast<int>(i), study.experiments};
    for (const auto& sink : sinks_) sink->on_study_begin(info);
    runner_->run_study(study, [&](int k, runtime::ExperimentResult&& result) {
      ++summary.experiments;
      if (result.completed) ++summary.completed;
      if (result.timed_out) ++summary.timed_out;
      for (const auto& sink : sinks_) sink->on_experiment(info, k, result);
    });
    for (const auto& sink : sinks_) sink->on_study_done(info);
  }

  for (const auto& sink : sinks_) sink->on_campaign_done();
  summary.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return summary;
}

// --- StudyBuilder ------------------------------------------------------------

StudyBuilder::StudyBuilder(CampaignBuilder* parent, std::string name)
    : parent_(parent), name_(std::move(name)) {}

StudyBuilder& StudyBuilder::experiments(int n) {
  experiments_ = n;
  return *this;
}

StudyBuilder& StudyBuilder::base(runtime::ExperimentParams params) {
  base_ = std::move(params);
  return *this;
}

StudyBuilder& StudyBuilder::generator(
    std::function<runtime::ExperimentParams(int)> gen) {
  generator_ = std::move(gen);
  return *this;
}

StudyBuilder& StudyBuilder::host(runtime::HostConfig host) {
  hosts_.push_back(std::move(host));
  return *this;
}

StudyBuilder& StudyBuilder::host(const std::string& name) {
  runtime::HostConfig hc;
  hc.name = name;
  return host(std::move(hc));
}

StudyBuilder& StudyBuilder::node(runtime::NodeConfig node) {
  nodes_.push_back(std::move(node));
  return *this;
}

StudyBuilder& StudyBuilder::fault(const std::string& nickname,
                                  const std::string& fault_spec_text) {
  // Parse immediately: a syntax error points at the composition site.
  faults_.emplace_back(
      nickname, spec::parse_fault_spec(fault_spec_text, "study '" + name_ + "'"));
  return *this;
}

StudyBuilder& StudyBuilder::tweak(
    std::function<void(runtime::ExperimentParams&, int)> fn) {
  if (!fn) throw ConfigError("study '" + name_ + "': null tweak");
  tweaks_.push_back(std::move(fn));
  return *this;
}

runtime::StudyParams StudyBuilder::to_study() const {
  if (!generator_ && !base_ && nodes_.empty())
    throw ConfigError("study '" + name_ +
                      "': no base params, generator, or nodes composed");

  runtime::StudyParams study;
  study.name = name_;
  study.experiments = experiments_;
  study.make_params = [name = name_, base = base_, gen = generator_,
                       hosts = hosts_, nodes = nodes_, faults = faults_,
                       tweaks = tweaks_](int k) {
    runtime::ExperimentParams p;
    if (gen) {
      p = gen(k);
    } else if (base.has_value()) {
      p = *base;
      p.seed = base->seed + static_cast<std::uint64_t>(k);
    } else {
      p.seed = 1 + static_cast<std::uint64_t>(k);
    }
    for (const runtime::HostConfig& h : hosts) p.hosts.push_back(h);
    for (const runtime::NodeConfig& n : nodes) p.nodes.push_back(n);
    for (const auto& [nickname, fault_spec] : faults) {
      bool found = false;
      for (runtime::NodeConfig& n : p.nodes) {
        if (n.nickname == nickname) {
          n.fault_spec = fault_spec;
          found = true;
          break;
        }
      }
      if (!found)
        throw ConfigError("study '" + name + "': fault spec targets unknown node '" +
                          nickname + "'");
    }
    for (const auto& tweak : tweaks) tweak(p, k);
    return p;
  };
  return study;
}

// --- CampaignBuilder ---------------------------------------------------------

StudyBuilder& CampaignBuilder::study(const std::string& name) {
  Entry entry;
  entry.builder = std::shared_ptr<StudyBuilder>(new StudyBuilder(this, name));
  entries_.push_back(std::move(entry));
  return *entries_.back().builder;
}

CampaignBuilder& CampaignBuilder::add(runtime::StudyParams study) {
  Entry entry;
  entry.prebuilt = std::move(study);
  entries_.push_back(std::move(entry));
  return *this;
}

CampaignBuilder& CampaignBuilder::runner(std::shared_ptr<Runner> runner) {
  if (!runner) throw ConfigError("null runner");
  runner_ = std::move(runner);
  return *this;
}

CampaignBuilder& CampaignBuilder::parallelism(int workers) {
  return runner(make_runner(workers));
}

CampaignBuilder& CampaignBuilder::sink(std::shared_ptr<ResultSink> sink) {
  if (!sink) throw ConfigError("null sink");
  sinks_.push_back(std::move(sink));
  return *this;
}

Campaign CampaignBuilder::build() const {
  Campaign campaign;
  std::set<std::string> names;
  for (const Entry& entry : entries_) {
    runtime::StudyParams study =
        entry.prebuilt.has_value() ? *entry.prebuilt : entry.builder->to_study();
    validate_study_params(study);
    if (!names.insert(study.name).second)
      throw ConfigError("duplicate study name '" + study.name + "'");
    // Probe experiment 0 so composition mistakes (duplicate nicknames,
    // unknown hosts, spec-name mismatches...) fail at build time.
    validate_experiment_params(study.make_params(0),
                               "study '" + study.name + "'");
    campaign.studies_.push_back(std::move(study));
  }
  campaign.runner_ = runner_ ? runner_ : std::make_shared<SerialRunner>();
  campaign.sinks_ = sinks_;
  return campaign;
}

// --- legacy wrappers ---------------------------------------------------------

runtime::ExperimentResult run_single(const runtime::ExperimentParams& params,
                                     const std::string& context) {
  validate_experiment_params(params, context);
  return runtime::run_experiment(params);
}

}  // namespace loki::campaign

namespace loki::runtime {

// The legacy double-loop, now a thin wrapper over the facade: validation up
// front (ConfigError instead of a mid-campaign crash), serial execution,
// everything buffered.
CampaignResult run_campaign(const std::vector<StudyParams>& studies) {
  auto collect = std::make_shared<campaign::CollectSink>();
  campaign::CampaignBuilder builder;
  for (const StudyParams& study : studies) builder.add(study);
  builder.sink(collect);
  builder.build().run();
  return collect->take();
}

}  // namespace loki::runtime
