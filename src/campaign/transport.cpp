#include "campaign/transport.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <deque>
#include <thread>
#include <utility>

#include <sys/wait.h>
#include <unistd.h>

#include "campaign/remote_runner.hpp"
#include "runtime/serialize.hpp"
#include "util/error.hpp"
#include "util/mutex.hpp"
#include "util/pipe_io.hpp"
#include "util/text_file.hpp"
#include "util/thread_annotations.hpp"

namespace loki::campaign {

WorkerLink::~WorkerLink() = default;
Transport::~Transport() = default;
FrameChannel::~FrameChannel() = default;

std::optional<std::vector<std::uint8_t>> FdFrameChannel::read() {
  return util::read_frame(in_fd_);
}

void FdFrameChannel::write(const std::vector<std::uint8_t>& frame) {
  util::write_frame(out_fd_, frame);
}

namespace detail {

/// Every parent-side pipe fd currently open for a transport. A fork()ed
/// child closes all of them (minus its own pair, which is not registered
/// yet at fork time) so a SIGKILLed sibling's EOF is never masked by a
/// write end surviving in another child.
struct FdRegistry {
  util::Mutex mu;
  std::vector<int> fds LOKI_GUARDED_BY(mu);

  void add(int a, int b) LOKI_EXCLUDES(mu) {
    util::MutexLock lock(mu);
    fds.push_back(a);
    fds.push_back(b);
  }
  void remove(int a, int b) LOKI_EXCLUDES(mu) {
    util::MutexLock lock(mu);
    std::erase(fds, a);
    std::erase(fds, b);
  }
  std::vector<int> snapshot() LOKI_EXCLUDES(mu) {
    util::MutexLock lock(mu);
    return fds;
  }
};

}  // namespace detail

namespace {

/// Writing to a worker that just died must surface as EPIPE (an exception),
/// not a process-killing SIGPIPE. Installed once, by the first pipe-backed
/// transport; a process that runs campaigns over subprocesses cannot
/// usefully keep SIGPIPE's default-terminate behaviour anyway.
void ignore_sigpipe_once() {
  static const bool done = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)done;
}

[[noreturn]] void throw_errno(const std::string& op) {
  throw std::runtime_error("transport: " + op + ": " + std::strerror(errno));
}

/// Parent side of one spawned worker process.
class PipeLink final : public WorkerLink {
 public:
  PipeLink(pid_t pid, int send_fd, int recv_fd, std::string describe,
           bool needs_study, std::shared_ptr<detail::FdRegistry> registry)
      : pid_(pid),
        send_fd_(send_fd),
        recv_fd_(recv_fd),
        describe_(std::move(describe)),
        needs_study_(needs_study),
        registry_(std::move(registry)) {
    registry_->add(send_fd_, recv_fd_);
  }

  ~PipeLink() override {
    kill();
    int status = 0;
    while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {}
    registry_->remove(send_fd_, recv_fd_);
    ::close(send_fd_);
    ::close(recv_fd_);
  }

  void send(const std::vector<std::uint8_t>& frame) override {
    util::write_frame(send_fd_, frame);
  }

  RecvOutcome recv(std::chrono::milliseconds timeout) override {
    if (!util::wait_readable(recv_fd_, timeout))
      return {RecvOutcome::Status::Timeout, {}};
    // Deadline inside the frame too: a worker frozen mid-write (partial
    // header/payload) must become a DecodeError — which the runner treats
    // as a lost worker — not an unbounded blocking read.
    std::optional<std::vector<std::uint8_t>> frame =
        util::read_frame_deadline(recv_fd_, timeout);
    if (!frame.has_value()) return {RecvOutcome::Status::Eof, {}};
    return {RecvOutcome::Status::Frame, std::move(*frame)};
  }

  /// SIGKILL only — the fds stay open so a reader blocked in recv() is
  /// woken by the resulting EOF rather than racing a close() from another
  /// thread. The destructor reaps and closes.
  void kill() override { ::kill(pid_, SIGKILL); }

  std::string describe() const override { return describe_; }
  bool needs_study_bytes() const override { return needs_study_; }

 private:
  pid_t pid_;
  int send_fd_;
  int recv_fd_;
  std::string describe_;
  bool needs_study_;
  std::shared_ptr<detail::FdRegistry> registry_;
};

struct Pipes {
  int parent_send{-1}, child_recv{-1};  // parent -> child
  int child_send{-1}, parent_recv{-1};  // child -> parent
};

Pipes make_pipes() {
  int down[2], up[2];
  if (::pipe(down) != 0) throw_errno("pipe");
  if (::pipe(up) != 0) {
    ::close(down[0]);
    ::close(down[1]);
    throw_errno("pipe");
  }
  return {down[1], down[0], up[1], up[0]};
}

void close_parent_side_in_child(const Pipes& p,
                                const std::vector<int>& sibling_fds) {
  ::close(p.parent_send);
  ::close(p.parent_recv);
  for (const int fd : sibling_fds) ::close(fd);
}

/// fork()+exec() a worker command with the frame stream on stdin/stdout.
std::unique_ptr<WorkerLink> spawn_exec(
    const std::vector<std::string>& argv, const std::string& describe,
    const std::shared_ptr<detail::FdRegistry>& registry) {
  if (argv.empty()) throw ConfigError("transport: empty worker argv");
  ignore_sigpipe_once();
  const Pipes p = make_pipes();
  const std::vector<int> siblings = registry->snapshot();
  const pid_t pid = ::fork();
  if (pid < 0) {
    const int err = errno;
    ::close(p.parent_send);
    ::close(p.parent_recv);
    ::close(p.child_send);
    ::close(p.child_recv);
    errno = err;
    throw_errno("fork");
  }
  if (pid == 0) {
    close_parent_side_in_child(p, siblings);
    if (::dup2(p.child_recv, STDIN_FILENO) < 0 ||
        ::dup2(p.child_send, STDOUT_FILENO) < 0)
      ::_exit(127);
    ::close(p.child_recv);
    ::close(p.child_send);
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);
    ::execvp(cargv[0], cargv.data());
    ::_exit(127);  // exec failed; the parent sees EOF at handshake time
  }
  ::close(p.child_recv);
  ::close(p.child_send);
  return std::make_unique<PipeLink>(pid, p.parent_send, p.parent_recv,
                                    describe + " pid " + std::to_string(pid),
                                    /*needs_study=*/true, registry);
}

/// fork() a worker that serves the inherited study in-process — no exec,
/// no wire identity requirement.
std::unique_ptr<WorkerLink> spawn_fork(
    const runtime::StudyParams& study, const std::string& describe,
    const std::shared_ptr<detail::FdRegistry>& registry) {
  ignore_sigpipe_once();
  const Pipes p = make_pipes();
  const std::vector<int> siblings = registry->snapshot();
  const pid_t pid = ::fork();
  if (pid < 0) {
    const int err = errno;
    ::close(p.parent_send);
    ::close(p.parent_recv);
    ::close(p.child_send);
    ::close(p.child_recv);
    errno = err;
    throw_errno("fork");
  }
  if (pid == 0) {
    close_parent_side_in_child(p, siblings);
    int exit_code = 0;
    try {
      FdFrameChannel channel(p.child_recv, p.child_send);
      serve_worker(channel, &study);
    } catch (...) {
      exit_code = 1;  // protocol violation or dead parent pipe
    }
    ::close(p.child_recv);
    ::close(p.child_send);
    // _exit, not exit: the child shares the parent's stdio buffers and must
    // not flush them a second time (nor run atexit handlers).
    ::_exit(exit_code);
  }
  ::close(p.child_recv);
  ::close(p.child_send);
  return std::make_unique<PipeLink>(pid, p.parent_send, p.parent_recv,
                                    describe + " pid " + std::to_string(pid),
                                    /*needs_study=*/false, registry);
}

}  // namespace

// --- SubprocessTransport -----------------------------------------------------

SubprocessTransport::SubprocessTransport(int workers)
    : workers_(workers), registry_(std::make_shared<detail::FdRegistry>()) {
  if (workers < 1)
    throw ConfigError("SubprocessTransport: workers must be >= 1, got " +
                      std::to_string(workers));
}

SubprocessTransport::SubprocessTransport(int workers,
                                         std::vector<std::string> argv)
    : SubprocessTransport(workers) {
  if (argv.empty())
    throw ConfigError("SubprocessTransport: exec mode needs a non-empty argv");
  argv_ = std::move(argv);
}

std::string SubprocessTransport::name() const {
  return (argv_.empty() ? "subprocess:" : "subprocess-exec:") +
         std::to_string(workers_);
}

std::unique_ptr<WorkerLink> SubprocessTransport::connect(
    int index, const runtime::StudyParams& study) {
  const std::string describe = "subprocess worker " + std::to_string(index);
  if (argv_.empty()) return spawn_fork(study, describe, registry_);
  return spawn_exec(argv_, describe, registry_);
}

// --- SshTransport ------------------------------------------------------------

std::vector<std::string> parse_hostfile(const std::string& text,
                                        const std::string& origin) {
  std::vector<std::string> hosts;
  for (const TextLine& line : logical_lines(text)) {
    const std::string& host = line.text;
    if (host.find_first_of(" \t") != std::string::npos)
      throw ConfigError(origin + ":" + std::to_string(line.number) +
                        ": a hostfile line holds exactly one host, got '" +
                        host + "'");
    hosts.push_back(host);
  }
  if (hosts.empty())
    throw ConfigError(origin + ": hostfile lists no hosts");
  return hosts;
}

SshTransport::SshTransport(std::vector<std::string> hosts,
                           std::vector<std::string> remote_command,
                           std::string ssh_binary)
    : hosts_(std::move(hosts)),
      remote_command_(std::move(remote_command)),
      ssh_binary_(std::move(ssh_binary)),
      registry_(std::make_shared<detail::FdRegistry>()) {
  if (hosts_.empty()) throw ConfigError("SshTransport: no hosts");
  if (remote_command_.empty())
    throw ConfigError("SshTransport: empty remote command");
}

std::string SshTransport::name() const {
  return "ssh:" + std::to_string(hosts_.size());
}

std::vector<std::string> SshTransport::worker_argv(int index) const {
  std::vector<std::string> argv;
  argv.reserve(remote_command_.size() + 2);
  argv.push_back(ssh_binary_);
  argv.push_back(hosts_.at(static_cast<std::size_t>(index)));
  for (const std::string& word : remote_command_) argv.push_back(word);
  return argv;
}

std::unique_ptr<WorkerLink> SshTransport::connect(
    int index, const runtime::StudyParams&) {
  return spawn_exec(worker_argv(index),
                    "ssh worker " + hosts_.at(static_cast<std::size_t>(index)),
                    registry_);
}

// --- FakeTransport -----------------------------------------------------------

namespace detail {

namespace {
std::atomic<std::uint64_t> self_detaches{0};
}  // namespace

std::uint64_t fake_worker_self_detaches() { return self_detaches.load(); }

/// Shared state of one in-process fake worker: two frame queues and the
/// scripted fault plan, guarded by one mutex.
struct FakeWorker {
  util::Mutex mu;
  util::CondVar cv;
  std::deque<std::vector<std::uint8_t>> to_worker LOKI_GUARDED_BY(mu);
  std::deque<std::vector<std::uint8_t>> to_parent LOKI_GUARDED_BY(mu);
  bool parent_closed LOKI_GUARDED_BY(mu){false};  // worker reads return EOF
  bool stream_eof LOKI_GUARDED_BY(mu){false};     // parent recv returns Eof
  bool hanging LOKI_GUARDED_BY(mu){false};  // parent recv delivers nothing
  bool worker_done LOKI_GUARDED_BY(mu){false};  // serve_worker returned
  int results_seen LOKI_GUARDED_BY(mu){0};  // result entries delivered so far
  int result_frames_seen LOKI_GUARDED_BY(mu){0};  // result-bearing frames
  int heartbeats_seen LOKI_GUARDED_BY(mu){0};  // heartbeat frames delivered
  FakeFaults faults;  // written before the thread starts, read-only after
  /// Deliberately NOT guarded_by(mu): the thread handle follows a lifecycle
  /// protocol, not a lock — written once at spawn (before any concurrent
  /// access exists) and joined/detached only via stop_and_join.
  std::thread thread;

  /// Close both directions and wait for the worker thread. Safe from any
  /// thread: the serving thread itself detaches instead of self-joining
  /// (it can end up running this when its captured shared_ptr is the last
  /// reference).
  void stop_and_join() LOKI_EXCLUDES(mu) {
    {
      util::MutexLock lock(mu);
      parent_closed = true;
      stream_eof = true;
    }
    cv.notify_all();
    if (!thread.joinable()) return;
    if (thread.get_id() == std::this_thread::get_id()) {
      // Last-resort escape hatch, never the intended path: counted so the
      // join-discipline regression test can assert it stays unused.
      ++self_detaches;
      thread.detach();
    } else {
      thread.join();
    }
  }

  ~FakeWorker() { stop_and_join(); }
};

}  // namespace detail

namespace {

using detail::FakeWorker;

/// Worker-thread side of a FakeWorker's queues — the threaded counterpart
/// of the public single-threaded QueueFrameChannel (transport.hpp).
class WorkerQueueChannel final : public FrameChannel {
 public:
  explicit WorkerQueueChannel(const std::shared_ptr<FakeWorker>& w) : w_(w) {}

  std::optional<std::vector<std::uint8_t>> read() override {
    util::MutexLock lock(w_->mu);
    while (w_->to_worker.empty() && !w_->parent_closed) w_->cv.wait(w_->mu);
    if (w_->to_worker.empty()) return std::nullopt;
    std::vector<std::uint8_t> frame = std::move(w_->to_worker.front());
    w_->to_worker.pop_front();
    return frame;
  }

  void write(const std::vector<std::uint8_t>& frame) override {
    {
      util::MutexLock lock(w_->mu);
      if (w_->parent_closed)
        throw std::runtime_error("fake transport: parent is gone (EPIPE)");
      w_->to_parent.push_back(frame);
    }
    w_->cv.notify_all();
  }

 private:
  std::shared_ptr<FakeWorker> w_;
};

class FakeLink final : public WorkerLink {
 public:
  FakeLink(std::shared_ptr<FakeWorker> w, int index)
      : w_(std::move(w)), index_(index) {}

  ~FakeLink() override {
    // Closing the link closes the worker's stdin: it exits at next read.
    {
      util::MutexLock lock(w_->mu);
      w_->parent_closed = true;
    }
    w_->cv.notify_all();
  }

  void send(const std::vector<std::uint8_t>& frame) override {
    {
      util::MutexLock lock(w_->mu);
      if (w_->stream_eof)
        throw std::runtime_error("fake transport: worker " +
                                 std::to_string(index_) + " is gone (EPIPE)");
      w_->to_worker.push_back(frame);
    }
    w_->cv.notify_all();
  }

  RecvOutcome recv(std::chrono::milliseconds timeout) override {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    util::MutexLock lock(w_->mu);
    for (;;) {
      if (w_->stream_eof) return {RecvOutcome::Status::Eof, {}};
      const detail::FakeFaults& f = w_->faults;
      // Threshold faults fire between deliveries: after `n` results made it
      // to the parent, the stream dies (kill/eof) or goes silent (hang).
      if (!w_->hanging && f.hang_after >= 0 && w_->results_seen >= f.hang_after)
        w_->hanging = true;
      if ((f.kill_after >= 0 && w_->results_seen >= f.kill_after) ||
          (f.eof_after >= 0 && w_->results_seen >= f.eof_after)) {
        w_->stream_eof = true;
        w_->parent_closed = true;  // a dead worker's stdin is gone too
        w_->cv.notify_all();
        return {RecvOutcome::Status::Eof, {}};
      }
      if (!w_->hanging && !w_->to_parent.empty()) {
        std::vector<std::uint8_t> frame = std::move(w_->to_parent.front());
        w_->to_parent.pop_front();
        // Heartbeat scripting: a worker whose heartbeats vanish (or crawl)
        // in transit looks hung to the parent even though it is computing —
        // exactly the liveness-cadence regression the runner tests script.
        const bool is_heartbeat =
            !frame.empty() &&
            frame[0] ==
                static_cast<std::uint8_t>(runtime::WorkerFrame::Heartbeat);
        if (is_heartbeat) {
          const int seen = ++w_->heartbeats_seen;
          if (f.drop_heartbeats_after >= 0 && seen > f.drop_heartbeats_after)
            continue;  // vanished in transit
          if (f.heartbeat_delay.count() > 0) {
            lock.unlock();
            std::this_thread::sleep_for(f.heartbeat_delay);
            lock.lock();
          }
          return {RecvOutcome::Status::Frame, std::move(frame)};
        }
        const bool is_batch =
            !frame.empty() &&
            frame[0] ==
                static_cast<std::uint8_t>(runtime::WorkerFrame::ResultBatch);
        const bool is_result =
            is_batch ||
            (!frame.empty() &&
             frame[0] ==
                 static_cast<std::uint8_t>(runtime::WorkerFrame::Result));
        if (!is_result) return {RecvOutcome::Status::Frame, std::move(frame)};
        // Count entries on the pristine frame (serve_worker produced it) so
        // the *_after_results thresholds keep experiment granularity even
        // when several results share one batch; the Nth-frame faults count
        // result-bearing frames.
        const int entries = is_batch
                                ? static_cast<int>(
                                      runtime::result_batch_entry_count(frame))
                                : 1;
        const int nth = ++w_->result_frames_seen;
        w_->results_seen += entries;
        if (nth == f.drop_nth) continue;  // vanished in transit
        // Both corruption flavours must be rejects the decoder *guarantees*:
        // an out-of-range status byte (corrupt) and a tail cut mid-payload
        // (truncate). A flipped payload byte deeper in could decode as
        // different-but-valid data.
        if (nth == f.corrupt_nth && frame.size() > 1) frame[1] = 0xff;
        if (nth == f.truncate_nth && frame.size() > 3)
          frame.resize(frame.size() - 3);
        if (nth == f.delay_nth && f.delay.count() > 0) {
          lock.unlock();
          std::this_thread::sleep_for(f.delay);
          lock.lock();
        }
        return {RecvOutcome::Status::Frame, std::move(frame)};
      }
      if (w_->worker_done && w_->to_parent.empty() && !w_->hanging)
        return {RecvOutcome::Status::Eof, {}};
      if (w_->cv.wait_until(w_->mu, deadline) == std::cv_status::timeout)
        return {RecvOutcome::Status::Timeout, {}};
    }
  }

  void kill() override {
    {
      util::MutexLock lock(w_->mu);
      w_->stream_eof = true;
      w_->parent_closed = true;
    }
    w_->cv.notify_all();
  }

  std::string describe() const override {
    return "fake worker " + std::to_string(index_);
  }

 private:
  std::shared_ptr<FakeWorker> w_;
  int index_;
};

}  // namespace

FakeTransport::FakeTransport(int workers)
    : workers_(workers),
      faults_(static_cast<std::size_t>(workers)),
      refuse_(static_cast<std::size_t>(workers), 0),
      live_(static_cast<std::size_t>(workers)) {
  if (workers < 1)
    throw ConfigError("FakeTransport: workers must be >= 1, got " +
                      std::to_string(workers));
}

FakeTransport::~FakeTransport() {
  // Join every worker thread from here (the owning thread) so destruction
  // order can never leave a thread to destroy its own FakeWorker.
  for (auto& worker : live_)
    if (worker) worker->stop_and_join();
}

std::string FakeTransport::name() const {
  return "fake:" + std::to_string(workers_);
}

std::unique_ptr<WorkerLink> FakeTransport::connect(
    int index, const runtime::StudyParams&) {
  if (index < 0 || index >= workers_)
    throw ConfigError("FakeTransport: worker index " + std::to_string(index) +
                      " out of range");
  if (auto& old = live_[static_cast<std::size_t>(index)]; old)
    old->stop_and_join();  // a reconnect replaces the previous worker
  auto worker = std::make_shared<FakeWorker>();
  worker->faults = faults_[static_cast<std::size_t>(index)];
  const ServeOptions serve_options{batch_soft_bytes_};
  worker->thread = std::thread([worker, serve_options] {
    WorkerQueueChannel channel(worker);
    try {
      serve_worker(channel, nullptr, serve_options);
    } catch (...) {
      // Killed mid-write or a protocol violation; the parent sees EOF.
    }
    {
      util::MutexLock lock(worker->mu);
      worker->worker_done = true;
    }
    worker->cv.notify_all();
  });
  live_[static_cast<std::size_t>(index)] = worker;
  return std::make_unique<FakeLink>(worker, index);
}

std::unique_ptr<WorkerLink> FakeTransport::reopen(
    int index, const runtime::StudyParams& study) {
  fault_slot(index);  // range check with the standard message
  if (int& left = refuse_[static_cast<std::size_t>(index)]; left > 0) {
    --left;
    throw std::runtime_error("FakeTransport: worker " + std::to_string(index) +
                             " refused reconnect (scripted)");
  }
  // The scripted fault belonged to the process that died; its replacement
  // spawns fault-free, so a flap test converges instead of re-tripping.
  faults_[static_cast<std::size_t>(index)] = detail::FakeFaults{};
  return connect(index, study);
}

void FakeTransport::refuse_reconnects(int worker, int n) {
  fault_slot(worker);  // range check
  refuse_[static_cast<std::size_t>(worker)] = n;
}

detail::FakeFaults& FakeTransport::fault_slot(int worker) {
  if (worker < 0 || worker >= workers_)
    throw ConfigError("FakeTransport: worker index " + std::to_string(worker) +
                      " out of range");
  return faults_[static_cast<std::size_t>(worker)];
}

void FakeTransport::kill_after_results(int worker, int n) {
  fault_slot(worker).kill_after = n;
}
void FakeTransport::eof_after_results(int worker, int n) {
  fault_slot(worker).eof_after = n;
}
void FakeTransport::hang_after_results(int worker, int n) {
  fault_slot(worker).hang_after = n;
}
void FakeTransport::corrupt_batch(int worker, int nth) {
  fault_slot(worker).corrupt_nth = nth;
}
void FakeTransport::truncate_batch(int worker, int nth) {
  fault_slot(worker).truncate_nth = nth;
}
void FakeTransport::drop_batch(int worker, int nth) {
  fault_slot(worker).drop_nth = nth;
}
void FakeTransport::delay_batch(int worker, int nth,
                                std::chrono::milliseconds by) {
  detail::FakeFaults& f = fault_slot(worker);
  f.delay_nth = nth;
  f.delay = by;
}
void FakeTransport::drop_heartbeats_after(int worker, int n) {
  fault_slot(worker).drop_heartbeats_after = n;
}
void FakeTransport::delay_heartbeats(int worker, std::chrono::milliseconds by) {
  fault_slot(worker).heartbeat_delay = by;
}

}  // namespace loki::campaign
