#include "runtime/probe_templates.hpp"

#include "util/error.hpp"

namespace loki::runtime {

void ProbeTemplateRegistry::set(const std::string& fault, ProbeTemplate tmpl) {
  LOKI_REQUIRE(static_cast<bool>(tmpl), "null probe template");
  templates_[fault] = std::move(tmpl);
}

void ProbeTemplateRegistry::set_default(ProbeTemplate tmpl) {
  default_ = std::move(tmpl);
}

void ProbeTemplateRegistry::inject(NodeContext& ctx,
                                   const std::string& fault) const {
  const auto it = templates_.find(fault);
  if (it != templates_.end()) {
    it->second(ctx, fault);
    return;
  }
  if (default_) {
    default_(ctx, fault);
    return;
  }
  ctx.record_message("no probe template for fault " + fault + "; ignored");
}

ProbeTemplate crash_fault(CrashFaultParams params) {
  return [params](NodeContext& ctx, const std::string& fault) {
    ctx.record_message("crash_fault: injected " + fault);
    if (!ctx.rng().bernoulli(params.activation_prob)) {
      ctx.record_message("crash_fault: " + fault + " dormant");
      return;
    }
    const auto dormancy = Duration{static_cast<std::int64_t>(
        ctx.rng().exponential(static_cast<double>(params.dormancy_mean.ns)))};
    const CrashMode mode = params.mode;
    ctx.app_timer(dormancy, [mode](NodeContext& c) { c.crash_app(mode); });
  };
}

ProbeTemplate memory_fault(MemoryFaultParams params) {
  return [params](NodeContext& ctx, const std::string& fault) {
    ctx.record_message("memory_fault: corrupted a word (" + fault + ")");
    if (!ctx.rng().bernoulli(params.manifest_prob)) {
      ctx.record_message("memory_fault: corruption never read");
      return;
    }
    const auto latency = Duration{static_cast<std::int64_t>(ctx.rng().exponential(
        static_cast<double>(params.read_latency_mean.ns)))};
    // Reading the corrupted word faults the process; the default signal
    // handler tears down the shared memory, so the daemon hears via the OS.
    ctx.app_timer(latency, [](NodeContext& c) {
      c.record_message("memory_fault: corrupted word read; SIGSEGV");
      c.crash_app(CrashMode::UnhandledSignal);
    });
  };
}

ProbeTemplate cpu_fault(CpuFaultParams params) {
  return [params](NodeContext& ctx, const std::string& fault) {
    ctx.record_message("cpu_fault: livelock burst (" + fault + ")");
    const double fatal = params.fatal_prob;
    // Wedge the process: one long uninterruptible compute burst.
    ctx.do_work(params.burn, [fatal](NodeContext& c) {
      if (c.rng().bernoulli(fatal)) {
        c.record_message("cpu_fault: did not recover");
        c.crash_app(CrashMode::Silent);
      } else {
        c.record_message("cpu_fault: recovered");
      }
    });
  };
}

CommFaultHandle comm_fault(CommFaultParams params) {
  CommFaultHandle handle;
  handle.sending_enabled = std::make_shared<bool>(true);
  auto gate = handle.sending_enabled;
  handle.tmpl = [params, gate](NodeContext& ctx, const std::string& fault) {
    ctx.record_message("comm_fault: outgoing messages suppressed (" + fault + ")");
    *gate = false;
    ctx.app_timer(params.blackout, [gate](NodeContext& c) {
      *gate = true;
      c.record_message("comm_fault: link restored");
    });
  };
  return handle;
}

}  // namespace loki::runtime
