#include "runtime/dictionary.hpp"

#include <algorithm>

#include "spec/reserved.hpp"
#include "util/error.hpp"

namespace loki::runtime {

StudyDictionary StudyDictionary::build(
    const std::vector<const spec::StateMachineSpec*>& specs,
    const std::vector<const spec::FaultSpec*>& fault_specs) {
  LOKI_REQUIRE(specs.size() == fault_specs.size(),
               "one fault spec per state machine spec");
  StudyDictionary d;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const spec::StateMachineSpec& sm = *specs[i];
    LOKI_REQUIRE(!sm.name().empty(), "spec must have a nickname assigned");
    LOKI_REQUIRE(!d.machine_idx_.contains(sm.name()), "duplicate machine nickname");
    d.machine_idx_.emplace(sm.name(), static_cast<std::uint32_t>(d.machines_.size()));
    d.machines_.push_back(sm.name());

    for (const std::string& s : sm.states()) {
      if (!d.state_idx_.contains(s)) {
        d.state_idx_.emplace(s, static_cast<std::uint32_t>(d.states_.size()));
        d.states_.push_back(s);
      }
    }
    // Reserved states likewise (BEGIN is the implicit start; CRASH/EXIT are
    // written by the runtime and daemon).
    for (const std::string_view reserved :
         {spec::kStateBegin, spec::kStateExit, spec::kStateCrash}) {
      const std::string name(reserved);
      if (!d.state_idx_.contains(name)) {
        d.state_idx_.emplace(name, static_cast<std::uint32_t>(d.states_.size()));
        d.states_.push_back(name);
      }
    }

    auto& events = d.events_[sm.name()];
    auto& event_idx = d.event_idx_[sm.name()];
    for (const std::string& e : sm.events()) {
      event_idx.emplace(e, static_cast<std::uint32_t>(events.size()));
      events.push_back(e);
    }
    // Reserved events must be indexable even if the spec omits them: the
    // local daemon records CRASH on silent crashes, and synthetic records
    // (e.g. state-name initialization) use `default` (§3.5.7).
    for (const std::string_view reserved :
         {spec::kEventCrash, spec::kEventDefault}) {
      const std::string name(reserved);
      if (!event_idx.contains(name)) {
        event_idx.emplace(name, static_cast<std::uint32_t>(events.size()));
        events.push_back(name);
      }
    }

    auto& faults = d.faults_[sm.name()];
    auto& fault_idx = d.fault_idx_[sm.name()];
    for (const spec::FaultSpecEntry& f : fault_specs[i]->entries) {
      fault_idx.emplace(f.name, static_cast<std::uint32_t>(faults.size()));
      faults.push_back(f);
    }
  }
  return d;
}

std::uint32_t StudyDictionary::machine_index(const std::string& name) const {
  const auto it = machine_idx_.find(name);
  LOKI_REQUIRE(it != machine_idx_.end(), "unknown machine: " + name);
  return it->second;
}

std::uint32_t StudyDictionary::state_index(const std::string& name) const {
  const auto it = state_idx_.find(name);
  LOKI_REQUIRE(it != state_idx_.end(), "unknown state: " + name);
  return it->second;
}

MachineId StudyDictionary::try_machine_index(const std::string& name) const {
  const auto it = machine_idx_.find(name);
  return it == machine_idx_.end() ? kInvalidId : it->second;
}

StateId StudyDictionary::try_state_index(const std::string& name) const {
  const auto it = state_idx_.find(name);
  return it == state_idx_.end() ? kInvalidId : it->second;
}

const std::vector<std::string>& StudyDictionary::events_of(
    const std::string& machine) const {
  const auto it = events_.find(machine);
  LOKI_REQUIRE(it != events_.end(), "unknown machine: " + machine);
  return it->second;
}

const std::map<std::string, std::uint32_t>& StudyDictionary::event_indices_of(
    const std::string& machine) const {
  const auto it = event_idx_.find(machine);
  LOKI_REQUIRE(it != event_idx_.end(), "unknown machine: " + machine);
  return it->second;
}

std::uint32_t StudyDictionary::event_index(const std::string& machine,
                                           const std::string& event) const {
  const auto it = event_idx_.find(machine);
  LOKI_REQUIRE(it != event_idx_.end(), "unknown machine: " + machine);
  const auto jt = it->second.find(event);
  LOKI_REQUIRE(jt != it->second.end(),
               "unknown event " + event + " for machine " + machine);
  return jt->second;
}

const std::vector<spec::FaultSpecEntry>& StudyDictionary::faults_of(
    const std::string& machine) const {
  const auto it = faults_.find(machine);
  LOKI_REQUIRE(it != faults_.end(), "unknown machine: " + machine);
  return it->second;
}

std::uint32_t StudyDictionary::fault_index(const std::string& machine,
                                           const std::string& fault) const {
  const auto it = fault_idx_.find(machine);
  LOKI_REQUIRE(it != fault_idx_.end(), "unknown machine: " + machine);
  const auto jt = it->second.find(fault);
  LOKI_REQUIRE(jt != it->second.end(),
               "unknown fault " + fault + " for machine " + machine);
  return jt->second;
}

}  // namespace loki::runtime
