// A Loki node: the application process with the runtime linked in (§2.2.2).
//
// One LokiNode object per incarnation — a restarted node is a new LokiNode
// sharing the previous incarnation's Recorder (the NFS-hosted timeline of
// §3.6.3). All inter-process effects flow through sim::World so they carry
// realistic latencies and die with the process.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "runtime/app.hpp"
#include "runtime/cost_model.hpp"
#include "runtime/deployment.hpp"
#include "runtime/dictionary.hpp"
#include "runtime/recorder.hpp"
#include "runtime/state_machine.hpp"
#include "sim/world.hpp"
#include "spec/fault_spec.hpp"
#include "spec/state_machine_spec.hpp"

namespace loki::runtime {

class LokiNode final : public NodeContext {
 public:
  struct Hooks {
    /// Ground-truth taps (harness): called synchronously at the physical
    /// instant of the state change / injection / lifecycle event.
    std::function<void(const std::string& nick, const std::string& state)>
        truth_state_change;
    std::function<void(const std::string& nick, const std::string& fault)>
        truth_injection;
    std::function<void(const std::string& nick, CrashMode mode)> truth_crash;
    std::function<void(const std::string& nick)> truth_exit;
  };

  /// `tables` is the node's study-compiled machine
  /// (runtime/compiled_study.hpp), borrowed — it must outlive every
  /// incarnation (the experiment context keeps the CompiledStudy alive).
  LokiNode(sim::World& world, sim::HostId host, std::string nickname,
           const CompiledMachine& tables, std::shared_ptr<Recorder> recorder,
           Deployment& deployment, NodeDirectory& directory,
           const CostModel& costs, Rng rng, bool restarted, Hooks hooks);

  /// Spawn the simulated process, run the registration handshake, then
  /// appMain. Restarted nodes first write the RESTART record and request
  /// state updates (§3.6.3).
  void start(std::unique_ptr<Application> app);

  // --- fabric-facing (invoked via work items on this node's process) -------
  void deliver_remote_state(MachineId machine, StateId state);
  void deliver_state_updates(
      const std::vector<std::pair<MachineId, StateId>>& states);

  // --- introspection --------------------------------------------------------
  sim::ProcessId pid() const { return pid_; }
  sim::HostId host() const { return host_; }
  MachineId machine_id() const { return machine_id_; }
  bool process_alive() const { return pid_.valid() && world_.alive(pid_); }
  const StateMachine& state_machine() const { return *sm_; }
  sim::World& world() { return world_; }
  const CostModel& costs() const { return costs_; }

  // --- NodeContext ----------------------------------------------------------
  const std::string& nickname() const override { return nickname_; }
  const std::string& host_name() const override;
  bool restarted() const override { return restarted_; }
  Rng& rng() override { return rng_; }
  LocalTime local_clock() const override { return world_.clock_read(host_); }
  void notify_event(const std::string& event) override;
  void record_message(std::string message) override;
  void app_send(const std::string& peer, std::any payload,
                Duration handler_cost) override;
  void app_timer(Duration delay, std::function<void(NodeContext&)> fn,
                 Duration handler_cost) override;
  void do_work(Duration cpu, std::function<void(NodeContext&)> then) override;
  void exit_app() override;
  void crash_app(CrashMode mode) override;
  std::vector<std::string> peer_nicknames() const override;

 private:
  void inject_fault(const std::string& fault_name);

  sim::World& world_;
  sim::HostId host_;
  std::string nickname_;
  MachineId machine_id_{kInvalidId};
  std::shared_ptr<Recorder> recorder_;
  Deployment& deployment_;
  NodeDirectory& directory_;
  CostModel costs_;
  Rng rng_;
  bool restarted_;
  Hooks hooks_;

  sim::ProcessId pid_{};
  std::unique_ptr<StateMachine> sm_;
  std::unique_ptr<Application> app_;
  bool terminated_{false};
};

}  // namespace loki::runtime
