#include "runtime/state_machine.hpp"

#include "spec/reserved.hpp"
#include "util/error.hpp"

namespace loki::runtime {

StateMachine::StateMachine(const CompiledMachine& tables,
                           std::shared_ptr<Recorder> recorder, Hooks hooks)
    : tables_(&tables),
      recorder_(std::move(recorder)),
      hooks_(std::move(hooks)),
      parser_(tables.fault_spec().entries, tables.fault_programs(),
              tables.fault_stack_depth()) {
  LOKI_REQUIRE(recorder_ != nullptr, "state machine needs a recorder");
  LOKI_REQUIRE(static_cast<bool>(hooks_.clock), "state machine needs a clock hook");
  current_state_ = tables_->begin_state();
  view_.assign(tables_->dict().machine_count(), kNoState);
}

StateMachine::StateMachine(const spec::StateMachineSpec& sm_spec,
                           const spec::FaultSpec& fault_spec,
                           const StudyDictionary& dict,
                           std::shared_ptr<Recorder> recorder, Hooks hooks)
    : owned_tables_(std::make_shared<CompiledMachine>(
          CompiledMachine::compile(sm_spec, fault_spec, dict))),
      tables_(owned_tables_.get()),
      recorder_(std::move(recorder)),
      hooks_(std::move(hooks)),
      parser_(tables_->fault_spec().entries, tables_->fault_programs(),
              tables_->fault_stack_depth()) {
  LOKI_REQUIRE(recorder_ != nullptr, "state machine needs a recorder");
  LOKI_REQUIRE(static_cast<bool>(hooks_.clock), "state machine needs a clock hook");
  current_state_ = tables_->begin_state();
  view_.assign(tables_->dict().machine_count(), kNoState);
}

const std::uint32_t* StateMachine::find_event(const std::string& name) const {
  const auto& ids = tables_->event_ids();
  const auto it = ids.find(name);
  return it == ids.end() ? nullptr : &it->second;
}

const std::string& StateMachine::current_state() const {
  return tables_->dict().state_name(current_state_);
}

std::map<std::string, std::string> StateMachine::view() const {
  const StudyDictionary& dict = tables_->dict();
  std::map<std::string, std::string> out;
  for (MachineId m = 0; m < view_.size(); ++m) {
    if (view_[m] != kNoState)
      out.emplace(dict.machine_name(m), dict.state_name(view_[m]));
  }
  return out;
}

std::uint32_t StateMachine::event_index_or_default(const std::string& event) const {
  const std::uint32_t* ev = find_event(event);
  return ev == nullptr ? tables_->default_event() : *ev;
}

void StateMachine::notify_event(const std::string& name) {
  if (!initialized_) {
    // First notification: resolve the initial state (see header comment).
    // Cold path — string resolution is fine here.
    const spec::StateMachineSpec& spec = tables_->spec();
    std::string initial;
    if (const auto next = spec.transition(std::string(spec::kStateBegin), name);
        next.has_value()) {
      initial = *next;
    } else if (spec.has_state(name)) {
      initial = name;
    } else if (name == spec::kEventRestart && spec.has_state("RESTART_SM")) {
      initial = "RESTART_SM";
    } else {
      throw LogicError("first probe notification '" + name + "' of machine " +
                       spec.name() + " does not resolve to an initial state");
    }
    initialized_ = true;
    enter_state(tables_->dict().state_index(initial),
                event_index_or_default(name));
    return;
  }

  const std::int32_t def = tables_->def_of(current_state_);
  const std::uint32_t* ev = find_event(name);
  StateId next = kNoState;
  if (def >= 0) {
    const auto d = static_cast<std::size_t>(def);
    if (ev != nullptr) next = tables_->next(d, *ev);
    if (next == kNoState) next = tables_->state(d).default_next;
  }
  if (next == kNoState) {
    // Event has no arc in the current state; the abstraction does not model
    // it here. Count and continue (strictness is a harness-level choice).
    ++ignored_events_;
    return;
  }
  // Record with the event's own index; an unknown name means the `default`
  // wildcard arc was taken, which records as the reserved default event.
  enter_state(next, ev != nullptr ? *ev : tables_->default_event());
}

void StateMachine::enter_state(StateId new_state, std::uint32_t event_index) {
  current_state_ = new_state;
  const LocalTime now = hooks_.clock();
  recorder_->record_state_change(event_index, new_state, now);
  if (hooks_.truth_state_change)
    hooks_.truth_state_change(tables_->dict().state_name(new_state));

  // Update own entry in the partial view before notifying others, so local
  // fault expressions see the new state immediately.
  view_[tables_->self()] = new_state;

  const std::int32_t def = tables_->def_of(new_state);
  if (def >= 0) {
    const CompiledMachine::CompiledState& cs =
        tables_->state(static_cast<std::size_t>(def));
    if (!cs.notify.empty() && hooks_.send_notifications)
      hooks_.send_notifications(new_state, cs.notify);
  }

  run_fault_parser();
}

void StateMachine::on_remote_state(MachineId machine, StateId state) {
  view_[machine] = state;
  run_fault_parser();
}

void StateMachine::apply_state_updates(
    const std::vector<std::pair<MachineId, StateId>>& states) {
  for (const auto& [machine, state] : states) {
    if (machine == tables_->self()) continue;  // own state is authoritative
    view_[machine] = state;
  }
  run_fault_parser();
}

void StateMachine::record_crash_detected_by_daemon(LocalTime when) {
  recorder_->record_state_change(
      event_index_or_default(std::string(spec::kEventCrash)),
      tables_->dict().state_index(std::string(spec::kStateCrash)), when);
}

void StateMachine::run_fault_parser() {
  const std::vector<std::uint32_t>& fired_ref = parser_.on_view_change(view_);
  if (fired_ref.empty()) return;  // steady state: no copy, no allocation
  // Copy before invoking hooks: an injection may re-enter notify_event()
  // (probe crashes the app synchronously), which reuses the parser buffer.
  const std::vector<std::uint32_t> fired = fired_ref;
  for (const std::uint32_t idx : fired) {
    const spec::FaultSpecEntry& entry = parser_.entries()[idx];
    if (hooks_.inject_fault) hooks_.inject_fault(entry.name);
    recorder_->record_fault_injection(
        tables_->dict().fault_index(nickname(), entry.name), hooks_.clock());
    if (hooks_.truth_injection) hooks_.truth_injection(entry.name);
  }
}

}  // namespace loki::runtime
