#include "runtime/state_machine.hpp"

#include "spec/reserved.hpp"
#include "util/error.hpp"

namespace loki::runtime {

StateMachine::StateMachine(const spec::StateMachineSpec& sm_spec,
                           const spec::FaultSpec& fault_spec,
                           const StudyDictionary& dict,
                           std::shared_ptr<Recorder> recorder, Hooks hooks)
    : spec_(sm_spec),
      dict_(dict),
      recorder_(std::move(recorder)),
      hooks_(std::move(hooks)),
      parser_(fault_spec.entries),
      current_state_(spec::kStateBegin) {
  LOKI_REQUIRE(recorder_ != nullptr, "state machine needs a recorder");
  LOKI_REQUIRE(static_cast<bool>(hooks_.clock), "state machine needs a clock hook");
}

std::uint32_t StateMachine::event_index_or_default(const std::string& event) const {
  const auto& events = dict_.events_of(spec_.name());
  for (std::uint32_t i = 0; i < events.size(); ++i)
    if (events[i] == event) return i;
  return dict_.event_index(spec_.name(), std::string(spec::kEventDefault));
}

void StateMachine::notify_event(const std::string& name) {
  if (!initialized_) {
    // First notification: resolve the initial state (see header comment).
    std::string initial;
    if (const auto next = spec_.transition(std::string(spec::kStateBegin), name);
        next.has_value()) {
      initial = *next;
    } else if (spec_.has_state(name)) {
      initial = name;
    } else if (name == spec::kEventRestart && spec_.has_state("RESTART_SM")) {
      initial = "RESTART_SM";
    } else {
      throw LogicError("first probe notification '" + name + "' of machine " +
                       spec_.name() + " does not resolve to an initial state");
    }
    initialized_ = true;
    enter_state(initial, event_index_or_default(name));
    return;
  }

  const auto next = spec_.transition(current_state_, name);
  if (!next.has_value()) {
    // Event has no arc in the current state; the abstraction does not model
    // it here. Count and continue (strictness is a harness-level choice).
    ++ignored_events_;
    return;
  }
  enter_state(*next, event_index_or_default(name));
}

void StateMachine::enter_state(const std::string& new_state,
                               std::uint32_t event_index) {
  current_state_ = new_state;
  const LocalTime now = hooks_.clock();
  recorder_->record_state_change(event_index, dict_.state_index(new_state), now);
  if (hooks_.truth_state_change) hooks_.truth_state_change(new_state);

  // Update own entry in the partial view before notifying others, so local
  // fault expressions see the new state immediately.
  view_[spec_.name()] = new_state;

  const auto& recipients = spec_.notify_list(new_state);
  if (!recipients.empty() && hooks_.send_notifications)
    hooks_.send_notifications(new_state, recipients);

  run_fault_parser();
}

void StateMachine::on_remote_state(const std::string& machine,
                                   const std::string& state) {
  view_[machine] = state;
  run_fault_parser();
}

void StateMachine::apply_state_updates(
    const std::map<std::string, std::string>& states) {
  for (const auto& [machine, state] : states) {
    if (machine == spec_.name()) continue;  // own state is authoritative
    view_[machine] = state;
  }
  run_fault_parser();
}

void StateMachine::record_crash_detected_by_daemon(LocalTime when) {
  recorder_->record_state_change(
      event_index_or_default(std::string(spec::kEventCrash)),
      dict_.state_index(std::string(spec::kStateCrash)), when);
}

void StateMachine::run_fault_parser() {
  const spec::StateView view = [this](const std::string& machine) -> const std::string* {
    const auto it = view_.find(machine);
    return it == view_.end() ? nullptr : &it->second;
  };
  for (const std::uint32_t idx : parser_.on_view_change(view)) {
    const spec::FaultSpecEntry& entry = parser_.entries()[idx];
    if (hooks_.inject_fault) hooks_.inject_fault(entry.name);
    recorder_->record_fault_injection(
        dict_.fault_index(spec_.name(), entry.name), hooks_.clock());
    if (hooks_.truth_injection) hooks_.truth_injection(entry.name);
  }
}

}  // namespace loki::runtime
