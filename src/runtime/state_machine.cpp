#include "runtime/state_machine.hpp"

#include "spec/reserved.hpp"
#include "util/error.hpp"

namespace loki::runtime {

StateMachine::StateMachine(const spec::StateMachineSpec& sm_spec,
                           const spec::FaultSpec& fault_spec,
                           const StudyDictionary& dict,
                           std::shared_ptr<Recorder> recorder, Hooks hooks)
    : spec_(sm_spec),
      dict_(dict),
      recorder_(std::move(recorder)),
      hooks_(std::move(hooks)),
      parser_(fault_spec.entries, dict) {
  LOKI_REQUIRE(recorder_ != nullptr, "state machine needs a recorder");
  LOKI_REQUIRE(static_cast<bool>(hooks_.clock), "state machine needs a clock hook");
  compile_tables();
}

const std::uint32_t* StateMachine::find_event(const std::string& name) const {
  const auto it = event_ids_->find(name);
  return it == event_ids_->end() ? nullptr : &it->second;
}

void StateMachine::compile_tables() {
  self_ = dict_.machine_index(spec_.name());
  begin_state_ = dict_.state_index(std::string(spec::kStateBegin));
  current_state_ = begin_state_;
  view_.assign(dict_.machine_count(), kNoState);

  // Event name -> index: borrow the dictionary's own per-machine map (the
  // dictionary outlives every node of the study).
  event_count_ = dict_.events_of(spec_.name()).size();
  event_ids_ = &dict_.event_indices_of(spec_.name());
  const std::uint32_t* default_ev = find_event(std::string(spec::kEventDefault));
  LOKI_REQUIRE(default_ev != nullptr, "dictionary lacks the default event");
  default_event_ = *default_ev;

  def_of_state_.assign(dict_.state_count(), -1);
  const auto& defs = spec_.state_defs();
  compiled_.resize(defs.size());
  next_matrix_.assign(defs.size() * event_count_, kNoState);
  for (std::size_t d = 0; d < defs.size(); ++d) {
    const spec::StateDef& def = defs[d];
    def_of_state_[dict_.state_index(def.name)] = static_cast<std::int32_t>(d);

    CompiledState& cs = compiled_[d];
    for (const auto& [event, next] : def.transitions) {
      const std::uint32_t* ev = find_event(event);
      LOKI_REQUIRE(ev != nullptr, "transition event not in event list: " + event);
      next_matrix_[d * event_count_ + *ev] = dict_.state_index(next);
    }
    if (def.default_next.has_value())
      cs.default_next = dict_.state_index(*def.default_next);
    cs.notify.reserve(def.notify.size());
    for (const std::string& nick : def.notify)
      cs.notify.push_back(dict_.try_machine_index(nick));
  }
}

const std::string& StateMachine::current_state() const {
  return dict_.state_name(current_state_);
}

std::map<std::string, std::string> StateMachine::view() const {
  std::map<std::string, std::string> out;
  for (MachineId m = 0; m < view_.size(); ++m) {
    if (view_[m] != kNoState) out.emplace(dict_.machine_name(m), dict_.state_name(view_[m]));
  }
  return out;
}

std::uint32_t StateMachine::event_index_or_default(const std::string& event) const {
  const std::uint32_t* ev = find_event(event);
  return ev == nullptr ? default_event_ : *ev;
}

void StateMachine::notify_event(const std::string& name) {
  if (!initialized_) {
    // First notification: resolve the initial state (see header comment).
    // Cold path — string resolution is fine here.
    std::string initial;
    if (const auto next = spec_.transition(std::string(spec::kStateBegin), name);
        next.has_value()) {
      initial = *next;
    } else if (spec_.has_state(name)) {
      initial = name;
    } else if (name == spec::kEventRestart && spec_.has_state("RESTART_SM")) {
      initial = "RESTART_SM";
    } else {
      throw LogicError("first probe notification '" + name + "' of machine " +
                       spec_.name() + " does not resolve to an initial state");
    }
    initialized_ = true;
    enter_state(dict_.state_index(initial), event_index_or_default(name));
    return;
  }

  const std::int32_t def = def_of_state_[current_state_];
  const std::uint32_t* ev = find_event(name);
  StateId next = kNoState;
  if (def >= 0) {
    const auto row = static_cast<std::size_t>(def) * event_count_;
    if (ev != nullptr) next = next_matrix_[row + *ev];
    if (next == kNoState) next = compiled_[static_cast<std::size_t>(def)].default_next;
  }
  if (next == kNoState) {
    // Event has no arc in the current state; the abstraction does not model
    // it here. Count and continue (strictness is a harness-level choice).
    ++ignored_events_;
    return;
  }
  // Record with the event's own index; an unknown name means the `default`
  // wildcard arc was taken, which records as the reserved default event.
  enter_state(next, ev != nullptr ? *ev : default_event_);
}

void StateMachine::enter_state(StateId new_state, std::uint32_t event_index) {
  current_state_ = new_state;
  const LocalTime now = hooks_.clock();
  recorder_->record_state_change(event_index, new_state, now);
  if (hooks_.truth_state_change)
    hooks_.truth_state_change(dict_.state_name(new_state));

  // Update own entry in the partial view before notifying others, so local
  // fault expressions see the new state immediately.
  view_[self_] = new_state;

  const std::int32_t def = def_of_state_[new_state];
  if (def >= 0) {
    const CompiledState& cs = compiled_[static_cast<std::size_t>(def)];
    if (!cs.notify.empty() && hooks_.send_notifications)
      hooks_.send_notifications(new_state, cs.notify);
  }

  run_fault_parser();
}

void StateMachine::on_remote_state(MachineId machine, StateId state) {
  view_[machine] = state;
  run_fault_parser();
}

void StateMachine::apply_state_updates(
    const std::vector<std::pair<MachineId, StateId>>& states) {
  for (const auto& [machine, state] : states) {
    if (machine == self_) continue;  // own state is authoritative
    view_[machine] = state;
  }
  run_fault_parser();
}

void StateMachine::record_crash_detected_by_daemon(LocalTime when) {
  recorder_->record_state_change(
      event_index_or_default(std::string(spec::kEventCrash)),
      dict_.state_index(std::string(spec::kStateCrash)), when);
}

void StateMachine::run_fault_parser() {
  const std::vector<std::uint32_t>& fired_ref = parser_.on_view_change(view_);
  if (fired_ref.empty()) return;  // steady state: no copy, no allocation
  // Copy before invoking hooks: an injection may re-enter notify_event()
  // (probe crashes the app synchronously), which reuses the parser buffer.
  const std::vector<std::uint32_t> fired = fired_ref;
  for (const std::uint32_t idx : fired) {
    const spec::FaultSpecEntry& entry = parser_.entries()[idx];
    if (hooks_.inject_fault) hooks_.inject_fault(entry.name);
    recorder_->record_fault_injection(
        dict_.fault_index(spec_.name(), entry.name), hooks_.clock());
    if (hooks_.truth_injection) hooks_.truth_injection(entry.name);
  }
}

}  // namespace loki::runtime
