#include "runtime/timeline.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/text_file.hpp"

namespace loki::runtime {

const std::string& LocalTimeline::machine_name(std::uint32_t idx) const {
  LOKI_REQUIRE(idx < machines.size(), "machine index out of range");
  return machines[idx];
}
const std::string& LocalTimeline::state_name(std::uint32_t idx) const {
  LOKI_REQUIRE(idx < states.size(), "state index out of range");
  return states[idx];
}
const std::string& LocalTimeline::event_name(std::uint32_t idx) const {
  LOKI_REQUIRE(idx < events.size(), "event index out of range");
  return events[idx];
}
const std::string& LocalTimeline::fault_name(std::uint32_t idx) const {
  LOKI_REQUIRE(idx < faults.size(), "fault index out of range");
  return faults[idx].name;
}

std::string LocalTimeline::host_at(std::size_t record_index) const {
  LOKI_REQUIRE(record_index < records.size(), "record index out of range");
  std::string host = initial_host;
  for (std::size_t i = 0; i <= record_index; ++i) {
    if (records[i].type == RecordType::Restart) host = records[i].host;
  }
  return host;
}

std::string serialize_local_timeline(const LocalTimeline& t) {
  std::string out;
  out += t.nickname + "\n";
  out += "host " + t.initial_host + "\n";
  out += "state_machine_list\n";
  for (std::size_t i = 0; i < t.machines.size(); ++i)
    out += "  " + std::to_string(i) + " " + t.machines[i] + "\n";
  out += "end_state_machine_list\n";
  out += "global_state_list\n";
  for (std::size_t i = 0; i < t.states.size(); ++i)
    out += "  " + std::to_string(i) + " " + t.states[i] + "\n";
  out += "end_global_state_list\n";
  out += "event_list\n";
  for (std::size_t i = 0; i < t.events.size(); ++i)
    out += "  " + std::to_string(i) + " " + t.events[i] + "\n";
  out += "end_event_list\n";
  out += "fault_list\n";
  for (std::size_t i = 0; i < t.faults.size(); ++i)
    out += "  " + std::to_string(i) + " " + t.faults[i].name + " " +
           t.faults[i].expr_text + " " + spec::trigger_name(t.faults[i].trigger) +
           "\n";
  out += "end_fault_list\n";
  out += "local_timeline\n";
  for (const TimelineRecord& r : t.records) {
    const SplitTime st = split_time(r.time.ns);
    switch (r.type) {
      case RecordType::StateChange:
        out += "  0 " + std::to_string(r.event_index) + " " +
               std::to_string(r.state_index) + " " + std::to_string(st.hi) +
               " " + std::to_string(st.lo) + "\n";
        break;
      case RecordType::FaultInjection:
        out += "  1 " + std::to_string(r.fault_index) + " " +
               std::to_string(st.hi) + " " + std::to_string(st.lo) + "\n";
        break;
      case RecordType::Restart:
        out += "  2 " + r.host + " " + std::to_string(st.hi) + " " +
               std::to_string(st.lo) + "\n";
        break;
    }
  }
  out += "end_local_timeline\n";
  return out;
}

namespace {

std::uint32_t require_u32(const std::string& tok, const std::string& src, int line) {
  const auto v = parse_u32(tok);
  if (!v.has_value()) throw ParseError(src, line, "expected integer, got: " + tok);
  return *v;
}

LocalTime parse_split(const std::string& hi, const std::string& lo,
                      const std::string& src, int line) {
  return LocalTime{join_time({require_u32(hi, src, line), require_u32(lo, src, line)})};
}

}  // namespace

LocalTimeline parse_local_timeline(const std::string& content,
                                   const std::string& source) {
  LocalTimeline t;
  enum class Section { Header, Machines, States, Events, Faults, Records, Done };
  Section section = Section::Header;

  auto expect_index = [&](std::uint32_t idx, std::size_t have, int line) {
    if (idx != have)
      throw ParseError(source, line,
                       "non-contiguous index " + std::to_string(idx) +
                           ", expected " + std::to_string(have));
  };

  for (const TextLine& line : logical_lines(content)) {
    const auto tokens = split_ws(line.text);
    const std::string& head = tokens.front();

    if (head == "state_machine_list") { section = Section::Machines; continue; }
    if (head == "end_state_machine_list" || head == "end_global_state_list" ||
        head == "end_event_list" || head == "end_fault_list") {
      section = Section::Header;
      continue;
    }
    if (head == "global_state_list") { section = Section::States; continue; }
    if (head == "event_list") { section = Section::Events; continue; }
    if (head == "fault_list") { section = Section::Faults; continue; }
    if (head == "local_timeline") { section = Section::Records; continue; }
    if (head == "end_local_timeline") { section = Section::Done; continue; }

    switch (section) {
      case Section::Header: {
        if (head == "host" && tokens.size() == 2) {
          t.initial_host = tokens[1];
        } else if (t.nickname.empty() && tokens.size() == 1) {
          t.nickname = head;
        } else {
          throw ParseError(source, line.number, "unexpected header line: " + line.text);
        }
        break;
      }
      case Section::Machines: {
        if (tokens.size() != 2)
          throw ParseError(source, line.number, "expected '<index> <nickname>'");
        expect_index(require_u32(tokens[0], source, line.number),
                     t.machines.size(), line.number);
        t.machines.push_back(tokens[1]);
        break;
      }
      case Section::States: {
        if (tokens.size() != 2)
          throw ParseError(source, line.number, "expected '<index> <state>'");
        expect_index(require_u32(tokens[0], source, line.number), t.states.size(),
                     line.number);
        t.states.push_back(tokens[1]);
        break;
      }
      case Section::Events: {
        if (tokens.size() != 2)
          throw ParseError(source, line.number, "expected '<index> <event>'");
        expect_index(require_u32(tokens[0], source, line.number), t.events.size(),
                     line.number);
        t.events.push_back(tokens[1]);
        break;
      }
      case Section::Faults: {
        if (tokens.size() < 4)
          throw ParseError(source, line.number,
                           "expected '<index> <name> <expr> <once|always>'");
        expect_index(require_u32(tokens[0], source, line.number), t.faults.size(),
                     line.number);
        TimelineFaultEntry fe;
        fe.name = tokens[1];
        const std::string trig = to_upper(tokens.back());
        if (trig == "ONCE")
          fe.trigger = spec::Trigger::Once;
        else if (trig == "ALWAYS")
          fe.trigger = spec::Trigger::Always;
        else
          throw ParseError(source, line.number, "bad trigger: " + tokens.back());
        // Expression is everything between name and trigger.
        std::vector<std::string> mid(tokens.begin() + 2, tokens.end() - 1);
        fe.expr_text = join(mid, " ");
        t.faults.push_back(std::move(fe));
        break;
      }
      case Section::Records: {
        TimelineRecord r;
        if (head == "0" || head == "STATE_CHANGE") {
          if (tokens.size() != 5)
            throw ParseError(source, line.number,
                             "STATE_CHANGE needs 4 fields: " + line.text);
          r.type = RecordType::StateChange;
          r.event_index = require_u32(tokens[1], source, line.number);
          r.state_index = require_u32(tokens[2], source, line.number);
          r.time = parse_split(tokens[3], tokens[4], source, line.number);
        } else if (head == "1" || head == "FAULT_INJECTION") {
          if (tokens.size() != 4)
            throw ParseError(source, line.number,
                             "FAULT_INJECTION needs 3 fields: " + line.text);
          r.type = RecordType::FaultInjection;
          r.fault_index = require_u32(tokens[1], source, line.number);
          r.time = parse_split(tokens[2], tokens[3], source, line.number);
        } else if (head == "2" || head == "RESTART") {
          if (tokens.size() != 4)
            throw ParseError(source, line.number, "RESTART needs 3 fields: " + line.text);
          r.type = RecordType::Restart;
          r.host = tokens[1];
          r.time = parse_split(tokens[2], tokens[3], source, line.number);
        } else {
          throw ParseError(source, line.number, "unknown record type: " + head);
        }
        t.records.push_back(std::move(r));
        break;
      }
      case Section::Done:
        throw ParseError(source, line.number, "content after end_local_timeline");
    }
  }

  if (t.nickname.empty())
    throw ParseError(source, 1, "missing nickname header");
  return t;
}

}  // namespace loki::runtime
