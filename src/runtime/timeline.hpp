// Local timelines (§3.5.6).
//
// Each node's recorder produces one local timeline per experiment. The file
// layout follows the thesis exactly:
//
//   <mySMNickName>
//   host <InitialHostName>                  (extension, see below)
//   state_machine_list
//     <index> <SMNickName>
//   end_state_machine_list
//   global_state_list
//     <index> <stateName>
//   end_global_state_list
//   event_list
//     <index> <eventName>
//   end_event_list
//   fault_list
//     <index> <faultName> <faultExpr> <once|always>
//   end_fault_list
//   local_timeline
//     0 <EventIndex> <NewStateIndex> <Time.Hi> <Time.Lo>     (STATE_CHANGE)
//     1 <FaultIndex> <Time.Hi> <Time.Lo>                     (FAULT_INJECTION)
//     2 <NewHostName> <Time.Hi> <Time.Lo>                    (RESTART)
//   end_local_timeline
//
// STATE_CHANGE and FAULT_INJECTION are the numerical constants 0 and 1 of
// the thesis. Two additions the thesis describes but does not give a layout
// for: the `host` header line (the machine whose clock stamps the records —
// required by the offline synchronization), and record type 2 carrying the
// restart host name (§3.6.3: "this information contains the name of the
// host on which the state machine was restarted, which is used during
// off-line clock synchronization"). Records after a RESTART are stamped by
// the new host's clock.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "spec/fault_spec.hpp"
#include "util/time.hpp"

namespace loki::runtime {

enum class RecordType : std::uint8_t {
  StateChange = 0,
  FaultInjection = 1,
  Restart = 2,
};

struct TimelineRecord {
  RecordType type{RecordType::StateChange};
  std::uint32_t event_index{0};  // StateChange
  std::uint32_t state_index{0};  // StateChange
  std::uint32_t fault_index{0};  // FaultInjection
  std::string host;              // Restart: new host name
  LocalTime time{};              // local clock of the then-current host
};

struct TimelineFaultEntry {
  std::string name;
  std::string expr_text;
  spec::Trigger trigger{spec::Trigger::Once};
};

struct LocalTimeline {
  std::string nickname;
  std::string initial_host;
  std::vector<std::string> machines;  // index -> nickname (all machines)
  std::vector<std::string> states;    // index -> name (global state list)
  std::vector<std::string> events;    // index -> name (this machine's events)
  std::vector<TimelineFaultEntry> faults;
  std::vector<TimelineRecord> records;

  const std::string& machine_name(std::uint32_t idx) const;
  const std::string& state_name(std::uint32_t idx) const;
  const std::string& event_name(std::uint32_t idx) const;
  const std::string& fault_name(std::uint32_t idx) const;

  /// Host whose clock stamped records[i] (tracks RESTART records).
  std::string host_at(std::size_t record_index) const;
};

std::string serialize_local_timeline(const LocalTimeline& t);
LocalTimeline parse_local_timeline(const std::string& content,
                                   const std::string& source);

}  // namespace loki::runtime
