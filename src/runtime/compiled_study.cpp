#include "runtime/compiled_study.hpp"

#include <algorithm>

#include "runtime/experiment.hpp"
#include "spec/reserved.hpp"
#include "util/error.hpp"

namespace loki::runtime {

ReservedStudyIds ReservedStudyIds::build(const StudyDictionary& dict) {
  ReservedStudyIds ids;
  ids.crash_state = dict.state_index(std::string(spec::kStateCrash));
  ids.exit_state = dict.state_index(std::string(spec::kStateExit));
  ids.crash_event_idx.reserve(dict.machine_count());
  for (const std::string& machine : dict.machines())
    ids.crash_event_idx.push_back(
        dict.event_index(machine, std::string(spec::kEventCrash)));
  return ids;
}

CompiledMachine CompiledMachine::compile(const spec::StateMachineSpec& sm_spec,
                                         const spec::FaultSpec& fault_spec,
                                         const StudyDictionary& dict) {
  CompiledMachine m;
  m.spec_ = &sm_spec;
  m.fault_spec_ = &fault_spec;
  m.dict_ = &dict;
  m.self_ = dict.machine_index(sm_spec.name());
  m.begin_state_ = dict.state_index(std::string(spec::kStateBegin));

  m.event_count_ = dict.events_of(sm_spec.name()).size();
  m.event_ids_ = &dict.event_indices_of(sm_spec.name());
  const auto default_it = m.event_ids_->find(std::string(spec::kEventDefault));
  LOKI_REQUIRE(default_it != m.event_ids_->end(),
               "dictionary lacks the default event");
  m.default_event_ = default_it->second;

  m.def_of_state_.assign(dict.state_count(), -1);
  const auto& defs = sm_spec.state_defs();
  m.compiled_.resize(defs.size());
  m.next_matrix_.assign(defs.size() * m.event_count_, kNoState);
  for (std::size_t d = 0; d < defs.size(); ++d) {
    const spec::StateDef& def = defs[d];
    m.def_of_state_[dict.state_index(def.name)] = static_cast<std::int32_t>(d);

    CompiledState& cs = m.compiled_[d];
    for (const auto& [event, next] : def.transitions) {
      const auto ev = m.event_ids_->find(event);
      LOKI_REQUIRE(ev != m.event_ids_->end(),
                   "transition event not in event list: " + event);
      m.next_matrix_[d * m.event_count_ + ev->second] = dict.state_index(next);
    }
    if (def.default_next.has_value())
      cs.default_next = dict.state_index(*def.default_next);
    cs.notify.reserve(def.notify.size());
    for (const std::string& nick : def.notify)
      cs.notify.push_back(dict.try_machine_index(nick));
  }

  m.fault_programs_.reserve(fault_spec.entries.size());
  for (const spec::FaultSpecEntry& e : fault_spec.entries) {
    m.fault_programs_.push_back(CompiledFaultProgram::compile(*e.expr, dict));
    m.fault_stack_depth_ =
        std::max(m.fault_stack_depth_, m.fault_programs_.back().stack_depth());
  }
  return m;
}

namespace {

bool same_state_machine_spec(const spec::StateMachineSpec& a,
                             const spec::StateMachineSpec& b) {
  // Specs are copy-on-write: a generator that copies a base spec (or the
  // CompiledStudy's own copy of a previous experiment's spec) shares its
  // storage, so the common case is one pointer compare.
  if (a.identity() == b.identity()) return true;
  if (a.name() != b.name() || a.states() != b.states() ||
      a.events() != b.events())
    return false;
  const auto& da = a.state_defs();
  const auto& db = b.state_defs();
  if (da.size() != db.size()) return false;
  for (std::size_t i = 0; i < da.size(); ++i) {
    if (da[i].name != db[i].name || da[i].notify != db[i].notify ||
        da[i].transitions != db[i].transitions ||
        da[i].default_next != db[i].default_next)
      return false;
  }
  return true;
}

bool same_fault_expr(const spec::FaultExprPtr& a, const spec::FaultExprPtr& b) {
  if (a == b) return true;  // shared — the StudyBuilder::base() fast path
  if (a == nullptr || b == nullptr) return false;
  // Reparsed-per-experiment specs land here: the printed form is canonical
  // (deterministic parenthesization), so textual equality is tree equality.
  return a->to_string() == b->to_string();
}

bool same_fault_spec(const spec::FaultSpec& a, const spec::FaultSpec& b) {
  if (&a == &b) return true;
  if (a.entries.size() != b.entries.size()) return false;
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    if (a.entries[i].name != b.entries[i].name ||
        a.entries[i].trigger != b.entries[i].trigger ||
        !same_fault_expr(a.entries[i].expr, b.entries[i].expr))
      return false;
  }
  return true;
}

}  // namespace

std::shared_ptr<const CompiledStudy> CompiledStudy::compile(
    const ExperimentParams& params) {
  auto study = std::shared_ptr<CompiledStudy>(new CompiledStudy());
  for (const NodeConfig& nc : params.nodes) {
    LOKI_REQUIRE(nc.sm_spec.name() == nc.nickname,
                 "state machine spec name must equal the node nickname");
    study->nodes_.push_back(
        NodeEntry{nc.nickname, nc.sm_spec, nc.fault_spec, CompiledMachine{}});
  }
  std::vector<const spec::StateMachineSpec*> specs;
  std::vector<const spec::FaultSpec*> faults;
  specs.reserve(study->nodes_.size());
  faults.reserve(study->nodes_.size());
  for (const NodeEntry& entry : study->nodes_) {
    specs.push_back(&entry.sm_spec);
    faults.push_back(&entry.fault_spec);
  }
  study->dict_ = StudyDictionary::build(specs, faults);
  study->reserved_ = ReservedStudyIds::build(study->dict_);
  for (NodeEntry& entry : study->nodes_) {
    entry.machine =
        CompiledMachine::compile(entry.sm_spec, entry.fault_spec, study->dict_);
  }
  return study;
}

bool CompiledStudy::compatible_with(const ExperimentParams& params) const {
  if (params.nodes.size() != nodes_.size()) return false;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const NodeConfig& nc = params.nodes[i];
    const NodeEntry& entry = nodes_[i];
    if (nc.nickname != entry.nickname) return false;
    if (!same_state_machine_spec(nc.sm_spec, entry.sm_spec)) return false;
    if (!same_fault_spec(nc.fault_spec, entry.fault_spec)) return false;
  }
  return true;
}

}  // namespace loki::runtime
