#include "runtime/fault_parser.hpp"

namespace loki::runtime {
namespace {

const std::string* empty_view(const std::string&) { return nullptr; }

}  // namespace

FaultParser::FaultParser(std::vector<spec::FaultSpecEntry> entries)
    : entries_(std::move(entries)) {
  edges_.resize(entries_.size());
  reset();
}

void FaultParser::reset() {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    edges_[i].prev = entries_[i].expr->eval(empty_view);
    edges_[i].fired_once = false;
  }
}

std::vector<std::uint32_t> FaultParser::on_view_change(
    const spec::StateView& view) {
  std::vector<std::uint32_t> fired;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const bool value = entries_[i].expr->eval(view);
    ++evaluations_;
    EdgeState& edge = edges_[i];
    const bool rising = value && !edge.prev;
    edge.prev = value;
    if (!rising) continue;
    if (entries_[i].trigger == spec::Trigger::Once && edge.fired_once) continue;
    edge.fired_once = true;
    fired.push_back(static_cast<std::uint32_t>(i));
  }
  return fired;
}

}  // namespace loki::runtime
