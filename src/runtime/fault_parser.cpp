#include "runtime/fault_parser.hpp"

namespace loki::runtime {

FaultParser::FaultParser(const std::vector<spec::FaultSpecEntry>& entries,
                         const StudyDictionary& dict)
    : entries_(&entries) {
  programs_.reserve(entries.size());
  for (const spec::FaultSpecEntry& e : entries)
    programs_.push_back(CompiledFaultProgram::compile(*e.expr, dict));
  edges_.resize(entries.size());
  reset();
}

void FaultParser::reset() {
  for (std::size_t i = 0; i < programs_.size(); ++i) {
    edges_[i].prev = programs_[i].eval_empty();
    edges_[i].fired_once = false;
  }
}

const std::vector<std::uint32_t>& FaultParser::on_view_change(
    const std::vector<StateId>& view) {
  fired_.clear();
  const std::vector<spec::FaultSpecEntry>& entries = *entries_;
  for (std::size_t i = 0; i < programs_.size(); ++i) {
    const bool value = programs_[i].eval(view);
    ++evaluations_;
    EdgeState& edge = edges_[i];
    const bool rising = value && !edge.prev;
    edge.prev = value;
    if (!rising) continue;
    if (entries[i].trigger == spec::Trigger::Once && edge.fired_once) continue;
    edge.fired_once = true;
    fired_.push_back(static_cast<std::uint32_t>(i));
  }
  return fired_;
}

}  // namespace loki::runtime
