#include "runtime/fault_parser.hpp"

#include <algorithm>

namespace loki::runtime {

FaultParser::FaultParser(const std::vector<spec::FaultSpecEntry>& entries,
                         const StudyDictionary& dict)
    : entries_(&entries) {
  owned_programs_.reserve(entries.size());
  std::size_t depth = 0;
  for (const spec::FaultSpecEntry& e : entries) {
    owned_programs_.push_back(CompiledFaultProgram::compile(*e.expr, dict));
    depth = std::max(depth, owned_programs_.back().stack_depth());
  }
  programs_ = &owned_programs_;
  scratch_.resize(depth);
  edges_.resize(entries.size());
  reset();
}

FaultParser::FaultParser(const std::vector<spec::FaultSpecEntry>& entries,
                         const std::vector<CompiledFaultProgram>& programs,
                         std::size_t stack_depth)
    : entries_(&entries), programs_(&programs) {
  scratch_.resize(stack_depth);
  edges_.resize(entries.size());
  reset();
}

void FaultParser::reset() {
  const std::vector<CompiledFaultProgram>& programs = *programs_;
  for (std::size_t i = 0; i < programs.size(); ++i) {
    edges_[i].prev = programs[i].eval_empty(scratch_.data());
    edges_[i].fired_once = false;
  }
}

const std::vector<std::uint32_t>& FaultParser::on_view_change(
    const std::vector<StateId>& view) {
  fired_.clear();
  const std::vector<spec::FaultSpecEntry>& entries = *entries_;
  const std::vector<CompiledFaultProgram>& programs = *programs_;
  for (std::size_t i = 0; i < programs.size(); ++i) {
    const bool value = programs[i].eval(view, scratch_.data());
    ++evaluations_;
    EdgeState& edge = edges_[i];
    const bool rising = value && !edge.prev;
    edge.prev = value;
    if (!rising) continue;
    if (entries[i].trigger == spec::Trigger::Once && edge.fired_once) continue;
    edge.fired_once = true;
    fired_.push_back(static_cast<std::uint32_t>(i));
  }
  return fired_;
}

}  // namespace loki::runtime
