#include "runtime/daemons.hpp"

#include <algorithm>

#include "spec/reserved.hpp"
#include "util/error.hpp"

namespace loki::runtime {

// ---------------------------------------------------------------------------
// LocalDaemon
// ---------------------------------------------------------------------------

LocalDaemon::LocalDaemon(sim::World& world, sim::HostId host,
                         PartiallyDistributedDeployment& fabric)
    : world_(world), host_(host), fabric_(fabric) {
  const std::size_t machines = fabric_.dict().machine_count();
  local_nodes_.assign(machines, nullptr);
  locations_.assign(machines, sim::HostId{});
  last_reply_.assign(machines, SimTime::zero());
}

void LocalDaemon::reset(sim::HostId host) {
  host_ = host;
  pid_ = sim::ProcessId{};
  std::fill(local_nodes_.begin(), local_nodes_.end(), nullptr);
  std::fill(locations_.begin(), locations_.end(), sim::HostId{});
  std::fill(last_reply_.begin(), last_reply_.end(), SimTime::zero());
  local_count_ = 0;
  // Keep the outer scratch vector: clearing each bucket preserves the
  // inner capacity the route fast path worked for.
  for (std::vector<MachineId>& bucket : route_scratch_) bucket.clear();
  reported_empty_ = true;
  routed_ = 0;
}

void LocalDaemon::start() {
  pid_ = world_.spawn(host_, "lokid@" + world_.host_name(host_));
  // Arm the watchdog loop.
  world_.timer(pid_, fabric_.params().watchdog_interval,
               fabric_.costs().watchdog_handler, [this] { watchdog_tick(); });
}

void LocalDaemon::restart_after_reboot() {
  std::fill(local_nodes_.begin(), local_nodes_.end(), nullptr);
  local_count_ = 0;
  // Machines located on this host died with it.
  handle_host_purge(host_);
  reported_empty_ = true;
  start();
  // Reconnect: tell the other daemons to forget machines they still map to
  // this host, and report the (empty) host state upward.
  for (const auto& d : fabric_.daemons()) {
    if (d.get() == this) continue;
    LocalDaemon* peer = d.get();
    const sim::HostId host = host_;
    world_.send(pid_, peer->pid(), sim::Lan::Control, sim::ChannelClass::Tcp,
                fabric_.costs().daemon_route,
                [peer, host] { peer->handle_host_purge(host); });
  }
  if (fabric_.on_host_empty_change) fabric_.on_host_empty_change(host_, true);
}

void LocalDaemon::handle_host_purge(sim::HostId host) {
  for (sim::HostId& loc : locations_) {
    if (loc == host) loc = sim::HostId{};
  }
}

void LocalDaemon::watchdog_tick() {
  const SimTime now = world_.now();
  const Duration timeout = fabric_.params().watchdog_timeout;
  const auto machines = static_cast<MachineId>(local_nodes_.size());

  // Pass 1: nodes that have not answered within the timeout are presumed
  // crashed; the daemon writes the CRASH record on their behalf (§3.5.2).
  for (MachineId m = 0; m < machines; ++m) {
    if (local_nodes_[m] != nullptr && now - last_reply_[m] > timeout)
      handle_crash_notice(m, /*node_recorded=*/false);
  }

  // Pass 2: ping the survivors (IPC out, IPC back).
  for (MachineId m = 0; m < machines; ++m) {
    LokiNode* target = local_nodes_[m];
    if (target == nullptr) continue;
    world_.send(pid_, target->pid(), sim::Lan::Control, sim::ChannelClass::Ipc,
                fabric_.costs().watchdog_handler,
                [this, m, target] {
                  // Node side: reply.
                  world_.send(target->pid(), pid_, sim::Lan::Control,
                              sim::ChannelClass::Ipc,
                              fabric_.costs().watchdog_handler,
                              [this, m] { last_reply_[m] = world_.now(); });
                });
  }

  world_.timer(pid_, fabric_.params().watchdog_interval,
               fabric_.costs().watchdog_handler, [this] { watchdog_tick(); });
}

void LocalDaemon::handle_register(LokiNode* node, bool restarted,
                                  std::function<void()> ack) {
  (void)restarted;
  const MachineId machine = node->machine_id();
  if (local_nodes_[machine] == nullptr) ++local_count_;
  local_nodes_[machine] = node;
  locations_[machine] = host_;
  last_reply_[machine] = world_.now();
  broadcast_locations_on_register(machine);
  if (reported_empty_) {
    reported_empty_ = false;
    if (fabric_.on_host_empty_change) fabric_.on_host_empty_change(host_, false);
  }
  // Ack back to the node (IPC): registration complete, appMain may start.
  world_.send(pid_, node->pid(), sim::Lan::Control, sim::ChannelClass::Ipc,
              fabric_.costs().register_handshake, std::move(ack));
}

void LocalDaemon::broadcast_locations_on_register(MachineId machine) {
  for (const auto& d : fabric_.daemons()) {
    if (d.get() == this) continue;
    LocalDaemon* peer = d.get();
    const sim::HostId host = host_;
    world_.send(pid_, peer->pid(), sim::Lan::Control, sim::ChannelClass::Tcp,
                fabric_.costs().daemon_route,
                [peer, machine, host] { peer->handle_location_update(machine, host); });
  }
}

void LocalDaemon::handle_location_update(MachineId machine, sim::HostId host) {
  locations_[machine] = host;
}

void LocalDaemon::handle_location_remove(MachineId machine) {
  locations_[machine] = sim::HostId{};
}

void LocalDaemon::handle_exit_notice(MachineId machine, const LokiNode* node) {
  if (local_nodes_[machine] != node) return;  // stale
  local_nodes_[machine] = nullptr;
  --local_count_;
  locations_[machine] = sim::HostId{};
  for (const auto& d : fabric_.daemons()) {
    if (d.get() == this) continue;
    LocalDaemon* peer = d.get();
    world_.send(pid_, peer->pid(), sim::Lan::Control, sim::ChannelClass::Tcp,
                fabric_.costs().daemon_route,
                [peer, machine] { peer->handle_location_remove(machine); });
  }
  check_experiment_end();
}

void LocalDaemon::handle_crash_notice(MachineId machine, bool node_recorded) {
  if (local_nodes_[machine] == nullptr) return;  // watchdog beat the notice
  if (!node_recorded) {
    // Write the crash event + state on the node's behalf (§3.5.2), stamped
    // with this host's clock (the node lived here).
    Recorder* rec = fabric_.recorder_for(machine);
    if (rec != nullptr) {
      rec->record_state_change(fabric_.crash_event_index(machine),
                               fabric_.crash_state_id(),
                               world_.clock_read(host_));
    }
  }
  declare_crashed(machine);
}

void LocalDaemon::declare_crashed(MachineId machine) {
  if (local_nodes_[machine] == nullptr) return;
  local_nodes_[machine] = nullptr;
  --local_count_;
  locations_[machine] = sim::HostId{};

  // Tell the other daemons; they drop the location and synthesize CRASH
  // view updates for their local machines.
  for (const auto& d : fabric_.daemons()) {
    if (d.get() == this) continue;
    LocalDaemon* peer = d.get();
    world_.send(pid_, peer->pid(), sim::Lan::Control, sim::ChannelClass::Tcp,
                fabric_.costs().daemon_route,
                [peer, machine] { peer->handle_crash_broadcast(machine); });
  }
  // And our own local machines.
  handle_crash_broadcast(machine);

  if (fabric_.on_node_crash)
    fabric_.on_node_crash(fabric_.dict().machine_name(machine), host_);
  check_experiment_end();
}

void LocalDaemon::handle_crash_broadcast(MachineId machine) {
  locations_[machine] = sim::HostId{};
  const StateId crash_state = fabric_.crash_state_id();
  for (LokiNode* target : local_nodes_) {
    if (target == nullptr) continue;
    world_.send(pid_, target->pid(), sim::Lan::Control, sim::ChannelClass::Ipc,
                fabric_.costs().node_notification_handler,
                [target, machine, crash_state] {
                  target->deliver_remote_state(machine, crash_state);
                });
  }
}

void LocalDaemon::handle_route(MachineId from, StateId state,
                               const std::vector<MachineId>& recipients) {
  ++routed_;
  // Group recipients by host so each remote host gets ONE message (§3.6.1).
  for (const MachineId r : recipients) {
    const sim::HostId loc = r == kInvalidId ? sim::HostId{} : locations_[r];
    if (!loc.valid()) {
      fabric_.count_drop();  // "discarded with a warning message"
      continue;
    }
    const auto hv = static_cast<std::size_t>(loc.value);
    if (route_scratch_.size() <= hv) route_scratch_.resize(hv + 1);
    route_scratch_[hv].push_back(r);
  }
  for (std::size_t hv = 0; hv < route_scratch_.size(); ++hv) {
    std::vector<MachineId>& targets = route_scratch_[hv];
    if (targets.empty()) continue;
    const sim::HostId host{static_cast<std::int32_t>(hv)};
    if (host == host_) {
      handle_fanout(from, state, targets);
      targets.clear();  // keep the capacity for the next route
      continue;
    }
    LocalDaemon* peer = &fabric_.daemon_on(host);
    world_.send(pid_, peer->pid(), sim::Lan::Control, sim::ChannelClass::Tcp,
                fabric_.costs().daemon_route,
                [peer, from, state, targets = std::move(targets)] {
                  peer->handle_fanout(from, state, targets);
                });
    targets = std::vector<MachineId>{};  // moved-from; make the state explicit
  }
}

void LocalDaemon::handle_fanout(MachineId from, StateId state,
                                const std::vector<MachineId>& targets) {
  for (const MachineId t : targets) {
    LokiNode* target = local_nodes_[t];
    if (target == nullptr) {
      fabric_.count_drop();
      continue;
    }
    world_.send(pid_, target->pid(), sim::Lan::Control, sim::ChannelClass::Ipc,
                fabric_.costs().node_notification_handler,
                [target, from, state] { target->deliver_remote_state(from, state); });
  }
}

std::vector<std::pair<MachineId, StateId>> LocalDaemon::collect_local_states()
    const {
  std::vector<std::pair<MachineId, StateId>> states;
  for (MachineId m = 0; m < local_nodes_.size(); ++m) {
    const LokiNode* node = local_nodes_[m];
    if (node != nullptr && node->state_machine().initialized())
      states.emplace_back(m, node->state_machine().current_state_id());
  }
  return states;
}

void LocalDaemon::handle_state_request(MachineId requester) {
  // Local states answer immediately; remote daemons are queried in parallel.
  handle_state_reply(requester, collect_local_states());
  for (const auto& d : fabric_.daemons()) {
    if (d.get() == this) continue;
    LocalDaemon* peer = d.get();
    const sim::HostId origin = host_;
    world_.send(pid_, peer->pid(), sim::Lan::Control, sim::ChannelClass::Tcp,
                fabric_.costs().daemon_route, [peer, requester, origin] {
                  peer->handle_state_request_remote(requester, origin);
                });
  }
}

void LocalDaemon::handle_state_request_remote(MachineId requester,
                                              sim::HostId origin) {
  auto states = collect_local_states();
  if (states.empty()) return;
  LocalDaemon* origin_daemon = &fabric_.daemon_on(origin);
  world_.send(pid_, origin_daemon->pid(), sim::Lan::Control,
              sim::ChannelClass::Tcp, fabric_.costs().daemon_route,
              [origin_daemon, requester, states = std::move(states)]() mutable {
                origin_daemon->handle_state_reply(requester, std::move(states));
              });
}

void LocalDaemon::handle_state_reply(
    MachineId requester, std::vector<std::pair<MachineId, StateId>> states) {
  LokiNode* target = local_nodes_[requester];
  if (target == nullptr) return;  // restarted node died again
  world_.send(pid_, target->pid(), sim::Lan::Control, sim::ChannelClass::Ipc,
              fabric_.costs().node_notification_handler,
              [target, states = std::move(states)] {
                target->deliver_state_updates(states);
              });
}

void LocalDaemon::handle_kill_all() {
  // Abort path (§3.5.1): kill every local state machine outright.
  for (MachineId m = 0; m < local_nodes_.size(); ++m) {
    LokiNode* node = local_nodes_[m];
    if (node == nullptr) continue;
    local_nodes_[m] = nullptr;
    locations_[m] = sim::HostId{};
    world_.kill(node->pid());
  }
  local_count_ = 0;
  check_experiment_end();
}

void LocalDaemon::handle_start_instruction(MachineId machine) {
  LOKI_REQUIRE(static_cast<bool>(fabric_.node_spawner),
               "no node spawner configured");
  fabric_.node_spawner(fabric_.dict().machine_name(machine), host_);
}

void LocalDaemon::check_experiment_end() {
  const bool now_empty = local_count_ == 0;
  if (now_empty != reported_empty_) {
    reported_empty_ = now_empty;
    if (fabric_.on_host_empty_change) fabric_.on_host_empty_change(host_, now_empty);
  }
}

// ---------------------------------------------------------------------------
// PartiallyDistributedDeployment
// ---------------------------------------------------------------------------

PartiallyDistributedDeployment::PartiallyDistributedDeployment(
    sim::World& world, std::vector<sim::HostId> hosts,
    const StudyDictionary& dict, const CostModel& costs, FabricParams params,
    const ReservedStudyIds* reserved)
    : world_(world),
      hosts_(std::move(hosts)),
      dict_(dict),
      costs_(costs),
      params_(params) {
  LOKI_REQUIRE(!hosts_.empty(), "fabric needs at least one host");
  if (reserved != nullptr) {
    // Compile-once path: the study interned these once for every
    // experiment; copying a flat u32 vector beats one map lookup per
    // machine per experiment.
    crash_state_id_ = reserved->crash_state;
    crash_event_idx_ = reserved->crash_event_idx;
  } else {
    crash_state_id_ = dict_.state_index(std::string(spec::kStateCrash));
    crash_event_idx_.reserve(dict_.machine_count());
    for (const std::string& machine : dict_.machines())
      crash_event_idx_.push_back(
          dict_.event_index(machine, std::string(spec::kEventCrash)));
  }
  recorders_.assign(dict_.machine_count(), nullptr);
  for (const sim::HostId h : hosts_)
    daemons_.push_back(std::make_unique<LocalDaemon>(world_, h, *this));
}

void PartiallyDistributedDeployment::reset(
    const std::vector<sim::HostId>& hosts, const CostModel& costs,
    FabricParams params, const ReservedStudyIds* reserved) {
  LOKI_REQUIRE(!hosts.empty(), "fabric needs at least one host");
  hosts_ = hosts;
  costs_ = costs;
  params_ = params;
  if (reserved != nullptr) {
    crash_state_id_ = reserved->crash_state;
    crash_event_idx_ = reserved->crash_event_idx;
  }
  // Same study by contract: the ids derived from the dictionary are
  // unchanged, so without a fresh reserved block the cached ones stand.
  std::fill(recorders_.begin(), recorders_.end(), nullptr);
  dropped_ = 0;
  if (daemons_.size() == hosts_.size()) {
    for (std::size_t i = 0; i < hosts_.size(); ++i)
      daemons_[i]->reset(hosts_[i]);
  } else {
    daemons_.clear();
    for (const sim::HostId h : hosts_)
      daemons_.push_back(std::make_unique<LocalDaemon>(world_, h, *this));
  }
  // Per-run harness wiring; a pooled fabric must never call into the
  // previous experiment's (destroyed) run object.
  on_host_empty_change = nullptr;
  on_node_crash = nullptr;
  node_spawner = nullptr;
}

void PartiallyDistributedDeployment::start_daemons() {
  for (auto& d : daemons_) d->start();
}

LocalDaemon& PartiallyDistributedDeployment::daemon_on(sim::HostId host) {
  for (auto& d : daemons_)
    if (d->host() == host) return *d;
  throw ConfigError("no local daemon on host " + world_.host_name(host));
}

void PartiallyDistributedDeployment::set_recorder(const std::string& nickname,
                                                  std::shared_ptr<Recorder> rec) {
  recorders_[dict_.machine_index(nickname)] = std::move(rec);
}

Recorder* PartiallyDistributedDeployment::recorder_for(MachineId machine) {
  return recorders_[machine].get();
}

void PartiallyDistributedDeployment::node_started(LokiNode& node, bool restarted,
                                                  std::function<void()> on_ready) {
  LocalDaemon& daemon = daemon_on(node.host());
  LokiNode* node_ptr = &node;
  world_.send(node.pid(), daemon.pid(), sim::Lan::Control, sim::ChannelClass::Ipc,
              costs_.daemon_route,
              [&daemon, node_ptr, restarted, on_ready = std::move(on_ready)]() mutable {
                daemon.handle_register(node_ptr, restarted, std::move(on_ready));
              });
}

void PartiallyDistributedDeployment::node_exited(LokiNode& node) {
  LocalDaemon& daemon = daemon_on(node.host());
  const MachineId machine = node.machine_id();
  const LokiNode* node_ptr = &node;
  world_.send(node.pid(), daemon.pid(), sim::Lan::Control, sim::ChannelClass::Ipc,
              costs_.daemon_route,
              [&daemon, machine, node_ptr] { daemon.handle_exit_notice(machine, node_ptr); });
}

void PartiallyDistributedDeployment::node_crashed(LokiNode& node,
                                                  bool explicit_notice) {
  LocalDaemon& daemon = daemon_on(node.host());
  const MachineId machine = node.machine_id();
  // Explicit notifyOnCrash() and the OS shm-teardown notification both reach
  // the daemon as a local (IPC-speed) event; the difference is whether the
  // node already recorded its CRASH state change.
  world_.send(node.pid(), daemon.pid(), sim::Lan::Control, sim::ChannelClass::Ipc,
              costs_.daemon_route, [&daemon, machine, explicit_notice] {
                daemon.handle_crash_notice(machine, explicit_notice);
              });
}

void PartiallyDistributedDeployment::send_state_notification(
    LokiNode& from, StateId state, const std::vector<MachineId>& recipients) {
  LocalDaemon& daemon = daemon_on(from.host());
  const MachineId machine = from.machine_id();
  // `recipients` is the node's pre-interned notify list — owned by its
  // state machine and stable for the node's (experiment-long) lifetime, so
  // the in-flight message may carry a pointer to it instead of a copy.
  const std::vector<MachineId>* recipients_ptr = &recipients;
  world_.send(from.pid(), daemon.pid(), sim::Lan::Control, sim::ChannelClass::Ipc,
              costs_.daemon_route, [&daemon, machine, state, recipients_ptr] {
                daemon.handle_route(machine, state, *recipients_ptr);
              });
}

void PartiallyDistributedDeployment::request_state_updates(LokiNode& node) {
  LocalDaemon& daemon = daemon_on(node.host());
  const MachineId machine = node.machine_id();
  world_.send(node.pid(), daemon.pid(), sim::Lan::Control, sim::ChannelClass::Ipc,
              costs_.daemon_route,
              [&daemon, machine] { daemon.handle_state_request(machine); });
}

// ---------------------------------------------------------------------------
// CentralDaemon
// ---------------------------------------------------------------------------

CentralDaemon::CentralDaemon(sim::World& world, sim::HostId host,
                             PartiallyDistributedDeployment& fabric, Params params)
    : world_(world), host_(host), fabric_(fabric), params_(params) {}

void CentralDaemon::reset(sim::HostId host, Params params) {
  host_ = host;
  params_ = params;
  pid_ = sim::ProcessId{};
  host_empty_.clear();  // start() sizes and fills it
  poll_ = nullptr;
  saw_any_node_ = false;
  concluded_ = false;
  timed_out_ = false;
  confirm_epoch_ = 0;
  pending_restarts = nullptr;
  on_conclude = nullptr;
  on_crash_report = nullptr;
}

void CentralDaemon::start(
    const std::vector<std::pair<std::string, sim::HostId>>& initial_nodes) {
  pid_ = world_.spawn(host_, "loki-central@" + world_.host_name(host_));

  std::int32_t max_host = 0;
  for (const auto& d : fabric_.daemons())
    max_host = std::max(max_host, d->host().value);
  host_empty_.assign(static_cast<std::size_t>(max_host) + 1, 1);

  fabric_.on_host_empty_change = [this](sim::HostId host, bool empty) {
    // Daemon -> central notice (TCP).
    const auto& daemon = fabric_.daemon_on(host);
    world_.send(daemon.pid(), pid_, sim::Lan::Control, sim::ChannelClass::Tcp,
                fabric_.costs().daemon_route,
                [this, host, empty] { handle_empty_change(host, empty); });
  };
  fabric_.on_node_crash = [this](const std::string& nick, sim::HostId host) {
    const auto& daemon = fabric_.daemon_on(host);
    world_.send(daemon.pid(), pid_, sim::Lan::Control, sim::ChannelClass::Tcp,
                fabric_.costs().daemon_route, [this, nick, host] {
                  if (on_crash_report) on_crash_report(nick, host);
                });
  };

  // Experiment timeout (§3.5.1: a hung experiment is aborted).
  world_.timer(pid_, params_.experiment_timeout, fabric_.costs().daemon_route,
               [this] {
                 if (!concluded_) abort_experiment();
               });

  // Local-daemon liveness: a broken TCP link to a daemon means its host
  // crashed (§3.6.4). The host counts as empty until the daemon returns.
  // The poll body lives in the daemon (poll_) and timers capture only
  // `this`; a closure owning itself via shared_ptr would never be freed.
  poll_ = [this] {
    if (concluded_) return;
    for (const auto& d : fabric_.daemons()) {
      if (!world_.alive(d->pid())) handle_empty_change(d->host(), true);
    }
    world_.timer(pid_, fabric_.params().watchdog_interval,
                 fabric_.costs().daemon_route, [this] { poll_(); });
  };
  world_.timer(pid_, fabric_.params().watchdog_interval,
               fabric_.costs().daemon_route, [this] { poll_(); });

  // Instruct the daemons to start the node-file nodes.
  for (const auto& [nickname, host] : initial_nodes) {
    LocalDaemon* daemon = &fabric_.daemon_on(host);
    const MachineId machine = fabric_.dict().machine_index(nickname);
    world_.send(pid_, daemon->pid(), sim::Lan::Control, sim::ChannelClass::Tcp,
                fabric_.costs().daemon_route,
                [daemon, machine] { daemon->handle_start_instruction(machine); });
  }
}

void CentralDaemon::handle_empty_change(sim::HostId host, bool empty) {
  host_empty_[static_cast<std::size_t>(host.value)] = empty ? 1 : 0;
  if (!empty) {
    saw_any_node_ = true;
    ++confirm_epoch_;  // cancel any scheduled confirmation
    return;
  }
  maybe_schedule_confirm();
}

void CentralDaemon::maybe_schedule_confirm() {
  if (concluded_ || !saw_any_node_) return;
  const bool all_empty =
      std::all_of(host_empty_.begin(), host_empty_.end(),
                  [](char e) { return e != 0; });
  if (!all_empty) return;
  const std::uint64_t epoch = ++confirm_epoch_;
  world_.timer(pid_, params_.end_confirm_grace, fabric_.costs().daemon_route,
               [this, epoch] {
                 if (epoch == confirm_epoch_) confirm_end();
               });
}

void CentralDaemon::confirm_end() {
  if (concluded_) return;
  const bool all_empty =
      std::all_of(host_empty_.begin(), host_empty_.end(),
                  [](char e) { return e != 0; });
  const bool really_empty = std::all_of(
      fabric_.daemons().begin(), fabric_.daemons().end(),
      [](const std::unique_ptr<LocalDaemon>& d) { return d->empty(); });
  const int pending = pending_restarts ? pending_restarts() : 0;
  if (all_empty && really_empty && pending == 0) {
    conclude(false);
  }
  // Otherwise a restart or late entry is in flight; the next empty report
  // re-schedules the confirmation.
}

void CentralDaemon::abort_experiment() {
  timed_out_ = true;
  for (const auto& d : fabric_.daemons()) {
    LocalDaemon* daemon = d.get();
    world_.send(pid_, daemon->pid(), sim::Lan::Control, sim::ChannelClass::Tcp,
                fabric_.costs().daemon_route, [daemon] { daemon->handle_kill_all(); });
  }
  // Conclude after the kill instructions have had time to land.
  world_.timer(pid_, milliseconds(50), fabric_.costs().daemon_route,
               [this] { conclude(true); });
}

void CentralDaemon::conclude(bool timed_out) {
  if (concluded_) return;
  concluded_ = true;
  timed_out_ = timed_out_ || timed_out;
  if (on_conclude) on_conclude(timed_out_);
}

}  // namespace loki::runtime
