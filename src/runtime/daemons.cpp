#include "runtime/daemons.hpp"

#include <algorithm>

#include "spec/reserved.hpp"
#include "util/error.hpp"

namespace loki::runtime {

// ---------------------------------------------------------------------------
// LocalDaemon
// ---------------------------------------------------------------------------

LocalDaemon::LocalDaemon(sim::World& world, sim::HostId host,
                         PartiallyDistributedDeployment& fabric)
    : world_(world), host_(host), fabric_(fabric) {}

void LocalDaemon::start() {
  pid_ = world_.spawn(host_, "lokid@" + world_.host_name(host_));
  // Arm the watchdog loop.
  world_.timer(pid_, fabric_.params().watchdog_interval,
               fabric_.costs().watchdog_handler, [this] { watchdog_tick(); });
}

void LocalDaemon::restart_after_reboot() {
  local_nodes_.clear();
  last_reply_.clear();
  // Machines located on this host died with it.
  handle_host_purge(host_);
  reported_empty_ = true;
  start();
  // Reconnect: tell the other daemons to forget machines they still map to
  // this host, and report the (empty) host state upward.
  for (const auto& d : fabric_.daemons()) {
    if (d.get() == this) continue;
    LocalDaemon* peer = d.get();
    const sim::HostId host = host_;
    world_.send(pid_, peer->pid(), sim::Lan::Control, sim::ChannelClass::Tcp,
                fabric_.costs().daemon_route,
                [peer, host] { peer->handle_host_purge(host); });
  }
  if (fabric_.on_host_empty_change) fabric_.on_host_empty_change(host_, true);
}

void LocalDaemon::handle_host_purge(sim::HostId host) {
  std::erase_if(locations_,
                [host](const auto& kv) { return kv.second == host; });
}

void LocalDaemon::watchdog_tick() {
  const SimTime now = world_.now();
  const Duration timeout = fabric_.params().watchdog_timeout;

  // Pass 1: nodes that have not answered within the timeout are presumed
  // crashed; the daemon writes the CRASH record on their behalf (§3.5.2).
  std::vector<std::string> dead;
  for (const auto& [nick, node] : local_nodes_) {
    const auto it = last_reply_.find(nick);
    if (it != last_reply_.end() && now - it->second > timeout)
      dead.push_back(nick);
  }
  for (const std::string& nick : dead)
    handle_crash_notice(nick, /*node_recorded=*/false);

  // Pass 2: ping the survivors (IPC out, IPC back).
  for (const auto& [nick, node] : local_nodes_) {
    const std::string nickname = nick;
    LokiNode* target = node;
    world_.send(pid_, target->pid(), sim::Lan::Control, sim::ChannelClass::Ipc,
                fabric_.costs().watchdog_handler,
                [this, nickname, target] {
                  // Node side: reply.
                  world_.send(target->pid(), pid_, sim::Lan::Control,
                              sim::ChannelClass::Ipc,
                              fabric_.costs().watchdog_handler, [this, nickname] {
                                last_reply_[nickname] = world_.now();
                              });
                });
  }

  world_.timer(pid_, fabric_.params().watchdog_interval,
               fabric_.costs().watchdog_handler, [this] { watchdog_tick(); });
}

void LocalDaemon::handle_register(LokiNode* node, bool restarted,
                                  std::function<void()> ack) {
  (void)restarted;
  const std::string& nick = node->nickname();
  local_nodes_[nick] = node;
  locations_[nick] = host_;
  last_reply_[nick] = world_.now();
  broadcast_locations_on_register(nick);
  if (reported_empty_) {
    reported_empty_ = false;
    if (fabric_.on_host_empty_change) fabric_.on_host_empty_change(host_, false);
  }
  // Ack back to the node (IPC): registration complete, appMain may start.
  world_.send(pid_, node->pid(), sim::Lan::Control, sim::ChannelClass::Ipc,
              fabric_.costs().register_handshake, std::move(ack));
}

void LocalDaemon::broadcast_locations_on_register(const std::string& nickname) {
  for (const auto& d : fabric_.daemons()) {
    if (d.get() == this) continue;
    LocalDaemon* peer = d.get();
    const sim::HostId host = host_;
    world_.send(pid_, peer->pid(), sim::Lan::Control, sim::ChannelClass::Tcp,
                fabric_.costs().daemon_route,
                [peer, nickname, host] { peer->handle_location_update(nickname, host); });
  }
}

void LocalDaemon::handle_location_update(const std::string& nickname,
                                         sim::HostId host) {
  locations_[nickname] = host;
}

void LocalDaemon::handle_location_remove(const std::string& nickname) {
  locations_.erase(nickname);
}

void LocalDaemon::handle_exit_notice(const std::string& nickname,
                                     const LokiNode* node) {
  const auto it = local_nodes_.find(nickname);
  if (it == local_nodes_.end() || it->second != node) return;  // stale
  local_nodes_.erase(it);
  last_reply_.erase(nickname);
  locations_.erase(nickname);
  for (const auto& d : fabric_.daemons()) {
    if (d.get() == this) continue;
    LocalDaemon* peer = d.get();
    world_.send(pid_, peer->pid(), sim::Lan::Control, sim::ChannelClass::Tcp,
                fabric_.costs().daemon_route,
                [peer, nickname] { peer->handle_location_remove(nickname); });
  }
  check_experiment_end();
}

void LocalDaemon::handle_crash_notice(const std::string& nickname,
                                      bool node_recorded) {
  if (!local_nodes_.contains(nickname)) return;  // watchdog beat the notice
  if (!node_recorded) {
    // Write the crash event + state on the node's behalf (§3.5.2), stamped
    // with this host's clock (the node lived here).
    Recorder* rec = fabric_.recorder_for(nickname);
    if (rec != nullptr) {
      const auto& dict = fabric_.dict();
      rec->record_state_change(
          dict.event_index(nickname, std::string(spec::kEventCrash)),
          dict.state_index(std::string(spec::kStateCrash)),
          world_.clock_read(host_));
    }
  }
  declare_crashed(nickname);
}

void LocalDaemon::declare_crashed(const std::string& nickname) {
  const auto it = local_nodes_.find(nickname);
  if (it == local_nodes_.end()) return;
  local_nodes_.erase(it);
  last_reply_.erase(nickname);
  locations_.erase(nickname);

  // Tell the other daemons; they drop the location and synthesize CRASH
  // view updates for their local machines.
  for (const auto& d : fabric_.daemons()) {
    if (d.get() == this) continue;
    LocalDaemon* peer = d.get();
    world_.send(pid_, peer->pid(), sim::Lan::Control, sim::ChannelClass::Tcp,
                fabric_.costs().daemon_route,
                [peer, nickname] { peer->handle_crash_broadcast(nickname); });
  }
  // And our own local machines.
  handle_crash_broadcast(nickname);

  if (fabric_.on_node_crash) fabric_.on_node_crash(nickname, host_);
  check_experiment_end();
}

void LocalDaemon::handle_crash_broadcast(const std::string& nickname) {
  locations_.erase(nickname);
  const std::string crash_state(spec::kStateCrash);
  for (const auto& [nick, node] : local_nodes_) {
    LokiNode* target = node;
    world_.send(pid_, target->pid(), sim::Lan::Control, sim::ChannelClass::Ipc,
                fabric_.costs().node_notification_handler,
                [target, nickname, crash_state] {
                  target->deliver_remote_state(nickname, crash_state);
                });
  }
}

void LocalDaemon::handle_route(const std::string& from, const std::string& state,
                               std::vector<std::string> recipients) {
  ++routed_;
  // Group recipients by host so each remote host gets ONE message (§3.6.1).
  std::map<std::int32_t, std::vector<std::string>> by_host;
  for (const std::string& r : recipients) {
    const auto it = locations_.find(r);
    if (it == locations_.end()) {
      fabric_.count_drop();  // "discarded with a warning message"
      continue;
    }
    by_host[it->second.value].push_back(r);
  }
  for (auto& [host_value, targets] : by_host) {
    const sim::HostId host{host_value};
    if (host == host_) {
      handle_fanout(from, state, targets);
      continue;
    }
    LocalDaemon* peer = &fabric_.daemon_on(host);
    world_.send(pid_, peer->pid(), sim::Lan::Control, sim::ChannelClass::Tcp,
                fabric_.costs().daemon_route,
                [peer, from, state, targets = std::move(targets)] {
                  peer->handle_fanout(from, state, targets);
                });
  }
}

void LocalDaemon::handle_fanout(const std::string& from, const std::string& state,
                                const std::vector<std::string>& targets) {
  for (const std::string& t : targets) {
    const auto it = local_nodes_.find(t);
    if (it == local_nodes_.end()) {
      fabric_.count_drop();
      continue;
    }
    LokiNode* target = it->second;
    world_.send(pid_, target->pid(), sim::Lan::Control, sim::ChannelClass::Ipc,
                fabric_.costs().node_notification_handler,
                [target, from, state] { target->deliver_remote_state(from, state); });
  }
}

std::map<std::string, std::string> LocalDaemon::collect_local_states() const {
  std::map<std::string, std::string> states;
  for (const auto& [nick, node] : local_nodes_) {
    if (node->state_machine().initialized())
      states.emplace(nick, node->state_machine().current_state());
  }
  return states;
}

void LocalDaemon::handle_state_request(const std::string& requester) {
  // Local states answer immediately; remote daemons are queried in parallel.
  handle_state_reply(requester, collect_local_states());
  for (const auto& d : fabric_.daemons()) {
    if (d.get() == this) continue;
    LocalDaemon* peer = d.get();
    const sim::HostId origin = host_;
    world_.send(pid_, peer->pid(), sim::Lan::Control, sim::ChannelClass::Tcp,
                fabric_.costs().daemon_route, [peer, requester, origin] {
                  peer->handle_state_request_remote(requester, origin);
                });
  }
}

void LocalDaemon::handle_state_request_remote(const std::string& requester,
                                              sim::HostId origin) {
  auto states = collect_local_states();
  if (states.empty()) return;
  LocalDaemon* origin_daemon = &fabric_.daemon_on(origin);
  world_.send(pid_, origin_daemon->pid(), sim::Lan::Control,
              sim::ChannelClass::Tcp, fabric_.costs().daemon_route,
              [origin_daemon, requester, states = std::move(states)] {
                origin_daemon->handle_state_reply(requester, states);
              });
}

void LocalDaemon::handle_state_reply(const std::string& requester,
                                     std::map<std::string, std::string> states) {
  const auto it = local_nodes_.find(requester);
  if (it == local_nodes_.end()) return;  // restarted node died again
  LokiNode* target = it->second;
  world_.send(pid_, target->pid(), sim::Lan::Control, sim::ChannelClass::Ipc,
              fabric_.costs().node_notification_handler,
              [target, states = std::move(states)] {
                target->deliver_state_updates(states);
              });
}

void LocalDaemon::handle_kill_all() {
  // Abort path (§3.5.1): kill every local state machine outright.
  auto nodes = local_nodes_;
  local_nodes_.clear();
  last_reply_.clear();
  for (const auto& [nick, node] : nodes) {
    locations_.erase(nick);
    world_.kill(node->pid());
  }
  check_experiment_end();
}

void LocalDaemon::handle_start_instruction(const std::string& nickname) {
  LOKI_REQUIRE(static_cast<bool>(fabric_.node_spawner),
               "no node spawner configured");
  fabric_.node_spawner(nickname, host_);
}

void LocalDaemon::check_experiment_end() {
  const bool now_empty = local_nodes_.empty();
  if (now_empty != reported_empty_) {
    reported_empty_ = now_empty;
    if (fabric_.on_host_empty_change) fabric_.on_host_empty_change(host_, now_empty);
  }
}

// ---------------------------------------------------------------------------
// PartiallyDistributedDeployment
// ---------------------------------------------------------------------------

PartiallyDistributedDeployment::PartiallyDistributedDeployment(
    sim::World& world, std::vector<sim::HostId> hosts,
    const StudyDictionary& dict, const CostModel& costs, FabricParams params)
    : world_(world),
      hosts_(std::move(hosts)),
      dict_(dict),
      costs_(costs),
      params_(params) {
  LOKI_REQUIRE(!hosts_.empty(), "fabric needs at least one host");
  for (const sim::HostId h : hosts_)
    daemons_.push_back(std::make_unique<LocalDaemon>(world_, h, *this));
}

void PartiallyDistributedDeployment::start_daemons() {
  for (auto& d : daemons_) d->start();
}

LocalDaemon& PartiallyDistributedDeployment::daemon_on(sim::HostId host) {
  for (auto& d : daemons_)
    if (d->host() == host) return *d;
  throw ConfigError("no local daemon on host " + world_.host_name(host));
}

void PartiallyDistributedDeployment::set_recorder(const std::string& nickname,
                                                  std::shared_ptr<Recorder> rec) {
  recorders_[nickname] = std::move(rec);
}

Recorder* PartiallyDistributedDeployment::recorder_for(const std::string& nickname) {
  const auto it = recorders_.find(nickname);
  return it == recorders_.end() ? nullptr : it->second.get();
}

void PartiallyDistributedDeployment::node_started(LokiNode& node, bool restarted,
                                                  std::function<void()> on_ready) {
  LocalDaemon& daemon = daemon_on(node.host());
  LokiNode* node_ptr = &node;
  world_.send(node.pid(), daemon.pid(), sim::Lan::Control, sim::ChannelClass::Ipc,
              costs_.daemon_route,
              [&daemon, node_ptr, restarted, on_ready = std::move(on_ready)] {
                daemon.handle_register(node_ptr, restarted, on_ready);
              });
}

void PartiallyDistributedDeployment::node_exited(LokiNode& node) {
  LocalDaemon& daemon = daemon_on(node.host());
  const std::string nick = node.nickname();
  const LokiNode* node_ptr = &node;
  world_.send(node.pid(), daemon.pid(), sim::Lan::Control, sim::ChannelClass::Ipc,
              costs_.daemon_route,
              [&daemon, nick, node_ptr] { daemon.handle_exit_notice(nick, node_ptr); });
}

void PartiallyDistributedDeployment::node_crashed(LokiNode& node,
                                                  bool explicit_notice) {
  LocalDaemon& daemon = daemon_on(node.host());
  const std::string nick = node.nickname();
  // Explicit notifyOnCrash() and the OS shm-teardown notification both reach
  // the daemon as a local (IPC-speed) event; the difference is whether the
  // node already recorded its CRASH state change.
  world_.send(node.pid(), daemon.pid(), sim::Lan::Control, sim::ChannelClass::Ipc,
              costs_.daemon_route, [&daemon, nick, explicit_notice] {
                daemon.handle_crash_notice(nick, explicit_notice);
              });
}

void PartiallyDistributedDeployment::send_state_notification(
    LokiNode& from, const std::string& state,
    const std::vector<std::string>& recipients) {
  LocalDaemon& daemon = daemon_on(from.host());
  const std::string nick = from.nickname();
  world_.send(from.pid(), daemon.pid(), sim::Lan::Control, sim::ChannelClass::Ipc,
              costs_.daemon_route, [&daemon, nick, state, recipients] {
                daemon.handle_route(nick, state, recipients);
              });
}

void PartiallyDistributedDeployment::request_state_updates(LokiNode& node) {
  LocalDaemon& daemon = daemon_on(node.host());
  const std::string nick = node.nickname();
  world_.send(node.pid(), daemon.pid(), sim::Lan::Control, sim::ChannelClass::Ipc,
              costs_.daemon_route,
              [&daemon, nick] { daemon.handle_state_request(nick); });
}

// ---------------------------------------------------------------------------
// CentralDaemon
// ---------------------------------------------------------------------------

CentralDaemon::CentralDaemon(sim::World& world, sim::HostId host,
                             PartiallyDistributedDeployment& fabric, Params params)
    : world_(world), host_(host), fabric_(fabric), params_(params) {}

void CentralDaemon::start(
    const std::vector<std::pair<std::string, sim::HostId>>& initial_nodes) {
  pid_ = world_.spawn(host_, "loki-central@" + world_.host_name(host_));

  for (const auto& d : fabric_.daemons()) host_empty_[d->host().value] = true;

  fabric_.on_host_empty_change = [this](sim::HostId host, bool empty) {
    // Daemon -> central notice (TCP).
    const auto& daemon = fabric_.daemon_on(host);
    world_.send(daemon.pid(), pid_, sim::Lan::Control, sim::ChannelClass::Tcp,
                fabric_.costs().daemon_route,
                [this, host, empty] { handle_empty_change(host, empty); });
  };
  fabric_.on_node_crash = [this](const std::string& nick, sim::HostId host) {
    const auto& daemon = fabric_.daemon_on(host);
    world_.send(daemon.pid(), pid_, sim::Lan::Control, sim::ChannelClass::Tcp,
                fabric_.costs().daemon_route, [this, nick, host] {
                  if (on_crash_report) on_crash_report(nick, host);
                });
  };

  // Experiment timeout (§3.5.1: a hung experiment is aborted).
  world_.timer(pid_, params_.experiment_timeout, fabric_.costs().daemon_route,
               [this] {
                 if (!concluded_) abort_experiment();
               });

  // Local-daemon liveness: a broken TCP link to a daemon means its host
  // crashed (§3.6.4). The host counts as empty until the daemon returns.
  // The poll body lives in the daemon (poll_) and timers capture only
  // `this`; a closure owning itself via shared_ptr would never be freed.
  poll_ = [this] {
    if (concluded_) return;
    for (const auto& d : fabric_.daemons()) {
      if (!world_.alive(d->pid())) handle_empty_change(d->host(), true);
    }
    world_.timer(pid_, fabric_.params().watchdog_interval,
                 fabric_.costs().daemon_route, [this] { poll_(); });
  };
  world_.timer(pid_, fabric_.params().watchdog_interval,
               fabric_.costs().daemon_route, [this] { poll_(); });

  // Instruct the daemons to start the node-file nodes.
  for (const auto& [nickname, host] : initial_nodes) {
    LocalDaemon* daemon = &fabric_.daemon_on(host);
    const std::string nick = nickname;
    world_.send(pid_, daemon->pid(), sim::Lan::Control, sim::ChannelClass::Tcp,
                fabric_.costs().daemon_route,
                [daemon, nick] { daemon->handle_start_instruction(nick); });
  }
}

void CentralDaemon::handle_empty_change(sim::HostId host, bool empty) {
  host_empty_[host.value] = empty;
  if (!empty) {
    saw_any_node_ = true;
    ++confirm_epoch_;  // cancel any scheduled confirmation
    return;
  }
  maybe_schedule_confirm();
}

void CentralDaemon::maybe_schedule_confirm() {
  if (concluded_ || !saw_any_node_) return;
  const bool all_empty =
      std::all_of(host_empty_.begin(), host_empty_.end(),
                  [](const auto& kv) { return kv.second; });
  if (!all_empty) return;
  const std::uint64_t epoch = ++confirm_epoch_;
  world_.timer(pid_, params_.end_confirm_grace, fabric_.costs().daemon_route,
               [this, epoch] {
                 if (epoch == confirm_epoch_) confirm_end();
               });
}

void CentralDaemon::confirm_end() {
  if (concluded_) return;
  const bool all_empty =
      std::all_of(host_empty_.begin(), host_empty_.end(),
                  [](const auto& kv) { return kv.second; });
  const bool really_empty = std::all_of(
      fabric_.daemons().begin(), fabric_.daemons().end(),
      [](const std::unique_ptr<LocalDaemon>& d) { return d->empty(); });
  const int pending = pending_restarts ? pending_restarts() : 0;
  if (all_empty && really_empty && pending == 0) {
    conclude(false);
  }
  // Otherwise a restart or late entry is in flight; the next empty report
  // re-schedules the confirmation.
}

void CentralDaemon::abort_experiment() {
  timed_out_ = true;
  for (const auto& d : fabric_.daemons()) {
    LocalDaemon* daemon = d.get();
    world_.send(pid_, daemon->pid(), sim::Lan::Control, sim::ChannelClass::Tcp,
                fabric_.costs().daemon_route, [daemon] { daemon->handle_kill_all(); });
  }
  // Conclude after the kill instructions have had time to land.
  world_.timer(pid_, milliseconds(50), fabric_.costs().daemon_route,
               [this] { conclude(true); });
}

void CentralDaemon::conclude(bool timed_out) {
  if (concluded_) return;
  concluded_ = true;
  timed_out_ = timed_out_ || timed_out;
  if (on_conclude) on_conclude(timed_out_);
}

}  // namespace loki::runtime
