#include "runtime/alt_deployments.hpp"

#include "spec/reserved.hpp"
#include "util/error.hpp"

namespace loki::runtime {

// ---------------------------------------------------------------------------
// CentralizedDeployment
// ---------------------------------------------------------------------------

CentralizedDeployment::CentralizedDeployment(sim::World& world,
                                             sim::HostId daemon_host,
                                             const CostModel& costs, Params params)
    : world_(world), daemon_host_(daemon_host), costs_(costs), params_(params) {}

void CentralizedDeployment::start_daemon() {
  daemon_pid_ = world_.spawn(daemon_host_,
                             "loki-global@" + world_.host_name(daemon_host_));
}

void CentralizedDeployment::node_started(LokiNode& node, bool /*restarted*/,
                                         std::function<void()> on_ready) {
  LokiNode* node_ptr = &node;
  // Nodes always use TCP to the global daemon (Fig 3.4): one connection
  // regardless of cluster size — the design's entry/exit advantage.
  world_.send(node.pid(), daemon_pid_, sim::Lan::Control, sim::ChannelClass::Tcp,
              costs_.daemon_route, [this, node_ptr, on_ready = std::move(on_ready)] {
                nodes_[node_ptr->nickname()] = node_ptr;
                world_.send(daemon_pid_, node_ptr->pid(), sim::Lan::Control,
                            sim::ChannelClass::Tcp, costs_.register_handshake,
                            on_ready);
              });
}

void CentralizedDeployment::node_exited(LokiNode& node) {
  const std::string nick = node.nickname();
  world_.send(node.pid(), daemon_pid_, sim::Lan::Control, sim::ChannelClass::Tcp,
              costs_.daemon_route, [this, nick] { unregister(nick); });
}

void CentralizedDeployment::node_crashed(LokiNode& node, bool explicit_notice) {
  const std::string nick = node.nickname();
  if (explicit_notice) {
    world_.send(node.pid(), daemon_pid_, sim::Lan::Control,
                sim::ChannelClass::Tcp, costs_.daemon_route,
                [this, nick] { unregister(nick); });
    return;
  }
  // Broken-link detection: slow, and the recorded crash time is off by an
  // unknown amount — the §3.4.2 argument against this design.
  world_.at(world_.now() + params_.crash_detection_delay,
            [this, nick] { unregister(nick); });
}

void CentralizedDeployment::unregister(const std::string& nickname) {
  nodes_.erase(nickname);
  const std::string crash_state(spec::kStateCrash);
  // Inform the survivors (one message each; used for view maintenance).
  for (const auto& [nick, node] : nodes_) {
    LokiNode* target = node;
    world_.send(daemon_pid_, target->pid(), sim::Lan::Control,
                sim::ChannelClass::Tcp, costs_.node_notification_handler,
                [target, nickname, crash_state] {
                  target->deliver_remote_state(nickname, crash_state);
                });
  }
}

void CentralizedDeployment::send_state_notification(
    LokiNode& from, const std::string& state,
    const std::vector<std::string>& recipients) {
  const std::string nick = from.nickname();
  world_.send(from.pid(), daemon_pid_, sim::Lan::Control, sim::ChannelClass::Tcp,
              costs_.daemon_route, [this, nick, state, recipients] {
                handle_route(nick, state, recipients);
              });
}

void CentralizedDeployment::handle_route(const std::string& from,
                                         const std::string& state,
                                         const std::vector<std::string>& recipients) {
  for (const std::string& r : recipients) {
    const auto it = nodes_.find(r);
    if (it == nodes_.end()) {
      ++dropped_;
      continue;
    }
    ++relayed_;
    LokiNode* target = it->second;
    world_.send(daemon_pid_, target->pid(), sim::Lan::Control,
                sim::ChannelClass::Tcp, costs_.node_notification_handler,
                [target, from, state] { target->deliver_remote_state(from, state); });
  }
}

void CentralizedDeployment::request_state_updates(LokiNode& node) {
  LokiNode* requester = &node;
  world_.send(node.pid(), daemon_pid_, sim::Lan::Control, sim::ChannelClass::Tcp,
              costs_.daemon_route, [this, requester] {
                std::map<std::string, std::string> states;
                for (const auto& [nick, n] : nodes_) {
                  if (n->state_machine().initialized())
                    states.emplace(nick, n->state_machine().current_state());
                }
                world_.send(daemon_pid_, requester->pid(), sim::Lan::Control,
                            sim::ChannelClass::Tcp,
                            costs_.node_notification_handler,
                            [requester, states = std::move(states)] {
                              requester->deliver_state_updates(states);
                            });
              });
}

// ---------------------------------------------------------------------------
// DirectDeployment
// ---------------------------------------------------------------------------

DirectDeployment::DirectDeployment(sim::World& world, const CostModel& costs)
    : world_(world), costs_(costs) {}

void DirectDeployment::node_started(LokiNode& node, bool restarted,
                                    std::function<void()> on_ready) {
  LOKI_REQUIRE(!restarted,
               "the original (direct) runtime does not support restarts (§3.3)");
  // O(n) connection setup: one handshake per existing peer, charged as CPU
  // work on the entering node.
  const Duration total =
      connect_cost * static_cast<std::int64_t>(peers_.size() ? peers_.size() : 1);
  peers_[node.nickname()] = &node;
  world_.post(node.pid(), total, std::move(on_ready));
}

void DirectDeployment::node_exited(LokiNode& node) {
  peers_.erase(node.nickname());
  // Exit notifications to all peers (§3.6.2 first sentence), point to point.
  const std::string nick = node.nickname();
  const std::string exit_state(spec::kStateExit);
  for (const auto& [peer_nick, peer] : peers_) {
    LokiNode* target = peer;
    world_.send(node.pid(), target->pid(), sim::Lan::Control,
                sim::ChannelClass::Tcp, costs_.node_notification_handler,
                [target, nick, exit_state] {
                  target->deliver_remote_state(nick, exit_state);
                });
  }
}

void DirectDeployment::node_crashed(LokiNode& node, bool /*explicit_notice*/) {
  // No daemon to tell; peers learn only through the CRASH state change the
  // signal handler may have sent. This is precisely the original runtime's
  // limitation.
  peers_.erase(node.nickname());
}

void DirectDeployment::send_state_notification(
    LokiNode& from, const std::string& state,
    const std::vector<std::string>& recipients) {
  // One TCP message per recipient, even host-local (§3.3: "state machines in
  // the same host communicate using TCP/IP").
  for (const std::string& r : recipients) {
    const auto it = peers_.find(r);
    if (it == peers_.end()) {
      ++dropped_;
      continue;
    }
    LokiNode* target = it->second;
    world_.send(from.pid(), target->pid(), sim::Lan::Control,
                sim::ChannelClass::Tcp, costs_.node_notification_handler,
                [target, nick = from.nickname(), state] {
                  target->deliver_remote_state(nick, state);
                });
  }
}

void DirectDeployment::request_state_updates(LokiNode& node) {
  // Peers answer directly.
  LokiNode* requester = &node;
  for (const auto& [peer_nick, peer] : peers_) {
    if (peer == requester) continue;
    LokiNode* source = peer;
    world_.send(requester->pid(), source->pid(), sim::Lan::Control,
                sim::ChannelClass::Tcp, costs_.daemon_route,
                [this, source, requester] {
                  if (!source->state_machine().initialized()) return;
                  std::map<std::string, std::string> states{
                      {source->nickname(), source->state_machine().current_state()}};
                  world_.send(source->pid(), requester->pid(), sim::Lan::Control,
                              sim::ChannelClass::Tcp,
                              costs_.node_notification_handler,
                              [requester, states = std::move(states)] {
                                requester->deliver_state_updates(states);
                              });
                });
  }
}

}  // namespace loki::runtime
