#include "runtime/alt_deployments.hpp"

#include <algorithm>

#include "spec/reserved.hpp"
#include "util/error.hpp"

namespace loki::runtime {

// ---------------------------------------------------------------------------
// CentralizedDeployment
// ---------------------------------------------------------------------------

CentralizedDeployment::CentralizedDeployment(sim::World& world,
                                             sim::HostId daemon_host,
                                             const StudyDictionary& dict,
                                             const CostModel& costs, Params params,
                                             const ReservedStudyIds* reserved)
    : world_(world),
      daemon_host_(daemon_host),
      costs_(costs),
      params_(params),
      crash_state_id_(reserved != nullptr
                          ? reserved->crash_state
                          : dict.state_index(std::string(spec::kStateCrash))),
      nodes_(dict.machine_count(), nullptr) {}

void CentralizedDeployment::reset(sim::HostId daemon_host,
                                  const StudyDictionary& dict,
                                  const CostModel& costs, Params params,
                                  const ReservedStudyIds* reserved) {
  daemon_host_ = daemon_host;
  costs_ = costs;
  params_ = params;
  crash_state_id_ = reserved != nullptr
                        ? reserved->crash_state
                        : dict.state_index(std::string(spec::kStateCrash));
  daemon_pid_ = sim::ProcessId{};
  nodes_.assign(dict.machine_count(), nullptr);
  dropped_ = 0;
  relayed_ = 0;
}

void CentralizedDeployment::start_daemon() {
  daemon_pid_ = world_.spawn(daemon_host_,
                             "loki-global@" + world_.host_name(daemon_host_));
}

void CentralizedDeployment::node_started(LokiNode& node, bool /*restarted*/,
                                         std::function<void()> on_ready) {
  LokiNode* node_ptr = &node;
  // Nodes always use TCP to the global daemon (Fig 3.4): one connection
  // regardless of cluster size — the design's entry/exit advantage.
  world_.send(node.pid(), daemon_pid_, sim::Lan::Control, sim::ChannelClass::Tcp,
              costs_.daemon_route,
              [this, node_ptr, on_ready = std::move(on_ready)]() mutable {
                nodes_[node_ptr->machine_id()] = node_ptr;
                world_.send(daemon_pid_, node_ptr->pid(), sim::Lan::Control,
                            sim::ChannelClass::Tcp, costs_.register_handshake,
                            std::move(on_ready));
              });
}

void CentralizedDeployment::node_exited(LokiNode& node) {
  const MachineId machine = node.machine_id();
  world_.send(node.pid(), daemon_pid_, sim::Lan::Control, sim::ChannelClass::Tcp,
              costs_.daemon_route, [this, machine] { unregister(machine); });
}

void CentralizedDeployment::node_crashed(LokiNode& node, bool explicit_notice) {
  const MachineId machine = node.machine_id();
  if (explicit_notice) {
    world_.send(node.pid(), daemon_pid_, sim::Lan::Control,
                sim::ChannelClass::Tcp, costs_.daemon_route,
                [this, machine] { unregister(machine); });
    return;
  }
  // Broken-link detection: slow, and the recorded crash time is off by an
  // unknown amount — the §3.4.2 argument against this design.
  world_.at(world_.now() + params_.crash_detection_delay,
            [this, machine] { unregister(machine); });
}

void CentralizedDeployment::unregister(MachineId machine) {
  nodes_[machine] = nullptr;
  const StateId crash_state = crash_state_id_;
  // Inform the survivors (one message each; used for view maintenance).
  for (LokiNode* target : nodes_) {
    if (target == nullptr) continue;
    world_.send(daemon_pid_, target->pid(), sim::Lan::Control,
                sim::ChannelClass::Tcp, costs_.node_notification_handler,
                [target, machine, crash_state] {
                  target->deliver_remote_state(machine, crash_state);
                });
  }
}

void CentralizedDeployment::send_state_notification(
    LokiNode& from, StateId state, const std::vector<MachineId>& recipients) {
  const MachineId machine = from.machine_id();
  // The notify list is owned by the sending node's state machine and stable
  // for the node's lifetime; carry a pointer across the hop.
  const std::vector<MachineId>* recipients_ptr = &recipients;
  world_.send(from.pid(), daemon_pid_, sim::Lan::Control, sim::ChannelClass::Tcp,
              costs_.daemon_route, [this, machine, state, recipients_ptr] {
                handle_route(machine, state, *recipients_ptr);
              });
}

void CentralizedDeployment::handle_route(MachineId from, StateId state,
                                         const std::vector<MachineId>& recipients) {
  for (const MachineId r : recipients) {
    LokiNode* target = r == kInvalidId ? nullptr : nodes_[r];
    if (target == nullptr) {
      ++dropped_;
      continue;
    }
    ++relayed_;
    world_.send(daemon_pid_, target->pid(), sim::Lan::Control,
                sim::ChannelClass::Tcp, costs_.node_notification_handler,
                [target, from, state] { target->deliver_remote_state(from, state); });
  }
}

void CentralizedDeployment::request_state_updates(LokiNode& node) {
  LokiNode* requester = &node;
  world_.send(node.pid(), daemon_pid_, sim::Lan::Control, sim::ChannelClass::Tcp,
              costs_.daemon_route, [this, requester] {
                std::vector<std::pair<MachineId, StateId>> states;
                for (MachineId m = 0; m < nodes_.size(); ++m) {
                  const LokiNode* n = nodes_[m];
                  if (n != nullptr && n->state_machine().initialized())
                    states.emplace_back(m, n->state_machine().current_state_id());
                }
                world_.send(daemon_pid_, requester->pid(), sim::Lan::Control,
                            sim::ChannelClass::Tcp,
                            costs_.node_notification_handler,
                            [requester, states = std::move(states)] {
                              requester->deliver_state_updates(states);
                            });
              });
}

// ---------------------------------------------------------------------------
// DirectDeployment
// ---------------------------------------------------------------------------

DirectDeployment::DirectDeployment(sim::World& world,
                                   const StudyDictionary& dict,
                                   const CostModel& costs,
                                   const ReservedStudyIds* reserved)
    : world_(world),
      costs_(costs),
      exit_state_id_(reserved != nullptr
                         ? reserved->exit_state
                         : dict.state_index(std::string(spec::kStateExit))),
      peers_(dict.machine_count(), nullptr) {}

void DirectDeployment::reset(const StudyDictionary& dict,
                             const CostModel& costs,
                             const ReservedStudyIds* reserved) {
  costs_ = costs;
  exit_state_id_ = reserved != nullptr
                       ? reserved->exit_state
                       : dict.state_index(std::string(spec::kStateExit));
  peers_.assign(dict.machine_count(), nullptr);
  dropped_ = 0;
  connect_cost = microseconds(300);  // the declaration's default initializer
}

std::size_t DirectDeployment::peer_count() const {
  return static_cast<std::size_t>(
      std::count_if(peers_.begin(), peers_.end(),
                    [](const LokiNode* p) { return p != nullptr; }));
}

void DirectDeployment::node_started(LokiNode& node, bool restarted,
                                    std::function<void()> on_ready) {
  LOKI_REQUIRE(!restarted,
               "the original (direct) runtime does not support restarts (§3.3)");
  // O(n) connection setup: one handshake per existing peer, charged as CPU
  // work on the entering node.
  const std::size_t existing = peer_count();
  const Duration total =
      connect_cost * static_cast<std::int64_t>(existing ? existing : 1);
  peers_[node.machine_id()] = &node;
  world_.post(node.pid(), total, std::move(on_ready));
}

void DirectDeployment::node_exited(LokiNode& node) {
  const MachineId machine = node.machine_id();
  peers_[machine] = nullptr;
  // Exit notifications to all peers (§3.6.2 first sentence), point to point.
  const StateId exit_state = exit_state_id_;
  for (LokiNode* target : peers_) {
    if (target == nullptr) continue;
    world_.send(node.pid(), target->pid(), sim::Lan::Control,
                sim::ChannelClass::Tcp, costs_.node_notification_handler,
                [target, machine, exit_state] {
                  target->deliver_remote_state(machine, exit_state);
                });
  }
}

void DirectDeployment::node_crashed(LokiNode& node, bool /*explicit_notice*/) {
  // No daemon to tell; peers learn only through the CRASH state change the
  // signal handler may have sent. This is precisely the original runtime's
  // limitation.
  peers_[node.machine_id()] = nullptr;
}

void DirectDeployment::send_state_notification(
    LokiNode& from, StateId state, const std::vector<MachineId>& recipients) {
  // One TCP message per recipient, even host-local (§3.3: "state machines in
  // the same host communicate using TCP/IP").
  const MachineId machine = from.machine_id();
  for (const MachineId r : recipients) {
    LokiNode* target = r == kInvalidId ? nullptr : peers_[r];
    if (target == nullptr) {
      ++dropped_;
      continue;
    }
    world_.send(from.pid(), target->pid(), sim::Lan::Control,
                sim::ChannelClass::Tcp, costs_.node_notification_handler,
                [target, machine, state] {
                  target->deliver_remote_state(machine, state);
                });
  }
}

void DirectDeployment::request_state_updates(LokiNode& node) {
  // Peers answer directly.
  LokiNode* requester = &node;
  for (MachineId m = 0; m < peers_.size(); ++m) {
    LokiNode* peer = peers_[m];
    if (peer == nullptr || peer == requester) continue;
    LokiNode* source = peer;
    world_.send(requester->pid(), source->pid(), sim::Lan::Control,
                sim::ChannelClass::Tcp, costs_.daemon_route,
                [this, m, source, requester] {
                  if (!source->state_machine().initialized()) return;
                  std::vector<std::pair<MachineId, StateId>> states{
                      {m, source->state_machine().current_state_id()}};
                  world_.send(source->pid(), requester->pid(), sim::Lan::Control,
                              sim::ChannelClass::Tcp,
                              costs_.node_notification_handler,
                              [requester, states = std::move(states)] {
                                requester->deliver_state_updates(states);
                              });
                });
  }
}

}  // namespace loki::runtime
