// The fault parser (§3.5.5).
//
// On every change of the partial view of global state, every Boolean fault
// expression is re-evaluated; expressions that transitioned false -> true
// fire (positive-edge triggering, §5.4), subject to once|always:
//   once   — fire only on the first such edge in the experiment;
//   always — fire on every edge.
//
// Previous values are initialized by evaluating each expression against the
// empty view at reset, so an expression that is vacuously true from the
// start (e.g. pure negations) does not fire until it first goes false and
// comes back.
#pragma once

#include <cstdint>
#include <vector>

#include "spec/fault_spec.hpp"

namespace loki::runtime {

class FaultParser {
 public:
  explicit FaultParser(std::vector<spec::FaultSpecEntry> entries);

  /// Re-evaluate all expressions against `view`; returns the indices (into
  /// the entry list) of faults that must be injected now, in entry order.
  std::vector<std::uint32_t> on_view_change(const spec::StateView& view);

  /// Forget edge/armed state (new experiment).
  void reset();

  const std::vector<spec::FaultSpecEntry>& entries() const { return entries_; }

  std::uint64_t evaluations() const { return evaluations_; }

 private:
  struct EdgeState {
    bool prev{false};
    bool fired_once{false};
  };

  std::vector<spec::FaultSpecEntry> entries_;
  std::vector<EdgeState> edges_;
  std::uint64_t evaluations_{0};
};

}  // namespace loki::runtime
