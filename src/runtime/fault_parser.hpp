// The fault parser (§3.5.5).
//
// On every change of the partial view of global state, every Boolean fault
// expression is re-evaluated; expressions that transitioned false -> true
// fire (positive-edge triggering, §5.4), subject to once|always:
//   once   — fire only on the first such edge in the experiment;
//   always — fire on every edge.
//
// Expressions are compiled once (CompiledFaultProgram) at construction, so
// the per-notification sweep is a branch-predictable pass over flat postfix
// programs against the dense id view — no tree walk, no string compares,
// no allocation (the fired list is a reused buffer).
//
// Previous values are initialized by evaluating each expression against the
// empty view at reset, so an expression that is vacuously true from the
// start (e.g. pure negations) does not fire until it first goes false and
// comes back.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/compiled_fault.hpp"
#include "runtime/dictionary.hpp"
#include "spec/fault_spec.hpp"

namespace loki::runtime {

class FaultParser {
 public:
  /// Compiles every entry's expression through `dict` up front. `entries`
  /// is borrowed, not copied — the caller (the experiment's fault spec)
  /// must outlive the parser.
  FaultParser(const std::vector<spec::FaultSpecEntry>& entries,
              const StudyDictionary& dict);

  /// Borrow programs compiled once per study (runtime/compiled_study.hpp)
  /// instead of recompiling per node per experiment. `entries` and
  /// `programs` must be parallel vectors (same length, same order) and
  /// outlive the parser; `stack_depth` is the scratch size needed by the
  /// deepest program. The parser evaluates shared programs with its own
  /// scratch, so any number of parsers (across experiments and threads)
  /// may borrow the same programs concurrently.
  FaultParser(const std::vector<spec::FaultSpecEntry>& entries,
              const std::vector<CompiledFaultProgram>& programs,
              std::size_t stack_depth);

  /// Re-evaluate all expressions against the dense view (indexed by
  /// MachineId, kNoState for unknown); returns the indices (into the entry
  /// list) of faults that must be injected now, in entry order. The
  /// returned reference is into a buffer reused by the next call.
  const std::vector<std::uint32_t>& on_view_change(
      const std::vector<StateId>& view);

  /// Forget edge/armed state (new experiment).
  void reset();

  const std::vector<spec::FaultSpecEntry>& entries() const { return *entries_; }

  std::uint64_t evaluations() const { return evaluations_; }

 private:
  struct EdgeState {
    bool prev{false};
    bool fired_once{false};
  };

  const std::vector<spec::FaultSpecEntry>* entries_;
  /// Owned only by the compile-here constructor; the borrow constructor
  /// leaves this empty and points programs_ at the study's shared vector.
  std::vector<CompiledFaultProgram> owned_programs_;
  const std::vector<CompiledFaultProgram>* programs_;
  /// Evaluation scratch for the shared programs (see CompiledFaultProgram's
  /// external-stack eval).
  std::vector<unsigned char> scratch_;
  std::vector<EdgeState> edges_;
  std::vector<std::uint32_t> fired_;
  std::uint64_t evaluations_{0};
};

}  // namespace loki::runtime
