// CPU costs charged for runtime activities.
//
// The thesis' performance analysis (§3.2.2) found the runtime's own
// overheads "minimal compared to the OS context switching overhead"; these
// defaults keep that ordering (tens of microseconds of handler work vs.
// millisecond timeslices) while remaining configurable so the overhead-
// decomposition bench can vary them.
#pragma once

#include "util/time.hpp"

namespace loki::runtime {

struct CostModel {
  /// Handling one state-change notification at a node (state machine update
  /// + fault parser sweep + recording).
  Duration node_notification_handler{microseconds(25)};
  /// A daemon routing one message (lookup + forward).
  Duration daemon_route{microseconds(10)};
  /// Node-side cost of the registration handshake.
  Duration register_handshake{microseconds(40)};
  /// Watchdog ping/reply handlers.
  Duration watchdog_handler{microseconds(5)};
  /// Probe fault injection (the injected action itself is the app's).
  Duration probe_injection{microseconds(15)};
  /// Default application handler cost when the app does not specify one.
  Duration app_default_handler{microseconds(20)};
  /// Clock-stamper handler during sync mini-phases.
  Duration sync_stamp_handler{microseconds(8)};
};

}  // namespace loki::runtime
