// Named application constructors, so an ExperimentParams can cross a
// serialization boundary.
//
// NodeConfig::app_factory is an arbitrary closure — perfect in-process (and
// across fork(), which inherits it), but meaningless on the wire. A node
// that must be encodable therefore also carries (app_name, app_args): the
// registry maps app_name to a constructor that rebuilds the factory from
// the args string. The built-in applications register themselves via
// apps::register_builtin_apps(); user applications register the same way.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "runtime/app.hpp"

namespace loki::runtime {

/// Rebuilds an ApplicationFactory from the serialized `app_args` string.
/// Must throw (e.g. ConfigError) on malformed args.
using ApplicationCtor = std::function<ApplicationFactory(const std::string& args)>;

/// Register (or replace) the constructor for `name`. Thread-safe.
void register_application(const std::string& name, ApplicationCtor ctor);

bool has_application(const std::string& name);

/// Look up `name` and build the factory from `args`. Throws ConfigError
/// when `name` is not registered.
ApplicationFactory make_application_factory(const std::string& name,
                                            const std::string& args);

/// Registered names, sorted — for error messages and tooling.
std::vector<std::string> registered_applications();

}  // namespace loki::runtime
