// Per-study name<->index dictionaries (§3.5.6).
//
// "The state machine, state, event, and fault indices are used in the local
// timeline events in place of the corresponding names. This makes the local
// timeline compact and decreases intrusion during recording."
//
// The machine and state dictionaries are shared by all nodes of a study;
// events and faults are per machine.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "spec/fault_spec.hpp"
#include "spec/state_machine_spec.hpp"

namespace loki::runtime {

/// Dense per-study identifiers: indices into StudyDictionary's machine and
/// state tables. The whole experiment hot path (state views, daemon routing,
/// compiled fault programs) trades in these; names survive only at
/// spec-parse and report boundaries.
using MachineId = std::uint32_t;
using StateId = std::uint32_t;

/// "Not interned" — a name outside the study (e.g. a notify-list entry for
/// a machine that never runs). Routing counts these as drops.
inline constexpr std::uint32_t kInvalidId = 0xffffffffu;
/// "State unknown" sentinel in dense state views: the machine has not
/// reported any state yet.
inline constexpr StateId kNoState = kInvalidId;

class StudyDictionary {
 public:
  /// Build from the specs of every machine in the study. Machine order
  /// follows the argument order; the global state list is the union in
  /// first-seen order (specs normally agree on it already).
  static StudyDictionary build(
      const std::vector<const spec::StateMachineSpec*>& specs,
      const std::vector<const spec::FaultSpec*>& fault_specs);

  const std::vector<std::string>& machines() const { return machines_; }
  const std::vector<std::string>& states() const { return states_; }

  std::size_t machine_count() const { return machines_.size(); }
  std::size_t state_count() const { return states_.size(); }

  const std::string& machine_name(MachineId id) const { return machines_.at(id); }
  const std::string& state_name(StateId id) const { return states_.at(id); }

  std::uint32_t machine_index(const std::string& name) const;
  std::uint32_t state_index(const std::string& name) const;

  /// No-throw interning: kInvalidId for names outside the study.
  MachineId try_machine_index(const std::string& name) const;
  StateId try_state_index(const std::string& name) const;

  /// Per-machine event/fault dictionaries.
  const std::vector<std::string>& events_of(const std::string& machine) const;
  std::uint32_t event_index(const std::string& machine,
                            const std::string& event) const;
  /// The machine's whole event name -> index map, for callers that intern
  /// per notification (state machines borrow this instead of rebuilding
  /// their own lookup table per node per experiment).
  const std::map<std::string, std::uint32_t>& event_indices_of(
      const std::string& machine) const;
  const std::vector<spec::FaultSpecEntry>& faults_of(
      const std::string& machine) const;
  std::uint32_t fault_index(const std::string& machine,
                            const std::string& fault) const;

 private:
  std::vector<std::string> machines_;
  std::vector<std::string> states_;
  std::map<std::string, std::uint32_t> machine_idx_;
  std::map<std::string, std::uint32_t> state_idx_;
  std::map<std::string, std::vector<std::string>> events_;
  std::map<std::string, std::map<std::string, std::uint32_t>> event_idx_;
  std::map<std::string, std::vector<spec::FaultSpecEntry>> faults_;
  std::map<std::string, std::map<std::string, std::uint32_t>> fault_idx_;
};

}  // namespace loki::runtime
