// Per-worker execution statistics carried inside protocol-v3 Heartbeat
// frames (runtime/serialize.*) and merged fleet-wide by the coordinator
// (campaign::FleetTelemetry).
//
// Everything here is pure arithmetic over values handed in by the caller:
// latencies arrive as microsecond counts measured in the campaign layer.
// This header must never read a clock itself — src/runtime is inside the
// deterministic core, and tools/loki_lint.py flags wall-clock reads here.
#pragma once

#include <array>
#include <cstdint>

namespace loki::runtime {

/// Fixed-size log-scale latency histogram: bucket b counts experiment
/// latencies in [2^b, 2^(b+1)) microseconds (bucket 0 additionally absorbs
/// 0us; the top bucket absorbs everything above ~2.3 hours). 24 u32 buckets
/// keep a heartbeat frame under 100 bytes free of any allocation, while the
/// log-2 resolution is plenty for p50/p95/p99 over experiment latencies
/// that themselves vary by orders of magnitude.
struct LatencyHistogram {
  static constexpr int kBuckets = 24;

  std::array<std::uint32_t, kBuckets> buckets{};

  /// Bucket index for a latency in microseconds: floor(log2(us)) clamped
  /// to [0, kBuckets-1].
  static int bucket_of(std::uint64_t us);

  /// Geometric midpoint of bucket b in microseconds (the value a sample in
  /// the bucket is reported as by the quantile estimator).
  static double bucket_mid_us(int b);

  void record(std::uint64_t us) { ++buckets[static_cast<std::size_t>(bucket_of(us))]; }

  /// Bucket-wise sum; commutative and associative, so fleet merges are
  /// order-independent.
  void merge(const LatencyHistogram& other);

  std::uint64_t total_count() const;

  /// Estimated q-quantile (q in [0,1]) in microseconds: the midpoint of the
  /// first bucket whose cumulative count reaches q * total. 0 when empty.
  double quantile_us(double q) const;

  bool operator==(const LatencyHistogram&) const = default;
};

/// One worker's cumulative view of its own execution, snapshotted into
/// every heartbeat. Counters are cumulative over the connection (not per
/// lease), so a lost or reordered heartbeat never under-counts: the latest
/// snapshot supersedes all earlier ones.
struct WorkerStatsSnapshot {
  std::uint64_t experiments_completed{0};
  /// Exponentially weighted moving average of per-experiment latency.
  double ewma_latency_us{0.0};
  LatencyHistogram histogram;
  /// Result-plane bytes appended to batch buffers so far.
  std::uint64_t bytes_encoded{0};
  std::uint64_t batches_flushed{0};

  /// Fold one completed experiment into the snapshot. The first sample
  /// seeds the EWMA exactly; later samples blend with kEwmaAlpha.
  void record_experiment_us(std::uint64_t latency_us);

  bool operator==(const WorkerStatsSnapshot&) const = default;
};

/// EWMA smoothing factor: ~0.2 converges within a handful of experiments
/// while still damping one-off outliers (GC pause, cold cache).
inline constexpr double kEwmaAlpha = 0.2;

/// Merge two snapshots into a fleet aggregate: counts and histograms sum;
/// the EWMA merges weighted by experiments_completed, which makes the merge
/// commutative and (count-weighted) order-independent.
WorkerStatsSnapshot merge_snapshots(const WorkerStatsSnapshot& a,
                                    const WorkerStatsSnapshot& b);

}  // namespace loki::runtime
