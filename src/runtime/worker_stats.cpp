#include "runtime/worker_stats.hpp"

#include <bit>

namespace loki::runtime {

int LatencyHistogram::bucket_of(std::uint64_t us) {
  if (us < 2) return 0;
  const int log2 = 63 - std::countl_zero(us);
  return log2 >= kBuckets ? kBuckets - 1 : log2;
}

double LatencyHistogram::bucket_mid_us(int b) {
  // Geometric midpoint of [2^b, 2^(b+1)): sqrt(2) * 2^b, i.e. ~1.414 * 2^b.
  return 1.4142135623730951 * static_cast<double>(std::uint64_t{1} << b);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (int b = 0; b < kBuckets; ++b)
    buckets[static_cast<std::size_t>(b)] +=
        other.buckets[static_cast<std::size_t>(b)];
}

std::uint64_t LatencyHistogram::total_count() const {
  std::uint64_t total = 0;
  for (const std::uint32_t c : buckets) total += c;
  return total;
}

double LatencyHistogram::quantile_us(double q) const {
  const std::uint64_t total = total_count();
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-quantile sample, 1-based; ceil without floating error.
  std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(total) + 0.5);
  if (rank == 0) rank = 1;
  if (rank > total) rank = total;
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets[static_cast<std::size_t>(b)];
    if (seen >= rank) return bucket_mid_us(b);
  }
  return bucket_mid_us(kBuckets - 1);
}

void WorkerStatsSnapshot::record_experiment_us(std::uint64_t latency_us) {
  const double sample = static_cast<double>(latency_us);
  ewma_latency_us = experiments_completed == 0
                        ? sample
                        : kEwmaAlpha * sample +
                              (1.0 - kEwmaAlpha) * ewma_latency_us;
  ++experiments_completed;
  histogram.record(latency_us);
}

WorkerStatsSnapshot merge_snapshots(const WorkerStatsSnapshot& a,
                                    const WorkerStatsSnapshot& b) {
  WorkerStatsSnapshot out;
  out.experiments_completed = a.experiments_completed + b.experiments_completed;
  const double total = static_cast<double>(out.experiments_completed);
  out.ewma_latency_us =
      out.experiments_completed == 0
          ? 0.0
          : (a.ewma_latency_us * static_cast<double>(a.experiments_completed) +
             b.ewma_latency_us * static_cast<double>(b.experiments_completed)) /
                total;
  out.histogram = a.histogram;
  out.histogram.merge(b.histogram);
  out.bytes_encoded = a.bytes_encoded + b.bytes_encoded;
  out.batches_flushed = a.batches_flushed + b.batches_flushed;
  return out;
}

}  // namespace loki::runtime
