// The enhanced (partially distributed) runtime fabric of §3.5:
// one LocalDaemon per host, a single CentralDaemon, and all state-machine
// communication flowing through the daemons (the design selected in §3.4.2).
//
// Responsibilities implemented per the thesis:
//  LocalDaemon (§3.5.2): node entry/exit/crash/restart bookkeeping, shared-
//  memory channels to local nodes, TCP links to the other daemons,
//  notification routing with one-message-per-remote-host batching, watchdog
//  crash detection, writing CRASH records on behalf of silently-crashed
//  nodes, local experiment-end checks.
//  CentralDaemon (§3.5.1): starting the configured nodes, experiment
//  timeout/abort, concluding the experiment when every local daemon reports
//  it has no executing state machines.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "runtime/cost_model.hpp"
#include "runtime/deployment.hpp"
#include "runtime/dictionary.hpp"
#include "runtime/node.hpp"
#include "runtime/recorder.hpp"
#include "sim/world.hpp"

namespace loki::runtime {

class PartiallyDistributedDeployment;

class LocalDaemon {
 public:
  LocalDaemon(sim::World& world, sim::HostId host,
              PartiallyDistributedDeployment& fabric);

  void start();
  /// Host crash & reboot support (§3.6.4): respawn the daemon process after
  /// its host rebooted. Registered nodes died with the host; the restarted
  /// daemon tells its peers to purge their location entries for this host.
  void restart_after_reboot();
  sim::ProcessId pid() const { return pid_; }
  sim::HostId host() const { return host_; }
  bool empty() const { return local_nodes_.empty(); }
  std::uint64_t routed() const { return routed_; }

  void handle_host_purge(sim::HostId host);

  // --- handlers: each runs as a work item on this daemon's process ---------
  void handle_register(LokiNode* node, bool restarted, std::function<void()> ack);
  void handle_exit_notice(const std::string& nickname, const LokiNode* node);
  void handle_crash_notice(const std::string& nickname, bool node_recorded);
  void handle_route(const std::string& from, const std::string& state,
                    std::vector<std::string> recipients);
  void handle_fanout(const std::string& from, const std::string& state,
                     const std::vector<std::string>& targets);
  void handle_location_update(const std::string& nickname, sim::HostId host);
  void handle_location_remove(const std::string& nickname);
  void handle_crash_broadcast(const std::string& nickname);
  void handle_state_request(const std::string& requester);
  void handle_state_request_remote(const std::string& requester,
                                   sim::HostId origin);
  void handle_state_reply(const std::string& requester,
                          std::map<std::string, std::string> states);
  void handle_kill_all();
  void handle_start_instruction(const std::string& nickname);

 private:
  void watchdog_tick();
  void declare_crashed(const std::string& nickname);
  void check_experiment_end();
  void broadcast_locations_on_register(const std::string& nickname);
  std::map<std::string, std::string> collect_local_states() const;

  sim::World& world_;
  sim::HostId host_;
  PartiallyDistributedDeployment& fabric_;
  sim::ProcessId pid_{};

  std::map<std::string, LokiNode*> local_nodes_;
  std::map<std::string, sim::HostId> locations_;  // global location table
  std::map<std::string, SimTime> last_reply_;
  bool reported_empty_{true};
  std::uint64_t routed_{0};
};

/// Fabric parameters beyond the cost model.
struct FabricParams {
  Duration watchdog_interval{milliseconds(100)};
  Duration watchdog_timeout{milliseconds(350)};
};

class PartiallyDistributedDeployment final : public Deployment {
 public:
  PartiallyDistributedDeployment(sim::World& world,
                                 std::vector<sim::HostId> hosts,
                                 const StudyDictionary& dict,
                                 const CostModel& costs, FabricParams params);

  /// Start the local daemons (spawn + interconnect). Must run before nodes.
  void start_daemons();

  // --- Deployment -----------------------------------------------------------
  void node_started(LokiNode& node, bool restarted,
                    std::function<void()> on_ready) override;
  void node_exited(LokiNode& node) override;
  void node_crashed(LokiNode& node, bool explicit_notice) override;
  void send_state_notification(LokiNode& from, const std::string& state,
                               const std::vector<std::string>& recipients) override;
  void request_state_updates(LokiNode& node) override;
  std::uint64_t dropped_notifications() const override { return dropped_; }

  // --- wiring ---------------------------------------------------------------
  void set_recorder(const std::string& nickname, std::shared_ptr<Recorder> rec);
  Recorder* recorder_for(const std::string& nickname);
  LocalDaemon& daemon_on(sim::HostId host);
  const std::vector<std::unique_ptr<LocalDaemon>>& daemons() const {
    return daemons_;
  }
  const StudyDictionary& dict() const { return dict_; }
  const CostModel& costs() const { return costs_; }
  const FabricParams& params() const { return params_; }
  sim::World& world() { return world_; }
  void count_drop() { ++dropped_; }

  /// Central-daemon / harness callbacks.
  std::function<void(sim::HostId host, bool empty)> on_host_empty_change;
  std::function<void(const std::string& nickname, sim::HostId host)> on_node_crash;
  /// Node spawner: the harness creates + starts the node (daemon-initiated
  /// starts, §3.5.1). Runs on the daemon's host.
  std::function<void(const std::string& nickname, sim::HostId host)> node_spawner;

 private:
  sim::World& world_;
  std::vector<sim::HostId> hosts_;
  const StudyDictionary& dict_;
  CostModel costs_;
  FabricParams params_;
  std::vector<std::unique_ptr<LocalDaemon>> daemons_;
  std::map<std::string, std::shared_ptr<Recorder>> recorders_;
  std::uint64_t dropped_{0};
};

/// The central daemon (§3.5.1). Lives on one host; drives experiment
/// start, timeout/abort, and completion detection.
class CentralDaemon {
 public:
  struct Params {
    Duration experiment_timeout{seconds(30)};
    /// Grace period before confirming an all-empty report as the end.
    Duration end_confirm_grace{milliseconds(60)};
  };

  CentralDaemon(sim::World& world, sim::HostId host,
                PartiallyDistributedDeployment& fabric, Params params);

  /// Start the daemon process, hook fabric callbacks, arm the timeout, and
  /// instruct local daemons to start `initial_nodes` (node-file entries
  /// with a host, §3.5.1).
  void start(const std::vector<std::pair<std::string, sim::HostId>>& initial_nodes);

  sim::ProcessId pid() const { return pid_; }
  bool concluded() const { return concluded_; }
  bool timed_out() const { return timed_out_; }

  /// Harness glue: how many restarts are scheduled but not yet executed.
  std::function<int()> pending_restarts;
  /// Fired exactly once when the experiment concludes (normally or by
  /// timeout/abort).
  std::function<void(bool timed_out)> on_conclude;
  /// Crash reports forwarded to the harness (restart manager).
  std::function<void(const std::string& nickname, sim::HostId host)> on_crash_report;

 private:
  void handle_empty_change(sim::HostId host, bool empty);
  void maybe_schedule_confirm();
  void confirm_end();
  void abort_experiment();
  void conclude(bool timed_out);

  sim::World& world_;
  sim::HostId host_;
  PartiallyDistributedDeployment& fabric_;
  Params params_;
  sim::ProcessId pid_{};
  std::map<std::int32_t, bool> host_empty_;
  /// Daemon-liveness poll body; a member (not a self-owning closure cycle)
  /// so it is released with the daemon instead of leaking per experiment.
  std::function<void()> poll_;
  bool saw_any_node_{false};
  bool concluded_{false};
  bool timed_out_{false};
  std::uint64_t confirm_epoch_{0};
};

}  // namespace loki::runtime
