// The enhanced (partially distributed) runtime fabric of §3.5:
// one LocalDaemon per host, a single CentralDaemon, and all state-machine
// communication flowing through the daemons (the design selected in §3.4.2).
//
// Responsibilities implemented per the thesis:
//  LocalDaemon (§3.5.2): node entry/exit/crash/restart bookkeeping, shared-
//  memory channels to local nodes, TCP links to the other daemons,
//  notification routing with one-message-per-remote-host batching, watchdog
//  crash detection, writing CRASH records on behalf of silently-crashed
//  nodes, local experiment-end checks.
//  CentralDaemon (§3.5.1): starting the configured nodes, experiment
//  timeout/abort, concluding the experiment when every local daemon reports
//  it has no executing state machines.
//
// All daemon messaging trades in dense ids (§3.5.6 pushed into the live
// runtime): the node table, location table, last-reply table and crash
// tracking are flat vectors indexed by MachineId, and routed notifications
// carry (MachineId, StateId) instead of strings. Names appear only at the
// harness boundary (node spawning, crash reports) via the study dictionary.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "runtime/compiled_study.hpp"
#include "runtime/cost_model.hpp"
#include "runtime/deployment.hpp"
#include "runtime/dictionary.hpp"
#include "runtime/node.hpp"
#include "runtime/recorder.hpp"
#include "sim/world.hpp"

namespace loki::runtime {

class PartiallyDistributedDeployment;

class LocalDaemon {
 public:
  LocalDaemon(sim::World& world, sim::HostId host,
              PartiallyDistributedDeployment& fabric);

  /// Return to as-constructed state for `host`, reusing the per-machine
  /// table capacity (the deployment pool path — one daemon object serves
  /// every experiment of a study). Clears the stale LokiNode* of the
  /// previous run; valid only while the fabric's dictionary is unchanged.
  void reset(sim::HostId host);

  void start();
  /// Host crash & reboot support (§3.6.4): respawn the daemon process after
  /// its host rebooted. Registered nodes died with the host; the restarted
  /// daemon tells its peers to purge their location entries for this host.
  void restart_after_reboot();
  sim::ProcessId pid() const { return pid_; }
  sim::HostId host() const { return host_; }
  bool empty() const { return local_count_ == 0; }
  std::uint64_t routed() const { return routed_; }

  void handle_host_purge(sim::HostId host);

  // --- handlers: each runs as a work item on this daemon's process ---------
  void handle_register(LokiNode* node, bool restarted, std::function<void()> ack);
  void handle_exit_notice(MachineId machine, const LokiNode* node);
  void handle_crash_notice(MachineId machine, bool node_recorded);
  void handle_route(MachineId from, StateId state,
                    const std::vector<MachineId>& recipients);
  void handle_fanout(MachineId from, StateId state,
                     const std::vector<MachineId>& targets);
  void handle_location_update(MachineId machine, sim::HostId host);
  void handle_location_remove(MachineId machine);
  void handle_crash_broadcast(MachineId machine);
  void handle_state_request(MachineId requester);
  void handle_state_request_remote(MachineId requester, sim::HostId origin);
  void handle_state_reply(MachineId requester,
                          std::vector<std::pair<MachineId, StateId>> states);
  void handle_kill_all();
  void handle_start_instruction(MachineId machine);

 private:
  void watchdog_tick();
  void declare_crashed(MachineId machine);
  void check_experiment_end();
  void broadcast_locations_on_register(MachineId machine);
  std::vector<std::pair<MachineId, StateId>> collect_local_states() const;

  sim::World& world_;
  sim::HostId host_;
  PartiallyDistributedDeployment& fabric_;
  sim::ProcessId pid_{};

  // Flat per-machine tables, indexed by MachineId (study-dictionary dense).
  std::vector<LokiNode*> local_nodes_;   // nullptr = not local
  std::vector<sim::HostId> locations_;   // invalid = unknown; global table
  std::vector<SimTime> last_reply_;      // meaningful only for local nodes
  std::size_t local_count_{0};
  /// Reused per-route grouping scratch: recipients bucketed by host value.
  std::vector<std::vector<MachineId>> route_scratch_;
  bool reported_empty_{true};
  std::uint64_t routed_{0};
};

/// Fabric parameters beyond the cost model.
struct FabricParams {
  Duration watchdog_interval{milliseconds(100)};
  Duration watchdog_timeout{milliseconds(350)};
};

class PartiallyDistributedDeployment final : public Deployment {
 public:
  /// `reserved` points at the study's pre-interned reserved ids
  /// (CompiledStudy::reserved()); nullptr interns them here — the
  /// compile-per-experiment compatibility path.
  PartiallyDistributedDeployment(sim::World& world,
                                 std::vector<sim::HostId> hosts,
                                 const StudyDictionary& dict,
                                 const CostModel& costs, FabricParams params,
                                 const ReservedStudyIds* reserved = nullptr);

  /// Return to as-constructed state for a new experiment of the same study
  /// (the dictionary reference is unchanged by contract; the pool that
  /// calls this is dropped on recompile). Rebinds hosts, costs and fabric
  /// params, resets the pooled local daemons in place — reallocating them
  /// only when the host count changed — and clears the per-run callbacks.
  void reset(const std::vector<sim::HostId>& hosts, const CostModel& costs,
             FabricParams params, const ReservedStudyIds* reserved = nullptr);

  /// Start the local daemons (spawn + interconnect). Must run before nodes.
  void start_daemons();

  // --- Deployment -----------------------------------------------------------
  void node_started(LokiNode& node, bool restarted,
                    std::function<void()> on_ready) override;
  void node_exited(LokiNode& node) override;
  void node_crashed(LokiNode& node, bool explicit_notice) override;
  void send_state_notification(LokiNode& from, StateId state,
                               const std::vector<MachineId>& recipients) override;
  void request_state_updates(LokiNode& node) override;
  std::uint64_t dropped_notifications() const override { return dropped_; }

  // --- wiring ---------------------------------------------------------------
  void set_recorder(const std::string& nickname, std::shared_ptr<Recorder> rec);
  Recorder* recorder_for(MachineId machine);
  LocalDaemon& daemon_on(sim::HostId host);
  const std::vector<std::unique_ptr<LocalDaemon>>& daemons() const {
    return daemons_;
  }
  const StudyDictionary& dict() const { return dict_; }
  const CostModel& costs() const { return costs_; }
  const FabricParams& params() const { return params_; }
  sim::World& world() { return world_; }
  std::size_t host_count() const { return hosts_.size(); }
  void count_drop() { ++dropped_; }
  /// Pre-interned reserved ids (hot in the crash paths).
  StateId crash_state_id() const { return crash_state_id_; }
  std::uint32_t crash_event_index(MachineId machine) const {
    return crash_event_idx_[machine];
  }

  /// Central-daemon / harness callbacks.
  std::function<void(sim::HostId host, bool empty)> on_host_empty_change;
  std::function<void(const std::string& nickname, sim::HostId host)> on_node_crash;
  /// Node spawner: the harness creates + starts the node (daemon-initiated
  /// starts, §3.5.1). Runs on the daemon's host.
  std::function<void(const std::string& nickname, sim::HostId host)> node_spawner;

 private:
  sim::World& world_;
  std::vector<sim::HostId> hosts_;
  const StudyDictionary& dict_;
  CostModel costs_;
  FabricParams params_;
  StateId crash_state_id_{kNoState};
  std::vector<std::uint32_t> crash_event_idx_;  // by MachineId
  std::vector<std::unique_ptr<LocalDaemon>> daemons_;
  std::vector<std::shared_ptr<Recorder>> recorders_;  // by MachineId
  std::uint64_t dropped_{0};
};

/// The central daemon (§3.5.1). Lives on one host; drives experiment
/// start, timeout/abort, and completion detection.
class CentralDaemon {
 public:
  struct Params {
    Duration experiment_timeout{seconds(30)};
    /// Grace period before confirming an all-empty report as the end.
    Duration end_confirm_grace{milliseconds(60)};
  };

  CentralDaemon(sim::World& world, sim::HostId host,
                PartiallyDistributedDeployment& fabric, Params params);

  /// Return to as-constructed state (deployment pool path). Drops the
  /// previous run's harness callbacks — the pooled object must never hold a
  /// std::function into a dead ExperimentRun.
  void reset(sim::HostId host, Params params);

  /// Start the daemon process, hook fabric callbacks, arm the timeout, and
  /// instruct local daemons to start `initial_nodes` (node-file entries
  /// with a host, §3.5.1).
  void start(const std::vector<std::pair<std::string, sim::HostId>>& initial_nodes);

  sim::ProcessId pid() const { return pid_; }
  bool concluded() const { return concluded_; }
  bool timed_out() const { return timed_out_; }

  /// Harness glue: how many restarts are scheduled but not yet executed.
  std::function<int()> pending_restarts;
  /// Fired exactly once when the experiment concludes (normally or by
  /// timeout/abort).
  std::function<void(bool timed_out)> on_conclude;
  /// Crash reports forwarded to the harness (restart manager).
  std::function<void(const std::string& nickname, sim::HostId host)> on_crash_report;

 private:
  void handle_empty_change(sim::HostId host, bool empty);
  void maybe_schedule_confirm();
  void confirm_end();
  void abort_experiment();
  void conclude(bool timed_out);

  sim::World& world_;
  sim::HostId host_;
  PartiallyDistributedDeployment& fabric_;
  Params params_;
  sim::ProcessId pid_{};
  std::vector<char> host_empty_;  // by host id value
  /// Daemon-liveness poll body; a member (not a self-owning closure cycle)
  /// so it is released with the daemon instead of leaking per experiment.
  std::function<void()> poll_;
  bool saw_any_node_{false};
  bool concluded_{false};
  bool timed_out_{false};
  std::uint64_t confirm_epoch_{0};
};

}  // namespace loki::runtime
