#include "runtime/serialize.hpp"

#include <memory>
#include <utility>

#include "runtime/app_registry.hpp"
#include "util/codec.hpp"
#include "util/digest.hpp"
#include "util/error.hpp"

namespace loki::runtime {

namespace {

using codec::DecodeError;
using codec::Reader;
using codec::Writer;

constexpr std::uint8_t kKindParams = 1;
constexpr std::uint8_t kKindResult = 2;
constexpr std::uint8_t kKindStudy = 3;

const char kMagic[4] = {'L', 'O', 'K', 'I'};

void put_header(Writer& w, std::uint8_t kind) {
  w.bytes(reinterpret_cast<const std::uint8_t*>(kMagic), 4);
  w.u16(kWireVersion);
  w.u8(kind);
}

void check_header(Reader& r, std::uint8_t kind) {
  char magic[4];
  for (char& c : magic) c = static_cast<char>(r.u8());
  if (magic[0] != 'L' || magic[1] != 'O' || magic[2] != 'K' || magic[3] != 'I')
    throw DecodeError("wire: bad magic (not a Loki wire message)");
  const std::uint16_t version = r.u16();
  if (version != kWireVersion)
    throw DecodeError("wire: version mismatch: message has v" +
                      std::to_string(version) + ", this build speaks v" +
                      std::to_string(kWireVersion));
  const std::uint8_t got = r.u8();
  if (got != kind)
    throw DecodeError("wire: expected message kind " + std::to_string(kind) +
                      ", got " + std::to_string(got));
}

// --- shared small structs ----------------------------------------------------

void put_duration(Writer& w, Duration d) { w.i64(d.ns); }
Duration get_duration(Reader& r) { return Duration{r.i64()}; }

void put_clock(Writer& w, const sim::ClockParams& c) {
  put_duration(w, c.alpha);
  w.f64(c.beta);
  w.i64(c.granularity_ns);
}
sim::ClockParams get_clock(Reader& r) {
  sim::ClockParams c;
  c.alpha = get_duration(r);
  c.beta = r.f64();
  c.granularity_ns = r.i64();
  return c;
}

void put_network(Writer& w, const sim::NetworkParams& n) {
  put_duration(w, n.ipc.base);
  put_duration(w, n.ipc.jitter_mean);
  put_duration(w, n.tcp.base);
  put_duration(w, n.tcp.jitter_mean);
}
sim::NetworkParams get_network(Reader& r) {
  sim::NetworkParams n;
  n.ipc.base = get_duration(r);
  n.ipc.jitter_mean = get_duration(r);
  n.tcp.base = get_duration(r);
  n.tcp.jitter_mean = get_duration(r);
  return n;
}

template <typename T, typename Fn>
void put_vec(Writer& w, const std::vector<T>& v, Fn put_one) {
  w.u64(v.size());
  for (const T& x : v) put_one(x);
}

std::uint64_t get_count(Reader& r) {
  const std::uint64_t n = r.u64();
  // A count can never exceed the bytes remaining (every element takes at
  // least one byte); reject early instead of attempting a huge reserve.
  if (n > r.remaining())
    throw DecodeError("wire: element count " + std::to_string(n) +
                      " exceeds remaining bytes");
  return n;
}

// --- ExperimentParams body ---------------------------------------------------

void put_params_body(Writer& w, const ExperimentParams& p) {
  w.u64(p.seed);

  put_vec(w, p.hosts, [&](const HostConfig& h) {
    w.str(h.name);
    put_duration(w, h.sched.quantum);
    put_duration(w, h.sched.ctx_switch);
    w.f64(h.sched.wake_preempt_prob);
    w.boolean(h.clock.has_value());
    if (h.clock) put_clock(w, *h.clock);
    w.f64(h.load_duty);
    put_duration(w, h.load_chunk);
  });

  put_vec(w, p.nodes, [&](const NodeConfig& n) {
    if (n.app_name.empty())
      throw ConfigError("wire: node '" + n.nickname +
                        "': app_name is empty — only nodes with a registered "
                        "application identity can be serialized");
    w.str(n.nickname);
    w.str(n.sm_spec.name());
    w.str(spec::serialize_state_machine_spec(n.sm_spec));
    w.str(spec::serialize_fault_spec(n.fault_spec));
    w.str(n.app_name);
    w.str(n.app_args);
    w.boolean(n.initial_host.has_value());
    if (n.initial_host) w.str(*n.initial_host);
    w.boolean(n.enter_at.has_value());
    if (n.enter_at) put_duration(w, *n.enter_at);
    w.str(n.enter_host);
    w.boolean(n.restart.enabled);
    put_duration(w, n.restart.delay);
    w.u8(static_cast<std::uint8_t>(n.restart.placement));
    w.str(n.restart.fixed_host);
    w.i64(n.restart.max_restarts);
  });

  put_vec(w, p.host_crashes, [&](const HostCrashPlan& c) {
    w.str(c.host);
    put_duration(w, c.at);
    put_duration(w, c.reboot_after);
  });

  w.u8(static_cast<std::uint8_t>(p.design));

  put_duration(w, p.costs.node_notification_handler);
  put_duration(w, p.costs.daemon_route);
  put_duration(w, p.costs.register_handshake);
  put_duration(w, p.costs.watchdog_handler);
  put_duration(w, p.costs.probe_injection);
  put_duration(w, p.costs.app_default_handler);
  put_duration(w, p.costs.sync_stamp_handler);

  put_duration(w, p.fabric.watchdog_interval);
  put_duration(w, p.fabric.watchdog_timeout);

  put_duration(w, p.central.experiment_timeout);
  put_duration(w, p.central.end_confirm_grace);

  w.i64(p.sync.messages_per_pair);
  put_duration(w, p.sync.spacing);
  put_duration(w, p.sync.stamp_cost);

  put_network(w, p.app_lan);
  put_network(w, p.control_lan);

  put_duration(w, p.max_clock_offset);
  w.f64(p.max_drift_ppm);
  w.i64(p.clock_granularity_ns);
  put_duration(w, p.hard_limit);
}

ExperimentParams get_params_body(Reader& r) {
  ExperimentParams p;
  p.seed = r.u64();

  const std::uint64_t n_hosts = get_count(r);
  p.hosts.reserve(n_hosts);
  for (std::uint64_t i = 0; i < n_hosts; ++i) {
    HostConfig h;
    h.name = r.str();
    h.sched.quantum = get_duration(r);
    h.sched.ctx_switch = get_duration(r);
    h.sched.wake_preempt_prob = r.f64();
    if (r.boolean()) h.clock = get_clock(r);
    h.load_duty = r.f64();
    h.load_chunk = get_duration(r);
    p.hosts.push_back(std::move(h));
  }

  const std::uint64_t n_nodes = get_count(r);
  p.nodes.reserve(n_nodes);
  for (std::uint64_t i = 0; i < n_nodes; ++i) {
    NodeConfig n;
    n.nickname = r.str();
    const std::string sm_name = r.str();
    n.sm_spec = spec::parse_state_machine_spec(r.str(), "wire:" + n.nickname);
    n.sm_spec.set_name(sm_name);
    n.fault_spec = spec::parse_fault_spec(r.str(), "wire:" + n.nickname);
    n.app_name = r.str();
    n.app_args = r.str();
    n.app_factory = make_application_factory(n.app_name, n.app_args);
    if (r.boolean()) n.initial_host = r.str();
    if (r.boolean()) n.enter_at = get_duration(r);
    n.enter_host = r.str();
    n.restart.enabled = r.boolean();
    n.restart.delay = get_duration(r);
    const std::uint8_t placement = r.u8();
    if (placement > static_cast<std::uint8_t>(RestartPolicy::Placement::Fixed))
      throw DecodeError("wire: restart placement out of range");
    n.restart.placement = static_cast<RestartPolicy::Placement>(placement);
    n.restart.fixed_host = r.str();
    n.restart.max_restarts = static_cast<int>(r.i64());
    p.nodes.push_back(std::move(n));
  }

  const std::uint64_t n_crashes = get_count(r);
  p.host_crashes.reserve(n_crashes);
  for (std::uint64_t i = 0; i < n_crashes; ++i) {
    HostCrashPlan c;
    c.host = r.str();
    c.at = get_duration(r);
    c.reboot_after = get_duration(r);
    p.host_crashes.push_back(std::move(c));
  }

  const std::uint8_t design = r.u8();
  if (design > static_cast<std::uint8_t>(TransportDesign::Direct))
    throw DecodeError("wire: transport design out of range");
  p.design = static_cast<TransportDesign>(design);

  p.costs.node_notification_handler = get_duration(r);
  p.costs.daemon_route = get_duration(r);
  p.costs.register_handshake = get_duration(r);
  p.costs.watchdog_handler = get_duration(r);
  p.costs.probe_injection = get_duration(r);
  p.costs.app_default_handler = get_duration(r);
  p.costs.sync_stamp_handler = get_duration(r);

  p.fabric.watchdog_interval = get_duration(r);
  p.fabric.watchdog_timeout = get_duration(r);

  p.central.experiment_timeout = get_duration(r);
  p.central.end_confirm_grace = get_duration(r);

  p.sync.messages_per_pair = static_cast<int>(r.i64());
  p.sync.spacing = get_duration(r);
  p.sync.stamp_cost = get_duration(r);

  p.app_lan = get_network(r);
  p.control_lan = get_network(r);

  p.max_clock_offset = get_duration(r);
  p.max_drift_ppm = r.f64();
  p.clock_granularity_ns = r.i64();
  p.hard_limit = get_duration(r);
  return p;
}

// --- ExperimentResult body ---------------------------------------------------

void put_timeline(Writer& w, const LocalTimeline& t) {
  w.str(t.nickname);
  w.str(t.initial_host);
  put_vec(w, t.machines, [&](const std::string& s) { w.str(s); });
  put_vec(w, t.states, [&](const std::string& s) { w.str(s); });
  put_vec(w, t.events, [&](const std::string& s) { w.str(s); });
  put_vec(w, t.faults, [&](const TimelineFaultEntry& f) {
    w.str(f.name);
    w.str(f.expr_text);
    w.u8(static_cast<std::uint8_t>(f.trigger));
  });
  put_vec(w, t.records, [&](const TimelineRecord& rec) {
    w.u8(static_cast<std::uint8_t>(rec.type));
    w.u32(rec.event_index);
    w.u32(rec.state_index);
    w.u32(rec.fault_index);
    w.str(rec.host);
    w.i64(rec.time.ns);
  });
}

std::vector<std::string> get_string_vec(Reader& r) {
  const std::uint64_t n = get_count(r);
  std::vector<std::string> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(r.str());
  return v;
}

/// The study-invariant prefix of a timeline: everything before the records.
/// This is the unit the ResultInterner memoizes — within a study it is
/// byte-identical across every result from the same node.
void get_timeline_header(Reader& r, LocalTimeline& t) {
  t.nickname = r.str();
  t.initial_host = r.str();
  t.machines = get_string_vec(r);
  t.states = get_string_vec(r);
  t.events = get_string_vec(r);
  const std::uint64_t n_faults = get_count(r);
  t.faults.reserve(n_faults);
  for (std::uint64_t i = 0; i < n_faults; ++i) {
    TimelineFaultEntry f;
    f.name = r.str();
    f.expr_text = r.str();
    const std::uint8_t trig = r.u8();
    if (trig > static_cast<std::uint8_t>(spec::Trigger::Always))
      throw DecodeError("wire: fault trigger out of range");
    f.trigger = static_cast<spec::Trigger>(trig);
    t.faults.push_back(std::move(f));
  }
}

/// Advance past a timeline header without materializing any strings —
/// the interner's cheap scan to delimit the memo key span.
void skip_timeline_header(Reader& r) {
  const auto skip_str = [&r] { r.skip(r.u64()); };
  skip_str();  // nickname
  skip_str();  // initial_host
  for (int vec = 0; vec < 3; ++vec) {  // machines, states, events
    const std::uint64_t n = get_count(r);
    for (std::uint64_t i = 0; i < n; ++i) skip_str();
  }
  const std::uint64_t n_faults = get_count(r);
  for (std::uint64_t i = 0; i < n_faults; ++i) {
    skip_str();  // name
    skip_str();  // expr_text
    r.u8();      // trigger (validated on the decode pass)
  }
}

void get_timeline_records(Reader& r, LocalTimeline& t) {
  const std::uint64_t n_records = get_count(r);
  t.records.reserve(n_records);
  for (std::uint64_t i = 0; i < n_records; ++i) {
    TimelineRecord rec;
    const std::uint8_t type = r.u8();
    if (type > static_cast<std::uint8_t>(RecordType::Restart))
      throw DecodeError("wire: timeline record type out of range");
    rec.type = static_cast<RecordType>(type);
    rec.event_index = r.u32();
    rec.state_index = r.u32();
    rec.fault_index = r.u32();
    rec.host = r.str();
    rec.time = LocalTime{r.i64()};
    t.records.push_back(std::move(rec));
  }
}

LocalTimeline get_timeline(Reader& r) {
  LocalTimeline t;
  get_timeline_header(r, t);
  get_timeline_records(r, t);
  return t;
}

}  // namespace

/// The interner hot path (friend of ResultInterner): delimit the header
/// span with a string-free skip scan, probe the memo with a string_view
/// over the frame bytes, and only parse (and cache) on the first miss.
/// Cached entries hold empty record vectors — records always decode live.
LocalTimeline interned_timeline(Reader& r, ResultInterner& interner) {
  const std::size_t start = r.position();
  skip_timeline_header(r);
  const std::size_t end = r.position();
  const std::string_view key(reinterpret_cast<const char*>(r.data() + start),
                             end - start);
  LocalTimeline t;
  const auto it = interner.headers_.find(key);
  if (it != interner.headers_.end()) {
    ++interner.hits_;
    t = it->second;
  } else {
    ++interner.misses_;
    Reader header(r.data() + start, end - start);
    get_timeline_header(header, t);
    header.expect_done();
    interner.headers_.emplace(std::string(key), t);
  }
  get_timeline_records(r, t);
  return t;
}

namespace {

// v2 layout: dense tables, no string-keyed maps. Nodes travel interleaved
// (timeline + its user messages), hosts as one table with parallel columns
// (name, start, end, true clock), ground-truth machines likewise (name,
// state sequence, crash times). Parallel invariants hold by construction on
// decode — there is no per-column count to mismatch.
void put_result_body(Writer& w, const ExperimentResult& res) {
  static const std::vector<std::string> kNoMessages;
  w.u64(res.timelines.size());
  for (std::size_t i = 0; i < res.timelines.size(); ++i) {
    put_timeline(w, res.timelines[i]);
    const std::vector<std::string>& messages =
        i < res.user_messages.size() ? res.user_messages[i] : kNoMessages;
    put_vec(w, messages, [&](const std::string& m) { w.str(m); });
  }

  put_vec(w, res.sync_samples, [&](const clocksync::SyncSample& s) {
    w.str(s.from);
    w.str(s.to);
    w.i64(s.send.ns);
    w.i64(s.recv.ns);
  });

  w.u64(res.hosts.size());
  for (std::size_t i = 0; i < res.hosts.size(); ++i) {
    w.str(res.hosts[i]);
    w.i64(res.start_local[i].ns);
    w.i64(res.end_local[i].ns);
    put_clock(w, res.true_clocks[i]);
  }

  w.u64(res.truth.machines.size());
  for (std::size_t i = 0; i < res.truth.machines.size(); ++i) {
    w.str(res.truth.machines[i]);
    put_vec(w, res.truth.state_seq[i],
            [&](const std::pair<SimTime, std::string>& e) {
              w.i64(e.first.ns);
              w.str(e.second);
            });
    put_vec(w, res.truth.crashes[i], [&](SimTime t) { w.i64(t.ns); });
  }
  put_vec(w, res.truth.injections, [&](const TrueInjection& inj) {
    w.str(inj.machine);
    w.str(inj.fault);
    w.i64(inj.at.ns);
  });

  w.i64(res.start_phys.ns);
  w.i64(res.end_phys.ns);
  w.boolean(res.completed);
  w.boolean(res.timed_out);
  w.u64(res.dropped_notifications);
  w.u64(res.control_messages);
  w.u64(res.app_messages);
}

ExperimentResult get_result_body(Reader& r, ResultInterner* interner) {
  ExperimentResult res;

  const std::uint64_t n_nodes = get_count(r);
  res.timelines.reserve(n_nodes);
  res.user_messages.reserve(n_nodes);
  for (std::uint64_t i = 0; i < n_nodes; ++i) {
    res.timelines.push_back(interner != nullptr ? interned_timeline(r, *interner)
                                                : get_timeline(r));
    res.user_messages.push_back(get_string_vec(r));
  }

  const std::uint64_t n_samples = get_count(r);
  res.sync_samples.reserve(n_samples);
  for (std::uint64_t i = 0; i < n_samples; ++i) {
    clocksync::SyncSample s;
    s.from = r.str();
    s.to = r.str();
    s.send = LocalTime{r.i64()};
    s.recv = LocalTime{r.i64()};
    res.sync_samples.push_back(std::move(s));
  }

  const std::uint64_t n_hosts = get_count(r);
  res.hosts.reserve(n_hosts);
  res.start_local.reserve(n_hosts);
  res.end_local.reserve(n_hosts);
  res.true_clocks.reserve(n_hosts);
  for (std::uint64_t i = 0; i < n_hosts; ++i) {
    res.hosts.push_back(r.str());
    res.start_local.push_back(LocalTime{r.i64()});
    res.end_local.push_back(LocalTime{r.i64()});
    res.true_clocks.push_back(get_clock(r));
  }

  const std::uint64_t n_machines = get_count(r);
  res.truth.machines.reserve(n_machines);
  res.truth.state_seq.reserve(n_machines);
  res.truth.crashes.reserve(n_machines);
  for (std::uint64_t i = 0; i < n_machines; ++i) {
    res.truth.machines.push_back(r.str());
    const std::uint64_t n_entries = get_count(r);
    std::vector<std::pair<SimTime, std::string>> seq;
    seq.reserve(n_entries);
    for (std::uint64_t j = 0; j < n_entries; ++j) {
      const SimTime t{r.i64()};
      seq.emplace_back(t, r.str());
    }
    res.truth.state_seq.push_back(std::move(seq));
    const std::uint64_t n_times = get_count(r);
    std::vector<SimTime> times;
    times.reserve(n_times);
    for (std::uint64_t j = 0; j < n_times; ++j)
      times.push_back(SimTime{r.i64()});
    res.truth.crashes.push_back(std::move(times));
  }
  const std::uint64_t n_inj = get_count(r);
  res.truth.injections.reserve(n_inj);
  for (std::uint64_t i = 0; i < n_inj; ++i) {
    TrueInjection inj;
    inj.machine = r.str();
    inj.fault = r.str();
    inj.at = SimTime{r.i64()};
    res.truth.injections.push_back(std::move(inj));
  }

  res.start_phys = SimTime{r.i64()};
  res.end_phys = SimTime{r.i64()};
  res.completed = r.boolean();
  res.timed_out = r.boolean();
  res.dropped_notifications = r.u64();
  res.control_messages = r.u64();
  res.app_messages = r.u64();
  return res;
}

}  // namespace

// --- public API --------------------------------------------------------------

std::vector<std::uint8_t> encode_experiment_params(const ExperimentParams& p) {
  Writer w;
  put_header(w, kKindParams);
  put_params_body(w, p);
  return w.take();
}

ExperimentParams decode_experiment_params(const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  check_header(r, kKindParams);
  ExperimentParams p = get_params_body(r);
  r.expect_done();
  return p;
}

std::vector<std::uint8_t> encode_experiment_result(const ExperimentResult& res) {
  Writer w;
  put_header(w, kKindResult);
  put_result_body(w, res);
  return w.take();
}

void encode_experiment_result(const ExperimentResult& res,
                              std::vector<std::uint8_t>& out) {
  Writer w(out);
  put_header(w, kKindResult);
  put_result_body(w, res);
}

ExperimentResult decode_experiment_result(const std::uint8_t* data,
                                          std::size_t size,
                                          ResultInterner* interner) {
  Reader r(data, size);
  check_header(r, kKindResult);
  ExperimentResult res = get_result_body(r, interner);
  r.expect_done();
  return res;
}

ExperimentResult decode_experiment_result(const std::uint8_t* data,
                                          std::size_t size) {
  return decode_experiment_result(data, size, nullptr);
}

ExperimentResult decode_experiment_result(const std::vector<std::uint8_t>& bytes) {
  return decode_experiment_result(bytes.data(), bytes.size(), nullptr);
}

std::vector<std::uint8_t> encode_study_params(const StudyParams& study) {
  if (!study.make_params)
    throw ConfigError("wire: study '" + study.name + "' has no make_params");
  Writer w;
  put_header(w, kKindStudy);
  w.str(study.name);
  const int n = study.experiments;
  w.u32(n < 0 ? 0u : static_cast<std::uint32_t>(n));
  for (int k = 0; k < n; ++k) put_params_body(w, study.make_params(k));
  return w.take();
}

StudyParams decode_study_params(const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  check_header(r, kKindStudy);
  StudyParams study;
  study.name = r.str();
  const std::uint32_t n = r.u32();
  // Same sanity bound as get_count(): every params body takes at least one
  // byte, so a corrupt count must not become a giant reserve().
  if (n > r.remaining())
    throw DecodeError("wire: study experiment count " + std::to_string(n) +
                      " exceeds remaining bytes");
  auto materialized = std::make_shared<std::vector<ExperimentParams>>();
  materialized->reserve(n);
  for (std::uint32_t k = 0; k < n; ++k)
    materialized->push_back(get_params_body(r));
  r.expect_done();
  study.experiments = static_cast<int>(n);
  study.make_params = [materialized](int k) {
    if (k < 0 || static_cast<std::size_t>(k) >= materialized->size())
      throw ConfigError("wire: replayed study index " + std::to_string(k) +
                        " out of range");
    return (*materialized)[static_cast<std::size_t>(k)];
  };
  return study;
}

std::string experiment_cache_key(const ExperimentParams& p) {
  return util::sha256_hex(encode_experiment_params(p));
}

// --- worker frame protocol ---------------------------------------------------

namespace {

Writer frame_writer(WorkerFrame type) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(type));
  return w;
}

/// Reader positioned after the type byte, which must match `expected`.
Reader frame_reader(const std::vector<std::uint8_t>& frame, WorkerFrame expected) {
  if (worker_frame_type(frame) != expected)
    throw DecodeError("worker frame: expected frame type " +
                      std::to_string(static_cast<int>(expected)) + ", got " +
                      std::to_string(static_cast<int>(frame[0])));
  Reader r(frame);
  r.u8();  // consume the type byte
  return r;
}

/// Rest-of-frame raw bytes (Ping/Pong payloads, the embedded study).
std::vector<std::uint8_t> remaining_bytes(Reader& r,
                                          const std::vector<std::uint8_t>& frame) {
  const std::size_t start = frame.size() - r.remaining();
  return std::vector<std::uint8_t>(frame.begin() + static_cast<std::ptrdiff_t>(start),
                                   frame.end());
}

}  // namespace

WireErrorCategory classify_error(const std::exception& e) {
  if (dynamic_cast<const ConfigError*>(&e) != nullptr)
    return WireErrorCategory::Config;
  if (dynamic_cast<const LogicError*>(&e) != nullptr)
    return WireErrorCategory::Logic;
  return WireErrorCategory::Runtime;
}

void rethrow_wire_error(WireErrorCategory category, const std::string& message) {
  switch (category) {
    case WireErrorCategory::Config:
      throw ConfigError(message);
    case WireErrorCategory::Logic:
      throw LogicError(message);
    case WireErrorCategory::Runtime:
      break;
  }
  throw std::runtime_error(message);
}

WorkerFrame worker_frame_type(const std::vector<std::uint8_t>& frame) {
  if (frame.empty()) throw DecodeError("worker frame: empty frame");
  const std::uint8_t type = frame[0];
  if (type < static_cast<std::uint8_t>(WorkerFrame::Hello) ||
      type > static_cast<std::uint8_t>(WorkerFrame::ResultBatch))
    throw DecodeError("worker frame: unknown frame type " + std::to_string(type));
  return static_cast<WorkerFrame>(type);
}

std::vector<std::uint8_t> encode_hello_frame(const StudyParams* study,
                                             std::uint32_t heartbeat_interval_ms) {
  Writer w = frame_writer(WorkerFrame::Hello);
  w.u16(kWorkerProtocolVersion);
  w.u32(heartbeat_interval_ms);
  w.boolean(study != nullptr);
  if (study != nullptr) {
    const std::vector<std::uint8_t> encoded = encode_study_params(*study);
    w.bytes(encoded.data(), encoded.size());
  }
  return w.take();
}

HelloFrame decode_hello_frame(const std::vector<std::uint8_t>& frame) {
  Reader r = frame_reader(frame, WorkerFrame::Hello);
  HelloFrame hello;
  hello.protocol_version = r.u16();
  hello.heartbeat_interval_ms = r.u32();
  if (r.boolean()) hello.study = decode_study_params(remaining_bytes(r, frame));
  else r.expect_done();
  return hello;
}

std::vector<std::uint8_t> encode_hello_ack_frame(std::uint64_t worker_pid) {
  Writer w = frame_writer(WorkerFrame::HelloAck);
  w.u16(kWorkerProtocolVersion);
  w.u64(worker_pid);
  return w.take();
}

HelloAckFrame decode_hello_ack_frame(const std::vector<std::uint8_t>& frame) {
  Reader r = frame_reader(frame, WorkerFrame::HelloAck);
  HelloAckFrame ack;
  ack.protocol_version = r.u16();
  ack.worker_pid = r.u64();
  r.expect_done();
  return ack;
}

std::vector<std::uint8_t> encode_lease_frame(const LeaseFrame& lease) {
  Writer w = frame_writer(WorkerFrame::Lease);
  w.u32(lease.id);
  w.u32(lease.lo);
  w.u32(lease.hi);
  w.u32(lease.step);
  return w.take();
}

LeaseFrame decode_lease_frame(const std::vector<std::uint8_t>& frame) {
  Reader r = frame_reader(frame, WorkerFrame::Lease);
  LeaseFrame lease;
  lease.id = r.u32();
  lease.lo = r.u32();
  lease.hi = r.u32();
  lease.step = r.u32();
  r.expect_done();
  if (lease.step < 1)
    throw DecodeError("worker frame: lease stride must be >= 1");
  return lease;
}

namespace {

std::vector<std::uint8_t> encode_lease_id_frame(WorkerFrame type,
                                                std::uint32_t lease_id) {
  Writer w = frame_writer(type);
  w.u32(lease_id);
  return w.take();
}

std::uint32_t decode_lease_id_frame(const std::vector<std::uint8_t>& frame,
                                    WorkerFrame type) {
  Reader r = frame_reader(frame, type);
  const std::uint32_t id = r.u32();
  r.expect_done();
  return id;
}

}  // namespace

std::vector<std::uint8_t> encode_heartbeat_frame(std::uint32_t lease_id,
                                                 const WorkerStatsSnapshot& stats) {
  Writer w = frame_writer(WorkerFrame::Heartbeat);
  w.u32(lease_id);
  w.u64(stats.experiments_completed);
  w.f64(stats.ewma_latency_us);
  for (const std::uint32_t bucket : stats.histogram.buckets) w.u32(bucket);
  w.u64(stats.bytes_encoded);
  w.u64(stats.batches_flushed);
  return w.take();
}

HeartbeatFrame decode_heartbeat_frame(const std::vector<std::uint8_t>& frame) {
  Reader r = frame_reader(frame, WorkerFrame::Heartbeat);
  HeartbeatFrame hb;
  hb.lease_id = r.u32();
  hb.stats.experiments_completed = r.u64();
  hb.stats.ewma_latency_us = r.f64();
  for (std::uint32_t& bucket : hb.stats.histogram.buckets) bucket = r.u32();
  hb.stats.bytes_encoded = r.u64();
  hb.stats.batches_flushed = r.u64();
  r.expect_done();
  return hb;
}

std::vector<std::uint8_t> encode_lease_done_frame(std::uint32_t lease_id) {
  return encode_lease_id_frame(WorkerFrame::LeaseDone, lease_id);
}

std::uint32_t decode_lease_done_frame(const std::vector<std::uint8_t>& frame) {
  return decode_lease_id_frame(frame, WorkerFrame::LeaseDone);
}

std::vector<std::uint8_t> encode_result_ok_frame(std::uint32_t index,
                                                 const ExperimentResult& result) {
  std::vector<std::uint8_t> out;
  encode_result_ok_frame(index, result, out);
  return out;
}

void encode_result_ok_frame(std::uint32_t index, const ExperimentResult& result,
                            std::vector<std::uint8_t>& out) {
  out.clear();
  Writer w(out);
  w.u8(static_cast<std::uint8_t>(WorkerFrame::Result));
  w.u8(0);  // ok
  w.u32(index);
  // The embedded envelope is encoded in place — no per-result temporary.
  put_header(w, kKindResult);
  put_result_body(w, result);
}

std::vector<std::uint8_t> encode_result_error_frame(std::uint32_t index,
                                                    WireErrorCategory category,
                                                    const std::string& message) {
  Writer w = frame_writer(WorkerFrame::Result);
  w.u8(1);  // error
  w.u32(index);
  w.u8(static_cast<std::uint8_t>(category));
  w.str(message);
  return w.take();
}

ResultFrame decode_result_frame(const std::vector<std::uint8_t>& frame,
                                ResultInterner* interner) {
  Reader r = frame_reader(frame, WorkerFrame::Result);
  ResultFrame result;
  const std::uint8_t status = r.u8();
  if (status > 1)
    throw DecodeError("worker frame: result status byte out of range");
  result.ok = status == 0;
  result.index = r.u32();
  if (result.ok) {
    // Decode the embedded envelope in place — no slicing copy.
    result.result = decode_experiment_result(frame.data() + r.position(),
                                             r.remaining(), interner);
  } else {
    const std::uint8_t category = r.u8();
    if (category > static_cast<std::uint8_t>(WireErrorCategory::Logic))
      throw DecodeError("worker frame: error category byte out of range");
    result.category = static_cast<WireErrorCategory>(category);
    result.message = r.str();
    r.expect_done();
  }
  return result;
}

ResultFrame decode_result_frame(const std::vector<std::uint8_t>& frame) {
  return decode_result_frame(frame, nullptr);
}

// --- batched results ---------------------------------------------------------

void begin_result_batch(std::vector<std::uint8_t>& batch) {
  batch.clear();
  batch.push_back(static_cast<std::uint8_t>(WorkerFrame::ResultBatch));
}

bool result_batch_empty(const std::vector<std::uint8_t>& batch) {
  return batch.size() <= 1;
}

void append_result_ok_entry(std::vector<std::uint8_t>& batch,
                            std::uint32_t index,
                            const ExperimentResult& result) {
  Writer w(batch);
  w.u8(0);  // ok
  w.u32(index);
  // Length prefix is only known after the envelope is written: reserve the
  // slot, encode in place, patch.
  const std::size_t len_pos = w.size();
  w.u64(0);
  put_header(w, kKindResult);
  put_result_body(w, result);
  w.patch_u64(len_pos, w.size() - len_pos - 8);
}

void append_result_error_entry(std::vector<std::uint8_t>& batch,
                               std::uint32_t index, WireErrorCategory category,
                               const std::string& message) {
  Writer w(batch);
  w.u8(1);  // error
  w.u32(index);
  w.u8(static_cast<std::uint8_t>(category));
  w.str(message);
}

namespace {

/// Shared walk over a batch's entries. decode=false is count-only mode:
/// envelope bytes are skipped, not decoded.
std::vector<ResultFrame> walk_result_batch(
    const std::vector<std::uint8_t>& frame, bool decode,
    ResultInterner* interner = nullptr) {
  Reader r = frame_reader(frame, WorkerFrame::ResultBatch);
  std::vector<ResultFrame> entries;
  while (!r.done()) {
    ResultFrame entry;
    const std::uint8_t status = r.u8();
    if (status > 1)
      throw DecodeError("worker frame: batch entry status byte out of range");
    entry.ok = status == 0;
    entry.index = r.u32();
    if (entry.ok) {
      const std::uint64_t len = r.u64();
      if (len > r.remaining())
        throw DecodeError("worker frame: batch entry length " +
                          std::to_string(len) + " exceeds remaining bytes");
      if (decode)
        entry.result = decode_experiment_result(frame.data() + r.position(),
                                                static_cast<std::size_t>(len),
                                                interner);
      r.skip(len);
    } else {
      const std::uint8_t category = r.u8();
      if (category > static_cast<std::uint8_t>(WireErrorCategory::Logic))
        throw DecodeError("worker frame: error category byte out of range");
      entry.category = static_cast<WireErrorCategory>(category);
      entry.message = r.str();
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

}  // namespace

std::vector<ResultFrame> decode_result_batch_frame(
    const std::vector<std::uint8_t>& frame) {
  return walk_result_batch(frame, /*decode=*/true);
}

std::vector<ResultFrame> decode_result_batch_frame(
    const std::vector<std::uint8_t>& frame, ResultInterner* interner) {
  return walk_result_batch(frame, /*decode=*/true, interner);
}

std::size_t result_batch_entry_count(const std::vector<std::uint8_t>& frame) {
  return walk_result_batch(frame, /*decode=*/false).size();
}

std::vector<std::uint8_t> encode_shutdown_frame() {
  return frame_writer(WorkerFrame::Shutdown).take();
}

namespace {

std::vector<std::uint8_t> encode_payload_frame(
    WorkerFrame type, const std::vector<std::uint8_t>& payload) {
  Writer w = frame_writer(type);
  if (!payload.empty()) w.bytes(payload.data(), payload.size());
  return w.take();
}

std::vector<std::uint8_t> decode_payload_frame(
    const std::vector<std::uint8_t>& frame, WorkerFrame type) {
  Reader r = frame_reader(frame, type);
  return remaining_bytes(r, frame);
}

}  // namespace

std::vector<std::uint8_t> encode_ping_frame(const std::vector<std::uint8_t>& payload) {
  return encode_payload_frame(WorkerFrame::Ping, payload);
}

std::vector<std::uint8_t> encode_pong_frame(const std::vector<std::uint8_t>& payload) {
  return encode_payload_frame(WorkerFrame::Pong, payload);
}

std::vector<std::uint8_t> decode_ping_frame(const std::vector<std::uint8_t>& frame) {
  return decode_payload_frame(frame, WorkerFrame::Ping);
}

std::vector<std::uint8_t> decode_pong_frame(const std::vector<std::uint8_t>& frame) {
  return decode_payload_frame(frame, WorkerFrame::Pong);
}

// --- campaign journal records ------------------------------------------------

namespace {

constexpr char kJournalMagic[4] = {'L', 'O', 'K', 'J'};

/// FNV-1a over `size` bytes — 8 self-contained bytes per record is enough
/// to catch the torn tails and bit flips the journal must survive; the
/// cache keys inside the records carry the heavyweight (sha256) identity.
std::uint64_t fnv1a(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::vector<std::uint8_t> encode_journal_header() {
  Writer w;
  for (const char c : kJournalMagic) w.u8(static_cast<std::uint8_t>(c));
  w.u16(kJournalVersion);
  return w.take();
}

std::size_t decode_journal_header(const std::uint8_t* data, std::size_t size) {
  Reader r(data, size);
  for (const char c : kJournalMagic)
    if (r.u8() != static_cast<std::uint8_t>(c))
      throw DecodeError("journal: bad magic (not a campaign journal)");
  const std::uint16_t version = r.u16();
  if (version != kJournalVersion)
    throw DecodeError("journal: version " + std::to_string(version) +
                      ", this build speaks only v" +
                      std::to_string(kJournalVersion));
  return r.position();
}

void encode_journal_record(const JournalEntry& entry,
                           std::vector<std::uint8_t>& out) {
  Writer payload;
  switch (entry.type) {
    case JournalRecord::CampaignBegin:
      payload.str(entry.runner_spec);
      payload.u64(entry.seed);
      payload.u32(entry.studies);
      break;
    case JournalRecord::StudyBegin:
      payload.u32(entry.study);
      payload.str(entry.study_name);
      payload.str(entry.study_digest);
      payload.u32(entry.experiments);
      break;
    case JournalRecord::IndexDone:
      payload.u32(entry.study);
      payload.u32(entry.index);
      payload.str(entry.result_key);
      break;
    case JournalRecord::StudyEnd:
      payload.u32(entry.study);
      break;
    case JournalRecord::CampaignEnd:
      break;
  }
  const std::vector<std::uint8_t> body = payload.take();

  Writer w(out);
  const std::size_t start = out.size();
  w.u8(static_cast<std::uint8_t>(entry.type));
  w.u32(static_cast<std::uint32_t>(body.size()));
  if (!body.empty()) w.bytes(body.data(), body.size());
  w.u64(fnv1a(out.data() + start, out.size() - start));
}

JournalEntry decode_journal_record(const std::uint8_t* data, std::size_t size,
                                   std::size_t& consumed) {
  Reader r(data, size);
  const std::uint8_t raw_type = r.u8();
  const std::uint32_t length = r.u32();
  // Bound the length before trusting it: a corrupt prefix must not read
  // (or allocate) past the buffer.
  if (r.remaining() < static_cast<std::size_t>(length) + 8)
    throw DecodeError("journal record: truncated (payload of " +
                      std::to_string(length) + " bytes past end of journal)");
  const std::size_t payload_start = r.position();
  r.skip(length);
  const std::uint64_t stored = r.u64();
  if (stored != fnv1a(data, payload_start + length))
    throw DecodeError("journal record: checksum mismatch (torn or corrupt)");
  if (raw_type < static_cast<std::uint8_t>(JournalRecord::CampaignBegin) ||
      raw_type > static_cast<std::uint8_t>(JournalRecord::CampaignEnd))
    throw DecodeError("journal record: unknown type " +
                      std::to_string(raw_type));

  JournalEntry entry;
  entry.type = static_cast<JournalRecord>(raw_type);
  Reader p(data + payload_start, length);
  switch (entry.type) {
    case JournalRecord::CampaignBegin:
      entry.runner_spec = p.str();
      entry.seed = p.u64();
      entry.studies = p.u32();
      break;
    case JournalRecord::StudyBegin:
      entry.study = p.u32();
      entry.study_name = p.str();
      entry.study_digest = p.str();
      entry.experiments = p.u32();
      break;
    case JournalRecord::IndexDone:
      entry.study = p.u32();
      entry.index = p.u32();
      entry.result_key = p.str();
      break;
    case JournalRecord::StudyEnd:
      entry.study = p.u32();
      break;
    case JournalRecord::CampaignEnd:
      break;
  }
  p.expect_done();
  consumed = r.position();
  return entry;
}

}  // namespace loki::runtime
