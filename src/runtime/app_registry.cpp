#include "runtime/app_registry.hpp"

#include <map>
#include <mutex>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace loki::runtime {

namespace {

std::mutex g_mutex;

std::map<std::string, ApplicationCtor>& registry() {
  static std::map<std::string, ApplicationCtor> r;
  return r;
}

// Caller must hold g_mutex.
std::vector<std::string> names_locked() {
  std::vector<std::string> names;
  for (const auto& [name, ctor] : registry()) names.push_back(name);
  return names;
}

}  // namespace

void register_application(const std::string& name, ApplicationCtor ctor) {
  if (name.empty()) throw ConfigError("register_application: empty name");
  if (!ctor) throw ConfigError("register_application: null constructor");
  std::lock_guard<std::mutex> lock(g_mutex);
  registry()[name] = std::move(ctor);
}

bool has_application(const std::string& name) {
  std::lock_guard<std::mutex> lock(g_mutex);
  return registry().contains(name);
}

ApplicationFactory make_application_factory(const std::string& name,
                                            const std::string& args) {
  ApplicationCtor ctor;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    const auto it = registry().find(name);
    if (it == registry().end())
      throw ConfigError(
          "application '" + name + "' is not registered (known: " +
          join(names_locked(), ", ") +
          "); did you forget apps::register_builtin_apps()?");
    ctor = it->second;
  }
  return ctor(args);
}

std::vector<std::string> registered_applications() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return names_locked();
}

}  // namespace loki::runtime
