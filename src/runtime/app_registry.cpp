#include "runtime/app_registry.hpp"

#include <map>

#include "util/error.hpp"
#include "util/mutex.hpp"
#include "util/strings.hpp"
#include "util/thread_annotations.hpp"

namespace loki::runtime {

namespace {

/// The process-wide application registry. One annotated object instead of a
/// bare global mutex beside a bare global map, so -Wthread-safety proves
/// every access goes through the lock (registration may race lookups when
/// worker threads build factories while a test registers late).
struct Registry {
  util::Mutex mu;
  std::map<std::string, ApplicationCtor> by_name LOKI_GUARDED_BY(mu);

  std::vector<std::string> names() LOKI_REQUIRES(mu) {
    std::vector<std::string> out;
    for (const auto& [name, ctor] : by_name) out.push_back(name);
    return out;
  }
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

void register_application(const std::string& name, ApplicationCtor ctor) {
  if (name.empty()) throw ConfigError("register_application: empty name");
  if (!ctor) throw ConfigError("register_application: null constructor");
  Registry& r = registry();
  util::MutexLock lock(r.mu);
  r.by_name[name] = std::move(ctor);
}

bool has_application(const std::string& name) {
  Registry& r = registry();
  util::MutexLock lock(r.mu);
  return r.by_name.contains(name);
}

ApplicationFactory make_application_factory(const std::string& name,
                                            const std::string& args) {
  ApplicationCtor ctor;
  {
    Registry& r = registry();
    util::MutexLock lock(r.mu);
    const auto it = r.by_name.find(name);
    if (it == r.by_name.end())
      throw ConfigError(
          "application '" + name + "' is not registered (known: " +
          join(r.names(), ", ") +
          "); did you forget apps::register_builtin_apps()?");
    ctor = it->second;
  }
  return ctor(args);
}

std::vector<std::string> registered_applications() {
  Registry& r = registry();
  util::MutexLock lock(r.mu);
  return r.names();
}

}  // namespace loki::runtime
