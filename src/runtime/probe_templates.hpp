// Probe templates (§6 future work): "developing probe templates for a
// variety of common fault types, such as memory, CPU, and communication
// faults."
//
// A template is a reusable injectFault() behaviour; applications register
// templates per fault name (with a default fallback) and delegate their
// on_inject_fault to the registry. Provided templates:
//
//   crash_fault   — the error crashes the process after an exponential
//                   dormancy, with configurable activation probability and
//                   crash mode (the classic Ch. 5 behaviour);
//   memory_fault  — state corruption: with probability `manifest_prob` the
//                   corrupted word is eventually read and the process
//                   crashes (UnhandledSignal: SIGSEGV-like, default signal
//                   handler); otherwise the fault stays dormant forever;
//   cpu_fault     — the process wedges in a compute loop for `burn` (a
//                   soft hang: peers see missed heartbeats, the watchdog
//                   may fire), then resumes or dies;
//   comm_fault    — the node's outgoing application messages are dropped
//                   for `blackout` (models a NIC/driver fault); requires
//                   the application to honour NodeContext message sending,
//                   implemented by suppressing delivery via a flag the
//                   template toggles.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "runtime/app.hpp"

namespace loki::runtime {

/// A fault behaviour: invoked as the probe's injectFault body.
using ProbeTemplate = std::function<void(NodeContext&, const std::string& fault)>;

class ProbeTemplateRegistry {
 public:
  /// Register a behaviour for one fault name.
  void set(const std::string& fault, ProbeTemplate tmpl);
  /// Behaviour for faults without a specific registration.
  void set_default(ProbeTemplate tmpl);

  /// Dispatch (the application's on_inject_fault delegates here).
  void inject(NodeContext& ctx, const std::string& fault) const;

  bool has(const std::string& fault) const { return templates_.contains(fault); }

 private:
  std::map<std::string, ProbeTemplate> templates_;
  ProbeTemplate default_;
};

struct CrashFaultParams {
  double activation_prob{1.0};
  Duration dormancy_mean{milliseconds(5)};
  CrashMode mode{CrashMode::HandledSignal};
};
ProbeTemplate crash_fault(CrashFaultParams params = {});

struct MemoryFaultParams {
  /// Probability the corrupted location is ever read (error manifests).
  double manifest_prob{0.6};
  /// Time-to-read distribution mean (exponential).
  Duration read_latency_mean{milliseconds(20)};
};
ProbeTemplate memory_fault(MemoryFaultParams params = {});

struct CpuFaultParams {
  /// Length of the livelock burst.
  Duration burn{milliseconds(50)};
  /// Probability the process dies (silently) at the end of the burst
  /// instead of recovering.
  double fatal_prob{0.3};
};
ProbeTemplate cpu_fault(CpuFaultParams params = {});

struct CommFaultParams {
  /// How long outgoing application messages are suppressed.
  Duration blackout{milliseconds(60)};
};
/// Returns both the template and the send-gate the application must consult
/// before app_send (the template flips it during the blackout).
struct CommFaultHandle {
  ProbeTemplate tmpl;
  std::shared_ptr<bool> sending_enabled;
};
CommFaultHandle comm_fault(CommFaultParams params = {});

}  // namespace loki::runtime
