// Application-side interface: the "system under study" and its probe.
//
// In the real Loki the probe is compiled into the application (§3.5.7):
// main() is renamed appMain(), the probe calls notifyEvent() on the state
// machine, and implements injectFault(). Here an Application receives a
// NodeContext giving it exactly those calls plus the OS services a real
// process would have (messages, timers, CPU work, crash/exit).
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace loki::runtime {

/// How a node dies (§3.6.2):
///  - HandledSignal: the user's signal handler runs — it sends the CRASH
///    event and calls notifyOnCrash() before exiting;
///  - UnhandledSignal: the default handler tears down the shared-memory
///    segment, so the OS notifies the local daemon of the crash;
///  - Silent: the process hangs/dies without any notification; only the
///    local daemon's watchdog discovers it.
enum class CrashMode : std::uint8_t { HandledSignal, UnhandledSignal, Silent };

class NodeContext {
 public:
  virtual ~NodeContext() = default;

  // --- identity / environment ---------------------------------------------
  virtual const std::string& nickname() const = 0;
  virtual const std::string& host_name() const = 0;
  virtual bool restarted() const = 0;
  virtual Rng& rng() = 0;
  virtual LocalTime local_clock() const = 0;

  // --- Loki probe API (§3.5.7) ---------------------------------------------
  /// notifyEvent(): report a local event (the first call initializes the
  /// state machine's state).
  virtual void notify_event(const std::string& event) = 0;
  /// Append a free-form message to the local timeline record.
  virtual void record_message(std::string message) = 0;

  // --- system-under-study services -----------------------------------------
  /// Send an application message to another node (application LAN). The
  /// payload is delivered to the peer Application's on_message(). Dropped
  /// silently if the peer is not alive on delivery, like a datagram to a
  /// dead process.
  virtual void app_send(const std::string& peer, std::any payload,
                        Duration handler_cost = Duration{0}) = 0;
  /// Run `fn` on this node after `delay`.
  virtual void app_timer(Duration delay, std::function<void(NodeContext&)> fn,
                         Duration handler_cost = Duration{0}) = 0;
  /// Consume `cpu` of compute, then continue with `then`.
  virtual void do_work(Duration cpu, std::function<void(NodeContext&)> then) = 0;
  /// Clean exit: notifyOnExit() to the daemon, then process termination.
  virtual void exit_app() = 0;
  /// Crash the process per `mode`.
  virtual void crash_app(CrashMode mode) = 0;
  /// Nicknames of all nodes configured in this experiment (the application
  /// knows its own membership; Loki does not provide this).
  virtual std::vector<std::string> peer_nicknames() const = 0;
};

class Application {
 public:
  virtual ~Application() = default;

  /// appMain(): invoked once the node's runtime has registered. The first
  /// notify_event() call must initialize the state machine (§3.5.7).
  virtual void on_start(NodeContext& ctx) = 0;

  /// injectFault(): perform the actual fault injection (§3.5.5). What a
  /// fault does — bit flip, crash, message drop — is entirely up to the
  /// application/probe.
  virtual void on_inject_fault(NodeContext& ctx, const std::string& fault) = 0;

  /// An application message from a peer (sent with NodeContext::app_send).
  virtual void on_message(NodeContext& ctx, const std::any& payload) {
    (void)ctx;
    (void)payload;
  }
};

using ApplicationFactory = std::function<std::unique_ptr<Application>()>;

}  // namespace loki::runtime
