// Transport fabric abstraction: the three runtime designs of §3.4.
//
// The node's state machine talks to a Deployment; how notifications travel
// (via per-host local daemons, via one global daemon, or directly peer to
// peer) is the design under comparison in Fig 3.4 / §3.4.2. All fabric
// operations move through the simulated control LAN with the appropriate
// channel class, so the bench can measure the trade-offs the thesis argues
// qualitatively.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "runtime/dictionary.hpp"
#include "sim/ids.hpp"

namespace loki::runtime {

class LokiNode;

enum class TransportDesign : std::uint8_t {
  /// Enhanced runtime (§3.5): one local daemon per host + central daemon,
  /// all communication through the daemons. The production design.
  PartiallyDistributed,
  /// One global daemon relaying everything (Fig 3.4 left).
  Centralized,
  /// Original runtime (Fig 3.1): direct TCP between state machines, static
  /// membership, no crash/restart support.
  Direct,
};

class Deployment {
 public:
  virtual ~Deployment() = default;

  /// Registration handshake for a (re)starting node. `on_ready` runs on the
  /// node's process once the fabric accepted it (appMain starts after).
  virtual void node_started(LokiNode& node, bool restarted,
                            std::function<void()> on_ready) = 0;

  /// notifyOnExit(): clean exit notice (§3.5.7).
  virtual void node_exited(LokiNode& node) = 0;

  /// Crash paths. `explicit_notice` == true: the user signal handler called
  /// notifyOnCrash() (node already recorded its CRASH state change);
  /// false: the OS reported the teardown (daemon must record the crash).
  virtual void node_crashed(LokiNode& node, bool explicit_notice) = 0;

  /// Deliver `from`'s new state to the machines on the notify list.
  /// `recipients` is a pre-interned vector owned by the sending node's
  /// state machine, stable for the node's lifetime; kInvalidId entries
  /// (notify-list names outside the study) count as drops.
  virtual void send_state_notification(LokiNode& from, StateId state,
                                       const std::vector<MachineId>& recipients) = 0;

  /// §3.6.3: a restarted node asks all other machines for their current
  /// states to rebuild its partial view.
  virtual void request_state_updates(LokiNode& node) = 0;

  /// Notifications dropped because the target was not executing (§3.6.1
  /// "discarded with a warning message").
  virtual std::uint64_t dropped_notifications() const = 0;
};

/// Harness-maintained registry: nickname -> current live incarnation.
/// Models what the distributed application itself knows (process tables,
/// respawn managers); Loki components keep their own location tables.
class NodeDirectory {
 public:
  void put(const std::string& nickname, LokiNode* node) {
    nodes_[nickname] = node;
  }
  void remove(const std::string& nickname, const LokiNode* node) {
    const auto it = nodes_.find(nickname);
    if (it != nodes_.end() && it->second == node) nodes_.erase(it);
  }
  LokiNode* find(const std::string& nickname) const {
    const auto it = nodes_.find(nickname);
    return it == nodes_.end() ? nullptr : it->second;
  }
  const std::map<std::string, LokiNode*>& all() const { return nodes_; }

 private:
  std::map<std::string, LokiNode*> nodes_;
};

}  // namespace loki::runtime
