#include "runtime/experiment.hpp"

#include <algorithm>

#include "runtime/experiment_context.hpp"
#include "util/error.hpp"

namespace loki::runtime {

namespace {

/// Linear scan over a dense name table. The tables hold a handful of
/// entries (one per machine or host), so this beats a map at the report
/// boundary and costs nothing on the population path, which indexes by
/// slot directly.
std::size_t find_name(const std::vector<std::string>& names,
                      std::string_view name) {
  for (std::size_t i = 0; i < names.size(); ++i)
    if (names[i] == name) return i;
  return names.size();
}

}  // namespace

std::size_t GroundTruth::slot_of(std::string_view machine) {
  const std::size_t i = find_name(machines, machine);
  if (i < machines.size()) return i;
  machines.emplace_back(machine);
  state_seq.emplace_back();
  crashes.emplace_back();
  return machines.size() - 1;
}

const TrueStateSeq* GroundTruth::find_state_seq(std::string_view machine) const {
  const std::size_t i = find_name(machines, machine);
  return i < machines.size() ? &state_seq[i] : nullptr;
}

const std::vector<SimTime>* GroundTruth::find_crashes(
    std::string_view machine) const {
  const std::size_t i = find_name(machines, machine);
  return i < machines.size() ? &crashes[i] : nullptr;
}

bool GroundTruth::in_state(const std::string& machine, const std::string& state,
                           SimTime t) const {
  const TrueStateSeq* seq_ptr = find_state_seq(machine);
  if (seq_ptr == nullptr) return false;
  const TrueStateSeq& seq = *seq_ptr;
  // The sequence is ordered by enter time (entries are appended as the
  // simulation clock advances), so the entry in force at `t` is the last
  // one with enter <= t — found by binary search instead of a linear scan
  // (this query runs once per verdict per injection in the analysis phase).
  const auto after = std::upper_bound(
      seq.begin(), seq.end(), t,
      [](SimTime t, const std::pair<SimTime, std::string>& entry) {
        return t < entry.first;
      });
  if (after == seq.begin()) return false;  // t precedes the first entry
  return std::prev(after)->second == state;
}

const LocalTimeline* ExperimentResult::find_timeline(
    std::string_view nickname) const {
  for (const LocalTimeline& tl : timelines)
    if (tl.nickname == nickname) return &tl;
  return nullptr;
}

const LocalTimeline& ExperimentResult::timeline_of(
    std::string_view nickname) const {
  const LocalTimeline* tl = find_timeline(nickname);
  if (tl == nullptr)
    throw LogicError("experiment result: no timeline for node '" +
                     std::string(nickname) + "'");
  return *tl;
}

const std::vector<std::string>* ExperimentResult::find_user_messages(
    std::string_view nickname) const {
  for (std::size_t i = 0; i < timelines.size(); ++i) {
    if (timelines[i].nickname != nickname) continue;
    if (i < user_messages.size() && !user_messages[i].empty())
      return &user_messages[i];
    return nullptr;
  }
  return nullptr;
}

std::size_t ExperimentResult::host_slot(std::string_view host) const {
  const std::size_t i = find_name(hosts, host);
  if (i == hosts.size())
    throw LogicError("experiment result: unknown host '" + std::string(host) +
                     "'");
  return i;
}

std::size_t ExperimentResult::add_host(std::string_view host) {
  const std::size_t i = find_name(hosts, host);
  if (i < hosts.size()) return i;
  hosts.emplace_back(host);
  start_local.emplace_back();
  end_local.emplace_back();
  true_clocks.emplace_back();
  return hosts.size() - 1;
}

ExperimentResult run_experiment(const ExperimentParams& params) {
  // One-shot compatibility wrapper: compile + single run. Campaign loops
  // hold an ExperimentContext instead and amortize the compile
  // (runtime/experiment_context.hpp).
  ExperimentContext context;
  return context.run(params);
}

const StudyResult* CampaignResult::find_study(const std::string& name) const {
  for (const auto& s : studies)
    if (s.name == name) return &s;
  return nullptr;
}

}  // namespace loki::runtime
