#include "runtime/experiment.hpp"

#include <algorithm>

#include "runtime/experiment_context.hpp"

namespace loki::runtime {

bool GroundTruth::in_state(const std::string& machine, const std::string& state,
                           SimTime t) const {
  const auto it = state_seq.find(machine);
  if (it == state_seq.end()) return false;
  const auto& seq = it->second;
  // The sequence is ordered by enter time (entries are appended as the
  // simulation clock advances), so the entry in force at `t` is the last
  // one with enter <= t — found by binary search instead of a linear scan
  // (this query runs once per verdict per injection in the analysis phase).
  const auto after = std::upper_bound(
      seq.begin(), seq.end(), t,
      [](SimTime t, const std::pair<SimTime, std::string>& entry) {
        return t < entry.first;
      });
  if (after == seq.begin()) return false;  // t precedes the first entry
  return std::prev(after)->second == state;
}

ExperimentResult run_experiment(const ExperimentParams& params) {
  // One-shot compatibility wrapper: compile + single run. Campaign loops
  // hold an ExperimentContext instead and amortize the compile
  // (runtime/experiment_context.hpp).
  ExperimentContext context;
  return context.run(params);
}

const StudyResult* CampaignResult::find_study(const std::string& name) const {
  for (const auto& s : studies)
    if (s.name == name) return &s;
  return nullptr;
}

}  // namespace loki::runtime
