#include "runtime/node.hpp"

#include "spec/reserved.hpp"
#include "util/error.hpp"

namespace loki::runtime {

LokiNode::LokiNode(sim::World& world, sim::HostId host, std::string nickname,
                   const CompiledMachine& tables,
                   std::shared_ptr<Recorder> recorder, Deployment& deployment,
                   NodeDirectory& directory, const CostModel& costs, Rng rng,
                   bool restarted, Hooks hooks)
    : world_(world),
      host_(host),
      nickname_(std::move(nickname)),
      machine_id_(tables.self()),
      recorder_(std::move(recorder)),
      deployment_(deployment),
      directory_(directory),
      costs_(costs),
      rng_(rng),
      restarted_(restarted),
      hooks_(std::move(hooks)) {
  StateMachine::Hooks sm_hooks;
  sm_hooks.clock = [this] { return world_.clock_read(host_); };
  sm_hooks.send_notifications = [this](StateId state,
                                       const std::vector<MachineId>& recipients) {
    deployment_.send_state_notification(*this, state, recipients);
  };
  sm_hooks.inject_fault = [this](const std::string& fault) { inject_fault(fault); };
  sm_hooks.truth_state_change = [this](const std::string& state) {
    if (hooks_.truth_state_change) hooks_.truth_state_change(nickname_, state);
  };
  sm_hooks.truth_injection = [this](const std::string& fault) {
    if (hooks_.truth_injection) hooks_.truth_injection(nickname_, fault);
  };
  sm_ = std::make_unique<StateMachine>(tables, recorder_, std::move(sm_hooks));
}

const std::string& LokiNode::host_name() const { return world_.host_name(host_); }

void LokiNode::start(std::unique_ptr<Application> app) {
  LOKI_REQUIRE(!pid_.valid(), "node already started");
  LOKI_REQUIRE(app != nullptr, "node needs an application");
  app_ = std::move(app);
  pid_ = world_.spawn(host_, nickname_ + "@" + host_name());
  directory_.put(nickname_, this);

  // Startup sequence (§3.6.1/§3.6.3): restart record first (it determines
  // which clock stamps subsequent records), then the registration handshake
  // with the fabric, then state-update recovery, then appMain.
  world_.post(pid_, costs_.register_handshake, [this] {
    if (restarted_) {
      recorder_->record_restart(host_name(), local_clock());
    }
    deployment_.node_started(*this, restarted_, [this] {
      if (restarted_) deployment_.request_state_updates(*this);
      world_.post(pid_, costs_.app_default_handler, [this] { app_->on_start(*this); });
    });
  });
}

void LokiNode::deliver_remote_state(MachineId machine, StateId state) {
  sm_->on_remote_state(machine, state);
}

void LokiNode::deliver_state_updates(
    const std::vector<std::pair<MachineId, StateId>>& states) {
  sm_->apply_state_updates(states);
}

void LokiNode::notify_event(const std::string& event) {
  if (terminated_) return;
  sm_->notify_event(event);
}

void LokiNode::record_message(std::string message) {
  recorder_->record_user_message(std::move(message));
}

void LokiNode::app_send(const std::string& peer, std::any payload,
                        Duration handler_cost) {
  LokiNode* target = directory_.find(peer);
  if (target == nullptr || !target->process_alive()) return;  // dead peer
  if (handler_cost.ns == 0) handler_cost = costs_.app_default_handler;
  const auto cls = target->host() == host_ ? sim::ChannelClass::Ipc
                                           : sim::ChannelClass::Tcp;
  world_.send(pid_, target->pid(), sim::Lan::App, cls, handler_cost,
              [target, payload = std::move(payload)] {
                if (!target->terminated_) target->app_->on_message(*target, payload);
              });
}

void LokiNode::app_timer(Duration delay, std::function<void(NodeContext&)> fn,
                         Duration handler_cost) {
  if (handler_cost.ns == 0) handler_cost = costs_.app_default_handler;
  world_.timer(pid_, delay, handler_cost, [this, fn = std::move(fn)] {
    if (!terminated_) fn(*this);
  });
}

void LokiNode::do_work(Duration cpu, std::function<void(NodeContext&)> then) {
  world_.post(pid_, cpu, [this, then = std::move(then)] {
    if (!terminated_ && then) then(*this);
  });
}

void LokiNode::exit_app() {
  if (terminated_) return;
  terminated_ = true;
  deployment_.node_exited(*this);
  if (hooks_.truth_exit) hooks_.truth_exit(nickname_);
  directory_.remove(nickname_, this);
  world_.kill(pid_);
}

void LokiNode::crash_app(CrashMode mode) {
  if (terminated_) return;
  terminated_ = true;
  if (hooks_.truth_crash) hooks_.truth_crash(nickname_, mode);
  switch (mode) {
    case CrashMode::HandledSignal:
      // The user's signal handler: CRASH event (state change + outgoing
      // notifications) then notifyOnCrash() (§3.6.2, §5.5).
      sm_->notify_event(std::string(spec::kEventCrash));
      deployment_.node_crashed(*this, /*explicit_notice=*/true);
      break;
    case CrashMode::UnhandledSignal:
      // Default handler: the shared-memory teardown tells the daemon.
      deployment_.node_crashed(*this, /*explicit_notice=*/false);
      break;
    case CrashMode::Silent:
      // Nothing escapes; the watchdog must find out.
      break;
  }
  directory_.remove(nickname_, this);
  world_.kill(pid_);
}

std::vector<std::string> LokiNode::peer_nicknames() const {
  std::vector<std::string> out;
  for (const auto& [nick, node] : directory_.all()) {
    if (nick != nickname_) out.push_back(nick);
  }
  return out;
}

void LokiNode::inject_fault(const std::string& fault_name) {
  if (terminated_) return;
  // The probe performs the actual injection (§3.5.5: "the parser instructs
  // the probe to inject the fault").
  app_->on_inject_fault(*this, fault_name);
}

}  // namespace loki::runtime
