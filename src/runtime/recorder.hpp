// The recorder (§3.5.6): accumulates a node's local timeline.
//
// One recorder exists per state machine nickname per experiment and
// persists across crash/restart of the node (the thesis keeps the timeline
// file on NFS so the restarted node — possibly on another host — appends to
// the same file; §3.6.3). Both the node's runtime and its local daemon
// append to it: the daemon writes the CRASH event when it detects a crash
// (§3.5.2).
#pragma once

#include <cstdint>
#include <string>

#include "runtime/dictionary.hpp"
#include "runtime/timeline.hpp"

namespace loki::runtime {

class Recorder {
 public:
  /// `nickname` names the state machine; dictionaries come from the study.
  Recorder(std::string nickname, std::string initial_host,
           const StudyDictionary& dict);

  /// Clear-and-refill for compile-once campaigns: drop the records and user
  /// messages, keep the (study-invariant) dictionary header, and rebind the
  /// initial host for the next experiment. Equivalent to constructing a
  /// fresh Recorder with the same nickname/dict — without rebuilding the
  /// header's name tables.
  void reset(std::string initial_host);

  void record_state_change(std::uint32_t event_index, std::uint32_t state_index,
                           LocalTime when);
  void record_fault_injection(std::uint32_t fault_index, LocalTime when);
  void record_restart(const std::string& new_host, LocalTime when);

  /// A user message (§3.5.6 allows "any messages that the user would want to
  /// include"); stored out-of-band, not in the record stream.
  void record_user_message(std::string message);

  const LocalTimeline& timeline() const { return timeline_; }
  const std::vector<std::string>& user_messages() const { return user_messages_; }

  /// True once the timeline holds any record — how a (re)starting node tells
  /// whether it is new or restarted (§3.6.3).
  bool has_history() const { return !timeline_.records.empty(); }

  /// Serialize to the §3.5.6 file format.
  std::string serialize() const { return serialize_local_timeline(timeline_); }

 private:
  LocalTimeline timeline_;
  std::vector<std::string> user_messages_;
};

}  // namespace loki::runtime
