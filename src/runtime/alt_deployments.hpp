// The two rejected designs of §3.4, implemented so the comparison bench can
// measure them instead of asserting the thesis' qualitative arguments.
//
//  CentralizedDeployment (Fig 3.4 left): one global daemon; every node holds
//  a TCP link to it; notifications take two hops and fan out one message per
//  recipient (no per-host batching). Node entry/exit touches only the global
//  daemon. Crash detection relies on the TCP link breaking, which the thesis
//  notes is slow and of unbounded error — modelled with a configurable
//  detection delay.
//
//  DirectDeployment (Fig 3.1, original runtime): state machines hold a full
//  mesh of TCP links (even on the same host). Fast single-hop notifications;
//  O(n) connection work on entry; static membership (no crash bookkeeping,
//  no restart support) — exactly the §3.3 shortcomings.
//
// Like the production fabric, both trade in dense MachineId/StateId — their
// node tables are flat vectors indexed by machine id.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "runtime/compiled_study.hpp"
#include "runtime/cost_model.hpp"
#include "runtime/deployment.hpp"
#include "runtime/dictionary.hpp"
#include "runtime/node.hpp"
#include "sim/world.hpp"

namespace loki::runtime {

class CentralizedDeployment final : public Deployment {
 public:
  struct Params {
    /// Time for the global daemon to notice a broken TCP link after a
    /// silent/unhandled node death.
    Duration crash_detection_delay{milliseconds(250)};
  };

  /// `reserved` is the study's pre-interned reserved-id block
  /// (CompiledStudy::reserved()); nullptr interns the crash state here.
  CentralizedDeployment(sim::World& world, sim::HostId daemon_host,
                        const StudyDictionary& dict, const CostModel& costs,
                        Params params, const ReservedStudyIds* reserved = nullptr);
  CentralizedDeployment(sim::World& world, sim::HostId daemon_host,
                        const StudyDictionary& dict, const CostModel& costs)
      : CentralizedDeployment(world, daemon_host, dict, costs, Params{}) {}

  /// Return to as-constructed state, reusing the node-table capacity (the
  /// deployment pool path; `dict` must be the same dictionary object while
  /// a pool reuses this deployment).
  void reset(sim::HostId daemon_host, const StudyDictionary& dict,
             const CostModel& costs, Params params,
             const ReservedStudyIds* reserved = nullptr);

  void start_daemon();
  sim::ProcessId daemon_pid() const { return daemon_pid_; }

  void node_started(LokiNode& node, bool restarted,
                    std::function<void()> on_ready) override;
  void node_exited(LokiNode& node) override;
  void node_crashed(LokiNode& node, bool explicit_notice) override;
  void send_state_notification(LokiNode& from, StateId state,
                               const std::vector<MachineId>& recipients) override;
  void request_state_updates(LokiNode& node) override;
  std::uint64_t dropped_notifications() const override { return dropped_; }

  std::uint64_t relayed() const { return relayed_; }

 private:
  void handle_route(MachineId from, StateId state,
                    const std::vector<MachineId>& recipients);
  void unregister(MachineId machine);

  sim::World& world_;
  sim::HostId daemon_host_;
  CostModel costs_;
  Params params_;
  StateId crash_state_id_{kNoState};
  sim::ProcessId daemon_pid_{};
  std::vector<LokiNode*> nodes_;  // by MachineId; nullptr = not registered
  std::uint64_t dropped_{0};
  std::uint64_t relayed_{0};
};

class DirectDeployment final : public Deployment {
 public:
  DirectDeployment(sim::World& world, const StudyDictionary& dict,
                   const CostModel& costs,
                   const ReservedStudyIds* reserved = nullptr);

  /// Return to as-constructed state, reusing the peer-table capacity (the
  /// deployment pool path).
  void reset(const StudyDictionary& dict, const CostModel& costs,
             const ReservedStudyIds* reserved = nullptr);

  void node_started(LokiNode& node, bool restarted,
                    std::function<void()> on_ready) override;
  void node_exited(LokiNode& node) override;
  void node_crashed(LokiNode& node, bool explicit_notice) override;
  void send_state_notification(LokiNode& from, StateId state,
                               const std::vector<MachineId>& recipients) override;
  void request_state_updates(LokiNode& node) override;
  std::uint64_t dropped_notifications() const override { return dropped_; }

  /// Per-connection setup cost charged on entry (three-way handshake etc.).
  Duration connect_cost{microseconds(300)};

 private:
  std::size_t peer_count() const;

  sim::World& world_;
  CostModel costs_;
  StateId exit_state_id_{kNoState};
  std::vector<LokiNode*> peers_;  // by MachineId; nullptr = not registered
  std::uint64_t dropped_{0};
};

}  // namespace loki::runtime
