// Study-invariant compilation for compile-once campaigns (§3.5.6 applied
// campaign-wide).
//
// A measure-phase campaign runs thousands of experiments over one fixed
// study: the specs, the name<->index dictionaries, the flattened transition
// matrices, the pre-interned notify lists, and the compiled fault programs
// are identical in every experiment — only the seed (and other dynamic
// knobs: clocks, loads, crash plans) varies. CompiledStudy hoists all of
// that invariant machinery out of the per-experiment loop:
//
//   CompiledStudy   everything derivable from the specs alone, built once —
//                   the StudyDictionary, one CompiledMachine per node
//                   (transition matrix, notify lists, fault programs), and
//                   the pre-interned reserved ids the deployments need.
//                   Immutable after compile(); safe to share across worker
//                   threads through shared_ptr<const CompiledStudy>.
//   CompiledMachine the per-node compiled tables previously rebuilt by
//                   every StateMachine construction. StateMachine now
//                   borrows one of these; only its dynamic state (current
//                   state, view, parser edges) lives per incarnation.
//
// compatible_with() is the safety valve: a per-experiment structural check
// (node list + deep spec equality) that decides whether an existing
// CompiledStudy may serve a new ExperimentParams. Generators that vary
// structure between experiments simply trigger a recompile — byte-identity
// with the compile-per-experiment path is preserved either way, because
// equal specs compile to equal tables.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "runtime/compiled_fault.hpp"
#include "runtime/dictionary.hpp"
#include "spec/fault_spec.hpp"
#include "spec/state_machine_spec.hpp"

namespace loki::runtime {

struct ExperimentParams;

/// Reserved ids every deployment needs (crash/exit bookkeeping), interned
/// once per study instead of once per experiment.
struct ReservedStudyIds {
  StateId crash_state{kNoState};
  StateId exit_state{kNoState};
  /// Per-machine CRASH event index, by MachineId.
  std::vector<std::uint32_t> crash_event_idx;

  static ReservedStudyIds build(const StudyDictionary& dict);
};

/// The compiled, immutable tables of one state machine. Borrowed by every
/// StateMachine incarnation of the node (restarts included — previously
/// each restart recompiled them).
class CompiledMachine {
 public:
  struct CompiledState {
    StateId default_next{kNoState};
    /// Pre-interned notify list (kInvalidId entries preserved for
    /// drop-counting at the transport).
    std::vector<MachineId> notify;
  };

  /// `sm_spec`, `fault_spec`, and `dict` are borrowed and must outlive the
  /// compiled machine (CompiledStudy owns all three together).
  static CompiledMachine compile(const spec::StateMachineSpec& sm_spec,
                                 const spec::FaultSpec& fault_spec,
                                 const StudyDictionary& dict);

  const spec::StateMachineSpec& spec() const { return *spec_; }
  const spec::FaultSpec& fault_spec() const { return *fault_spec_; }
  const StudyDictionary& dict() const { return *dict_; }

  MachineId self() const { return self_; }
  StateId begin_state() const { return begin_state_; }
  std::uint32_t default_event() const { return default_event_; }
  std::size_t event_count() const { return event_count_; }

  const CompiledState& state(std::size_t def) const { return compiled_[def]; }
  StateId next(std::size_t def, std::uint32_t event) const {
    return next_matrix_[def * event_count_ + event];
  }
  /// StateId -> def index, or -1 when the state has no `state` block here.
  std::int32_t def_of(StateId state) const {
    return def_of_state_[state];
  }
  /// The dictionary's per-machine event name -> index map (borrowed).
  const std::map<std::string, std::uint32_t>& event_ids() const {
    return *event_ids_;
  }

  /// One compiled program per fault-spec entry, in entry order. Shared
  /// read-only; evaluate with an external stack of fault_stack_depth().
  const std::vector<CompiledFaultProgram>& fault_programs() const {
    return fault_programs_;
  }
  /// Maximum stack depth over all fault programs.
  std::size_t fault_stack_depth() const { return fault_stack_depth_; }

 private:
  const spec::StateMachineSpec* spec_{nullptr};
  const spec::FaultSpec* fault_spec_{nullptr};
  const StudyDictionary* dict_{nullptr};
  MachineId self_{kInvalidId};
  StateId begin_state_{kNoState};
  std::uint32_t default_event_{0};
  std::size_t event_count_{0};
  std::vector<CompiledState> compiled_;     // by def index
  std::vector<StateId> next_matrix_;        // def * event_count_ + event
  std::vector<std::int32_t> def_of_state_;  // StateId -> def index or -1
  const std::map<std::string, std::uint32_t>* event_ids_{nullptr};
  std::vector<CompiledFaultProgram> fault_programs_;
  std::size_t fault_stack_depth_{0};
};

class CompiledStudy {
 public:
  /// Compile the study-invariant machinery from a representative
  /// experiment's params. Copies the specs (so the compiled study outlives
  /// the params), builds the dictionary, and compiles every machine.
  /// Throws ConfigError on structural mistakes (spec-name mismatches).
  static std::shared_ptr<const CompiledStudy> compile(
      const ExperimentParams& params);

  /// True iff `params` has the same structural shape this study was
  /// compiled from: same node list (count, order, nicknames) with deeply
  /// equal state machine and fault specs. Dynamic per-experiment fields
  /// (seed, hosts, clocks, loads, crash plans, costs, timeouts) are free to
  /// differ. Deep spec equality is what makes reuse sound: equal specs
  /// compile to equal tables, so reuse is byte-identical to recompiling.
  bool compatible_with(const ExperimentParams& params) const;

  const StudyDictionary& dict() const { return dict_; }
  const ReservedStudyIds& reserved() const { return reserved_; }

  std::size_t node_count() const { return nodes_.size(); }
  /// Compiled tables of node `index` (ExperimentParams::nodes order, which
  /// is also MachineId order).
  const CompiledMachine& machine_of(std::size_t index) const {
    return nodes_[index].machine;
  }
  const std::string& nickname_of(std::size_t index) const {
    return nodes_[index].nickname;
  }

 private:
  CompiledStudy() = default;

  /// One node's owned spec copies plus the tables compiled against them.
  /// Entries live in a deque so their addresses stay stable while the
  /// machines compile against them.
  struct NodeEntry {
    std::string nickname;
    spec::StateMachineSpec sm_spec;
    spec::FaultSpec fault_spec;
    CompiledMachine machine;
  };

  StudyDictionary dict_;
  ReservedStudyIds reserved_;
  std::deque<NodeEntry> nodes_;
};

}  // namespace loki::runtime
