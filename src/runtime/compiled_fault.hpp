// Compiled fault predicates (§3.5.6 applied to §3.5.5).
//
// A spec::FaultExpr is a shared_ptr tree evaluated by virtual dispatch with
// a string map lookup per term — fine at parse time, expensive on every
// state notification. CompiledFaultProgram flattens the tree once per
// experiment into a postfix instruction vector over dense ids: a term
// becomes "view[machine] == state" against the node's std::vector<StateId>
// partial view, unknown names compile to a constant-false push, and the
// evaluation stack is preallocated at compile time, so eval() performs no
// allocation and no string comparison.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/dictionary.hpp"
#include "spec/fault_expr.hpp"

namespace loki::runtime {

class CompiledFaultProgram {
 public:
  CompiledFaultProgram() = default;

  /// Flatten `expr`, interning every (machine:state) term through `dict`.
  /// Terms naming machines or states outside the study compile to False —
  /// a machine that never runs is never in any state.
  static CompiledFaultProgram compile(const spec::FaultExpr& expr,
                                      const StudyDictionary& dict);

  /// Evaluate against a dense partial view of global state: view[m] is the
  /// last known StateId of machine m, or kNoState. Allocation-free.
  bool eval(const std::vector<StateId>& view) const;

  /// Evaluate against the all-unknown view (parser edge initialization).
  bool eval_empty() const;

  /// Re-entrant variants over caller-provided scratch of at least
  /// stack_depth() bytes. These never touch the program's own stack, so one
  /// compiled program may be shared read-only by any number of contexts
  /// (the CompiledStudy case: worker threads share the compiled study and
  /// each FaultParser brings its own scratch).
  bool eval(const std::vector<StateId>& view, unsigned char* stack) const;
  bool eval_empty(unsigned char* stack) const;

  std::size_t size() const { return code_.size(); }
  /// Maximum evaluation-stack depth, fixed at compile time.
  std::size_t stack_depth() const { return stack_.size(); }

 private:
  enum class Op : std::uint8_t { Term, False, And, Or, Not };
  struct Instr {
    Op op{Op::False};
    MachineId machine{kInvalidId};
    StateId state{kInvalidId};
  };

  bool run(const std::vector<StateId>* view, unsigned char* stack) const;

  std::vector<Instr> code_;
  /// Evaluation stack for the scratch-less eval() overloads, sized to the
  /// program's maximum depth at compile time. Only safe when the program
  /// is private to one thread; shared programs must use the external-stack
  /// overloads.
  mutable std::vector<unsigned char> stack_;
};

}  // namespace loki::runtime
